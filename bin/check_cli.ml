(* repro check — systematic schedule exploration of the lock-free pool
   and deque through the Schedpoint yield points.

   Fully deterministic: for a fixed (seed, budget, depth, scenario set)
   the report printed on stdout is byte-identical across runs, failures
   included — the explorer serialises the controlled threads, so the
   interleaving is a pure function of the seeded choice stream.  A
   failing schedule is shrunk to a minimal decision trace and written to
   a replay file; `repro check --replay FILE` re-executes exactly that
   schedule. *)

module Explore = Dfd_check.Explore
module Scenarios = Dfd_check.Scenarios

let list_scenarios () =
  List.iter
    (fun s ->
      Printf.printf "%-16s %d threads  %s\n" s.Explore.name s.Explore.n_threads s.Explore.descr)
    (Scenarios.clev_buggy :: Scenarios.multiq_buggy :: Scenarios.lfdeque_buggy :: Scenarios.all);
  0

let replay_file path =
  match Explore.read_replay path with
  | exception e ->
    Printf.eprintf "check: cannot read replay file %s: %s\n" path (Printexc.to_string e);
    2
  | f -> (
    match Scenarios.find f.Explore.f_scenario with
    | None ->
      Printf.eprintf "check: replay file names unknown scenario %s\n" f.Explore.f_scenario;
      2
    | Some scenario -> (
      Printf.printf "replaying %s: scenario=%s seed=%d iteration=%d (%d decisions)\n" path
        f.Explore.f_scenario f.Explore.f_seed f.Explore.f_iteration
        (List.length f.Explore.f_choices);
      match Explore.replay scenario f with
      | Some reason ->
        Printf.printf "reproduced: %s\n" reason;
        0
      | None ->
        Printf.printf "NOT reproduced: the recorded schedule passes\n";
        1))

let run_check ~seed ~budget ~depth ~scenario ~replay ~replay_out ~list =
  if list then list_scenarios ()
  else
    match replay with
    | Some path -> replay_file path
    | None -> (
      let scenarios =
        match scenario with
        | None -> Scenarios.all
        | Some name -> (
          match Scenarios.find name with
          | Some s -> [ s ]
          | None ->
            Printf.eprintf "check: unknown scenario %s; known: %s\n" name
              (String.concat ", "
                 (List.map
                    (fun s -> s.Explore.name)
                    (Scenarios.clev_buggy :: Scenarios.multiq_buggy :: Scenarios.lfdeque_buggy :: Scenarios.all)));
            exit 2)
      in
      let failed = ref None in
      List.iter
        (fun s ->
          if !failed = None then begin
            let r = Explore.run ~budget ~depth ~seed s in
            Format.printf "check: %a@." Explore.pp_report r;
            match r.Explore.r_failure with
            | None -> ()
            | Some f -> failed := Some f
          end)
        scenarios;
      match !failed with
      | None -> 0
      | Some f ->
        let out =
          match replay_out with
          | Some p -> p
          | None -> Printf.sprintf "replay_%s_%d.json" f.Explore.f_scenario seed
        in
        Explore.write_replay out f;
        Printf.printf "replay file written to %s (rerun: repro check --replay %s)\n" out out;
        1)
