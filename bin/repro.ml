(* repro — regenerate the paper's tables and figures, run single benchmarks,
   inspect programs.

     repro list                 enumerate experiments and benchmarks
     repro table1 fig12 ...     regenerate specific experiments
     repro all                  regenerate everything (EXPERIMENTS.md payload)
     repro run -b DenseMM -s dfd -p 8 -k 50000    one benchmark run
     repro analyze -b FMM       static W/D/S1 analysis of a benchmark *)

open Cmdliner

let exp_ids = Dfd_experiments.All_experiments.ids

let list_cmd =
  let doc = "List available experiments and benchmarks." in
  let run () =
    print_endline "Experiments (tables/figures of the paper):";
    List.iter
      (fun e ->
         Printf.printf "  %-8s %s\n" e.Dfd_experiments.All_experiments.id
           e.Dfd_experiments.All_experiments.summary)
      Dfd_experiments.All_experiments.all;
    print_endline "\nBenchmarks:";
    List.iter
      (fun b ->
         Printf.printf "  %-14s %s\n" b.Dfd_benchmarks.Workload.name
           b.Dfd_benchmarks.Workload.description)
      (Dfd_benchmarks.Registry.all Dfd_benchmarks.Workload.Medium)
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let exp_arg =
  let doc = "Experiment ids to regenerate (see `repro list`)." in
  Arg.(non_empty & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let csv_arg =
  let doc = "Emit comma-separated values (for plotting) instead of tables." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let print_csv (t : Dfd_experiments.Exp_common.table) =
  Printf.printf "# %s\n" t.Dfd_experiments.Exp_common.title;
  List.iter
    (fun row -> print_endline (String.concat "," (List.map csv_escape row)))
    (t.Dfd_experiments.Exp_common.header :: t.Dfd_experiments.Exp_common.rows)

let metrics_dir_arg =
  let doc =
    "Also write each engine run's machine-readable metrics (counters, histogram summaries, \
     per-processor distributions) as JSON files under $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-dir" ] ~docv:"DIR" ~doc)

let run_exps csv metrics_dir ids =
  Dfd_experiments.Exp_common.metrics_dir := metrics_dir;
  let ids = if List.mem "all" ids then exp_ids else ids in
  List.iter
    (fun id ->
       match Dfd_experiments.All_experiments.find id with
       | None ->
         Printf.eprintf "unknown experiment %S; known: %s\n" id (String.concat ", " exp_ids);
         exit 2
       | Some e ->
         List.iter
           (fun t ->
              if csv then print_csv t
              else print_string (Dfd_experiments.Exp_common.render t))
           (e.Dfd_experiments.All_experiments.tables ());
         print_newline ())
    ids

let exp_cmd =
  let doc = "Regenerate the given tables/figures (or `all`)." in
  Cmd.v (Cmd.info "exp" ~doc) Term.(const run_exps $ csv_arg $ metrics_dir_arg $ exp_arg)

let bench_arg =
  let doc = "Benchmark name (see `repro list`)." in
  Arg.(value & opt string "DenseMM" & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc)

let grain_arg =
  let doc = "Thread granularity: medium or fine." in
  let c =
    Arg.enum [ ("medium", Dfd_benchmarks.Workload.Medium); ("fine", Dfd_benchmarks.Workload.Fine) ]
  in
  Arg.(value & opt c Dfd_benchmarks.Workload.Fine & info [ "g"; "grain" ] ~docv:"GRAIN" ~doc)

let sched_arg =
  let doc = "Scheduler: dfd, ws, adf or fifo." in
  let c =
    Arg.enum [ ("dfd", `Dfdeques); ("ws", `Ws); ("adf", `Adf); ("fifo", `Fifo) ]
  in
  Arg.(value & opt c `Dfdeques & info [ "s"; "sched" ] ~docv:"SCHED" ~doc)

let p_arg =
  let doc = "Number of simulated processors." in
  Arg.(value & opt int 8 & info [ "p"; "procs" ] ~docv:"P" ~doc)

let k_arg =
  let doc = "Memory threshold K in bytes; 0 means infinite." in
  Arg.(value & opt int 50_000 & info [ "k"; "threshold" ] ~docv:"K" ~doc)

let seed_arg =
  let doc = "PRNG seed (schedules are reproducible per seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let mode_arg =
  let doc = "Cost model: `analysis` (Section 4.1) or `costed` (Section 5)." in
  Arg.(value & opt (Arg.enum [ ("analysis", `A); ("costed", `C) ]) `C
       & info [ "m"; "mode" ] ~docv:"MODE" ~doc)

let find_bench name grain =
  match Dfd_benchmarks.Registry.find name grain with
  | b -> b
  | exception Not_found ->
    Printf.eprintf "unknown benchmark %S; known: %s\n" name
      (String.concat ", " Dfd_benchmarks.Registry.names);
    exit 2

let trace_out_arg =
  let doc =
    "Record a structured event trace of the run and export it as Chrome trace-event JSON to \
     $(docv) (open in chrome://tracing or ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_json_arg =
  let doc =
    "Write the run's full machine-readable metrics (every counter, the steal-latency / \
     deque-residency / quota-utilisation histogram summaries, per-processor and per-victim \
     distributions) as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-json" ] ~docv:"FILE" ~doc)

(* File-writing CLI paths: fail with a message, not an uncaught Sys_error. *)
let writing path f =
  try f () with Sys_error m ->
    Printf.eprintf "repro: cannot write %s: %s\n" path m;
    exit 1

let check_invariants_arg =
  let doc =
    "Run the scheduler's structural invariant check (e.g. the Lemma 3.1 priority order) after \
     every timestep.  Slow; only valid for pure nested-parallel programs (no mutexes)."
  in
  Arg.(value & flag & info [ "check-invariants" ] ~doc)

let run_one bench grain sched p k seed mode check_invariants trace_out metrics_json =
  let b = find_bench bench grain in
  let k = if k = 0 then None else Some k in
  let cfg =
    match mode with
    | `A -> Dfd_machine.Config.analysis ~p ~mem_threshold:k ~seed ()
    | `C -> Dfd_machine.Config.costed ~p ~mem_threshold:k ~seed ()
  in
  Format.printf "benchmark: %s (%s)@." b.Dfd_benchmarks.Workload.name
    b.Dfd_benchmarks.Workload.description;
  Format.printf "config: %a@." Dfd_machine.Config.pp cfg;
  let tracer =
    match trace_out with
    | None -> Dfd_trace.Tracer.disabled
    | Some _ -> Dfd_trace.Tracer.create ()
  in
  let r =
    Dfdeques_core.Engine.run ~check_invariants ~sched ~tracer cfg
      (b.Dfd_benchmarks.Workload.prog ())
  in
  if check_invariants then Format.printf "invariants: checked after every timestep, all held@.";
  Format.printf "%a@." Dfdeques_core.Engine.pp_result r;
  (match trace_out with
   | None -> ()
   | Some path ->
     writing path (fun () ->
         Dfd_trace.Chrome.write_file ~path ~p (Dfd_trace.Tracer.events tracer));
     let dropped = Dfd_trace.Tracer.dropped tracer in
     Format.printf "trace: %d events -> %s%s@."
       (Dfd_trace.Tracer.length tracer)
       path
       (if dropped > 0 then Printf.sprintf " (%d oldest dropped by the ring buffer)" dropped
        else ""));
  match metrics_json with
  | None -> ()
  | Some path ->
    writing path (fun () ->
        let oc = open_out path in
        Dfd_trace.Json.to_channel oc (Dfdeques_core.Engine.result_to_json r);
        output_char oc '\n';
        close_out oc);
    Format.printf "metrics: %s@." path

let run_cmd =
  let doc = "Run one benchmark under one scheduler and print its metrics." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run_one $ bench_arg $ grain_arg $ sched_arg $ p_arg $ k_arg $ seed_arg $ mode_arg
      $ check_invariants_arg $ trace_out_arg $ metrics_json_arg)

let analyze_one bench grain =
  let b = find_bench bench grain in
  let s = Dfd_dag.Analysis.analyze (b.Dfd_benchmarks.Workload.prog ()) in
  Format.printf "benchmark: %s (%s)@.%a@." b.Dfd_benchmarks.Workload.name
    b.Dfd_benchmarks.Workload.description Dfd_dag.Analysis.pp_summary s

let analyze_cmd =
  let doc = "Static analysis (W, D, S1, Sa, threads) of a benchmark's dag." in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const analyze_one $ bench_arg $ grain_arg)

let steps_arg =
  let doc = "Number of leading timesteps to render." in
  Arg.(value & opt int 100 & info [ "steps" ] ~docv:"N" ~doc)

(* A textual Gantt chart: one row per processor, one column per timestep,
   each cell the thread id (mod 62) that executed there — built from the
   engine's observer hook. *)
let trace_one bench grain sched p k seed steps json_out =
  let b = find_bench bench grain in
  let k = if k = 0 then None else Some k in
  let cfg = Dfd_machine.Config.analysis ~p ~mem_threshold:k ~seed () in
  let grid = Array.make_matrix p steps '.' in
  let symbol tid =
    let alphabet = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ" in
    alphabet.[tid mod String.length alphabet]
  in
  let tracer =
    match json_out with
    | None -> Dfd_trace.Tracer.disabled
    | Some _ -> Dfd_trace.Tracer.create ()
  in
  let r =
    Dfdeques_core.Engine.run ~sched ~tracer cfg
      ~observer:(fun ~now ~proc th _a ->
          if now >= 1 && now <= steps then
            grid.(proc).(now - 1) <- symbol th.Dfdeques_core.Thread_state.tid)
      (b.Dfd_benchmarks.Workload.prog ())
  in
  Format.printf "%s on %s, p=%d: first %d of %d timesteps ('.' = idle/stalled,@ \
                 letters/digits = thread id mod 62)@.@."
    (Dfdeques_core.Engine.sched_name sched)
    b.Dfd_benchmarks.Workload.name p steps r.Dfdeques_core.Engine.time;
  Array.iteri
    (fun proc row -> Format.printf "P%d |%s|@." proc (String.init steps (Array.get row)))
    grid;
  Format.printf "@.steals=%d local=%d queue=%d granularity=%.1f@." r.Dfdeques_core.Engine.steals
    r.Dfdeques_core.Engine.local_dispatches r.Dfdeques_core.Engine.queue_dispatches
    r.Dfdeques_core.Engine.sched_granularity;
  match json_out with
  | None -> ()
  | Some path ->
    writing path (fun () ->
        Dfd_trace.Chrome.write_file ~path ~p (Dfd_trace.Tracer.events tracer));
    Format.printf "full event trace (%d events) -> %s@." (Dfd_trace.Tracer.length tracer) path

let trace_json_arg =
  let doc = "Also export the full structured event trace as Chrome trace-event JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let trace_cmd =
  let doc = "Render a textual Gantt chart of the first timesteps of a schedule." in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const trace_one $ bench_arg $ grain_arg $ sched_arg $ p_arg $ k_arg $ seed_arg $ steps_arg
      $ trace_json_arg)

(* Export a small dag to Graphviz: either the Figure 2-style demo dag or a
   random nested-parallel program from a seed. *)
let dot_one which seed =
  let open Dfd_dag in
  let prog =
    match which with
    | `Demo ->
      (* the shape of the paper's Figure 2: a root forking four children,
         the second of which forks a fifth *)
      let open Prog in
      let leaf = work 2 in
      finish
        (work 1
         >> par leaf (work 1)
         >> par (par leaf (work 1)) (work 1)
         >> par leaf (work 1)
         >> par leaf (work 1))
    | `Random -> Dag_gen.gen_prog (Dfd_structures.Prng.create seed)
                   { Dag_gen.default with max_depth = 4 }
  in
  print_string (Dag.to_dot (Dag.of_prog prog))

let dot_cmd =
  let doc = "Export a small example dag as Graphviz (pipe into `dot -Tsvg`)." in
  let which =
    Arg.(value & opt (Arg.enum [ ("demo", `Demo); ("random", `Random) ]) `Demo
         & info [ "w"; "which" ] ~docv:"WHICH" ~doc:"`demo' (Figure 2 shape) or `random'.")
  in
  Cmd.v (Cmd.info "dot" ~doc) Term.(const dot_one $ which $ seed_arg)

let chaos_campaigns_arg =
  let doc = "Fault-injection campaigns per scheduler (alternating lock-free and lock-heavy)." in
  Arg.(value & opt int 6 & info [ "n"; "campaigns" ] ~docv:"N" ~doc)

let chaos_json_arg =
  let doc =
    "Write the full machine-readable campaign report as JSON to $(docv).  For a fixed seed the \
     report is byte-identical across runs (the pool section only contains deterministic facts)."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let chaos_skip_pool_arg =
  let doc = "Only run the (fast, fully deterministic) simulator campaigns." in
  Arg.(value & flag & info [ "skip-pool" ] ~doc)

let chaos_service_arg =
  let doc =
    "Also run campaigns against the supervised job service (admission shedding, retry to \
     budget exhaustion, flaky-job recovery, pool-wedge respawn with exactly-once requeue, \
     ledger audit)."
  in
  Arg.(value & flag & info [ "service" ] ~doc)

let chaos_crash_arg =
  let doc =
    "Also run the per-worker crash-domain campaigns: a seeded worker crash is injected \
     mid-sort into each native pool policy; the pool must quarantine the dead worker, \
     recover its held task exactly once (lineage-ledger audit), finish correctly at p-1 \
     with the live Theorem-4.4 budget agreeing with the degraded p, then respawn the slot \
     under budget and complete a clean run at full strength."
  in
  Arg.(value & flag & info [ "crash" ] ~doc)

let chaos_run seed campaigns p json_out skip_pool service crash =
  exit (Chaos.run_chaos ~seed ~campaigns ~p ~json_out ~skip_pool ~service ~crash)

let chaos_cmd =
  let doc =
    "Run seeded fault-injection campaigns (stalls, forced steal failures, task exceptions, \
     allocation spikes, lock delays, worker crashes) against every scheduler and the native \
     pool, checking invariants, exception propagation, timeouts, graceful degradation and \
     crash recovery."
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const chaos_run $ seed_arg $ chaos_campaigns_arg $ p_arg $ chaos_json_arg
      $ chaos_skip_pool_arg $ chaos_service_arg $ chaos_crash_arg)

let soak_duration_arg =
  let doc = "Logical duration of the submission phase, in service steps (>= 12)." in
  Arg.(value & opt int 60 & info [ "duration-steps" ] ~docv:"N" ~doc)

let soak_plan_arg =
  let doc =
    "Fault plan: `none', `exns' (raising + flaky + deadline jobs), `wedges' (pool-wedging \
     jobs), `spikes' (allocation spikes driving the adaptive quota controller), or `mixed'."
  in
  Arg.(value & opt (Arg.enum Soak.plans) Soak.P_mixed & info [ "fault-plan" ] ~docv:"PLAN" ~doc)

let soak_policy_arg =
  let doc = "Pool policy: `dfd' (DFDeques with the adaptive-K controller) or `ws'." in
  Arg.(value & opt (Arg.enum [ ("dfd", `Dfd); ("ws", `Ws) ]) `Dfd
       & info [ "policy" ] ~docv:"POLICY" ~doc)

let soak_grace_arg =
  let doc =
    "Seconds without pool heartbeat progress before an in-flight attempt is declared wedged.  \
     Wall-clock input parameter only; it never appears in the report."
  in
  Arg.(value & opt float 1.5 & info [ "wedge-grace" ] ~docv:"SECONDS" ~doc)

let soak_json_arg =
  let doc =
    "Write the full machine-readable soak report as JSON to $(docv).  The report contains only \
     logical-clock facts, so for fixed arguments it is byte-identical across runs."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let soak_flight_arg =
  let doc =
    "Enable the flight recorder's crash forensics: on a pool wedge, an attempt timeout or a \
     supervisor give-up, dump the current pool incarnation's event ring as a JSON artifact \
     under $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "flight-dir" ] ~docv:"DIR" ~doc)

let soak_tenants_arg =
  let doc =
    "Run the multi-tenant open-loop campaign instead of a fault plan: `normal' (three tenants \
     under steady seeded load; nothing may be shed) or `bully' (the lowest-weight tenant \
     offers ~10x load laced with allocation spikes; the oracle checks it is shed first and \
     alone, victims complete >= 99% with bounded p99, and per-tenant K budgets stay isolated)."
  in
  Arg.(value & opt (some (Arg.enum Soak.tenant_modes)) None
       & info [ "tenants" ] ~docv:"MODE" ~doc)

let soak_run seed duration plan tenants policy grace json_out flight_dir =
  let tenants = match tenants with None -> Soak.T_off | Some m -> m in
  exit
    (Soak.run_soak ~seed ~duration ~plan ~tenants ~policy ~wedge_grace:grace ~json_out
       ~flight_dir)

let soak_cmd =
  let doc =
    "Run a deterministic soak campaign against the supervised job service: a seeded schedule \
     of well-behaved, raising, flaky, deadline-bound, allocation-spiking and pool-wedging \
     jobs, driven for a fixed number of logical steps and audited against the exactly-once \
     ledger (zero lost jobs, zero duplicated acknowledgements, outcome classes per \
     archetype, wedge -> respawn -> requeue exactly once, adaptive-K shrink and recovery).  \
     With $(b,--tenants) the campaign instead exercises the multi-tenant front door: \
     weighted-fair lanes under seeded open-loop load, the overload backpressure ladder, \
     duplicate coalescing and per-tenant adaptive-K isolation."
  in
  Cmd.v (Cmd.info "soak" ~doc)
    Term.(
      const soak_run $ seed_arg $ soak_duration_arg $ soak_plan_arg $ soak_tenants_arg
      $ soak_policy_arg $ soak_grace_arg $ soak_json_arg $ soak_flight_arg)

(* ------------------------------------------------------------------ *)
(* metrics: one deterministic simulated run exposed through the         *)
(* telemetry plane (OpenMetrics text + JSON snapshot + flight dump)     *)
(* ------------------------------------------------------------------ *)

let metrics_text_arg =
  let doc =
    "Write the OpenMetrics v1 exposition to $(docv) instead of stdout.  The simulator is \
     deterministic, so for fixed arguments the output is byte-identical across runs."
  in
  Arg.(value & opt (some string) None & info [ "text" ] ~docv:"FILE" ~doc)

let metrics_snapshot_arg =
  let doc = "Also write the registry snapshot as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let metrics_flight_arg =
  let doc = "Also dump the run's flight-recorder ring as a JSON artifact to $(docv)." in
  Arg.(value & opt (some string) None & info [ "flight" ] ~docv:"FILE" ~doc)

let metrics_run bench grain sched p k seed mode text_out json_out flight_out =
  let b = find_bench bench grain in
  let kopt = if k = 0 then None else Some k in
  let cfg =
    match mode with
    | `A -> Dfd_machine.Config.analysis ~p ~mem_threshold:kopt ~seed ()
    | `C -> Dfd_machine.Config.costed ~p ~mem_threshold:kopt ~seed ()
  in
  let prog = b.Dfd_benchmarks.Workload.prog () in
  let s = Dfd_dag.Analysis.analyze prog in
  let registry = Dfd_obs.Registry.create () in
  let flight = Dfd_obs.Flight.create ~lanes:(p + 1) () in
  (* with analysis in hand the budget gauge is the exact Oracle.thm44
     bound: S1 + c * min(K, S1) * p * D (infinite K degrades to K = S1) *)
  let s1 = s.Dfd_dag.Analysis.serial_space in
  let headroom =
    Dfd_obs.Headroom.create ~registry
      ~policy:(Dfdeques_core.Engine.sched_name sched)
      ~s1 ~depth:s.Dfd_dag.Analysis.depth ~p
      ~k:(match kopt with Some k -> k | None -> s1)
      ()
  in
  let (_ : Dfdeques_core.Engine.result) =
    Dfdeques_core.Engine.run ~sched ~registry ~flight ~headroom cfg prog
  in
  let samples = Dfd_obs.Registry.snapshot registry in
  (match text_out with
   | None -> print_string (Dfd_obs.Openmetrics.render samples)
   | Some path ->
     writing path (fun () ->
         let oc = open_out path in
         Dfd_obs.Openmetrics.write_channel oc samples;
         close_out oc);
     Printf.printf "metrics text: %d samples -> %s\n" (List.length samples) path);
  (match json_out with
   | None -> ()
   | Some path ->
     writing path (fun () ->
         let oc = open_out path in
         Dfd_trace.Json.to_channel oc (Dfd_obs.Registry.Snapshot.to_json samples);
         output_char oc '\n';
         close_out oc);
     Printf.printf "metrics snapshot: %s\n" path);
  match flight_out with
  | None -> ()
  | Some path ->
    writing path (fun () -> Dfd_obs.Flight.write_file ~path ~reason:"run" flight);
    Printf.printf "flight dump: %d events -> %s\n" (Dfd_obs.Flight.recorded flight) path

let metrics_cmd =
  let doc =
    "Run one benchmark under the live telemetry plane and emit the registry as OpenMetrics v1 \
     text (and optionally a JSON snapshot and a flight-recorder dump).  The exposition carries \
     the dfd_engine_* instruments and the Theorem-4.4 space-headroom gauge family \
     (live/peak/budget bytes, headroom ratio, premature-node count and depth histogram), with \
     the budget computed exactly as the offline Oracle.thm44 bound."
  in
  Cmd.v (Cmd.info "metrics" ~doc)
    Term.(
      const metrics_run $ bench_arg $ grain_arg $ sched_arg $ p_arg $ k_arg $ seed_arg $ mode_arg
      $ metrics_text_arg $ metrics_snapshot_arg $ metrics_flight_arg)

let check_iters_arg =
  let doc = "Schedule-exploration budget: randomised schedules per scenario." in
  Arg.(value & opt int 100 & info [ "n"; "iters" ] ~docv:"N" ~doc)

let check_depth_arg =
  let doc = "PCT depth d: the controller inserts d-1 random priority-change points." in
  Arg.(value & opt int 3 & info [ "d"; "depth" ] ~docv:"D" ~doc)

let check_scenario_arg =
  let doc = "Explore only this scenario (see --list); default: all correct scenarios." in
  Arg.(value & opt (some string) None & info [ "scenario" ] ~docv:"NAME" ~doc)

let check_replay_arg =
  let doc = "Re-execute the exact schedule recorded in replay file $(docv) instead of exploring." in
  Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)

let check_replay_out_arg =
  let doc = "Where to write the replay file on failure (default replay_<scenario>_<seed>.json)." in
  Arg.(value & opt (some string) None & info [ "replay-out" ] ~docv:"FILE" ~doc)

let check_list_arg =
  let doc = "List the scenarios and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let check_run seed iters depth scenario replay replay_out list =
  exit
    (Check_cli.run_check ~seed ~budget:iters ~depth ~scenario ~replay ~replay_out ~list)

let check_cmd =
  let doc =
    "Systematically explore thread interleavings of the lock-free deque and the native pool \
     under a seeded PCT-style controller.  Deterministic per seed; failing schedules are \
     shrunk to a minimal decision trace and saved as a replay file."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const check_run $ seed_arg $ check_iters_arg $ check_depth_arg $ check_scenario_arg
      $ check_replay_arg $ check_replay_out_arg $ check_list_arg)

let default =
  Term.(ret (const (fun () -> `Help (`Pager, None)) $ const ()))

let () =
  let info =
    Cmd.info "repro" ~version:"1.0"
      ~doc:
        "Reproduction of 'Scheduling Threads for Low Space Requirement and Good Locality' \
         (Narlikar, SPAA 1999)."
  in
  (* allow `repro table1` as a shortcut for `repro exp table1` *)
  let argv = Sys.argv in
  let argv =
    if Array.length argv > 1 && (List.mem argv.(1) exp_ids || argv.(1) = "all") then
      Array.concat [ [| argv.(0); "exp" |]; Array.sub argv 1 (Array.length argv - 1) ]
    else argv
  in
  exit
    (Cmd.eval ~argv
       (Cmd.group ~default info
          [ list_cmd; exp_cmd; run_cmd; analyze_cmd; trace_cmd; dot_cmd; chaos_cmd; soak_cmd;
            check_cmd; metrics_cmd ]))
