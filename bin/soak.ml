(* repro soak — deterministic soak campaigns against the supervised job
   service (Dfd_service.Service).

   A soak run drives the service for [duration] logical steps under a
   named fault plan.  Each plan is a pure function from (step, duration)
   to a list of job submissions, drawn from six archetypes whose outcome
   *class* is deterministic even though pool timing is not:

   - ok     small fork-join reduction with allocation hints; completes.
   - spike  one huge allocation hint; completes, but drives the adaptive
            quota controller's pressure signal up.
   - exn    always raises; retried to budget exhaustion, then Failed.
   - flaky  raises on the first attempt only; Completed after one retry.
   - slow   endless forking under a tight per-job deadline; every attempt
            times out, then Failed.
   - wedge  spins on a flag without touching the pool — invisible to
            cooperative cancellation.  The supervisor declares the pool
            wedged, respawns it, and requeues the job exactly once; the
            respawn callback releases the flag, so the second attempt
            completes.  Expected: Completed with requeues = 1.

   After the submission phase the service is driven to idle and audited:
   the exactly-once ledger must verify, every accepted job must land in
   its archetype's outcome class, wedge/respawn counters must equal the
   number of accepted wedge jobs, and (under the dfd policy with spikes
   in the plan) the quota trajectory must show the controller shrinking K
   under pressure and regrowing it afterwards.

   The JSON report contains only logical-clock facts — counters, the
   ledger, quota and breaker trajectories, per-step submission results —
   never wall-clock readings, so two runs with the same seed and
   arguments are byte-identical.  The exit code is gated on the ledger
   audit and the outcome oracle, never on timing. *)

module Service = Dfd_service.Service
module Retry = Dfd_service.Retry
module Breaker = Dfd_service.Breaker
module Quota_ctl = Dfd_service.Quota_ctl
module Pool = Dfd_runtime.Pool
module Json = Dfd_trace.Json
module Registry = Dfd_obs.Registry

type plan = P_none | P_exns | P_wedges | P_spikes | P_mixed

let plan_name = function
  | P_none -> "none"
  | P_exns -> "exns"
  | P_wedges -> "wedges"
  | P_spikes -> "spikes"
  | P_mixed -> "mixed"

let plans =
  [ ("none", P_none); ("exns", P_exns); ("wedges", P_wedges); ("spikes", P_spikes);
    ("mixed", P_mixed) ]

type kind = Ok_job | Spike | Exn | Flaky | Slow | Wedge

let kind_name = function
  | Ok_job -> "ok"
  | Spike -> "spike"
  | Exn -> "exn"
  | Flaky -> "flaky"
  | Slow -> "slow"
  | Wedge -> "wedge"

(* The submission schedule: which jobs to offer at step [s] (1-based).
   Pure in (plan, duration, s) — the whole campaign replays from the
   report header. *)
let schedule plan ~duration s =
  match plan with
  | P_none -> [ Ok_job ]
  | P_exns ->
    (if s mod 5 = 0 then [ Exn ] else [])
    @ (if s mod 7 = 3 then [ Flaky ] else [])
    @ (if s = 2 then [ Slow ] else [])
    @ [ Ok_job ]
  | P_wedges -> (if s = 3 || s = duration / 2 then [ Wedge ] else []) @ [ Ok_job ]
  | P_spikes -> if s <= duration / 4 then [ Spike ] else [ Ok_job ]
  | P_mixed ->
    (if s <= duration / 6 then [ Spike ] else [])
    @ (if s mod 7 = 0 then [ Exn ] else [])
    @ (if s mod 11 = 4 then [ Flaky ] else [])
    @ (if s = duration / 3 || s = 2 * duration / 3 then [ Wedge ] else [])
    @ (if s = duration - 5 then List.init 12 (fun _ -> Ok_job) else [ Ok_job ])

(* ------------------------------------------------------------------ *)
(* Job bodies                                                          *)
(* ------------------------------------------------------------------ *)

let ok_body () =
  ignore
    (Pool.parallel_reduce ~zero:0 ~op:( + ) ~lo:0 ~hi:64 (fun i ->
         Pool.alloc_hint 16;
         i))

let spike_bytes = 400_000

let spike_body () = Pool.alloc_hint spike_bytes

let exn_body () = failwith "injected"

let flaky_body tripped () =
  if not (Atomic.exchange tripped true) then failwith "flaky"

let slow_body () =
  let rec loop () =
    ignore (Pool.fork_join (fun () -> ()) (fun () -> ()));
    loop ()
  in
  loop ()

let wedge_body flag () = while not (Atomic.get flag) do Domain.cpu_relax () done

(* ------------------------------------------------------------------ *)
(* Service configuration for soak campaigns                            *)
(* ------------------------------------------------------------------ *)

let soak_retry = { Retry.max_attempts = 3; base_delay = 1; max_delay = 8 }

let soak_breaker = { Breaker.failure_threshold = 4; cooldown = 12; probe_budget = 2 }

let soak_quota =
  {
    Quota_ctl.k_init = 32_000;
    k_min = 4_000;
    k_max = 32_000;
    high_watermark = 50_000;
    low_watermark = 10_000;
    recover_steps = 2;
  }

let slow_deadline = 0.05

(* ------------------------------------------------------------------ *)
(* JSON rendering (logical-clock facts only)                           *)
(* ------------------------------------------------------------------ *)

let outcome_fields = function
  | None -> [ ("outcome", Json.String "unresolved") ]
  | Some Service.Completed -> [ ("outcome", Json.String "completed") ]
  | Some (Service.Failed m) ->
    [ ("outcome", Json.String "failed"); ("detail", Json.String m) ]
  | Some (Service.Rejected r) ->
    [ ("outcome", Json.String "rejected");
      ("reason", Json.String (Service.reject_reason_name r)) ]

(* The counters object is rendered from the registry's sample type (the
   same path `repro metrics` exposes); [Service.counter_samples] keeps the
   exact key set and order this report has always had. *)
let counters_json svc = Registry.Snapshot.to_flat_json (Service.counter_samples svc)

let config_json ~policy_name ~queue_capacity ~with_quota =
  Json.Assoc
    [
      ("policy", Json.String policy_name);
      ("queue_capacity", Json.Int queue_capacity);
      ( "retry",
        Json.Assoc
          [
            ("max_attempts", Json.Int soak_retry.Retry.max_attempts);
            ("base_delay", Json.Int soak_retry.Retry.base_delay);
            ("max_delay", Json.Int soak_retry.Retry.max_delay);
          ] );
      ( "breaker",
        Json.Assoc
          [
            ("failure_threshold", Json.Int soak_breaker.Breaker.failure_threshold);
            ("cooldown", Json.Int soak_breaker.Breaker.cooldown);
            ("probe_budget", Json.Int soak_breaker.Breaker.probe_budget);
          ] );
      ( "quota_ctl",
        if with_quota then
          Json.Assoc
            [
              ("k_init", Json.Int soak_quota.Quota_ctl.k_init);
              ("k_min", Json.Int soak_quota.Quota_ctl.k_min);
              ("k_max", Json.Int soak_quota.Quota_ctl.k_max);
              ("high_watermark", Json.Int soak_quota.Quota_ctl.high_watermark);
              ("low_watermark", Json.Int soak_quota.Quota_ctl.low_watermark);
              ("recover_steps", Json.Int soak_quota.Quota_ctl.recover_steps);
            ]
        else Json.Null );
    ]

(* ------------------------------------------------------------------ *)
(* The campaign                                                        *)
(* ------------------------------------------------------------------ *)

let run_soak ~seed ~duration ~plan ~policy ~wedge_grace ~json_out ~flight_dir =
  if duration < 12 then begin
    prerr_endline "repro soak: --duration-steps must be at least 12";
    exit 2
  end;
  let dfd = policy = `Dfd in
  let pool_policy =
    if dfd then Pool.Dfdeques { quota = soak_quota.Quota_ctl.k_init } else Pool.Work_stealing
  in
  let policy_name = if dfd then "dfd" else "ws" in
  let queue_capacity = 8 in
  let wedge_flags : (int, bool Atomic.t) Hashtbl.t = Hashtbl.create 8 in
  let on_pool_retired ~in_flight =
    match in_flight with
    | Some id -> (
        match Hashtbl.find_opt wedge_flags id with
        | Some flag -> Atomic.set flag true
        | None -> ())
    | None -> ()
  in
  let config =
    {
      Service.seed;
      queue_capacity;
      retry = soak_retry;
      breaker = soak_breaker;
      quota_ctl = (if dfd then Some soak_quota else None);
      default_deadline = None;
      wedge_grace;
      domains = 2;
      max_respawns = 16;
      on_pool_retired = Some on_pool_retired;
    }
  in
  let svc = Service.create ?flight_dir ~config pool_policy in
  (* submission phase: one service step per schedule step *)
  let submissions = ref [] in
  (* periodic stable telemetry snapshots for the report: only probes
     registered stable (the dfd_service_* family) appear, so each snapshot
     is a pure function of (seed, submission order) — byte-identical per
     seed like the rest of the report *)
  let snap_every = max 1 (duration / 4) in
  let snaps = ref [] in
  let take_snap s = snaps := (s, Service.metrics_snapshot ~stable_only:true svc) :: !snaps in
  for s = 1 to duration do
    List.iter
      (fun kind ->
         let class_ = kind_name kind in
         let deadline = match kind with Slow -> Some slow_deadline | _ -> None in
         let result =
           match kind with
           | Wedge ->
             (* the release flag must be findable by the id [submit]
                assigns, so the respawn callback can free the stuck task *)
             let flag = Atomic.make false in
             let result = Service.submit svc ~class_ (wedge_body flag) in
             (match result with
              | Ok id -> Hashtbl.replace wedge_flags id flag
              | Error _ -> ());
             result
           | Ok_job -> Service.submit svc ~class_ ok_body
           | Spike -> Service.submit svc ~class_ spike_body
           | Exn -> Service.submit svc ~class_ exn_body
           | Flaky -> Service.submit svc ~class_ (flaky_body (Atomic.make false))
           | Slow -> Service.submit svc ~class_ ?deadline slow_body
         in
         submissions := (s, kind, result) :: !submissions)
      (schedule plan ~duration s);
    Service.step svc;
    if s mod snap_every = 0 then take_snap s
  done;
  (* drain: retries may still be pending *)
  Service.drive ~max_steps:(duration * 20) svc;
  take_snap (Service.now svc);
  let snaps = List.rev !snaps in
  let idle = Service.idle svc in
  let c = Service.counters svc in
  let entries = Service.ledger svc in
  let entry_tbl = Hashtbl.create 64 in
  List.iter (fun (e : Service.entry) -> Hashtbl.replace entry_tbl e.Service.job e) entries;
  (* ---- the oracle ---- *)
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  if not idle then violate "service not idle after drain";
  (match Service.verify_ledger svc with
   | Ok () -> ()
   | Error m -> violate "ledger audit failed: %s" m);
  if c.Service.duplicate_acks <> 0 then
    violate "%d duplicate acknowledgements" c.Service.duplicate_acks;
  let submissions = List.rev !submissions in
  let accepted_wedges = ref 0 in
  List.iter
    (fun (step, kind, result) ->
       match result with
       | Error _ -> ()
       | Ok id ->
         if kind = Wedge then incr accepted_wedges;
         (match Hashtbl.find_opt entry_tbl id with
          | None -> violate "job %d (step %d) missing from the ledger" id step
          | Some e ->
            let expect_outcome name pred =
              match e.Service.outcome with
              | Some o when pred o -> ()
              | o ->
                violate "job %d (%s, step %d): expected %s, got %s" id (kind_name kind) step
                  name
                  (match o with
                   | None -> "unresolved"
                   | Some Service.Completed -> "completed"
                   | Some (Service.Failed m) -> "failed: " ^ m
                   | Some (Service.Rejected r) ->
                     "rejected: " ^ Service.reject_reason_name r)
            in
            let completed = function Service.Completed -> true | _ -> false in
            let failed = function Service.Failed _ -> true | _ -> false in
            (match kind with
             | Ok_job | Spike -> expect_outcome "completed" completed
             | Flaky ->
               expect_outcome "completed" completed;
               if e.Service.attempts <> 2 then
                 violate "job %d (flaky): expected 2 attempts, got %d" id e.Service.attempts
             | Exn | Slow ->
               expect_outcome "failed" failed;
               if e.Service.attempts <> soak_retry.Retry.max_attempts then
                 violate "job %d (%s): expected %d attempts, got %d" id (kind_name kind)
                   soak_retry.Retry.max_attempts e.Service.attempts
             | Wedge ->
               expect_outcome "completed" completed;
               if e.Service.requeues <> 1 then
                 violate "job %d (wedge): expected exactly 1 requeue, got %d" id
                   e.Service.requeues)))
    submissions;
  if c.Service.wedges <> !accepted_wedges then
    violate "wedge counter %d but %d wedge jobs accepted" c.Service.wedges !accepted_wedges;
  if c.Service.respawns <> !accepted_wedges then
    violate "respawn counter %d but %d wedge jobs accepted" c.Service.respawns !accepted_wedges;
  (* adaptive-K acceptance: under dfd with spikes in the plan, the
     controller must have shrunk K below its initial value and recovered
     to the ceiling once pressure subsided *)
  let quota_traj = Service.quota_trajectory svc in
  if dfd && (plan = P_spikes || plan = P_mixed) then begin
    if not (List.exists (fun (_, k) -> k < soak_quota.Quota_ctl.k_init) quota_traj) then
      violate "quota controller never shrank K below k_init under allocation spikes";
    (match Service.quota svc with
     | Some k when k = soak_quota.Quota_ctl.k_max -> ()
     | Some k -> violate "quota did not recover to k_max after calm period (final K = %d)" k
     | None -> violate "dfd service reports no quota")
  end;
  let breaker_trans = Service.breaker_transitions svc in
  if plan = P_exns || plan = P_mixed then begin
    if not (List.exists (fun (_, cl, st) -> cl = "exn" && st = "open") breaker_trans) then
      violate "breaker for class 'exn' never opened under repeated failures"
  end;
  let violations = List.rev !violations in
  let passed = violations = [] in
  (* ---- the report ---- *)
  let report =
    Json.Assoc
      [
        ("seed", Json.Int seed);
        ("plan", Json.String (plan_name plan));
        ("duration_steps", Json.Int duration);
        ("final_step", Json.Int (Service.now svc));
        ("config", config_json ~policy_name ~queue_capacity ~with_quota:dfd);
        ( "submissions",
          Json.List
            (List.map
               (fun (step, kind, result) ->
                  Json.Assoc
                    ([ ("step", Json.Int step); ("kind", Json.String (kind_name kind)) ]
                     @
                     match result with
                     | Ok id -> [ ("accepted", Json.Bool true); ("job", Json.Int id) ]
                     | Error r ->
                       [ ("accepted", Json.Bool false);
                         ("reason", Json.String (Service.reject_reason_name r)) ]))
               submissions) );
        ( "ledger",
          Json.List
            (List.map
               (fun (e : Service.entry) ->
                  Json.Assoc
                    ([
                       ("job", Json.Int e.Service.job);
                       ("class", Json.String e.Service.class_);
                       ("attempts", Json.Int e.Service.attempts);
                       ("requeues", Json.Int e.Service.requeues);
                     ]
                     @ outcome_fields e.Service.outcome))
               entries) );
        ( "quota_trajectory",
          Json.List
            (List.map (fun (s, k) -> Json.List [ Json.Int s; Json.Int k ]) quota_traj) );
        ( "breaker_transitions",
          Json.List
            (List.map
               (fun (s, cl, st) ->
                  Json.List [ Json.Int s; Json.String cl; Json.String st ])
               breaker_trans) );
        ("counters", counters_json svc);
        ( "metrics",
          Json.Assoc
            [
              ("snapshot_every", Json.Int snap_every);
              ( "snapshots",
                Json.List
                  (List.map
                     (fun (s, samples) ->
                        Json.Assoc
                          [
                            ("step", Json.Int s);
                            ("samples", Registry.Snapshot.to_json samples);
                          ])
                     snaps) );
            ] );
        ( "checks",
          Json.Assoc
            [
              ("ledger_verified", Json.Bool (Service.verify_ledger svc = Ok ()));
              ("violations", Json.List (List.map (fun m -> Json.String m) violations));
              ("all_passed", Json.Bool passed);
            ] );
      ]
  in
  Service.shutdown ~reap:true svc;
  (match json_out with
   | None -> ()
   | Some path ->
     (try
        let oc = open_out path in
        Json.to_channel oc report;
        output_char oc '\n';
        close_out oc
      with Sys_error m ->
        Printf.eprintf "repro: cannot write %s: %s\n" path m;
        exit 1);
     Printf.printf "report: %s\n" path);
  Printf.printf
    "soak[%s/%s]: %d submitted (%d accepted, %d shed), %d completed, %d failed, %d retries, %d \
     timeouts, %d wedges -> %d respawns, %d quota moves, %d breaker transitions\n"
    (plan_name plan) policy_name (List.length submissions) c.Service.accepted
    (c.Service.rejected_queue_full + c.Service.rejected_breaker_open
     + c.Service.rejected_memory_pressure)
    c.Service.completions c.Service.failures c.Service.retries c.Service.timeouts
    c.Service.wedges c.Service.respawns (List.length quota_traj) (List.length breaker_trans);
  List.iter (fun m -> Printf.printf "  VIOLATION: %s\n" m) violations;
  if passed then begin
    print_endline "soak: PASS";
    0
  end
  else begin
    print_endline "soak: FAIL";
    1
  end
