(* repro soak — deterministic soak campaigns against the supervised job
   service (Dfd_service.Service).

   Two families of campaigns share the driver:

   {b Fault plans} (the historical single-tenant mode) drive the default
   lane for [duration] logical steps under a named plan.  Each plan is a
   pure function from (step, duration) to a list of job submissions,
   drawn from six archetypes whose outcome *class* is deterministic even
   though pool timing is not:

   - ok     small fork-join reduction with allocation hints; completes.
   - spike  one huge allocation hint; completes, but drives the adaptive
            quota controller's pressure signal up.
   - exn    always raises; retried to budget exhaustion, then Failed.
   - flaky  raises on the first attempt only; Completed after one retry.
   - slow   endless forking under a tight per-job deadline; every attempt
            times out, then Failed.
   - wedge  spins on a flag without touching the pool — invisible to
            cooperative cancellation.  The supervisor declares the pool
            wedged, respawns it, and requeues the job exactly once; the
            respawn callback releases the flag, so the second attempt
            completes.  Expected: Completed with requeues = 1.

   {b Tenant plans} (--tenants normal|bully) run the multi-tenant front
   door under seeded open-loop load: three tenants (gold w4, silver w2,
   bronze w1) submit per-step arrivals drawn from per-tenant splitmix64
   streams.  Under `bully', bronze offers ~10x its normal load laced
   with allocation spikes; the oracle then checks the isolation story —
   the bully is shed first (and only the bully), victims complete
   >= 99% with bounded p99, every lane stays within its bound, the
   bully's K shrinks while the victims' K budgets never dip, and the
   peak per-attempt allocation stays inside the Theorem-4.4 headroom
   budget.  Per-tenant latency quantiles come from [Stats.Histogram];
   the global distribution is their [Histogram.merge].

   After the submission phase the service is driven to idle and audited.
   The JSON report contains only logical-clock facts — counters, the
   ledger, quota/breaker/ladder trajectories, per-tenant sections —
   never wall-clock readings, so two runs with the same seed and
   arguments are byte-identical.  The exit code is gated on the ledger
   audit and the oracle, never on timing. *)

module Service = Dfd_service.Service
module Handle = Dfd_service.Handle
module Tenant = Dfd_service.Tenant
module Ladder = Dfd_service.Ladder
module Retry = Dfd_service.Retry
module Breaker = Dfd_service.Breaker
module Quota_ctl = Dfd_service.Quota_ctl
module Pool = Dfd_runtime.Pool
module Json = Dfd_trace.Json
module Registry = Dfd_obs.Registry
module Headroom = Dfd_obs.Headroom
module Stats = Dfd_structures.Stats
module Prng = Dfd_structures.Prng

type plan = P_none | P_exns | P_wedges | P_spikes | P_mixed

let plan_name = function
  | P_none -> "none"
  | P_exns -> "exns"
  | P_wedges -> "wedges"
  | P_spikes -> "spikes"
  | P_mixed -> "mixed"

let plans =
  [ ("none", P_none); ("exns", P_exns); ("wedges", P_wedges); ("spikes", P_spikes);
    ("mixed", P_mixed) ]

type tenant_mode = T_off | T_normal | T_bully

let tenant_modes = [ ("normal", T_normal); ("bully", T_bully) ]

let tenant_mode_name = function
  | T_off -> "off"
  | T_normal -> "tenants-normal"
  | T_bully -> "tenants-bully"

type kind = Ok_job | Spike | Exn | Flaky | Slow | Wedge

let kind_name = function
  | Ok_job -> "ok"
  | Spike -> "spike"
  | Exn -> "exn"
  | Flaky -> "flaky"
  | Slow -> "slow"
  | Wedge -> "wedge"

(* The submission schedule: which jobs to offer at step [s] (1-based).
   Pure in (plan, duration, s) — the whole campaign replays from the
   report header. *)
let schedule plan ~duration s =
  match plan with
  | P_none -> [ Ok_job ]
  | P_exns ->
    (if s mod 5 = 0 then [ Exn ] else [])
    @ (if s mod 7 = 3 then [ Flaky ] else [])
    @ (if s = 2 then [ Slow ] else [])
    @ [ Ok_job ]
  | P_wedges -> (if s = 3 || s = duration / 2 then [ Wedge ] else []) @ [ Ok_job ]
  | P_spikes -> if s <= duration / 4 then [ Spike ] else [ Ok_job ]
  | P_mixed ->
    (if s <= duration / 6 then [ Spike ] else [])
    @ (if s mod 7 = 0 then [ Exn ] else [])
    @ (if s mod 11 = 4 then [ Flaky ] else [])
    @ (if s = duration / 3 || s = 2 * duration / 3 then [ Wedge ] else [])
    @ (if s = duration - 5 then List.init 12 (fun _ -> Ok_job) else [ Ok_job ])

(* ------------------------------------------------------------------ *)
(* Job bodies                                                          *)
(* ------------------------------------------------------------------ *)

let ok_body () =
  ignore
    (Pool.parallel_reduce ~zero:0 ~op:( + ) ~lo:0 ~hi:64 (fun i ->
         Pool.alloc_hint 16;
         i))

let spike_bytes = 400_000

let spike_body () = Pool.alloc_hint spike_bytes

let exn_body () = failwith "injected"

let flaky_body tripped () =
  if not (Atomic.exchange tripped true) then failwith "flaky"

let slow_body () =
  let rec loop () =
    ignore (Pool.fork_join (fun () -> ()) (fun () -> ()));
    loop ()
  in
  loop ()

let wedge_body flag () = while not (Atomic.get flag) do Domain.cpu_relax () done

(* ------------------------------------------------------------------ *)
(* Service configuration for soak campaigns                            *)
(* ------------------------------------------------------------------ *)

let soak_retry = { Retry.max_attempts = 3; base_delay = 1; max_delay = 8 }

let soak_breaker = { Breaker.failure_threshold = 4; cooldown = 12; probe_budget = 2 }

let soak_quota =
  {
    Quota_ctl.k_init = 32_000;
    k_min = 4_000;
    k_max = 32_000;
    high_watermark = 50_000;
    low_watermark = 10_000;
    recover_steps = 2;
  }

let slow_deadline = 0.05

(* The multi-tenant lanes: weight is declared importance, so the
   low-weight bronze lane is where a bully is cheapest to run and the
   first to be shed. *)
let soak_tenants =
  [
    Tenant.make ~weight:4 ~queue_bound:16 "gold";
    Tenant.make ~weight:2 ~queue_bound:12 "silver";
    Tenant.make ~weight:1 ~queue_bound:8 "bronze";
  ]

(* Ladder thresholds for the tenant campaigns: with 36 aggregate slots, a
   full bronze lane alone (8 jobs, 22%) must already read as overload. *)
let soak_ladder = { Ladder.coalesce_at = 10; shed_at = 20; break_at = 95; calm_steps = 3 }

(* Headroom estimates for the tenant campaigns: generous S1/D guesses
   that make the Theorem-4.4 budget a real (finite, nonzero) ceiling the
   400 kB spikes must stay under. *)
let soak_headroom_s1 = 600_000

let soak_headroom_depth = 2

(* ------------------------------------------------------------------ *)
(* JSON rendering (logical-clock facts only)                           *)
(* ------------------------------------------------------------------ *)

let outcome_fields = function
  | None -> [ ("outcome", Json.String "unresolved") ]
  | Some Service.Completed -> [ ("outcome", Json.String "completed") ]
  | Some (Service.Failed m) ->
    [ ("outcome", Json.String "failed"); ("detail", Json.String m) ]
  | Some (Service.Rejected r) ->
    [ ("outcome", Json.String "rejected");
      ("reason", Json.String (Service.reject_reason_name r)) ]
  | Some Service.Cancelled -> [ ("outcome", Json.String "cancelled") ]

(* The counters object is rendered from the registry's sample type (the
   same path `repro metrics` exposes); [Service.counter_samples] keeps the
   exact key set and order this report has always had. *)
let counters_json svc = Registry.Snapshot.to_flat_json (Service.counter_samples svc)

let config_json ~policy_name ~with_quota ~tenants ~ladder =
  Json.Assoc
    ([
       ("policy", Json.String policy_name);
       ( "tenants",
         Json.List
           (List.map
              (fun (tn : Tenant.t) ->
                 Json.Assoc
                   [
                     ("name", Json.String tn.Tenant.name);
                     ("weight", Json.Int tn.Tenant.weight);
                     ("queue_bound", Json.Int tn.Tenant.queue_bound);
                   ])
              tenants) );
       ( "retry",
         Json.Assoc
           [
             ("max_attempts", Json.Int soak_retry.Retry.max_attempts);
             ("base_delay", Json.Int soak_retry.Retry.base_delay);
             ("max_delay", Json.Int soak_retry.Retry.max_delay);
           ] );
       ( "breaker",
         Json.Assoc
           [
             ("failure_threshold", Json.Int soak_breaker.Breaker.failure_threshold);
             ("cooldown", Json.Int soak_breaker.Breaker.cooldown);
             ("probe_budget", Json.Int soak_breaker.Breaker.probe_budget);
           ] );
       ( "quota_ctl",
         if with_quota then
           Json.Assoc
             [
               ("k_init", Json.Int soak_quota.Quota_ctl.k_init);
               ("k_min", Json.Int soak_quota.Quota_ctl.k_min);
               ("k_max", Json.Int soak_quota.Quota_ctl.k_max);
               ("high_watermark", Json.Int soak_quota.Quota_ctl.high_watermark);
               ("low_watermark", Json.Int soak_quota.Quota_ctl.low_watermark);
               ("recover_steps", Json.Int soak_quota.Quota_ctl.recover_steps);
             ]
         else Json.Null );
     ]
     @
     match ladder with
     | None -> []
     | Some (l : Ladder.config) ->
       [
         ( "ladder",
           Json.Assoc
             [
               ("coalesce_at", Json.Int l.Ladder.coalesce_at);
               ("shed_at", Json.Int l.Ladder.shed_at);
               ("break_at", Json.Int l.Ladder.break_at);
               ("calm_steps", Json.Int l.Ladder.calm_steps);
             ] );
       ])

let quantile_json h =
  let q p = match Stats.Histogram.quantile h p with Some v -> Json.Float v | None -> Json.Null in
  Json.Assoc
    [
      ("count", Json.Int (Stats.Histogram.count h));
      ("p50", q 0.5);
      ("p90", q 0.9);
      ("p99", q 0.99);
    ]

let tenant_json (ts : Service.tenant_stats) =
  Json.Assoc
    [
      ("name", Json.String ts.Service.ts_name);
      ("weight", Json.Int ts.Service.ts_weight);
      ("queue_bound", Json.Int ts.Service.ts_bound);
      ("accepted", Json.Int ts.Service.ts_accepted);
      ("coalesced", Json.Int ts.Service.ts_coalesced);
      ("completions", Json.Int ts.Service.ts_completions);
      ("failures", Json.Int ts.Service.ts_failures);
      ("cancelled", Json.Int ts.Service.ts_cancelled);
      ( "rejected",
        Json.Assoc
          [
            ("queue_full", Json.Int ts.Service.ts_rejected_queue_full);
            ("breaker_open", Json.Int ts.Service.ts_rejected_breaker_open);
            ("memory_pressure", Json.Int ts.Service.ts_rejected_memory_pressure);
            ("overloaded", Json.Int ts.Service.ts_rejected_overloaded);
          ] );
      ( "first_shed_step",
        match ts.Service.ts_first_shed with None -> Json.Null | Some s -> Json.Int s );
      ("peak_depth", Json.Int ts.Service.ts_peak_depth);
      ("latency_steps", quantile_json ts.Service.ts_latency);
      ( "quota",
        match ts.Service.ts_quota with None -> Json.Null | Some k -> Json.Int k );
      ( "quota_trajectory",
        Json.List
          (List.map
             (fun (s, k) -> Json.List [ Json.Int s; Json.Int k ])
             ts.Service.ts_quota_trajectory) );
    ]

let ladder_json svc =
  Json.Assoc
    [
      ("final", Json.String (Ladder.level_name (Service.ladder_level svc)));
      ( "transitions",
        Json.List
          (List.map
             (fun (s, lvl) -> Json.List [ Json.Int s; Json.String (Ladder.level_name lvl) ])
             (Service.ladder_transitions svc)) );
    ]

let headroom_json svc =
  let h = Service.headroom svc in
  let peak = Headroom.peak h and budget = Headroom.budget h in
  Json.Assoc
    [
      ("peak_bytes", Json.Int peak);
      ("budget_bytes", Json.Int budget);
      ("within_budget", Json.Bool (peak <= budget));
    ]

let ledger_json entries =
  Json.List
    (List.map
       (fun (e : Service.entry) ->
          Json.Assoc
            ([
               ("job", Json.Int e.Service.job);
               ("tenant", Json.String e.Service.tenant);
               ("class", Json.String e.Service.class_);
               ("attempts", Json.Int e.Service.attempts);
               ("requeues", Json.Int e.Service.requeues);
             ]
             @ outcome_fields e.Service.outcome))
       entries)

let breaker_json svc =
  Json.List
    (List.map
       (fun (s, cl, st) -> Json.List [ Json.Int s; Json.String cl; Json.String st ])
       (Service.breaker_transitions svc))

let write_report ~json_out report =
  match json_out with
  | None -> ()
  | Some path ->
    (try
       let oc = open_out path in
       Json.to_channel oc report;
       output_char oc '\n';
       close_out oc
     with Sys_error m ->
       Printf.eprintf "repro: cannot write %s: %s\n" path m;
       exit 1);
    Printf.printf "report: %s\n" path

let finish ~violations =
  List.iter (fun m -> Printf.printf "  VIOLATION: %s\n" m) violations;
  if violations = [] then begin
    print_endline "soak: PASS";
    0
  end
  else begin
    print_endline "soak: FAIL";
    1
  end

(* ------------------------------------------------------------------ *)
(* The single-tenant fault campaign                                    *)
(* ------------------------------------------------------------------ *)

let run_fault_soak ~seed ~duration ~plan ~policy ~wedge_grace ~json_out ~flight_dir =
  let dfd = policy = `Dfd in
  let pool_policy =
    if dfd then Pool.Dfdeques { quota = soak_quota.Quota_ctl.k_init } else Pool.Work_stealing
  in
  let policy_name = if dfd then "dfd" else "ws" in
  let tenants = [ Tenant.make ~weight:1 ~queue_bound:8 "default" ] in
  let wedge_flags : (int, bool Atomic.t) Hashtbl.t = Hashtbl.create 8 in
  let on_pool_retired ~in_flight =
    match in_flight with
    | Some id -> (
        match Hashtbl.find_opt wedge_flags id with
        | Some flag -> Atomic.set flag true
        | None -> ())
    | None -> ()
  in
  let config =
    {
      Service.seed;
      tenants;
      ladder = Ladder.default_config;
      retry = soak_retry;
      breaker = soak_breaker;
      quota_ctl = (if dfd then Some soak_quota else None);
      default_deadline = None;
      wedge_grace;
      domains = 2;
      max_respawns = 16;
      worker_respawn_budget = 0;
      on_pool_retired = Some on_pool_retired;
    }
  in
  let svc = Service.create ?flight_dir ~config pool_policy in
  (* submission phase: one service step per schedule step *)
  let submissions = ref [] in
  (* periodic stable telemetry snapshots for the report: only probes
     registered stable (the dfd_service_* family) appear, so each snapshot
     is a pure function of (seed, submission order) — byte-identical per
     seed like the rest of the report *)
  let snap_every = max 1 (duration / 4) in
  let snaps = ref [] in
  let take_snap s = snaps := (s, Service.metrics_snapshot ~stable_only:true svc) :: !snaps in
  for s = 1 to duration do
    List.iter
      (fun kind ->
         let class_ = kind_name kind in
         let deadline = match kind with Slow -> Some slow_deadline | _ -> None in
         let result =
           match kind with
           | Wedge ->
             (* the release flag must be findable by the id [submit]
                assigns, so the respawn callback can free the stuck task *)
             let flag = Atomic.make false in
             let result = Service.admission (Service.submit svc ~class_ (wedge_body flag)) in
             (match result with
              | Ok id -> Hashtbl.replace wedge_flags id flag
              | Error _ -> ());
             result
           | Ok_job -> Service.admission (Service.submit svc ~class_ ok_body)
           | Spike -> Service.admission (Service.submit svc ~class_ spike_body)
           | Exn -> Service.admission (Service.submit svc ~class_ exn_body)
           | Flaky ->
             Service.admission (Service.submit svc ~class_ (flaky_body (Atomic.make false)))
           | Slow -> Service.admission (Service.submit svc ~class_ ?deadline slow_body)
         in
         submissions := (s, kind, result) :: !submissions)
      (schedule plan ~duration s);
    Service.step svc;
    if s mod snap_every = 0 then take_snap s
  done;
  (* drain: retries may still be pending *)
  Service.drive ~max_steps:(duration * 20) svc;
  take_snap (Service.now svc);
  let snaps = List.rev !snaps in
  let idle = Service.idle svc in
  let c = Service.counters svc in
  let entries = Service.ledger svc in
  let entry_tbl = Hashtbl.create 64 in
  List.iter (fun (e : Service.entry) -> Hashtbl.replace entry_tbl e.Service.job e) entries;
  (* ---- the oracle ---- *)
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  if not idle then violate "service not idle after drain";
  (match Service.verify_ledger svc with
   | Ok () -> ()
   | Error m -> violate "ledger audit failed: %s" m);
  if c.Service.duplicate_acks <> 0 then
    violate "%d duplicate acknowledgements" c.Service.duplicate_acks;
  let submissions = List.rev !submissions in
  let accepted_wedges = ref 0 in
  List.iter
    (fun (step, kind, result) ->
       match result with
       | Error _ -> ()
       | Ok id ->
         if kind = Wedge then incr accepted_wedges;
         (match Hashtbl.find_opt entry_tbl id with
          | None -> violate "job %d (step %d) missing from the ledger" id step
          | Some e ->
            let expect_outcome name pred =
              match e.Service.outcome with
              | Some o when pred o -> ()
              | o ->
                violate "job %d (%s, step %d): expected %s, got %s" id (kind_name kind) step
                  name
                  (match o with
                   | None -> "unresolved"
                   | Some Service.Completed -> "completed"
                   | Some (Service.Failed m) -> "failed: " ^ m
                   | Some (Service.Rejected r) ->
                     "rejected: " ^ Service.reject_reason_name r
                   | Some Service.Cancelled -> "cancelled")
            in
            let completed = function Service.Completed -> true | _ -> false in
            let failed = function Service.Failed _ -> true | _ -> false in
            (match kind with
             | Ok_job | Spike -> expect_outcome "completed" completed
             | Flaky ->
               expect_outcome "completed" completed;
               if e.Service.attempts <> 2 then
                 violate "job %d (flaky): expected 2 attempts, got %d" id e.Service.attempts
             | Exn | Slow ->
               expect_outcome "failed" failed;
               if e.Service.attempts <> soak_retry.Retry.max_attempts then
                 violate "job %d (%s): expected %d attempts, got %d" id (kind_name kind)
                   soak_retry.Retry.max_attempts e.Service.attempts
             | Wedge ->
               expect_outcome "completed" completed;
               if e.Service.requeues <> 1 then
                 violate "job %d (wedge): expected exactly 1 requeue, got %d" id
                   e.Service.requeues)))
    submissions;
  if c.Service.wedges <> !accepted_wedges then
    violate "wedge counter %d but %d wedge jobs accepted" c.Service.wedges !accepted_wedges;
  if c.Service.respawns <> !accepted_wedges then
    violate "respawn counter %d but %d wedge jobs accepted" c.Service.respawns !accepted_wedges;
  (* adaptive-K acceptance: under dfd with spikes in the plan, the
     controller must have shrunk K below its initial value and recovered
     to the ceiling once pressure subsided *)
  let quota_traj = Service.quota_trajectory svc in
  if dfd && (plan = P_spikes || plan = P_mixed) then begin
    if not (List.exists (fun (_, k) -> k < soak_quota.Quota_ctl.k_init) quota_traj) then
      violate "quota controller never shrank K below k_init under allocation spikes";
    (match Service.quota svc with
     | Some k when k = soak_quota.Quota_ctl.k_max -> ()
     | Some k -> violate "quota did not recover to k_max after calm period (final K = %d)" k
     | None -> violate "dfd service reports no quota")
  end;
  let breaker_trans = Service.breaker_transitions svc in
  if plan = P_exns || plan = P_mixed then begin
    if not (List.exists (fun (_, cl, st) -> cl = "exn" && st = "open") breaker_trans) then
      violate "breaker for class 'exn' never opened under repeated failures"
  end;
  let violations = List.rev !violations in
  let passed = violations = [] in
  (* ---- the report ---- *)
  let report =
    Json.Assoc
      [
        ("seed", Json.Int seed);
        ("plan", Json.String (plan_name plan));
        ("duration_steps", Json.Int duration);
        ("final_step", Json.Int (Service.now svc));
        ("config", config_json ~policy_name ~with_quota:dfd ~tenants ~ladder:None);
        ( "submissions",
          Json.List
            (List.map
               (fun (step, kind, result) ->
                  Json.Assoc
                    ([ ("step", Json.Int step); ("kind", Json.String (kind_name kind)) ]
                     @
                     match result with
                     | Ok id -> [ ("accepted", Json.Bool true); ("job", Json.Int id) ]
                     | Error r ->
                       [ ("accepted", Json.Bool false);
                         ("reason", Json.String (Service.reject_reason_name r)) ]))
               submissions) );
        ("ledger", ledger_json entries);
        ( "quota_trajectory",
          Json.List
            (List.map (fun (s, k) -> Json.List [ Json.Int s; Json.Int k ]) quota_traj) );
        ("breaker_transitions", breaker_json svc);
        ("counters", counters_json svc);
        ( "metrics",
          Json.Assoc
            [
              ("snapshot_every", Json.Int snap_every);
              ( "snapshots",
                Json.List
                  (List.map
                     (fun (s, samples) ->
                        Json.Assoc
                          [
                            ("step", Json.Int s);
                            ("samples", Registry.Snapshot.to_json samples);
                          ])
                     snaps) );
            ] );
        ( "checks",
          Json.Assoc
            [
              ("ledger_verified", Json.Bool (Service.verify_ledger svc = Ok ()));
              ("violations", Json.List (List.map (fun m -> Json.String m) violations));
              ("all_passed", Json.Bool passed);
            ] );
      ]
  in
  Service.shutdown ~reap:true svc;
  write_report ~json_out report;
  Printf.printf
    "soak[%s/%s]: %d submitted (%d accepted, %d shed), %d completed, %d failed, %d retries, %d \
     timeouts, %d wedges -> %d respawns, %d quota moves, %d breaker transitions\n"
    (plan_name plan) policy_name (List.length submissions) c.Service.accepted
    (c.Service.rejected_queue_full + c.Service.rejected_breaker_open
     + c.Service.rejected_memory_pressure + c.Service.rejected_overloaded)
    c.Service.completions c.Service.failures c.Service.retries c.Service.timeouts
    c.Service.wedges c.Service.respawns (List.length quota_traj) (List.length breaker_trans);
  finish ~violations

(* ------------------------------------------------------------------ *)
(* The multi-tenant open-loop campaign                                 *)
(* ------------------------------------------------------------------ *)

(* Per-step arrivals for one tenant, drawn from its own stream so adding
   a tenant never shifts another's schedule.  Rates are per-mille per
   step; in bully mode bronze offers a deterministic 2 plus a coin for a
   third — roughly 10x its normal 0.25/step. *)
let arrivals mode tenant rng =
  let bernoulli rate = if Prng.int rng 1000 < rate then 1 else 0 in
  match (tenant, mode) with
  | "gold", _ -> bernoulli 250
  | "silver", _ -> bernoulli 220
  | "bronze", T_bully -> 2 + bernoulli 500
  | "bronze", _ -> bernoulli 250
  | _ -> 0

type t_submission = {
  u_step : int;
  u_tenant : string;
  u_class : string;
  u_result : (int, Service.reject_reason) result;
  u_coalesced : bool;
}

let run_tenant_soak ~seed ~duration ~mode ~policy ~wedge_grace ~json_out ~flight_dir =
  let dfd = policy = `Dfd in
  let pool_policy =
    if dfd then Pool.Dfdeques { quota = soak_quota.Quota_ctl.k_init } else Pool.Work_stealing
  in
  let policy_name = if dfd then "dfd" else "ws" in
  let config =
    {
      Service.seed;
      tenants = soak_tenants;
      ladder = soak_ladder;
      retry = soak_retry;
      breaker = soak_breaker;
      quota_ctl = (if dfd then Some soak_quota else None);
      default_deadline = None;
      wedge_grace;
      domains = 2;
      max_respawns = 4;
      worker_respawn_budget = 0;
      on_pool_retired = None;
    }
  in
  let svc =
    Service.create ?flight_dir ~headroom_s1:soak_headroom_s1
      ~headroom_depth:soak_headroom_depth ~config pool_policy
  in
  let master = Prng.create seed in
  let streams =
    List.map (fun (tn : Tenant.t) -> (tn.Tenant.name, Prng.split master)) soak_tenants
  in
  let submissions = ref [] in
  let bronze_jobs = ref 0 in
  let submit_one ~s tenant =
    (* class, body and coalescing key per tenant: gold is plain load;
       silver bursts a duplicate-keyed pair every 7th step (coalescing
       fodder); bronze in bully mode offers distinct non-idempotent jobs
       (a bully's flood must pile up, not coalesce away) and laces every
       4th with an allocation spike that only its own K controller
       should feel *)
    let class_, key, body =
      match tenant with
      | "gold" -> ("ok", None, ok_body)
      | "silver" ->
        if s mod 7 = 3 then ("dup", Some (Printf.sprintf "silver-%d" s), ok_body)
        else ("ok", None, ok_body)
      | _ ->
        incr bronze_jobs;
        if mode = T_bully then
          if !bronze_jobs mod 4 = 0 then ("spike", None, spike_body)
          else ("bully", None, ok_body)
        else ("ok", None, ok_body)
    in
    let before = (Service.counters svc).Service.coalesced in
    let h = Service.submit svc ~tenant ~class_ ?key body in
    let coalesced = (Service.counters svc).Service.coalesced > before in
    submissions :=
      {
        u_step = s;
        u_tenant = tenant;
        u_class = class_;
        u_result = Service.admission h;
        u_coalesced = coalesced;
      }
      :: !submissions
  in
  for s = 1 to duration do
    List.iter
      (fun (name, rng) ->
         let n = arrivals mode name rng in
         let n = if name = "silver" && s mod 7 = 3 then n + 1 else n in
         for _ = 1 to n do
           submit_one ~s name
         done)
      streams;
    Service.step svc
  done;
  Service.drive ~max_steps:(duration * 20) svc;
  let submissions = List.rev !submissions in
  let idle = Service.idle svc in
  let c = Service.counters svc in
  let entries = Service.ledger svc in
  let stats = Service.tenant_stats svc in
  let stat name = List.find (fun ts -> ts.Service.ts_name = name) stats in
  let bronze = stat "bronze" and gold = stat "gold" and silver = stat "silver" in
  (* ---- the oracle ---- *)
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  if not idle then violate "service not idle after drain";
  (match Service.verify_ledger svc with
   | Ok () -> ()
   | Error m -> violate "ledger audit failed: %s" m);
  if c.Service.duplicate_acks <> 0 then
    violate "%d duplicate acknowledgements" c.Service.duplicate_acks;
  (* every lane must stay within its configured bound, bully or not *)
  List.iter
    (fun ts ->
       if ts.Service.ts_peak_depth > ts.Service.ts_bound then
         violate "tenant %s peak queue depth %d exceeds bound %d" ts.Service.ts_name
           ts.Service.ts_peak_depth ts.Service.ts_bound)
    stats;
  (* the per-attempt allocation peak must respect the Theorem-4.4 budget *)
  let h = Service.headroom svc in
  if Headroom.peak h > Headroom.budget h then
    violate "headroom peak %d bytes exceeds Theorem-4.4 budget %d" (Headroom.peak h)
      (Headroom.budget h);
  (* victims complete >= 99% of their admitted work (coalesced riders
     complete through their primary, so they count on both sides) *)
  let completion_ratio ts =
    let offered = ts.Service.ts_accepted + ts.Service.ts_coalesced in
    if offered = 0 then 1.0 else float_of_int ts.Service.ts_completions /. float_of_int offered
  in
  List.iter
    (fun ts ->
       if completion_ratio ts < 0.99 then
         violate "victim tenant %s completion ratio %.3f < 0.99" ts.Service.ts_name
           (completion_ratio ts))
    [ gold; silver ];
  (match mode with
   | T_bully ->
     (* the ladder must have shed, and the bully strictly first *)
     (match bronze.Service.ts_first_shed with
      | None -> violate "bully was never shed by the overload ladder"
      | Some bs ->
        List.iter
          (fun ts ->
             match ts.Service.ts_first_shed with
             | Some vs when vs <= bs ->
               violate "victim %s shed at step %d, not after the bully (step %d)"
                 ts.Service.ts_name vs bs
             | _ -> ())
          [ gold; silver ]);
     if not (List.exists (fun (_, l) -> l = Ladder.Shed) (Service.ladder_transitions svc)) then
       violate "ladder never reached the Shed rung under bully load";
     if c.Service.coalesced = 0 then violate "no duplicate submission was coalesced under overload";
     (* victims' tail latency stays bounded: DRR guarantees their share *)
     List.iter
       (fun ts ->
          match Stats.Histogram.quantile ts.Service.ts_latency 0.99 with
          | Some p99 when p99 > 20.0 ->
            violate "victim %s p99 latency %.1f steps exceeds 20" ts.Service.ts_name p99
          | _ -> ())
       [ gold; silver ];
     if dfd then begin
       (* isolation of the K budgets: the bully's controller shrank,
          the victims' never dipped below their initial K *)
       if
         not
           (List.exists
              (fun (_, k) -> k < soak_quota.Quota_ctl.k_init)
              bronze.Service.ts_quota_trajectory)
       then violate "bully's K never shrank despite allocation spikes";
       List.iter
         (fun ts ->
            if
              List.exists
                (fun (_, k) -> k < soak_quota.Quota_ctl.k_init)
                ts.Service.ts_quota_trajectory
            then violate "victim %s's K dipped below k_init" ts.Service.ts_name)
         [ gold; silver ]
     end
   | T_normal | T_off ->
     (* under normal load nothing is shed anywhere; a transient Coalesce
        blip on a small burst is benign, the Shed rung is not *)
     let rejections ts =
       ts.Service.ts_rejected_queue_full + ts.Service.ts_rejected_breaker_open
       + ts.Service.ts_rejected_memory_pressure + ts.Service.ts_rejected_overloaded
     in
     List.iter
       (fun ts ->
          if rejections ts > 0 then
            violate "tenant %s saw %d rejections under normal load" ts.Service.ts_name
              (rejections ts))
       stats;
     if
       List.exists
         (fun (_, l) -> Ladder.level_index l >= Ladder.level_index Ladder.Shed)
         (Service.ladder_transitions svc)
     then violate "ladder reached the Shed rung under normal load");
  let violations = List.rev !violations in
  let passed = violations = [] in
  (* the global latency distribution is the merge of the per-tenant
     histograms — same observations, no re-binning *)
  let merged =
    List.fold_left
      (fun acc ts -> Stats.Histogram.merge acc ts.Service.ts_latency)
      (Stats.Histogram.create ()) stats
  in
  let report =
    Json.Assoc
      [
        ("seed", Json.Int seed);
        ("plan", Json.String (tenant_mode_name mode));
        ("duration_steps", Json.Int duration);
        ("final_step", Json.Int (Service.now svc));
        ( "config",
          config_json ~policy_name ~with_quota:dfd ~tenants:soak_tenants
            ~ladder:(Some soak_ladder) );
        ( "submissions",
          Json.List
            (List.map
               (fun u ->
                  Json.Assoc
                    ([
                       ("step", Json.Int u.u_step);
                       ("tenant", Json.String u.u_tenant);
                       ("kind", Json.String u.u_class);
                     ]
                     @
                     match u.u_result with
                     | Ok id ->
                       [
                         ("accepted", Json.Bool true);
                         ("job", Json.Int id);
                         ("coalesced", Json.Bool u.u_coalesced);
                       ]
                     | Error r ->
                       [
                         ("accepted", Json.Bool false);
                         ("reason", Json.String (Service.reject_reason_name r));
                       ]))
               submissions) );
        ("tenants", Json.List (List.map tenant_json stats));
        ("latency_all_steps", quantile_json merged);
        ("ladder", ladder_json svc);
        ("headroom", headroom_json svc);
        ("ledger", ledger_json entries);
        ("breaker_transitions", breaker_json svc);
        ("counters", counters_json svc);
        ( "checks",
          Json.Assoc
            [
              ("ledger_verified", Json.Bool (Service.verify_ledger svc = Ok ()));
              ("violations", Json.List (List.map (fun m -> Json.String m) violations));
              ("all_passed", Json.Bool passed);
            ] );
      ]
  in
  Service.shutdown ~reap:true svc;
  write_report ~json_out report;
  Printf.printf
    "soak[%s/%s]: %d submitted (%d accepted, %d coalesced, %d shed), %d completed, %d failed; \
     ladder %s with %d shifts; bully first shed %s\n"
    (tenant_mode_name mode) policy_name (List.length submissions) c.Service.accepted
    c.Service.coalesced
    (c.Service.rejected_queue_full + c.Service.rejected_breaker_open
     + c.Service.rejected_memory_pressure + c.Service.rejected_overloaded)
    c.Service.completions c.Service.failures
    (Ladder.level_name (Service.ladder_level svc))
    (List.length (Service.ladder_transitions svc))
    (match bronze.Service.ts_first_shed with
     | Some s -> Printf.sprintf "at step %d" s
     | None -> "never");
  finish ~violations

let run_soak ~seed ~duration ~plan ~tenants ~policy ~wedge_grace ~json_out ~flight_dir =
  if duration < 12 then begin
    prerr_endline "repro soak: --duration-steps must be at least 12";
    exit 2
  end;
  match tenants with
  | T_off -> run_fault_soak ~seed ~duration ~plan ~policy ~wedge_grace ~json_out ~flight_dir
  | mode -> run_tenant_soak ~seed ~duration ~mode ~policy ~wedge_grace ~json_out ~flight_dir
