(* repro chaos — seeded fault-injection campaigns against every scheduler.

   Two arenas:

   - the simulator: every policy runs randomly generated programs with the
     full fault plan active (stalls, forced steal failures, allocation
     spikes, lock-hold delays).  Lock-free campaigns additionally run the
     policy's structural invariant check after every timestep; lock-heavy
     campaigns exercise the lock-delay faults (invariant checking is off
     there — mutex wakeups intentionally approximate the priority order).
     The simulator is single-threaded, so each (seed, config) pair replays
     bitwise-identically: the report is byte-stable per seed.

   - the native pool: worker interleavings are not deterministic, so the
     pool campaigns only report deterministic facts — an injected task
     exception with probability 1 always propagates to the [run] caller,
     the pool completes a clean run afterwards, a run with a tight timeout
     over endless forking always raises [Timeout], and a degraded run
     under steal-failure injection still computes the right answer. *)

module Fault = Dfd_fault.Fault
module Prng = Dfd_structures.Prng
module Json = Dfd_trace.Json
module Engine = Dfdeques_core.Engine
module Pool = Dfd_runtime.Pool
module Registry = Dfd_obs.Registry
module Headroom = Dfd_obs.Headroom

type sim_outcome =
  | Ok_run of Engine.result
  | Invariant_violation of string
  | Watchdog_deadlock of string
  | Error of string

let scheds : (string * Engine.sched) list =
  [ ("dfd", `Dfdeques); ("ws", `Ws); ("adf", `Adf); ("fifo", `Fifo) ]

(* One simulator campaign: a fresh program, config and fault plan, all
   derived from [seed] so the whole campaign replays from the report. *)
let sim_campaign ~sched ~p ~seed ~lock_heavy =
  let params =
    if lock_heavy then Dfd_dag.Dag_gen.lock_heavy
    else { Dfd_dag.Dag_gen.default with max_depth = 7 }
  in
  let prog = Dfd_dag.Dag_gen.gen_prog (Prng.create seed) params in
  let cfg =
    Dfd_machine.Config.analysis ~p ~mem_threshold:(Some 2000) ~seed ()
  in
  let fault = Fault.create ~seed:(seed lxor 0x5eed) () in
  let check_invariants = not lock_heavy in
  let outcome =
    match Engine.run ~check_invariants ~fault ~sched cfg prog with
    | r -> Ok_run r
    | exception Engine.Deadlock m -> Watchdog_deadlock m
    | exception Failure m -> Invariant_violation m
    | exception e -> Error (Printexc.to_string e)
  in
  let fields =
    [
      ("seed", Json.Int seed);
      ("program", Json.String (if lock_heavy then "lock_heavy" else "default"));
      ("check_invariants", Json.Bool check_invariants);
      ("faults", Json.Assoc (List.map (fun (k, v) -> (k, Json.Int v)) (Fault.counts fault)));
    ]
  in
  let j =
    match outcome with
    | Ok_run r ->
      Json.Assoc
        (fields
         @ [
             ("outcome", Json.String "ok");
             ("time", Json.Int r.Engine.time);
             ("work", Json.Int r.Engine.work);
             ("steals", Json.Int r.Engine.steals);
             ("heap_peak", Json.Int r.Engine.heap_peak);
           ])
    | Invariant_violation m ->
      Json.Assoc (fields @ [ ("outcome", Json.String "invariant_violation"); ("detail", Json.String m) ])
    | Watchdog_deadlock m ->
      Json.Assoc (fields @ [ ("outcome", Json.String "deadlock"); ("detail", Json.String m) ])
    | Error m -> Json.Assoc (fields @ [ ("outcome", Json.String "error"); ("detail", Json.String m) ])
  in
  (outcome, Fault.injected_total fault, j)

(* ------------------------------------------------------------------ *)
(* Native pool campaigns (deterministic facts only)                    *)
(* ------------------------------------------------------------------ *)

let pool_policies = [ ("ws", Pool.Work_stealing); ("dfd", Pool.Dfdeques { quota = 4096 }) ]

let with_pool ?fault policy f =
  let pool = Pool.create ~domains:3 ?fault policy in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let expected_sum n = n * (n - 1) / 2

let clean_sum pool n =
  Pool.run pool (fun () ->
      Pool.parallel_reduce ~zero:0 ~op:( + ) ~lo:0 ~hi:n (fun i -> i))
  = expected_sum n

(* task_exn_prob = 1.0: the very first fork injects, so the exception
   always reaches the caller of [run] — a deterministic boolean. *)
let pool_exn_campaign ~seed policy =
  let rates = { Fault.zero_rates with Fault.task_exn_prob = 1.0 } in
  let fault = Fault.create ~rates ~seed () in
  with_pool ~fault policy (fun pool ->
      let propagates =
        match Pool.run pool (fun () -> Pool.fork_join (fun () -> 1) (fun () -> 2)) with
        | _ -> false
        | exception Fault.Injected_failure _ -> true
        | exception _ -> false
      in
      Fault.set_enabled fault false;
      let clean_after = clean_sum pool 500 in
      (propagates, clean_after))

(* A tight timeout over endless forking: cancellation is checked at every
   fork, so [Timeout] always fires; the drained pool then completes a
   clean run. *)
let pool_timeout_campaign policy =
  with_pool policy (fun pool ->
      let fired =
        match
          Pool.run ~timeout:0.05 pool (fun () ->
              let rec loop () =
                ignore (Pool.fork_join (fun () -> ()) (fun () -> ()));
                loop ()
              in
              loop ())
        with
        | () -> false
        | exception Pool.Timeout -> true
        | exception _ -> false
      in
      let clean_after = clean_sum pool 500 in
      (fired, clean_after))

(* Steal failures injected at the default rate: graceful degradation means
   the answer is still right. *)
let pool_degraded_campaign ~seed policy =
  let rates = { Fault.zero_rates with Fault.steal_fail_prob = 0.5 } in
  let fault = Fault.create ~rates ~seed () in
  with_pool ~fault policy (fun pool -> clean_sum pool 2000)

(* Lock-free-WS-specific: with every steal forced to fail (probability 1),
   progress can only come from the owner-side lock-free Chase–Lev path —
   the computation must still complete correctly, and the successful-steal
   counter must be exactly 0 (an injected failure fires before any victim
   deque is touched).  Both facts are deterministic booleans, so the
   byte-identical-report guarantee is preserved. *)
let pool_ws_lockfree_campaign ~seed =
  let rates = { Fault.zero_rates with Fault.steal_fail_prob = 1.0 } in
  let fault = Fault.create ~rates ~seed:(seed lxor 0x10cf) () in
  with_pool ~fault Pool.Work_stealing (fun pool ->
      let owner_only_correct = clean_sum pool 2000 in
      let zero_steals = (Pool.counters pool).Pool.steals = 0 in
      ( owner_only_correct && zero_steals,
        Json.Assoc
          [
            ("policy", Json.String "ws_lockfree");
            ("owner_only_correct", Json.Bool owner_only_correct);
            ("zero_steals_under_total_injection", Json.Bool zero_steals);
          ] ))

(* --- per-worker crash-domain campaign (--crash) --------------------- *)

(* Parallel mergesort on the pool: enough forked tasks that the worker
   domains are certain to take some — which is what arms the seeded
   crash below. *)
let merge l r =
  let nl = Array.length l and nr = Array.length r in
  let out = Array.make (nl + nr) 0 in
  let i = ref 0 and j = ref 0 in
  for k = 0 to nl + nr - 1 do
    if !i < nl && (!j >= nr || l.(!i) <= r.(!j)) then begin
      out.(k) <- l.(!i);
      incr i
    end
    else begin
      out.(k) <- r.(!j);
      incr j
    end
  done;
  out

let rec psort a =
  let n = Array.length a in
  if n <= 256 then begin
    Array.sort compare a;
    a
  end
  else begin
    let mid = n / 2 in
    let left = Array.sub a 0 mid and right = Array.sub a mid (n - mid) in
    let l, r = Pool.fork_join (fun () -> psort left) (fun () -> psort right) in
    merge l r
  end

(* Seeded worker crash mid-sort.  The logical take-clock trigger fires on
   the first top-level take by a worker domain (>= 1), which dies holding
   the task; a peer quarantines the slot, requeues the held task through
   the orphan stack and (under DFDeques) abandons the dead owner's deque.
   Every reported fact is deterministic even though the crash's victim
   and interleaving are not: the sort still returns the right answer at
   p-1, exactly one quarantine episode with exactly one requeue is on the
   lineage ledger, the ledger audits clean (no task lost, none run
   twice), the live Theorem-4.4 budget gauge agrees with the degraded-p
   formula, and spending the respawn budget restores full strength for a
   clean second run. *)
let pool_crash_campaign ~seed (name, policy) =
  let domains = 3 in
  let p = domains + 1 in
  let rates = { Fault.zero_rates with Fault.worker_crash = Some 1 } in
  let fault = Fault.create ~rates ~seed () in
  let s1 = 4096 and depth = 16 and c = 8 in
  let k = match policy with Pool.Dfdeques { quota } -> quota | Pool.Work_stealing -> s1 in
  let registry = Registry.create () in
  let headroom = Headroom.create ~registry ~policy:name ~c ~s1 ~depth ~p ~k () in
  let pool = Pool.create ~domains ~fault ~respawn_budget:1 policy in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
       let n = 20_000 in
       let input = Array.init n (fun i -> i * 106_039 land 0xffff) in
       let expect = Array.copy input in
       Array.sort compare expect;
       let sorted = Pool.run pool (fun () -> psort (Array.copy input)) in
       let sorted_ok = sorted = expect in
       let crash_fired = List.assoc "worker_crash" (Fault.counts fault) = 1 in
       let quarantine_ok = Pool.quarantines pool = 1 in
       let degraded_ok = Pool.degraded_p pool = p - 1 in
       let requeue_ok =
         List.length (List.filter (fun e -> e.Pool.requeued) (Pool.lineage pool)) = 1
       in
       let lineage_ok = Pool.verify_lineage pool = Ok () in
       Headroom.set_p headroom (Pool.degraded_p pool);
       let headroom_ok = Headroom.budget headroom = s1 + (c * min k s1 * (p - 1) * depth) in
       let victim =
         match Pool.lineage pool with e :: _ -> e.Pool.worker | [] -> 0
       in
       let respawn_ok = victim > 0 && Pool.respawn_worker pool victim in
       let restored_ok = Pool.degraded_p pool = p in
       let clean_after = clean_sum pool 2000 in
       let lineage_after_ok = Pool.verify_lineage pool = Ok () in
       let passed =
         sorted_ok && crash_fired && quarantine_ok && degraded_ok && requeue_ok && lineage_ok
         && headroom_ok && respawn_ok && restored_ok && clean_after && lineage_after_ok
       in
       let injected = List.fold_left (fun a (_, n) -> a + n) 0 (Fault.counts fault) in
       ( passed,
         injected,
         Json.Assoc
           [
             ("policy", Json.String name);
             ("sorted_at_degraded_p", Json.Bool sorted_ok);
             ("crash_fired_once", Json.Bool crash_fired);
             ("exactly_one_quarantine", Json.Bool quarantine_ok);
             ("degraded_p_is_p_minus_1", Json.Bool degraded_ok);
             ("held_task_requeued_exactly_once", Json.Bool requeue_ok);
             ("lineage_audit_ok", Json.Bool lineage_ok);
             ("headroom_budget_matches_degraded_p", Json.Bool headroom_ok);
             ("respawn_under_budget", Json.Bool respawn_ok);
             ("full_strength_restored", Json.Bool restored_ok);
             ("clean_run_after_respawn", Json.Bool clean_after);
             ("lineage_audit_after_respawn_ok", Json.Bool lineage_after_ok);
           ] ))

let pool_report ~seed (name, policy) =
  let exn_propagates, clean_after_exn = pool_exn_campaign ~seed policy in
  let timeout_fires, clean_after_timeout = pool_timeout_campaign policy in
  let degraded_ok = pool_degraded_campaign ~seed policy in
  let passed =
    exn_propagates && clean_after_exn && timeout_fires && clean_after_timeout && degraded_ok
  in
  ( passed,
    Json.Assoc
      [
        ("policy", Json.String name);
        ("injected_exn_propagates", Json.Bool exn_propagates);
        ("clean_run_after_exn", Json.Bool clean_after_exn);
        ("timeout_fires", Json.Bool timeout_fires);
        ("clean_run_after_timeout", Json.Bool clean_after_timeout);
        ("degraded_run_correct", Json.Bool degraded_ok);
      ] )

(* ------------------------------------------------------------------ *)
(* Service campaigns (supervised pool; deterministic facts only)       *)
(* ------------------------------------------------------------------ *)

module Service = Dfd_service.Service
module Tenant = Dfd_service.Tenant
module Retry = Dfd_service.Retry

(* A lane bounded at 2 sheds the third of a burst of three — typed
   admission control on the handle, not an exception. *)
let service_shed_campaign ~seed =
  let config =
    {
      Service.default_config with
      Service.seed;
      tenants = [ Tenant.make ~queue_bound:2 "default" ];
      domains = 1;
    }
  in
  let svc = Service.create ~config Pool.Work_stealing in
  let r1 = Service.admission (Service.submit svc (fun () -> ())) in
  let r2 = Service.admission (Service.submit svc (fun () -> ())) in
  let r3 = Service.admission (Service.submit svc (fun () -> ())) in
  Service.drive svc;
  let ok =
    Result.is_ok r1 && Result.is_ok r2
    && r3 = Error Service.Queue_full
    && Service.verify_ledger svc = Ok ()
  in
  Service.shutdown svc;
  ok

(* One supervised service, three deterministic outcome classes: a job
   that always raises is retried to budget exhaustion then Failed; a job
   that raises once recovers on its first retry; a job that wedges the
   pool (spins outside cooperative cancellation) triggers exactly one
   respawn + front requeue and completes on the second attempt.  The
   exactly-once ledger must audit clean throughout. *)
let service_fault_campaign ~seed =
  let wedge_flags : (int, bool Atomic.t) Hashtbl.t = Hashtbl.create 4 in
  let on_pool_retired ~in_flight =
    match in_flight with
    | Some id -> (
        match Hashtbl.find_opt wedge_flags id with
        | Some flag -> Atomic.set flag true
        | None -> ())
    | None -> ()
  in
  let config =
    {
      Service.default_config with
      Service.seed;
      retry = { Retry.max_attempts = 2; base_delay = 1; max_delay = 2 };
      wedge_grace = 1.0;
      domains = 2;
      on_pool_retired = Some on_pool_retired;
    }
  in
  let svc = Service.create ~config (Pool.Dfdeques { quota = 4096 }) in
  let exn_id =
    Result.get_ok
      (Service.admission (Service.submit svc ~class_:"exn" (fun () -> failwith "boom")))
  in
  let tripped = Atomic.make false in
  let flaky_id =
    Result.get_ok
      (Service.admission
         (Service.submit svc ~class_:"flaky" (fun () ->
              if not (Atomic.exchange tripped true) then failwith "flaky")))
  in
  let flag = Atomic.make false in
  let wedge_id =
    Result.get_ok
      (Service.admission
         (Service.submit svc ~class_:"wedge" (fun () ->
              while not (Atomic.get flag) do
                Domain.cpu_relax ()
              done)))
  in
  Hashtbl.replace wedge_flags wedge_id flag;
  Service.drive svc;
  let entry id = List.find (fun e -> e.Service.job = id) (Service.ledger svc) in
  let c = Service.counters svc in
  let exn_ok =
    let e = entry exn_id in
    (match e.Service.outcome with Some (Service.Failed _) -> true | _ -> false)
    && e.Service.attempts = 2
  in
  let flaky_ok =
    let e = entry flaky_id in
    e.Service.outcome = Some Service.Completed && e.Service.attempts = 2
  in
  let wedge_ok =
    let e = entry wedge_id in
    e.Service.outcome = Some Service.Completed
    && e.Service.requeues = 1
    && c.Service.wedges = 1
    && c.Service.respawns = 1
  in
  let ledger_ok = Service.verify_ledger svc = Ok () in
  let dup_ok = c.Service.duplicate_acks = 0 in
  Service.shutdown ~reap:true svc;
  (exn_ok, flaky_ok, wedge_ok, ledger_ok, dup_ok)

let service_report ~seed =
  let shed_ok = service_shed_campaign ~seed in
  let exn_ok, flaky_ok, wedge_ok, ledger_ok, dup_ok = service_fault_campaign ~seed in
  let passed = shed_ok && exn_ok && flaky_ok && wedge_ok && ledger_ok && dup_ok in
  ( passed,
    Json.Assoc
      [
        ("queue_sheds_at_capacity", Json.Bool shed_ok);
        ("exn_retried_to_budget_then_failed", Json.Bool exn_ok);
        ("flaky_recovers_after_one_retry", Json.Bool flaky_ok);
        ("wedge_respawn_requeues_exactly_once", Json.Bool wedge_ok);
        ("ledger_verified", Json.Bool ledger_ok);
        ("no_duplicate_acks", Json.Bool dup_ok);
      ] )

(* ------------------------------------------------------------------ *)
(* The campaign driver                                                 *)
(* ------------------------------------------------------------------ *)

let run_chaos ~seed ~campaigns ~p ~json_out ~skip_pool ~service ~crash =
  let ok = ref 0
  and invariants = ref 0
  and deadlocks = ref 0
  and errors = ref 0
  and faults = ref 0 in
  let sim_json =
    List.mapi
      (fun si (name, sched) ->
         let runs =
           List.init campaigns (fun i ->
               let seed_i = seed + (1_000 * si) + i in
               let lock_heavy = i mod 2 = 1 in
               let outcome, injected, j = sim_campaign ~sched ~p ~seed:seed_i ~lock_heavy in
               (match outcome with
                | Ok_run _ -> incr ok
                | Invariant_violation _ -> incr invariants
                | Watchdog_deadlock _ -> incr deadlocks
                | Error _ -> incr errors);
               faults := !faults + injected;
               j)
         in
         Printf.printf "sim  %-4s %d campaigns done\n%!" name campaigns;
         Json.Assoc [ ("sched", Json.String name); ("runs", Json.List runs) ])
      scheds
  in
  let pool_passed, pool_json =
    if skip_pool then (true, [])
    else begin
      let results = List.map (pool_report ~seed) pool_policies in
      List.iter2
        (fun (name, _) (passed, _) ->
           Printf.printf "pool %-4s %s\n%!" name (if passed then "ok" else "FAILED"))
        pool_policies results;
      let lf_passed, lf_json = pool_ws_lockfree_campaign ~seed in
      Printf.printf "pool ws-lockfree %s\n%!" (if lf_passed then "ok" else "FAILED");
      ( List.for_all fst results && lf_passed,
        List.map snd results @ [ lf_json ] )
    end
  in
  let service_passed, service_json =
    if not service then (true, None)
    else begin
      let passed, j = service_report ~seed in
      Printf.printf "service %s\n%!" (if passed then "ok" else "FAILED");
      (passed, Some j)
    end
  in
  let crash_passed, crash_json =
    if not crash then (true, None)
    else begin
      let results = List.map (pool_crash_campaign ~seed) pool_policies in
      List.iter2
        (fun (name, _) (passed, injected, _) ->
           faults := !faults + injected;
           Printf.printf "crash %-4s %s\n%!" name (if passed then "ok" else "FAILED"))
        pool_policies results;
      ( List.for_all (fun (passed, _, _) -> passed) results,
        Some (Json.List (List.map (fun (_, _, j) -> j) results)) )
    end
  in
  let sim_total = List.length scheds * campaigns in
  let all_passed =
    !ok = sim_total && !invariants = 0 && !deadlocks = 0 && !errors = 0 && pool_passed
    && service_passed && crash_passed
  in
  let report =
    Json.Assoc
      ([
         ("seed", Json.Int seed);
         ("campaigns_per_sched", Json.Int campaigns);
         ("p", Json.Int p);
         ("simulator", Json.List sim_json);
         ("pool", Json.List pool_json);
       ]
       @ (match service_json with Some j -> [ ("service", j) ] | None -> [])
       @ (match crash_json with Some j -> [ ("crash", j) ] | None -> [])
       @ [
           ( "summary",
             Json.Assoc
               ([
                  ("sim_runs", Json.Int sim_total);
                  ("ok", Json.Int !ok);
                  ("invariant_violations", Json.Int !invariants);
                  ("deadlocks", Json.Int !deadlocks);
                  ("errors", Json.Int !errors);
                  ("faults_injected", Json.Int !faults);
                  ("pool_passed", Json.Bool pool_passed);
                ]
                @ (if service then [ ("service_passed", Json.Bool service_passed) ] else [])
                @ (if crash then [ ("crash_passed", Json.Bool crash_passed) ] else [])
                @ [ ("all_passed", Json.Bool all_passed) ]) );
         ])
  in
  (match json_out with
   | None -> ()
   | Some path ->
     (try
        let oc = open_out path in
        Json.to_channel oc report;
        output_char oc '\n';
        close_out oc
      with Sys_error m ->
        Printf.eprintf "repro: cannot write %s: %s\n" path m;
        exit 1);
     Printf.printf "report: %s\n" path);
  Printf.printf
    "chaos: %d simulator runs (%d ok, %d invariant violations, %d deadlocks, %d errors), %d \
     faults injected, pool %s\n"
    sim_total !ok !invariants !deadlocks !errors !faults
    (if skip_pool then "skipped" else if pool_passed then "ok" else "FAILED");
  if all_passed then begin
    print_endline "chaos: PASS";
    0
  end
  else begin
    print_endline "chaos: FAIL";
    1
  end
