(** Pairing heap (min-heap) over an arbitrary ordering.

    Used by the ADF baseline to dispatch the leftmost (highest-priority)
    ready thread: the ordering compares order-maintenance labels, so the
    heap's keys mutate under relabelling — safe, because relabelling
    preserves the relative order the heap depends on.

    Amortised O(1) insert, O(log n) delete-min. *)

type 'a t

val create : leq:('a -> 'a -> bool) -> 'a t
(** [leq a b] must be a total preorder ("a is at least as small as b"). *)

val is_empty : 'a t -> bool

val size : 'a t -> int

val insert : 'a t -> 'a -> unit

val peek_min : 'a t -> 'a option

val pop_min : 'a t -> 'a option

val to_list_unordered : 'a t -> 'a list
(** All elements in arbitrary order (test helper). *)
