(** Order-maintenance list: a total order supporting O(1) comparison and
    (amortised) O(1) insertion of a new element immediately before/after an
    existing one.

    The ADF baseline scheduler (Narlikar–Blelloch depth-first scheduling,
    refs [34,35] of the paper) keeps every live thread in serial depth-first
    (1DF) priority order; when a thread forks, the child is inserted
    immediately {e before} the parent (the child comes earlier in the 1DF
    order).  This module provides those labels.

    Implementation: integer tags in a 62-bit space; inserting into a full
    gap triggers an even relabelling of the whole list (amortised O(1) per
    insertion at our scales, and simple enough to trust). *)

type t
(** The order structure. *)

type label
(** An element of the order. *)

val create : unit -> t * label
(** Fresh order containing a single base label. *)

val insert_after : t -> label -> label
(** A new label immediately after (greater than) the given one. *)

val insert_before : t -> label -> label
(** A new label immediately before (less than) the given one. *)

val delete : t -> label -> unit
(** Remove a label from the order.  Comparing a deleted label is a
    programming error and raises [Invalid_argument]. *)

val compare : label -> label -> int
(** Total order comparison; O(1). *)

val size : t -> int
(** Number of live labels. *)

val relabel_count : t -> int
(** How many full relabellings happened (observability for tests). *)
