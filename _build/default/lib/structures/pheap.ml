type 'a tree = Node of 'a * 'a tree list

type 'a t = {
  leq : 'a -> 'a -> bool;
  mutable root : 'a tree option;
  mutable n : int;
}

let create ~leq = { leq; root = None; n = 0 }

let is_empty t = t.root = None

let size t = t.n

let meld leq a b =
  match (a, b) with
  | Node (x, xs), Node (y, ys) ->
    if leq x y then Node (x, b :: xs) else Node (y, a :: ys)

let insert t x =
  t.n <- t.n + 1;
  match t.root with
  | None -> t.root <- Some (Node (x, []))
  | Some r -> t.root <- Some (meld t.leq (Node (x, [])) r)

let peek_min t = match t.root with None -> None | Some (Node (x, _)) -> Some x

(* Two-pass pairing: meld adjacent pairs left-to-right, then fold right-to-left. *)
let rec merge_pairs leq = function
  | [] -> None
  | [ x ] -> Some x
  | a :: b :: rest -> (
      let ab = meld leq a b in
      match merge_pairs leq rest with None -> Some ab | Some r -> Some (meld leq ab r))

let pop_min t =
  match t.root with
  | None -> None
  | Some (Node (x, children)) ->
    t.n <- t.n - 1;
    t.root <- merge_pairs t.leq children;
    Some x

let to_list_unordered t =
  let rec walk acc = function
    | Node (x, children) -> List.fold_left walk (x :: acc) children
  in
  match t.root with None -> [] | Some r -> walk [] r
