(** Intrusive doubly-linked list with O(1) insertion/removal given a node.

    This is the global deque list [R] of DFDeques (Section 3.2): it must
    support inserting a new deque immediately to the right of a given one,
    deleting a deque, and walking to the k-th deque from the left end — all
    of which are O(1)/O(k) here.  It is also reused as the priority list of
    live threads in the ADF baseline. *)

type 'a t
type 'a node

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val value : 'a node -> 'a

val push_front : 'a t -> 'a -> 'a node
(** Insert at the left end; returns the node handle. *)

val push_back : 'a t -> 'a -> 'a node
(** Insert at the right end. *)

val insert_after : 'a t -> 'a node -> 'a -> 'a node
(** [insert_after l n x] inserts [x] immediately to the right of [n]. *)

val insert_before : 'a t -> 'a node -> 'a -> 'a node
(** [insert_before l n x] inserts [x] immediately to the left of [n]. *)

val remove : 'a t -> 'a node -> unit
(** Unlink the node.  Removing an already-removed node raises
    [Invalid_argument]. *)

val is_member : 'a node -> bool
(** Whether the node is currently linked into a list. *)

val front : 'a t -> 'a node option

val back : 'a t -> 'a node option

val next : 'a node -> 'a node option

val prev : 'a node -> 'a node option

val nth_node : 'a t -> int -> 'a node option
(** [nth_node l k] is the k-th node from the left, 0-based; O(k). *)

val to_list : 'a t -> 'a list
(** Left-to-right element list.  O(n). *)

val iter : ('a -> unit) -> 'a t -> unit

val iter_nodes : ('a node -> unit) -> 'a t -> unit

val position : 'a t -> 'a node -> int
(** 0-based position of the node from the left; O(n).  Test helper. *)
