module Watermark = struct
  type t = { mutable cur : int; mutable hi : int }

  let create () = { cur = 0; hi = 0 }

  let add t d =
    t.cur <- t.cur + d;
    if t.cur > t.hi then t.hi <- t.cur

  let current t = t.cur

  let peak t = t.hi
end

module Acc = struct
  type t = { mutable n : int; mutable sum : float; mutable mx : float }

  let create () = { n = 0; sum = 0.0; mx = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    if x > t.mx then t.mx <- x

  let count t = t.n

  let total t = t.sum

  let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

  let max_value t = t.mx
end

module Table = struct
  let render ~header ~rows =
    let all = header :: rows in
    let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
    let pad r = r @ List.init (ncols - List.length r) (fun _ -> "") in
    let all = List.map pad all in
    let widths = Array.make ncols 0 in
    List.iter
      (fun row ->
         List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
      all;
    let buf = Buffer.create 256 in
    let emit row =
      List.iteri
        (fun i cell ->
           Buffer.add_string buf cell;
           if i < ncols - 1 then
             Buffer.add_string buf (String.make (widths.(i) - String.length cell + 2) ' '))
        row;
      Buffer.add_char buf '\n'
    in
    (match all with
     | hd :: tl ->
       emit hd;
       let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
       Buffer.add_string buf (String.make total '-');
       Buffer.add_char buf '\n';
       List.iter emit tl
     | [] -> ());
    Buffer.contents buf
end

let fmt_float x =
  if Float.is_integer x && Float.abs x < 1e9 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.3g" x

let fmt_bytes n =
  let f = float_of_int n in
  if n < 1024 then Printf.sprintf "%dB" n
  else if n < 1024 * 1024 then Printf.sprintf "%.1fkB" (f /. 1024.0)
  else if n < 1024 * 1024 * 1024 then Printf.sprintf "%.1fMB" (f /. (1024.0 *. 1024.0))
  else Printf.sprintf "%.2fGB" (f /. (1024.0 *. 1024.0 *. 1024.0))
