(** Small running-statistics helpers shared by the metrics module and the
    experiment harness: watermark counters, running means, and fixed-width
    text tables for the figure/table reproductions. *)

(** A counter that tracks its high watermark (used for live heap bytes,
    live thread counts, deque counts, ...). *)
module Watermark : sig
  type t

  val create : unit -> t

  val add : t -> int -> unit
  (** Add a (possibly negative) delta to the current value. *)

  val current : t -> int

  val peak : t -> int
  (** Highest value ever reached. *)
end

(** Accumulates observations; reports count/mean/max/total. *)
module Acc : sig
  type t

  val create : unit -> t

  val add : t -> float -> unit

  val count : t -> int

  val total : t -> float

  val mean : t -> float
  (** 0 when empty. *)

  val max_value : t -> float
  (** neg_infinity when empty. *)
end

(** Plain-text table rendering used by every experiment to print the
    paper-shaped tables. *)
module Table : sig
  val render : header:string list -> rows:string list list -> string
  (** Columns are sized to the widest cell; first row is underlined. *)
end

val fmt_float : float -> string
(** Compact float formatting for table cells (3 significant decimals). *)

val fmt_bytes : int -> string
(** Human bytes: "512B", "50.0kB", "2.3MB". *)
