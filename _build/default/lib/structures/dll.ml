type 'a node = {
  v : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable linked : bool;
}

type 'a t = {
  mutable first : 'a node option;
  mutable last : 'a node option;
  mutable len : int;
}

let create () = { first = None; last = None; len = 0 }

let length l = l.len

let is_empty l = l.len = 0

let value n = n.v

let is_member n = n.linked

let mk v = { v; prev = None; next = None; linked = true }

let push_front l v =
  let n = mk v in
  (match l.first with
   | None -> l.last <- Some n
   | Some f ->
     f.prev <- Some n;
     n.next <- Some f);
  l.first <- Some n;
  l.len <- l.len + 1;
  n

let push_back l v =
  let n = mk v in
  (match l.last with
   | None -> l.first <- Some n
   | Some b ->
     b.next <- Some n;
     n.prev <- Some b);
  l.last <- Some n;
  l.len <- l.len + 1;
  n

let insert_after l anchor v =
  if not anchor.linked then invalid_arg "Dll.insert_after: unlinked anchor";
  let n = mk v in
  n.prev <- Some anchor;
  n.next <- anchor.next;
  (match anchor.next with
   | None -> l.last <- Some n
   | Some nx -> nx.prev <- Some n);
  anchor.next <- Some n;
  l.len <- l.len + 1;
  n

let insert_before l anchor v =
  if not anchor.linked then invalid_arg "Dll.insert_before: unlinked anchor";
  let n = mk v in
  n.next <- Some anchor;
  n.prev <- anchor.prev;
  (match anchor.prev with
   | None -> l.first <- Some n
   | Some pv -> pv.next <- Some n);
  anchor.prev <- Some n;
  l.len <- l.len + 1;
  n

let remove l n =
  if not n.linked then invalid_arg "Dll.remove: node not in a list";
  (match n.prev with
   | None -> l.first <- n.next
   | Some pv -> pv.next <- n.next);
  (match n.next with
   | None -> l.last <- n.prev
   | Some nx -> nx.prev <- n.prev);
  n.prev <- None;
  n.next <- None;
  n.linked <- false;
  l.len <- l.len - 1

let front l = l.first

let back l = l.last

let next n = n.next

let prev n = n.prev

let nth_node l k =
  if k < 0 then None
  else begin
    let rec walk n i =
      match n with
      | None -> None
      | Some node -> if i = 0 then Some node else walk node.next (i - 1)
    in
    walk l.first k
  end

let iter_nodes f l =
  let rec walk = function
    | None -> ()
    | Some n ->
      let nx = n.next in
      f n;
      walk nx
  in
  walk l.first

let iter f l = iter_nodes (fun n -> f n.v) l

let to_list l =
  let acc = ref [] in
  iter (fun v -> acc := v :: !acc) l;
  List.rev !acc

let position l n =
  let pos = ref (-1) in
  let i = ref 0 in
  iter_nodes
    (fun m ->
       if m == n then pos := !i;
       incr i)
    l;
  if !pos < 0 then invalid_arg "Dll.position: node not in this list";
  !pos
