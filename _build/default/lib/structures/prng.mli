(** Deterministic pseudo-random number generator (splitmix64).

    Every randomised choice in the schedulers (steal-victim selection, the
    randomised workloads of Section 6) draws from an explicit generator so
    that simulated schedules are exactly reproducible from a seed — a
    requirement for the schedule-equality test (DFDeques(inf) == WS) and for
    debugging. *)

type t

val create : int -> t
(** Generator seeded from an integer. *)

val split : t -> t
(** An independent generator derived from (and advancing) [t]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val bits64 : t -> int64
(** Next raw 64 bits of the stream. *)
