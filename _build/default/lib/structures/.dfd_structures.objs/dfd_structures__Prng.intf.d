lib/structures/prng.mli:
