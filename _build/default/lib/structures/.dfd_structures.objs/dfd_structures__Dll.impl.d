lib/structures/dll.ml: List
