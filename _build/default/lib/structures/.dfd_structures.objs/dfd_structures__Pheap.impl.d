lib/structures/pheap.ml: List
