lib/structures/order_maint.mli:
