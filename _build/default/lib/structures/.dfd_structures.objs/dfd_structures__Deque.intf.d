lib/structures/deque.mli:
