lib/structures/order_maint.ml: Stdlib
