lib/structures/deque.ml: Array List Option
