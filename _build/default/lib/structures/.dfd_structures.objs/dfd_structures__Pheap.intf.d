lib/structures/pheap.mli:
