lib/structures/stats.ml: Array Buffer Float List Printf String
