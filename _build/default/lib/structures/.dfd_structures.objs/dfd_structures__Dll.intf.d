lib/structures/dll.mli:
