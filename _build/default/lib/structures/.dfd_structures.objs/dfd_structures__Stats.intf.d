lib/structures/stats.mli:
