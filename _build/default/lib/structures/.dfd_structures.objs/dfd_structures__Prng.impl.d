lib/structures/prng.ml: Int64
