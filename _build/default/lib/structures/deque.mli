(** Growable circular-buffer double-ended queue.

    This is the per-processor ready "deque" of the DFDeques algorithm
    (Section 3.2 of the paper): the owner pushes and pops at the {e top}
    (LIFO stack discipline), thieves pop at the {e bottom}.  All operations
    are amortised O(1).  The structure is not thread-safe; in the simulator
    all accesses happen inside one synchronous engine, and in the native
    runtime each deque is protected by its pool's lock. *)

type 'a t

val create : unit -> 'a t
(** A fresh empty deque. *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val push_top : 'a t -> 'a -> unit
(** [push_top d x] pushes [x] on the top (owner end). *)

val pop_top : 'a t -> 'a option
(** Remove and return the top element, or [None] if empty. *)

val peek_top : 'a t -> 'a option
(** Return the top element without removing it. *)

val push_bottom : 'a t -> 'a -> unit
(** [push_bottom d x] inserts [x] at the bottom (thief end).  Not used by
    the scheduler proper but needed by tests and by the FIFO baseline. *)

val pop_bottom : 'a t -> 'a option
(** Remove and return the bottom element (the steal operation), or [None]. *)

val peek_bottom : 'a t -> 'a option

val to_list_top_first : 'a t -> 'a list
(** All elements, topmost first.  O(n); used by invariant checks/tests. *)

val iter_top_first : ('a -> unit) -> 'a t -> unit

val clear : 'a t -> unit
