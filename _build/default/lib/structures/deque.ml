type 'a t = {
  mutable buf : 'a option array;
  mutable head : int; (* index of the bottom element *)
  mutable len : int;
}

let initial_capacity = 8

let create () = { buf = Array.make initial_capacity None; head = 0; len = 0 }

let length d = d.len

let is_empty d = d.len = 0

let capacity d = Array.length d.buf

(* Physical index of the i-th element counting from the bottom. *)
let index d i = (d.head + i) mod capacity d

let grow d =
  let old = d.buf in
  let cap = Array.length old in
  let buf = Array.make (2 * cap) None in
  for i = 0 to d.len - 1 do
    buf.(i) <- old.((d.head + i) mod cap)
  done;
  d.buf <- buf;
  d.head <- 0

let push_top d x =
  if d.len = capacity d then grow d;
  d.buf.(index d d.len) <- Some x;
  d.len <- d.len + 1

let push_bottom d x =
  if d.len = capacity d then grow d;
  let cap = capacity d in
  d.head <- (d.head + cap - 1) mod cap;
  d.buf.(d.head) <- Some x;
  d.len <- d.len + 1

let pop_top d =
  if d.len = 0 then None
  else begin
    let i = index d (d.len - 1) in
    let x = d.buf.(i) in
    d.buf.(i) <- None;
    d.len <- d.len - 1;
    x
  end

let pop_bottom d =
  if d.len = 0 then None
  else begin
    let x = d.buf.(d.head) in
    d.buf.(d.head) <- None;
    d.head <- (d.head + 1) mod capacity d;
    d.len <- d.len - 1;
    x
  end

let peek_top d = if d.len = 0 then None else d.buf.(index d (d.len - 1))

let peek_bottom d = if d.len = 0 then None else d.buf.(d.head)

let to_list_top_first d =
  let rec loop i acc = if i >= d.len then acc else loop (i + 1) (Option.get d.buf.(index d i) :: acc) in
  loop 0 []

let iter_top_first f d = List.iter f (to_list_top_first d)

let clear d =
  for i = 0 to d.len - 1 do
    d.buf.(index d i) <- None
  done;
  d.head <- 0;
  d.len <- 0
