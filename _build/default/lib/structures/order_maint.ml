type label = {
  mutable tag : int;
  mutable live : bool;
  mutable l_prev : label option;
  mutable l_next : label option;
}

type t = {
  mutable first : label;
  mutable n : int;
  mutable relabels : int;
}

(* Tags live in [0, max_tag]; we keep them spread out so gaps usually
   exist.  62-bit space leaves headroom for the midpoint computation. *)
let max_tag = 1 lsl 60

let create () =
  let base = { tag = max_tag / 2; live = true; l_prev = None; l_next = None } in
  ({ first = base; n = 1; relabels = 0 }, base)

let size t = t.n

let relabel_count t = t.relabels

let check l = if not l.live then invalid_arg "Order_maint: dead label"

let compare a b =
  check a;
  check b;
  Stdlib.compare a.tag b.tag

(* Spread all labels evenly across the tag space. *)
let relabel t =
  t.relabels <- t.relabels + 1;
  let gap = max 1 (max_tag / (t.n + 1)) in
  let rec walk node tag =
    node.tag <- tag;
    match node.l_next with None -> () | Some nx -> walk nx (tag + gap)
  in
  walk t.first gap

let link_after t anchor fresh =
  fresh.l_prev <- Some anchor;
  fresh.l_next <- anchor.l_next;
  (match anchor.l_next with Some nx -> nx.l_prev <- Some fresh | None -> ());
  anchor.l_next <- Some fresh;
  t.n <- t.n + 1

let link_before t anchor fresh =
  fresh.l_next <- Some anchor;
  fresh.l_prev <- anchor.l_prev;
  (match anchor.l_prev with
   | Some pv -> pv.l_next <- Some fresh
   | None -> t.first <- fresh);
  anchor.l_prev <- Some fresh;
  t.n <- t.n + 1

let rec insert_after t anchor =
  check anchor;
  let hi = match anchor.l_next with Some nx -> nx.tag | None -> max_tag in
  if hi - anchor.tag >= 2 then begin
    let fresh =
      { tag = anchor.tag + ((hi - anchor.tag) / 2); live = true; l_prev = None; l_next = None }
    in
    link_after t anchor fresh;
    fresh
  end
  else begin
    relabel t;
    insert_after t anchor
  end

let rec insert_before t anchor =
  check anchor;
  let lo = match anchor.l_prev with Some pv -> pv.tag | None -> 0 in
  if anchor.tag - lo >= 2 then begin
    let fresh =
      { tag = lo + ((anchor.tag - lo) / 2); live = true; l_prev = None; l_next = None }
    in
    link_before t anchor fresh;
    fresh
  end
  else begin
    relabel t;
    insert_before t anchor
  end

let delete t l =
  check l;
  l.live <- false;
  (match l.l_prev with
   | Some pv -> pv.l_next <- l.l_next
   | None -> (match l.l_next with Some nx -> t.first <- nx | None -> ()));
  (match l.l_next with Some nx -> nx.l_prev <- l.l_prev | None -> ());
  l.l_prev <- None;
  l.l_next <- None;
  t.n <- t.n - 1
