type cache = { line_words : int; n_sets : int; assoc : int }

type t = {
  p : int;
  mem_threshold : int option;
  stack_bytes : int;
  cache : cache option;
  miss_penalty : int;
  steal_cost : int;
  queue_cost : int;
  thread_cost : int;
  stack_pressure_threshold : int;
  stack_pressure_cost : int;
  seed : int;
}

let default_cache = { line_words = 8; n_sets = 256; assoc = 4 }

let cache_bytes c = c.line_words * 8 * c.n_sets * c.assoc

let analysis ~p ?(mem_threshold = None) ?(seed = 42) () =
  if p < 1 then invalid_arg "Config.analysis: p must be >= 1";
  {
    p;
    mem_threshold;
    stack_bytes = 8 * 1024;
    cache = None;
    miss_penalty = 0;
    steal_cost = 1;
    queue_cost = 0;
    thread_cost = 0;
    stack_pressure_threshold = max_int;
    stack_pressure_cost = 0;
    seed;
  }

let costed ~p ?(mem_threshold = None) ?(seed = 42) ?(cache = default_cache)
    ?(miss_penalty = 8) ?(queue_cost = 2) ?(steal_cost = 4) ?(thread_cost = 10)
    ?(stack_pressure_threshold = 128) ?(stack_pressure_cost = 40) () =
  if p < 1 then invalid_arg "Config.costed: p must be >= 1";
  {
    p;
    mem_threshold;
    stack_bytes = 8 * 1024;
    cache = Some cache;
    miss_penalty;
    steal_cost = max 1 steal_cost;
    queue_cost;
    thread_cost;
    stack_pressure_threshold;
    stack_pressure_cost;
    seed;
  }

let mem_threshold_exn t =
  match t.mem_threshold with
  | Some k -> k
  | None -> invalid_arg "Config.mem_threshold_exn: threshold is infinite"

let is_infinite_threshold t = t.mem_threshold = None

let pp ppf t =
  Format.fprintf ppf "p=%d K=%s stack=%d steal=%d queue=%d miss=%d thread=%d seed=%d"
    t.p
    (match t.mem_threshold with None -> "inf" | Some k -> string_of_int k)
    t.stack_bytes t.steal_cost t.queue_cost t.miss_penalty t.thread_cost t.seed
