(** Space accounting for a simulated execution.

    Tracks exactly the quantities the paper reports:
    - the {b heap high watermark} (Figure 14's "high water mark of heap
      memory"),
    - the {b live-thread high watermark} (Figures 1/11's "max threads",
      each of which reserves [stack_bytes] of stack),
    - the combined space (heap + thread stacks) against which the
      Theorem 4.4 bound is checked.

    All schedulers drive one instance through {!alloc}/{!free}/
    {!thread_created}/{!thread_exited}. *)

type t

val create : stack_bytes:int -> t

val alloc : t -> int -> unit

val free : t -> int -> unit

val thread_created : t -> unit

val thread_exited : t -> unit

val heap_current : t -> int

val heap_peak : t -> int

val live_threads : t -> int

val live_threads_peak : t -> int

val combined_peak : t -> int
(** Peak over time of [heap + stack_bytes * live_threads] (tracked jointly,
    not the sum of the two separate peaks). *)

val total_allocated : t -> int
(** Gross bytes allocated (the quantity Sa of Theorem 4.8). *)
