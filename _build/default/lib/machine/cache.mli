(** Per-processor set-associative LRU cache simulator.

    Stands in for the UltraSPARC L2 caches whose hardware miss counters the
    paper reads (Section 5.2, Figure 1).  Benchmark actions carry the word
    addresses they reference; the scheduler decides which processor issues
    them; this module turns those per-processor access streams into
    hit/miss counts.  A cold cache per processor, no coherence traffic —
    sufficient for the locality comparison the paper makes (threads close
    in the dag touch overlapping lines, so a scheduler that keeps them on
    one processor sees fewer misses). *)

type t

val create : Config.cache -> p:int -> t
(** One private cache per processor. *)

val access : t -> proc:int -> addr:int -> bool
(** Issue one word reference on processor [proc]; [true] if it missed. *)

val access_many : t -> proc:int -> int array -> int
(** Issue all addresses; returns the number of misses. *)

val accesses : t -> int
(** Total references issued (all processors). *)

val misses : t -> int

val miss_rate : t -> float
(** misses / accesses, in percent; 0 if no accesses. *)

val proc_misses : t -> int -> int
