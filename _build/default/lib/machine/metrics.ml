module W = Dfd_structures.Stats.Watermark

type t = {
  mutable actions : int;
  mutable steal_attempts : int;
  mutable steals : int;
  mutable local : int;
  mutable queued : int;
  mutable quota : int;
  mutable dummies : int;
  mutable heavy_premature : int;
  deques : W.t;
  per_proc_actions : int array;
}

let create ~p =
  {
    actions = 0;
    steal_attempts = 0;
    steals = 0;
    local = 0;
    queued = 0;
    quota = 0;
    dummies = 0;
    heavy_premature = 0;
    deques = W.create ();
    per_proc_actions = Array.make p 0;
  }

let action_executed t ~proc ~units =
  t.actions <- t.actions + units;
  t.per_proc_actions.(proc) <- t.per_proc_actions.(proc) + units

let steal_attempt t = t.steal_attempts <- t.steal_attempts + 1

let steal_success t = t.steals <- t.steals + 1

let local_dispatch t = t.local <- t.local + 1

let queue_dispatch t = t.queued <- t.queued + 1

let quota_exhausted t = t.quota <- t.quota + 1

let dummy_executed t = t.dummies <- t.dummies + 1

let heavy_premature t = t.heavy_premature <- t.heavy_premature + 1

let heavy_prematures t = t.heavy_premature

let deques_changed t n = W.add t.deques (n - W.current t.deques)

let actions t = t.actions

let steals t = t.steals

let steal_attempts t = t.steal_attempts

let local_dispatches t = t.local

let queue_dispatches t = t.queued

let quota_exhaustions t = t.quota

let dummies t = t.dummies

let deque_peak t = W.peak t.deques

let deque_current t = W.current t.deques

let per_proc_actions t = Array.copy t.per_proc_actions

(* max-over-mean of per-processor executed actions: 1.0 = perfect balance. *)
let load_imbalance t =
  let n = Array.length t.per_proc_actions in
  let total = Array.fold_left ( + ) 0 t.per_proc_actions in
  if total = 0 then 1.0
  else begin
    let mx = Array.fold_left max 0 t.per_proc_actions in
    float_of_int mx /. (float_of_int total /. float_of_int n)
  end

let sched_granularity t =
  float_of_int t.actions /. float_of_int (max 1 (t.steals + t.queued))

let local_steal_ratio t = float_of_int t.local /. float_of_int (max 1 t.steals)
