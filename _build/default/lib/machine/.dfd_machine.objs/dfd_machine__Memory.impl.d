lib/machine/memory.ml: Dfd_structures
