lib/machine/metrics.ml: Array Dfd_structures
