lib/machine/memory.mli:
