lib/machine/metrics.mli:
