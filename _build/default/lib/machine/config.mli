(** Simulated machine description and cost model.

    Two preset modes:

    - {!analysis} — the exact cost model of Section 4.1: every action is one
      unit timestep, a steal attempt occupies one timestep, cache misses and
      scheduler bookkeeping are free.  The space/time bounds of Theorems
      4.4–4.8 are stated (and tested) in this mode.

    - {!costed} — the performance model used for the Section 5 style
      experiments: simulated L2 misses stall the processor, global-queue
      schedulers serialise their queue accesses through a lock, steals and
      thread creation carry overheads.  This is the model under which the
      FIFO/ADF/DFD speedup and locality orderings of Figures 1, 12 and 17
      are reproduced. *)

type cache = {
  line_words : int;  (** words per cache line. *)
  n_sets : int;  (** number of sets. *)
  assoc : int;  (** ways per set. *)
}
(** A [line_words * n_sets * assoc * 8]-byte set-associative LRU cache per
    processor (the paper's per-processor off-chip L2, Section 1). *)

type t = {
  p : int;  (** number of processors. *)
  mem_threshold : int option;
      (** the memory threshold K in bytes; [None] = infinity (pure work
          stealing behaviour, Section 3.3). *)
  stack_bytes : int;
      (** stack reservation per live thread (8kB in the paper, Section 5). *)
  cache : cache option;  (** [None] disables the cache simulation. *)
  miss_penalty : int;  (** extra timesteps a processor stalls per miss. *)
  steal_cost : int;  (** timesteps per steal attempt (>= 1). *)
  queue_cost : int;
      (** lock-hold time for each access to a {e global} scheduling
          structure (FIFO / ADF); 0 disables contention modelling. *)
  thread_cost : int;  (** extra timesteps charged at each fork. *)
  stack_pressure_threshold : int;
      (** live-thread count beyond which forks pay {!stack_pressure_cost}:
          each live thread reserves an 8kB stack, and the paper attributes
          the FIFO scheduler's collapse to "system calls related to memory
          allocation for the thread stacks" once thousands of threads are
          live (Section 5.2). *)
  stack_pressure_cost : int;  (** extra fork timesteps beyond the threshold. *)
  seed : int;  (** PRNG seed for steal-victim selection. *)
}

val analysis : p:int -> ?mem_threshold:int option -> ?seed:int -> unit -> t
(** Section 4.1 cost model.  [mem_threshold] defaults to [None]. *)

val costed :
  p:int ->
  ?mem_threshold:int option ->
  ?seed:int ->
  ?cache:cache ->
  ?miss_penalty:int ->
  ?queue_cost:int ->
  ?steal_cost:int ->
  ?thread_cost:int ->
  ?stack_pressure_threshold:int ->
  ?stack_pressure_cost:int ->
  unit ->
  t
(** Section 5 performance model.  Defaults: the {!default_cache}, miss
    penalty 8, queue cost 2, steal cost 4, thread cost 10, stack pressure
    40 extra fork timesteps beyond 128 live threads. *)

val default_cache : cache
(** 64B lines (8 words), 256 sets, 4-way: 64kB per processor — scaled down
    from the paper's 512kB L2 in proportion to our scaled-down inputs. *)

val cache_bytes : cache -> int

val mem_threshold_exn : t -> int
(** The threshold, raising if infinite (callers that need a finite K). *)

val is_infinite_threshold : t -> bool

val pp : Format.formatter -> t -> unit
