type t = {
  geo : Config.cache;
  (* tags.(proc).(set * assoc + way): cached line tag, -1 = empty. *)
  tags : int array array;
  (* stamps mirror tags with the last-use clock for LRU replacement. *)
  stamps : int array array;
  mutable clock : int;
  mutable n_access : int;
  mutable n_miss : int;
  per_proc_miss : int array;
}

let create geo ~p =
  let slots = geo.Config.n_sets * geo.Config.assoc in
  {
    geo;
    tags = Array.init p (fun _ -> Array.make slots (-1));
    stamps = Array.init p (fun _ -> Array.make slots 0);
    clock = 0;
    n_access = 0;
    n_miss = 0;
    per_proc_miss = Array.make p 0;
  }

let access t ~proc ~addr =
  t.clock <- t.clock + 1;
  t.n_access <- t.n_access + 1;
  let { Config.line_words; n_sets; assoc } = t.geo in
  let line = addr / line_words in
  let set = line mod n_sets in
  let tag = line / n_sets in
  let tags = t.tags.(proc) and stamps = t.stamps.(proc) in
  let base = set * assoc in
  let hit = ref false in
  let victim = ref base in
  let oldest = ref max_int in
  for way = base to base + assoc - 1 do
    if tags.(way) = tag then begin
      hit := true;
      victim := way
    end
    else if stamps.(way) < !oldest then begin
      oldest := stamps.(way);
      if not !hit then victim := way
    end
  done;
  stamps.(!victim) <- t.clock;
  if !hit then false
  else begin
    tags.(!victim) <- tag;
    t.n_miss <- t.n_miss + 1;
    t.per_proc_miss.(proc) <- t.per_proc_miss.(proc) + 1;
    true
  end

let access_many t ~proc addrs =
  Array.fold_left (fun acc addr -> acc + if access t ~proc ~addr then 1 else 0) 0 addrs

let accesses t = t.n_access

let misses t = t.n_miss

let miss_rate t =
  if t.n_access = 0 then 0.0 else 100.0 *. float_of_int t.n_miss /. float_of_int t.n_access

let proc_misses t proc = t.per_proc_miss.(proc)
