module W = Dfd_structures.Stats.Watermark

type t = {
  stack_bytes : int;
  heap : W.t;
  threads : W.t;
  combined : W.t;
  mutable gross : int;
}

let create ~stack_bytes =
  { stack_bytes; heap = W.create (); threads = W.create (); combined = W.create (); gross = 0 }

let alloc t n =
  t.gross <- t.gross + n;
  W.add t.heap n;
  W.add t.combined n

let free t n =
  W.add t.heap (-n);
  W.add t.combined (-n)

let thread_created t =
  W.add t.threads 1;
  W.add t.combined t.stack_bytes

let thread_exited t =
  W.add t.threads (-1);
  W.add t.combined (-t.stack_bytes)

let heap_current t = W.current t.heap

let heap_peak t = W.peak t.heap

let live_threads t = W.current t.threads

let live_threads_peak t = W.peak t.threads

let combined_peak t = W.peak t.combined

let total_allocated t = t.gross
