lib/runtime/psort.mli:
