lib/runtime/pool.ml: Array Atomic Condition Dfd_structures Domain Fun List Mutex Option
