lib/runtime/psort.ml: Array Pool
