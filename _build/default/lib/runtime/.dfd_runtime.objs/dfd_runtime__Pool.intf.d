lib/runtime/pool.mli:
