(** Parallel mergesort on the fork-join pool — a complete application of
    {!Pool}'s API (and of {!Pool.alloc_hint}: each merge reports its scratch
    space, so under the DFDeques discipline the sort exercises the memory
    quota exactly like the simulator's benchmarks do).

    Divide-and-conquer with a serial cutoff; the merge of two sorted halves
    is itself parallel (split at the median of the larger half, binary
    search in the other — Cormen et al.'s parallel merge), so the sort has
    polylog depth, not O(n). *)

val sort : ?cutoff:int -> cmp:('a -> 'a -> int) -> 'a array -> unit
(** In-place parallel mergesort.  Must be called from inside {!Pool.run}.
    [cutoff] (default 2048): subarrays at most this long use
    [Array.sort]. *)

val sorted : cmp:('a -> 'a -> int) -> 'a array -> bool
(** Is the array non-decreasing under [cmp]?  (Test helper.) *)
