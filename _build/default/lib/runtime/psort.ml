(* Parallel mergesort with parallel merge.  [sort_into] sorts src[lo,hi)
   writing the result into dst[lo,hi); alternating the direction of the
   recursion avoids copying at every level. *)

let sorted ~cmp arr =
  let n = Array.length arr in
  let rec go i = i >= n - 1 || (cmp arr.(i) arr.(i + 1) <= 0 && go (i + 1)) in
  go 0

(* Least index in [lo,hi) of src whose element is >= x (binary search in a
   sorted range). *)
let lower_bound ~cmp src x lo hi =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp src.(mid) x < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let sort ?(cutoff = 2048) ~cmp arr =
  let n = Array.length arr in
  if n > 1 then begin
    let scratch = Array.copy arr in
    (* merge src[lo1,hi1) and src[lo2,hi2) into dst starting at dlo *)
    let rec merge src dst lo1 hi1 lo2 hi2 dlo =
      let n1 = hi1 - lo1 and n2 = hi2 - lo2 in
      if n1 < n2 then merge src dst lo2 hi2 lo1 hi1 dlo
      else if n1 = 0 then ()
      else if n1 + n2 <= cutoff then begin
        (* serial two-finger merge *)
        let i = ref lo1 and j = ref lo2 and d = ref dlo in
        while !i < hi1 && !j < hi2 do
          if cmp src.(!i) src.(!j) <= 0 then begin
            dst.(!d) <- src.(!i);
            incr i
          end
          else begin
            dst.(!d) <- src.(!j);
            incr j
          end;
          incr d
        done;
        while !i < hi1 do
          dst.(!d) <- src.(!i);
          incr i;
          incr d
        done;
        while !j < hi2 do
          dst.(!d) <- src.(!j);
          incr j;
          incr d
        done
      end
      else begin
        (* split the larger run at its median, binary-search the other *)
        let m1 = (lo1 + hi1) / 2 in
        let m2 = lower_bound ~cmp src src.(m1) lo2 hi2 in
        let dmid = dlo + (m1 - lo1) + (m2 - lo2) in
        dst.(dmid) <- src.(m1);
        Pool.alloc_hint ((n1 + n2) * 8);
        let (), () =
          Pool.fork_join
            (fun () -> merge src dst lo1 m1 lo2 m2 dlo)
            (fun () -> merge src dst (m1 + 1) hi1 m2 hi2 (dmid + 1))
        in
        ()
      end
    in
    (* sort src[lo,hi); the result lands in src if [into_src], else in dst *)
    let rec msort src dst lo hi into_src =
      if hi - lo <= cutoff then begin
        let seg = Array.sub src lo (hi - lo) in
        Array.sort cmp seg;
        Array.blit seg 0 (if into_src then src else dst) lo (hi - lo)
      end
      else begin
        let mid = (lo + hi) / 2 in
        let (), () =
          Pool.fork_join
            (fun () -> msort src dst lo mid (not into_src))
            (fun () -> msort src dst mid hi (not into_src))
        in
        (* halves are sorted in the opposite array; merge back *)
        if into_src then merge dst src lo mid mid hi lo
        else merge src dst lo mid mid hi lo
      end
    in
    msort arr scratch 0 n true
  end
