(** Asynchronous depth-first scheduler "ADF" (Narlikar–Blelloch, refs
    [34,35] of the paper).

    All ready threads sit in one global structure ordered by their serial
    depth-first (1DF) priority; an idle processor dispatches the leftmost
    (highest-priority) ready thread.  At a fork the processor continues
    with the child and the parent re-enters the global structure at its
    priority.  Each dispatch grants the processor a memory quota of K
    bytes; exhaustion preempts the thread back into the structure, and
    allocations above K are preceded by dummy threads, exactly as in
    DFDeques.  The global structure is the scheduling bottleneck the paper
    ascribes to depth-first schedulers at fine granularity (Section 2.2):
    under the costed model every dispatch serialises through a lock. *)

module P : Sched_intf.POLICY

val policy : Sched_intf.ctx -> Sched_intf.packed
