(** The big-allocation transformation of Section 3.3.

    An action allocating [m > K] bytes must be preceded by [ceil(m/K)]
    dummy threads forked in a binary tree of depth [O(log(m/K))]; each
    dummy executes a single no-op, and the processor executing it gives up
    its deque and steals.  Only after all dummies have executed may the
    allocation proceed.  The transformation happens at runtime, when the
    allocation becomes the thread's next action. *)

val threads_needed : alloc:int -> k:int -> int
(** [ceil(alloc / k)], the number of dummy threads. *)

val transform : alloc:int -> k:int -> cont:Dfd_dag.Prog.t -> Dfd_dag.Prog.t
(** [transform ~alloc ~k ~cont] is the program that forks the dummy tree,
    joins it, then performs [Alloc alloc] and continues with [cont].
    Requires [alloc > k > 0].

    The leaves of the tree fork children whose whole program is the single
    {!Dfd_dag.Action.Dummy} action; the engine recognises that shape (via
    {!is_dummy_prog}) and creates those children with
    {!Thread_state.fork_dummy} so they carry the dummy flag. *)

val is_dummy_prog : Dfd_dag.Prog.t -> bool
(** Recognise the bare one-action dummy-thread program. *)
