module Metrics = Dfd_machine.Metrics

module P = struct
  type t = { ctx : Sched_intf.ctx; q : Thread_state.t Queue.t }

  let name = "FIFO"

  let global_queue = true

  let has_quota = false

  let create ctx = { ctx; q = Queue.create () }

  let register_root t root = Queue.push root t.q

  let acquire t ~proc:_ : Sched_intf.acquired =
    match Queue.take_opt t.q with
    | Some th ->
      Metrics.queue_dispatch t.ctx.Sched_intf.metrics;
      Got_steal th
    | None -> No_work

  let on_fork t ~proc:_ ~parent ~child =
    (* pthread_create semantics: the new thread enters the run queue, the
       creator continues. *)
    Queue.push child t.q;
    parent

  let on_suspend _t ~proc:_ _th = ()

  let on_terminate t ~proc:_ ~dead:_ ~woken =
    (match woken with Some th -> Queue.push th t.q | None -> ());
    None

  let on_quota_exhausted _t ~proc:_ _th = failwith "FIFO has no memory quota"

  let after_dummy _t ~proc:_ ~woken:_ = failwith "FIFO never executes dummy threads"

  let on_wake_lock t ~proc:_ th = Queue.push th t.q

  let check_invariants t =
    Queue.iter
      (fun th ->
         if not (Thread_state.is_ready th) then failwith "FIFO queue holds non-ready thread")
      t.q

  let stat t = [ ("ready", Queue.length t.q) ]
end

let policy ctx = Sched_intf.Packed ((module P), P.create ctx)
