(** Algorithm DFDeques(K) — the paper's contribution (Section 3.3, Figure 5).

    Ready threads live in multiple deques kept in a globally
    priority-ordered list [R].  Each processor owns at most one deque and
    treats it as a LIFO stack; a deque has at most one owner.  A processor:

    - pops work from the {e top} of its own deque;
    - at a fork, pushes the parent on top and continues with the child;
    - abandons its deque (leaving it in [R]) when its memory quota — K
      bytes of net allocation, reset at every steal — is exhausted, and
      after executing any dummy thread of the big-allocation transformation;
    - when out of work, steals the {e bottom} thread of a deque chosen
      uniformly at random among the leftmost [p] deques of [R], placing its
      fresh deque immediately to the {e right} of the victim.

    Deques are deleted when an owner finds its deque empty, or when a thief
    empties an ownerless deque.  Lemma 3.1's ordering invariant (deque list
    order + in-deque order = 1DF priority order of all ready threads) is
    checkable via {!P.check_invariants}.

    With [K = infinity] (threshold [None]) the algorithm behaves as the
    space-efficient work stealer of Blumofe–Leiserson (Section 3.3, "Work
    stealing as a special case"). *)

type variant = {
  steal_from_top : bool;
      (** ablation: steal the top (finest, highest-priority) thread of the
          victim deque instead of the bottom — destroys the coarse-steal
          granularity argument of Section 3.3. *)
  victim_anywhere : bool;
      (** ablation: choose the victim uniformly over {e all} deques of R
          instead of the leftmost p — breaks the left-frontier bias behind
          the Section 4.2 space argument. *)
}

val paper_variant : variant
(** [{ steal_from_top = false; victim_anywhere = false }] — Figure 5. *)

module P : Sched_intf.POLICY

val policy : Sched_intf.ctx -> Sched_intf.packed

val policy_with : variant -> Sched_intf.ctx -> Sched_intf.packed
(** DFDeques with ablation knobs (the [ablation] experiment). *)
