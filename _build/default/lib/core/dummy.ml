module Prog = Dfd_dag.Prog
module Action = Dfd_dag.Action

let threads_needed ~alloc ~k =
  if k <= 0 then invalid_arg "Dummy.threads_needed: k must be positive";
  (alloc + k - 1) / k

let dummy_prog = Prog.Act (Action.Dummy, Prog.Nil)

let is_dummy_prog = function
  | Prog.Act (Action.Dummy, Prog.Nil) -> true
  | _ -> false

(* A fragment forking [q] dummy threads as the leaves of a balanced binary
   fork tree (internal nodes are ordinary threads). *)
let rec tree q : Prog.frag =
  if q <= 1 then fun cont -> Prog.Fork ((fun () -> dummy_prog), Prog.Join cont)
  else Prog.par (tree (q / 2)) (tree (q - (q / 2)))

let transform ~alloc ~k ~cont =
  if alloc <= k then invalid_arg "Dummy.transform: allocation fits the threshold";
  let q = threads_needed ~alloc ~k in
  (tree q) (Prog.Act (Action.Alloc alloc, cont))
