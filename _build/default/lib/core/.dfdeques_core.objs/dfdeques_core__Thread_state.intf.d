lib/core/thread_state.mli: Dfd_dag Dfd_structures Format
