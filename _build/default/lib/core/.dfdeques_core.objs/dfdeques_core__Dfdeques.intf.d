lib/core/dfdeques.mli: Sched_intf
