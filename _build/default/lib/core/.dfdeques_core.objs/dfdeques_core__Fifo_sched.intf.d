lib/core/fifo_sched.mli: Sched_intf
