lib/core/fifo_sched.ml: Dfd_machine Queue Sched_intf Thread_state
