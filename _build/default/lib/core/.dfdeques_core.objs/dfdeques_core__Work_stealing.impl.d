lib/core/work_stealing.ml: Array Dfd_machine Dfd_structures Sched_intf Thread_state
