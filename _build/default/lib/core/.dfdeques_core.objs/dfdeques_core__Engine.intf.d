lib/core/engine.mli: Dfd_dag Dfd_machine Dfdeques Format Sched_intf Thread_state
