lib/core/depth_first.ml: Dfd_machine Dfd_structures List Sched_intf Thread_state
