lib/core/work_stealing.mli: Sched_intf
