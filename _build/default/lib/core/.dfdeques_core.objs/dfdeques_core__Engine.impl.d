lib/core/engine.ml: Array Depth_first Dfd_dag Dfd_machine Dfd_structures Dfdeques Dummy Fifo_sched Format Hashtbl Option Printf Queue Sched_intf Thread_state Work_stealing
