lib/core/depth_first.mli: Sched_intf
