lib/core/dfdeques.ml: Array Dfd_machine Dfd_structures Format Sched_intf Thread_state
