lib/core/dummy.ml: Dfd_dag
