lib/core/dummy.mli: Dfd_dag
