lib/core/sched_intf.ml: Dfd_machine Dfd_structures Thread_state
