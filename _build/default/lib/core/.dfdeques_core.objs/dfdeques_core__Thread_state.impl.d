lib/core/thread_state.ml: Dfd_dag Dfd_structures Format Printf
