(** Space-efficient work stealing (Blumofe–Leiserson, ref [9] of the paper).

    Exactly [p] per-processor deques, fixed for the whole execution.  The
    owner pushes/pops at the top (LIFO); at a fork the parent is pushed and
    the child continues (work-first); an idle processor steals the {e
    bottom} thread of a uniformly random victim's deque.  No memory
    threshold: this is the scheduler the paper's Figure 13 labels "Cilk"
    and Section 6 labels "WS", and against which Corollary 4.6's
    Omega(p*S1) lower bound is stated. *)

module P : Sched_intf.POLICY

val policy : Sched_intf.ctx -> Sched_intf.packed
