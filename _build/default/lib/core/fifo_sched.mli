(** The Pthreads library's original FIFO scheduler (the "FIFO" baseline of
    Figures 1, 11, 12, 14).

    One global FIFO run queue: a forked child joins the tail and the
    creating thread keeps running; idle processors dispatch from the head;
    reawakened threads go to the tail.  This executes fork trees in nearly
    breadth-first order, creating the excess active parallelism the paper
    uses it to demonstrate (Section 2.2: 16 simultaneously live threads for
    Figure 2's dag vs. 5 for depth-first).  No space mechanism of any kind:
    no quota, no dummy threads. *)

module P : Sched_intf.POLICY

val policy : Sched_intf.ctx -> Sched_intf.packed
