module Prog = Dfd_dag.Prog
open Prog

(* Layout: the data array at 0 (complex words, 2 per element), twiddle
   table at 2n. *)

let prog ~n ~leaf () =
  let tw_base = 2 * n in
  (* The twiddle/combine pass over a segment of m elements is itself a
     parallel loop (as in FFTW's multithreaded executor): chunks of
     [4*leaf] butterflies fork as threads. *)
  let combine ~base ~m =
    let chunk = 4 * leaf in
    let one ~cbase ~cm =
      Workload.touch_block ~repeat:2 ~base:cbase ~words:(2 * cm) ~stride:Workload.line_stride
        ()
      >> Workload.touch_block ~repeat:2 ~base:tw_base ~words:(max 8 (cm / 4))
           ~stride:Workload.line_stride ()
      >> work (max 1 (cm / 4))
    in
    if m <= chunk then one ~cbase:base ~cm:m
    else
      par_iter ~lo:0 ~hi:(m / chunk) (fun i ->
          one ~cbase:(base + (2 * i * chunk)) ~cm:chunk)
  in
  let rec fft ~base ~m =
    if m <= leaf then
      (* serial codelet: m log m butterflies, one line-touch per 8 elems *)
      Workload.touch_block ~repeat:4 ~base ~words:(2 * m) ~stride:Workload.line_stride ()
      >> work (max 1 (m * 4 / 8))
    else begin
      let h = m / 2 in
      par (fft ~base ~m:h) (fft ~base:(base + (2 * h)) ~m:h) >> combine ~base ~m
    end
  in
  finish
    (alloc (n * 8) (* twiddle table *)
     >> fft ~base:0 ~m:n
     >> free (n * 8))

let bench ?(n = 16384) grain =
  let leaf = match grain with Workload.Medium -> 512 | Workload.Fine -> 128 in
  Workload.make ~name:"FFTW"
    ~description:(Printf.sprintf "recursive FFT of size %d, %d-point leaf codelets" n leaf)
    ~grain ~prog:(prog ~n ~leaf)
