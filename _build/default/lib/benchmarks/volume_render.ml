module Prog = Dfd_dag.Prog
open Prog

(* Layout: the volume occupies vol^3 words from 0; the image plane sits
   after it. *)

let prog ~vol ~img ~tile () =
  let img_base = (((vol * vol) + (3 * Workload.line_stride)) * vol) + 64 in
  let tiles_per_side = (img + tile - 1) / tile in
  let n_tiles = tiles_per_side * tiles_per_side in
  (* The volume is stored with a padded slab stride (as real renderers do,
     precisely to avoid power-of-two cache-set aliasing between samples);
     img_base above reserves the padded volume region. *)
  let slab = (vol * vol) + (3 * Workload.line_stride) in
  assert (img_base > slab * vol);
  let ray ~px ~py =
    (* March [vol] samples along a slightly slanted column: neighbouring
       pixels hit neighbouring columns, and trilinear interpolation revisits
       each sample's neighbourhood. *)
    let sx = px * vol / img and sy = py * vol / img in
    let samples = max 1 (vol / 4) in
    let once =
      Array.init samples (fun s ->
          let z = s * vol / samples in
          (z * slab) + (sy * vol) + sx)
    in
    touch (Array.concat [ once; once ])
    >> touch [| img_base + (py * img) + px |]
    >> work (max 1 (vol / 8))
  in
  let tile_frag t =
    let tx = (t mod tiles_per_side) * tile and ty = t / tiles_per_side * tile in
    let rec rays i =
      if i >= tile * tile then nothing
      else ray ~px:(tx + (i mod tile)) ~py:(ty + (i / tile)) >> rays (i + 1)
    in
    rays 0
  in
  finish (par_iter ~lo:0 ~hi:n_tiles tile_frag)

let bench ?(vol = 32) ?(img = 64) grain =
  let tile = match grain with Workload.Medium -> 8 | Workload.Fine -> 4 in
  Workload.make ~name:"VolRend"
    ~description:
      (Printf.sprintf "ray-cast volume rendering, %d^3 volume, %d^2 image, %dx%d tiles" vol img
         tile tile)
    ~grain ~prog:(prog ~vol ~img ~tile)
