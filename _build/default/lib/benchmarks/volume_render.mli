(** Ray-casting volume renderer (the paper's Vol. Rend. benchmark, derived
    from the SPLASH-2 renderer).

    A [img x img] image is partitioned into square tiles; a binary fork
    tree creates one thread per tile.  Each ray marches through the
    [vol^3]-voxel volume touching voxels along its path; rays from the same
    tile traverse neighbouring voxel columns, so threads close in the dag
    share volume cache lines.  No heap allocation (the paper's version
    allocates only at startup). *)

val bench : ?vol:int -> ?img:int -> Workload.grain -> Workload.t

val prog : vol:int -> img:int -> tile:int -> unit -> Dfd_dag.Prog.t
