let table_benchmarks grain =
  [
    Volume_render.bench grain;
    Dense_mm.bench grain;
    Sparse_mvm.bench grain;
    Fftw_like.bench grain;
    Fmm.bench grain;
    Barnes_hut.bench grain;
    Decision_tree.bench grain;
  ]

let all grain =
  table_benchmarks grain
  @ [
      Barnes_hut.treebuild grain;
      Synthetic.bench grain;
      Lower_bound.bench grain;
      Pipeline.bench grain;
    ]

let names = List.map (fun b -> b.Workload.name) (all Workload.Medium)

let find name grain =
  let want = String.lowercase_ascii name in
  match
    List.find_opt (fun b -> String.lowercase_ascii b.Workload.name = want) (all grain)
  with
  | Some b -> b
  | None -> raise Not_found
