(** Recursive FFT in the style of FFTW's codelets (the paper's "FFTW"
    benchmark).

    Cooley-Tukey: a transform of size n recurses on two interleaved halves
    in parallel, then runs a twiddle/combine pass over the whole segment.
    Leaf transforms of size [leaf] run serially as codelets.  The combine
    pass touches the segment's cache lines, so threads working on sibling
    segments share lines near the recursion's bottom — exactly the locality
    structure that favours coarse steals.  Minor heap use (a twiddle-factor
    table per top-level call). *)

val bench : ?n:int -> Workload.grain -> Workload.t

val prog : n:int -> leaf:int -> unit -> Dfd_dag.Prog.t
