(** A software pipeline over condition variables — the blocking-
    synchronisation stress test beyond Figure 17's mutexes (the paper's
    Pthreads implementation "supports computations with arbitrary
    synchronizations, such as mutexes and condition variables",
    Section 3.1).

    [stages] threads run concurrently; stage 0 produces [items] work items,
    each later stage waits on its condition variable for an item, processes
    it (work + a touch of its stage-local buffer), and signals the next
    stage.  Signals are sticky (see {!Dfd_dag.Action.Wait}), so the
    pipeline is deterministic and deadlock-free however it is scheduled.
    Threads spend most of their lives suspended — the regime in which
    DFDeques' granularity advantage collapses to ADF levels (Section 7's
    discussion of blocking synchronisation). *)

val bench : ?stages:int -> ?items:int -> Workload.grain -> Workload.t

val prog : stages:int -> items:int -> work_per_item:int -> unit -> Dfd_dag.Prog.t
