(** Barnes-Hut N-body (the paper's locality-sensitive benchmark; its
    lock-based tree-building phase is Figure 17's workload).

    Two phases over [bodies] particles on a Morton-ordered line:

    {ol {- {b tree build} — particles are inserted into an octree whose
    cells are protected by {e mutexes}: each insertion walks down a few
    levels, locking the cell it modifies (the paper: "the tree-building
    phase uses mutexes to protect modifications to the tree's cells").
    Contention is real: particles in the same region hit the same locks;}
    {- {b force computation} — a parallel loop over bodies; each body
    traverses cell centroids (an approximation-ordered prefix plus its
    neighbourhood's leaves).  Neighbouring bodies touch nearly identical
    cell sequences — the benchmark rewards schedulers that keep dag
    neighbours on one processor.}}

    [bench] runs both phases; [treebuild] is the Figure 17 phase alone. *)

val bench : ?bodies:int -> Workload.grain -> Workload.t

val treebuild : ?bodies:int -> Workload.grain -> Workload.t

val prog : bodies:int -> block:int -> tree_only:bool -> unit -> Dfd_dag.Prog.t
