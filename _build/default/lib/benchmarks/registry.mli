(** Name-indexed access to all benchmarks — the set used by the Figure 1 /
    11 / 12 tables, in the paper's row order. *)

val table_benchmarks : Workload.grain -> Workload.t list
(** The seven Section 5 benchmarks: VolRend, DenseMM, SparseMVM, FFTW, FMM,
    BarnesHut, DecisionTree. *)

val all : Workload.grain -> Workload.t list
(** The seven plus BH-TreeBuild, Synthetic, LowerBound and the condvar
    Pipeline. *)

val find : string -> Workload.grain -> Workload.t
(** Look a benchmark up by (case-insensitive) name; raises [Not_found]. *)

val names : string list
