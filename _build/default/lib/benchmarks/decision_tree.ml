module Prog = Dfd_dag.Prog
module Prng = Dfd_structures.Prng
open Prog

(* Row storage: the working set of a node is modelled as a fresh block of
   row indices (4 bytes each).  Address regions for partitions are carved
   deterministically during construction. *)

let prog ~instances ~cutoff ~seed () =
  let rng = Prng.create seed in
  (* Scanning a node's rows is itself a parallel loop over [cutoff]-row
     chunks (the real builder scans attributes in parallel); this keeps the
     dag's depth proportional to the tree depth, not the instance count. *)
  let scan ~base ~n =
    let chunk ~cbase ~cn =
      Workload.touch_block ~repeat:3 ~base:cbase ~words:cn ~stride:Workload.line_stride ()
      >> work (max 1 (cn / 4))
    in
    if n <= 2 * cutoff then chunk ~cbase:base ~cn:n
    else begin
      let nchunks = (n + cutoff - 1) / cutoff in
      par_iter ~lo:0 ~hi:nchunks (fun i ->
          let lo = i * cutoff in
          chunk ~cbase:(base + lo) ~cn:(min cutoff (n - lo)))
    end
  in
  let rec build ~base ~n ~depth =
    if n <= cutoff || depth >= 12 then
      (* leaf: scan once to compute the label distribution *)
      scan ~base ~n
    else begin
      let frac = 30 + Prng.int rng 40 in
      let nl = max 1 (n * frac / 100) in
      let nr = max 1 (n - nl) in
      (* the partitions are row-index arrays (allocated), but the rows they
         point into are subranges of this node's region — children re-scan
         data their parent just touched *)
      let bl = base and br = base + nl in
      scan ~base ~n
      >> alloc (4 * (nl + nr))
      >> par (build ~base:bl ~n:nl ~depth:(depth + 1)) (build ~base:br ~n:nr ~depth:(depth + 1))
      >> free (4 * (nl + nr))
    end
  in
  finish (build ~base:0 ~n:instances ~depth:0)

let bench ?(instances = 16_000) grain =
  let cutoff = match grain with Workload.Medium -> 500 | Workload.Fine -> 120 in
  Workload.make ~name:"DecisionTree"
    ~description:
      (Printf.sprintf "top-down decision-tree builder, %d instances, %d-row cutoff" instances
         cutoff)
    ~grain
    ~prog:(prog ~instances ~cutoff ~seed:4242)
