type grain = Medium | Fine

let pp_grain ppf = function
  | Medium -> Format.pp_print_string ppf "medium"
  | Fine -> Format.pp_print_string ppf "fine"

type t = {
  name : string;
  description : string;
  grain : grain;
  prog : unit -> Dfd_dag.Prog.t;
}

let make ~name ~description ~grain ~prog = { name; description; grain; prog }

let line_stride = 8

let touch_block ?(repeat = 1) ~base ~words ~stride () =
  if words <= 0 then Dfd_dag.Prog.nothing
  else begin
    let n = max 1 ((words + stride - 1) / stride) in
    let once = Array.init n (fun i -> base + (i * stride)) in
    let addrs = Array.concat (List.init (max 1 repeat) (fun _ -> once)) in
    Dfd_dag.Prog.touch addrs
  end
