(** Parallel decision-tree builder (the paper's "DecisionTr." benchmark;
    irregular parallelism and data-dependent allocation).

    Top-down induction over [instances] training rows: a node scans its
    rows to pick a split (touching the row block, work proportional to its
    size), {e allocates} the two partitions, recurses on them in parallel,
    and frees its own partition once the children are built.  Splits are
    pseudo-randomly skewed (30/70 on average), so the recursion tree is
    unbalanced — the irregular load the paper uses it for.  Recursion
    serialises below [cutoff] rows (the thread-granularity knob). *)

val bench : ?instances:int -> Workload.grain -> Workload.t

val prog : instances:int -> cutoff:int -> seed:int -> unit -> Dfd_dag.Prog.t
