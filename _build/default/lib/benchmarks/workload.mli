(** Common shape of the paper's benchmarks (Section 5.1).

    Each benchmark builds a nested-parallel program whose dag shape,
    allocation profile and memory-reference pattern mirror the corresponding
    C/Pthreads benchmark; the schedulers only ever see those three things,
    so this is the faithful projection of the benchmark onto the simulator.

    Every benchmark comes in two thread granularities, as in the paper:
    {e medium} (recursion serialised near the leaves, the granularity that
    performed well under the depth-first scheduler in [35]) and {e fine}
    (the finest granularity keeping thread overhead ~5% of serial time). *)

type grain = Medium | Fine

val pp_grain : Format.formatter -> grain -> unit

type t = {
  name : string;
  description : string;
  grain : grain;
  prog : unit -> Dfd_dag.Prog.t;
      (** fresh program; internal PRNGs are re-seeded so every call builds
          the same dag. *)
}

val make :
  name:string -> description:string -> grain:grain -> prog:(unit -> Dfd_dag.Prog.t) -> t

(** Helpers shared by benchmark implementations. *)

val touch_block :
  ?repeat:int -> base:int -> words:int -> stride:int -> unit -> Dfd_dag.Prog.frag
(** One [Touch] action referencing [words / stride] addresses sampling the
    block [base, base+words) at the given stride (use the cache line size in
    words to touch each line once).  [repeat] (default 1) re-references the
    whole block that many times, modelling the temporal reuse of the kernel
    loop the block stands for — only the first round can miss in a cache
    that fits the block, so the miss {e rate} scales as 1/repeat. *)

val line_stride : int
(** 8 words = one 64-byte cache line. *)
