module Prog = Dfd_dag.Prog
open Prog

(* Quadtree cells are indexed heap-style: cell 0 is the root, children of c
   are 4c+1..4c+4.  The expansion of cell c occupies [terms] words at
   exp_base + c*terms. *)

let n_cells levels =
  let rec go l acc pow = if l > levels then acc else go (l + 1) (acc + pow) (4 * pow) in
  go 0 0 1

let prog ~levels ~terms ~serial_cutoff () =
  let total = n_cells levels in
  let exp_base = 0 in
  let particle_base = total * terms in
  let expansion c = exp_base + (c * terms) in
  let exp_bytes = terms * 8 in
  let cell_level c =
    let rec go c l = if c = 0 then l else go ((c - 1) / 4) (l + 1) in
    go c 0
  in
  let is_leaf c = cell_level c = levels in
  let children c = List.init 4 (fun i -> (4 * c) + 1 + i) in
  (* Upward pass: compute children first, then shift their expansions into
     the parent's freshly allocated one.  The expansion stays live. *)
  let rec upward c =
    let mine =
      alloc exp_bytes
      >> Workload.touch_block ~repeat:4 ~base:(expansion c) ~words:terms
           ~stride:Workload.line_stride ()
    in
    if is_leaf c then
      (* particle-to-multipole: touch the cell's particles *)
      mine
      >> touch [| particle_base + c; particle_base + c + 1 |]
      >> work (max 1 (terms * 2))
    else begin
      let body = List.map upward (children c) in
      let recur = if cell_level c >= serial_cutoff then seq body else par_list body in
      (* children, then combine their expansions through a scratch buffer
         (the transient allocation that makes FMM's watermark
         scheduler-sensitive, cf. Figure 14) *)
      recur >> mine
      >> alloc (4 * exp_bytes)
      >> touch (Array.of_list (List.map expansion (children c)))
      >> work (max 1 (terms * terms / 4))
      >> free (4 * exp_bytes)
    end
  in
  (* Interaction pass: each cell reads up to 8 same-level "well separated"
     cells' expansions (a fixed pseudo-pattern: siblings and cousins). *)
  let rec interact c =
    let peers =
      List.filteri (fun i _ -> i < 8)
        (List.concat_map (fun d ->
             let t = c + d in
             if t > 0 && t < total && cell_level t = cell_level c then [ t ] else [])
           [ -3; -2; -1; 1; 2; 3; 4; -4 ])
    in
    let self =
      touch (Array.of_list (expansion c :: List.map expansion peers))
      >> work (max 1 (terms * terms / 8 * max 1 (List.length peers) / 4))
    in
    if is_leaf c then self
    else begin
      let body = List.map interact (children c) in
      let recur = if cell_level c >= serial_cutoff then seq body else par_list body in
      self >> recur
    end
  in
  (* Downward pass: evaluate at particles and free each expansion. *)
  let rec downward c =
    let mine =
      touch [| expansion c |]
      >> work (max 1 terms)
      >> free exp_bytes
    in
    if is_leaf c then mine >> touch [| particle_base + c |]
    else begin
      let body = List.map downward (children c) in
      let recur = if cell_level c >= serial_cutoff then seq body else par_list body in
      mine >> recur
    end
  in
  finish (upward 0 >> interact 0 >> downward 0)

let bench ?(levels = 5) ?(terms = 20) grain =
  let serial_cutoff = match grain with Workload.Medium -> 3 | Workload.Fine -> 5 in
  Workload.make ~name:"FMM"
    ~description:
      (Printf.sprintf "uniform 2-d FMM, %d quadtree levels, %d-term expansions" levels terms)
    ~grain
    ~prog:(prog ~levels ~terms ~serial_cutoff)
