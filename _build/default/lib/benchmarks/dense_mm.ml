module Prog = Dfd_dag.Prog
open Prog

(* Word-address layout: A at 0, B at n^2, C at 2n^2; temporaries are carved
   deterministically out of the region starting at 3n^2 (address assignment
   happens during the dag construction walk, which is schedule-independent
   because every sub-multiply gets a disjoint region). *)

let prog ?(n = 128) ~leaf () =
  if n < 2 * leaf then invalid_arg "Dense_mm.prog: n must be >= 2*leaf";
  let a_base = 0 and b_base = n * n and c_base = 2 * n * n in
  let tmp_start = 3 * n * n in
  (* Serial leaf multiply of an m x m block: one unit of work per 8
     multiply-adds; touches one line per block row of each operand. *)
  let leaf_mult ~m ~a ~b ~c =
    let rows base =
      Array.init m (fun i -> base + (i * n))
      |> Array.to_list
      |> List.concat_map (fun row ->
          List.init (max 1 (m / Workload.line_stride)) (fun j ->
              row + (j * Workload.line_stride)))
      |> Array.of_list
    in
    let rep arr = Array.concat [ arr; arr; arr ] in
    touch (rep (rows a)) >> touch (rep (rows b)) >> touch (rows c)
    >> work (max 1 (m * m * m / 8))
  in
  (* tmp region size needed by a multiply of size m. *)
  let rec tmp_need m = if m <= leaf then 0 else (m * m) + (8 * tmp_need (m / 2)) in
  (* C(c) += A(a) * B(b), block size m, using the tmp region at [tmp]. *)
  let rec mult ~m ~a ~b ~c ~tmp =
    if m <= leaf then leaf_mult ~m ~a ~b ~c
    else begin
      let h = m / 2 in
      let quad base i j = base + (i * h * n) + (j * h) in
      let sub = tmp_need h in
      let t = tmp and t' = tmp + (m * m) in
      (* first products: Cij += Ai0 * B0j ; second: Tij = Ai1 * B1j *)
      let calls =
        List.init 2 (fun i ->
            List.init 2 (fun j ->
                let k1 = 2 * ((2 * i) + j) in
                let k2 = k1 + 1 in
                [
                  mult ~m:h ~a:(quad a i 0) ~b:(quad b 0 j) ~c:(quad c i j)
                    ~tmp:(t' + (k1 * sub));
                  mult ~m:h ~a:(quad a i 1) ~b:(quad b 1 j)
                    ~c:(t + (((2 * i) + j) * h * h))
                    ~tmp:(t' + (k2 * sub));
                ])
            |> List.concat)
        |> List.concat
      in
      (* allocate the temporary (8 bytes per word), run the 8 sub-multiplies
         in parallel, add T into C as a parallel loop over row bands, free *)
      let add_band i =
        Workload.touch_block ~base:(c + (i * h * n)) ~words:(h * n)
          ~stride:Workload.line_stride ()
        >> Workload.touch_block ~base:(t + (i * h * m)) ~words:(h * m)
             ~stride:Workload.line_stride ()
        >> work (max 1 (h * m / 8))
      in
      alloc (m * m * 8)
      >> par_list calls
      >> (if m <= 2 * leaf then add_band 0 >> add_band 1
          else par (add_band 0) (add_band 1))
      >> free (m * m * 8)
    end
  in
  finish (mult ~m:n ~a:a_base ~b:b_base ~c:c_base ~tmp:tmp_start)

let bench ?(n = 128) grain =
  let leaf = match grain with Workload.Medium -> 16 | Workload.Fine -> 8 in
  Workload.make ~name:"DenseMM"
    ~description:
      (Printf.sprintf "recursive blocked %dx%d matrix multiply, %dx%d leaf blocks" n n leaf leaf)
    ~grain ~prog:(prog ~n ~leaf)
