module Prog = Dfd_dag.Prog
module Prng = Dfd_structures.Prng
open Prog

type family =
  | Geometric  (** memory and granularity halve per level (Figure 16). *)
  | Flat  (** every node allocates and works the same amount. *)
  | Inverted  (** memory {e grows} toward the leaves (buffers allocated at
                  the bottom of the recursion, e.g. out-of-core merges). *)
  | Skewed
      (** unbalanced recursion: one child gets ~70% of the remaining
          levels' budget — the irregular-load family. *)

let family_prog ~family ~levels ~mem0 ~gran0 ~seed () =
  let module Prog = Dfd_dag.Prog in
  let open Prog in
  let rng = Prng.create seed in
  let around mean =
    if mean <= 1 then 1 else max 1 (Prng.int_in rng (mean / 2) (mean + (mean / 2)))
  in
  let level_mem level =
    match family with
    | Geometric | Skewed -> max 1 (mem0 lsr level)
    | Flat -> max 1 (mem0 / levels)
    | Inverted -> max 1 (mem0 lsr (levels - 1 - min level (levels - 1)))
  in
  let level_gran level =
    match family with
    | Geometric | Skewed -> max 1 (gran0 lsr level)
    | Flat -> max 1 (gran0 / levels)
    | Inverted -> max 1 (gran0 lsr (levels - 1 - min level (levels - 1)))
  in
  let rec node level budget =
    let m = around (level_mem level) in
    let g = around (level_gran level) in
    if level >= levels - 1 || budget <= 1 then alloc m >> work g >> free m
    else begin
      let lb, rb =
        match family with
        | Skewed ->
          let big = max 1 (budget * 7 / 10) in
          if Prng.bool rng then (big, max 1 (budget - big)) else (max 1 (budget - big), big)
        | Geometric | Flat | Inverted -> (budget / 2, budget - (budget / 2))
      in
      alloc m >> work g >> par (node (level + 1) lb) (node (level + 1) rb) >> free m
    end
  in
  finish (node 0 (1 lsl (levels - 1)))

let prog ~levels ~mem0 ~gran0 ~seed () =
  let rng = Prng.create seed in
  (* uniform in [mean/2, 3*mean/2] — "selected uniformly at random with the
     specified mean" *)
  let around mean =
    if mean <= 1 then 1 else max 1 (Prng.int_in rng (mean / 2) (mean + (mean / 2)))
  in
  let rec node level =
    let mean_mem = max 1 (mem0 lsr level) in
    let mean_gran = max 1 (gran0 lsr level) in
    let m = around mean_mem in
    let g = around mean_gran in
    if level >= levels - 1 then alloc m >> work g >> free m
    else
      alloc m >> work g
      >> par (node (level + 1)) (node (level + 1))
      >> free m
  in
  finish (node 0)

let family_bench ?(levels = 13) ?(mem0 = 65536) ?(gran0 = 512) ?(seed = 2718) family grain =
  let name =
    match family with
    | Geometric -> "Synth-geom"
    | Flat -> "Synth-flat"
    | Inverted -> "Synth-inverted"
    | Skewed -> "Synth-skewed"
  in
  Workload.make ~name
    ~description:
      (Printf.sprintf "synthetic d&c family %s: %d levels, root mem %dB, root work %d" name
         levels mem0 gran0)
    ~grain
    ~prog:(family_prog ~family ~levels ~mem0 ~gran0 ~seed)

let bench ?(levels = 15) ?(mem0 = 131072) ?(gran0 = 1024) ?(seed = 2718) grain =
  Workload.make ~name:"Synthetic"
    ~description:
      (Printf.sprintf
         "Section 6 synthetic d&c: %d levels, geometric memory (root %dB) and granularity (root \
          %d)"
         levels mem0 gran0)
    ~grain
    ~prog:(prog ~levels ~mem0 ~gran0 ~seed)
