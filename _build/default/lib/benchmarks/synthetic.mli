(** The Section 6 synthetic divide-and-conquer benchmark.

    A binary recursion of [levels] levels; a thread at level i allocates
    memory with mean [mem0 / 2^i] and executes work with mean
    [gran0 / 2^i], forks its two children, joins them, and frees — "both
    the memory requirement and the thread granularity decrease
    geometrically down the recursion tree", with each level's actual values
    drawn uniformly at random around the mean to model irregularity
    (footnote 16 of the paper). *)

type family =
  | Geometric  (** memory and granularity halve per level (Figure 16). *)
  | Flat  (** uniform allocation and work at every node. *)
  | Inverted  (** memory grows toward the leaves. *)
  | Skewed  (** unbalanced recursion (~70/30 splits); irregular load. *)

val family_prog :
  family:family -> levels:int -> mem0:int -> gran0:int -> seed:int -> unit -> Dfd_dag.Prog.t
(** The other synthetic families of the thesis's Chapter on simulation
    (the paper's footnote 17: "results for other benchmarks ... can be
    found elsewhere [33]"). *)

val family_bench :
  ?levels:int -> ?mem0:int -> ?gran0:int -> ?seed:int -> family -> Workload.grain -> Workload.t

val prog :
  levels:int -> mem0:int -> gran0:int -> seed:int -> unit -> Dfd_dag.Prog.t

val bench :
  ?levels:int -> ?mem0:int -> ?gran0:int -> ?seed:int -> Workload.grain -> Workload.t
(** Defaults: 15 levels, 128kB root allocation, 1024-unit root work — the
    Figure 16 configuration scaled to the simulator. *)
