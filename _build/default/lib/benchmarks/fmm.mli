(** Fast Multipole Method, uniform 2-d (the paper's FMM benchmark; heap
    heavy — Figure 14 reports its heap watermark).

    A [levels]-deep quadtree over a uniform particle distribution:
    {ol {- upward pass: per-cell multipole expansions are {e allocated} and
    computed bottom-up (children before parents), each cell's expansion
    living until the downward pass releases it;}
    {- interaction pass: every cell evaluates its interaction list
    (well-separated same-level cells), touching their expansions;}
    {- downward pass: local expansions are evaluated at the particles and
    the multipole storage is freed.}}
    Each phase is a parallel recursion over the quadtree; threads working
    on sibling cells touch adjacent expansion storage. *)

val bench : ?levels:int -> ?terms:int -> Workload.grain -> Workload.t

val prog : levels:int -> terms:int -> serial_cutoff:int -> unit -> Dfd_dag.Prog.t
