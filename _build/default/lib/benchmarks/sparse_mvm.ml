module Prog = Dfd_dag.Prog
module Prng = Dfd_structures.Prng
open Prog

(* Layout: x at 0, y at rows, A's values+indices at 2*rows (row-major). *)

let prog ~rows ~nnz_per_row ~block ~seed () =
  let x_base = 0 and y_base = rows and a_base = 2 * rows in
  let rng = Prng.create seed in
  (* Fixed banded sparsity pattern, regenerated identically on each call. *)
  let cols =
    Array.init rows (fun r ->
        Array.init nnz_per_row (fun _ ->
            let off = Prng.int_in rng (-40) 40 in
            let c = r + off in
            if c < 0 then 0 else if c >= rows then rows - 1 else c))
  in
  let row_frag r =
    let touches =
      Array.concat
        [
          Array.map (fun c -> x_base + c) cols.(r);
          [| y_base + r |];
          Array.init (max 1 (nnz_per_row / Workload.line_stride)) (fun j ->
              a_base + (r * nnz_per_row) + (j * Workload.line_stride));
        ]
    in
    touch touches >> work (max 1 (nnz_per_row / 4))
  in
  let nblocks = (rows + block - 1) / block in
  let block_frag b =
    let lo = b * block and hi = min rows ((b + 1) * block) in
    let rec rows_seq r = if r >= hi then nothing else row_frag r >> rows_seq (r + 1) in
    rows_seq lo
  in
  finish (par_iter ~lo:0 ~hi:nblocks block_frag)

let bench ?(rows = 3000) ?(nnz_per_row = 12) grain =
  let block = match grain with Workload.Medium -> 48 | Workload.Fine -> 12 in
  Workload.make ~name:"SparseMVM"
    ~description:
      (Printf.sprintf "banded sparse MVM, %d rows, ~%d nnz/row, %d-row blocks" rows nnz_per_row
         block)
    ~grain
    ~prog:(prog ~rows ~nnz_per_row ~block ~seed:1234)
