(** The Theorem 4.5 / Figure 10 adversarial dag.

    A binary fork tree of depth [log2(p/2)] whose leaves are [p/2]
    subgraphs.  The leftmost subgraph G0 is a serial chain of ~2d nodes
    (it keeps one processor busy and pins the dag's depth).  Each other
    subgraph G forks [d] threads along a spine; the j-th thread's first
    node {e allocates} A bytes, holds them across ~2(d-j) timesteps of
    work, and frees them just before terminating, so its +A and -A are
    separated by the join bounce — the serial 1DF schedule runs the d
    threads one after another (S1 = A plus the root's epsilon), while a
    scheduler that steals the spine prematurely materialises up to d
    simultaneous allocations per subgraph and Omega(min(K,S1) * p * D)
    space overall.

    [a_bytes] plays the role of A = min(K, S1). *)

val prog : p:int -> d:int -> a_bytes:int -> unit -> Dfd_dag.Prog.t

val expected_serial_space : a_bytes:int -> int
(** S1 of the constructed dag (= [a_bytes]: one allocation live at a time). *)

val bench : ?p:int -> ?d:int -> ?a_bytes:int -> Workload.grain -> Workload.t
