(** Dense matrix multiply (the paper's most allocation-intensive benchmark;
    Figures 12–15 all use it).

    Recursive blocked C = A*B on n x n doubles: each level splits into
    quadrants, runs the 8 sub-multiplies in parallel (4 accumulating into C,
    4 into a freshly allocated n x n temporary), then adds the temporary
    into C and frees it — the temporaries are what makes the benchmark's
    heap watermark scheduler-sensitive.  Leaf blocks multiply serially,
    touching one cache line per block row of A, B and C.

    Medium grain: 16 x 16 leaf blocks; fine grain: 8 x 8 (8x the threads,
    as in Figure 11). *)

val bench : ?n:int -> Workload.grain -> Workload.t
(** [n] (default 128) must be a power of two and >= 2 * the leaf size. *)

val prog : ?n:int -> leaf:int -> unit -> Dfd_dag.Prog.t
(** Raw program builder (for sweeps over leaf size). *)
