lib/benchmarks/fftw_like.ml: Dfd_dag Printf Workload
