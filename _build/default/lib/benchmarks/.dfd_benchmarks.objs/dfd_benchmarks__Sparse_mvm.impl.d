lib/benchmarks/sparse_mvm.ml: Array Dfd_dag Dfd_structures Printf Workload
