lib/benchmarks/synthetic.mli: Dfd_dag Workload
