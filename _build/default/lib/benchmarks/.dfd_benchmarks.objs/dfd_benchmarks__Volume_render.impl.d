lib/benchmarks/volume_render.ml: Array Dfd_dag Printf Workload
