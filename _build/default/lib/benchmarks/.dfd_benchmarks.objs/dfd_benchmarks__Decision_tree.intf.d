lib/benchmarks/decision_tree.mli: Dfd_dag Workload
