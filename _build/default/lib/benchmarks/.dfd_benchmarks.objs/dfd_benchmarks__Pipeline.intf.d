lib/benchmarks/pipeline.mli: Dfd_dag Workload
