lib/benchmarks/fftw_like.mli: Dfd_dag Workload
