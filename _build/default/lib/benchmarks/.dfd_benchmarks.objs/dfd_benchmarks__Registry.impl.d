lib/benchmarks/registry.ml: Barnes_hut Decision_tree Dense_mm Fftw_like Fmm List Lower_bound Pipeline Sparse_mvm String Synthetic Volume_render Workload
