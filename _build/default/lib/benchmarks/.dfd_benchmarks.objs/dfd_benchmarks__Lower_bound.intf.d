lib/benchmarks/lower_bound.mli: Dfd_dag Workload
