lib/benchmarks/workload.ml: Array Dfd_dag Format List
