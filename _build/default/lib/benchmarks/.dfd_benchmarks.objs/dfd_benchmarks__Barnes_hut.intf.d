lib/benchmarks/barnes_hut.mli: Dfd_dag Workload
