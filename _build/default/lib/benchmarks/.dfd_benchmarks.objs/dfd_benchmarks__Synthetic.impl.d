lib/benchmarks/synthetic.ml: Dfd_dag Dfd_structures Printf Workload
