lib/benchmarks/dense_mm.ml: Array Dfd_dag List Printf Workload
