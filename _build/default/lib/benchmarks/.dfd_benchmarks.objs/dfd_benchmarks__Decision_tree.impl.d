lib/benchmarks/decision_tree.ml: Dfd_dag Dfd_structures Printf Workload
