lib/benchmarks/dense_mm.mli: Dfd_dag Workload
