lib/benchmarks/lower_bound.ml: Dfd_dag Printf Workload
