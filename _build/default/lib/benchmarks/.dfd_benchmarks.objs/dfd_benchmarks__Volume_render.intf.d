lib/benchmarks/volume_render.mli: Dfd_dag Workload
