lib/benchmarks/barnes_hut.ml: Array Dfd_dag Dfd_structures List Printf Workload
