lib/benchmarks/fmm.mli: Dfd_dag Workload
