lib/benchmarks/pipeline.ml: Dfd_dag Printf Workload
