lib/benchmarks/fmm.ml: Array Dfd_dag List Printf Workload
