lib/benchmarks/sparse_mvm.mli: Dfd_dag Workload
