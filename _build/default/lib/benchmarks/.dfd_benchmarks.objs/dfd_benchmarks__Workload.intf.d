lib/benchmarks/workload.mli: Dfd_dag Format
