module Prog = Dfd_dag.Prog
open Prog

(* Stage s communicates with stage s+1 through condition variable s+1 and
   its guard mutex s+1; each stage owns a scratch buffer it touches while
   processing. *)

let prog ~stages ~items ~work_per_item () =
  if stages < 2 then invalid_arg "Pipeline.prog: need at least 2 stages";
  let buffer s = s * 64 in
  let produce_item =
    work work_per_item >> critical 1 (work 1) >> signal 1
  in
  let stage_pass s =
    lock s
    >> wait ~cv:s ~mutex:s
    >> unlock s
    >> touch [| buffer s; buffer s + 8 |]
    >> work work_per_item
    >> (if s = stages - 1 then nothing else critical (s + 1) (work 1) >> signal (s + 1))
  in
  let stage_thread s =
    if s = 0 then repeat items produce_item
    else repeat items (stage_pass s)
  in
  finish (par_iter ~lo:0 ~hi:stages stage_thread)

let bench ?(stages = 8) ?(items = 64) grain =
  let work_per_item = match grain with Workload.Medium -> 20 | Workload.Fine -> 5 in
  Workload.make ~name:"Pipeline"
    ~description:
      (Printf.sprintf "condvar pipeline: %d stages, %d items, %d work/item" stages items
         work_per_item)
    ~grain
    ~prog:(prog ~stages ~items ~work_per_item)
