module Prog = Dfd_dag.Prog
open Prog

(* Subgraph G: a spine of d forks; the j-th forked thread allocates A,
   works long enough to stay live until the join bounce returns to it, and
   frees.  Serially the threads run one at a time (child-first), so the
   1DF schedule holds only one A allocation live. *)
let subgraph_g ~d ~a_bytes =
  let rec spine j =
    if j > d then nothing
    else
      par
        (alloc a_bytes >> work (1 + (2 * (d - j))) >> free a_bytes)
        (work 1 >> spine (j + 1))
  in
  spine 1

(* Subgraph G0: a serial chain of comparable depth ending at node w. *)
let subgraph_g0 ~d = work ((2 * d) + 1)

let prog ~p ~d ~a_bytes () =
  if p < 2 then invalid_arg "Lower_bound.prog: p must be >= 2";
  let leaves = max 1 (p / 2) in
  let leaf i = if i = 0 then subgraph_g0 ~d else subgraph_g ~d ~a_bytes in
  finish (par_iter ~lo:0 ~hi:leaves leaf)

let expected_serial_space ~a_bytes = a_bytes

let bench ?(p = 8) ?(d = 64) ?(a_bytes = 1024) grain =
  Workload.make ~name:"LowerBound"
    ~description:
      (Printf.sprintf "Figure 10 adversarial dag: p=%d, d=%d, A=%dB" p d a_bytes)
    ~grain
    ~prog:(prog ~p ~d ~a_bytes)
