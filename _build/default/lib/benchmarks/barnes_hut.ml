module Prog = Dfd_dag.Prog
module Prng = Dfd_structures.Prng
open Prog

(* Layout: cell array (centroid + mass, 8 words per cell) at 0; bodies
   after it.  Cells are indexed heap-style over a fixed depth-4 octree
   (1 + 8 + 64 + 512 = 585 cells); mutex ids = cell indices. *)

let tree_depth = 4

let n_tree_cells =
  let rec go l acc pow = if l > tree_depth then acc else go (l + 1) (acc + pow) (8 * pow) in
  go 0 0 1

let prog ~bodies ~block ~tree_only () =
  let cell_words = 8 in
  let body_base = n_tree_cells * cell_words in
  let rng = Prng.create 77 in
  (* bodies are mostly Morton-ordered (consecutive bodies land in
     neighbouring leaf cells), but every 5th body is an unsorted straggler
     landing in a random remote leaf — its insertion contends with
     whichever processor owns that region, as in a partially-sorted real
     input *)
  let leaf_of_body =
    Array.init bodies (fun b ->
        if b mod 3 = 0 then Prng.int rng 4096
        else begin
          let base = b * 4096 / bodies in
          let j = Prng.int rng 33 - 16 in
          let l = base + j in
          if l < 0 then 0 else if l > 4095 then 4095 else l
        end)
  in
  let cell_addr c = c * cell_words in
  (* level starts in the heap-style index: 0, 1, 9, 73, 585 *)
  let leaf_start = 585 in
  (* path of cells from root to the leaf holding [l] (depth-4 octree) *)
  let path_of_leaf l = [ 0; 1 + (l / 512); 9 + (l / 64); 73 + (l / 8); leaf_start + l ] in
  let insert_body b =
    let l = leaf_of_body.(b) in
    let path = path_of_leaf l in
    (* read-only descent, then lock the leaf cell being modified; every 8th
       insertion splits a cell and must also lock its parent *)
    touch (Array.of_list (List.map cell_addr path))
    >> work 2
    >> critical (leaf_start + l) (touch [| cell_addr (leaf_start + l) |] >> work 3)
    (* cell splits and centre-of-mass updates lock shared upper cells for
       whole split operations — the contention Figure 17 measures; the
       eight level-1 cells are hot because every region funnels into them *)
    >> (if b mod 2 = 0 then critical (73 + (l / 8)) (work 8) else nothing)
    >> (if b mod 2 = 1 then critical (1 + (l / 512)) (work 10) else nothing)
    >> touch [| body_base + b |]
  in
  let alloc_leaf_if_new b =
    (* every ~8th insertion allocates a new cell record *)
    if b mod 8 = 0 then alloc (cell_words * 8) else nothing
  in
  let build_block blk =
    let lo = blk * block and hi = min bodies ((blk + 1) * block) in
    let rec go b =
      if b >= hi then nothing else alloc_leaf_if_new b >> insert_body b >> go (b + 1)
    in
    go lo
  in
  let nblocks = (bodies + block - 1) / block in
  let build = par_iter ~lo:0 ~hi:nblocks build_block in
  if tree_only then finish build
  else begin
    let force_body b =
      let l = leaf_of_body.(b) in
      (* traverse: the approximated top of the tree, the level-3 cells of
         the body's neighbourhood, and the leaves of its own region; the
         opening test revisits each cell (repeat 2) *)
      let top = List.init 9 cell_addr in
      let mid = List.init 8 (fun i -> cell_addr (73 + ((l / 64 * 8) + i))) in
      let local = List.init 16 (fun i -> cell_addr (leaf_start + ((l / 16 * 16) + i))) in
      let once = Array.of_list (top @ mid @ local) in
      touch (Array.concat [ once; once ])
      >> work 16
      >> touch [| body_base + b |]
    in
    let force_block blk =
      let lo = blk * block and hi = min bodies ((blk + 1) * block) in
      let rec go b = if b >= hi then nothing else force_body b >> go (b + 1) in
      go lo
    in
    let forces = par_iter ~lo:0 ~hi:nblocks force_block in
    finish (build >> forces)
  end

let bench ?(bodies = 4096) grain =
  let block = match grain with Workload.Medium -> 64 | Workload.Fine -> 16 in
  Workload.make ~name:"BarnesHut"
    ~description:
      (Printf.sprintf "Barnes-Hut, %d bodies, depth-%d octree, %d-body blocks" bodies tree_depth
         block)
    ~grain
    ~prog:(prog ~bodies ~block ~tree_only:false)

let treebuild ?(bodies = 4096) grain =
  let block = match grain with Workload.Medium -> 64 | Workload.Fine -> 16 in
  Workload.make ~name:"BH-TreeBuild"
    ~description:
      (Printf.sprintf "Barnes-Hut lock-based tree build alone, %d bodies (Figure 17)" bodies)
    ~grain
    ~prog:(prog ~bodies ~block ~tree_only:true)
