(** Sparse matrix-vector multiply y = A*x (the paper's Spark98-derived
    benchmark; low heap usage, locality driven by the column indices each
    row block touches).

    The matrix is a fixed pseudo-random pattern: [rows] rows, ~[nnz_per_row]
    nonzeros per row with column indices clustered around the diagonal
    (banded, as in finite-element matrices), so neighbouring rows share
    cache lines of x.  The rows are processed by a binary fork tree over
    row blocks; block size sets the thread granularity. *)

val bench : ?rows:int -> ?nnz_per_row:int -> Workload.grain -> Workload.t

val prog : rows:int -> nnz_per_row:int -> block:int -> seed:int -> unit -> Dfd_dag.Prog.t
