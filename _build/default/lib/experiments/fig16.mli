(** Figure 16: the Section 6 simulator experiment — the synthetic
    divide-and-conquer benchmark (15 levels, geometrically decreasing
    memory and granularity) on 64 processors under the pure cost model;
    scheduling granularity (as % of total work) and memory versus the
    memory threshold K, for WS, ADF and DFD.

    Reproduction target: WS is flat (it ignores K) with the largest
    granularity and memory; ADF is flat with the smallest of both; DFD
    sweeps between the two as K grows. *)

type point = {
  k : int;
  dfd_gran_pct : float;  (** scheduling granularity as % of total work *)
  dfd_mem : int;
  adf_gran_pct : float;
  adf_mem : int;
  ws_gran_pct : float;
  ws_mem : int;
}

val sweep : ?p:int -> ?ks:int list -> unit -> point list

val table : unit -> Exp_common.table

val families_table : unit -> Exp_common.table
(** The thesis's other synthetic families (flat, inverted, skewed): the
    same K sweep shows the same qualitative picture on every shape
    (footnote 17 of the paper defers these to [33]). *)
