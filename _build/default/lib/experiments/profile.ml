module Engine = Dfdeques_core.Engine
module Config = Dfd_machine.Config
module W = Dfd_benchmarks.Workload

type profile = { sched : string; total_time : int; samples : (int * int) list }

let run_one ~p sched k (b : W.t) =
  (* Two passes: the first learns T so the second can sample at ~10 evenly
     spaced points (the engine is deterministic per seed). *)
  let cfg = Config.costed ~p ~mem_threshold:k () in
  let t = (Engine.run ~sched cfg (b.W.prog ())).Engine.time in
  let every = max 1 (t / 10) in
  let acc = ref [] in
  let r =
    Engine.run ~sched
      ~sampler:(every, fun ~now ~heap ~threads:_ ~deques:_ -> acc := (now, heap) :: !acc)
      cfg (b.W.prog ())
  in
  { sched = Engine.sched_name sched; total_time = r.Engine.time; samples = List.rev !acc }

let measure ?(p = 8) () =
  let b = Dfd_benchmarks.Dense_mm.bench ~n:256 W.Fine in
  [
    run_one ~p `Adf Exp_common.k50 b;
    run_one ~p `Dfdeques Exp_common.k50 b;
    run_one ~p `Ws None b;
  ]

let table () =
  let profiles = measure () in
  let deciles = List.init 10 (fun i -> i) in
  let rows =
    List.map
      (fun pr ->
         let cells =
           List.map
             (fun i ->
                match List.nth_opt pr.samples i with
                | Some (_, heap) -> Dfd_structures.Stats.fmt_bytes heap
                | None -> "-")
             deciles
         in
         (pr.sched ^ Printf.sprintf " (T=%d)" pr.total_time) :: cells)
      profiles
  in
  {
    Exp_common.title = "Live heap through the execution (dense MM fine, p=8; 10 deciles)";
    paper_ref = "thesis-style memory profile (time-resolved Figures 13/14)";
    header = "sched" :: List.map (fun i -> Printf.sprintf "%d%%" (10 * (i + 1))) deciles;
    rows;
    notes =
      [
        "WS's profile rises above ADF/DFD early and stays there (p expanded";
        "subtrees at once); DFD(K=50k) tracks ADF with a bounded overshoot.";
      ];
  }
