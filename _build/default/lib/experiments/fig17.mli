(** Figure 17: speedups for the lock-heavy tree-building phase of
    Barnes-Hut.  The Pthreads-based schedulers (FIFO, ADF, DFD) use
    blocking locks; the Cilk stand-in (WS) uses spin-waiting locks.

    Reproduction target: DFD with blocking locks performs about like ADF
    (frequent suspension kills its scheduling granularity) and better than
    the spin-waiting work stealer; FIFO trails. *)

val measure : unit -> (string * float) list
(** scheduler name, 8-processor speedup. *)

val table : unit -> Exp_common.table
