module Workload = Dfd_benchmarks.Workload

type exp = {
  id : string;
  summary : string;
  tables : unit -> Exp_common.table list;
}

let all =
  [
    {
      id = "table1";
      summary = "Figures 1 & 11: max threads, L2 miss rate, 8-proc speedup (both granularities)";
      tables =
        (fun () -> [ Table1.table Workload.Medium; Table1.table Workload.Fine ]);
    };
    {
      id = "fig12";
      summary = "Figure 12: 8-processor speedups, medium and fine granularity";
      tables = (fun () -> [ Fig12.table () ]);
    };
    {
      id = "fig13";
      summary = "Figure 13: dense MM memory vs number of processors (ADF/DFD/Cilk)";
      tables = (fun () -> [ Fig13.table () ]);
    };
    {
      id = "fig14";
      summary = "Figure 14: heap watermark, allocating benchmarks x 4 schedulers";
      tables =
        (fun () -> [ Fig14.table Workload.Medium; Fig14.table Workload.Fine ]);
    };
    {
      id = "fig15";
      summary = "Figure 15: time/memory/granularity trade-off vs memory threshold K";
      tables = (fun () -> [ Fig15.table () ]);
    };
    {
      id = "fig16";
      summary = "Figure 16: Section 6 simulation, granularity & memory vs K (WS/ADF/DFD, p=64)";
      tables = (fun () -> [ Fig16.table (); Fig16.families_table () ]);
    };
    {
      id = "fig17";
      summary = "Figure 17: Barnes-Hut tree-build with locks (blocking vs spinning)";
      tables = (fun () -> [ Fig17.table () ]);
    };
    {
      id = "thm44";
      summary = "Theorem 4.4: space upper bound, measured vs S1 + min(K,S1)*p*D";
      tables = (fun () -> [ Thm_space.upper_table Workload.Fine ]);
    };
    {
      id = "thm45";
      summary = "Theorem 4.5: space lower bound on the Figure 10 adversarial dag";
      tables = (fun () -> [ Thm_space.lower_table () ]);
    };
    {
      id = "ablation";
      summary = "Ablation: steal position (bottom vs top) and victim scope (leftmost-p vs all)";
      tables = (fun () -> [ Ablation.table () ]);
    };
    {
      id = "profile";
      summary = "Thesis-style memory profile over time (ADF vs DFD vs WS on dense MM)";
      tables = (fun () -> [ Profile.table () ]);
    };
    {
      id = "variance";
      summary = "Expected-case concentration of space/time over 25 seeds";
      tables = (fun () -> [ Variance.table () ]);
    };
    {
      id = "thm48";
      summary = "Theorem 4.8: time bound, measured vs W/p + Sa/pK + D";
      tables = (fun () -> [ Thm_time.table Workload.Fine ]);
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids = List.map (fun e -> e.id) all

let run_one id =
  match find id with
  | None -> raise Not_found
  | Some e -> String.concat "\n" (List.map Exp_common.render (e.tables ()))

let run_all () =
  String.concat "\n"
    (List.map (fun e -> String.concat "\n" (List.map Exp_common.render (e.tables ()))) all)
