module Engine = Dfdeques_core.Engine
module Analysis = Dfd_dag.Analysis
module Workload = Dfd_benchmarks.Workload

let table grain =
  let k = 50_000 in
  let p = 8 in
  let rows =
    List.map
      (fun b ->
         let s = Analysis.analyze (b.Workload.prog ()) in
         let r = Exp_common.run_analysis ~p ~k:(Some k) ~sched:`Dfdeques b in
         let lower = max ((s.Analysis.timed_work + p - 1) / p) s.Analysis.depth in
         let bound =
           (s.Analysis.timed_work / p) + (s.Analysis.total_alloc / (p * k)) + s.Analysis.depth
         in
         [
           b.Workload.name;
           string_of_int s.Analysis.timed_work;
           string_of_int s.Analysis.depth;
           string_of_int lower;
           string_of_int r.Engine.time;
           string_of_int bound;
           Printf.sprintf "%.2f" (float_of_int r.Engine.time /. float_of_int bound);
         ])
      (Dfd_benchmarks.Registry.table_benchmarks grain)
  in
  {
    Exp_common.title =
      Format.asprintf "Theorem 4.8 check: DFDeques time vs W/p + Sa/pK + D (p=%d, %a grain)" p
        Workload.pp_grain grain;
    paper_ref = "Theorem 4.8";
    header = [ "Benchmark"; "W'"; "D"; "lower"; "measured T"; "bound(c=1)"; "T/bound" ];
    rows;
    notes =
      [
        "lower = max(ceil(W'/p), D) <= measured must hold exactly;";
        "measured/bound must stay a small constant (the theorem's hidden constant).";
      ];
  }
