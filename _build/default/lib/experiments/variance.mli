(** Expected-case behaviour over many seeds.

    Theorems 4.4 and 4.8 are {e expected-case} bounds (over the scheduler's
    random victim choices).  This experiment runs DFDeques(K) on the
    Section 6 synthetic benchmark across many seeds and reports the
    mean/max of space and time against the c=1 bounds — the max staying
    bounded demonstrates the concentration the paper's Chernoff arguments
    predict (Lemmas 4.2, 4.7). *)

type summary = {
  runs : int;
  space_mean : float;
  space_max : int;
  space_bound : int;  (** S1 + min(K,S1)*p*D, c = 1. *)
  time_mean : float;
  time_max : int;
  time_bound : int;  (** W'/p + Sa/pK + D, c = 1. *)
}

val measure : ?runs:int -> ?p:int -> ?k:int -> unit -> summary

val table : unit -> Exp_common.table
