(** Figure 14: high watermark of heap allocation on 8 processors for the
    three benchmarks with significant heap usage (dense MM, FMM, decision
    tree), under FIFO, ADF, DFD and DFD-inf (DFDeques with an infinite
    memory threshold, the paper's work-stealing stand-in), at both thread
    granularities.

    Reproduction target: DFD needs slightly more memory than ADF, but less
    than DFD-inf; FIFO needs the most (or is far above the space-efficient
    schedulers). *)

val benches : Dfd_benchmarks.Workload.grain -> Dfd_benchmarks.Workload.t list

val measure :
  Dfd_benchmarks.Workload.grain -> (string * int * int * int * int) list
(** benchmark, FIFO, ADF, DFD, DFD-inf heap watermarks (bytes). *)

val table : Dfd_benchmarks.Workload.grain -> Exp_common.table
