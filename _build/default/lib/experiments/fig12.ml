module Workload = Dfd_benchmarks.Workload

let speedups grain =
  List.map
    (fun b ->
       let s sched = Exp_common.speedup ~sched b in
       (b.Workload.name, s `Fifo, s `Adf, s `Dfdeques))
    (Dfd_benchmarks.Registry.table_benchmarks grain)

let table () =
  let med = speedups Workload.Medium in
  let fine = speedups Workload.Fine in
  let rows =
    List.map2
      (fun (name, mf, ma, md) (_, ff, fa, fd) ->
         [
           name; Exp_common.fmt2 mf; Exp_common.fmt2 ma; Exp_common.fmt2 md;
           Exp_common.fmt2 ff; Exp_common.fmt2 fa; Exp_common.fmt2 fd;
         ])
      med fine
  in
  {
    Exp_common.title = "8-processor speedups, medium and fine thread granularity";
    paper_ref = "Figure 12";
    header =
      [
        "Benchmark"; "med:FIFO"; "med:ADF"; "med:DFD"; "fine:FIFO"; "fine:ADF"; "fine:DFD";
      ];
    rows;
    notes =
      [
        "speedup = T(DFDeques,p=1) / T(sched,p=8) under the costed model;";
        "target shape: DFD >= ADF >= FIFO, with DFD's margin widening at fine grain.";
      ];
  }
