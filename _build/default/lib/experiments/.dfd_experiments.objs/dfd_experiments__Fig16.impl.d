lib/experiments/fig16.ml: Dfd_benchmarks Dfd_structures Dfdeques_core Exp_common List Printf
