lib/experiments/fig12.mli: Dfd_benchmarks Exp_common
