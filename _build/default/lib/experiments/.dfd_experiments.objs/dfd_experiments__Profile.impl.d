lib/experiments/profile.ml: Dfd_benchmarks Dfd_machine Dfd_structures Dfdeques_core Exp_common List Printf
