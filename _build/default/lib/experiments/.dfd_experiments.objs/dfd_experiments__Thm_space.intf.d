lib/experiments/thm_space.mli: Dfd_benchmarks Exp_common
