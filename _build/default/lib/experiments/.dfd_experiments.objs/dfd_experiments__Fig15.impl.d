lib/experiments/fig15.ml: Dfd_benchmarks Dfd_structures Dfdeques_core Exp_common List
