lib/experiments/variance.mli: Exp_common
