lib/experiments/fig16.mli: Exp_common
