lib/experiments/exp_common.mli: Dfd_benchmarks Dfdeques_core
