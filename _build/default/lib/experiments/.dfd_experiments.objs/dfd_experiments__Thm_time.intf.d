lib/experiments/thm_time.mli: Dfd_benchmarks Exp_common
