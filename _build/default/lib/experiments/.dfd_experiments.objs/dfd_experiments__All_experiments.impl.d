lib/experiments/all_experiments.ml: Ablation Dfd_benchmarks Exp_common Fig12 Fig13 Fig14 Fig15 Fig16 Fig17 List Profile String Table1 Thm_space Thm_time Variance
