lib/experiments/fig14.mli: Dfd_benchmarks Exp_common
