lib/experiments/fig17.ml: Dfd_benchmarks Exp_common List
