lib/experiments/all_experiments.mli: Exp_common
