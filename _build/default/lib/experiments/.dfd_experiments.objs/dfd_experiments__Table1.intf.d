lib/experiments/table1.mli: Dfd_benchmarks Exp_common
