lib/experiments/profile.mli: Exp_common
