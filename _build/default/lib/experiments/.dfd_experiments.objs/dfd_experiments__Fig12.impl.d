lib/experiments/fig12.ml: Dfd_benchmarks Exp_common List
