lib/experiments/fig15.mli: Exp_common
