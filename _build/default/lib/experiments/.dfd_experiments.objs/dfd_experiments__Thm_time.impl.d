lib/experiments/thm_time.ml: Dfd_benchmarks Dfd_dag Dfdeques_core Exp_common Format List Printf
