lib/experiments/fig13.ml: Dfd_benchmarks Dfd_structures Dfdeques_core Exp_common List
