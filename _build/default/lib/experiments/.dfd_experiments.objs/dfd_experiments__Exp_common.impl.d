lib/experiments/exp_common.ml: Buffer Dfd_benchmarks Dfd_machine Dfd_structures Dfdeques_core Format Hashtbl List Printf
