lib/experiments/fig17.mli: Exp_common
