lib/experiments/fig14.ml: Dfd_benchmarks Dfd_structures Dfdeques_core Exp_common Format List
