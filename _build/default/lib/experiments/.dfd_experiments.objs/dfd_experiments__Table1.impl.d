lib/experiments/table1.ml: Array Dfd_benchmarks Dfdeques_core Exp_common Format List Printf
