lib/experiments/thm_space.ml: Dfd_benchmarks Dfd_dag Dfd_machine Dfd_structures Dfdeques_core Exp_common Format List Printf
