lib/experiments/variance.ml: Dfd_benchmarks Dfd_dag Dfd_structures Dfdeques_core Exp_common Printf
