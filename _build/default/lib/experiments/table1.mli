(** Figures 1 and 11: the summary table — for each benchmark and scheduler
    (FIFO, ADF, DFD), the maximum number of simultaneously live threads,
    the simulated L2 miss rate, and the 8-processor speedup; at a chosen
    thread granularity, with K = 50,000.

    The paper's measured values (fine granularity, Figure 1) are printed
    alongside ours: absolute numbers differ (their machine, our simulator)
    but the orderings — FIFO holds 10-100x more threads, DFD has the lowest
    miss rate, speedups rank DFD > ADF > FIFO — are the reproduction
    target. *)

type row = {
  bench : string;
  max_threads : int array;  (** FIFO, ADF, DFD *)
  miss_rate : float array;
  speedup : float array;
}

val measure : Dfd_benchmarks.Workload.grain -> row list

val table : Dfd_benchmarks.Workload.grain -> Exp_common.table

val paper_fine : (string * int array * float array * float array) list
(** Figure 1's published numbers (max threads, miss %, speedup). *)
