module Engine = Dfdeques_core.Engine
module Config = Dfd_machine.Config
module Workload = Dfd_benchmarks.Workload

type table = {
  title : string;
  paper_ref : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let render t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "== %s ==\n(reproduces %s)\n\n" t.title t.paper_ref);
  Buffer.add_string buf (Dfd_structures.Stats.Table.render ~header:t.header ~rows:t.rows);
  if t.notes <> [] then begin
    Buffer.add_char buf '\n';
    List.iter (fun n -> Buffer.add_string buf ("note: " ^ n ^ "\n")) t.notes
  end;
  Buffer.contents buf

let k50 = Some 50_000

let run_costed ?(p = 8) ?(k = k50) ?(seed = 42) ?(spin_locks = false) ~sched
    (b : Workload.t) =
  let cfg = Config.costed ~p ~mem_threshold:k ~seed () in
  Engine.run ~sched ~spin_locks cfg (b.Workload.prog ())

let run_analysis ?(p = 8) ?(k = k50) ?(seed = 42) ~sched (b : Workload.t) =
  let cfg = Config.analysis ~p ~mem_threshold:k ~seed () in
  Engine.run ~sched cfg (b.Workload.prog ())

let serial_cache : (string, int) Hashtbl.t = Hashtbl.create 16

let serial_time ?(seed = 42) (b : Workload.t) =
  let key = Format.asprintf "%s/%a/%d" b.Workload.name Workload.pp_grain b.Workload.grain seed in
  match Hashtbl.find_opt serial_cache key with
  | Some t -> t
  | None ->
    let r = run_costed ~p:1 ~seed ~sched:`Dfdeques b in
    Hashtbl.add serial_cache key r.Engine.time;
    r.Engine.time

let speedup ?(p = 8) ?(k = k50) ~sched ?(spin_locks = false) (b : Workload.t) =
  let t1 = serial_time b in
  let rp = run_costed ~p ~k ~sched ~spin_locks b in
  float_of_int t1 /. float_of_int rp.Engine.time

let fmt2 x = Printf.sprintf "%.2f" x
