module Engine = Dfdeques_core.Engine
module Dfdeques = Dfdeques_core.Dfdeques
module W = Dfd_benchmarks.Workload

let variants =
  [
    ("paper (bottom, leftmost-p)", `Dfdeques);
    ( "steal from top",
      `Dfdeques_variant { Dfdeques.steal_from_top = true; victim_anywhere = false } );
    ( "victim anywhere in R",
      `Dfdeques_variant { Dfdeques.steal_from_top = false; victim_anywhere = true } );
    ( "both ablated",
      `Dfdeques_variant { Dfdeques.steal_from_top = true; victim_anywhere = true } );
  ]

let table () =
  let benches =
    [
      Dfd_benchmarks.Synthetic.bench W.Fine;
      Dfd_benchmarks.Dense_mm.bench ~n:128 W.Fine;
    ]
  in
  let rows =
    List.concat_map
      (fun (b : W.t) ->
         List.map
           (fun (label, sched) ->
              let r = Exp_common.run_analysis ~p:16 ~k:(Some 2_048) ~sched b in
              [
                b.W.name;
                label;
                string_of_int r.Engine.time;
                Dfd_structures.Stats.fmt_bytes r.Engine.heap_peak;
                Exp_common.fmt2 r.Engine.sched_granularity;
                string_of_int r.Engine.steals;
              ])
           variants)
      benches
  in
  {
    Exp_common.title = "Ablation of DFDeques' steal position and victim scope (p=16, K=2048)";
    paper_ref = "Section 3.3 design rationale (DESIGN.md ablation index)";
    header = [ "Benchmark"; "variant"; "time"; "memory"; "granularity"; "steals" ];
    rows;
    notes =
      [
        "expected: top-stealing collapses scheduling granularity;";
        "anywhere-victims cost memory and/or steals versus the paper's leftmost-p rule.";
      ];
  }
