module Engine = Dfdeques_core.Engine
module Workload = Dfd_benchmarks.Workload

let measure ?(max_p = 8) () =
  let b = Dfd_benchmarks.Dense_mm.bench ~n:256 Workload.Fine in
  List.init max_p (fun i ->
      let p = i + 1 in
      let heap sched k =
        (Exp_common.run_costed ~p ~k ~sched b).Engine.heap_peak
      in
      ( p,
        heap `Adf Exp_common.k50,
        heap `Dfdeques Exp_common.k50,
        heap `Ws None ))

let table () =
  let rows =
    List.map
      (fun (p, adf, dfd, ws) ->
         [
           string_of_int p;
           Dfd_structures.Stats.fmt_bytes adf;
           Dfd_structures.Stats.fmt_bytes dfd;
           Dfd_structures.Stats.fmt_bytes ws;
         ])
      (measure ())
  in
  {
    Exp_common.title = "Dense MM (fine grain): heap watermark vs processors";
    paper_ref = "Figure 13";
    header = [ "p"; "ADF"; "DFD"; "Cilk(WS)" ];
    rows;
    notes =
      [
        "target shape: WS grows fastest with p; ADF slowest; DFD in between,";
        "growing slowly like ADF (the paper's Figure 13).";
      ];
  }
