module Engine = Dfdeques_core.Engine
module Workload = Dfd_benchmarks.Workload

type point = { k : int; time : int; memory : int; granularity : float }

let default_ks = [ 100; 316; 1_000; 3_160; 10_000; 31_600; 100_000; 316_000; 1_000_000 ]

let sweep ?(ks = default_ks) () =
  let b = Dfd_benchmarks.Dense_mm.bench ~n:256 Workload.Fine in
  List.map
    (fun k ->
       let r = Exp_common.run_costed ~k:(Some k) ~sched:`Dfdeques b in
       {
         k;
         time = r.Engine.time;
         memory = r.Engine.heap_peak;
         granularity = r.Engine.local_steal_ratio;
       })
    ks

let table () =
  let rows =
    List.map
      (fun pt ->
         [
           string_of_int pt.k;
           string_of_int pt.time;
           Dfd_structures.Stats.fmt_bytes pt.memory;
           Exp_common.fmt2 pt.granularity;
         ])
      (sweep ())
  in
  {
    Exp_common.title =
      "DFDeques(K) trade-off on dense MM (fine, p=8): time, memory, granularity vs K";
    paper_ref = "Figure 15";
    header = [ "K (bytes)"; "time (steps)"; "memory"; "granularity" ];
    rows;
    notes =
      [
        "granularity = own-deque dispatches per steal (the paper's Section 5.3 metric);";
        "target shape: time falls, memory and granularity rise as K grows.";
      ];
  }
