(** Figure 15: the space / time / scheduling-granularity trade-off of
    DFDeques(K) as the memory threshold K varies — dense matrix multiply at
    fine granularity on 8 processors.

    Reproduction target: as K grows, running time falls and both memory and
    scheduling granularity rise (all three monotone-ish, saturating at the
    work-stealing behaviour for large K). *)

type point = {
  k : int;
  time : int;
  memory : int;  (** heap watermark, bytes *)
  granularity : float;  (** local dispatches per steal, Section 5.3 *)
}

val sweep : ?ks:int list -> unit -> point list

val table : unit -> Exp_common.table
