module Engine = Dfdeques_core.Engine
module Workload = Dfd_benchmarks.Workload

let benches grain =
  [
    Dfd_benchmarks.Dense_mm.bench ~n:256 grain;
    Dfd_benchmarks.Fmm.bench grain;
    Dfd_benchmarks.Decision_tree.bench grain;
  ]

(* High watermarks are schedule-dependent; average over a few seeds so the
   DFD vs DFD-inf comparison is not a single-schedule artifact. *)
let seeds = [ 42; 43; 44 ]

let measure grain =
  List.map
    (fun b ->
       let heap sched k =
         let total =
           List.fold_left
             (fun acc seed -> acc + (Exp_common.run_costed ~seed ~sched ~k b).Engine.heap_peak)
             0 seeds
         in
         total / List.length seeds
       in
       ( b.Workload.name,
         heap `Fifo Exp_common.k50,
         heap `Adf Exp_common.k50,
         heap `Dfdeques Exp_common.k50,
         heap `Dfdeques None ))
    (benches grain)

let table grain =
  let rows =
    List.map
      (fun (name, fifo, adf, dfd, dfdinf) ->
         let f = Dfd_structures.Stats.fmt_bytes in
         [ name; f fifo; f adf; f dfd; f dfdinf ])
      (measure grain)
  in
  {
    Exp_common.title =
      Format.asprintf "Heap high watermark on 8 processors, %a granularity" Workload.pp_grain
        grain;
    paper_ref = "Figure 14";
    header = [ "Benchmark"; "FIFO"; "ADF"; "DFD"; "DFD-inf" ];
    rows;
    notes =
      [
        "heap watermarks averaged over 3 seeds;";
        "target shape: ADF <= DFD <= DFD-inf, and FIFO the largest (or near-largest).";
      ];
  }
