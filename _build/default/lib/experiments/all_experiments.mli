(** The experiment registry: every table and figure of the paper's
    evaluation, addressable by id (used by the [repro] CLI and the
    EXPERIMENTS.md generator). *)

type exp = {
  id : string;
  summary : string;
  tables : unit -> Exp_common.table list;
}

val all : exp list

val find : string -> exp option

val ids : string list

val run_one : string -> string
(** Render one experiment's tables; raises [Not_found] for unknown ids. *)

val run_all : unit -> string
(** Render every experiment (the EXPERIMENTS.md payload). *)
