(** Theorems 4.4 and 4.5: the space bounds, measured.

    {b Upper bound (Thm 4.4)}: for every benchmark, the DFDeques(K) heap
    watermark on p processors is compared against
    [S1 + min(K,S1) * p * D] (the bound with its constant set to 1 — the
    measured value typically sits far below it, and must never exceed a
    small multiple).

    {b Lower bound (Thm 4.5)}: on the Figure 10 adversarial dag the
    measured space must {e grow} like [A * p * d]: we report measured /
    (A*p*d) ratios across p, which should stay roughly constant and far
    above S1/(A*p*d). *)

val upper_table : Dfd_benchmarks.Workload.grain -> Exp_common.table

val lower_table : unit -> Exp_common.table

val lower_measure : ?d:int -> ?a_bytes:int -> p:int -> unit -> int * int
(** (measured DFDeques(K=a_bytes) heap peak, S1) on the adversarial dag. *)
