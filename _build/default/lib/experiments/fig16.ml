module Engine = Dfdeques_core.Engine
module Workload = Dfd_benchmarks.Workload

type point = {
  k : int;
  dfd_gran_pct : float;
  dfd_mem : int;
  adf_gran_pct : float;
  adf_mem : int;
  ws_gran_pct : float;
  ws_mem : int;
}

let default_ks = [ 256; 1_024; 4_096; 16_384; 65_536; 160_000 ]

let sweep ?(p = 64) ?(ks = default_ks) () =
  let b = Dfd_benchmarks.Synthetic.bench Workload.Fine in
  let run sched k = Exp_common.run_analysis ~p ~k ~sched b in
  (* WS ignores K: measure once. *)
  let ws = run `Ws None in
  let total_work = float_of_int ws.Engine.work in
  let gran (r : Engine.result) = 100.0 *. r.Engine.sched_granularity /. total_work in
  List.map
    (fun k ->
       let dfd = run `Dfdeques (Some k) in
       let adf = run `Adf (Some k) in
       {
         k;
         dfd_gran_pct = gran dfd;
         dfd_mem = dfd.Engine.heap_peak;
         adf_gran_pct = gran adf;
         adf_mem = adf.Engine.heap_peak;
         ws_gran_pct = gran ws;
         ws_mem = ws.Engine.heap_peak;
       })
    ks

let table () =
  let pts = sweep () in
  let rows =
    List.map
      (fun pt ->
         [
           string_of_int pt.k;
           Printf.sprintf "%.4f" pt.ws_gran_pct;
           Printf.sprintf "%.4f" pt.dfd_gran_pct;
           Printf.sprintf "%.4f" pt.adf_gran_pct;
           Dfd_structures.Stats.fmt_bytes pt.ws_mem;
           Dfd_structures.Stats.fmt_bytes pt.dfd_mem;
           Dfd_structures.Stats.fmt_bytes pt.adf_mem;
         ])
      pts
  in
  {
    Exp_common.title =
      "Section 6 simulation (synthetic d&c, 15 levels, p=64): granularity & memory vs K";
    paper_ref = "Figure 16";
    header =
      [
        "K (bytes)"; "gran%:WS"; "gran%:DFD"; "gran%:ADF"; "mem:WS"; "mem:DFD"; "mem:ADF";
      ];
    rows;
    notes =
      [
        "scheduling granularity = average actions between steals/dispatches, as % of total work;";
        "target shape: WS flat & largest on both axes, ADF flat & smallest,";
        "DFD sweeps from ADF-like to WS-like as K grows.";
      ];
  }

(* The thesis's other synthetic families (footnote 17): the same K sweep
   must show the same qualitative picture on every family. *)
let families_table () =
  let families =
    [
      Dfd_benchmarks.Synthetic.Geometric;
      Dfd_benchmarks.Synthetic.Flat;
      Dfd_benchmarks.Synthetic.Inverted;
      Dfd_benchmarks.Synthetic.Skewed;
    ]
  in
  let p = 64 in
  let rows =
    List.concat_map
      (fun family ->
         let b = Dfd_benchmarks.Synthetic.family_bench family Workload.Fine in
         let run sched k = Exp_common.run_analysis ~p ~k ~sched b in
         let ws = run `Ws None in
         let lo = run `Dfdeques (Some 512) in
         let hi = run `Dfdeques (Some 65536) in
         let adf = run `Adf (Some 512) in
         [
           [
             b.Workload.name;
             Exp_common.fmt2 adf.Engine.sched_granularity;
             Exp_common.fmt2 lo.Engine.sched_granularity;
             Exp_common.fmt2 hi.Engine.sched_granularity;
             Exp_common.fmt2 ws.Engine.sched_granularity;
             Dfd_structures.Stats.fmt_bytes lo.Engine.heap_peak;
             Dfd_structures.Stats.fmt_bytes hi.Engine.heap_peak;
             Dfd_structures.Stats.fmt_bytes ws.Engine.heap_peak;
           ];
         ])
      families
  in
  {
    Exp_common.title = "Section 6 families: DFD granularity sweeps toward WS on every shape (p=64)";
    paper_ref = "Section 6 / footnote 17 (other synthetic benchmarks, thesis [33])";
    header =
      [
        "family"; "gran:ADF"; "gran:DFD(512)"; "gran:DFD(64k)"; "gran:WS"; "mem:DFD(512)";
        "mem:DFD(64k)"; "mem:WS";
      ];
    rows;
    notes =
      [
        "granularity = average actions per steal/dispatch (absolute, not % of W);";
        "on the inverted family, K comparable to the leaf allocation size makes";
        "every leaf a big-allocation (dummy threads force steals that expand";
        "extra allocation-holding leaves), so DFD(64k) overshoots WS there —";
        "shrinking K to 512 restores the 2.4x space win, which is exactly the";
        "trade-off dial the paper advertises.";
      ];
  }
