(** Memory profile over time (a thesis-style plot, CMU-CS-99-119 ch. 5:
    the paper reports only high watermarks, the thesis also shows how live
    memory evolves during the execution).

    Samples the live heap at ten evenly spaced points of each scheduler's
    execution of dense matrix multiply: work stealing's profile rises far
    above the others and stays there (it expands p subtrees at once), the
    depth-first scheduler's stays lowest, DFDeques(K) tracks ADF with a
    bounded overshoot — the time-resolved view of Figures 13/14. *)

type profile = {
  sched : string;
  total_time : int;
  samples : (int * int) list;  (** (timestep, live heap bytes), ~10 points. *)
}

val measure : ?p:int -> unit -> profile list
(** ADF, DFD(50k) and WS on dense MM (fine grain, n=256). *)

val table : unit -> Exp_common.table
