(** Figure 13: memory requirement of dense matrix multiply (fine grain)
    versus the number of processors, for the depth-first scheduler ("ADF"),
    DFDeques ("DFD"), and the work-stealing scheduler standing in for Cilk.

    Reproduction target: Cilk/WS memory grows steeply (linearly) with p;
    ADF grows slowest; DFD sits between and, like ADF, grows slowly. *)

val measure : ?max_p:int -> unit -> (int * int * int * int) list
(** p, ADF bytes, DFD bytes, WS bytes (heap high watermark). *)

val table : unit -> Exp_common.table
