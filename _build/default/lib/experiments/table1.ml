module Engine = Dfdeques_core.Engine
module Workload = Dfd_benchmarks.Workload

type row = {
  bench : string;
  max_threads : int array;
  miss_rate : float array;
  speedup : float array;
}

let scheds : Engine.sched array = [| `Fifo; `Adf; `Dfdeques |]

let paper_fine =
  [
    ("VolRend", [| 436; 36; 37 |], [| 4.2; 3.0; 1.8 |], [| 5.39; 5.99; 6.96 |]);
    ("DenseMM", [| 3752; 55; 77 |], [| 24.0; 13.0; 8.7 |], [| 0.22; 3.78; 5.82 |]);
    ("SparseMVM", [| 173; 51; 49 |], [| 13.8; 13.7; 13.7 |], [| 3.59; 5.04; 6.29 |]);
    ("FFTW", [| 510; 30; 33 |], [| 14.6; 16.4; 14.4 |], [| 6.02; 5.96; 6.38 |]);
    ("FMM", [| 2030; 50; 54 |], [| 14.0; 2.1; 1.0 |], [| 1.64; 7.03; 7.47 |]);
    ("BarnesHut", [| 3570; 42; 120 |], [| 19.0; 3.9; 2.9 |], [| 0.64; 6.26; 6.97 |]);
    ("DecisionTree", [| 194; 138; 149 |], [| 5.8; 4.9; 4.6 |], [| 4.83; 4.85; 5.39 |]);
  ]

let measure grain =
  List.map
    (fun b ->
       let results = Array.map (fun sched -> Exp_common.run_costed ~sched b) scheds in
       let t1 = Exp_common.serial_time b in
       {
         bench = b.Workload.name;
         max_threads = Array.map (fun r -> r.Engine.threads_peak) results;
         miss_rate = Array.map (fun r -> r.Engine.cache_miss_rate) results;
         speedup =
           Array.map (fun r -> float_of_int t1 /. float_of_int r.Engine.time) results;
       })
    (Dfd_benchmarks.Registry.table_benchmarks grain)

let table grain =
  let rows = measure grain in
  let paper name =
    List.find_opt (fun (n, _, _, _) -> n = name) paper_fine
  in
  let fmt1 = Printf.sprintf "%.1f" in
  let body =
    List.concat_map
      (fun r ->
         let ours =
           r.bench :: "ours"
           :: (Array.to_list (Array.map string_of_int r.max_threads)
               @ Array.to_list (Array.map fmt1 r.miss_rate)
               @ Array.to_list (Array.map Exp_common.fmt2 r.speedup))
         in
         match (grain, paper r.bench) with
         | Workload.Fine, Some (_, mt, mr, sp) ->
           [
             ours;
             ""
             :: "paper"
             :: (Array.to_list (Array.map string_of_int mt)
                 @ Array.to_list (Array.map fmt1 mr)
                 @ Array.to_list (Array.map Exp_common.fmt2 sp));
           ]
         | _ -> [ ours ])
      rows
  in
  {
    Exp_common.title =
      Format.asprintf "Summary table, %a thread granularity, p=8, K=50000" Workload.pp_grain
        grain;
    paper_ref = "Figures 1 and 11 (SPAA'99 / CMU-CS-99-121)";
    header =
      [
        "Benchmark"; "src"; "thr:FIFO"; "thr:ADF"; "thr:DFD"; "miss:FIFO"; "miss:ADF";
        "miss:DFD"; "spd:FIFO"; "spd:ADF"; "spd:DFD";
      ];
    rows = body;
    notes =
      [
        "absolute values are simulator-scaled; the reproduction targets are the orderings:";
        "FIFO live threads >> ADF/DFD; miss rates FIFO >= ADF >= DFD; speedups DFD >= ADF >= FIFO.";
      ];
  }
