module Engine = Dfdeques_core.Engine
module Analysis = Dfd_dag.Analysis
module Workload = Dfd_benchmarks.Workload

let upper_table grain =
  let k = 50_000 in
  let p = 8 in
  let rows =
    List.filter_map
      (fun b ->
         let s = Analysis.analyze (b.Workload.prog ()) in
         if s.Analysis.serial_space = 0 then None
         else begin
           let r = Exp_common.run_analysis ~p ~k:(Some k) ~sched:`Dfdeques b in
           let bound =
             s.Analysis.serial_space
             + (min k s.Analysis.serial_space * p * s.Analysis.depth)
           in
           Some
             [
               b.Workload.name;
               Dfd_structures.Stats.fmt_bytes s.Analysis.serial_space;
               string_of_int s.Analysis.depth;
               Dfd_structures.Stats.fmt_bytes r.Engine.heap_peak;
               Dfd_structures.Stats.fmt_bytes bound;
               Printf.sprintf "%.4f" (float_of_int r.Engine.heap_peak /. float_of_int bound);
             ]
         end)
      (Dfd_benchmarks.Registry.table_benchmarks grain)
  in
  {
    Exp_common.title =
      Format.asprintf
        "Theorem 4.4 check: DFDeques space vs S1 + min(K,S1)*p*D (p=%d, K=%d, %a grain)" p k
        Workload.pp_grain grain;
    paper_ref = "Theorem 4.4";
    header = [ "Benchmark"; "S1"; "D"; "measured"; "bound(c=1)"; "measured/bound" ];
    rows;
    notes = [ "every ratio must be << 1; the bound is loose by design (c = 1)." ];
  }

let lower_measure ?(d = 64) ?(a_bytes = 1024) ~p () =
  let prog = Dfd_benchmarks.Lower_bound.prog ~p ~d ~a_bytes () in
  let s = Analysis.analyze prog in
  let cfg = Dfd_machine.Config.analysis ~p ~mem_threshold:(Some a_bytes) () in
  let r = Engine.run ~sched:`Dfdeques cfg prog in
  (r.Engine.heap_peak, s.Analysis.serial_space)

let lower_table () =
  let d = 64 and a_bytes = 1024 in
  let rows =
    List.map
      (fun p ->
         let measured, s1 = lower_measure ~d ~a_bytes ~p () in
         let apd = a_bytes * p / 2 in
         (* per-instant saturation: p/2 subgraphs x up to d live allocations *)
         [
           string_of_int p;
           Dfd_structures.Stats.fmt_bytes s1;
           Dfd_structures.Stats.fmt_bytes measured;
           Printf.sprintf "%.1f" (float_of_int measured /. float_of_int a_bytes);
           Printf.sprintf "%.2f" (float_of_int measured /. float_of_int apd);
         ])
      [ 2; 4; 8; 16; 32 ]
  in
  {
    Exp_common.title =
      Printf.sprintf
        "Theorem 4.5 check: adversarial dag (Figure 10), d=%d, A=%dB, K=A: space grows with p" d
        a_bytes;
    paper_ref = "Theorem 4.5 / Figure 10 / Corollary 4.6";
    header = [ "p"; "S1"; "measured"; "live A's"; "measured/(A*p/2)" ];
    rows;
    notes =
      [
        "S1 stays one allocation (A bytes) regardless of p, while the measured";
        "space grows with p — the Omega(min(K,S1)*p) per-instant blow-up of Thm 4.5;";
        "the last column staying >= ~1 shows the linear-in-p growth.";
      ];
  }
