(** Theorem 4.8: the time bound O(W/p + Sa/(pK) + D), measured.

    For every benchmark we report the DFDeques(K) execution time on p
    processors against the bound with constant 1; the ratio must stay
    small, and the greedy lower bound max(W'/p, D) must never be
    violated. *)

val table : Dfd_benchmarks.Workload.grain -> Exp_common.table
