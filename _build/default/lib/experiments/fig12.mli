(** Figure 12: 8-processor speedups for the seven benchmarks under FIFO,
    ADF and DFD, at medium and fine thread granularity (K = 50,000).

    Reproduction target: both depth-first and DFDeques beat FIFO; at the
    fine granularity DFDeques pulls ahead of the depth-first scheduler
    (better locality, no global-queue contention). *)

val table : unit -> Exp_common.table

val speedups :
  Dfd_benchmarks.Workload.grain -> (string * float * float * float) list
(** benchmark, FIFO, ADF, DFD speedups. *)
