module Workload = Dfd_benchmarks.Workload

let measure () =
  let b = Dfd_benchmarks.Barnes_hut.treebuild Workload.Fine in
  [
    ("FIFO", Exp_common.speedup ~sched:`Fifo b);
    ("ADF", Exp_common.speedup ~sched:`Adf b);
    ("DFD", Exp_common.speedup ~sched:`Dfdeques b);
    ("Cilk(WS,spin)", Exp_common.speedup ~sched:`Ws ~k:None ~spin_locks:true b);
  ]

let table () =
  let rows = List.map (fun (n, s) -> [ n; Exp_common.fmt2 s ]) (measure ()) in
  {
    Exp_common.title = "Barnes-Hut tree-build phase (locks), 8-processor speedups";
    paper_ref = "Figure 17";
    header = [ "Scheduler"; "speedup" ];
    rows;
    notes =
      [
        "FIFO/ADF/DFD suspend on contended mutexes (Pthreads-style blocking locks);";
        "the work-stealing Cilk stand-in spin-waits;";
        "reproduced: DFD > ADF ~ FIFO, and locks shrink DFD's usual margin (the";
        "paper's own observation: frequent suspension kills DFD's granularity).";
        "NOT reproduced: the paper's spin-waiting penalty for Cilk — our cost";
        "model charges spinners and slows lock holders, but not the deep";
        "bus/coherence convoys of a real 1999 SMP, so Cilk(WS,spin) stays";
        "competitive here instead of dropping below the blocking schedulers.";
      ];
  }
