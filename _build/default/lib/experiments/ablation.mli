(** Ablation of DFDeques' two key design choices (Section 3.3's rationale,
    not a paper figure — DESIGN.md calls these out):

    - {b steal position}: the paper steals the {e bottom} of the victim
      deque ("typically the coarsest thread in the queue, resulting in a
      larger scheduling granularity").  Ablating to top-stealing should
      collapse the scheduling granularity toward depth-first behaviour.
    - {b victim scope}: the paper steals from the {e leftmost p} deques
      (the high-priority end of R), which keeps execution near the 1DF
      frontier and underpins the space bound.  Ablating to a uniformly
      random deque should cost memory.

    Each row runs the Section 6 synthetic benchmark and dense MM under the
    paper configuration and the two ablated variants. *)

val table : unit -> Exp_common.table
