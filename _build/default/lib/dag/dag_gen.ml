module Prng = Dfd_structures.Prng

type params = {
  max_depth : int;
  fork_prob : float;
  leaf_work_max : int;
  alloc_prob : float;
  alloc_max : int;
  leak_prob : float;
  touch_prob : float;
  addr_space : int;
  touch_max : int;
  lock_prob : float;
  n_mutexes : int;
}

let default =
  {
    max_depth = 8;
    fork_prob = 0.55;
    leaf_work_max = 6;
    alloc_prob = 0.35;
    alloc_max = 64;
    leak_prob = 0.15;
    touch_prob = 0.3;
    addr_space = 4096;
    touch_max = 4;
    lock_prob = 0.0;
    n_mutexes = 1;
  }

let allocation_heavy =
  { default with alloc_prob = 0.8; alloc_max = 512; leak_prob = 0.05; fork_prob = 0.5 }

let fork_heavy =
  { default with fork_prob = 0.8; max_depth = 10; leaf_work_max = 2; alloc_prob = 0.15 }

let lock_heavy = { default with lock_prob = 0.4; n_mutexes = 3 }

let open_paren = Prog.( >> )

let leaf rng p =
  let w = Prog.work (Prng.int_in rng 1 p.leaf_work_max) in
  let body =
    if Prng.float rng 1.0 < p.touch_prob then begin
      let n = Prng.int_in rng 1 p.touch_max in
      let addrs = Array.init n (fun _ -> Prng.int rng p.addr_space) in
      open_paren w (Prog.touch addrs)
    end
    else w
  in
  (* Locks only at leaves and never nested: deadlock-free by construction
     regardless of schedule, so the property tests stay sound. *)
  if Prng.float rng 1.0 < p.lock_prob then
    Prog.critical (Prng.int rng p.n_mutexes) body
  else body

let rec gen_at rng p depth =
  let body =
    if depth >= p.max_depth || Prng.float rng 1.0 >= p.fork_prob then leaf rng p
    else begin
      let left = gen_at rng p (depth + 1) in
      let right = gen_at rng p (depth + 1) in
      if Prng.bool rng then Prog.par left right
      else open_paren (gen_at rng p (depth + 1)) (Prog.par left right)
    end
  in
  if Prng.float rng 1.0 < p.alloc_prob then begin
    let n = Prng.int_in rng 1 p.alloc_max in
    if Prng.float rng 1.0 < p.leak_prob then open_paren (Prog.alloc n) body
    else open_paren (Prog.alloc n) (open_paren body (Prog.free n))
  end
  else body

let gen rng p = gen_at rng p 0

let gen_prog rng p = Prog.finish (gen rng p)
