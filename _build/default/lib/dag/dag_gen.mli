(** Random nested-parallel program generators.

    Produce well-formed (properly nested, binary fork/join) programs with
    configurable shape, used by the property-based tests (space/time bound
    checks, schedule invariants) and by the Section 6 style synthetic
    sweeps.  All randomness flows through an explicit {!Dfd_structures.Prng.t}
    so a failing case reproduces from its seed. *)

type params = {
  max_depth : int;  (** recursion depth bound of the generator. *)
  fork_prob : float;  (** probability a subtree is a fork-join split. *)
  leaf_work_max : int;  (** leaf work drawn uniformly from [1, this]. *)
  alloc_prob : float;  (** probability a subtree is wrapped in alloc/free. *)
  alloc_max : int;  (** allocation sizes drawn from [1, this]. *)
  leak_prob : float;  (** probability an allocation is never freed. *)
  touch_prob : float;  (** probability a leaf touches memory. *)
  addr_space : int;  (** word addresses drawn from [0, this). *)
  touch_max : int;  (** addresses per touch drawn from [1, this]. *)
  lock_prob : float;
      (** probability a leaf runs inside a critical section; locks are
          leaf-only and never nested, so generated programs are
          deadlock-free under any schedule. *)
  n_mutexes : int;  (** distinct mutex ids drawn for critical sections. *)
}

val default : params
(** Moderate dags: depth <= 8, small allocations, some leaks. *)

val allocation_heavy : params
(** Dags dominated by alloc/free pairs — stresses the space bounds. *)

val fork_heavy : params
(** Highly parallel dags with tiny leaves — stresses scheduling. *)

val lock_heavy : params
(** Dags whose leaves contend on a few mutexes — stresses the blocking
    synchronisation extension (Section 5). *)

val gen : Dfd_structures.Prng.t -> params -> Prog.frag
(** A random program fragment. *)

val gen_prog : Dfd_structures.Prng.t -> params -> Prog.t
(** A random complete program ({!gen} closed with {!Prog.finish}). *)
