(** Explicit dag materialisation of a nested-parallel program.

    Expands a {!Prog.t} into the node/edge graph of Section 2 (Figure 2):
    continue edges within a thread, a fork edge from each fork node to its
    child's first node, and a synch edge from a child's last node to the
    parent's first node after the join.  [Work n] actions expand into [n]
    unit nodes, so the node set is exactly the set of unit actions.

    Node ids are assigned in serial depth-first (1DF) execution order, so
    [id] doubles as the 1DF numbering used to define premature nodes in
    Section 4.2 — and is therefore also a valid topological order.

    Intended for tests, invariant checking and visualisation of {e small}
    programs; the schedulers never materialise dags. *)

type node = {
  id : int;  (** 1DF serial execution index, 0-based. *)
  action : Action.t;  (** The unit action ([Work] nodes carry [Work 1]). *)
  thread : int;  (** Id of the thread the action belongs to, root = 0. *)
  mutable succ : int list;
  mutable pred : int list;
}

type t

exception Too_large of int

val of_prog : ?max_nodes:int -> Prog.t -> t
(** Materialise; raises {!Too_large} beyond [max_nodes] (default 2_000_000)
    and [Analysis.Malformed] on ill-nested programs. *)

val of_nodes : node array -> t
(** Build a dag directly from nodes (ids must equal array indices; [succ]
    is taken as given, [pred] recomputed).  For tests that need graphs no
    program can produce, e.g. non-series-parallel witnesses. *)

val n_nodes : t -> int

val node : t -> int -> node

val work : t -> int
(** Node count = W. *)

val depth : t -> int
(** Longest path in nodes, by DP over the topological (= 1DF) order.
    Note: this is the {e unit-cost} depth; it differs from
    [Analysis.depth] only in the Theta(log n) charge for allocations. *)

val n_threads : t -> int

val sources : t -> int list

val sinks : t -> int list

val iter_nodes : (node -> unit) -> t -> unit

val edges : t -> (int * int) list
(** All (src, dst) pairs; test helper. *)

val is_topological_id_order : t -> bool
(** Every edge goes from a smaller id to a larger id (1DF order must be a
    valid schedule). *)

val to_dot : t -> string
(** Graphviz rendering: one cluster colour per thread. *)
