(* SP reduction over an adjacency multiset.  Vertices are dag node ids plus
   a virtual sink; edge multiplicities live in per-vertex hashtables. *)

type graph = {
  succ : (int, (int, int) Hashtbl.t) Hashtbl.t;  (* u -> (v -> multiplicity) *)
  pred : (int, (int, int) Hashtbl.t) Hashtbl.t;
}

let tbl g h u =
  match Hashtbl.find_opt h u with
  | Some t -> t
  | None ->
    let t = Hashtbl.create 4 in
    Hashtbl.add h u t;
    ignore g;
    t

let add_edge g u v =
  let su = tbl g g.succ u in
  Hashtbl.replace su v (1 + Option.value ~default:0 (Hashtbl.find_opt su v));
  let pv = tbl g g.pred v in
  Hashtbl.replace pv u (1 + Option.value ~default:0 (Hashtbl.find_opt pv u))

let remove_vertex g u =
  Hashtbl.remove g.succ u;
  Hashtbl.remove g.pred u

(* total multiplicity and distinct-neighbour count *)
let degree h u =
  match Hashtbl.find_opt h u with
  | None -> (0, 0)
  | Some t -> (Hashtbl.fold (fun _ m acc -> acc + m) t 0, Hashtbl.length t)

let is_series_parallel dag =
  let n = Dag.n_nodes dag in
  if n = 0 then true
  else begin
    let sink = n in
    let g = { succ = Hashtbl.create (2 * n); pred = Hashtbl.create (2 * n) } in
    Dag.iter_nodes
      (fun node ->
         match node.Dag.succ with
         | [] -> add_edge g node.Dag.id sink
         | succs -> List.iter (fun v -> add_edge g node.Dag.id v) succs)
      dag;
    (* parallel reduction: cap every multiplicity at 1 (merging duplicate
       edges never needs to be undone) *)
    let merge_parallel u =
      (match Hashtbl.find_opt g.succ u with
       | Some t -> Hashtbl.iter (fun v m -> if m > 1 then Hashtbl.replace t v 1) t
       | None -> ());
      match Hashtbl.find_opt g.pred u with
      | Some t -> Hashtbl.iter (fun v m -> if m > 1 then Hashtbl.replace t v 1) t
      | None -> ()
    in
    (* series reduction of u (one pred p, one succ s, each multiplicity 1):
       replace p->u->s by p->s *)
    let try_series u =
      if u = 0 || u = sink then false
      else begin
        merge_parallel u;
        match (degree g.pred u, degree g.succ u) with
        | (1, 1), (1, 1) ->
          let p = Hashtbl.fold (fun v _ _ -> v) (Hashtbl.find g.pred u) (-1) in
          let s = Hashtbl.fold (fun v _ _ -> v) (Hashtbl.find g.succ u) (-1) in
          (match Hashtbl.find_opt g.succ p with Some t -> Hashtbl.remove t u | None -> ());
          (match Hashtbl.find_opt g.pred s with Some t -> Hashtbl.remove t u | None -> ());
          remove_vertex g u;
          add_edge g p s;
          true
        | _ -> false
      end
    in
    (* iterate to fixpoint *)
    let changed = ref true in
    while !changed do
      changed := false;
      let vertices = Hashtbl.fold (fun u _ acc -> u :: acc) g.succ [] in
      List.iter (fun u -> if try_series u then changed := true) vertices;
      (* also merge parallels at the endpoints *)
      merge_parallel 0;
      merge_parallel sink
    done;
    (* success: only the source remains with a single edge to the sink *)
    Hashtbl.length g.succ = 1
    &&
    match Hashtbl.find_opt g.succ 0 with
    | Some t -> Hashtbl.length t = 1 && Hashtbl.mem t sink
    | None -> false
  end
