(** Series-parallel recognition by SP reduction.

    The model claims every nested-parallel program yields a series-parallel
    dag (Section 3.1: "pure, nested-parallel computations, which can be
    modeled by series-parallel dags").  This module {e proves it per
    instance}: a two-terminal multigraph is series-parallel iff repeated

    - {b series reduction} (contract an internal vertex with in-degree 1
      and out-degree 1), and
    - {b parallel reduction} (merge duplicate edges between one pair),

    collapse it to a single source->sink edge (Valdes-Tarjan-Lawler).

    The dag's sinks are first joined to a virtual sink so the graph is
    two-terminal.  Used by the property tests over random programs. *)

val is_series_parallel : Dag.t -> bool
(** Does SP reduction collapse the dag to a single edge?  O(E) per pass,
    for the small dags used in tests. *)
