(** Unit actions of the computation model (Section 2 of the paper).

    Each node of the computation dag is a single {e action}: a unit of work
    that takes one timestep to execute (plus model-dependent penalties).  An
    action may additionally allocate or free memory, reference memory
    addresses (driving the cache simulator), or operate a mutex (the
    Pthreads extension of Section 5 used by the Barnes-Hut tree-build
    benchmark, Figure 17). *)

type t =
  | Work of int
      (** [Work n] — [n] consecutive unit actions with no memory effect.
          Run-length compressed purely as a representation optimisation:
          semantically identical to [n] unit nodes in the dag. [n >= 1]. *)
  | Touch of int array
      (** One unit action that references the given word addresses (reads or
          writes — the cache model does not distinguish). *)
  | Alloc of int
      (** One unit action allocating [n >= 0] bytes of heap.  The analysis
          charges it depth [ceil (log2 n)] per the paper's cost model (an
          allocation of n bytes has depth Theta(log n), Section 4.1). *)
  | Free of int  (** One unit action freeing [n >= 0] heap bytes. *)
  | Lock of int  (** Acquire mutex [id] (blocking or spinning per scheduler). *)
  | Unlock of int  (** Release mutex [id]. *)
  | Wait of int * int
      (** [Wait (cv, m)] — atomically release mutex [m] and block on
          condition variable [cv]; on wakeup the mutex is re-acquired
          before execution continues (Pthreads condvar protocol).
          Signals are {e sticky} (counted): a signal arriving before the
          wait is consumed by it — the lost-wakeup races of POSIX condvars
          cannot be expressed safely in a deterministic dag program, and
          what the scheduler experiments need is the blocking behaviour. *)
  | Signal of int  (** Wake one waiter of [cv] (sticky if none waiting). *)
  | Broadcast of int
      (** Wake all current waiters of [cv] (no memory if none waiting). *)
  | Dummy
      (** A no-op unit action marking a dummy thread inserted before a large
          allocation (Section 3.3): after executing it a processor must give
          up its deque and steal. Generated only by the runtime
          transformation, never by user programs. *)

val work_units : t -> int
(** Number of dag nodes this action stands for ([n] for [Work n], else 1). *)

val alloc_bytes : t -> int
(** Bytes allocated (0 unless [Alloc]). *)

val free_bytes : t -> int
(** Bytes freed (0 unless [Free]). *)

val depth_units : t -> int
(** Depth contributed under the paper's cost model: [Work n] has depth [n];
    [Alloc n] has depth [max 1 (ceil (log2 n))]; all others depth 1. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
