type node = {
  id : int;
  action : Action.t;
  thread : int;
  mutable succ : int list;
  mutable pred : int list;
}

type t = { nodes : node array; threads : int }

exception Too_large of int

(* Frames mirror the 1DF walk of [Analysis]; they carry the dangling edge
   sources (nodes whose outgoing edge targets the next node of the
   enclosing segment). *)
type frame =
  | In_child of { parent : Prog.t; parent_dangling : int list; parent_thread : int }
  | In_segment of { child_dangling : int list }

let of_prog ?(max_nodes = 2_000_000) prog =
  let nodes = ref [] in
  let n = ref 0 in
  let threads = ref 1 in
  let add_node action thread dangling =
    if !n >= max_nodes then raise (Too_large max_nodes);
    let node = { id = !n; action; thread; succ = []; pred = [] } in
    incr n;
    nodes := node :: !nodes;
    List.iter
      (fun src_id ->
         node.pred <- src_id :: node.pred)
      dangling;
    node
  in
  let stack = ref [] in
  let cur = ref prog in
  let dangling = ref [] in
  let cur_thread = ref 0 in
  let finished = ref false in
  let emit action =
    let node = add_node action !cur_thread !dangling in
    dangling := [ node.id ]
  in
  while not !finished do
    match !cur with
    | Prog.Act (Action.Work k, rest) ->
      for _ = 1 to k do
        emit (Action.Work 1)
      done;
      cur := rest
    | Prog.Act (a, rest) ->
      emit a;
      cur := rest
    | Prog.Fork (child, rest) ->
      (* The fork node belongs to the parent and has two out-edges. *)
      emit (Action.Work 1);
      let fork_sources = !dangling in
      stack :=
        In_child { parent = rest; parent_dangling = fork_sources; parent_thread = !cur_thread }
        :: !stack;
      cur := child ();
      cur_thread := !threads;
      incr threads;
      dangling := fork_sources
    | Prog.Nil -> (
        match !stack with
        | [] -> finished := true
        | In_child { parent; parent_dangling; parent_thread } :: rest ->
          stack := In_segment { child_dangling = !dangling } :: rest;
          cur := parent;
          cur_thread := parent_thread;
          dangling := parent_dangling
        | In_segment _ :: _ ->
          raise (Analysis.Malformed "thread terminated with an unjoined child"))
    | Prog.Join rest -> (
        match !stack with
        | In_segment { child_dangling } :: tail ->
          dangling := !dangling @ child_dangling;
          stack := tail;
          cur := rest
        | In_child _ :: _ | [] -> raise (Analysis.Malformed "join without a matching fork"))
  done;
  let dummy = { id = -1; action = Action.Dummy; thread = -1; succ = []; pred = [] } in
  let arr = Array.make !n dummy in
  List.iter (fun node -> arr.(node.id) <- node) !nodes;
  (* Derive succ from pred, and order both ascending. *)
  Array.iter
    (fun node ->
       node.pred <- List.sort_uniq compare node.pred;
       List.iter (fun p -> arr.(p).succ <- node.id :: arr.(p).succ) node.pred)
    arr;
  Array.iter (fun node -> node.succ <- List.sort_uniq compare node.succ) arr;
  { nodes = arr; threads = !threads }

(* Build directly from nodes (tests: hand-crafted non-SP graphs).  succ
   lists are taken as given; pred lists are recomputed from them. *)
let of_nodes nodes =
  Array.iter (fun nd -> nd.pred <- []) nodes;
  Array.iter
    (fun nd -> List.iter (fun v -> nodes.(v).pred <- nd.id :: nodes.(v).pred) nd.succ)
    nodes;
  Array.iter (fun nd -> nd.pred <- List.sort_uniq compare nd.pred) nodes;
  { nodes; threads = 1 }

let n_nodes t = Array.length t.nodes

let node t i = t.nodes.(i)

let work t = n_nodes t

let n_threads t = t.threads

let depth t =
  let n = n_nodes t in
  if n = 0 then 0
  else begin
    let d = Array.make n 1 in
    for i = 0 to n - 1 do
      List.iter (fun p -> if d.(p) + 1 > d.(i) then d.(i) <- d.(p) + 1) t.nodes.(i).pred
    done;
    Array.fold_left max 0 d
  end

let sources t =
  Array.to_list t.nodes |> List.filter (fun nd -> nd.pred = []) |> List.map (fun nd -> nd.id)

let sinks t =
  Array.to_list t.nodes |> List.filter (fun nd -> nd.succ = []) |> List.map (fun nd -> nd.id)

let iter_nodes f t = Array.iter f t.nodes

let edges t =
  Array.to_list t.nodes
  |> List.concat_map (fun nd -> List.map (fun s -> (nd.id, s)) nd.succ)

let is_topological_id_order t =
  List.for_all (fun (a, b) -> a < b) (edges t)

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph dag {\n  rankdir=TB;\n";
  iter_nodes
    (fun nd ->
       Buffer.add_string buf
         (Printf.sprintf "  n%d [label=\"%d:%s\", colorscheme=set312, style=filled, fillcolor=%d];\n"
            nd.id nd.id (Action.to_string nd.action) ((nd.thread mod 12) + 1)))
    t;
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" a b))
    (edges t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
