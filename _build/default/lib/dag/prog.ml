type t =
  | Nil
  | Act of Action.t * t
  | Fork of (unit -> t) * t
  | Join of t

type frag = t -> t

let finish f = f Nil

let ( >> ) f g k = f (g k)

let nothing k = k

let act a k = Act (a, k)

let work n k = if n <= 0 then k else Act (Action.Work n, k)

let touch addrs k = Act (Action.Touch addrs, k)

let alloc n k = if n <= 0 then k else Act (Action.Alloc n, k)

let free n k = if n <= 0 then k else Act (Action.Free n, k)

let lock m k = Act (Action.Lock m, k)

let unlock m k = Act (Action.Unlock m, k)

let critical m body = lock m >> body >> unlock m

let wait ~cv ~mutex k = Act (Action.Wait (cv, mutex), k)

let signal cv k = Act (Action.Signal cv, k)

let broadcast cv k = Act (Action.Broadcast cv, k)

let seq fs k = List.fold_right (fun f acc -> f acc) fs k

let par child parent k = Fork ((fun () -> finish child), parent (Join k))

let par_lazy child parent k = Fork (child, parent (Join k))

(* Balanced binary fork tree: the left half becomes the forked child thread,
   the right half continues in the current thread.  This matches how the
   paper's benchmarks express parallel loops as binary fork trees. *)
let rec par_list fs =
  match fs with
  | [] -> nothing
  | [ f ] -> f
  | _ ->
    let n = List.length fs in
    let rec split i acc = function
      | [] -> (List.rev acc, [])
      | x :: tl when i > 0 -> split (i - 1) (x :: acc) tl
      | rest -> (List.rev acc, rest)
    in
    let left, right = split (n / 2) [] fs in
    par (par_list left) (par_list right)

let par_iter ~lo ~hi f =
  (* Build the binary tree by index range rather than materialising a list,
     so the child halves stay lazy. *)
  let rec range l h =
    if h - l <= 0 then nothing
    else if h - l = 1 then f l
    else begin
      let mid = l + ((h - l) / 2) in
      fun k -> Fork ((fun () -> finish (range l mid)), range mid h (Join k))
    end
  in
  range lo hi

let repeat n f =
  let rec go i = if i >= n then nothing else f >> go (i + 1) in
  go 0

let rec size = function
  | Nil -> 1
  | Act (_, k) -> 1 + size k
  | Fork (_, k) -> 1 + size k
  | Join k -> 1 + size k
