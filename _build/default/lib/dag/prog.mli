(** Nested-parallel programs (the computation model of Sections 2–3).

    A program describes the instruction stream of one thread.  A thread may
    [Fork] a child thread (the child's program is a thunk, so dags unfold
    lazily at runtime exactly as in the paper's dynamic model), continue with
    its own stream, and later [Join] with its most recently forked unjoined
    child.  Programs built with the [par] combinators are properly nested
    (series-parallel), i.e. nested-parallel computations; binary forks and
    binary joins only, as the paper assumes.

    The [frag] type is a program fragment in continuation style
    ([Prog.t -> Prog.t]); fragments compose with {!(>>)}.  Benchmarks build
    fragments; {!finish} closes a fragment into a runnable root program. *)

type t =
  | Nil  (** Thread termination.  All forked children must have been joined. *)
  | Act of Action.t * t  (** Execute one action, continue. *)
  | Fork of (unit -> t) * t
      (** Fork a child thread (lazily materialised), continue as parent. *)
  | Join of t
      (** Join with the most recently forked unjoined child (LIFO nesting),
          then continue. *)

type frag = t -> t
(** A program fragment awaiting its continuation. *)

val finish : frag -> t
(** Close a fragment into a complete thread program. *)

val ( >> ) : frag -> frag -> frag
(** Sequential composition of fragments. *)

val nothing : frag
(** The empty fragment. *)

val act : Action.t -> frag

val work : int -> frag
(** [work n] — [n] units of plain work; [work 0] is [nothing]. *)

val touch : int array -> frag
(** One action referencing the given word addresses. *)

val alloc : int -> frag
(** Allocate bytes ([alloc 0] is [nothing]). *)

val free : int -> frag

val lock : int -> frag

val unlock : int -> frag

val critical : int -> frag -> frag
(** [critical m body] = [lock m >> body >> unlock m]. *)

val wait : cv:int -> mutex:int -> frag
(** Condition-variable wait (must hold [mutex]; see {!Action.Wait} for the
    sticky-signal semantics). *)

val signal : int -> frag
(** Wake one waiter of the condition variable (sticky if none). *)

val broadcast : int -> frag
(** Wake all current waiters of the condition variable. *)

val seq : frag list -> frag
(** Sequential composition of a list of fragments. *)

val par : frag -> frag -> frag
(** [par child parent] forks [child], runs [parent] in the forking thread,
    then joins: a binary fork-join.  The {e child} is the left branch, which
    the depth-first order executes first (Section 3.1). *)

val par_lazy : (unit -> t) -> frag -> frag
(** Like {!par} but the child is supplied as an already-closed lazy thread;
    used when the child's size makes eager fragment construction wasteful. *)

val par_list : frag list -> frag
(** Fork-join over a list, as a balanced {e binary} tree of forks — the
    paper's encoding of parallel loops and multi-way forks (Section 5.1). *)

val par_iter : lo:int -> hi:int -> (int -> frag) -> frag
(** [par_iter ~lo ~hi f] — binary fork tree over [f lo .. f (hi-1)];
    the standard nested-parallel loop. *)

val repeat : int -> frag -> frag
(** [repeat n f] — [f] sequenced [n] times. *)

val size : t -> int
(** Number of constructors reachable without forcing forks (test helper). *)
