exception Malformed of string

type summary = {
  work : int;
  timed_work : int;
  depth : int;
  serial_space : int;
  total_alloc : int;
  total_free : int;
  threads : int;
  serial_live_threads : int;
  final_heap : int;
  touches : int;
}

(* Frames of the iterative 1DF walk.  [In_child] is pushed when a fork
   transfers control to the child; [In_segment] replaces it when the child
   finishes and the parent resumes, carrying the child's total path depth
   until the matching join folds the two parallel paths together. *)
type frame =
  | In_child of { parent : Prog.t; d_at_fork : int }
  | In_segment of { child_depth : int; d_at_fork : int }

let walk ~on_action prog =
  let heap = Dfd_structures.Stats.Watermark.create () in
  let live = Dfd_structures.Stats.Watermark.create () in
  let work = ref 0 in
  let timed_work = ref 0 in
  let total_alloc = ref 0 in
  let total_free = ref 0 in
  let threads = ref 1 in
  let touches = ref 0 in
  Dfd_structures.Stats.Watermark.add live 1;
  let stack = ref [] in
  let cur = ref prog in
  let d_acc = ref 0 in
  let depth = ref (-1) in
  let execute a =
    work := !work + Action.work_units a;
    timed_work := !timed_work + Action.depth_units a;
    d_acc := !d_acc + Action.depth_units a;
    total_alloc := !total_alloc + Action.alloc_bytes a;
    total_free := !total_free + Action.free_bytes a;
    (match a with
     | Action.Alloc n -> Dfd_structures.Stats.Watermark.add heap n
     | Action.Free n -> Dfd_structures.Stats.Watermark.add heap (-n)
     | Action.Touch addrs -> touches := !touches + Array.length addrs
     | Action.Work _ | Action.Lock _ | Action.Unlock _ | Action.Wait _ | Action.Signal _
     | Action.Broadcast _ | Action.Dummy -> ());
    on_action a
  in
  while !depth < 0 do
    match !cur with
    | Prog.Act (a, k) ->
      execute a;
      cur := k
    | Prog.Fork (child, k) ->
      (* The fork itself is one unit action in the parent thread. *)
      execute (Action.Work 1);
      incr threads;
      Dfd_structures.Stats.Watermark.add live 1;
      stack := In_child { parent = k; d_at_fork = !d_acc } :: !stack;
      cur := child ();
      d_acc := 0
    | Prog.Nil -> (
        match !stack with
        | [] -> depth := !d_acc
        | In_child { parent; d_at_fork } :: rest ->
          (* Child finished: its path depth is [!d_acc]; resume the parent
             segment, measuring its depth from the fork point. *)
          Dfd_structures.Stats.Watermark.add live (-1);
          stack := In_segment { child_depth = !d_acc; d_at_fork } :: rest;
          cur := parent;
          d_acc := 0
        | In_segment _ :: _ ->
          raise (Malformed "thread terminated with an unjoined child"))
    | Prog.Join k -> (
        match !stack with
        | In_segment { child_depth; d_at_fork } :: rest ->
          (* Fold the two parallel paths (child vs. parent segment). *)
          d_acc := d_at_fork + max child_depth !d_acc;
          stack := rest;
          cur := k
        | In_child _ :: _ | [] ->
          raise (Malformed "join without a matching fork"))
  done;
  {
    work = !work;
    timed_work = !timed_work;
    depth = !depth;
    serial_space = Dfd_structures.Stats.Watermark.peak heap;
    total_alloc = !total_alloc;
    total_free = !total_free;
    threads = !threads;
    serial_live_threads = Dfd_structures.Stats.Watermark.peak live;
    final_heap = Dfd_structures.Stats.Watermark.current heap;
    touches = !touches;
  }

let analyze prog = walk ~on_action:(fun _ -> ()) prog

let iter_serial f prog = ignore (walk ~on_action:f prog)

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>work W        = %d@,depth D       = %d@,serial S1     = %d bytes@,\
     total alloc   = %d bytes@,threads       = %d@,serial live   = %d@]"
    s.work s.depth s.serial_space s.total_alloc s.threads s.serial_live_threads
