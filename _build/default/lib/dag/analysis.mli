(** Static analysis of a nested-parallel program by serial 1DF execution.

    Walking the program in its serial depth-first order (child thread runs
    to completion before the parent resumes — Section 3.1, Figure 4) yields,
    in one O(W) pass with O(nesting) heap and O(1) stack:

    - the {b work} [W] (number of dag nodes),
    - the {b depth} [D] (longest path, under the paper's cost model where an
      allocation of n bytes has depth Theta(log n)),
    - the {b serial space} [S1] (heap high watermark of the 1DF schedule),
    - the total allocation [Sa] (gross bytes allocated over the run),
    - thread statistics (total threads, max simultaneously-live threads of
      the serial schedule).

    The walk also validates well-formedness: every fork is joined before its
    thread terminates, and joins match forks LIFO.  Ill-formed programs
    raise [Malformed]. *)

exception Malformed of string

type summary = {
  work : int;  (** W: total unit actions. *)
  timed_work : int;
      (** work weighted by per-action depth charges (an [Alloc n] costs
          [ceil(log2 n)] timesteps on its processor): the quantity a
          processor-time bound must divide by p. *)
  depth : int;  (** D: critical-path length under the cost model. *)
  serial_space : int;  (** S1: heap watermark of the serial 1DF schedule. *)
  total_alloc : int;  (** Sa: gross bytes allocated. *)
  total_free : int;  (** gross bytes freed. *)
  threads : int;  (** total threads created (forks + 1). *)
  serial_live_threads : int;
      (** max threads simultaneously live during the 1DF schedule. *)
  final_heap : int;  (** live heap bytes at termination (leaks if > 0). *)
  touches : int;  (** total memory references issued by [Touch] actions. *)
}

val analyze : Prog.t -> summary
(** Full analysis of the program rooted at the given thread. *)

val pp_summary : Format.formatter -> summary -> unit

val iter_serial : (Action.t -> unit) -> Prog.t -> unit
(** [iter_serial f p] applies [f] to every action in serial 1DF order —
    the reference order against which premature nodes are defined
    (Section 4.2).  Validates nesting like {!analyze}. *)
