type t =
  | Work of int
  | Touch of int array
  | Alloc of int
  | Free of int
  | Lock of int
  | Unlock of int
  | Wait of int * int
  | Signal of int
  | Broadcast of int
  | Dummy

let work_units = function Work n -> n | _ -> 1

let alloc_bytes = function Alloc n -> n | _ -> 0

let free_bytes = function Free n -> n | _ -> 0

let ceil_log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) ((v + 1) / 2) in
  go 0 n

let depth_units = function
  | Work n -> n
  | Alloc n -> max 1 (ceil_log2 n)
  | Touch _ | Free _ | Lock _ | Unlock _ | Wait _ | Signal _ | Broadcast _ | Dummy -> 1

let pp ppf = function
  | Work n -> Format.fprintf ppf "work(%d)" n
  | Touch a -> Format.fprintf ppf "touch(%d addrs)" (Array.length a)
  | Alloc n -> Format.fprintf ppf "alloc(%d)" n
  | Free n -> Format.fprintf ppf "free(%d)" n
  | Lock m -> Format.fprintf ppf "lock(%d)" m
  | Unlock m -> Format.fprintf ppf "unlock(%d)" m
  | Wait (cv, m) -> Format.fprintf ppf "wait(cv%d,m%d)" cv m
  | Signal cv -> Format.fprintf ppf "signal(cv%d)" cv
  | Broadcast cv -> Format.fprintf ppf "broadcast(cv%d)" cv
  | Dummy -> Format.fprintf ppf "dummy"

let to_string a = Format.asprintf "%a" pp a
