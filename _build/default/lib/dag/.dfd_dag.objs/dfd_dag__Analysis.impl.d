lib/dag/analysis.ml: Action Array Dfd_structures Format Prog
