lib/dag/action.mli: Format
