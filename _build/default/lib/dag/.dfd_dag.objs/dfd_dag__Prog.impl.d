lib/dag/prog.ml: Action List
