lib/dag/action.ml: Array Format
