lib/dag/analysis.mli: Action Format Prog
