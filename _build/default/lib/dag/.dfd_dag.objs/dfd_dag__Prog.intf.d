lib/dag/prog.mli: Action
