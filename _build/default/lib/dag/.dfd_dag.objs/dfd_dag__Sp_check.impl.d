lib/dag/sp_check.ml: Dag Hashtbl List Option
