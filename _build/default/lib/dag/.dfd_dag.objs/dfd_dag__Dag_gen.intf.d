lib/dag/dag_gen.mli: Dfd_structures Prog
