lib/dag/dag.mli: Action Prog
