lib/dag/dag.ml: Action Analysis Array Buffer List Printf Prog
