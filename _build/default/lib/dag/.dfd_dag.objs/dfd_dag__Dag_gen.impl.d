lib/dag/dag_gen.ml: Array Dfd_structures Prog
