lib/dag/sp_check.mli: Dag
