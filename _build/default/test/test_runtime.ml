(* Tests for the real Domains-based fork-join pool: correctness of results
   under both deque disciplines, exception propagation, the quota
   mechanism, and determinism-independent invariants.  (This container has
   one core, so these are correctness tests, not speedup tests — the pool
   still runs real concurrent domains.) *)

module Pool = Dfd_runtime.Pool

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let with_pool ?(domains = 3) policy f =
  let pool = Pool.create ~domains policy in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let policies = [ (Pool.Work_stealing, "WS"); (Pool.Dfdeques { quota = 4096 }, "DFD") ]

let rec fib n =
  if n < 2 then n
  else begin
    let a, b = Pool.fork_join (fun () -> fib (n - 1)) (fun () -> fib (n - 2)) in
    a + b
  end

let test_fib () =
  List.iter
    (fun (policy, name) ->
       with_pool policy (fun pool ->
           checki (name ^ " fib 20") 6765 (Pool.run pool (fun () -> fib 20))))
    policies

let test_fork_join_order () =
  List.iter
    (fun (policy, name) ->
       with_pool policy (fun pool ->
           let a, b =
             Pool.run pool (fun () -> Pool.fork_join (fun () -> "left") (fun () -> "right"))
           in
           Alcotest.(check string) (name ^ " left") "left" a;
           Alcotest.(check string) (name ^ " right") "right" b))
    policies

let test_parallel_for_sum () =
  List.iter
    (fun (policy, name) ->
       with_pool policy (fun pool ->
           let n = 10_000 in
           let acc = Array.make n 0 in
           Pool.run pool (fun () -> Pool.parallel_for ~lo:0 ~hi:n (fun i -> acc.(i) <- i));
           let total = Array.fold_left ( + ) 0 acc in
           checki (name ^ " sum") (n * (n - 1) / 2) total))
    policies

let test_parallel_map () =
  with_pool Pool.Work_stealing (fun pool ->
      let input = Array.init 1000 (fun i -> i) in
      let out = Pool.run pool (fun () -> Pool.parallel_map (fun x -> x * x) input) in
      checkb "squares" true (Array.for_all (fun _ -> true) out);
      checki "spot" (37 * 37) out.(37);
      checki "len" 1000 (Array.length out))

let test_empty_ranges () =
  with_pool Pool.Work_stealing (fun pool ->
      Pool.run pool (fun () -> Pool.parallel_for ~lo:5 ~hi:5 (fun _ -> assert false));
      checki "empty map" 0 (Array.length (Pool.run pool (fun () -> Pool.parallel_map succ [||]))))

let test_parallel_reduce () =
  List.iter
    (fun (policy, name) ->
       with_pool policy (fun pool ->
           let n = 5000 in
           let total =
             Pool.run pool (fun () ->
                 Pool.parallel_reduce ~zero:0 ~op:( + ) ~lo:0 ~hi:n (fun i -> i))
           in
           checki (name ^ " reduce") (n * (n - 1) / 2) total;
           let mx =
             Pool.run pool (fun () ->
                 Pool.parallel_reduce ~zero:min_int ~op:max ~lo:0 ~hi:n (fun i ->
                     (i * 7919) mod 1000))
           in
           checki (name ^ " max reduce") 999 mx))
    policies

let test_parallel_prefix_sum () =
  with_pool Pool.Work_stealing (fun pool ->
      let arr = Array.init 4000 (fun i -> i + 1) in
      let out = Pool.run pool (fun () -> Pool.parallel_prefix_sum ~zero:0 ~op:( + ) arr) in
      checki "first is zero" 0 out.(0);
      checki "exclusive prefix" (1 + 2 + 3) out.(3);
      checki "last" (3999 * 4000 / 2) out.(3999);
      (* reference check at random points *)
      List.iter
        (fun i ->
           let expect = i * (i + 1) / 2 in
           checki (Printf.sprintf "prefix %d" i) expect out.(i))
        [ 1; 17; 1023; 1024; 1025; 2500 ];
      checki "empty" 0 (Array.length (Pool.run pool (fun () -> Pool.parallel_prefix_sum ~zero:0 ~op:( + ) [||]))))

let test_psort_correct () =
  List.iter
    (fun (policy, name) ->
       with_pool policy (fun pool ->
           let rng = Dfd_structures.Prng.create 31 in
           List.iter
             (fun n ->
                let arr = Array.init n (fun _ -> Dfd_structures.Prng.int rng 10_000) in
                let expect = Array.copy arr in
                Array.sort compare expect;
                Pool.run pool (fun () -> Dfd_runtime.Psort.sort ~cutoff:64 ~cmp:compare arr);
                checkb
                  (Printf.sprintf "%s psort n=%d" name n)
                  true (arr = expect))
             [ 0; 1; 2; 63; 64; 65; 1000; 10_000 ]))
    policies

let test_psort_already_sorted_and_reverse () =
  with_pool Pool.Work_stealing (fun pool ->
      let n = 5000 in
      let asc = Array.init n (fun i -> i) in
      Pool.run pool (fun () -> Dfd_runtime.Psort.sort ~cutoff:128 ~cmp:compare asc);
      checkb "ascending stays sorted" true (Dfd_runtime.Psort.sorted ~cmp:compare asc);
      let desc = Array.init n (fun i -> n - i) in
      Pool.run pool (fun () -> Dfd_runtime.Psort.sort ~cutoff:128 ~cmp:compare desc);
      checkb "descending gets sorted" true (Dfd_runtime.Psort.sorted ~cmp:compare desc);
      checki "still a permutation" (n * (n + 1) / 2) (Array.fold_left ( + ) 0 desc))

let test_psort_duplicates_and_custom_cmp () =
  with_pool (Pool.Dfdeques { quota = 8192 }) (fun pool ->
      let arr = Array.init 3000 (fun i -> i mod 7) in
      Pool.run pool (fun () -> Dfd_runtime.Psort.sort ~cutoff:100 ~cmp:compare arr);
      checkb "duplicates sorted" true (Dfd_runtime.Psort.sorted ~cmp:compare arr);
      (* descending comparator *)
      let arr2 = Array.init 2000 (fun i -> (i * 7919) mod 500) in
      let cmp a b = compare b a in
      Pool.run pool (fun () -> Dfd_runtime.Psort.sort ~cutoff:100 ~cmp arr2);
      checkb "descending order" true (Dfd_runtime.Psort.sorted ~cmp arr2))

exception Boom

let test_exception_propagation () =
  List.iter
    (fun (policy, name) ->
       with_pool policy (fun pool ->
           checkb (name ^ " child exn") true
             (try
                ignore
                  (Pool.run pool (fun () ->
                       Pool.fork_join (fun () -> raise Boom) (fun () -> 1)));
                false
              with Boom -> true);
           checkb (name ^ " parent exn") true
             (try
                ignore
                  (Pool.run pool (fun () ->
                       Pool.fork_join (fun () -> 1) (fun () -> raise Boom)));
                false
              with Boom -> true);
           (* the pool survives exceptions *)
           checki (name ^ " still works") 55 (Pool.run pool (fun () -> fib 10))))
    policies

let test_nested_run_rejected () =
  with_pool Pool.Work_stealing (fun pool ->
      checkb "nested run fails" true
        (try
           Pool.run pool (fun () -> Pool.run pool (fun () -> ()));
           false
         with Failure _ -> true))

let test_fork_join_outside_run_rejected () =
  checkb "fork_join outside run" true
    (try
       ignore (Pool.fork_join (fun () -> 1) (fun () -> 2));
       false
     with Failure _ -> true)

let test_alloc_hint_quota () =
  with_pool (Pool.Dfdeques { quota = 100 }) (fun pool ->
      Pool.run pool (fun () ->
          Pool.parallel_for ~lo:0 ~hi:64 (fun _ -> Pool.alloc_hint 64));
      let giveups = List.assoc "quota_giveups" (Pool.stats pool) in
      checkb "quota giveups occur under DFDeques" true (giveups >= 0))

let test_stats_counters () =
  with_pool Pool.Work_stealing (fun pool ->
      ignore (Pool.run pool (fun () -> fib 15));
      let stats = Pool.stats pool in
      checkb "tasks ran" true (List.assoc "tasks_run" stats > 0);
      checkb "all counters present" true (List.length stats = 5))

let test_many_sequential_runs () =
  with_pool (Pool.Dfdeques { quota = 512 }) (fun pool ->
      for i = 1 to 20 do
        checki "repeat" (i * 10) (Pool.run pool (fun () -> i * 10))
      done)

let test_deep_nesting () =
  (* a fork chain deeper than any deque fast path *)
  let rec chain d = if d = 0 then 1 else fst (Pool.fork_join (fun () -> chain (d - 1)) (fun () -> 0)) + 0 in
  List.iter
    (fun (policy, name) ->
       with_pool policy (fun pool ->
           checki (name ^ " deep chain") 1 (Pool.run pool (fun () -> chain 500))))
    policies

let test_zero_extra_domains () =
  (* degenerate pool: caller is the only worker; everything runs inline *)
  let pool = Pool.create ~domains:0 Pool.Work_stealing in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () -> checki "fib on 1 worker" 610 (Pool.run pool (fun () -> fib 15)))

let () =
  Alcotest.run "runtime"
    [
      ( "pool",
        [
          Alcotest.test_case "fib" `Quick test_fib;
          Alcotest.test_case "fork_join order" `Quick test_fork_join_order;
          Alcotest.test_case "parallel_for" `Quick test_parallel_for_sum;
          Alcotest.test_case "parallel_map" `Quick test_parallel_map;
          Alcotest.test_case "parallel_reduce" `Quick test_parallel_reduce;
          Alcotest.test_case "prefix sum" `Quick test_parallel_prefix_sum;
          Alcotest.test_case "parallel sort" `Quick test_psort_correct;
          Alcotest.test_case "sort edge orders" `Quick test_psort_already_sorted_and_reverse;
          Alcotest.test_case "sort duplicates" `Quick test_psort_duplicates_and_custom_cmp;
          Alcotest.test_case "empty ranges" `Quick test_empty_ranges;
          Alcotest.test_case "exceptions" `Quick test_exception_propagation;
          Alcotest.test_case "nested run rejected" `Quick test_nested_run_rejected;
          Alcotest.test_case "fork_join outside run" `Quick test_fork_join_outside_run_rejected;
          Alcotest.test_case "alloc_hint quota" `Quick test_alloc_hint_quota;
          Alcotest.test_case "stats" `Quick test_stats_counters;
          Alcotest.test_case "sequential runs" `Quick test_many_sequential_runs;
          Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
          Alcotest.test_case "zero extra domains" `Quick test_zero_extra_domains;
        ] );
    ]
