(* Tests for the machine model: cache simulator (hand-computed hit/miss
   sequences, LRU within a set, per-processor isolation), memory
   accounting, metrics, configuration validation. *)

module Cache = Dfd_machine.Cache
module Config = Dfd_machine.Config
module Memory = Dfd_machine.Memory
module Metrics = Dfd_machine.Metrics

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* A tiny cache for hand analysis: 8-word lines, 2 sets, 2-way. *)
let tiny = { Config.line_words = 8; n_sets = 2; assoc = 2 }

let test_cache_cold_miss_then_hit () =
  let c = Cache.create tiny ~p:1 in
  checkb "cold miss" true (Cache.access c ~proc:0 ~addr:0);
  checkb "same word hits" false (Cache.access c ~proc:0 ~addr:0);
  checkb "same line hits" false (Cache.access c ~proc:0 ~addr:7);
  checkb "next line misses" true (Cache.access c ~proc:0 ~addr:8);
  checki "accesses" 4 (Cache.accesses c);
  checki "misses" 2 (Cache.misses c)

let test_cache_set_mapping () =
  let c = Cache.create tiny ~p:1 in
  (* lines 0 and 2 map to set 0; lines 1 and 3 to set 1 *)
  checkb "line0 miss" true (Cache.access c ~proc:0 ~addr:0);
  checkb "line2 miss (same set, other way)" true (Cache.access c ~proc:0 ~addr:16);
  checkb "line0 still resident" false (Cache.access c ~proc:0 ~addr:0);
  checkb "line2 still resident" false (Cache.access c ~proc:0 ~addr:16)

let test_cache_lru_eviction () =
  let c = Cache.create tiny ~p:1 in
  (* three lines in set 0 (2-way): the least recently used is evicted *)
  ignore (Cache.access c ~proc:0 ~addr:0) (* line 0 *);
  ignore (Cache.access c ~proc:0 ~addr:16) (* line 2 *);
  ignore (Cache.access c ~proc:0 ~addr:0) (* touch line 0 again: line 2 is LRU *);
  checkb "line4 evicts line2" true (Cache.access c ~proc:0 ~addr:32);
  checkb "line0 survived" false (Cache.access c ~proc:0 ~addr:0);
  checkb "line2 was evicted" true (Cache.access c ~proc:0 ~addr:16)

let test_cache_per_processor_private () =
  let c = Cache.create tiny ~p:2 in
  ignore (Cache.access c ~proc:0 ~addr:0);
  checkb "other processor misses the same line" true (Cache.access c ~proc:1 ~addr:0);
  checki "proc0 misses" 1 (Cache.proc_misses c 0);
  checki "proc1 misses" 1 (Cache.proc_misses c 1)

let test_cache_access_many () =
  let c = Cache.create tiny ~p:1 in
  let m = Cache.access_many c ~proc:0 [| 0; 1; 8; 0 |] in
  checki "two line misses" 2 m;
  checkb "rate" true (abs_float (Cache.miss_rate c -. 50.0) < 1e-6)

let test_cache_empty_rate () =
  let c = Cache.create tiny ~p:1 in
  checkb "empty rate 0" true (Cache.miss_rate c = 0.0)

let test_cache_capacity_sweep () =
  (* touching twice the cache's capacity in a loop thrashes: second pass
     misses everything (LRU on a circular scan) *)
  let c = Cache.create { Config.line_words = 8; n_sets = 4; assoc = 2 } ~p:1 in
  let cap_lines = 8 in
  for pass = 1 to 2 do
    for line = 0 to (2 * cap_lines) - 1 do
      ignore (Cache.access c ~proc:0 ~addr:(line * 8))
    done;
    ignore pass
  done;
  checki "all accesses missed" (4 * cap_lines) (Cache.misses c)

let test_config_validation () =
  checkb "p=0 rejected" true
    (try
       ignore (Config.analysis ~p:0 ());
       false
     with Invalid_argument _ -> true);
  let cfg = Config.analysis ~p:4 () in
  checkb "analysis has no cache" true (cfg.Config.cache = None);
  checkb "infinite threshold" true (Config.is_infinite_threshold cfg);
  checkb "threshold_exn raises" true
    (try
       ignore (Config.mem_threshold_exn cfg);
       false
     with Invalid_argument _ -> true);
  let c = Config.costed ~p:4 ~mem_threshold:(Some 100) () in
  checki "threshold" 100 (Config.mem_threshold_exn c);
  checki "cache bytes" (64 * 1024) (Config.cache_bytes Config.default_cache)

let test_memory_watermarks () =
  let m = Memory.create ~stack_bytes:100 in
  Memory.alloc m 50;
  Memory.thread_created m;
  Memory.thread_created m;
  checki "combined" 250 (Memory.combined_peak m);
  Memory.free m 50;
  Memory.thread_exited m;
  checki "heap peak sticky" 50 (Memory.heap_peak m);
  checki "heap current" 0 (Memory.heap_current m);
  checki "live threads" 1 (Memory.live_threads m);
  checki "threads peak" 2 (Memory.live_threads_peak m);
  Memory.alloc m 10;
  checki "gross total" 60 (Memory.total_allocated m)

let test_memory_combined_joint () =
  (* the combined peak is tracked jointly, not sum-of-peaks *)
  let m = Memory.create ~stack_bytes:1000 in
  Memory.alloc m 500;
  Memory.free m 500;
  Memory.thread_created m;
  Memory.thread_exited m;
  (* heap peak 500, stack peak 1000, but never simultaneous *)
  checki "joint peak" 1000 (Memory.combined_peak m)

let test_metrics_granularity () =
  let m = Metrics.create ~p:2 in
  Metrics.action_executed m ~proc:0 ~units:30;
  Metrics.action_executed m ~proc:1 ~units:10;
  Metrics.steal_attempt m;
  Metrics.steal_attempt m;
  Metrics.steal_success m;
  Metrics.local_dispatch m;
  Metrics.local_dispatch m;
  Metrics.local_dispatch m;
  checki "actions" 40 (Metrics.actions m);
  checki "steals" 1 (Metrics.steals m);
  checki "attempts" 2 (Metrics.steal_attempts m);
  checkb "granularity = 40/1" true (Metrics.sched_granularity m = 40.0);
  checkb "local/steal = 3" true (Metrics.local_steal_ratio m = 3.0)

let test_metrics_deque_watermark () =
  let m = Metrics.create ~p:1 in
  Metrics.deques_changed m 3;
  Metrics.deques_changed m 7;
  Metrics.deques_changed m 2;
  checki "peak deques" 7 (Metrics.deque_peak m)

let test_metrics_load_imbalance () =
  let m = Metrics.create ~p:4 in
  checkb "empty = 1.0" true (Metrics.load_imbalance m = 1.0);
  Metrics.action_executed m ~proc:0 ~units:10;
  Metrics.action_executed m ~proc:1 ~units:10;
  Metrics.action_executed m ~proc:2 ~units:10;
  Metrics.action_executed m ~proc:3 ~units:10;
  checkb "perfect balance" true (abs_float (Metrics.load_imbalance m -. 1.0) < 1e-9);
  Metrics.action_executed m ~proc:0 ~units:40;
  (* proc0 has 50 of 80 total; mean 20 -> imbalance 2.5 *)
  checkb "skewed" true (abs_float (Metrics.load_imbalance m -. 2.5) < 1e-9);
  Alcotest.(check (array int)) "per-proc copy" [| 50; 10; 10; 10 |] (Metrics.per_proc_actions m)

let test_metrics_deque_current () =
  let m = Metrics.create ~p:1 in
  Metrics.deques_changed m 5;
  Metrics.deques_changed m 2;
  checki "current" 2 (Metrics.deque_current m);
  checki "peak" 5 (Metrics.deque_peak m)

let test_metrics_zero_division () =
  let m = Metrics.create ~p:1 in
  checkb "granularity defined with no steals" true (Metrics.sched_granularity m = 0.0);
  checkb "ratio defined with no steals" true (Metrics.local_steal_ratio m = 0.0)

let () =
  Alcotest.run "machine"
    [
      ( "cache",
        [
          Alcotest.test_case "cold miss then hit" `Quick test_cache_cold_miss_then_hit;
          Alcotest.test_case "set mapping" `Quick test_cache_set_mapping;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "per-processor" `Quick test_cache_per_processor_private;
          Alcotest.test_case "access_many" `Quick test_cache_access_many;
          Alcotest.test_case "empty rate" `Quick test_cache_empty_rate;
          Alcotest.test_case "capacity thrash" `Quick test_cache_capacity_sweep;
        ] );
      ("config", [ Alcotest.test_case "validation" `Quick test_config_validation ]);
      ( "memory",
        [
          Alcotest.test_case "watermarks" `Quick test_memory_watermarks;
          Alcotest.test_case "joint combined peak" `Quick test_memory_combined_joint;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "granularity" `Quick test_metrics_granularity;
          Alcotest.test_case "deque watermark" `Quick test_metrics_deque_watermark;
          Alcotest.test_case "zero division" `Quick test_metrics_zero_division;
          Alcotest.test_case "load imbalance" `Quick test_metrics_load_imbalance;
          Alcotest.test_case "deque current" `Quick test_metrics_deque_current;
        ] );
    ]
