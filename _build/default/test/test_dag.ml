(* Tests for the computation model: actions, program DSL, 1DF analysis,
   explicit dag materialisation, random generators. *)

module Action = Dfd_dag.Action
module Prog = Dfd_dag.Prog
module Analysis = Dfd_dag.Analysis
module Dag = Dfd_dag.Dag
module Dag_gen = Dfd_dag.Dag_gen
module Prng = Dfd_structures.Prng
open Prog

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Action                                                              *)
(* ------------------------------------------------------------------ *)

let test_action_units () =
  checki "work units" 5 (Action.work_units (Action.Work 5));
  checki "alloc units" 1 (Action.work_units (Action.Alloc 100));
  checki "alloc bytes" 100 (Action.alloc_bytes (Action.Alloc 100));
  checki "free bytes" 7 (Action.free_bytes (Action.Free 7));
  checki "work free bytes" 0 (Action.free_bytes (Action.Work 3))

let test_action_depth () =
  checki "work depth" 4 (Action.depth_units (Action.Work 4));
  checki "alloc 1" 1 (Action.depth_units (Action.Alloc 1));
  checki "alloc 2" 1 (Action.depth_units (Action.Alloc 2));
  checki "alloc 1024 = 10" 10 (Action.depth_units (Action.Alloc 1024));
  checki "alloc 1025 = 11" 11 (Action.depth_units (Action.Alloc 1025));
  checki "dummy" 1 (Action.depth_units Action.Dummy);
  checki "lock" 1 (Action.depth_units (Action.Lock 0))

(* ------------------------------------------------------------------ *)
(* Analysis on hand-built programs                                     *)
(* ------------------------------------------------------------------ *)

let test_serial_chain () =
  let p = finish (work 10) in
  let s = Analysis.analyze p in
  checki "W" 10 s.work;
  checki "D" 10 s.depth;
  checki "S1" 0 s.serial_space;
  checki "threads" 1 s.threads;
  checki "live" 1 s.serial_live_threads

let test_single_fork () =
  (* fork(1) + two branches of work 3 and work 4, joined. *)
  let p = finish (par (work 3) (work 4)) in
  let s = Analysis.analyze p in
  checki "W = 1 fork + 3 + 4" 8 s.work;
  checki "D = 1 + max(3,4)" 5 s.depth;
  checki "threads" 2 s.threads;
  checki "live" 2 s.serial_live_threads

let test_nested_forks () =
  (* balanced binary tree of depth 3 over 8 leaves of work 1:
     W = 7 forks + 8 work = 15; D = 3 forks + 1 = 4. *)
  let p = finish (par_iter ~lo:0 ~hi:8 (fun _ -> work 1)) in
  let s = Analysis.analyze p in
  checki "W" 15 s.work;
  checki "D" 4 s.depth;
  checki "threads" 8 s.threads

let test_alloc_free_space () =
  let p = finish (alloc 100 >> work 1 >> free 100 >> alloc 40 >> free 40) in
  let s = Analysis.analyze p in
  checki "S1 is the watermark" 100 s.serial_space;
  checki "Sa is gross" 140 s.total_alloc;
  checki "final heap" 0 s.final_heap

let test_leak_detected () =
  let p = finish (alloc 64 >> work 1) in
  let s = Analysis.analyze p in
  checki "final heap reports the leak" 64 s.final_heap

let test_parallel_space () =
  (* Two children each alloc 50 then free; serial 1DF runs them one after
     the other, so S1 = 50, not 100. *)
  let branch = alloc 50 >> work 2 >> free 50 in
  let p = finish (par branch branch) in
  let s = Analysis.analyze p in
  checki "S1 serialises" 50 s.serial_space;
  checki "Sa" 100 s.total_alloc

let test_serial_live_threads () =
  (* A right spine of forks: root forks c1, c1 forks c2, ... each child
     forked by the previous child => serial live = depth of spine + 1. *)
  let rec spine d = if d = 0 then work 1 else par (spine (d - 1)) (work 1) in
  let s = Analysis.analyze (finish (spine 5)) in
  checki "threads" 6 s.threads;
  checki "live" 6 s.serial_live_threads

let test_depth_vs_alloc_cost () =
  let p = finish (alloc 1024 >> work 1) in
  let s = Analysis.analyze p in
  checki "alloc adds log depth" 11 s.depth;
  checki "work is unit" 2 s.work;
  checki "timed work counts the log" 11 s.timed_work

let test_malformed_join () =
  Alcotest.check_raises "naked join" (Analysis.Malformed "join without a matching fork")
    (fun () -> ignore (Analysis.analyze (Prog.Join Prog.Nil)))

let test_malformed_unjoined () =
  let p = Prog.Fork ((fun () -> Prog.Nil), Prog.Nil) in
  Alcotest.check_raises "unjoined child"
    (Analysis.Malformed "thread terminated with an unjoined child") (fun () ->
        ignore (Analysis.analyze p))

let test_iter_serial_order () =
  (* 1DF: child runs before the parent continuation. *)
  let p = finish (par (alloc 1) (alloc 2) >> alloc 3) in
  let allocs = ref [] in
  Analysis.iter_serial
    (fun a -> match a with Action.Alloc n -> allocs := n :: !allocs | _ -> ())
    p;
  Alcotest.(check (list int)) "child first" [ 1; 2; 3 ] (List.rev !allocs)

let test_seq_combinator () =
  let p = finish (seq [ work 1; work 2; work 3 ]) in
  let s = Analysis.analyze p in
  checki "W" 6 s.work;
  checki "D" 6 s.depth

let test_repeat () =
  let s = Analysis.analyze (finish (repeat 5 (work 2))) in
  checki "W" 10 s.work

let test_par_list_binary () =
  (* par_list over n fragments forks n-1 times. *)
  let s = Analysis.analyze (finish (par_list (List.init 6 (fun _ -> work 1)))) in
  checki "threads" 6 s.threads;
  checki "W = 5 forks + 6 work" 11 s.work

let test_work_zero_is_nothing () =
  let s = Analysis.analyze (finish (work 0 >> alloc 0 >> free 0)) in
  checki "no nodes" 0 s.work

(* ------------------------------------------------------------------ *)
(* Explicit dag                                                        *)
(* ------------------------------------------------------------------ *)

let test_dag_chain () =
  let g = Dag.of_prog (finish (work 4)) in
  checki "nodes" 4 (Dag.n_nodes g);
  checki "depth" 4 (Dag.depth g);
  Alcotest.(check (list int)) "single source" [ 0 ] (Dag.sources g);
  Alcotest.(check (list int)) "single sink" [ 3 ] (Dag.sinks g);
  checkb "topological ids" true (Dag.is_topological_id_order g)

let test_dag_fork_join_shape () =
  (* fork; child work 1; parent work 1; join; work 1 *)
  let g = Dag.of_prog (finish (par (work 1) (work 1) >> work 1)) in
  checki "nodes" 4 (Dag.n_nodes g);
  (* fork node 0 -> child 1 and parent 2; both -> final 3 *)
  let n0 = Dag.node g 0 in
  Alcotest.(check (list int)) "fork out-edges" [ 1; 2 ] n0.Dag.succ;
  let n3 = Dag.node g 3 in
  Alcotest.(check (list int)) "join in-edges" [ 1; 2 ] n3.Dag.pred;
  checki "depth" 3 (Dag.depth g);
  checki "threads" 2 (Dag.n_threads g)

let test_dag_threads_labelled () =
  let g = Dag.of_prog (finish (par (work 1) (work 1))) in
  let n1 = Dag.node g 1 in
  let n2 = Dag.node g 2 in
  checkb "child in different thread" true (n1.Dag.thread <> (Dag.node g 0).Dag.thread);
  checkb "parent continuation in root thread" true (n2.Dag.thread = (Dag.node g 0).Dag.thread)

let test_dag_empty_parent_segment () =
  (* parent does nothing between fork and join: synch edges must chain
     through to the next real node. *)
  let g = Dag.of_prog (finish (par (work 2) nothing >> work 1)) in
  checki "nodes" 4 (Dag.n_nodes g);
  checkb "topological" true (Dag.is_topological_id_order g);
  let last = Dag.node g 3 in
  checkb "last node has preds" true (last.Dag.pred <> [])

let test_dag_matches_analysis () =
  let rng = Prng.create 11 in
  for _ = 1 to 50 do
    let p = Dag_gen.gen_prog rng { Dag_gen.default with max_depth = 5; alloc_prob = 0.0 } in
    let s = Analysis.analyze p in
    let g = Dag.of_prog p in
    checki "work matches" s.Analysis.work (Dag.work g);
    (* without allocations, analysis depth = unit-cost dag depth *)
    checki "depth matches" s.Analysis.depth (Dag.depth g);
    checki "threads match" s.Analysis.threads (Dag.n_threads g);
    checkb "topological" true (Dag.is_topological_id_order g)
  done

let test_dag_too_large () =
  Alcotest.check_raises "node cap" (Dag.Too_large 10) (fun () ->
      ignore (Dag.of_prog ~max_nodes:10 (finish (work 100))))

let test_dag_dot () =
  let g = Dag.of_prog (finish (par (work 1) (work 1))) in
  let dot = Dag.to_dot g in
  checkb "dot has digraph" true (String.length dot > 20 && String.sub dot 0 7 = "digraph")

let test_dag_figure2_count () =
  (* The paper's Figure 2 dag: a root forking 4 children, one of which
     forks a 6th thread; we reproduce a same-shape program and check the
     thread count. *)
  let leaf = work 1 in
  let t2 = par leaf (work 1) (* t2 forks t5 *) in
  let root =
    par leaf (work 1) >> par t2 (work 1) >> par leaf (work 1) >> par leaf (work 1)
  in
  let s = Analysis.analyze (finish root) in
  checki "6 threads" 6 s.threads

(* ------------------------------------------------------------------ *)
(* Series-parallel recognition                                         *)
(* ------------------------------------------------------------------ *)

let test_sp_basics () =
  let sp prog = Dfd_dag.Sp_check.is_series_parallel (Dag.of_prog prog) in
  checkb "chain" true (sp (finish (work 5)));
  checkb "single fork" true (sp (finish (par (work 2) (work 3))));
  checkb "nested" true (sp (finish (par (par (work 1) (work 1)) (par (work 1) (work 1)))));
  checkb "fork tree" true (sp (finish (par_iter ~lo:0 ~hi:7 (fun _ -> work 1))));
  checkb "empty parent segment" true (sp (finish (par (work 2) nothing >> work 1)))

let test_sp_rejects_non_sp () =
  (* hand-build the forbidden N-shaped dag: a->c, a->d, b->d (plus b fed
     from a second source edge) — the classic non-SP witness, built
     directly on the node structure *)
  let mk id = { Dag.id; action = Action.Work 1; thread = 0; succ = []; pred = [] } in
  let a = mk 0 and b = mk 1 and c = mk 2 and d = mk 3 in
  a.Dag.succ <- [ 1; 2 ];
  b.Dag.pred <- [ 0 ];
  c.Dag.pred <- [ 0; 1 ];
  b.Dag.succ <- [ 2; 3 ];
  c.Dag.succ <- [ 3 ];
  d.Dag.pred <- [ 1; 2 ];
  (* graph: a->b, a->c, b->c, b->d, c->d : the "N" inside a diamond is NOT
     series-parallel *)
  let g = Dag.of_nodes [| a; b; c; d |] in
  checkb "N-dag rejected" false (Dfd_dag.Sp_check.is_series_parallel g)

let sp_random_prop =
  QCheck.Test.make ~name:"every generated nested-parallel dag is series-parallel" ~count:100
    QCheck.(small_int)
    (fun seed ->
       let rng = Prng.create (seed + 50) in
       let p = Dag_gen.gen_prog rng { Dag_gen.default with max_depth = 5 } in
       Dfd_dag.Sp_check.is_series_parallel (Dag.of_prog p))

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let test_gen_wellformed () =
  let rng = Prng.create 3 in
  List.iter
    (fun params ->
       for _ = 1 to 100 do
         let p = Dag_gen.gen_prog rng params in
         let s = Analysis.analyze p in
         checkb "has work" true (s.Analysis.work > 0);
         checkb "depth <= work" true (s.Analysis.depth <= s.Analysis.timed_work)
       done)
    [ Dag_gen.default; Dag_gen.allocation_heavy; Dag_gen.fork_heavy ]

let test_gen_deterministic () =
  let p1 = Dag_gen.gen_prog (Prng.create 42) Dag_gen.default in
  let p2 = Dag_gen.gen_prog (Prng.create 42) Dag_gen.default in
  let s1 = Analysis.analyze p1 and s2 = Analysis.analyze p2 in
  checki "same work" s1.Analysis.work s2.Analysis.work;
  checki "same depth" s1.Analysis.depth s2.Analysis.depth;
  checki "same space" s1.Analysis.serial_space s2.Analysis.serial_space

let test_gen_fork_heavy_parallel () =
  let rng = Prng.create 9 in
  let p = Dag_gen.gen_prog rng Dag_gen.fork_heavy in
  let s = Analysis.analyze p in
  checkb "spawns threads" true (s.Analysis.threads > 4)

let analysis_consistency_prop =
  QCheck.Test.make ~name:"analysis invariants on random programs" ~count:200
    QCheck.(small_int)
    (fun seed ->
       let rng = Prng.create seed in
       let p = Dag_gen.gen_prog rng Dag_gen.default in
       let s = Analysis.analyze p in
       s.Analysis.depth <= s.Analysis.timed_work
       && s.Analysis.work <= s.Analysis.timed_work
       && s.Analysis.serial_space <= s.Analysis.total_alloc
       && s.Analysis.final_heap <= s.Analysis.serial_space
       && s.Analysis.serial_live_threads <= s.Analysis.threads
       && s.Analysis.total_free <= s.Analysis.total_alloc)

let dag_analysis_agree_prop =
  QCheck.Test.make ~name:"dag and analysis agree (no allocs)" ~count:100
    QCheck.(small_int)
    (fun seed ->
       let rng = Prng.create seed in
       let p =
         Dag_gen.gen_prog rng { Dag_gen.default with alloc_prob = 0.0; max_depth = 6 }
       in
       let s = Analysis.analyze p in
       let g = Dag.of_prog p in
       Dag.work g = s.Analysis.work
       && Dag.depth g = s.Analysis.depth
       && Dag.n_threads g = s.Analysis.threads
       && Dag.is_topological_id_order g)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "dag"
    [
      ( "action",
        [
          Alcotest.test_case "units" `Quick test_action_units;
          Alcotest.test_case "depth" `Quick test_action_depth;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "serial chain" `Quick test_serial_chain;
          Alcotest.test_case "single fork" `Quick test_single_fork;
          Alcotest.test_case "nested forks" `Quick test_nested_forks;
          Alcotest.test_case "alloc/free space" `Quick test_alloc_free_space;
          Alcotest.test_case "leak detected" `Quick test_leak_detected;
          Alcotest.test_case "parallel space serialises" `Quick test_parallel_space;
          Alcotest.test_case "serial live threads" `Quick test_serial_live_threads;
          Alcotest.test_case "alloc depth cost" `Quick test_depth_vs_alloc_cost;
          Alcotest.test_case "malformed join" `Quick test_malformed_join;
          Alcotest.test_case "malformed unjoined" `Quick test_malformed_unjoined;
          Alcotest.test_case "1DF order" `Quick test_iter_serial_order;
          Alcotest.test_case "seq" `Quick test_seq_combinator;
          Alcotest.test_case "repeat" `Quick test_repeat;
          Alcotest.test_case "par_list binary" `Quick test_par_list_binary;
          Alcotest.test_case "zero-size ops vanish" `Quick test_work_zero_is_nothing;
        ]
        @ qsuite [ analysis_consistency_prop ] );
      ( "dag",
        [
          Alcotest.test_case "chain" `Quick test_dag_chain;
          Alcotest.test_case "fork-join shape" `Quick test_dag_fork_join_shape;
          Alcotest.test_case "thread labels" `Quick test_dag_threads_labelled;
          Alcotest.test_case "empty parent segment" `Quick test_dag_empty_parent_segment;
          Alcotest.test_case "matches analysis" `Quick test_dag_matches_analysis;
          Alcotest.test_case "size cap" `Quick test_dag_too_large;
          Alcotest.test_case "dot export" `Quick test_dag_dot;
          Alcotest.test_case "figure 2 shape" `Quick test_dag_figure2_count;
        ]
        @ qsuite [ dag_analysis_agree_prop ] );
      ( "series-parallel",
        [
          Alcotest.test_case "combinator dags are SP" `Quick test_sp_basics;
          Alcotest.test_case "N-dag rejected" `Quick test_sp_rejects_non_sp;
        ]
        @ qsuite [ sp_random_prop ] );
      ( "gen",
        [
          Alcotest.test_case "wellformed" `Quick test_gen_wellformed;
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "fork heavy is parallel" `Quick test_gen_fork_heavy_parallel;
        ] );
    ]
