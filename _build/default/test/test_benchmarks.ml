(* Tests for the benchmark programs: every benchmark must be a well-formed
   nested-parallel program with the structural properties the paper's
   workloads have (parallelism, allocation balance, granularity knobs), and
   must execute correctly under every scheduler. *)

module Analysis = Dfd_dag.Analysis
module W = Dfd_benchmarks.Workload
module R = Dfd_benchmarks.Registry
module Engine = Dfdeques_core.Engine
module Config = Dfd_machine.Config

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let analyze (b : W.t) = Analysis.analyze (b.W.prog ())

(* ------------------------------------------------------------------ *)
(* Generic structural properties for every benchmark                   *)
(* ------------------------------------------------------------------ *)

let test_all_wellformed () =
  List.iter
    (fun grain ->
       List.iter
         (fun b ->
            let s = analyze b in
            checkb (b.W.name ^ " has work") true (s.Analysis.work > 0);
            checkb (b.W.name ^ " depth positive") true (s.Analysis.depth > 0);
            checkb
              (b.W.name ^ " frees at most what it allocates")
              true
              (s.Analysis.total_free <= s.Analysis.total_alloc))
         (R.all grain))
    [ W.Medium; W.Fine ]

let test_all_parallel_enough () =
  (* every table benchmark must have parallelism W/D >= 10 at fine grain
     (otherwise the 8-processor speedup comparisons are meaningless) *)
  List.iter
    (fun b ->
       let s = analyze b in
       let par = float_of_int s.Analysis.work /. float_of_int s.Analysis.depth in
       if par < 10.0 then
         Alcotest.failf "%s parallelism %.1f < 10 (W=%d D=%d)" b.W.name par s.Analysis.work
           s.Analysis.depth)
    (R.table_benchmarks W.Fine)

let test_fine_has_more_threads () =
  List.iter2
    (fun bm bf ->
       let sm = analyze bm and sf = analyze bf in
       checkb
         (bm.W.name ^ " fine grain creates more threads")
         true
         (sf.Analysis.threads > sm.Analysis.threads))
    (R.table_benchmarks W.Medium) (R.table_benchmarks W.Fine)

let test_deterministic_construction () =
  List.iter
    (fun b ->
       let s1 = analyze b and s2 = analyze b in
       checki (b.W.name ^ " same W") s1.Analysis.work s2.Analysis.work;
       checki (b.W.name ^ " same D") s1.Analysis.depth s2.Analysis.depth;
       checki (b.W.name ^ " same S1") s1.Analysis.serial_space s2.Analysis.serial_space)
    (R.all W.Fine)

let test_registry_lookup () =
  checkb "find is case-insensitive" true
    ((R.find "densemm" W.Fine).W.name = "DenseMM");
  checkb "unknown raises" true
    (try
       ignore (R.find "nosuch" W.Fine);
       false
     with Not_found -> true);
  checki "eleven benchmarks" 11 (List.length R.names)

let test_all_run_under_all_schedulers () =
  (* smoke execution of every benchmark x scheduler in analysis mode
     (smaller variants to keep the suite fast) *)
  let small =
    [
      Dfd_benchmarks.Dense_mm.bench ~n:32 W.Fine;
      Dfd_benchmarks.Sparse_mvm.bench ~rows:300 W.Fine;
      Dfd_benchmarks.Fftw_like.bench ~n:2048 W.Fine;
      Dfd_benchmarks.Volume_render.bench ~vol:16 ~img:16 W.Fine;
      Dfd_benchmarks.Fmm.bench ~levels:3 W.Fine;
      Dfd_benchmarks.Barnes_hut.bench ~bodies:256 W.Fine;
      Dfd_benchmarks.Decision_tree.bench ~instances:2000 W.Fine;
      Dfd_benchmarks.Synthetic.bench ~levels:8 W.Fine;
    ]
  in
  List.iter
    (fun b ->
       let s = analyze b in
       List.iter
         (fun sched ->
            let cfg = Config.analysis ~p:4 ~mem_threshold:(Some 10_000) () in
            let r = Engine.run ~sched cfg (b.W.prog ()) in
            checkb (b.W.name ^ " work conserved") true (r.Engine.work >= s.Analysis.work);
            checki (b.W.name ^ " leak equality") s.Analysis.final_heap r.Engine.final_heap)
         [ `Dfdeques; `Ws; `Adf; `Fifo ])
    small

(* ------------------------------------------------------------------ *)
(* Per-benchmark structural checks                                      *)
(* ------------------------------------------------------------------ *)

let test_dense_mm_shape () =
  let s8 = Analysis.analyze (Dfd_benchmarks.Dense_mm.prog ~n:32 ~leaf:8 ()) in
  let s4 = Analysis.analyze (Dfd_benchmarks.Dense_mm.prog ~n:32 ~leaf:4 ()) in
  (* halving the leaf multiplies thread count by ~8 (3-d recursion) *)
  checkb "8x threads at half leaf" true
    (s4.Analysis.threads > 6 * s8.Analysis.threads);
  (* temporaries balance: no leak *)
  checki "no leak" 0 s8.Analysis.final_heap;
  (* the top temporary dominates S1 *)
  checkb "S1 >= top temp" true (s8.Analysis.serial_space >= 32 * 32 * 8)

let test_dense_mm_rejects_bad_args () =
  Alcotest.check_raises "n < 2*leaf"
    (Invalid_argument "Dense_mm.prog: n must be >= 2*leaf") (fun () ->
        ignore (Dfd_benchmarks.Dense_mm.prog ~n:8 ~leaf:8 ()))

let test_sparse_shape () =
  let s = Analysis.analyze (Dfd_benchmarks.Sparse_mvm.prog ~rows:100 ~nnz_per_row:8 ~block:10 ~seed:1 ()) in
  checki "no heap" 0 s.Analysis.total_alloc;
  checki "10 blocks -> 10 threads" 10 s.Analysis.threads;
  checkb "touches issued" true (s.Analysis.touches > 100 * 8)

let test_fft_shape () =
  let s = Analysis.analyze (Dfd_benchmarks.Fftw_like.prog ~n:1024 ~leaf:64 ()) in
  (* twiddle table allocated and freed *)
  checki "balanced" 0 s.Analysis.final_heap;
  checki "twiddle table" (1024 * 8) s.Analysis.total_alloc;
  (* threads ~ 2*(n/leaf) from the recursion + combine loops *)
  checkb "threads" true (s.Analysis.threads > 16)

let test_fmm_shape () =
  let s = Analysis.analyze (Dfd_benchmarks.Fmm.prog ~levels:3 ~terms:10 ~serial_cutoff:2 ()) in
  (* every expansion allocated in upward is freed in downward *)
  checki "balanced" 0 s.Analysis.final_heap;
  let cells = 1 + 4 + 16 + 64 in
  checkb "allocates all expansions + scratch" true
    (s.Analysis.total_alloc >= cells * 10 * 8)

let test_barnes_hut_lock_balance () =
  (* every Lock is matched by an Unlock in serial order *)
  let prog = Dfd_benchmarks.Barnes_hut.prog ~bodies:128 ~block:16 ~tree_only:true () in
  let depth = ref 0 and bad = ref false in
  Analysis.iter_serial
    (fun a ->
       match a with
       | Dfd_dag.Action.Lock _ -> incr depth
       | Dfd_dag.Action.Unlock _ ->
         decr depth;
         if !depth < 0 then bad := true
       | _ -> ())
    prog;
  checkb "locks balanced" true ((not !bad) && !depth = 0)

let test_decision_tree_irregular () =
  let s = Analysis.analyze (Dfd_benchmarks.Decision_tree.prog ~instances:4000 ~cutoff:100 ~seed:7 ()) in
  checki "partitions balanced" 0 s.Analysis.final_heap;
  checkb "irregular tree forks plenty" true (s.Analysis.threads > 30)

let test_synthetic_geometric () =
  let small = Analysis.analyze (Dfd_benchmarks.Synthetic.prog ~levels:6 ~mem0:1024 ~gran0:64 ~seed:1 ()) in
  let big = Analysis.analyze (Dfd_benchmarks.Synthetic.prog ~levels:10 ~mem0:1024 ~gran0:64 ~seed:1 ()) in
  (* each internal node forks exactly one child (binary par), so threads =
     1 root + internal nodes = 2^(levels-1) *)
  checki "threads = 2^(levels-1)" (1 lsl 5) small.Analysis.threads;
  checkb "deeper -> more work" true (big.Analysis.work > small.Analysis.work);
  checki "balanced" 0 small.Analysis.final_heap

let test_pipeline_all_schedulers () =
  (* heavy condvar suspension must not deadlock any scheduler, blocking or
     spinning locks *)
  let b = Dfd_benchmarks.Pipeline.bench ~stages:4 ~items:16 W.Fine in
  let s = analyze b in
  List.iter
    (fun sched ->
       let r = Engine.run ~sched (Config.analysis ~p:4 ()) (b.W.prog ()) in
       checkb "work conserved" true (r.Engine.work >= s.Analysis.work))
    [ `Dfdeques; `Ws; `Adf; `Fifo ];
  (* stage count below 2 is rejected *)
  checkb "rejects 1 stage" true
    (try
       ignore (Dfd_benchmarks.Pipeline.prog ~stages:1 ~items:1 ~work_per_item:1 ());
       false
     with Invalid_argument _ -> true)

let test_lower_bound_serial_space () =
  (* the heart of Theorem 4.5: S1 of the adversarial dag is exactly A *)
  List.iter
    (fun (p, d, a) ->
       let s = Analysis.analyze (Dfd_benchmarks.Lower_bound.prog ~p ~d ~a_bytes:a ()) in
       checki
         (Printf.sprintf "S1 = A (p=%d d=%d)" p d)
         (if p >= 4 then a else 0)
         s.Analysis.serial_space;
       checki "balanced" 0 s.Analysis.final_heap)
    [ (4, 8, 64); (8, 16, 256); (16, 64, 1024); (2, 8, 64) ]

let test_lower_bound_blowup () =
  (* DFDeques(K=A) on p processors materialises ~p/2 live allocations *)
  let d = 32 and a = 512 in
  List.iter
    (fun p ->
       let prog = Dfd_benchmarks.Lower_bound.prog ~p ~d ~a_bytes:a () in
       let cfg = Config.analysis ~p ~mem_threshold:(Some a) () in
       let r = Engine.run ~sched:`Dfdeques cfg prog in
       checkb
         (Printf.sprintf "space grows with p=%d" p)
         true
         (r.Engine.heap_peak >= a * p / 4))
    [ 4; 8; 16 ]

let () =
  Alcotest.run "benchmarks"
    [
      ( "generic",
        [
          Alcotest.test_case "wellformed" `Quick test_all_wellformed;
          Alcotest.test_case "parallel enough" `Quick test_all_parallel_enough;
          Alcotest.test_case "fine > medium threads" `Quick test_fine_has_more_threads;
          Alcotest.test_case "deterministic" `Quick test_deterministic_construction;
          Alcotest.test_case "registry" `Quick test_registry_lookup;
          Alcotest.test_case "run under all schedulers" `Quick
            test_all_run_under_all_schedulers;
        ] );
      ( "specific",
        [
          Alcotest.test_case "dense mm shape" `Quick test_dense_mm_shape;
          Alcotest.test_case "dense mm args" `Quick test_dense_mm_rejects_bad_args;
          Alcotest.test_case "sparse shape" `Quick test_sparse_shape;
          Alcotest.test_case "fft shape" `Quick test_fft_shape;
          Alcotest.test_case "fmm shape" `Quick test_fmm_shape;
          Alcotest.test_case "barnes-hut locks" `Quick test_barnes_hut_lock_balance;
          Alcotest.test_case "decision tree" `Quick test_decision_tree_irregular;
          Alcotest.test_case "synthetic geometric" `Quick test_synthetic_geometric;
          Alcotest.test_case "pipeline" `Quick test_pipeline_all_schedulers;
          Alcotest.test_case "lower bound S1" `Quick test_lower_bound_serial_space;
          Alcotest.test_case "lower bound blowup" `Quick test_lower_bound_blowup;
        ] );
    ]
