test/test_experiments.ml: Alcotest Array Dfd_benchmarks Dfd_experiments Dfd_machine Dfdeques_core List String
