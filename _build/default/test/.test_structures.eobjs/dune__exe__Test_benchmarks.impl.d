test/test_benchmarks.ml: Alcotest Dfd_benchmarks Dfd_dag Dfd_machine Dfdeques_core List Printf
