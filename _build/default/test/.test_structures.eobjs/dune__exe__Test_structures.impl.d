test/test_structures.ml: Alcotest Array Dfd_structures List Option QCheck QCheck_alcotest String
