test/test_machine.ml: Alcotest Dfd_machine
