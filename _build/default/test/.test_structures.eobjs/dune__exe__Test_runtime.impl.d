test/test_runtime.ml: Alcotest Array Dfd_runtime Dfd_structures Fun List Printf
