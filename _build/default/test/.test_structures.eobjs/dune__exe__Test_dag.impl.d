test/test_dag.ml: Alcotest Dfd_dag Dfd_structures List QCheck QCheck_alcotest String
