test/test_core.ml: Alcotest Dfd_dag Dfd_machine Dfd_structures Dfdeques_core Hashtbl List QCheck QCheck_alcotest
