(* Building a custom workload and machine from scratch — the full public
   API surface in one file:

     - the Prog DSL with locks,
     - custom machine configuration (cache geometry, cost knobs),
     - per-run metrics, and the Lemma 3.1 invariant checker.

     dune exec examples/custom_simulation.exe *)

module Prog = Dfd_dag.Prog
open Prog

(* A tiny producer/consumer pipeline protected by one mutex: [stages]
   parallel workers each acquire the lock, update the shared accumulator
   region, and do private work.  Demonstrates the blocking-synchronisation
   extension (Section 5). *)
let pipeline ~stages ~rounds =
  let shared_mutex = 0 in
  let worker i =
    repeat rounds
      (work (5 + i)
       >> critical shared_mutex (touch [| 0; 1; 2 |] >> work 2)
       >> alloc 256 >> work 3 >> free 256)
  in
  finish (par_iter ~lo:0 ~hi:stages worker)

let () =
  let program = pipeline ~stages:12 ~rounds:40 in
  let s = Dfd_dag.Analysis.analyze program in
  Format.printf "pipeline: W=%d D=%d S1=%dB threads=%d@.@." s.Dfd_dag.Analysis.work
    s.Dfd_dag.Analysis.depth s.Dfd_dag.Analysis.serial_space s.Dfd_dag.Analysis.threads;

  (* A machine with a tiny direct-mapped-ish cache and expensive misses. *)
  let cache = { Dfd_machine.Config.line_words = 8; n_sets = 64; assoc = 2 } in
  let cfg =
    Dfd_machine.Config.costed ~p:4 ~mem_threshold:(Some 1_024) ~cache ~miss_penalty:20 ()
  in
  Format.printf "machine: %a (cache %dB)@.@." Dfd_machine.Config.pp cfg
    (Dfd_machine.Config.cache_bytes cache);

  (* Note: Lemma 3.1's ordering invariant is stated for pure nested-parallel
     programs; mutex wakeups (placed on the waking processor's deque, as in
     the paper's own Pthreads implementation) deliberately approximate it,
     so check_invariants stays off for lock-using programs. *)
  let r = Dfdeques_core.Engine.run ~sched:`Dfdeques cfg program in
  Format.printf "%a@.@." Dfdeques_core.Engine.pp_result r;

  (* Spin locks (the Cilk-style variant of Figure 17) on the same program. *)
  let r_spin = Dfdeques_core.Engine.run ~sched:`Ws ~spin_locks:true cfg program in
  Format.printf "with spin-waiting work stealing:@.%a@." Dfdeques_core.Engine.pp_result r_spin
