(* Quickstart: write a nested-parallel program with the Prog DSL, analyze
   it, and run it under each scheduler.

     dune exec examples/quickstart.exe

   The program is a toy parallel mergesort skeleton: each level allocates a
   merge buffer, sorts the halves in parallel, "merges" (works + touches),
   and frees the buffer.  Watch how the FIFO scheduler holds many more
   threads live, and how DFDeques' memory sits between the depth-first
   scheduler's and work stealing's. *)

module Prog = Dfd_dag.Prog
open Prog

(* msort over [len] elements stored at [base] (word addresses). *)
let rec msort ~base ~len =
  if len <= 256 then
    (* serial base case: an insertion sort touching its block *)
    Dfd_benchmarks.Workload.touch_block ~repeat:2 ~base ~words:len ~stride:8 ()
    >> work (len / 2)
  else begin
    let half = len / 2 in
    alloc (len * 8) (* merge buffer *)
    >> par (msort ~base ~len:half) (msort ~base:(base + half) ~len:half)
    >> Dfd_benchmarks.Workload.touch_block ~base ~words:len ~stride:8 ()
    >> work (len / 4) (* the merge pass *)
    >> free (len * 8)
  end

let program = finish (msort ~base:0 ~len:16384)

let () =
  (* Static analysis: work, depth, serial space — all in one 1DF pass. *)
  let s = Dfd_dag.Analysis.analyze program in
  Format.printf "--- static analysis ---@.%a@.@." Dfd_dag.Analysis.pp_summary s;

  (* Run on a simulated 8-processor machine with the paper's K = 50kB. *)
  let cfg = Dfd_machine.Config.costed ~p:8 ~mem_threshold:(Some 50_000) () in
  List.iter
    (fun sched ->
       let r = Dfdeques_core.Engine.run ~sched cfg program in
       Format.printf "--- %s ---@.%a@.@."
         (Dfdeques_core.Engine.sched_name sched)
         Dfdeques_core.Engine.pp_result r)
    [ `Dfdeques; `Ws; `Adf; `Fifo ]
