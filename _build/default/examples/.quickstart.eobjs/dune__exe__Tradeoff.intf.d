examples/tradeoff.mli:
