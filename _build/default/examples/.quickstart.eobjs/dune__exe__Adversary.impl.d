examples/adversary.ml: Dfd_benchmarks Dfd_dag Dfd_machine Dfd_structures Dfdeques_core Format List
