examples/quickstart.ml: Dfd_benchmarks Dfd_dag Dfd_machine Dfdeques_core Format List
