examples/adversary.mli:
