examples/custom_simulation.ml: Dfd_dag Dfd_machine Dfdeques_core Format
