examples/quickstart.mli:
