examples/tradeoff.ml: Array Dfd_benchmarks Dfd_machine Dfd_structures Dfdeques_core Format List Printf Sys
