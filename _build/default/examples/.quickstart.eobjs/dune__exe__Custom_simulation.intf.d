examples/custom_simulation.mli:
