examples/native_pool.ml: Array Dfd_runtime List Printf Unix
