(* The Theorem 4.5 adversarial dag (Figure 10), hands-on: the serial
   schedule needs one A-sized allocation at a time, but DFDeques(K = A) on
   p processors materialises Theta(p) of them at once — and work stealing
   (DFDeques with K = infinity) does the same, demonstrating the
   Omega(p * S1) lower bound of Corollary 4.6.

     dune exec examples/adversary.exe *)

module Engine = Dfdeques_core.Engine

let () =
  let d = 64 and a_bytes = 4096 in
  Format.printf "Figure 10 dag: d=%d spine threads per subgraph, A=%dB@.@." d a_bytes;
  Format.printf "%4s  %12s  %14s  %14s@." "p" "S1" "DFDeques(K=A)" "WS (K=inf)";
  List.iter
    (fun p ->
       let prog () = Dfd_benchmarks.Lower_bound.prog ~p ~d ~a_bytes () in
       let s1 = (Dfd_dag.Analysis.analyze (prog ())).Dfd_dag.Analysis.serial_space in
       let run sched k =
         let cfg = Dfd_machine.Config.analysis ~p ~mem_threshold:k () in
         (Engine.run ~sched cfg (prog ())).Engine.heap_peak
       in
       Format.printf "%4d  %12s  %14s  %14s@." p
         (Dfd_structures.Stats.fmt_bytes s1)
         (Dfd_structures.Stats.fmt_bytes (run `Dfdeques (Some a_bytes)))
         (Dfd_structures.Stats.fmt_bytes (run `Ws None)))
    [ 2; 4; 8; 16; 32; 64 ];
  Format.printf
    "@.S1 is flat; both schedulers' space grows linearly with p, exactly the@.\
     Omega(min(K,S1) * p) per-instant blow-up the theorem constructs.@."
