(* The space/time/granularity trade-off, live (Figure 15 in miniature):
   sweep the memory threshold K for one benchmark and watch DFDeques slide
   from depth-first behaviour (low K: low memory, fine-grained scheduling)
   to work-stealing behaviour (high K: more memory, coarse steals).

     dune exec examples/tradeoff.exe -- [benchmark]            *)

module Engine = Dfdeques_core.Engine
module W = Dfd_benchmarks.Workload

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "DecisionTree" in
  let b =
    try Dfd_benchmarks.Registry.find name W.Fine
    with Not_found ->
      Printf.eprintf "unknown benchmark %s\n" name;
      exit 2
  in
  Format.printf "sweeping K for %s (%s), p=8@.@." b.W.name b.W.description;
  Format.printf "%10s  %10s  %10s  %12s  %8s@." "K" "time" "heap peak" "granularity"
    "steals";
  let ws = Engine.run ~sched:`Ws (Dfd_machine.Config.costed ~p:8 ()) (b.W.prog ()) in
  List.iter
    (fun k ->
       let cfg = Dfd_machine.Config.costed ~p:8 ~mem_threshold:(Some k) () in
       let r = Engine.run ~sched:`Dfdeques cfg (b.W.prog ()) in
       Format.printf "%10d  %10d  %10s  %12.2f  %8d@." k r.Engine.time
         (Dfd_structures.Stats.fmt_bytes r.Engine.heap_peak)
         r.Engine.local_steal_ratio r.Engine.steals)
    [ 500; 2_000; 8_000; 32_000; 128_000; 512_000 ];
  Format.printf "%10s  %10d  %10s  %12s  %8d   <- pure work stealing@." "WS" ws.Engine.time
    (Dfd_structures.Stats.fmt_bytes ws.Engine.heap_peak)
    "-" ws.Engine.steals
