(* Tests for the real Domains-based fork-join pool: correctness of results
   under both deque disciplines, exception propagation, the quota
   mechanism, and determinism-independent invariants.  (This container has
   one core, so these are correctness tests, not speedup tests — the pool
   still runs real concurrent domains.) *)

module Pool = Dfd_runtime.Pool
module Watchdog = Dfd_fault.Watchdog
module Stats = Dfd_structures.Stats

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* Extra worker domains derived from the machine but capped at 4 workers
   total: oversubscribing a small CI container is the main source of
   flaky slow runs, and these are correctness tests — beyond a handful
   of workers they exercise nothing new. *)
let default_domains = min 4 (max 2 (Domain.recommended_domain_count ())) - 1

let with_pool ?(domains = default_domains) policy f =
  let pool = Pool.create ~domains policy in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* Bounded spin-wait: poll [cond] under a wall-clock no-progress watchdog
   instead of looping forever — if the pool wedges, the test fails with
   its diagnostic snapshot rather than hanging the whole suite. *)
let spin_until ?(limit_ms = 20_000) ~snapshot cond =
  let wd = Watchdog.create ~limit:limit_ms ~snapshot () in
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if not (cond ()) then begin
      Watchdog.check wd ~now:(int_of_float ((Unix.gettimeofday () -. t0) *. 1000.));
      Domain.cpu_relax ();
      go ()
    end
  in
  go ()

let policies = [ (Pool.Work_stealing, "WS"); (Pool.Dfdeques { quota = 4096 }, "DFD") ]

let rec fib n =
  if n < 2 then n
  else begin
    let a, b = Pool.fork_join (fun () -> fib (n - 1)) (fun () -> fib (n - 2)) in
    a + b
  end

let test_fib () =
  List.iter
    (fun (policy, name) ->
       with_pool policy (fun pool ->
           checki (name ^ " fib 20") 6765 (Pool.run pool (fun () -> fib 20))))
    policies

let test_fork_join_order () =
  List.iter
    (fun (policy, name) ->
       with_pool policy (fun pool ->
           let a, b =
             Pool.run pool (fun () -> Pool.fork_join (fun () -> "left") (fun () -> "right"))
           in
           Alcotest.(check string) (name ^ " left") "left" a;
           Alcotest.(check string) (name ^ " right") "right" b))
    policies

let test_parallel_for_sum () =
  List.iter
    (fun (policy, name) ->
       with_pool policy (fun pool ->
           let n = 10_000 in
           let acc = Array.make n 0 in
           Pool.run pool (fun () -> Pool.parallel_for ~lo:0 ~hi:n (fun i -> acc.(i) <- i));
           let total = Array.fold_left ( + ) 0 acc in
           checki (name ^ " sum") (n * (n - 1) / 2) total))
    policies

let test_parallel_map () =
  with_pool Pool.Work_stealing (fun pool ->
      let input = Array.init 1000 (fun i -> i) in
      let out = Pool.run pool (fun () -> Pool.parallel_map (fun x -> x * x) input) in
      checkb "squares" true (Array.for_all (fun _ -> true) out);
      checki "spot" (37 * 37) out.(37);
      checki "len" 1000 (Array.length out))

let test_empty_ranges () =
  with_pool Pool.Work_stealing (fun pool ->
      Pool.run pool (fun () -> Pool.parallel_for ~lo:5 ~hi:5 (fun _ -> assert false));
      checki "empty map" 0 (Array.length (Pool.run pool (fun () -> Pool.parallel_map succ [||]))))

let test_parallel_reduce () =
  List.iter
    (fun (policy, name) ->
       with_pool policy (fun pool ->
           let n = 5000 in
           let total =
             Pool.run pool (fun () ->
                 Pool.parallel_reduce ~zero:0 ~op:( + ) ~lo:0 ~hi:n (fun i -> i))
           in
           checki (name ^ " reduce") (n * (n - 1) / 2) total;
           let mx =
             Pool.run pool (fun () ->
                 Pool.parallel_reduce ~zero:min_int ~op:max ~lo:0 ~hi:n (fun i ->
                     (i * 7919) mod 1000))
           in
           checki (name ^ " max reduce") 999 mx))
    policies

let test_parallel_prefix_sum () =
  with_pool Pool.Work_stealing (fun pool ->
      let arr = Array.init 4000 (fun i -> i + 1) in
      let out = Pool.run pool (fun () -> Pool.parallel_prefix_sum ~zero:0 ~op:( + ) arr) in
      checki "first is zero" 0 out.(0);
      checki "exclusive prefix" (1 + 2 + 3) out.(3);
      checki "last" (3999 * 4000 / 2) out.(3999);
      (* reference check at random points *)
      List.iter
        (fun i ->
           let expect = i * (i + 1) / 2 in
           checki (Printf.sprintf "prefix %d" i) expect out.(i))
        [ 1; 17; 1023; 1024; 1025; 2500 ];
      checki "empty" 0 (Array.length (Pool.run pool (fun () -> Pool.parallel_prefix_sum ~zero:0 ~op:( + ) [||]))))

let test_psort_correct () =
  List.iter
    (fun (policy, name) ->
       with_pool policy (fun pool ->
           let rng = Dfd_structures.Prng.create 31 in
           List.iter
             (fun n ->
                let arr = Array.init n (fun _ -> Dfd_structures.Prng.int rng 10_000) in
                let expect = Array.copy arr in
                Array.sort compare expect;
                Pool.run pool (fun () -> Dfd_runtime.Psort.sort ~cutoff:64 ~cmp:compare arr);
                checkb
                  (Printf.sprintf "%s psort n=%d" name n)
                  true (arr = expect))
             [ 0; 1; 2; 63; 64; 65; 1000; 10_000 ]))
    policies

let test_psort_already_sorted_and_reverse () =
  with_pool Pool.Work_stealing (fun pool ->
      let n = 5000 in
      let asc = Array.init n (fun i -> i) in
      Pool.run pool (fun () -> Dfd_runtime.Psort.sort ~cutoff:128 ~cmp:compare asc);
      checkb "ascending stays sorted" true (Dfd_runtime.Psort.sorted ~cmp:compare asc);
      let desc = Array.init n (fun i -> n - i) in
      Pool.run pool (fun () -> Dfd_runtime.Psort.sort ~cutoff:128 ~cmp:compare desc);
      checkb "descending gets sorted" true (Dfd_runtime.Psort.sorted ~cmp:compare desc);
      checki "still a permutation" (n * (n + 1) / 2) (Array.fold_left ( + ) 0 desc))

let test_psort_duplicates_and_custom_cmp () =
  with_pool (Pool.Dfdeques { quota = 8192 }) (fun pool ->
      let arr = Array.init 3000 (fun i -> i mod 7) in
      Pool.run pool (fun () -> Dfd_runtime.Psort.sort ~cutoff:100 ~cmp:compare arr);
      checkb "duplicates sorted" true (Dfd_runtime.Psort.sorted ~cmp:compare arr);
      (* descending comparator *)
      let arr2 = Array.init 2000 (fun i -> (i * 7919) mod 500) in
      let cmp a b = compare b a in
      Pool.run pool (fun () -> Dfd_runtime.Psort.sort ~cutoff:100 ~cmp arr2);
      checkb "descending order" true (Dfd_runtime.Psort.sorted ~cmp arr2))

exception Boom

let test_exception_propagation () =
  List.iter
    (fun (policy, name) ->
       with_pool policy (fun pool ->
           checkb (name ^ " child exn") true
             (try
                ignore
                  (Pool.run pool (fun () ->
                       Pool.fork_join (fun () -> raise Boom) (fun () -> 1)));
                false
              with Boom -> true);
           checkb (name ^ " parent exn") true
             (try
                ignore
                  (Pool.run pool (fun () ->
                       Pool.fork_join (fun () -> 1) (fun () -> raise Boom)));
                false
              with Boom -> true);
           (* the pool survives exceptions *)
           checki (name ^ " still works") 55 (Pool.run pool (fun () -> fib 10))))
    policies

let test_nested_run_rejected () =
  with_pool Pool.Work_stealing (fun pool ->
      checkb "nested run fails" true
        (try
           Pool.run pool (fun () -> Pool.run pool (fun () -> ()));
           false
         with Pool.Nested_run -> true);
      (* the failed nested call must not poison the outer context *)
      checki "outer run still works" 55 (Pool.run pool (fun () -> fib 10)))

let test_fork_join_outside_run_rejected () =
  checkb "fork_join outside run" true
    (try
       ignore (Pool.fork_join (fun () -> 1) (fun () -> 2));
       false
     with Pool.Not_in_pool -> true)

let test_alloc_hint_quota () =
  with_pool (Pool.Dfdeques { quota = 100 }) (fun pool ->
      Pool.run pool (fun () ->
          Pool.parallel_for ~lo:0 ~hi:64 (fun _ -> Pool.alloc_hint 64));
      let giveups = List.assoc "quota_giveups" (Pool.stats pool) in
      checkb "quota giveups occur under DFDeques" true (giveups >= 0))

let test_rank_error_instrumented () =
  with_pool (Pool.Dfdeques { quota = 2048 }) (fun pool ->
      ignore (Pool.run pool (fun () -> fib 16));
      let c = Pool.counters pool in
      let h = Pool.rank_error pool in
      (* one rank-error sample per successful steal, and the membership
         counters reconcile: every reaped deque was first inserted *)
      checki "rank samples = steals" c.Pool.steals (Stats.Histogram.count h);
      checkb "inserts cover removes" true (c.Pool.r_inserts >= c.Pool.r_removes);
      checkb "removes non-negative" true (c.Pool.r_removes >= 0));
  with_pool Pool.Work_stealing (fun pool ->
      ignore (Pool.run pool (fun () -> fib 12));
      checkb "WS records no rank error" true
        (Stats.Histogram.is_empty (Pool.rank_error pool)))

let test_stats_counters () =
  with_pool Pool.Work_stealing (fun pool ->
      ignore (Pool.run pool (fun () -> fib 15));
      let stats = Pool.stats pool in
      checkb "tasks ran" true (List.assoc "tasks_run" stats > 0);
      (* one alist entry per field of the [Pool.counters] record *)
      checkb "all counters present" true (List.length stats = 11);
      checki "WS runs zero sync ops" 0 (List.assoc "sync_ops" stats))

let test_heartbeat_monotonic () =
  List.iter
    (fun (policy, name) ->
       with_pool policy (fun pool ->
           checki (name ^ " heartbeat starts at 0") 0 (Pool.heartbeat pool);
           ignore (Pool.run pool (fun () -> fib 12));
           let h1 = Pool.heartbeat pool in
           checkb (name ^ " heartbeat advanced") true (h1 > 0);
           ignore (Pool.run pool (fun () -> fib 12));
           let h2 = Pool.heartbeat pool in
           checkb (name ^ " heartbeat monotonic") true (h2 > h1);
           checki (name ^ " heartbeat = tasks_run") (Pool.counters pool).Pool.tasks_run h2))
    policies

let test_many_sequential_runs () =
  with_pool (Pool.Dfdeques { quota = 512 }) (fun pool ->
      for i = 1 to 20 do
        checki "repeat" (i * 10) (Pool.run pool (fun () -> i * 10))
      done)

let test_deep_nesting () =
  (* a fork chain deeper than any deque fast path *)
  let rec chain d = if d = 0 then 1 else fst (Pool.fork_join (fun () -> chain (d - 1)) (fun () -> 0)) + 0 in
  List.iter
    (fun (policy, name) ->
       with_pool policy (fun pool ->
           checki (name ^ " deep chain") 1 (Pool.run pool (fun () -> chain 500))))
    policies

let test_zero_extra_domains () =
  (* degenerate pool: caller is the only worker; everything runs inline *)
  let pool = Pool.create ~domains:0 Pool.Work_stealing in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () -> checki "fib on 1 worker" 610 (Pool.run pool (fun () -> fib 15)))

(* ------------------------------------------------------------------ *)
(* Fault injection, timeouts, graceful degradation                     *)
(* ------------------------------------------------------------------ *)

module Fault = Dfd_fault.Fault

(* Property (per seed, both policies): an injected task exception always
   reaches the caller of [run], and the same pool then completes a clean
   run — injected failures never wedge workers or poison pool state. *)
let qcheck_injected_exn_propagates =
  QCheck.Test.make ~count:30 ~name:"injected task exn reaches run caller; pool reusable"
    QCheck.(pair (int_bound 1_000_000) bool)
    (fun (seed, use_dfd) ->
       let policy = if use_dfd then Pool.Dfdeques { quota = 4096 } else Pool.Work_stealing in
       let rates = { Fault.zero_rates with Fault.task_exn_prob = 1.0 } in
       let fault = Fault.create ~rates ~seed () in
       let pool = Pool.create ~domains:default_domains ~fault policy in
       Fun.protect
         ~finally:(fun () -> Pool.shutdown pool)
         (fun () ->
            let propagated =
              try
                ignore (Pool.run pool (fun () -> Pool.fork_join (fun () -> 1) (fun () -> 2)));
                false
              with Fault.Injected_failure _ -> true
            in
            Fault.set_enabled fault false;
            let clean = Pool.run pool (fun () -> fib 12) = 144 in
            propagated && clean && (Pool.counters pool).Pool.task_exns > 0))

let test_injected_steal_failures_degrade_gracefully () =
  List.iter
    (fun (policy, name) ->
       let rates = { Fault.zero_rates with Fault.steal_fail_prob = 0.5 } in
       let fault = Fault.create ~rates ~seed:99 () in
       let pool = Pool.create ~domains:default_domains ~fault policy in
       Fun.protect
         ~finally:(fun () -> Pool.shutdown pool)
         (fun () ->
            let n = 5000 in
            let total =
              Pool.run pool (fun () ->
                  Pool.parallel_reduce ~zero:0 ~op:( + ) ~lo:0 ~hi:n (fun i -> i))
            in
            checki (name ^ " correct under steal failures") (n * (n - 1) / 2) total))
    policies

(* E2E crash domain: a seeded one-shot worker crash fires mid-psort (the
   victim dies on its first top-of-loop take, holding one unstarted
   task).  The surviving workers quarantine it, requeue the held task
   exactly once, and the sort still returns fully ordered at p-1; the
   lineage ledger audits clean, and a respawn under budget restores full
   strength for a subsequent clean run. *)
let test_worker_crash_mid_psort () =
  List.iter
    (fun (policy, name) ->
       let rates = { Fault.zero_rates with Fault.worker_crash = Some 1 } in
       let fault = Fault.create ~rates ~seed:17 () in
       let pool = Pool.create ~domains:3 ~fault ~respawn_budget:1 policy in
       Fun.protect
         ~finally:(fun () -> Pool.shutdown pool)
         (fun () ->
            let n = 20_000 in
            let arr = Array.init n (fun i -> i * 7919 land 0xffff) in
            let expect = Array.copy arr in
            Array.sort compare expect;
            Pool.run pool (fun () -> Dfd_runtime.Psort.sort ~cutoff:64 ~cmp:compare arr);
            checkb (name ^ " sorted at p-1") true (arr = expect);
            checki (name ^ " crash fired once") 1
              (List.assoc "worker_crash" (Fault.counts fault));
            checki (name ^ " exactly one quarantine") 1 (Pool.quarantines pool);
            checki (name ^ " degraded to p-1") 3 (Pool.degraded_p pool);
            checki (name ^ " held task requeued exactly once") 1
              (List.length (List.filter (fun e -> e.Pool.requeued) (Pool.lineage pool)));
            (match Pool.verify_lineage pool with
             | Ok () -> ()
             | Error m -> Alcotest.failf "%s lineage audit: %s" name m);
            let victim = match Pool.lineage pool with e :: _ -> e.Pool.worker | [] -> 0 in
            checkb (name ^ " respawn under budget") true (Pool.respawn_worker pool victim);
            checkb (name ^ " budget exhausted after one respawn") false
              (Pool.respawn_worker pool victim);
            checki (name ^ " full strength restored") 4 (Pool.degraded_p pool);
            checki (name ^ " clean run after respawn") 6765 (Pool.run pool (fun () -> fib 20));
            (match Pool.verify_lineage pool with
             | Ok () -> ()
             | Error m -> Alcotest.failf "%s lineage after respawn: %s" name m)))
    policies

let test_timeout_fires_and_pool_reusable () =
  List.iter
    (fun (policy, name) ->
       with_pool policy (fun pool ->
           checkb (name ^ " timeout fires") true
             (match
                Pool.run ~timeout:0.05 pool (fun () ->
                    let rec loop () =
                      ignore (Pool.fork_join (fun () -> ()) (fun () -> ()));
                      loop ()
                    in
                    loop ())
              with
              | () -> false
              | exception Pool.Timeout -> true);
           (* drained and reusable *)
           checki (name ^ " clean run after timeout") 55 (Pool.run pool (fun () -> fib 10))))
    policies

(* Regression: a pool must survive *consecutive* timeouts (the drain
   after the first must leave no stale cancellation state), and the
   internal cooperative-cancellation signal must never escape [run] —
   the caller sees [Timeout], nothing else. *)
let test_two_consecutive_timeouts () =
  List.iter
    (fun (policy, name) ->
       with_pool policy (fun pool ->
           let endless () =
             let rec loop () =
               ignore (Pool.fork_join (fun () -> ()) (fun () -> ()));
               loop ()
             in
             loop ()
           in
           let observe () =
             match Pool.run ~timeout:0.05 pool endless with
             | () -> "returned"
             | exception Pool.Timeout -> "timeout"
             | exception Pool.Cancelled -> "cancelled-leaked"
             | exception e -> Printexc.to_string e
           in
           Alcotest.(check string) (name ^ " first timeout") "timeout" (observe ());
           Alcotest.(check string) (name ^ " second timeout") "timeout" (observe ());
           checki (name ^ " reusable after two timeouts") 55 (Pool.run pool (fun () -> fib 10))))
    policies

let test_alloc_hint_outside_run () =
  checkb "alloc_hint outside run raises Not_in_pool" true
    (try
       Pool.alloc_hint 64;
       false
     with Pool.Not_in_pool -> true)

let test_dynamic_quota () =
  with_pool (Pool.Dfdeques { quota = 10_000 }) (fun pool ->
      Alcotest.(check (option int)) "initial quota" (Some 10_000) (Pool.quota pool);
      Pool.set_quota pool 2_500;
      Alcotest.(check (option int)) "adjusted quota" (Some 2_500) (Pool.quota pool);
      checki "still correct after shrink" 6765 (Pool.run pool (fun () -> fib 20));
      checkb "set_quota rejects non-positive" true
        (try
           Pool.set_quota pool 0;
           false
         with Invalid_argument _ -> true));
  with_pool Pool.Work_stealing (fun pool ->
      Alcotest.(check (option int)) "WS pool has no quota" None (Pool.quota pool);
      checkb "set_quota rejects WS pools" true
        (try
           Pool.set_quota pool 100;
           false
         with Invalid_argument _ -> true))

let test_alloc_bytes_counter () =
  List.iter
    (fun (policy, name) ->
       with_pool policy (fun pool ->
           Pool.run pool (fun () ->
               Pool.parallel_for ~lo:0 ~hi:32 (fun _ -> Pool.alloc_hint 100));
           checki (name ^ " alloc_bytes counts hints") 3200
             (Pool.counters pool).Pool.alloc_bytes))
    policies

let test_timeout_not_spurious () =
  with_pool Pool.Work_stealing (fun pool ->
      (* generous deadline, short computation: must not raise *)
      checki "no spurious timeout" 6765 (Pool.run ~timeout:60.0 pool (fun () -> fib 20)))

let test_background_run_observed () =
  (* a run driven from another domain, observed by watchdog-bounded
     polling: completion must become visible without unbounded waiting *)
  List.iter
    (fun (policy, name) ->
       with_pool policy (fun pool ->
           let res = Atomic.make 0 in
           let d = Domain.spawn (fun () -> Atomic.set res (Pool.run pool (fun () -> fib 16))) in
           spin_until ~snapshot:(fun () -> Pool.snapshot pool) (fun () -> Atomic.get res <> 0);
           Domain.join d;
           checki (name ^ " background fib") 987 (Atomic.get res);
           checkb (name ^ " heartbeat advanced") true (Pool.heartbeat pool > 0)))
    policies

let test_snapshot_mentions_state () =
  List.iter
    (fun (policy, name) ->
       with_pool policy (fun pool ->
           ignore (Pool.run pool (fun () -> fib 10));
           let s = Pool.snapshot pool in
           let has sub =
             let n = String.length s and m = String.length sub in
             let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
             go 0
           in
           checkb (name ^ " snapshot has counters") true (has "tasks_run");
           checkb (name ^ " snapshot has live state") true (has "live_tasks=0")))
    policies

let () =
  Alcotest.run "runtime"
    [
      ( "pool",
        [
          Alcotest.test_case "fib" `Quick test_fib;
          Alcotest.test_case "fork_join order" `Quick test_fork_join_order;
          Alcotest.test_case "parallel_for" `Quick test_parallel_for_sum;
          Alcotest.test_case "parallel_map" `Quick test_parallel_map;
          Alcotest.test_case "parallel_reduce" `Quick test_parallel_reduce;
          Alcotest.test_case "prefix sum" `Quick test_parallel_prefix_sum;
          Alcotest.test_case "parallel sort" `Quick test_psort_correct;
          Alcotest.test_case "sort edge orders" `Quick test_psort_already_sorted_and_reverse;
          Alcotest.test_case "sort duplicates" `Quick test_psort_duplicates_and_custom_cmp;
          Alcotest.test_case "empty ranges" `Quick test_empty_ranges;
          Alcotest.test_case "exceptions" `Quick test_exception_propagation;
          Alcotest.test_case "nested run rejected" `Quick test_nested_run_rejected;
          Alcotest.test_case "fork_join outside run" `Quick test_fork_join_outside_run_rejected;
          Alcotest.test_case "alloc_hint quota" `Quick test_alloc_hint_quota;
          Alcotest.test_case "stats" `Quick test_stats_counters;
          Alcotest.test_case "rank error instrumented" `Quick test_rank_error_instrumented;
          Alcotest.test_case "heartbeat" `Quick test_heartbeat_monotonic;
          Alcotest.test_case "sequential runs" `Quick test_many_sequential_runs;
          Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
          Alcotest.test_case "zero extra domains" `Quick test_zero_extra_domains;
        ] );
      ( "robustness",
        [
          QCheck_alcotest.to_alcotest ~long:false qcheck_injected_exn_propagates;
          Alcotest.test_case "steal failures degrade gracefully" `Quick
            test_injected_steal_failures_degrade_gracefully;
          Alcotest.test_case "worker crash mid-psort recovers at p-1" `Quick
            test_worker_crash_mid_psort;
          Alcotest.test_case "timeout fires, pool reusable" `Quick
            test_timeout_fires_and_pool_reusable;
          Alcotest.test_case "two consecutive timeouts" `Quick test_two_consecutive_timeouts;
          Alcotest.test_case "alloc_hint outside run" `Quick test_alloc_hint_outside_run;
          Alcotest.test_case "dynamic quota" `Quick test_dynamic_quota;
          Alcotest.test_case "alloc_bytes counter" `Quick test_alloc_bytes_counter;
          Alcotest.test_case "timeout not spurious" `Quick test_timeout_not_spurious;
          Alcotest.test_case "background run observed" `Quick test_background_run_observed;
          Alcotest.test_case "snapshot" `Quick test_snapshot_mentions_state;
        ] );
    ]
