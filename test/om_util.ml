(* A small OpenMetrics v1 text parser for the test validators and the
   round-trip property tests.  Strict about the subset our renderer
   emits: `# HELP f text`, `# TYPE f kind`, `name{k="v",...} value`
   sample lines, and a final `# EOF` with nothing after it.  Raises
   [Failure] with a line-numbered message on anything else. *)

type typ = Counter | Gauge | Histogram | Other of string

let typ_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"
  | Other s -> s

type family = { f_name : string; f_help : string option; f_type : typ }

type point = {
  p_name : string;  (** base name including any suffix, without labels. *)
  p_labels : (string * string) list;
  p_value : float;
}

type t = { families : family list; points : point list }

let fail line fmt = Printf.ksprintf (fun m -> failwith (Printf.sprintf "line %d: %s" line m)) fmt

let parse_typ = function
  | "counter" -> Counter
  | "gauge" -> Gauge
  | "histogram" -> Histogram
  | s -> Other s

(* `k="v",k2="v2"` — our emitters never put '"' or ',' inside values. *)
let parse_labels ln s =
  if s = "" then []
  else
    List.map
      (fun item ->
        match String.index_opt item '=' with
        | None -> fail ln "label item %S has no '='" item
        | Some i ->
          let k = String.sub item 0 i in
          let v = String.sub item (i + 1) (String.length item - i - 1) in
          let n = String.length v in
          if n < 2 || v.[0] <> '"' || v.[n - 1] <> '"' then
            fail ln "label value %S is not quoted" v
          else (k, String.sub v 1 (n - 2)))
      (String.split_on_char ',' s)

let parse_sample ln line =
  match String.index_opt line ' ' with
  | None -> fail ln "sample line %S has no value" line
  | Some sp ->
    let series = String.sub line 0 sp in
    let value = String.sub line (sp + 1) (String.length line - sp - 1) in
    let v =
      match float_of_string_opt value with
      | Some v -> v
      | None -> fail ln "unparseable value %S" value
    in
    let name, labels =
      match String.index_opt series '{' with
      | None -> (series, [])
      | Some b ->
        if series.[String.length series - 1] <> '}' then fail ln "unterminated label set"
        else
          ( String.sub series 0 b,
            parse_labels ln (String.sub series (b + 1) (String.length series - b - 2)) )
    in
    if name = "" then fail ln "empty metric name";
    { p_name = name; p_labels = labels; p_value = v }

let parse text =
  let lines = String.split_on_char '\n' text in
  let families = ref [] in
  let points = ref [] in
  let saw_eof = ref false in
  let find_family name = List.find_opt (fun f -> f.f_name = name) !families in
  let upsert name f =
    match find_family name with
    | None -> families := f :: !families
    | Some old ->
      families := f :: List.filter (fun g -> g.f_name <> name) !families;
      ignore old
  in
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      if line = "" then begin
        (* only the trailing newline's empty split is allowed *)
        if i <> List.length lines - 1 then fail ln "blank line inside exposition"
      end
      else if !saw_eof then fail ln "content after # EOF"
      else if line = "# EOF" then saw_eof := true
      else if String.length line > 7 && String.sub line 0 7 = "# HELP " then begin
        let rest = String.sub line 7 (String.length line - 7) in
        match String.index_opt rest ' ' with
        | None -> fail ln "HELP line without text"
        | Some sp ->
          let name = String.sub rest 0 sp in
          let help = String.sub rest (sp + 1) (String.length rest - sp - 1) in
          let t = match find_family name with Some f -> f.f_type | None -> Other "?" in
          upsert name { f_name = name; f_help = Some help; f_type = t }
      end
      else if String.length line > 7 && String.sub line 0 7 = "# TYPE " then begin
        let rest = String.sub line 7 (String.length line - 7) in
        match String.split_on_char ' ' rest with
        | [ name; t ] ->
          let help = match find_family name with Some f -> f.f_help | None -> None in
          upsert name { f_name = name; f_help = help; f_type = parse_typ t }
        | _ -> fail ln "malformed TYPE line %S" line
      end
      else if String.length line > 0 && line.[0] = '#' then fail ln "unknown comment %S" line
      else points := parse_sample ln line :: !points)
    lines;
  if not !saw_eof then failwith "missing # EOF terminator";
  { families = List.rev !families; points = List.rev !points }

let find_point ?(labels = []) t name =
  List.find_opt
    (fun p -> p.p_name = name && List.for_all (fun kv -> List.mem kv p.p_labels) labels)
    t.points

let value ?labels t name = Option.map (fun p -> p.p_value) (find_point ?labels t name)

let family t name = List.find_opt (fun f -> f.f_name = name) t.families

(* The cumulative-bucket points of histogram family [name], as
   (le, cumulative count) with +Inf mapped to [infinity], in file order. *)
let buckets ?(labels = []) t name =
  List.filter_map
    (fun p ->
      if
        p.p_name = name ^ "_bucket"
        && List.for_all (fun kv -> List.mem kv p.p_labels) labels
      then
        match List.assoc_opt "le" p.p_labels with
        | Some "+Inf" -> Some (infinity, int_of_float p.p_value)
        | Some le -> Some (float_of_string le, int_of_float p.p_value)
        | None -> None
      else None)
    t.points
