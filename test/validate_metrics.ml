(* Schema checker for the `repro metrics` artifacts: the OpenMetrics v1
   text exposition and the JSON registry snapshot of the same run.
   Structural and cross-consistency checks only — never timing — so CI
   can gate on it from any hardware.  Byte-determinism across runs is
   checked separately with cmp.  Usage: validate_metrics TEXT JSON *)

module Json = Dfd_trace.Json

let fail fmt = Json_util.failf ~prog:"validate_metrics" fmt

(* strip "_bucket"/"_count"/"_sum" to find the family a point belongs to *)
let base_family points name =
  let strip suffix n =
    let ls = String.length suffix and ln = String.length n in
    if ln > ls && String.sub n (ln - ls) ls = suffix then Some (String.sub n 0 (ln - ls))
    else None
  in
  match List.find_map (fun s -> strip s name) [ "_bucket"; "_count"; "_sum" ] with
  | Some base when List.exists (fun (f : Om_util.family) -> f.f_name = base) points -> base
  | _ -> name

let () =
  let text_path, json_path =
    match Sys.argv with
    | [| _; t; j |] -> (t, j)
    | _ -> fail "usage: validate_metrics TEXT JSON"
  in
  let om =
    try Om_util.parse (Json_util.read_file text_path) with Failure m -> fail "%s: %s" text_path m
  in
  (* every sample line must belong to a declared family *)
  List.iter
    (fun (p : Om_util.point) ->
      let fam = base_family om.Om_util.families p.Om_util.p_name in
      if not (List.exists (fun (f : Om_util.family) -> f.f_name = fam) om.Om_util.families) then
        fail "%s: sample %s has no # TYPE declaration" text_path p.Om_util.p_name)
    om.Om_util.points;
  (* the instruments the telemetry plane promises *)
  List.iter
    (fun name ->
      if not (List.exists (fun (p : Om_util.point) -> p.Om_util.p_name = name) om.Om_util.points)
      then fail "%s: missing required series %s" text_path name)
    [
      "dfd_engine_time";
      "dfd_engine_actions_total";
      "dfd_space_budget_bytes";
      "dfd_space_peak_bytes";
      "dfd_space_headroom_ratio";
    ];
  (* histogram integrity: cumulative buckets non-decreasing, ascending
     bounds, +Inf bucket equal to _count *)
  List.iter
    (fun (f : Om_util.family) ->
      if f.Om_util.f_type = Om_util.Histogram then begin
        let bs = Om_util.buckets om f.Om_util.f_name in
        if bs = [] then fail "%s: histogram %s has no buckets" text_path f.Om_util.f_name;
        let rec check prev_le prev_c = function
          | [] -> ()
          | (le, c) :: rest ->
            if le <= prev_le then fail "%s: %s bucket bounds not ascending" text_path f.Om_util.f_name;
            if c < prev_c then fail "%s: %s cumulative counts decrease" text_path f.Om_util.f_name;
            check le c rest
        in
        check neg_infinity 0 bs;
        let inf_count =
          match List.rev bs with
          | (le, c) :: _ when le = infinity -> c
          | _ -> fail "%s: %s missing +Inf bucket" text_path f.Om_util.f_name
        in
        (match Om_util.value om (f.Om_util.f_name ^ "_count") with
         | Some c when int_of_float c = inf_count -> ()
         | Some c ->
           fail "%s: %s_count %d <> +Inf bucket %d" text_path f.Om_util.f_name (int_of_float c)
             inf_count
         | None -> fail "%s: %s missing _count" text_path f.Om_util.f_name);
        if Om_util.value om (f.Om_util.f_name ^ "_sum") = None then
          fail "%s: %s missing _sum" text_path f.Om_util.f_name
      end)
    om.Om_util.families;
  (* counters may never be negative *)
  List.iter
    (fun (p : Om_util.point) ->
      let fam = base_family om.Om_util.families p.Om_util.p_name in
      match List.find_opt (fun (f : Om_util.family) -> f.f_name = fam) om.Om_util.families with
      | Some { Om_util.f_type = Om_util.Counter; _ } when p.Om_util.p_value < 0.0 ->
        fail "%s: counter %s is negative" text_path p.Om_util.p_name
      | _ -> ())
    om.Om_util.points;
  (* the JSON snapshot must agree with the text exposition *)
  let j =
    try Json_util.parse_file json_path with Json.Parse_error m -> fail "%s: bad JSON: %s" json_path m
  in
  let metrics =
    try Json.to_list_exn (Json.member "metrics" j)
    with _ -> fail "%s: missing metrics list" json_path
  in
  if metrics = [] then fail "%s: empty metrics list" json_path;
  let checked = ref 0 in
  List.iteri
    (fun i m ->
      let name =
        try Json.to_string_exn (Json.member "name" m)
        with _ -> fail "%s: metrics[%d]: missing name" json_path i
      in
      let typ =
        try Json.to_string_exn (Json.member "type" m)
        with _ -> fail "%s: metrics[%d]: missing type" json_path i
      in
      if not (List.mem typ [ "counter"; "gauge"; "histogram" ]) then
        fail "%s: metrics[%d]: unknown type %S" json_path i typ;
      let base, labels =
        match String.index_opt name '{' with
        | None -> (name, [])
        | Some b ->
          ( String.sub name 0 b,
            Om_util.parse_labels 0 (String.sub name (b + 1) (String.length name - b - 2)) )
      in
      match typ with
      | "histogram" ->
        let count =
          try Json.to_int_exn (Json.member "count" m)
          with _ -> fail "%s: %s: histogram without count" json_path name
        in
        (match Om_util.value ~labels om (base ^ "_count") with
         | Some c when int_of_float c = count -> incr checked
         | Some c ->
           fail "%s: %s count %d disagrees with text %d" json_path name count (int_of_float c)
         | None -> fail "text exposition lacks histogram %s" base)
      | _ -> (
          match Json.member "value" m with
          | Json.Int n -> (
              match Om_util.value ~labels om base with
              | Some v when int_of_float v = n -> incr checked
              | Some v -> fail "%s: %s = %d disagrees with text %g" json_path name n v
              | None -> fail "text exposition lacks series %s" name)
          | Json.Float f -> (
              match Om_util.value ~labels om base with
              | Some v when Float.abs (v -. f) <= 1e-9 *. Float.max 1.0 (Float.abs f) ->
                incr checked
              | Some v -> fail "%s: %s = %g disagrees with text %g" json_path name f v
              | None -> fail "text exposition lacks series %s" name)
          | _ -> fail "%s: %s: missing numeric value" json_path name))
    metrics;
  Printf.printf "validate_metrics: %s / %s ok (%d families, %d points, %d cross-checked)\n"
    text_path json_path
    (List.length om.Om_util.families)
    (List.length om.Om_util.points) !checked
