(* Smoke-test validator for the `repro chaos` JSON report: structural
   checks plus the acceptance criteria — every simulator campaign ok, no
   invariant violations, no watchdog deadlocks, faults actually injected.
   Usage: validate_chaos report.json *)

module Json = Dfd_trace.Json

let fail fmt = Json_util.failf ~prog:"validate_chaos" fmt

let () =
  let path = match Sys.argv with [| _; p |] -> p | _ -> fail "usage: validate_chaos FILE" in
  let j =
    try Json_util.parse_file path with Json.Parse_error m -> fail "bad JSON: %s" m
  in
  let int_at k = try Json.to_int_exn (Json.member k j) with _ -> fail "missing int %S" k in
  ignore (int_at "seed");
  let campaigns = int_at "campaigns_per_sched" in
  let scheds = try Json.to_list_exn (Json.member "simulator" j) with _ -> fail "no simulator" in
  if List.length scheds <> 4 then fail "expected 4 schedulers, got %d" (List.length scheds);
  let seen_outcomes = ref 0 in
  List.iter
    (fun s ->
       let name = try Json.to_string_exn (Json.member "sched" s) with _ -> fail "no sched name" in
       if not (List.mem name [ "dfd"; "ws"; "adf"; "fifo" ]) then fail "unknown sched %S" name;
       let runs = try Json.to_list_exn (Json.member "runs" s) with _ -> fail "no runs" in
       if List.length runs <> campaigns then
         fail "%s: %d runs, expected %d" name (List.length runs) campaigns;
       List.iter
         (fun r ->
            incr seen_outcomes;
            (match Json.member "outcome" r with
             | Json.String "ok" -> ()
             | Json.String other -> fail "%s: campaign outcome %S" name other
             | _ -> fail "%s: campaign without outcome" name);
            (match Json.member "faults" r with
             | Json.Assoc kinds ->
               if List.length kinds <> 7 then fail "%s: expected 7 fault kinds" name
             | _ -> fail "%s: campaign without fault counts" name))
         runs)
    scheds;
  let summary = Json.member "summary" j in
  let s_int k =
    try Json.to_int_exn (Json.member k summary) with _ -> fail "summary missing %S" k
  in
  if s_int "sim_runs" <> !seen_outcomes then fail "summary sim_runs mismatch";
  if s_int "invariant_violations" <> 0 then fail "invariant violations reported";
  if s_int "deadlocks" <> 0 then fail "watchdog deadlocks reported";
  if s_int "errors" <> 0 then fail "errors reported";
  if s_int "faults_injected" <= 0 then fail "no faults were injected";
  (match Json.member "all_passed" summary with
   | Json.Bool true -> ()
   | _ -> fail "all_passed is not true");
  (* the supervised-service section is present only under `chaos --service`;
     when it is, every campaign fact must hold and the summary must agree *)
  (match Json.member "service" j with
   | Json.Null -> ()
   | Json.Assoc _ as svc ->
     List.iter
       (fun k ->
          match Json.member k svc with
          | Json.Bool true -> ()
          | Json.Bool false -> fail "service campaign %S failed" k
          | _ -> fail "service section missing bool %S" k)
       [
         "queue_sheds_at_capacity";
         "exn_retried_to_budget_then_failed";
         "flaky_recovers_after_one_retry";
         "wedge_respawn_requeues_exactly_once";
         "ledger_verified";
         "no_duplicate_acks";
       ];
     (match Json.member "service_passed" summary with
      | Json.Bool true -> ()
      | _ -> fail "service section present but summary service_passed is not true")
   | _ -> fail "service section is not an object");
  (* the crash-recovery section is present only under `chaos --crash`; when
     it is, every per-policy recovery fact must hold and the summary must
     agree that the whole campaign passed *)
  (match Json.member "crash" j with
   | Json.Null -> ()
   | Json.List policies ->
     if policies = [] then fail "crash section is empty";
     List.iter
       (fun c ->
          let policy =
            try Json.to_string_exn (Json.member "policy" c) with _ -> fail "crash entry without policy"
          in
          if not (List.mem policy [ "ws"; "dfd" ]) then fail "crash: unknown policy %S" policy;
          List.iter
            (fun k ->
               match Json.member k c with
               | Json.Bool true -> ()
               | Json.Bool false -> fail "crash %s: fact %S failed" policy k
               | _ -> fail "crash %s: missing bool %S" policy k)
            [
              "sorted_at_degraded_p";
              "crash_fired_once";
              "exactly_one_quarantine";
              "degraded_p_is_p_minus_1";
              "held_task_requeued_exactly_once";
              "lineage_audit_ok";
              "headroom_budget_matches_degraded_p";
              "respawn_under_budget";
              "full_strength_restored";
              "clean_run_after_respawn";
              "lineage_audit_after_respawn_ok";
            ])
       policies;
     (match Json.member "crash_passed" summary with
      | Json.Bool true -> ()
      | _ -> fail "crash section present but summary crash_passed is not true")
   | _ -> fail "crash section is not a list");
  Printf.printf "validate_chaos: %s ok (%d campaigns, %d faults injected)\n" path !seen_outcomes
    (s_int "faults_injected")
