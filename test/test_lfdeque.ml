(* Tests for the CAS-only DFDeques deque (Dfd_structures.Lfdeque).

   Same shape as test_clev: sequential deque laws, a concurrent multiset
   property under real Domains, and wraparound regressions via the
   biased-start constructor.  On top of those, the DFDeques-specific
   surface: the sticky ownership certificate, the stability of the
   [is_dead] death certificate, the sync-op accounting cells, and a
   multi-deque stress group (N owners x M thieves, capped at 4 domains)
   where thieves roam across deques — the pool's actual usage pattern. *)

module Lfdeque = Dfd_structures.Lfdeque

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Sequential laws                                                     *)
(* ------------------------------------------------------------------ *)

let test_lifo_owner () =
  let q = Lfdeque.create () in
  for i = 1 to 100 do
    Lfdeque.push q i
  done;
  for i = 100 downto 1 do
    checki "LIFO pop" i (Option.get (Lfdeque.pop q))
  done;
  checkb "empty after" true (Lfdeque.pop q = None)

let test_fifo_steal () =
  let q = Lfdeque.create () in
  for i = 1 to 100 do
    Lfdeque.push q i
  done;
  for i = 1 to 100 do
    checki "FIFO steal" i (Option.get (Lfdeque.steal q))
  done;
  checkb "empty after" true (Lfdeque.steal q = None)

let test_resize_sequential () =
  let q = Lfdeque.create ~min_capacity:2 () in
  checki "initial capacity" 2 (Lfdeque.capacity q);
  for i = 0 to 999 do
    Lfdeque.push q i
  done;
  checkb "grew" true (Lfdeque.capacity q >= 1024);
  checki "length" 1000 (Lfdeque.length q);
  checki "steal oldest" 0 (Option.get (Lfdeque.steal q));
  checki "pop newest" 999 (Option.get (Lfdeque.pop q));
  checki "length after" 998 (Lfdeque.length q)

(* ------------------------------------------------------------------ *)
(* Ownership lifecycle                                                 *)
(* ------------------------------------------------------------------ *)

let test_owner_sticky () =
  let q = Lfdeque.create ~owner:3 () in
  checkb "created owned" true (Lfdeque.owner q = Some 3);
  Lfdeque.push q 1;
  checkb "not dead while owned" false (Lfdeque.is_dead q);
  Lfdeque.abandon q;
  checkb "abandoned" true (Lfdeque.owner q = None);
  checkb "nonempty abandoned deque is not dead" false (Lfdeque.is_dead q);
  checki "thief drains the abandoned deque" 1 (Option.get (Lfdeque.steal q));
  checkb "now dead" true (Lfdeque.is_dead q);
  (* the certificate is one-way: still dead on every later read *)
  checkb "dead is stable" true (Lfdeque.is_dead q)

let test_unowned_empty_is_dead () =
  let q = Lfdeque.create () in
  checkb "never-owned empty deque is dead" true (Lfdeque.is_dead q);
  let q' = Lfdeque.create ~owner:0 () in
  checkb "owned empty deque is not dead" false (Lfdeque.is_dead q')

let test_ops_accounting () =
  let ops = ref 0 in
  let q = Lfdeque.create ~owner:0 () in
  Lfdeque.push ~ops q 1;
  checkb "push counts sync ops" true (!ops >= 2);
  let after_push = !ops in
  ignore (Lfdeque.steal ~ops q);
  checkb "steal counts its CAS" true (!ops > after_push);
  let after_steal = !ops in
  ignore (Lfdeque.pop ~ops q);
  (* empty pop still reserves and restores: two stores *)
  checkb "empty pop counts the reserve/restore" true (!ops >= after_steal + 2);
  Lfdeque.abandon ~ops q;
  checkb "abandon counts its store" true (!ops >= after_steal + 3)

(* ------------------------------------------------------------------ *)
(* Concurrent multiset property (one owner, roaming thieves)           *)
(* ------------------------------------------------------------------ *)

let concurrent_run ?(min_capacity = 2) ?start_index ~n_stealers ops =
  let q =
    match start_index with
    | None -> Lfdeque.create ~min_capacity ~owner:0 ()
    | Some index -> Lfdeque.create_at ~min_capacity ~owner:0 ~index ()
  in
  let stop = Atomic.make false in
  let stealers =
    List.init n_stealers (fun _ ->
        Domain.spawn (fun () ->
            let acc = ref [] in
            while not (Atomic.get stop) do
              match Lfdeque.steal q with
              | Some v -> acc := v :: !acc
              | None -> Domain.cpu_relax ()
            done;
            let rec sweep () =
              match Lfdeque.steal q with
              | Some v ->
                acc := v :: !acc;
                sweep ()
              | None -> ()
            in
            sweep ();
            !acc))
  in
  let next = ref 0 in
  let pushed = ref [] in
  let popped = ref [] in
  List.iter
    (fun op ->
       if op then begin
         Lfdeque.push q !next;
         pushed := !next :: !pushed;
         incr next
       end
       else
         match Lfdeque.pop q with
         | Some v -> popped := v :: !popped
         | None -> ())
    ops;
  Atomic.set stop true;
  let stolen = List.concat_map Domain.join stealers in
  let rec drain acc =
    match Lfdeque.pop q with Some v -> drain (v :: acc) | None -> acc
  in
  let rest = drain [] in
  (!pushed, !popped @ stolen @ rest)

let multiset_eq a b = List.sort compare a = List.sort compare b

let qcheck_no_dup_no_loss =
  QCheck.Test.make ~count:40
    ~name:"lfdeque: multiset(popped+stolen+drained) = multiset(pushed), no dups/losses"
    QCheck.(pair (list_of_size Gen.(int_range 0 400) bool) (int_range 1 3))
    (fun (ops, n_stealers) ->
       let pushed, taken = concurrent_run ~n_stealers ops in
       multiset_eq pushed taken)

(* The quarantine-path property: a deque whose owner died mid-stream and
   was abandoned on its behalf (the pool's reaper-side [abandon], the one
   audited relaxation of the owner-only contract) must yield to its
   drainers exactly the multiset it held at the moment of death — no
   element lost inside the dead deque, none delivered twice.  The owner
   phase is sequential (the owner is fenced before anyone else touches
   the deque), the drain is concurrent. *)
let qcheck_dead_owner_drain =
  QCheck.Test.make ~count:40
    ~name:"lfdeque: draining a dead owner's abandoned deque = exact pre-crash multiset"
    QCheck.(pair (list_of_size Gen.(int_range 0 200) bool) (int_range 1 3))
    (fun (ops, n_stealers) ->
       let q = Lfdeque.create ~min_capacity:2 ~owner:1 () in
       let next = ref 0 in
       let live = Hashtbl.create 16 in
       List.iter
         (fun op ->
            if op then begin
              Lfdeque.push q !next;
              Hashtbl.replace live !next ();
              incr next
            end
            else
              match Lfdeque.pop q with
              | Some v -> Hashtbl.remove live v
              | None -> ())
         ops;
       let remaining = Hashtbl.fold (fun k () acc -> k :: acc) live [] in
       (* the owner crashes here; a quarantining peer abandons for it *)
       Lfdeque.abandon q;
       let total = List.length remaining in
       let taken = Atomic.make 0 in
       let thieves =
         List.init n_stealers (fun _ ->
             Domain.spawn (fun () ->
                 let acc = ref [] in
                 let misses = ref 0 in
                 (* a lost element would strand [taken] below [total];
                    the miss bound turns that hang into a failed multiset *)
                 while Atomic.get taken < total && !misses < 1_000_000 do
                   match Lfdeque.steal q with
                   | Some v ->
                     Atomic.incr taken;
                     misses := 0;
                     acc := v :: !acc
                   | None ->
                     incr misses;
                     Domain.cpu_relax ()
                 done;
                 !acc))
       in
       let drained = List.concat_map Domain.join thieves in
       multiset_eq remaining drained && Lfdeque.is_dead q && Lfdeque.steal q = None)

let test_resize_under_steal_stress () =
  let n = 20_000 in
  let ops = List.init n (fun i -> i mod 11 <> 10) in
  let pushed, taken = concurrent_run ~min_capacity:2 ~n_stealers:3 ops in
  checkb "stress multiset equal" true (multiset_eq pushed taken);
  checki "stress taken count" (List.length pushed) (List.length taken)

(* ------------------------------------------------------------------ *)
(* N owners x M thieves (the pool's usage pattern; <= 4 domains)       *)
(* ------------------------------------------------------------------ *)

(* Two owner domains each drive their own deque through a push/pop/
   abandon cycle; two thief domains roam over both deques, stealing
   wherever they find work.  Values are tagged by owner so the oracle
   can assert, per deque, exactly-once delivery — any double steal
   surfaces as a duplicate, any lost element as a shortfall.  Domain
   count stays at 4 (2 owners + 2 thieves) to keep CI deflaked. *)
let test_owners_vs_roaming_thieves () =
  let n_owners = 2 and n_thieves = 2 in
  let per_owner = 4_000 in
  let deques = Array.init n_owners (fun w -> Lfdeque.create ~min_capacity:2 ~owner:w ()) in
  let stop = Atomic.make false in
  let thieves =
    List.init n_thieves (fun t ->
        Domain.spawn (fun () ->
            let acc = ref [] in
            let k = ref t in
            while not (Atomic.get stop) do
              (match Lfdeque.steal deques.(!k mod n_owners) with
               | Some v -> acc := v :: !acc
               | None -> Domain.cpu_relax ());
              incr k
            done;
            (* final sweep over every deque so stopping strands nothing *)
            Array.iter
              (fun q ->
                 let rec sweep () =
                   match Lfdeque.steal q with
                   | Some v ->
                     acc := v :: !acc;
                     sweep ()
                   | None -> ()
                 in
                 sweep ())
              deques;
            !acc))
  in
  let owners =
    List.init n_owners (fun w ->
        Domain.spawn (fun () ->
            let q = deques.(w) in
            let got = ref [] in
            for i = 0 to per_owner - 1 do
              (* tag: owner id in the low bits keeps the streams disjoint *)
              Lfdeque.push q ((i * n_owners) + w);
              if i mod 7 = 6 then
                match Lfdeque.pop q with
                | Some v -> got := v :: !got
                | None -> ()
            done;
            (* quota exhausted: the owner walks away; thieves drain *)
            Lfdeque.abandon q;
            !got))
  in
  let popped = List.concat_map Domain.join owners in
  Atomic.set stop true;
  let stolen = List.concat_map Domain.join thieves in
  (* the thieves' sweeps can stop early on a lost CAS race against each
     other; with every domain joined this drain is single-threaded and
     definitive *)
  let rest =
    Array.fold_left
      (fun acc q ->
         let rec d acc =
           match Lfdeque.steal q with Some v -> d (v :: acc) | None -> acc
         in
         d acc)
      [] deques
  in
  let taken = popped @ stolen @ rest in
  let pushed =
    List.concat
      (List.init n_owners (fun w -> List.init per_owner (fun i -> (i * n_owners) + w)))
  in
  checkb "owners x thieves multiset equal (no duplicate steal, no loss)" true
    (multiset_eq pushed taken);
  Array.iter
    (fun q ->
       checkb "every abandoned deque drained to death" true (Lfdeque.is_dead q))
    deques

(* ------------------------------------------------------------------ *)
(* Wraparound regressions (create_at biased start)                     *)
(* ------------------------------------------------------------------ *)

let test_wrap_sequential () =
  let q = Lfdeque.create_at ~min_capacity:2 ~owner:0 ~index:(max_int - 2) () in
  for i = 0 to 5 do
    Lfdeque.push q i
  done;
  checki "length across boundary" 6 (Lfdeque.length q);
  checki "steal oldest" 0 (Option.get (Lfdeque.steal q));
  checki "pop newest" 5 (Option.get (Lfdeque.pop q));
  for i = 4 downto 1 do
    checki "pop order" i (Option.get (Lfdeque.pop q))
  done;
  checkb "empty after" true (Lfdeque.pop q = None);
  (* single-element churn exactly on the boundary drives the d=0 race
     path and the empty-reset path with wrapped indices *)
  for i = 0 to 9 do
    Lfdeque.push q i;
    checki "immediate pop" i (Option.get (Lfdeque.pop q))
  done;
  checkb "still empty" true (Lfdeque.steal q = None);
  checkb "length never negative across boundary" true (Lfdeque.length q = 0)

let test_wrap_grow_steal () =
  let q = Lfdeque.create_at ~min_capacity:1 ~owner:0 ~index:(max_int - 1) () in
  checki "tiny initial capacity" 2 (Lfdeque.capacity q);
  for i = 0 to 7 do
    Lfdeque.push q i
  done;
  checkb "grew across boundary" true (Lfdeque.capacity q >= 8);
  for i = 0 to 7 do
    checki "FIFO across boundary" i (Option.get (Lfdeque.steal q))
  done;
  checkb "empty after" true (Lfdeque.steal q = None);
  (* the death certificate must also survive wrapped indices *)
  Lfdeque.abandon q;
  checkb "dead across boundary" true (Lfdeque.is_dead q)

let test_wrap_concurrent () =
  let ops = List.init 8_000 (fun i -> i mod 5 <> 4) in
  let pushed, taken =
    concurrent_run ~min_capacity:2 ~start_index:(max_int - 1_000) ~n_stealers:3 ops
  in
  checkb "wraparound multiset equal" true (multiset_eq pushed taken)

let () =
  Alcotest.run "lfdeque"
    [
      ( "sequential",
        [
          Alcotest.test_case "owner LIFO" `Quick test_lifo_owner;
          Alcotest.test_case "thief FIFO" `Quick test_fifo_steal;
          Alcotest.test_case "resize" `Quick test_resize_sequential;
        ] );
      ( "ownership",
        [
          Alcotest.test_case "abandon is sticky, death is stable" `Quick test_owner_sticky;
          Alcotest.test_case "dead = unowned and empty" `Quick test_unowned_empty_is_dead;
          Alcotest.test_case "sync-op cells count RMWs" `Quick test_ops_accounting;
        ] );
      ( "concurrent",
        [
          QCheck_alcotest.to_alcotest ~long:false qcheck_no_dup_no_loss;
          QCheck_alcotest.to_alcotest ~long:false qcheck_dead_owner_drain;
          Alcotest.test_case "resize under steal stress" `Quick test_resize_under_steal_stress;
          Alcotest.test_case "2 owners x 2 roaming thieves" `Quick
            test_owners_vs_roaming_thieves;
        ] );
      ( "wraparound",
        [
          Alcotest.test_case "sequential laws across max_int" `Quick test_wrap_sequential;
          Alcotest.test_case "grow + FIFO steal across max_int" `Quick test_wrap_grow_steal;
          Alcotest.test_case "concurrent churn across max_int" `Quick test_wrap_concurrent;
        ] );
    ]
