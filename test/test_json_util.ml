(* Direct unit test for the shared validator helpers in Json_util — the
   validators only exercise them on well-formed reports, so the edge
   behaviour (numeric coercion, byte-exact file slurping) is pinned
   here. *)

module Json = Dfd_trace.Json

let checkf = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)

let test_to_number () =
  checkf "int coerces" 42.0 (Json_util.to_number_exn (Json.Int 42));
  checkf "negative int coerces" (-3.0) (Json_util.to_number_exn (Json.Int (-3)));
  checkf "float passes through" 2.5 (Json_util.to_number_exn (Json.Float 2.5));
  checkb "non-number raises Parse_error" true
    (match Json_util.to_number_exn (Json.String "x") with
     | exception Json.Parse_error _ -> true
     | _ -> false)

let test_read_and_parse_file () =
  let path = Filename.temp_file "json_util" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let text = {|{"a": 1, "b": [true, 2.5], "c": "x"}|} in
      let oc = open_out_bin path in
      output_string oc text;
      close_out oc;
      Alcotest.(check string) "read_file is byte-exact" text (Json_util.read_file path);
      let j = Json_util.parse_file path in
      Alcotest.(check int) "a" 1 (Json.to_int_exn (Json.member "a" j));
      (match Json.member "b" j with
       | Json.List [ Json.Bool true; b1 ] -> checkf "b[1]" 2.5 (Json_util.to_number_exn b1)
       | _ -> Alcotest.fail "b malformed");
      Alcotest.(check string) "c" "x" (Json.to_string_exn (Json.member "c" j)))

let test_parse_file_rejects_garbage () =
  let path = Filename.temp_file "json_util" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "{ not json";
      close_out oc;
      checkb "malformed file raises Parse_error" true
        (match Json_util.parse_file path with
         | exception Json.Parse_error _ -> true
         | _ -> false))

let () =
  Alcotest.run "json_util"
    [
      ( "json_util",
        [
          Alcotest.test_case "to_number_exn" `Quick test_to_number;
          Alcotest.test_case "read_file / parse_file" `Quick test_read_and_parse_file;
          Alcotest.test_case "parse_file rejects garbage" `Quick
            test_parse_file_rejects_garbage;
        ] );
    ]
