(* Tiny schema checker for the `pool_scale` benchmark report
   (BENCH_pool.json): structural validity only — never timing — so CI can
   gate on it from any hardware.  Usage: validate_bench FILE *)

module Json = Dfd_trace.Json

let fail fmt = Json_util.failf ~prog:"validate_bench" fmt

let to_number_exn = Json_util.to_number_exn

let () =
  let path = match Sys.argv with [| _; p |] -> p | _ -> fail "usage: validate_bench FILE" in
  let j =
    try Json_util.parse_file path with Json.Parse_error m -> fail "bad JSON: %s" m
  in
  (match Json.member "bench" j with
   | Json.String "pool_scale" -> ()
   | _ -> fail "bench field must be \"pool_scale\"");
  (match Json.member "smoke" j with
   | Json.Bool _ -> ()
   | _ -> fail "smoke must be a bool");
  let cores = try Json.to_int_exn (Json.member "cores" j) with _ -> fail "missing int cores" in
  if cores < 1 then fail "cores must be >= 1";
  let results =
    try Json.to_list_exn (Json.member "results" j) with _ -> fail "missing results list"
  in
  if results = [] then fail "results must be nonempty";
  let seen_p1 = Hashtbl.create 8 in
  List.iteri
    (fun i r ->
       let str k = try Json.to_string_exn (Json.member k r) with _ -> fail "results[%d]: missing string %S" i k in
       let int k = try Json.to_int_exn (Json.member k r) with _ -> fail "results[%d]: missing int %S" i k in
       let num k = try to_number_exn (Json.member k r) with _ -> fail "results[%d]: missing number %S" i k in
       let workload = str "workload" and policy = str "policy" in
       if not (List.mem workload [ "fib"; "psort" ]) then
         fail "results[%d]: unknown workload %S" i workload;
       if not (List.mem policy [ "ws"; "dfd" ]) then fail "results[%d]: unknown policy %S" i policy;
       let p = int "p" in
       if p < 1 then fail "results[%d]: p must be >= 1" i;
       if p = 1 then Hashtbl.replace seen_p1 (workload, policy) ();
       if num "time_s" < 0.0 then fail "results[%d]: negative time" i;
       if int "tasks_run" < 0 then fail "results[%d]: negative tasks_run" i;
       if int "steals" < 0 then fail "results[%d]: negative steals" i;
       if num "throughput_tasks_per_s" < 0.0 then fail "results[%d]: negative throughput" i)
    results;
  if Hashtbl.length seen_p1 = 0 then fail "no p=1 baseline point in results";
  let speedups =
    try Json.to_list_exn (Json.member "speedups" j) with _ -> fail "missing speedups list"
  in
  List.iteri
    (fun i s ->
       let sp =
         try to_number_exn (Json.member "speedup_vs_p1" s)
         with _ -> fail "speedups[%d]: missing number speedup_vs_p1" i
       in
       if sp < 0.0 then fail "speedups[%d]: negative speedup" i;
       let p = try Json.to_int_exn (Json.member "p" s) with _ -> fail "speedups[%d]: missing p" i in
       if p < 2 then fail "speedups[%d]: speedup rows need p >= 2" i)
    speedups;
  (* rank-error histograms of the relaxed R-list: one row per dfd point;
     quantiles must be ordered and nonnegative when any steal happened *)
  let rank_rows =
    try Json.to_list_exn (Json.member "rank_error" j)
    with _ -> fail "missing rank_error list"
  in
  if rank_rows = [] then fail "rank_error must be nonempty";
  List.iteri
    (fun i r ->
       let int k = try Json.to_int_exn (Json.member k r) with _ -> fail "rank_error[%d]: missing int %S" i k in
       let num k = try to_number_exn (Json.member k r) with _ -> fail "rank_error[%d]: missing number %S" i k in
       (match Json.member "policy" r with
        | Json.String "dfd" -> ()
        | _ -> fail "rank_error[%d]: policy must be \"dfd\"" i);
       if int "p" < 1 then fail "rank_error[%d]: p must be >= 1" i;
       let count = int "count" in
       if count < 0 then fail "rank_error[%d]: negative count" i;
       if count > 0 then begin
         let p50 = num "p50" and p90 = num "p90" and p99 = num "p99" and mx = num "max" in
         if p50 < 0.0 then fail "rank_error[%d]: negative p50" i;
         if p90 < p50 then fail "rank_error[%d]: p90 < p50" i;
         if p99 < p90 then fail "rank_error[%d]: p99 < p90" i;
         if mx < p99 then fail "rank_error[%d]: max < p99" i
       end)
    rank_rows;
  (* R-list membership traffic: every deque publication is one insert,
     every reap one remove, so inserts bound removes from above *)
  let memb_rows =
    try Json.to_list_exn (Json.member "r_membership_ops" j)
    with _ -> fail "missing r_membership_ops list"
  in
  if memb_rows = [] then fail "r_membership_ops must be nonempty";
  List.iteri
    (fun i r ->
       let int k =
         try Json.to_int_exn (Json.member k r)
         with _ -> fail "r_membership_ops[%d]: missing int %S" i k
       in
       (match Json.member "policy" r with
        | Json.String "dfd" -> ()
        | _ -> fail "r_membership_ops[%d]: policy must be \"dfd\"" i);
       if int "p" < 1 then fail "r_membership_ops[%d]: p must be >= 1" i;
       let inserts = int "inserts" and removes = int "removes" in
       if removes < 0 then fail "r_membership_ops[%d]: negative removes" i;
       if inserts < removes then fail "r_membership_ops[%d]: inserts < removes" i)
    memb_rows;
  (* sync-op counts of the CAS-only task-transfer paths: one row per
     result point, both policies (ws rows are structurally zero).  Counts
     are facts about the execution, not timings, so missing or negative
     counters crash-gate; magnitudes never do.  At least one dfd row must
     have actually synchronized — a dfd run that did zero atomic ops means
     the instrumentation came unwired. *)
  let sync_rows =
    try Json.to_list_exn (Json.member "sync_ops" j)
    with _ -> fail "missing sync_ops list"
  in
  if sync_rows = [] then fail "sync_ops must be nonempty";
  let dfd_sync_total = ref 0 in
  let seen_dfd = ref false in
  List.iteri
    (fun i r ->
       let int k =
         try Json.to_int_exn (Json.member k r)
         with _ -> fail "sync_ops[%d]: missing int %S" i k
       in
       let num k =
         try to_number_exn (Json.member k r)
         with _ -> fail "sync_ops[%d]: missing number %S" i k
       in
       let policy =
         try Json.to_string_exn (Json.member "policy" r)
         with _ -> fail "sync_ops[%d]: missing string \"policy\"" i
       in
       if not (List.mem policy [ "ws"; "dfd" ]) then
         fail "sync_ops[%d]: unknown policy %S" i policy;
       if int "p" < 1 then fail "sync_ops[%d]: p must be >= 1" i;
       let ops = int "sync_ops" in
       if ops < 0 then fail "sync_ops[%d]: negative sync_ops" i;
       if num "sync_ops_per_task" < 0.0 then fail "sync_ops[%d]: negative sync_ops_per_task" i;
       if policy = "ws" && ops <> 0 then
         fail "sync_ops[%d]: ws path is uninstrumented and must report 0" i;
       if policy = "dfd" then begin
         seen_dfd := true;
         dfd_sync_total := !dfd_sync_total + ops
       end)
    sync_rows;
  if not !seen_dfd then fail "sync_ops has no dfd row";
  if !dfd_sync_total = 0 then fail "sync_ops: all dfd rows are zero (instrumentation unwired?)";
  (* obs-overhead pair: structural checks only — the ratio itself is
     timing and must never gate CI *)
  let obs = Json.member "obs_overhead" j in
  (match obs with
   | Json.Assoc _ ->
     let num k =
       try to_number_exn (Json.member k obs) with _ -> fail "obs_overhead: missing number %S" k
     in
     if num "disabled_time_s" < 0.0 then fail "obs_overhead: negative disabled_time_s";
     if num "enabled_time_s" < 0.0 then fail "obs_overhead: negative enabled_time_s";
     if num "overhead_ratio" < 0.0 then fail "obs_overhead: negative overhead_ratio"
   | _ -> fail "missing obs_overhead object");
  Printf.printf
    "validate_bench: %s ok (%d result points, %d speedup rows, %d rank rows, %d sync rows)\n"
    path (List.length results) (List.length speedups) (List.length rank_rows)
    (List.length sync_rows)
