(* Tests for the supervised job service (lib/service): the seeded
   full-jitter retry policy (property-tested), the per-class circuit
   breaker — including the generation-tagged staleness rule — the
   adaptive-K quota controller and the backpressure ladder state
   machines (unit-tested on the logical clock), the weighted-fair
   admission queue (DRR order unit-tested, the weight-share bound
   property-tested), submission handles, and the service itself
   end-to-end against a real pool — exactly-once ledger, non-blocking
   admission, coalescing, cancellation, deadline/retry layering, wedge
   detection with pool respawn, multi-tenant shed ordering, and the
   adaptive-K control loop reacting to allocation pressure. *)

module Service = Dfd_service.Service
module Handle = Dfd_service.Handle
module Tenant = Dfd_service.Tenant
module Fair_queue = Dfd_service.Fair_queue
module Ladder = Dfd_service.Ladder
module Retry = Dfd_service.Retry
module Breaker = Dfd_service.Breaker
module Quota_ctl = Dfd_service.Quota_ctl
module Pool = Dfd_runtime.Pool
module Tracer = Dfd_trace.Tracer
module Event = Dfd_trace.Event
module Stats = Dfd_structures.Stats

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Retry: seeded full-jitter backoff (properties)                      *)
(* ------------------------------------------------------------------ *)

(* (seed, job, policy) generator: small but covers the ramp, the cap and
   the budget edge (max_attempts = 1 means no retries at all). *)
let retry_case =
  QCheck.(
    quad (int_bound 1_000_000) (int_bound 500) (int_range 1 8)
      (pair (int_range 1 5) (int_bound 15)))

let policy_of (max_attempts, (base_delay, extra)) =
  { Retry.max_attempts; base_delay; max_delay = base_delay + extra }

let qcheck_delays_bounded =
  QCheck.Test.make ~count:200 ~name:"retry delays lie in [1, max_delay]" retry_case
    (fun (seed, job, ma, bd) ->
       let pol = policy_of (ma, bd) in
       List.for_all (fun d -> 1 <= d && d <= pol.Retry.max_delay)
         (Retry.schedule pol ~seed ~job))

let qcheck_budget_never_exceeded =
  QCheck.Test.make ~count:200
    ~name:"retry budget: exactly max_attempts - 1 delays, then None forever" retry_case
    (fun (seed, job, ma, bd) ->
       let pol = policy_of (ma, bd) in
       let t = Retry.create pol ~seed ~job in
       let delays = ref 0 in
       (* call well past exhaustion: the budget must hold anyway *)
       for _ = 1 to (2 * ma) + 3 do
         match Retry.next_delay t with Some _ -> incr delays | None -> ()
       done;
       !delays = ma - 1 && Retry.attempts t = ma)

let qcheck_attempts_monotone =
  QCheck.Test.make ~count:200
    ~name:"attempt counter is monotone and clamped at max_attempts" retry_case
    (fun (seed, job, ma, bd) ->
       let pol = policy_of (ma, bd) in
       let t = Retry.create pol ~seed ~job in
       let ok = ref true in
       let prev = ref (Retry.attempts t) in
       for _ = 1 to ma + 4 do
         ignore (Retry.next_delay t);
         let a = Retry.attempts t in
         if a < !prev || a > ma then ok := false;
         prev := a
       done;
       !ok && !prev = ma)

let qcheck_schedule_deterministic =
  QCheck.Test.make ~count:200 ~name:"equal (seed, job) give byte-identical schedules"
    retry_case
    (fun (seed, job, ma, bd) ->
       let pol = policy_of (ma, bd) in
       let s1 = Retry.schedule pol ~seed ~job in
       let s2 = Retry.schedule pol ~seed ~job in
       (* and the incremental API agrees with the pure one *)
       let t = Retry.create pol ~seed ~job in
       let rec steps acc =
         match Retry.next_delay t with None -> List.rev acc | Some d -> steps (d :: acc)
       in
       s1 = s2 && s1 = steps [])

(* ------------------------------------------------------------------ *)
(* Breaker: closed -> open -> half-open -> closed on a logical clock   *)
(* ------------------------------------------------------------------ *)

let test_breaker_trip_and_recover () =
  let cfg = { Breaker.failure_threshold = 3; cooldown = 5; probe_budget = 2 } in
  let b = Breaker.create cfg in
  checkb "closed admits" true (Breaker.admit b ~now:0);
  Breaker.record_failure b ~now:1;
  Breaker.record_failure b ~now:1;
  checkb "below threshold stays closed" true (Breaker.admit b ~now:1);
  Breaker.record_failure b ~now:2;
  checkb "open rejects" false (Breaker.admit b ~now:3);
  checkb "open rejects until cooldown" false (Breaker.admit b ~now:6);
  checkb "half-open admits first probe" true (Breaker.admit b ~now:7);
  checkb "half-open admits second probe" true (Breaker.admit b ~now:7);
  checkb "probe budget exhausted" false (Breaker.admit b ~now:7);
  Breaker.record_success b ~now:8;
  Breaker.record_success b ~now:8;
  checkb "closed after enough probe successes" true (Breaker.admit b ~now:8);
  Alcotest.(check (list string)) "transition sequence"
    [ "open"; "half_open"; "closed" ]
    (List.map (fun (_, s) -> Breaker.state_name s) (Breaker.transitions b))

let test_breaker_probe_failure_reopens () =
  let cfg = { Breaker.failure_threshold = 1; cooldown = 4; probe_budget = 1 } in
  let b = Breaker.create cfg in
  Breaker.record_failure b ~now:0;
  checkb "tripped on first failure" false (Breaker.admit b ~now:1);
  checkb "probe admitted after cooldown" true (Breaker.admit b ~now:4);
  Breaker.record_failure b ~now:5;
  checkb "failed probe reopens" false (Breaker.admit b ~now:6);
  (* the cooldown restarts from the failed probe, not the first trip *)
  checkb "still open before the fresh cooldown ends" false (Breaker.admit b ~now:8);
  checkb "half-open again after the fresh cooldown" true (Breaker.admit b ~now:9);
  Alcotest.(check (list string)) "reopen sequence"
    [ "open"; "half_open"; "open"; "half_open" ]
    (List.map (fun (_, s) -> Breaker.state_name s) (Breaker.transitions b))

(* Regression for the half-open probe accounting: with a non-blocking
   front door, results arrive long after admission, so a result from an
   older breaker window must be dropped — it can neither consume the
   single fresh probe budget nor flip the state. *)
let test_breaker_stale_generation () =
  let cfg = { Breaker.failure_threshold = 1; cooldown = 2; probe_budget = 1 } in
  let b = Breaker.create cfg in
  (* a job admitted in the initial closed world carries this window *)
  checkb "closed admits" true (Breaker.admit b ~now:0);
  let gen_closed = Breaker.generation b in
  Breaker.record_failure b ~now:1;
  (* cooldown elapsed: a probe is admitted in the half-open window *)
  checkb "probe admitted" true (Breaker.admit b ~now:3);
  let gen_probe = Breaker.generation b in
  checkb "state change bumped the generation" true (gen_probe <> gen_closed);
  (* the probe fails: reopen (fresh window) *)
  Breaker.record_failure ~gen:gen_probe b ~now:4;
  checkb "failed probe reopened" false (Breaker.admit b ~now:4);
  (* the closed-world job's success lands now: stale, dropped, no close *)
  Breaker.record_success ~gen:gen_closed b ~now:4;
  checkb "stale success cannot close an open breaker" false (Breaker.admit b ~now:4);
  checki "stale result counted" 1 (Breaker.stale_results b);
  (* second half-open window: our probe consumes the whole budget *)
  checkb "second probe admitted" true (Breaker.admit b ~now:6);
  checkb "budget of one consumed" false (Breaker.admit b ~now:6);
  (* a success from the PREVIOUS half-open window must not complete
     this window's probe *)
  Breaker.record_success ~gen:gen_probe b ~now:6;
  checkb "stale probe success did not close" true
    (Breaker.state b ~now:6 = Breaker.Half_open);
  checki "second stale result counted" 2 (Breaker.stale_results b);
  (* the current window's own success does close *)
  Breaker.record_success ~gen:(Breaker.generation b) b ~now:7;
  checkb "fresh probe success closes" true (Breaker.admit b ~now:7);
  Alcotest.(check (list string)) "only fresh results drove the machine"
    [ "open"; "half_open"; "open"; "half_open"; "closed" ]
    (List.map (fun (_, s) -> Breaker.state_name s) (Breaker.transitions b))

(* ------------------------------------------------------------------ *)
(* Fair queue: DRR dispatch                                            *)
(* ------------------------------------------------------------------ *)

let test_fair_queue_drr_order () =
  let q = Fair_queue.create () in
  Fair_queue.add_tenant q ~name:"a" ~weight:2 ~bound:8;
  Fair_queue.add_tenant q ~name:"b" ~weight:1 ~bound:8;
  List.iter (fun i -> ignore (Fair_queue.push q ~tenant:"a" i)) [ 1; 2; 3; 4 ];
  List.iter (fun i -> ignore (Fair_queue.push q ~tenant:"b" i)) [ 10; 20 ];
  let pops = List.init 6 (fun _ -> Option.get (Fair_queue.pop q)) in
  Alcotest.(check (list (pair string int)))
    "weight-2 lane gets two pops per round"
    [ ("a", 1); ("a", 2); ("b", 10); ("a", 3); ("a", 4); ("b", 20) ]
    pops;
  checkb "drained" true (Fair_queue.pop q = None)

let test_fair_queue_bounds_and_remove () =
  let q = Fair_queue.create () in
  Fair_queue.add_tenant q ~name:"a" ~weight:1 ~bound:2;
  checkb "push ok" true (Fair_queue.push q ~tenant:"a" 1 = Ok ());
  checkb "push ok" true (Fair_queue.push q ~tenant:"a" 2 = Ok ());
  checkb "bound refuses" true (Fair_queue.push q ~tenant:"a" 3 = Error `Queue_full);
  Fair_queue.push_force q ~tenant:"a" 3;
  checki "forced push bypasses the bound" 3 (Fair_queue.depth q "a");
  Fair_queue.push_front q ~tenant:"a" 0;
  checki "peak depth tracked" 4 (Fair_queue.peak_depth q "a");
  checkb "front requeue pops first" true (Fair_queue.pop q = Some ("a", 0));
  checkb "remove finds a queued job" true
    (Fair_queue.remove q ~tenant:"a" (fun x -> x = 2) = Some 2);
  checkb "removed job is gone" true (Fair_queue.remove q ~tenant:"a" (fun x -> x = 2) = None);
  checki "total" 2 (Fair_queue.total q);
  checki "total_bound" 2 (Fair_queue.total_bound q);
  checki "min_weight" 1 (Fair_queue.min_weight q)

(* The isolation property behind the whole front door: over any interval
   in which every lane stays backlogged, each lane's dispatch count is
   within one quantum (its weight) of its weight-proportional share. *)
let fq_case =
  QCheck.(pair (list_of_size Gen.(int_range 2 4) (int_range 1 5)) (int_range 1 60))

let qcheck_fair_share =
  QCheck.Test.make ~count:300
    ~name:"DRR dispatch share within one quantum of weight share" fq_case
    (fun (weights, n) ->
       let q = Fair_queue.create () in
       List.iteri
         (fun i w -> Fair_queue.add_tenant q ~name:(string_of_int i) ~weight:w ~bound:n)
         weights;
       (* every lane holds n jobs, so no lane drains within n pops *)
       List.iteri
         (fun i _ ->
            for j = 1 to n do
              ignore (Fair_queue.push q ~tenant:(string_of_int i) j)
            done)
         weights;
       let counts = Array.make (List.length weights) 0 in
       for _ = 1 to n do
         match Fair_queue.pop q with
         | Some (t, _) ->
           let i = int_of_string t in
           counts.(i) <- counts.(i) + 1
         | None -> ()
       done;
       let total_w = List.fold_left ( + ) 0 weights in
       (* |count_i - n * w_i / W| <= w_i, compared without rounding *)
       List.for_all
         (fun (i, w) -> abs ((total_w * counts.(i)) - (n * w)) <= w * total_w)
         (List.mapi (fun i w -> (i, w)) weights))

(* ------------------------------------------------------------------ *)
(* Ladder: immediate degradation, hysteretic one-rung recovery         *)
(* ------------------------------------------------------------------ *)

let test_ladder_degrade_and_recover () =
  let cfg = { Ladder.coalesce_at = 50; shed_at = 75; break_at = 90; calm_steps = 2 } in
  let l = Ladder.create cfg in
  checkb "starts at accept" true (Ladder.level l = Ladder.Accept);
  (match Ladder.observe l ~now:1 ~occupancy_pct:60 ~pressure_pct:0 with
   | Some (Ladder.Accept, Ladder.Coalesce) -> ()
   | _ -> Alcotest.fail "expected accept -> coalesce");
  (* the signal is max(occupancy, pressure): memory pressure alone can
     degrade, and degradation jumps straight to the target rung *)
  (match Ladder.observe l ~now:2 ~occupancy_pct:10 ~pressure_pct:95 with
   | Some (Ladder.Coalesce, Ladder.Break) -> ()
   | _ -> Alcotest.fail "expected coalesce -> break on a pressure spike");
  (* one calm sample is not enough *)
  checkb "no recovery after one calm step" true
    (Ladder.observe l ~now:3 ~occupancy_pct:0 ~pressure_pct:0 = None);
  (* a loud sample resets the calm counter *)
  checkb "loud sample holds the rung" true
    (Ladder.observe l ~now:4 ~occupancy_pct:95 ~pressure_pct:0 = None);
  checkb "calm counter was reset" true
    (Ladder.observe l ~now:5 ~occupancy_pct:0 ~pressure_pct:0 = None);
  (match Ladder.observe l ~now:6 ~occupancy_pct:0 ~pressure_pct:0 with
   | Some (Ladder.Break, Ladder.Shed) -> ()
   | _ -> Alcotest.fail "expected one-rung recovery break -> shed");
  (* recovery climbs one rung per calm window, never jumps *)
  ignore (Ladder.observe l ~now:7 ~occupancy_pct:0 ~pressure_pct:0);
  (match Ladder.observe l ~now:8 ~occupancy_pct:0 ~pressure_pct:0 with
   | Some (Ladder.Shed, Ladder.Coalesce) -> ()
   | _ -> Alcotest.fail "expected shed -> coalesce");
  ignore (Ladder.observe l ~now:9 ~occupancy_pct:0 ~pressure_pct:0);
  ignore (Ladder.observe l ~now:10 ~occupancy_pct:0 ~pressure_pct:0);
  checkb "back to accept" true (Ladder.level l = Ladder.Accept);
  Alcotest.(check (list string)) "full trajectory recorded"
    [ "coalesce"; "break"; "shed"; "coalesce"; "accept" ]
    (List.map (fun (_, lvl) -> Ladder.level_name lvl) (Ladder.transitions l))

let test_ladder_validates () =
  let bad cfg = try Ladder.validate cfg; false with Invalid_argument _ -> true in
  let base = Ladder.default_config in
  checkb "coalesce_at >= 1" true (bad { base with Ladder.coalesce_at = 0 });
  checkb "shed_at >= coalesce_at" true
    (bad { base with Ladder.shed_at = base.Ladder.coalesce_at - 1 });
  checkb "break_at >= shed_at" true (bad { base with Ladder.break_at = base.Ladder.shed_at - 1 });
  checkb "calm_steps >= 1" true (bad { base with Ladder.calm_steps = 0 })

(* ------------------------------------------------------------------ *)
(* Handle: status machine and callbacks                                *)
(* ------------------------------------------------------------------ *)

let test_handle_lifecycle () =
  let h = Handle.make ~id:7 ~tenant:"t" in
  checki "id" 7 (Handle.id h);
  Alcotest.(check string) "tenant" "t" (Handle.tenant h);
  checkb "fresh handle is queued" true (Handle.status h = Handle.Queued);
  checkb "not done" false (Handle.is_done h);
  let log = ref [] in
  Handle.on_done h (fun v -> log := ("a", v) :: !log);
  Handle.on_done h (fun v -> log := ("b", v) :: !log);
  Handle.set_running h;
  checkb "running" true (Handle.status h = Handle.Running);
  Handle.set_queued h;
  checkb "back to queued on retry" true (Handle.status h = Handle.Queued);
  Handle.resolve h 1;
  checkb "done" true (Handle.is_done h);
  Alcotest.(check (list (pair string int)))
    "callbacks fired once, in registration order"
    [ ("b", 1); ("a", 1) ] !log;
  Handle.resolve h 2;
  checkb "second resolve ignored" true (Handle.status h = Handle.Done 1);
  Handle.set_running h;
  checkb "set_running after done is a no-op" true (Handle.status h = Handle.Done 1);
  Handle.on_done h (fun v -> log := ("late", v) :: !log);
  checkb "late registration fires immediately with the settled value" true
    (List.hd !log = ("late", 1))

(* ------------------------------------------------------------------ *)
(* Quota controller: AIMD on the logical clock                         *)
(* ------------------------------------------------------------------ *)

let test_quota_ctl_shrink_floor_recover () =
  let cfg =
    {
      Quota_ctl.k_init = 16_000;
      k_min = 2_000;
      k_max = 16_000;
      high_watermark = 10_000;
      low_watermark = 2_000;
      recover_steps = 2;
    }
  in
  let qc = Quota_ctl.create cfg in
  (match Quota_ctl.observe qc ~now:1 ~pressure:100_000 with
   | Quota_ctl.Shrink { from_quota = 16_000; to_quota = 8_000 } -> ()
   | _ -> Alcotest.fail "expected first shrink 16000 -> 8000");
  ignore (Quota_ctl.observe qc ~now:2 ~pressure:100_000);
  ignore (Quota_ctl.observe qc ~now:3 ~pressure:100_000);
  checki "pinned at the floor" 2_000 (Quota_ctl.quota qc);
  (match Quota_ctl.observe qc ~now:4 ~pressure:100_000 with
   | Quota_ctl.Steady -> ()
   | _ -> Alcotest.fail "at the floor, high pressure must hold steady");
  checkb "shedding at the floor under pressure" true (Quota_ctl.shedding qc);
  (* calm: the EWMA decays, then K doubles every [recover_steps] *)
  let grows = ref 0 in
  for i = 5 to 60 do
    match Quota_ctl.observe qc ~now:i ~pressure:0 with
    | Quota_ctl.Grow _ -> incr grows
    | _ -> ()
  done;
  checki "recovered to the ceiling" 16_000 (Quota_ctl.quota qc);
  checki "three doublings back" 3 !grows;
  checkb "no longer shedding" false (Quota_ctl.shedding qc);
  checkb "trajectory recorded every move" true
    (List.length (Quota_ctl.trajectory qc) = 3 + 3)

let test_quota_ctl_validates () =
  let bad cfg = try Quota_ctl.validate cfg; false with Invalid_argument _ -> true in
  let base = Quota_ctl.default_config in
  checkb "k_min > 0" true (bad { base with Quota_ctl.k_min = 0 });
  checkb "k_max >= k_min" true (bad { base with Quota_ctl.k_max = base.Quota_ctl.k_min - 1 });
  checkb "k_init in range" true (bad { base with Quota_ctl.k_init = base.Quota_ctl.k_max + 1 });
  checkb "watermarks ordered" true
    (bad { base with Quota_ctl.low_watermark = base.Quota_ctl.high_watermark + 1 });
  checkb "recover_steps >= 1" true (bad { base with Quota_ctl.recover_steps = 0 })

(* ------------------------------------------------------------------ *)
(* Service end-to-end                                                  *)
(* ------------------------------------------------------------------ *)

let base_config =
  {
    Service.default_config with
    Service.seed = 42;
    domains = 2;
    retry = { Retry.max_attempts = 3; base_delay = 1; max_delay = 4 };
  }

let with_service ?(config = base_config) ?tracer ?fault policy f =
  let svc = Service.create ?tracer ?fault ~config policy in
  (* [reap] is only safe when a test has released its wedge tasks; tests
     that wedge call shutdown themselves *)
  Fun.protect ~finally:(fun () -> try Service.shutdown svc with _ -> ()) (fun () -> f svc)

let entry svc id = List.find (fun e -> e.Service.job = id) (Service.ledger svc)

(* submit-and-check-admission, the migration of the old result API *)
let sub svc ?tenant ?class_ ?key ?deadline f =
  Service.admission (Service.submit svc ?tenant ?class_ ?key ?deadline f)

let test_all_complete_exactly_once () =
  with_service Pool.Work_stealing (fun svc ->
      let ran = Atomic.make 0 in
      let ids =
        List.init 20 (fun _ ->
            Result.get_ok
              (sub svc (fun () ->
                   Atomic.incr ran;
                   ignore (Pool.parallel_reduce ~zero:0 ~op:( + ) ~lo:0 ~hi:64 Fun.id))))
      in
      Service.drive svc;
      checkb "idle after drive" true (Service.idle svc);
      checki "every job ran exactly once" 20 (Atomic.get ran);
      let c = Service.counters svc in
      checki "20 completions" 20 c.Service.completions;
      checki "no failures" 0 c.Service.failures;
      checki "no duplicate acks" 0 c.Service.duplicate_acks;
      List.iter
        (fun id ->
           checkb "ledger says completed" true
             ((entry svc id).Service.outcome = Some Service.Completed))
        ids;
      (match Service.verify_ledger svc with
       | Ok () -> ()
       | Error m -> Alcotest.fail ("ledger audit: " ^ m)))

let test_retry_to_budget_then_failed () =
  with_service Pool.Work_stealing (fun svc ->
      let runs = Atomic.make 0 in
      let id =
        Result.get_ok
          (sub svc ~class_:"boom" (fun () ->
               Atomic.incr runs;
               failwith "boom"))
      in
      Service.drive svc;
      checki "attempted exactly max_attempts times" 3 (Atomic.get runs);
      let e = entry svc id in
      checkb "failed terminally" true
        (match e.Service.outcome with Some (Service.Failed _) -> true | _ -> false);
      checki "ledger attempts" 3 e.Service.attempts;
      let c = Service.counters svc in
      checki "two retries scheduled" 2 c.Service.retries;
      (match Service.verify_ledger svc with
       | Ok () -> ()
       | Error m -> Alcotest.fail ("ledger audit: " ^ m)))

let test_flaky_recovers_after_one_retry () =
  with_service Pool.Work_stealing (fun svc ->
      let tripped = Atomic.make false in
      let id =
        Result.get_ok
          (sub svc ~class_:"flaky" (fun () ->
               if not (Atomic.exchange tripped true) then failwith "flaky"))
      in
      Service.drive svc;
      let e = entry svc id in
      checkb "completed" true (e.Service.outcome = Some Service.Completed);
      checki "two attempts" 2 e.Service.attempts;
      checki "one retry" 1 (Service.counters svc).Service.retries)

let test_queue_full_sheds () =
  let config =
    { base_config with Service.tenants = [ Tenant.make ~queue_bound:2 "default" ] }
  in
  with_service ~config Pool.Work_stealing (fun svc ->
      checkb "first accepted" true (Result.is_ok (sub svc (fun () -> ())));
      checkb "second accepted" true (Result.is_ok (sub svc (fun () -> ())));
      let fired = ref None in
      let h3 = Service.submit svc ~on_done:(fun o -> fired := Some o) (fun () -> ()) in
      checkb "third shed" true (Service.admission h3 = Error Service.Queue_full);
      (* a synchronous rejection is terminal on the handle and fires the
         completion callback — the caller needs no second code path *)
      checkb "shed handle resolved synchronously" true
        (Handle.status h3 = Handle.Done (Service.Rejected Service.Queue_full));
      checkb "on_done fired for the rejection" true
        (!fired = Some (Service.Rejected Service.Queue_full));
      Service.drive svc;
      let c = Service.counters svc in
      checki "queue_full counted" 1 c.Service.rejected_queue_full;
      checki "accepted ran" 2 c.Service.completions;
      (* the shed submission still has a ledger entry with a terminal
         outcome — rejected jobs are recorded, not lost *)
      (match Service.verify_ledger svc with
       | Ok () -> ()
       | Error m -> Alcotest.fail ("ledger audit: " ^ m)))

let test_handle_await_poll_callbacks () =
  with_service Pool.Work_stealing (fun svc ->
      let seen = ref None in
      let h = Service.submit svc ~on_done:(fun o -> seen := Some o) (fun () -> ()) in
      checkb "queued right after submit" true (Service.poll h = Handle.Queued);
      (match Service.await svc h with
       | Some Service.Completed -> ()
       | _ -> Alcotest.fail "await must drive the job to its outcome");
      checkb "poll agrees" true (Service.poll h = Handle.Done Service.Completed);
      checkb "callback fired with the outcome" true (!seen = Some Service.Completed);
      (* await on a settled handle returns without stepping *)
      checkb "await is idempotent" true (Service.await svc h = Some Service.Completed))

let test_cancel_queued_job () =
  with_service Pool.Work_stealing (fun svc ->
      let ran = Atomic.make false in
      let victim = Service.submit svc (fun () -> Atomic.set ran true) in
      let bystander = Service.submit svc (fun () -> ()) in
      checkb "cancel succeeds while queued" true (Service.cancel svc victim);
      checkb "cancel is terminal on the handle" true
        (Handle.status victim = Handle.Done Service.Cancelled);
      checkb "second cancel returns false" false (Service.cancel svc victim);
      Service.drive svc;
      checkb "cancelled work never ran" false (Atomic.get ran);
      checkb "bystander unaffected" true
        (Handle.status bystander = Handle.Done Service.Completed);
      checkb "cannot cancel a finished job" false (Service.cancel svc bystander);
      checki "cancelled counted" 1 (Service.counters svc).Service.cancelled;
      (match Service.verify_ledger svc with
       | Ok () -> ()
       | Error m -> Alcotest.fail ("ledger audit: " ^ m)))

(* Coalescing: at ladder >= Coalesce, a duplicate (tenant, key) rides the
   queued primary — the work runs once, both handles settle. *)
let test_coalesce_duplicates () =
  let config =
    {
      base_config with
      Service.tenants = [ Tenant.make ~queue_bound:8 "default" ];
      ladder = { Ladder.coalesce_at = 10; shed_at = 90; break_at = 100; calm_steps = 2 };
    }
  in
  with_service ~config Pool.Work_stealing (fun svc ->
      let ran = Atomic.make 0 in
      let body () = Atomic.incr ran in
      let filler = Service.submit svc ~class_:"filler" body in
      let primary = Service.submit svc ~key:"A" body in
      (* the ladder samples at the step: occupancy 2/8 = 25% >= 10 *)
      Service.step svc;
      checkb "ladder reached coalesce" true (Service.ladder_level svc = Ladder.Coalesce);
      let dup = Service.submit svc ~key:"A" body in
      checkb "duplicate admitted" true (Result.is_ok (Service.admission dup));
      checki "coalesce counted" 1 (Service.counters svc).Service.coalesced;
      (* a distinct key does not coalesce *)
      let other = Service.submit svc ~key:"B" body in
      checki "distinct key queued normally" 1 (Service.counters svc).Service.coalesced;
      Service.drive svc;
      checki "coalesced work ran once per primary" 3 (Atomic.get ran);
      checkb "follower settled with the primary's outcome" true
        (Handle.status dup = Handle.Done Service.Completed);
      checkb "primary completed" true (Handle.status primary = Handle.Done Service.Completed);
      checkb "filler completed" true (Handle.status filler = Handle.Done Service.Completed);
      checkb "other key completed" true (Handle.status other = Handle.Done Service.Completed);
      (match Service.verify_ledger svc with
       | Ok () -> ()
       | Error m -> Alcotest.fail ("ledger audit: " ^ m)))

(* The isolation story end-to-end: a bully filling its low-weight lane
   drives the ladder to Shed; only the bully is refused, the victim is
   admitted throughout and its tail latency stays bounded. *)
let test_bully_shed_first_victims_bounded () =
  let config =
    {
      base_config with
      Service.tenants =
        [ Tenant.make ~weight:4 ~queue_bound:16 "gold";
          Tenant.make ~weight:1 ~queue_bound:4 "bronze" ];
      ladder = { Ladder.coalesce_at = 10; shed_at = 20; break_at = 95; calm_steps = 2 };
    }
  in
  with_service ~config Pool.Work_stealing (fun svc ->
      (* the bully fills its whole lane: 4 of 20 slots = 20% occupancy *)
      for _ = 1 to 4 do
        checkb "bully backlog admitted" true (Result.is_ok (sub svc ~tenant:"bronze" (fun () -> ())))
      done;
      Service.step svc;
      checkb "ladder degraded to shed" true
        (Ladder.level_index (Service.ladder_level svc) >= Ladder.level_index Ladder.Shed);
      (match sub svc ~tenant:"bronze" (fun () -> ()) with
       | Error Service.Overloaded -> ()
       | _ -> Alcotest.fail "the lowest-weight tenant must be shed first");
      checkb "the victim is still admitted at Shed" true
        (Result.is_ok (sub svc ~tenant:"gold" (fun () -> ())));
      Service.drive svc;
      let stats = Service.tenant_stats svc in
      let stat n = List.find (fun ts -> ts.Service.ts_name = n) stats in
      let bronze = stat "bronze" and gold = stat "gold" in
      checkb "bully has a first-shed step" true (bronze.Service.ts_first_shed <> None);
      checkb "victim was never shed" true (gold.Service.ts_first_shed = None);
      checki "victim saw zero rejections" 0
        (gold.Service.ts_rejected_overloaded + gold.Service.ts_rejected_queue_full
         + gold.Service.ts_rejected_breaker_open + gold.Service.ts_rejected_memory_pressure);
      checki "one overloaded shed, attributed to the bully" 1
        bronze.Service.ts_rejected_overloaded;
      (* DRR gives the weight-4 victim its share: latency stays small
         even with the bully's backlog ahead of it in wall order *)
      (match Stats.Histogram.quantile gold.Service.ts_latency 0.99 with
       | Some p99 -> checkb "victim p99 bounded" true (p99 <= 10.0)
       | None -> Alcotest.fail "victim completed nothing");
      checkb "lane depth stayed within its bound" true
        (bronze.Service.ts_peak_depth <= bronze.Service.ts_bound);
      (match Service.verify_ledger svc with
       | Ok () -> ()
       | Error m -> Alcotest.fail ("ledger audit: " ^ m)))

let test_unknown_tenant_rejected () =
  with_service Pool.Work_stealing (fun svc ->
      checkb "unknown tenant raises" true
        (try
           ignore (Service.submit svc ~tenant:"nope" (fun () -> ()));
           false
         with Invalid_argument _ -> true))

let test_deadline_enforced () =
  let config =
    { base_config with Service.retry = { Retry.max_attempts = 2; base_delay = 1; max_delay = 2 } }
  in
  with_service ~config Pool.Work_stealing (fun svc ->
      let id =
        Result.get_ok
          (sub svc ~class_:"slow" ~deadline:0.05 (fun () ->
               let rec loop () =
                 ignore (Pool.fork_join (fun () -> ()) (fun () -> ()));
                 loop ()
               in
               loop ()))
      in
      Service.drive svc;
      let e = entry svc id in
      (match e.Service.outcome with
       | Some (Service.Failed m) ->
         checkb "failure mentions the deadline" true (m = "deadline exceeded")
       | o ->
         Alcotest.failf "expected deadline failure, got %s"
           (match o with
            | Some Service.Completed -> "completed"
            | Some (Service.Rejected _) -> "rejected"
            | Some Service.Cancelled -> "cancelled"
            | _ -> "unresolved"));
      checki "every attempt timed out" 2 (Service.counters svc).Service.timeouts)

(* The full admission cycle on the logical clock: failures trip the
   class breaker, submissions shed while open, the cooldown admits a
   probe, and a probe success closes it again. *)
let test_breaker_cycle_through_service () =
  let config =
    {
      base_config with
      Service.retry = { Retry.max_attempts = 1; base_delay = 1; max_delay = 1 };
      breaker = { Breaker.failure_threshold = 2; cooldown = 3; probe_budget = 1 };
    }
  in
  with_service ~config Pool.Work_stealing (fun svc ->
      let fail_job () = failwith "x" in
      checkb "f1 accepted" true (Result.is_ok (sub svc ~class_:"x" fail_job));
      Service.step svc;
      checkb "f2 accepted" true (Result.is_ok (sub svc ~class_:"x" fail_job));
      Service.step svc;
      (* threshold reached at step 2: the breaker for "x" is open *)
      (match sub svc ~class_:"x" (fun () -> ()) with
       | Error (Service.Breaker_open "x") -> ()
       | _ -> Alcotest.fail "expected Breaker_open rejection");
      checkb "other classes unaffected" true (Result.is_ok (sub svc ~class_:"y" (fun () -> ())));
      Service.drive svc;
      (* idle steps let the cooldown elapse on the logical clock *)
      Service.step svc;
      Service.step svc;
      let probe = sub svc ~class_:"x" (fun () -> ()) in
      checkb "probe admitted after cooldown" true (Result.is_ok probe);
      Service.drive svc;
      Alcotest.(check (list string)) "breaker walked the full cycle"
        [ "open"; "half_open"; "closed" ]
        (List.filter_map
           (fun (_, cl, st) -> if cl = "x" then Some st else None)
           (Service.breaker_transitions svc));
      checki "one shed while open" 1 (Service.counters svc).Service.rejected_breaker_open;
      checki "no stale results in a serial run" 0 (Service.breaker_stale_results svc);
      match Service.verify_ledger svc with
      | Ok () -> ()
      | Error m -> Alcotest.fail ("ledger audit: " ^ m))

(* The supervision contract: a job that spins outside cooperative
   cancellation wedges the pool; the supervisor kills it, respawns, and
   requeues the job exactly once.  The respawn callback releases the
   spin flag, so the second attempt completes — zero lost jobs, zero
   duplicated acknowledgements, and the fresh pool keeps serving. *)
let test_wedge_respawn_exactly_once () =
  let wedge_flags : (int, bool Atomic.t) Hashtbl.t = Hashtbl.create 4 in
  let config =
    {
      base_config with
      Service.wedge_grace = 0.5;
      on_pool_retired =
        Some
          (fun ~in_flight ->
            match in_flight with
            | Some id -> (
                match Hashtbl.find_opt wedge_flags id with
                | Some flag -> Atomic.set flag true
                | None -> ())
            | None -> ());
    }
  in
  let svc = Service.create ~config (Pool.Dfdeques { quota = 4096 }) in
  let flag = Atomic.make false in
  let wedge_id =
    Result.get_ok
      (Service.admission
         (Service.submit svc ~class_:"wedge" (fun () ->
              while not (Atomic.get flag) do
                Domain.cpu_relax ()
              done)))
  in
  Hashtbl.replace wedge_flags wedge_id flag;
  Service.drive svc;
  let e = entry svc wedge_id in
  checkb "wedged job completed on the respawned pool" true
    (e.Service.outcome = Some Service.Completed);
  checki "requeued exactly once" 1 e.Service.requeues;
  let c = Service.counters svc in
  checki "one wedge" 1 c.Service.wedges;
  checki "one respawn" 1 c.Service.respawns;
  checki "no duplicate acks" 0 c.Service.duplicate_acks;
  (* the respawned pool is a working pool *)
  let after = Result.get_ok (Service.admission (Service.submit svc (fun () -> ()))) in
  Service.drive svc;
  checkb "post-respawn job completes" true
    ((entry svc after).Service.outcome = Some Service.Completed);
  (match Service.verify_ledger svc with
   | Ok () -> ()
   | Error m -> Alcotest.fail ("ledger audit: " ^ m));
  Service.shutdown ~reap:true svc

let test_supervisor_gives_up () =
  let config =
    { base_config with Service.wedge_grace = 0.3; max_respawns = 0 }
  in
  let svc = Service.create ~config Pool.Work_stealing in
  let flag = Atomic.make false in
  ignore
    (Result.get_ok
       (Service.admission
          (Service.submit svc (fun () ->
               while not (Atomic.get flag) do
                 Domain.cpu_relax ()
               done))));
  checkb "giveup past max_respawns" true
    (try
       Service.drive svc;
       false
     with Service.Supervisor_giveup _ -> true);
  (* release the stuck task so shutdown can join the executor *)
  Atomic.set flag true;
  Service.shutdown svc

(* The surgical alternative to the wholesale respawn above: a seeded
   scheduler-level wedge (the victim dies holding an unstarted task, so
   [w_holding] is visible) is quarantined in place — the job completes
   at p-1 without retiring the pool, the slot respawns under the worker
   budget, and the wholesale machinery never fires.  [max_respawns = 0]
   makes that last claim load-bearing: any escalation would raise
   [Supervisor_giveup] and fail the test. *)
let test_surgical_quarantine_over_pool_respawn () =
  let config =
    {
      base_config with
      Service.domains = 3;
      wedge_grace = 0.3;
      max_respawns = 0;
      worker_respawn_budget = 1;
    }
  in
  let fault () =
    Dfd_fault.Fault.create
      ~rates:{ Dfd_fault.Fault.zero_rates with Dfd_fault.Fault.worker_wedge = Some 1 }
      ~seed:11 ()
  in
  List.iter
    (fun policy ->
       with_service ~config ~fault:(fault ()) policy (fun svc ->
           let id =
             Result.get_ok
               (sub svc (fun () ->
                    ignore (Pool.parallel_reduce ~zero:0 ~op:( + ) ~lo:0 ~hi:20_000 Fun.id)))
           in
           Service.drive svc;
           let e = entry svc id in
           checkb "job completed at p-1" true (e.Service.outcome = Some Service.Completed);
           checki "single attempt (no requeue)" 1 e.Service.attempts;
           let c = Service.counters svc in
           checki "one surgical quarantine" 1 c.Service.quarantines;
           checki "no wholesale wedge" 0 c.Service.wedges;
           checki "no pool respawn" 0 c.Service.respawns;
           (match Service.verify_ledger svc with
            | Ok () -> ()
            | Error m -> Alcotest.fail ("ledger audit: " ^ m));
           (* the slot was respawned under the worker budget, so the pool
              serves the next job at full strength *)
           let after = Result.get_ok (sub svc (fun () -> ())) in
           Service.drive svc;
           checkb "post-quarantine job completes" true
             ((entry svc after).Service.outcome = Some Service.Completed)))
    [ Pool.Work_stealing; Pool.Dfdeques { quota = 4096 } ]

(* Terminal error classes skip the retry schedule entirely: the job
   fails on its first attempt with zero retries scheduled.  A plain
   [Failure] stays retryable — the budget still applies to it. *)
let test_terminal_errors_not_retried () =
  checkb "Invalid_argument is terminal" true (Retry.is_terminal (Invalid_argument "x"));
  checkb "Supervisor_giveup is terminal" true
    (Retry.is_terminal (Service.Supervisor_giveup "wedged"));
  checkb "Failure stays retryable" false (Retry.is_terminal (Failure "boom"));
  checkb "Not_found stays retryable" false (Retry.is_terminal Not_found);
  with_service Pool.Work_stealing (fun svc ->
      let runs = Atomic.make 0 in
      let id =
        Result.get_ok
          (sub svc ~class_:"fatal" (fun () ->
               Atomic.incr runs;
               invalid_arg "schema mismatch"))
      in
      Service.drive svc;
      checki "ran exactly once" 1 (Atomic.get runs);
      let e = entry svc id in
      checkb "failed terminally" true
        (match e.Service.outcome with Some (Service.Failed _) -> true | _ -> false);
      checki "single attempt recorded" 1 e.Service.attempts;
      checki "no retries scheduled" 0 (Service.counters svc).Service.retries;
      (match Service.verify_ledger svc with
       | Ok () -> ()
       | Error m -> Alcotest.fail ("ledger audit: " ^ m)))

(* The ISSUE acceptance test for the control loop: an allocation spike
   observed through the pool's [alloc_bytes] counter drives K down (via
   [Pool.run ?quota], with [Quota_adjusted] trace events), and a calm
   stretch restores it to the ceiling. *)
let test_adaptive_quota_reacts () =
  let qcfg =
    {
      Quota_ctl.k_init = 32_000;
      k_min = 4_000;
      k_max = 32_000;
      high_watermark = 20_000;
      low_watermark = 5_000;
      recover_steps = 2;
    }
  in
  let config = { base_config with Service.quota_ctl = Some qcfg } in
  let tracer = Tracer.create () in
  with_service ~config ~tracer (Pool.Dfdeques { quota = 32_000 }) (fun svc ->
      checki "starts at k_init" 32_000 (Option.get (Service.quota svc));
      (* allocation spikes: each job reports 200 kB, far above the
         high watermark.  Once K pins at the floor the service may start
         shedding spikes (Memory_pressure) — that is the intended
         degradation, tested separately, so only the first admission is
         asserted here *)
      checkb "first spike admitted" true
        (Result.is_ok (sub svc ~class_:"spike" (fun () -> Pool.alloc_hint 200_000)));
      Service.step svc;
      for _ = 1 to 3 do
        ignore (Service.submit svc ~class_:"spike" (fun () -> Pool.alloc_hint 200_000));
        Service.step svc
      done;
      Service.step svc;
      (* one more tick so the last spike's pressure is observed *)
      let shrunk = Option.get (Service.quota svc) in
      checkb "spike drove K down" true (shrunk < 32_000);
      checkb "trajectory shows the shrink" true
        (List.exists (fun (_, k) -> k < 32_000) (Service.quota_trajectory svc));
      (* calm: idle steps with zero pressure until the controller
         recovers the ceiling *)
      for _ = 1 to 40 do
        Service.step svc
      done;
      checki "calm restored K to the ceiling" 32_000 (Option.get (Service.quota svc));
      checkb "Quota_adjusted events were traced" true
        (Tracer.count tracer
           (Event.Quota_adjusted { from_quota = 0; to_quota = 0; pressure = 0 })
         > 0))

let test_memory_pressure_sheds () =
  (* floor == ceiling: the controller cannot shrink, so sustained
     pressure goes straight to admission shedding *)
  let qcfg =
    {
      Quota_ctl.k_init = 1_000;
      k_min = 1_000;
      k_max = 2_000;
      high_watermark = 100;
      low_watermark = 10;
      recover_steps = 2;
    }
  in
  let config = { base_config with Service.quota_ctl = Some qcfg } in
  with_service ~config (Pool.Dfdeques { quota = 1_000 }) (fun svc ->
      ignore (Result.get_ok (sub svc ~class_:"spike" (fun () -> Pool.alloc_hint 10_000)));
      Service.step svc;
      Service.step svc;
      (match sub svc (fun () -> ()) with
       | Error Service.Memory_pressure -> ()
       | _ -> Alcotest.fail "expected Memory_pressure rejection");
      checki "shed counted" 1 (Service.counters svc).Service.rejected_memory_pressure;
      match Service.verify_ledger svc with
      | Ok () -> ()
      | Error m -> Alcotest.fail ("ledger audit: " ^ m))

let () =
  Alcotest.run "service"
    [
      ( "retry",
        [
          QCheck_alcotest.to_alcotest ~long:false qcheck_delays_bounded;
          QCheck_alcotest.to_alcotest ~long:false qcheck_budget_never_exceeded;
          QCheck_alcotest.to_alcotest ~long:false qcheck_attempts_monotone;
          QCheck_alcotest.to_alcotest ~long:false qcheck_schedule_deterministic;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trip and recover" `Quick test_breaker_trip_and_recover;
          Alcotest.test_case "probe failure reopens" `Quick test_breaker_probe_failure_reopens;
          Alcotest.test_case "stale generation dropped" `Quick test_breaker_stale_generation;
        ] );
      ( "fair_queue",
        [
          Alcotest.test_case "DRR dispatch order" `Quick test_fair_queue_drr_order;
          Alcotest.test_case "bounds, requeue, remove" `Quick test_fair_queue_bounds_and_remove;
          QCheck_alcotest.to_alcotest ~long:false qcheck_fair_share;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "degrade and recover" `Quick test_ladder_degrade_and_recover;
          Alcotest.test_case "config validation" `Quick test_ladder_validates;
        ] );
      ( "handle",
        [ Alcotest.test_case "lifecycle and callbacks" `Quick test_handle_lifecycle ] );
      ( "quota_ctl",
        [
          Alcotest.test_case "shrink, floor, recover" `Quick test_quota_ctl_shrink_floor_recover;
          Alcotest.test_case "config validation" `Quick test_quota_ctl_validates;
        ] );
      ( "service",
        [
          Alcotest.test_case "all complete exactly once" `Quick test_all_complete_exactly_once;
          Alcotest.test_case "retry to budget then failed" `Quick
            test_retry_to_budget_then_failed;
          Alcotest.test_case "flaky recovers" `Quick test_flaky_recovers_after_one_retry;
          Alcotest.test_case "queue full sheds" `Quick test_queue_full_sheds;
          Alcotest.test_case "await, poll, callbacks" `Quick test_handle_await_poll_callbacks;
          Alcotest.test_case "cancel queued job" `Quick test_cancel_queued_job;
          Alcotest.test_case "coalesce duplicates" `Quick test_coalesce_duplicates;
          Alcotest.test_case "bully shed first, victims bounded" `Quick
            test_bully_shed_first_victims_bounded;
          Alcotest.test_case "unknown tenant rejected" `Quick test_unknown_tenant_rejected;
          Alcotest.test_case "deadline enforced" `Quick test_deadline_enforced;
          Alcotest.test_case "breaker cycle" `Quick test_breaker_cycle_through_service;
          Alcotest.test_case "wedge respawn exactly once" `Quick
            test_wedge_respawn_exactly_once;
          Alcotest.test_case "supervisor gives up" `Quick test_supervisor_gives_up;
          Alcotest.test_case "surgical quarantine over pool respawn" `Quick
            test_surgical_quarantine_over_pool_respawn;
          Alcotest.test_case "terminal errors not retried" `Quick
            test_terminal_errors_not_retried;
          Alcotest.test_case "adaptive K reacts" `Quick test_adaptive_quota_reacts;
          Alcotest.test_case "memory pressure sheds" `Quick test_memory_pressure_sheds;
        ] );
    ]
