(* Tests for the supervised job service (lib/service): the seeded
   full-jitter retry policy (property-tested), the per-class circuit
   breaker and adaptive-K quota controller state machines (unit-tested on
   the logical clock), and the service itself end-to-end against a real
   pool — exactly-once ledger, admission control, deadline/retry
   layering, wedge detection with pool respawn, and the adaptive-K
   control loop reacting to allocation pressure. *)

module Service = Dfd_service.Service
module Retry = Dfd_service.Retry
module Breaker = Dfd_service.Breaker
module Quota_ctl = Dfd_service.Quota_ctl
module Pool = Dfd_runtime.Pool
module Tracer = Dfd_trace.Tracer
module Event = Dfd_trace.Event

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Retry: seeded full-jitter backoff (properties)                      *)
(* ------------------------------------------------------------------ *)

(* (seed, job, policy) generator: small but covers the ramp, the cap and
   the budget edge (max_attempts = 1 means no retries at all). *)
let retry_case =
  QCheck.(
    quad (int_bound 1_000_000) (int_bound 500) (int_range 1 8)
      (pair (int_range 1 5) (int_bound 15)))

let policy_of (max_attempts, (base_delay, extra)) =
  { Retry.max_attempts; base_delay; max_delay = base_delay + extra }

let qcheck_delays_bounded =
  QCheck.Test.make ~count:200 ~name:"retry delays lie in [1, max_delay]" retry_case
    (fun (seed, job, ma, bd) ->
       let pol = policy_of (ma, bd) in
       List.for_all (fun d -> 1 <= d && d <= pol.Retry.max_delay)
         (Retry.schedule pol ~seed ~job))

let qcheck_budget_never_exceeded =
  QCheck.Test.make ~count:200
    ~name:"retry budget: exactly max_attempts - 1 delays, then None forever" retry_case
    (fun (seed, job, ma, bd) ->
       let pol = policy_of (ma, bd) in
       let t = Retry.create pol ~seed ~job in
       let delays = ref 0 in
       (* call well past exhaustion: the budget must hold anyway *)
       for _ = 1 to (2 * ma) + 3 do
         match Retry.next_delay t with Some _ -> incr delays | None -> ()
       done;
       !delays = ma - 1 && Retry.attempts t = ma)

let qcheck_attempts_monotone =
  QCheck.Test.make ~count:200
    ~name:"attempt counter is monotone and clamped at max_attempts" retry_case
    (fun (seed, job, ma, bd) ->
       let pol = policy_of (ma, bd) in
       let t = Retry.create pol ~seed ~job in
       let ok = ref true in
       let prev = ref (Retry.attempts t) in
       for _ = 1 to ma + 4 do
         ignore (Retry.next_delay t);
         let a = Retry.attempts t in
         if a < !prev || a > ma then ok := false;
         prev := a
       done;
       !ok && !prev = ma)

let qcheck_schedule_deterministic =
  QCheck.Test.make ~count:200 ~name:"equal (seed, job) give byte-identical schedules"
    retry_case
    (fun (seed, job, ma, bd) ->
       let pol = policy_of (ma, bd) in
       let s1 = Retry.schedule pol ~seed ~job in
       let s2 = Retry.schedule pol ~seed ~job in
       (* and the incremental API agrees with the pure one *)
       let t = Retry.create pol ~seed ~job in
       let rec steps acc =
         match Retry.next_delay t with None -> List.rev acc | Some d -> steps (d :: acc)
       in
       s1 = s2 && s1 = steps [])

(* ------------------------------------------------------------------ *)
(* Breaker: closed -> open -> half-open -> closed on a logical clock   *)
(* ------------------------------------------------------------------ *)

let test_breaker_trip_and_recover () =
  let cfg = { Breaker.failure_threshold = 3; cooldown = 5; probe_budget = 2 } in
  let b = Breaker.create cfg in
  checkb "closed admits" true (Breaker.admit b ~now:0);
  Breaker.record_failure b ~now:1;
  Breaker.record_failure b ~now:1;
  checkb "below threshold stays closed" true (Breaker.admit b ~now:1);
  Breaker.record_failure b ~now:2;
  checkb "open rejects" false (Breaker.admit b ~now:3);
  checkb "open rejects until cooldown" false (Breaker.admit b ~now:6);
  checkb "half-open admits first probe" true (Breaker.admit b ~now:7);
  checkb "half-open admits second probe" true (Breaker.admit b ~now:7);
  checkb "probe budget exhausted" false (Breaker.admit b ~now:7);
  Breaker.record_success b ~now:8;
  Breaker.record_success b ~now:8;
  checkb "closed after enough probe successes" true (Breaker.admit b ~now:8);
  Alcotest.(check (list string)) "transition sequence"
    [ "open"; "half_open"; "closed" ]
    (List.map (fun (_, s) -> Breaker.state_name s) (Breaker.transitions b))

let test_breaker_probe_failure_reopens () =
  let cfg = { Breaker.failure_threshold = 1; cooldown = 4; probe_budget = 1 } in
  let b = Breaker.create cfg in
  Breaker.record_failure b ~now:0;
  checkb "tripped on first failure" false (Breaker.admit b ~now:1);
  checkb "probe admitted after cooldown" true (Breaker.admit b ~now:4);
  Breaker.record_failure b ~now:5;
  checkb "failed probe reopens" false (Breaker.admit b ~now:6);
  (* the cooldown restarts from the failed probe, not the first trip *)
  checkb "still open before the fresh cooldown ends" false (Breaker.admit b ~now:8);
  checkb "half-open again after the fresh cooldown" true (Breaker.admit b ~now:9);
  Alcotest.(check (list string)) "reopen sequence"
    [ "open"; "half_open"; "open"; "half_open" ]
    (List.map (fun (_, s) -> Breaker.state_name s) (Breaker.transitions b))

(* ------------------------------------------------------------------ *)
(* Quota controller: AIMD on the logical clock                         *)
(* ------------------------------------------------------------------ *)

let test_quota_ctl_shrink_floor_recover () =
  let cfg =
    {
      Quota_ctl.k_init = 16_000;
      k_min = 2_000;
      k_max = 16_000;
      high_watermark = 10_000;
      low_watermark = 2_000;
      recover_steps = 2;
    }
  in
  let qc = Quota_ctl.create cfg in
  (match Quota_ctl.observe qc ~now:1 ~pressure:100_000 with
   | Quota_ctl.Shrink { from_quota = 16_000; to_quota = 8_000 } -> ()
   | _ -> Alcotest.fail "expected first shrink 16000 -> 8000");
  ignore (Quota_ctl.observe qc ~now:2 ~pressure:100_000);
  ignore (Quota_ctl.observe qc ~now:3 ~pressure:100_000);
  checki "pinned at the floor" 2_000 (Quota_ctl.quota qc);
  (match Quota_ctl.observe qc ~now:4 ~pressure:100_000 with
   | Quota_ctl.Steady -> ()
   | _ -> Alcotest.fail "at the floor, high pressure must hold steady");
  checkb "shedding at the floor under pressure" true (Quota_ctl.shedding qc);
  (* calm: the EWMA decays, then K doubles every [recover_steps] *)
  let grows = ref 0 in
  for i = 5 to 60 do
    match Quota_ctl.observe qc ~now:i ~pressure:0 with
    | Quota_ctl.Grow _ -> incr grows
    | _ -> ()
  done;
  checki "recovered to the ceiling" 16_000 (Quota_ctl.quota qc);
  checki "three doublings back" 3 !grows;
  checkb "no longer shedding" false (Quota_ctl.shedding qc);
  checkb "trajectory recorded every move" true
    (List.length (Quota_ctl.trajectory qc) = 3 + 3)

let test_quota_ctl_validates () =
  let bad cfg = try Quota_ctl.validate cfg; false with Invalid_argument _ -> true in
  let base = Quota_ctl.default_config in
  checkb "k_min > 0" true (bad { base with Quota_ctl.k_min = 0 });
  checkb "k_max >= k_min" true (bad { base with Quota_ctl.k_max = base.Quota_ctl.k_min - 1 });
  checkb "k_init in range" true (bad { base with Quota_ctl.k_init = base.Quota_ctl.k_max + 1 });
  checkb "watermarks ordered" true
    (bad { base with Quota_ctl.low_watermark = base.Quota_ctl.high_watermark + 1 });
  checkb "recover_steps >= 1" true (bad { base with Quota_ctl.recover_steps = 0 })

(* ------------------------------------------------------------------ *)
(* Service end-to-end                                                  *)
(* ------------------------------------------------------------------ *)

let base_config =
  {
    Service.default_config with
    Service.seed = 42;
    domains = 2;
    retry = { Retry.max_attempts = 3; base_delay = 1; max_delay = 4 };
  }

let with_service ?(config = base_config) ?tracer policy f =
  let svc = Service.create ?tracer ~config policy in
  (* [reap] is only safe when a test has released its wedge tasks; tests
     that wedge call shutdown themselves *)
  Fun.protect ~finally:(fun () -> try Service.shutdown svc with _ -> ()) (fun () -> f svc)

let entry svc id = List.find (fun e -> e.Service.job = id) (Service.ledger svc)

let test_all_complete_exactly_once () =
  with_service Pool.Work_stealing (fun svc ->
      let ran = Atomic.make 0 in
      let ids =
        List.init 20 (fun _ ->
            Result.get_ok
              (Service.submit svc (fun () ->
                   Atomic.incr ran;
                   ignore (Pool.parallel_reduce ~zero:0 ~op:( + ) ~lo:0 ~hi:64 Fun.id))))
      in
      Service.drive svc;
      checkb "idle after drive" true (Service.idle svc);
      checki "every job ran exactly once" 20 (Atomic.get ran);
      let c = Service.counters svc in
      checki "20 completions" 20 c.Service.completions;
      checki "no failures" 0 c.Service.failures;
      checki "no duplicate acks" 0 c.Service.duplicate_acks;
      List.iter
        (fun id ->
           checkb "ledger says completed" true
             ((entry svc id).Service.outcome = Some Service.Completed))
        ids;
      (match Service.verify_ledger svc with
       | Ok () -> ()
       | Error m -> Alcotest.fail ("ledger audit: " ^ m)))

let test_retry_to_budget_then_failed () =
  with_service Pool.Work_stealing (fun svc ->
      let runs = Atomic.make 0 in
      let id =
        Result.get_ok
          (Service.submit svc ~class_:"boom" (fun () ->
               Atomic.incr runs;
               failwith "boom"))
      in
      Service.drive svc;
      checki "attempted exactly max_attempts times" 3 (Atomic.get runs);
      let e = entry svc id in
      checkb "failed terminally" true
        (match e.Service.outcome with Some (Service.Failed _) -> true | _ -> false);
      checki "ledger attempts" 3 e.Service.attempts;
      let c = Service.counters svc in
      checki "two retries scheduled" 2 c.Service.retries;
      (match Service.verify_ledger svc with
       | Ok () -> ()
       | Error m -> Alcotest.fail ("ledger audit: " ^ m)))

let test_flaky_recovers_after_one_retry () =
  with_service Pool.Work_stealing (fun svc ->
      let tripped = Atomic.make false in
      let id =
        Result.get_ok
          (Service.submit svc ~class_:"flaky" (fun () ->
               if not (Atomic.exchange tripped true) then failwith "flaky"))
      in
      Service.drive svc;
      let e = entry svc id in
      checkb "completed" true (e.Service.outcome = Some Service.Completed);
      checki "two attempts" 2 e.Service.attempts;
      checki "one retry" 1 (Service.counters svc).Service.retries)

let test_queue_full_sheds () =
  let config = { base_config with Service.queue_capacity = 2 } in
  with_service ~config Pool.Work_stealing (fun svc ->
      checkb "first accepted" true (Result.is_ok (Service.submit svc (fun () -> ())));
      checkb "second accepted" true (Result.is_ok (Service.submit svc (fun () -> ())));
      checkb "third shed" true
        (Service.submit svc (fun () -> ()) = Error Service.Queue_full);
      Service.drive svc;
      let c = Service.counters svc in
      checki "queue_full counted" 1 c.Service.rejected_queue_full;
      checki "accepted ran" 2 c.Service.completions;
      (* the shed submission still has a ledger entry with a terminal
         outcome — rejected jobs are recorded, not lost *)
      (match Service.verify_ledger svc with
       | Ok () -> ()
       | Error m -> Alcotest.fail ("ledger audit: " ^ m)))

let test_deadline_enforced () =
  let config =
    { base_config with Service.retry = { Retry.max_attempts = 2; base_delay = 1; max_delay = 2 } }
  in
  with_service ~config Pool.Work_stealing (fun svc ->
      let id =
        Result.get_ok
          (Service.submit svc ~class_:"slow" ~deadline:0.05 (fun () ->
               let rec loop () =
                 ignore (Pool.fork_join (fun () -> ()) (fun () -> ()));
                 loop ()
               in
               loop ()))
      in
      Service.drive svc;
      let e = entry svc id in
      (match e.Service.outcome with
       | Some (Service.Failed m) ->
         checkb "failure mentions the deadline" true (m = "deadline exceeded")
       | o ->
         Alcotest.failf "expected deadline failure, got %s"
           (match o with
            | Some Service.Completed -> "completed"
            | Some (Service.Rejected _) -> "rejected"
            | _ -> "unresolved"));
      checki "every attempt timed out" 2 (Service.counters svc).Service.timeouts)

(* The full admission cycle on the logical clock: failures trip the
   class breaker, submissions shed while open, the cooldown admits a
   probe, and a probe success closes it again. *)
let test_breaker_cycle_through_service () =
  let config =
    {
      base_config with
      Service.retry = { Retry.max_attempts = 1; base_delay = 1; max_delay = 1 };
      breaker = { Breaker.failure_threshold = 2; cooldown = 3; probe_budget = 1 };
    }
  in
  with_service ~config Pool.Work_stealing (fun svc ->
      let fail_job () = failwith "x" in
      checkb "f1 accepted" true (Result.is_ok (Service.submit svc ~class_:"x" fail_job));
      Service.step svc;
      checkb "f2 accepted" true (Result.is_ok (Service.submit svc ~class_:"x" fail_job));
      Service.step svc;
      (* threshold reached at step 2: the breaker for "x" is open *)
      (match Service.submit svc ~class_:"x" (fun () -> ()) with
       | Error (Service.Breaker_open "x") -> ()
       | _ -> Alcotest.fail "expected Breaker_open rejection");
      checkb "other classes unaffected" true
        (Result.is_ok (Service.submit svc ~class_:"y" (fun () -> ())));
      Service.drive svc;
      (* idle steps let the cooldown elapse on the logical clock *)
      Service.step svc;
      Service.step svc;
      let probe = Service.submit svc ~class_:"x" (fun () -> ()) in
      checkb "probe admitted after cooldown" true (Result.is_ok probe);
      Service.drive svc;
      Alcotest.(check (list string)) "breaker walked the full cycle"
        [ "open"; "half_open"; "closed" ]
        (List.filter_map
           (fun (_, cl, st) -> if cl = "x" then Some st else None)
           (Service.breaker_transitions svc));
      checki "one shed while open" 1 (Service.counters svc).Service.rejected_breaker_open;
      match Service.verify_ledger svc with
      | Ok () -> ()
      | Error m -> Alcotest.fail ("ledger audit: " ^ m))

(* The supervision contract: a job that spins outside cooperative
   cancellation wedges the pool; the supervisor kills it, respawns, and
   requeues the job exactly once.  The respawn callback releases the
   spin flag, so the second attempt completes — zero lost jobs, zero
   duplicated acknowledgements, and the fresh pool keeps serving. *)
let test_wedge_respawn_exactly_once () =
  let wedge_flags : (int, bool Atomic.t) Hashtbl.t = Hashtbl.create 4 in
  let config =
    {
      base_config with
      Service.wedge_grace = 0.5;
      on_pool_retired =
        Some
          (fun ~in_flight ->
            match in_flight with
            | Some id -> (
                match Hashtbl.find_opt wedge_flags id with
                | Some flag -> Atomic.set flag true
                | None -> ())
            | None -> ());
    }
  in
  let svc = Service.create ~config (Pool.Dfdeques { quota = 4096 }) in
  let flag = Atomic.make false in
  let wedge_id =
    Result.get_ok
      (Service.submit svc ~class_:"wedge" (fun () ->
           while not (Atomic.get flag) do
             Domain.cpu_relax ()
           done))
  in
  Hashtbl.replace wedge_flags wedge_id flag;
  Service.drive svc;
  let e = entry svc wedge_id in
  checkb "wedged job completed on the respawned pool" true
    (e.Service.outcome = Some Service.Completed);
  checki "requeued exactly once" 1 e.Service.requeues;
  let c = Service.counters svc in
  checki "one wedge" 1 c.Service.wedges;
  checki "one respawn" 1 c.Service.respawns;
  checki "no duplicate acks" 0 c.Service.duplicate_acks;
  (* the respawned pool is a working pool *)
  let after = Result.get_ok (Service.submit svc (fun () -> ())) in
  Service.drive svc;
  checkb "post-respawn job completes" true
    ((entry svc after).Service.outcome = Some Service.Completed);
  (match Service.verify_ledger svc with
   | Ok () -> ()
   | Error m -> Alcotest.fail ("ledger audit: " ^ m));
  Service.shutdown ~reap:true svc

let test_supervisor_gives_up () =
  let config =
    { base_config with Service.wedge_grace = 0.3; max_respawns = 0 }
  in
  let svc = Service.create ~config Pool.Work_stealing in
  let flag = Atomic.make false in
  ignore
    (Result.get_ok
       (Service.submit svc (fun () ->
            while not (Atomic.get flag) do
              Domain.cpu_relax ()
            done)));
  checkb "giveup past max_respawns" true
    (try
       Service.drive svc;
       false
     with Service.Supervisor_giveup _ -> true);
  (* release the stuck task so shutdown can join the executor *)
  Atomic.set flag true;
  Service.shutdown svc

(* The ISSUE acceptance test for the control loop: an allocation spike
   observed through the pool's [alloc_bytes] counter drives K down (via
   [Pool.set_quota], with [Quota_adjusted] trace events), and a calm
   stretch restores it to the ceiling. *)
let test_adaptive_quota_reacts () =
  let qcfg =
    {
      Quota_ctl.k_init = 32_000;
      k_min = 4_000;
      k_max = 32_000;
      high_watermark = 20_000;
      low_watermark = 5_000;
      recover_steps = 2;
    }
  in
  let config = { base_config with Service.quota_ctl = Some qcfg } in
  let tracer = Tracer.create () in
  with_service ~config ~tracer (Pool.Dfdeques { quota = 32_000 }) (fun svc ->
      checki "starts at k_init" 32_000 (Option.get (Service.quota svc));
      (* allocation spikes: each job reports 200 kB, far above the
         high watermark *)
      for _ = 1 to 4 do
        ignore (Result.get_ok (Service.submit svc ~class_:"spike" (fun () -> Pool.alloc_hint 200_000)));
        Service.step svc
      done;
      Service.step svc;
      (* one more tick so the last spike's pressure is observed *)
      let shrunk = Option.get (Service.quota svc) in
      checkb "spike drove K down" true (shrunk < 32_000);
      checkb "trajectory shows the shrink" true
        (List.exists (fun (_, k) -> k < 32_000) (Service.quota_trajectory svc));
      (* calm: idle steps with zero pressure until the controller
         recovers the ceiling *)
      for _ = 1 to 40 do
        Service.step svc
      done;
      checki "calm restored K to the ceiling" 32_000 (Option.get (Service.quota svc));
      checkb "Quota_adjusted events were traced" true
        (Tracer.count tracer
           (Event.Quota_adjusted { from_quota = 0; to_quota = 0; pressure = 0 })
         > 0))

let test_memory_pressure_sheds () =
  (* floor == ceiling: the controller cannot shrink, so sustained
     pressure goes straight to admission shedding *)
  let qcfg =
    {
      Quota_ctl.k_init = 1_000;
      k_min = 1_000;
      k_max = 2_000;
      high_watermark = 100;
      low_watermark = 10;
      recover_steps = 2;
    }
  in
  let config = { base_config with Service.quota_ctl = Some qcfg } in
  with_service ~config (Pool.Dfdeques { quota = 1_000 }) (fun svc ->
      ignore
        (Result.get_ok (Service.submit svc ~class_:"spike" (fun () -> Pool.alloc_hint 10_000)));
      Service.step svc;
      Service.step svc;
      (match Service.submit svc (fun () -> ()) with
       | Error Service.Memory_pressure -> ()
       | _ -> Alcotest.fail "expected Memory_pressure rejection");
      checki "shed counted" 1 (Service.counters svc).Service.rejected_memory_pressure;
      match Service.verify_ledger svc with
      | Ok () -> ()
      | Error m -> Alcotest.fail ("ledger audit: " ^ m))

let () =
  Alcotest.run "service"
    [
      ( "retry",
        [
          QCheck_alcotest.to_alcotest ~long:false qcheck_delays_bounded;
          QCheck_alcotest.to_alcotest ~long:false qcheck_budget_never_exceeded;
          QCheck_alcotest.to_alcotest ~long:false qcheck_attempts_monotone;
          QCheck_alcotest.to_alcotest ~long:false qcheck_schedule_deterministic;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trip and recover" `Quick test_breaker_trip_and_recover;
          Alcotest.test_case "probe failure reopens" `Quick test_breaker_probe_failure_reopens;
        ] );
      ( "quota_ctl",
        [
          Alcotest.test_case "shrink, floor, recover" `Quick test_quota_ctl_shrink_floor_recover;
          Alcotest.test_case "config validation" `Quick test_quota_ctl_validates;
        ] );
      ( "service",
        [
          Alcotest.test_case "all complete exactly once" `Quick test_all_complete_exactly_once;
          Alcotest.test_case "retry to budget then failed" `Quick
            test_retry_to_budget_then_failed;
          Alcotest.test_case "flaky recovers" `Quick test_flaky_recovers_after_one_retry;
          Alcotest.test_case "queue full sheds" `Quick test_queue_full_sheds;
          Alcotest.test_case "deadline enforced" `Quick test_deadline_enforced;
          Alcotest.test_case "breaker cycle" `Quick test_breaker_cycle_through_service;
          Alcotest.test_case "wedge respawn exactly once" `Quick
            test_wedge_respawn_exactly_once;
          Alcotest.test_case "supervisor gives up" `Quick test_supervisor_gives_up;
          Alcotest.test_case "adaptive K reacts" `Quick test_adaptive_quota_reacts;
          Alcotest.test_case "memory pressure sheds" `Quick test_memory_pressure_sheds;
        ] );
    ]
