(* Tests for the telemetry plane (lib/obs): registry instruments under
   concurrent domains, snapshot determinism, OpenMetrics round-trips
   through the Om_util parser (unit + property), flight-recorder ring
   semantics and dump-on-deadlock, and the live Theorem-4.4 headroom
   profiler checked differentially against [Oracle.thm44]. *)

module Registry = Dfd_obs.Registry
module Openmetrics = Dfd_obs.Openmetrics
module Flight = Dfd_obs.Flight
module Headroom = Dfd_obs.Headroom
module Event = Dfd_trace.Event
module Json = Dfd_trace.Json
module Prog = Dfd_dag.Prog
module Analysis = Dfd_dag.Analysis
module Config = Dfd_machine.Config
module Engine = Dfdeques_core.Engine
module Oracle = Dfd_check.Oracle
module Pool = Dfd_runtime.Pool
module Service = Dfd_service.Service
module Retry = Dfd_service.Retry
open Prog

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Registry instruments                                                *)
(* ------------------------------------------------------------------ *)

let test_counter_concurrent () =
  let reg = Registry.create ~shards:8 () in
  let c = Registry.counter reg "t_incr_total" in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 25_000 do
              Registry.Counter.incr c
            done))
  in
  List.iter Domain.join domains;
  checki "4 domains x 25k increments" 100_000 (Registry.Counter.value c);
  Registry.Counter.add c 5;
  checki "add" 100_005 (Registry.Counter.value c);
  checkb "negative add rejected" true
    (try
       Registry.Counter.add c (-1);
       false
     with Invalid_argument _ -> true)

let test_gauge_peak () =
  let reg = Registry.create () in
  let g = Registry.gauge reg "t_gauge" in
  Registry.Gauge.set g 5;
  Registry.Gauge.add g 3;
  checki "set+add" 8 (Registry.Gauge.value g);
  checki "peak tracks" 8 (Registry.Gauge.peak g);
  Registry.Gauge.set g 2;
  checki "set down" 2 (Registry.Gauge.value g);
  checki "peak keeps watermark" 8 (Registry.Gauge.peak g);
  Registry.Gauge.add g (-4);
  checki "negative delta" (-2) (Registry.Gauge.value g);
  checki "peak unmoved" 8 (Registry.Gauge.peak g)

let test_histogram_concurrent () =
  let reg = Registry.create () in
  let h = Registry.histogram reg "t_hist" in
  let per_domain = 1_000 in
  let domains =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              Registry.Histogram.observe h (i mod 7)
            done))
  in
  List.iter Domain.join domains;
  checki "count" (2 * per_domain) (Registry.Histogram.count h);
  (* sum of (i mod 7) over 1000 consecutive i: 142 full cycles of 21 plus 0..5 *)
  let serial = List.fold_left (fun a i -> a + (i mod 7)) 0 (List.init per_domain Fun.id) in
  checki "sum" (2 * serial) (Registry.Histogram.sum h);
  Registry.Histogram.observe h (-5);
  checki "negative clamps to bucket 0" ((2 * per_domain) + 1) (Registry.Histogram.count h);
  checki "negative adds nothing to sum" (2 * serial) (Registry.Histogram.sum h)

let test_snapshot_sorted_stable () =
  let reg = Registry.create () in
  let b = Registry.gauge reg ~stable:true "t_b" in
  let a = Registry.counter reg "t_a_total" in
  Registry.probe reg ~kind:`Gauge ~stable:true "t_c" (fun () -> 42);
  Registry.Gauge.set b 7;
  Registry.Counter.incr a;
  let names snap = List.map (fun s -> s.Registry.name) snap in
  checkb "sorted by name" true
    (let n = names (Registry.snapshot reg) in
     n = List.sort compare n);
  checkb "full snapshot has all three" true
    (List.for_all (fun n -> List.mem n (names (Registry.snapshot reg))) [ "t_a_total"; "t_b"; "t_c" ]);
  let stable = names (Registry.snapshot ~stable_only:true reg) in
  checkb "stable_only keeps stable series" true (List.mem "t_b" stable && List.mem "t_c" stable);
  checkb "stable_only drops unstable counter" false (List.mem "t_a_total" stable);
  (* two snapshots of quiescent state are identical *)
  checkb "snapshot deterministic" true (Registry.snapshot reg = Registry.snapshot reg)

let test_disabled_noop () =
  let reg = Registry.disabled in
  checkb "disabled" false (Registry.enabled reg);
  let c = Registry.counter reg "t_off_total" in
  let g = Registry.gauge reg "t_off_gauge" in
  let h = Registry.histogram reg "t_off_hist" in
  Registry.Counter.incr c;
  Registry.Gauge.set g 99;
  Registry.Histogram.observe h 5;
  checki "counter inert" 0 (Registry.Counter.value c);
  checki "gauge inert" 0 (Registry.Gauge.value g);
  checki "histogram inert" 0 (Registry.Histogram.count h);
  checkb "snapshot empty" true (Registry.snapshot reg = [])

let test_upsert () =
  let reg = Registry.create () in
  let c1 = Registry.counter reg "t_up_total" in
  let c2 = Registry.counter reg "t_up_total" in
  Registry.Counter.incr c1;
  Registry.Counter.incr c2;
  checki "same name accumulates into one series" 2 (Registry.Counter.value c1);
  checkb "kind mismatch rejected" true
    (try
       ignore (Registry.gauge reg "t_up_total");
       false
     with Invalid_argument _ -> true);
  let cell = ref 1 in
  Registry.probe reg ~kind:`Gauge "t_up_probe" (fun () -> !cell);
  let read () =
    match List.find (fun s -> s.Registry.name = "t_up_probe") (Registry.snapshot reg) with
    | { Registry.value = Registry.Gauge_v v; _ } -> v
    | _ -> Alcotest.fail "probe sample missing"
  in
  checki "probe reads closure" 1 (read ());
  Registry.probe reg ~kind:`Gauge "t_up_probe" (fun () -> 1000);
  checki "re-registration replaces closure" 1000 (read ());
  Registry.probe reg ~kind:`Gauge "t_up_raises" (fun () -> failwith "boom");
  checkb "raising probe contributes no sample" false
    (List.exists (fun s -> s.Registry.name = "t_up_raises") (Registry.snapshot reg))

let test_split_labeled () =
  checkb "labeled" true
    (Registry.split_labeled "fam{k=\"v\"}" = ("fam", Some "k=\"v\""));
  checkb "plain" true (Registry.split_labeled "fam_total" = ("fam_total", None));
  checkb "bad leading digit rejected" true
    (try
       ignore (Registry.split_labeled "9fam");
       false
     with Invalid_argument _ -> true);
  checkb "unterminated labels rejected" true
    (try
       ignore (Registry.split_labeled "fam{k=\"v\"");
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* OpenMetrics exposition round-trips                                  *)
(* ------------------------------------------------------------------ *)

let test_openmetrics_roundtrip_unit () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~help:"events" "om_events_total" in
  let g = Registry.gauge reg "om_depth" in
  let gl = Registry.gauge reg "om_live_bytes{policy=\"dfd\"}" in
  let h = Registry.histogram reg "om_lat" in
  Registry.Counter.add c 17;
  Registry.Gauge.set g (-3);
  Registry.Gauge.set gl 4096;
  List.iter (Registry.Histogram.observe h) [ 0; 1; 1; 5; 300 ];
  Registry.probe_float reg "om_ratio" (fun () -> 0.625);
  let text = Openmetrics.render (Registry.snapshot reg) in
  let om = Om_util.parse text in
  let value name = Option.get (Om_util.value om name) in
  checkb "counter survives" true (value "om_events_total" = 17.0);
  checkb "gauge survives" true (value "om_depth" = -3.0);
  checkb "float probe survives" true (value "om_ratio" = 0.625);
  checkb "labeled gauge survives" true
    (Om_util.value ~labels:[ ("policy", "dfd") ] om "om_live_bytes" = Some 4096.0);
  (match Om_util.family om "om_events_total" with
   | Some f ->
     checkb "counter typed" true (f.Om_util.f_type = Om_util.Counter);
     checkb "help preserved" true (f.Om_util.f_help = Some "events")
   | None -> Alcotest.fail "family om_events_total missing");
  let buckets = Om_util.buckets om "om_lat" in
  checkb "bucket counts cumulative" true
    (List.for_all2 ( <= ) (List.map snd buckets) (List.tl (List.map snd buckets) @ [ max_int ]));
  (match List.rev buckets with
   | (le, n) :: _ ->
     checkb "+Inf last" true (le = infinity);
     checki "+Inf equals count" 5 n
   | [] -> Alcotest.fail "histogram has no buckets");
  checkb "count line" true (value "om_lat_count" = 5.0);
  checkb "sum line" true (value "om_lat_sum" = 307.0)

(* Random mixtures of counters and gauges must survive a render + parse
   cycle exactly (values are integers, so no float-precision caveats). *)
let openmetrics_roundtrip_prop =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 10)
        (pair bool (int_range (-100_000) 100_000)))
  in
  QCheck.Test.make ~name:"openmetrics render/parse roundtrip" ~count:100
    (QCheck.make
       ~print:(fun l ->
         String.concat ";"
           (List.map (fun (c, v) -> Printf.sprintf "(%b,%d)" c v) l))
       gen)
    (fun spec ->
      let reg = Registry.create () in
      let expect =
        List.mapi
          (fun i (is_counter, v) ->
            if is_counter then begin
              let name = Printf.sprintf "prop_c%d_total" i in
              Registry.Counter.add (Registry.counter reg name) (abs v);
              (name, abs v)
            end
            else begin
              let name = Printf.sprintf "prop_g%d" i in
              Registry.Gauge.set (Registry.gauge reg name) v;
              (name, v)
            end)
          spec
      in
      let om = Om_util.parse (Openmetrics.render (Registry.snapshot reg)) in
      List.for_all
        (fun (name, v) -> Om_util.value om name = Some (float_of_int v))
        expect)

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let test_flight_ring_wrap () =
  let f = Flight.create ~capacity:4 ~lanes:2 () in
  checkb "enabled" true (Flight.enabled f);
  for i = 0 to 9 do
    Flight.recordk f ~lane:0 ~ts:i ~proc:0 ~tid:0 (Event.Action_batch { units = 1 })
  done;
  checki "recorded counts everything" 10 (Flight.recorded f);
  checki "dropped = overwritten" 6 (Flight.dropped f);
  let evs = Flight.events f in
  checki "ring keeps capacity" 4 (List.length evs);
  checkb "survivors are the newest" true
    (List.map (fun e -> e.Event.ts) evs = [ 6; 7; 8; 9 ])

let test_flight_merge_order () =
  let f = Flight.create ~capacity:8 ~lanes:2 () in
  List.iter (fun ts -> Flight.recordk f ~lane:0 ~ts ~proc:0 ~tid:0 Event.Dummy_exec) [ 1; 3; 5 ];
  List.iter (fun ts -> Flight.recordk f ~lane:1 ~ts ~proc:1 ~tid:0 Event.Dummy_exec) [ 2; 4 ];
  checkb "lanes merge sorted by ts" true
    (List.map (fun e -> e.Event.ts) (Flight.events f) = [ 1; 2; 3; 4; 5 ]);
  (* out-of-range lanes clamp, never raise *)
  Flight.recordk f ~lane:99 ~ts:6 ~proc:0 ~tid:0 Event.Dummy_exec;
  checki "clamped lane recorded" 6 (Flight.recorded f)

let test_flight_disabled () =
  let f = Flight.disabled in
  checkb "disabled" false (Flight.enabled f);
  Flight.recordk f ~lane:0 ~ts:1 ~proc:0 ~tid:0 Event.Dummy_exec;
  checki "record inert" 0 (Flight.recorded f);
  checkb "no events" true (Flight.events f = [])

let test_flight_dump_on_deadlock () =
  (* Classic ABBA deadlock (same program as test_core): the engine dies
     with [Engine.Deadlock], after which the flight ring must still dump
     a parseable artifact holding the run's last moments. *)
  let prog =
    finish
      (par
         (lock 0 >> work 5 >> lock 1 >> work 1 >> unlock 1 >> unlock 0)
         (lock 1 >> work 5 >> lock 0 >> work 1 >> unlock 0 >> unlock 1))
  in
  let flight = Flight.create ~capacity:64 ~lanes:3 () in
  checkb "deadlock raised" true
    (try
       ignore (Engine.run ~sched:`Dfdeques ~flight (Config.analysis ~p:2 ()) prog);
       false
     with Engine.Deadlock _ -> true);
  checkb "ring captured the run" true (Flight.recorded flight > 0);
  let path = Filename.temp_file "dfd_flight" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Flight.write_file ~path ~reason:"deadlock" flight;
      let ic = open_in_bin path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let j = Json.of_string text in
      let fl = Json.member "flight" j in
      checks "reason recorded" "deadlock" (Json.to_string_exn (Json.member "reason" fl));
      let events = Json.to_list_exn (Json.member "events" fl) in
      checkb "events survive to the artifact" true (events <> []);
      checki "artifact agrees with the live ring" (List.length (Flight.events flight))
        (List.length events))

(* ------------------------------------------------------------------ *)
(* Headroom profiler                                                   *)
(* ------------------------------------------------------------------ *)

let test_headroom_budget_arithmetic () =
  let reg = Registry.create () in
  let hr = Headroom.create ~registry:reg ~policy:"t" ~s1:100 ~depth:4 ~p:2 ~k:10 () in
  checki "S1 + c*min(K,S1)*p*D" (100 + (8 * 10 * 2 * 4)) (Headroom.budget hr);
  Headroom.observe hr ~live_bytes:50;
  Headroom.observe hr ~live_bytes:30;
  checki "live tracks last" 30 (Headroom.live hr);
  checki "peak is a watermark" 50 (Headroom.peak hr);
  checkb "ratio = (budget - peak) / budget" true
    (let b = float_of_int (Headroom.budget hr) in
     Float.abs (Headroom.headroom_ratio hr -. ((b -. 50.0) /. b)) < 1e-9);
  Headroom.set_quota hr 200;
  checki "min(K, S1) saturates at S1" (100 + (8 * 100 * 2 * 4)) (Headroom.budget hr);
  Headroom.note_premature hr ~depth:3;
  Headroom.note_premature hr ~depth:5;
  checki "premature notes" 2 (Headroom.premature hr);
  Headroom.set_premature hr 7;
  checki "absolute premature" 7 (Headroom.premature hr);
  checki "first pressure measures from 0" 100 (Headroom.take_pressure hr ~cumulative_alloc:100);
  checki "pressure is the delta" 150 (Headroom.take_pressure hr ~cumulative_alloc:250);
  Headroom.reset_pressure hr;
  checki "reset rebases at 0" 50 (Headroom.take_pressure hr ~cumulative_alloc:50);
  (* the gauges landed in the registry under the policy label *)
  let names = List.map (fun s -> s.Registry.name) (Registry.snapshot reg) in
  List.iter
    (fun n -> checkb n true (List.mem (n ^ "{policy=\"t\"}") names))
    [ "dfd_space_live_bytes"; "dfd_space_peak_bytes"; "dfd_space_budget_bytes" ]

let test_headroom_degenerate () =
  let reg = Registry.create () in
  (* s1/depth default to 0: budget degrades to the S1 term (= 0) *)
  let hr = Headroom.create ~registry:reg ~policy:"d" ~p:4 ~k:1000 () in
  checki "degenerate budget" 0 (Headroom.budget hr);
  checkb "pristine ratio is 1.0" true (Headroom.headroom_ratio hr = 1.0);
  Headroom.observe hr ~live_bytes:10;
  checkb "observed over zero budget is 0.0" true (Headroom.headroom_ratio hr = 0.0)

let test_headroom_matches_thm44 () =
  (* Differential: wire a live profiler into the same run Oracle.thm44
     performs and the budget must agree bit-for-bit.  The peak gauge is
     sampled at timestep boundaries so it may miss intra-step spikes the
     engine's own per-alloc watermark catches: assert <=, and exact
     equality only for the budget and the premature count. *)
  let rec tree d = if d = 0 then alloc 64 >> work 3 >> free 64 else par (tree (d - 1)) (tree (d - 1)) in
  let prog = finish (tree 4) in
  List.iter
    (fun (p, k) ->
      let r = Oracle.thm44 ~p ~k prog in
      let a = Analysis.analyze prog in
      checki "oracle and analysis agree on S1" r.Oracle.s1 a.Analysis.serial_space;
      let reg = Registry.create () in
      let hr =
        Headroom.create ~registry:reg ~policy:"dfd" ~s1:a.Analysis.serial_space
          ~depth:a.Analysis.depth ~p ~k ()
      in
      let res =
        Engine.run ~sched:`Dfdeques ~registry:reg ~headroom:hr
          (Config.analysis ~p ~mem_threshold:(Some k) ())
          prog
      in
      checki (Printf.sprintf "budget = thm44 bound (p=%d k=%d)" p k) r.Oracle.bound
        (Headroom.budget hr);
      checkb "live peak within the engine watermark" true (Headroom.peak hr <= r.Oracle.heap_peak);
      checkb "something was observed" true (Headroom.peak hr > 0);
      checki "premature gauge mirrors the engine" res.Engine.heavy_premature (Headroom.premature hr);
      if r.Oracle.ok then
        checkb "peak within budget when the theorem held" true
          (Headroom.peak hr <= Headroom.budget hr))
    [ (2, 128); (3, 256); (4, 64) ]

(* ------------------------------------------------------------------ *)
(* Service exposition                                                  *)
(* ------------------------------------------------------------------ *)

let test_service_metrics_text () =
  let config =
    {
      Service.default_config with
      Service.seed = 7;
      domains = 1;
      retry = { Retry.max_attempts = 2; base_delay = 1; max_delay = 2 };
    }
  in
  let svc = Service.create ~config Pool.Work_stealing in
  Fun.protect
    ~finally:(fun () -> try Service.shutdown svc with _ -> ())
    (fun () ->
      let om = Om_util.parse (Service.metrics_text svc) in
      checkb "service counters exposed" true
        (Om_util.value om "dfd_service_accepted_total" <> None);
      checkb "headroom gauges exposed" true
        (Om_util.value ~labels:[ ("policy", "service") ] om "dfd_space_budget_bytes" <> None);
      (* the counters object keeps an exact key set, in order (the
         legacy keys plus the front-door additions — coalesced,
         rejected_overloaded, cancelled — and the crash-domain
         quarantines counter) *)
      checkb "legacy counter keys preserved" true
        (List.map fst (Registry.Snapshot.to_alist (Service.counter_samples svc))
        = [
            "accepted";
            "coalesced";
            "rejected_queue_full";
            "rejected_breaker_open";
            "rejected_memory_pressure";
            "rejected_overloaded";
            "completions";
            "failures";
            "cancelled";
            "retries";
            "timeouts";
            "wedges";
            "quarantines";
            "respawns";
            "duplicate_acks";
          ]))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter under domains" `Quick test_counter_concurrent;
          Alcotest.test_case "gauge peak" `Quick test_gauge_peak;
          Alcotest.test_case "histogram under domains" `Quick test_histogram_concurrent;
          Alcotest.test_case "snapshot sorted + stable filter" `Quick test_snapshot_sorted_stable;
          Alcotest.test_case "disabled is inert" `Quick test_disabled_noop;
          Alcotest.test_case "upsert semantics" `Quick test_upsert;
          Alcotest.test_case "split_labeled" `Quick test_split_labeled;
        ] );
      ( "openmetrics",
        [ Alcotest.test_case "roundtrip" `Quick test_openmetrics_roundtrip_unit ]
        @ qsuite [ openmetrics_roundtrip_prop ] );
      ( "flight",
        [
          Alcotest.test_case "ring wrap" `Quick test_flight_ring_wrap;
          Alcotest.test_case "lane merge order" `Quick test_flight_merge_order;
          Alcotest.test_case "disabled is inert" `Quick test_flight_disabled;
          Alcotest.test_case "dump on deadlock" `Quick test_flight_dump_on_deadlock;
        ] );
      ( "headroom",
        [
          Alcotest.test_case "budget arithmetic" `Quick test_headroom_budget_arithmetic;
          Alcotest.test_case "degenerate config" `Quick test_headroom_degenerate;
          Alcotest.test_case "matches Oracle.thm44" `Quick test_headroom_matches_thm44;
        ] );
      ( "service",
        [ Alcotest.test_case "metrics_text exposition" `Quick test_service_metrics_text ] );
    ]
