(* Tests for the fault-injection plan, the no-progress watchdog, and their
   integration with the simulation engine: determinism per seed, graceful
   completion under faults, invariant preservation, and watchdog
   behaviour (fires when starved, never spuriously). *)

module Fault = Dfd_fault.Fault
module Watchdog = Dfd_fault.Watchdog
module Prng = Dfd_structures.Prng
module Engine = Dfdeques_core.Engine
module Dag_gen = Dfd_dag.Dag_gen

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* The injector                                                        *)
(* ------------------------------------------------------------------ *)

(* Drain a fixed decision sequence from an injector. *)
let decision_trace fault n =
  List.init n (fun _ ->
      (Fault.stall_steps fault, Fault.steal_fails fault, Fault.alloc_spike fault,
       Fault.lock_delay fault))

let test_same_seed_same_schedule () =
  let a = Fault.create ~seed:123 () and b = Fault.create ~seed:123 () in
  checkb "identical decision sequences" true (decision_trace a 500 = decision_trace b 500);
  checkb "identical counts" true (Fault.counts a = Fault.counts b);
  let c = Fault.create ~seed:124 () in
  checkb "different seed, different schedule" false
    (decision_trace a 500 = decision_trace c 500)

let test_none_never_injects () =
  let f = Fault.none in
  checkb "disabled" false (Fault.enabled f);
  for _ = 1 to 100 do
    checki "no stall" 0 (Fault.stall_steps f);
    checkb "no steal failure" false (Fault.steal_fails f);
    checki "no spike" 0 (Fault.alloc_spike f);
    checki "no lock delay" 0 (Fault.lock_delay f);
    Fault.maybe_task_exn f
  done;
  checki "nothing counted" 0 (Fault.injected_total f)

let test_zero_rates_never_inject () =
  let f = Fault.create ~rates:Fault.zero_rates ~seed:5 () in
  checkb "enabled" true (Fault.enabled f);
  for _ = 1 to 100 do
    checki "no stall" 0 (Fault.stall_steps f);
    checkb "no steal failure" false (Fault.steal_fails f)
  done;
  checki "nothing counted" 0 (Fault.injected_total f)

let test_certain_task_exn () =
  let rates = { Fault.zero_rates with Fault.task_exn_prob = 1.0 } in
  let f = Fault.create ~rates ~seed:5 () in
  checkb "raises Injected_failure" true
    (try
       Fault.maybe_task_exn f;
       false
     with Fault.Injected_failure _ -> true);
  checki "counted once" 1 (Fault.injected_total f)

let test_set_enabled_pauses_injection () =
  let rates = { Fault.zero_rates with Fault.steal_fail_prob = 1.0 } in
  let f = Fault.create ~rates ~seed:9 () in
  checkb "injects" true (Fault.steal_fails f);
  Fault.set_enabled f false;
  checkb "paused" false (Fault.steal_fails f);
  Fault.set_enabled f true;
  checkb "resumed" true (Fault.steal_fails f);
  checki "counters preserved across pause" 2 (Fault.injected_total f)

(* The crash-domain triggers count on the logical take clock and fire
   exactly once each; the caller (worker 0) bumps the clock but is never
   a victim. *)
let test_worker_take_triggers () =
  let rates =
    { Fault.zero_rates with Fault.worker_crash = Some 2; Fault.worker_wedge = Some 3 }
  in
  let f = Fault.create ~rates ~seed:6 () in
  checkb "worker 0 never fires" true (Fault.worker_take f ~worker:0 = `None);
  checkb "second take crashes" true (Fault.worker_take f ~worker:1 = `Crash);
  checkb "third take wedges" true (Fault.worker_take f ~worker:2 = `Wedge);
  for _ = 1 to 50 do
    checkb "both triggers are one-shot" true (Fault.worker_take f ~worker:1 = `None)
  done;
  checki "crash counted once" 1 (List.assoc "worker_crash" (Fault.counts f));
  checki "wedge counted once" 1 (List.assoc "worker_wedge" (Fault.counts f));
  (* a caller-only workload can push the clock past the trigger without a
     victim; the first eligible worker then dies *)
  let g = Fault.create ~rates:{ Fault.zero_rates with Fault.worker_crash = Some 1 } ~seed:7 () in
  for _ = 1 to 10 do
    checkb "caller takes never fire" true (Fault.worker_take g ~worker:0 = `None)
  done;
  checkb "first eligible worker dies" true (Fault.worker_take g ~worker:3 = `Crash);
  (* the disabled injector answers without consuming anything *)
  checkb "none never fires" true (Fault.worker_take Fault.none ~worker:1 = `None)

let test_counts_shape () =
  let f = Fault.create ~seed:77 () in
  ignore (decision_trace f 2000);
  let counts = Fault.counts f in
  checki "five kinds" (Array.length Fault.kind_names) (List.length counts);
  List.iteri
    (fun i (name, _) -> Alcotest.(check string) "kind order" Fault.kind_names.(i) name)
    counts;
  checki "total = sum of kinds" (List.fold_left (fun acc (_, c) -> acc + c) 0 counts)
    (Fault.injected_total f);
  checkb "default rates actually inject" true (Fault.injected_total f > 0)

(* ------------------------------------------------------------------ *)
(* The watchdog                                                        *)
(* ------------------------------------------------------------------ *)

let test_watchdog_quiet_when_touched () =
  let wd = Watchdog.create ~limit:10 ~snapshot:(fun () -> "snap") () in
  for now = 1 to 200 do
    Watchdog.touch wd ~now;
    Watchdog.check wd ~now
  done;
  checkb "never fired" false (Watchdog.fired wd);
  checki "last progress" 200 (Watchdog.last_progress wd)

let test_watchdog_fires_when_starved () =
  let evals = ref 0 in
  let wd =
    Watchdog.create ~limit:10
      ~snapshot:(fun () ->
          incr evals;
          "state-at-failure")
      ()
  in
  Watchdog.touch wd ~now:5;
  for now = 5 to 15 do
    Watchdog.check wd ~now
  done;
  checki "snapshot not evaluated while healthy" 0 !evals;
  checkb "fires past the limit" true
    (try
       Watchdog.check wd ~now:16;
       false
     with Watchdog.No_progress { idle; limit; snapshot } ->
       idle = 11 && limit = 10 && snapshot = "state-at-failure");
  checkb "marked fired" true (Watchdog.fired wd);
  checki "snapshot evaluated exactly once" 1 !evals

(* ------------------------------------------------------------------ *)
(* Engine integration                                                  *)
(* ------------------------------------------------------------------ *)

let scheds : (string * Engine.sched) list =
  [ ("dfd", `Dfdeques); ("ws", `Ws); ("adf", `Adf); ("fifo", `Fifo) ]

let run_with_faults ~sched ~seed ~params =
  let prog = Dag_gen.gen_prog (Prng.create seed) params in
  let cfg = Dfd_machine.Config.analysis ~p:4 ~mem_threshold:(Some 1000) ~seed () in
  let fault = Fault.create ~seed:(seed + 1) () in
  (Engine.run ~check_invariants:(params.Dag_gen.lock_prob = 0.0) ~fault ~sched cfg prog, fault)

(* Under the full default fault plan, every policy still completes every
   (lock-free) random program with its structural invariants intact. *)
let test_all_policies_survive_faults () =
  List.iter
    (fun (name, sched) ->
       let injected = ref 0 in
       for seed = 1 to 5 do
         let r, fault = run_with_faults ~sched ~seed ~params:Dag_gen.default in
         checkb (Printf.sprintf "%s seed %d completes" name seed) true (r.Engine.time > 0);
         injected := !injected + Fault.injected_total fault
       done;
       (* a tiny program may see no decision points for one seed, but five
          runs with the default rates always inject somewhere *)
       checkb (name ^ " injected something across seeds") true (!injected > 0))
    scheds

let test_lock_heavy_with_lock_delays () =
  List.iter
    (fun (name, sched) ->
       let r, _ = run_with_faults ~sched ~seed:11 ~params:Dag_gen.lock_heavy in
       checkb (name ^ " lock-heavy completes") true (r.Engine.time > 0))
    scheds

(* The whole simulation (faults included) is deterministic per seed. *)
let qcheck_engine_fault_determinism =
  QCheck.Test.make ~count:20 ~name:"engine fault injection deterministic per seed"
    QCheck.(int_bound 100_000)
    (fun seed ->
       let fingerprint () =
         let r, fault = run_with_faults ~sched:`Dfdeques ~seed ~params:Dag_gen.default in
         ( r.Engine.time, r.Engine.work, r.Engine.steals, r.Engine.heap_peak,
           r.Engine.threads_created, Fault.counts fault )
       in
       fingerprint () = fingerprint ())

(* Injected stalls count as progress ("stalled = executing"): even a
   stall-heavy plan with a stall length far beyond the watchdog limit must
   never trip it. *)
let test_stalls_not_spurious_deadlock () =
  let rates = { Fault.zero_rates with Fault.stall_prob = 0.5; Fault.stall_steps = 50 } in
  let prog = Dag_gen.gen_prog (Prng.create 3) Dag_gen.default in
  let cfg = Dfd_machine.Config.analysis ~p:4 ~mem_threshold:None ~seed:3 () in
  let fault = Fault.create ~rates ~seed:4 () in
  let r = Engine.run ~fault ~no_progress_limit:20 ~sched:`Ws cfg prog in
  checkb "completes despite long stalls" true (r.Engine.time > 0)

(* A genuine deadlock still surfaces, now with the diagnostic snapshot
   attached by the watchdog. *)
let test_deadlock_message_carries_snapshot () =
  let open Dfd_dag.Prog in
  (* recursive acquisition of a non-recursive mutex: deadlocks under any
     schedule *)
  let prog = finish (lock 0 >> lock 0 >> work 1 >> unlock 0 >> unlock 0) in
  let cfg = Dfd_machine.Config.analysis ~p:2 ~mem_threshold:None ~seed:1 () in
  checkb "deadlock with snapshot" true
    (try
       ignore (Engine.run ~no_progress_limit:50 ~sched:`Dfdeques cfg prog);
       false
     with Engine.Deadlock m ->
       let has sub =
         let n = String.length m and k = String.length sub in
         let rec go i = i + k <= n && (String.sub m i k = sub || go (i + 1)) in
         go 0
       in
       has "no progress" && has "policy" && has "memory:")

let () =
  Alcotest.run "fault"
    [
      ( "injector",
        [
          Alcotest.test_case "same seed same schedule" `Quick test_same_seed_same_schedule;
          Alcotest.test_case "none never injects" `Quick test_none_never_injects;
          Alcotest.test_case "zero rates never inject" `Quick test_zero_rates_never_inject;
          Alcotest.test_case "certain task exn" `Quick test_certain_task_exn;
          Alcotest.test_case "set_enabled pauses" `Quick test_set_enabled_pauses_injection;
          Alcotest.test_case "worker-take triggers one-shot" `Quick test_worker_take_triggers;
          Alcotest.test_case "counts shape" `Quick test_counts_shape;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "quiet when touched" `Quick test_watchdog_quiet_when_touched;
          Alcotest.test_case "fires when starved" `Quick test_watchdog_fires_when_starved;
        ] );
      ( "engine",
        [
          Alcotest.test_case "all policies survive faults" `Quick test_all_policies_survive_faults;
          Alcotest.test_case "lock-heavy with lock delays" `Quick test_lock_heavy_with_lock_delays;
          QCheck_alcotest.to_alcotest ~long:false qcheck_engine_fault_determinism;
          Alcotest.test_case "stalls are not deadlocks" `Quick test_stalls_not_spurious_deadlock;
          Alcotest.test_case "deadlock carries snapshot" `Quick test_deadlock_message_carries_snapshot;
        ] );
    ]
