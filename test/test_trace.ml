(* Tests for the tracing subsystem: JSON round-trips, ring-buffer
   behaviour, engine determinism at the event-stream level, and the Chrome
   trace export. *)

module Json = Dfd_trace.Json
module Event = Dfd_trace.Event
module Tracer = Dfd_trace.Tracer
module Chrome = Dfd_trace.Chrome
module Engine = Dfdeques_core.Engine
module Config = Dfd_machine.Config

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let j =
    Json.Assoc
      [
        ("a", Json.Int 42);
        ("b", Json.Float 1.5);
        ("c", Json.String "he\"llo\n\t\\");
        ("d", Json.List [ Json.Null; Json.Bool true; Json.Bool false ]);
        ("nested", Json.Assoc [ ("x", Json.Int (-7)) ]);
        ("empty_list", Json.List []);
        ("empty_obj", Json.Assoc []);
      ]
  in
  checkb "roundtrip" true (Json.of_string (Json.to_string j) = j)

let test_json_rejects () =
  let bad s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> true
    | _ -> false
  in
  checkb "trailing garbage" true (bad "{} x");
  checkb "unterminated string" true (bad "\"abc");
  checkb "bare word" true (bad "frue");
  checkb "missing colon" true (bad "{\"a\" 1}");
  checkb "trailing comma" true (bad "[1,]")

let test_json_nonfinite () =
  check Alcotest.string "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  check Alcotest.string "inf is null" "null" (Json.to_string (Json.Float Float.infinity))

(* ------------------------------------------------------------------ *)
(* Event round-trip                                                    *)
(* ------------------------------------------------------------------ *)

let all_kinds =
  [
    Event.Fork { child = 3 };
    Event.Join { child = 9 };
    Event.Steal_attempt { victim = 2 };
    Event.Steal_success { victim = 2; latency = 17 };
    Event.Quota_exhausted { used = 50_001; quota = 50_000 };
    Event.Dummy_exec;
    Event.Deque_created { did = 11 };
    Event.Deque_deleted { did = 11; residency = 400 };
    Event.Cache_miss_stall { misses = 3; stall = 24 };
    Event.Lock_wait { mutex = 5 };
    Event.Action_batch { units = 8 };
    Event.Counter { deques = 4; heap = 123_456; threads = 78 };
    Event.Fault_injected { fault = "steal_fail" };
    Event.Quota_adjusted { from_quota = 50_000; to_quota = 25_000; pressure = 80_000 };
    Event.Ladder_shift { from_level = 0; to_level = 2; occupancy = 81; pressure = 40 };
    Event.Steal_rank { victim = 11; rank = 5; err = 2 };
    Event.Worker_quarantined { worker = 2; cause = "crash" };
    Event.Task_requeued { worker = 2 };
    Event.Worker_respawned { worker = 2 };
  ]

let test_event_roundtrip () =
  checki "vocabulary covered" Event.n_kinds (List.length all_kinds);
  List.iteri
    (fun i kind ->
       let e = { Event.ts = 100 + i; proc = i mod 4; tid = i - 1; kind } in
       let e' = Event.of_json (Json.of_string (Json.to_string (Event.to_json e))) in
       checkb (Event.kind_name kind) true (Event.equal e e'))
    all_kinds

let event_gen =
  let open QCheck.Gen in
  let small = 0 -- 1_000_000 in
  let kind =
    oneof
      [
        map (fun child -> Event.Fork { child }) small;
        map (fun child -> Event.Join { child }) small;
        map (fun victim -> Event.Steal_attempt { victim }) (-1 -- 64);
        map2 (fun victim latency -> Event.Steal_success { victim; latency }) (-1 -- 64) small;
        map2 (fun used quota -> Event.Quota_exhausted { used; quota }) small small;
        return Event.Dummy_exec;
        map (fun did -> Event.Deque_created { did }) small;
        map2 (fun did residency -> Event.Deque_deleted { did; residency }) small small;
        map2 (fun misses stall -> Event.Cache_miss_stall { misses; stall }) small small;
        map (fun mutex -> Event.Lock_wait { mutex }) small;
        map (fun units -> Event.Action_batch { units }) small;
        map3 (fun deques heap threads -> Event.Counter { deques; heap; threads }) small small small;
        map
          (fun fault -> Event.Fault_injected { fault })
          (oneofl [ "stall"; "steal_fail"; "task_exn"; "alloc_spike"; "lock_delay" ]);
        map3
          (fun from_quota to_quota pressure ->
             Event.Quota_adjusted { from_quota; to_quota; pressure })
          small small small;
        map3
          (fun from_level to_level occupancy ->
             Event.Ladder_shift { from_level; to_level; occupancy; pressure = occupancy / 2 })
          (0 -- 3) (0 -- 3) (0 -- 150);
        map3 (fun victim rank err -> Event.Steal_rank { victim; rank; err }) small (0 -- 64)
          (0 -- 64);
        map2
          (fun worker cause -> Event.Worker_quarantined { worker; cause })
          (0 -- 64)
          (oneofl [ "crash"; "wedge" ]);
        map (fun worker -> Event.Task_requeued { worker }) (0 -- 64);
        map (fun worker -> Event.Worker_respawned { worker }) (0 -- 64);
      ]
  in
  map2
    (fun (ts, proc) kind -> { Event.ts; proc; tid = proc - 1; kind })
    (pair small (0 -- 64))
    kind

let event_roundtrip_prop =
  QCheck.Test.make ~name:"event json roundtrip" ~count:500
    (QCheck.make ~print:(Format.asprintf "%a" Event.pp) event_gen)
    (fun e -> Event.equal e (Event.of_json (Json.of_string (Json.to_string (Event.to_json e)))))

(* ------------------------------------------------------------------ *)
(* Tracer ring buffer                                                  *)
(* ------------------------------------------------------------------ *)

let test_tracer_disabled () =
  checkb "disabled" false (Tracer.enabled Tracer.disabled);
  Tracer.emit Tracer.disabled ~ts:1 ~proc:0 ~tid:0 Event.Dummy_exec;
  checki "no events" 0 (Tracer.length Tracer.disabled);
  checki "no totals" 0 (Tracer.total Tracer.disabled)

let test_tracer_ring () =
  let tr = Tracer.create ~capacity:4 () in
  for i = 1 to 10 do
    Tracer.emit tr ~ts:i ~proc:0 ~tid:0 (Event.Action_batch { units = i })
  done;
  checki "length capped" 4 (Tracer.length tr);
  checki "dropped" 6 (Tracer.dropped tr);
  checki "total" 10 (Tracer.total tr);
  (* retained events are the newest, oldest first *)
  check
    Alcotest.(list int)
    "newest kept" [ 7; 8; 9; 10 ]
    (List.map (fun e -> e.Event.ts) (Tracer.events tr));
  (* per-kind counts survive the overwrites *)
  checki "count exact" 10 (Tracer.count tr (Event.Action_batch { units = 0 }));
  Tracer.clear tr;
  checki "cleared" 0 (Tracer.length tr);
  checki "cleared totals" 0 (Tracer.total tr)

(* ------------------------------------------------------------------ *)
(* Engine determinism at event granularity                             *)
(* ------------------------------------------------------------------ *)

let run_traced ~sched ~seed () =
  let b = Dfd_benchmarks.Registry.find "SparseMVM" Dfd_benchmarks.Workload.Fine in
  let tr = Tracer.create () in
  let cfg = Config.costed ~p:4 ~mem_threshold:(Some 50_000) ~seed () in
  ignore (Engine.run ~sched ~tracer:tr cfg (b.Dfd_benchmarks.Workload.prog ()));
  tr

let test_determinism () =
  List.iter
    (fun sched ->
       let a = run_traced ~sched ~seed:42 () in
       let b = run_traced ~sched ~seed:42 () in
       checki "same count" (Tracer.total a) (Tracer.total b);
       checkb "identical event streams" true
         (List.for_all2 Event.equal (Tracer.events a) (Tracer.events b)))
    [ `Dfdeques; `Ws; `Adf; `Fifo ]

let test_seed_sensitivity () =
  let a = run_traced ~sched:`Dfdeques ~seed:1 () in
  let b = run_traced ~sched:`Dfdeques ~seed:2 () in
  checkb "different seeds -> different streams" false
    (Tracer.total a = Tracer.total b
     && List.for_all2 Event.equal (Tracer.events a) (Tracer.events b))

let test_vocabulary_exercised () =
  (* A DFD run must produce the paper-relevant event families. *)
  let tr = run_traced ~sched:`Dfdeques ~seed:42 () in
  List.iter
    (fun kind ->
       checkb (Event.kind_name kind) true (Tracer.count tr kind > 0))
    [
      Event.Fork { child = 0 };
      Event.Steal_attempt { victim = 0 };
      Event.Steal_success { victim = 0; latency = 0 };
      Event.Deque_created { did = 0 };
      Event.Deque_deleted { did = 0; residency = 0 };
      Event.Action_batch { units = 0 };
      Event.Counter { deques = 0; heap = 0; threads = 0 };
    ]

let test_counter_convention () =
  (* Counter samples are machine-wide: both proc and tid must be -1, and
     every processor-attributed event must carry proc >= 0 (event.mli's
     documented convention). *)
  let tr = run_traced ~sched:`Dfdeques ~seed:42 () in
  List.iter
    (fun (e : Event.t) ->
       match e.Event.kind with
       | Event.Counter _ ->
         checki "counter proc" (-1) e.Event.proc;
         checki "counter tid" (-1) e.Event.tid
       | Event.Action_batch _ | Event.Fork _ | Event.Steal_attempt _ | Event.Steal_success _ ->
         checkb "attributed proc" true (e.Event.proc >= 0)
       | _ -> ())
    (Tracer.events tr)

(* ------------------------------------------------------------------ *)
(* Chrome export                                                       *)
(* ------------------------------------------------------------------ *)

let test_chrome_export () =
  let tr = run_traced ~sched:`Dfdeques ~seed:42 () in
  let j = Chrome.to_json ~p:4 (Tracer.events tr) in
  (* the export must survive a print/parse cycle *)
  let j' = Json.of_string (Json.to_string j) in
  let events = Json.to_list_exn (Json.member "traceEvents" j') in
  checkb "nonempty" true (events <> []);
  let has_cat c =
    List.exists (fun e -> match Json.member "cat" e with
      | Json.String s -> s = c
      | _ -> false)
      events
  in
  List.iter (fun c -> checkb ("cat " ^ c) true (has_cat c)) [ "steal"; "deque"; "action"; "counter" ];
  (* one thread_name metadata record per processor *)
  let tracks =
    List.filter
      (fun e ->
         match (Json.member "ph" e, Json.member "name" e) with
         | Json.String "M", Json.String "thread_name" -> true
         | _ -> false)
      events
  in
  checki "per-processor tracks" 4 (List.length tracks)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "trace"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite;
        ] );
      ( "event",
        [ Alcotest.test_case "roundtrip all kinds" `Quick test_event_roundtrip ]
        @ qsuite [ event_roundtrip_prop ] );
      ( "tracer",
        [
          Alcotest.test_case "disabled is inert" `Quick test_tracer_disabled;
          Alcotest.test_case "ring overflow" `Quick test_tracer_ring;
        ] );
      ( "engine",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "vocabulary exercised" `Quick test_vocabulary_exercised;
          Alcotest.test_case "counter proc/tid convention" `Quick test_counter_convention;
        ] );
      ( "chrome", [ Alcotest.test_case "export" `Quick test_chrome_export ] );
    ]
