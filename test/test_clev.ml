(* Tests for the lock-free Chase–Lev deque.

   The concurrent properties run real Domains: an owner interleaving
   pushes and pops with thief domains stealing the whole time.  The
   correctness statement is linearizability-style at the multiset level —
   every pushed element is obtained exactly once (by the owner's pops, a
   thief's steals, or the final drain), with no duplicates and no losses —
   plus the order laws a deque must satisfy when quiescent. *)

module Clev = Dfd_structures.Clev

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Sequential laws                                                     *)
(* ------------------------------------------------------------------ *)

let test_lifo_owner () =
  let q = Clev.create () in
  for i = 1 to 100 do
    Clev.push q i
  done;
  for i = 100 downto 1 do
    checki "LIFO pop" i (Option.get (Clev.pop q))
  done;
  checkb "empty after" true (Clev.pop q = None)

let test_fifo_steal () =
  let q = Clev.create () in
  for i = 1 to 100 do
    Clev.push q i
  done;
  (* thieves take the oldest element first *)
  for i = 1 to 100 do
    checki "FIFO steal" i (Option.get (Clev.steal q))
  done;
  checkb "empty after" true (Clev.steal q = None)

let test_resize_sequential () =
  let q = Clev.create ~min_capacity:2 () in
  checki "initial capacity" 2 (Clev.capacity q);
  for i = 0 to 999 do
    Clev.push q i
  done;
  checkb "grew" true (Clev.capacity q >= 1024);
  checki "length" 1000 (Clev.length q);
  (* mixed ends across the resized buffer *)
  checki "steal oldest" 0 (Option.get (Clev.steal q));
  checki "pop newest" 999 (Option.get (Clev.pop q));
  checki "length after" 998 (Clev.length q)

let test_interleaved_push_pop () =
  let q = Clev.create ~min_capacity:2 () in
  (* push/pop churn that wraps the circular buffer many times *)
  let next = ref 0 in
  for _ = 1 to 50 do
    for _ = 1 to 7 do
      Clev.push q !next;
      incr next
    done;
    for _ = 1 to 5 do
      ignore (Clev.pop q)
    done
  done;
  checki "residual length" 100 (Clev.length q);
  let last = ref max_int in
  let decreasing = ref true in
  let rec drain () =
    match Clev.pop q with
    | None -> ()
    | Some v ->
      if v >= !last then decreasing := false;
      last := v;
      drain ()
  in
  drain ();
  checkb "pop order strictly decreasing" true !decreasing

(* ------------------------------------------------------------------ *)
(* Concurrent multiset property                                        *)
(* ------------------------------------------------------------------ *)

(* Run [ops] on an owner (true = push a fresh unique int, false = pop)
   while [n_stealers] domains steal continuously; afterwards drain what
   is left.  Returns (pushed, taken) where [taken] concatenates pops,
   steals and the drain. *)
let concurrent_run ?(min_capacity = 2) ?start_index ~n_stealers ops =
  let q =
    match start_index with
    | None -> Clev.create ~min_capacity ()
    | Some index -> Clev.create_at ~min_capacity ~index ()
  in
  let stop = Atomic.make false in
  let stealers =
    List.init n_stealers (fun _ ->
        Domain.spawn (fun () ->
            let acc = ref [] in
            while not (Atomic.get stop) do
              match Clev.steal q with
              | Some v -> acc := v :: !acc
              | None -> Domain.cpu_relax ()
            done;
            (* one last sweep so stopping can't strand elements *)
            let rec sweep () =
              match Clev.steal q with
              | Some v ->
                acc := v :: !acc;
                sweep ()
              | None -> ()
            in
            sweep ();
            !acc))
  in
  let next = ref 0 in
  let pushed = ref [] in
  let popped = ref [] in
  List.iter
    (fun op ->
       if op then begin
         Clev.push q !next;
         pushed := !next :: !pushed;
         incr next
       end
       else
         match Clev.pop q with
         | Some v -> popped := v :: !popped
         | None -> ())
    ops;
  Atomic.set stop true;
  let stolen = List.concat_map Domain.join stealers in
  (* stealers are gone: the owner drains the remainder single-threaded *)
  let rec drain acc =
    match Clev.pop q with Some v -> drain (v :: acc) | None -> acc
  in
  let rest = drain [] in
  (!pushed, !popped @ stolen @ rest)

let multiset_eq a b = List.sort compare a = List.sort compare b

let qcheck_no_dup_no_loss =
  QCheck.Test.make ~count:40
    ~name:"clev: multiset(popped+stolen+drained) = multiset(pushed), no dups/losses"
    QCheck.(pair (list_of_size Gen.(int_range 0 400) bool) (int_range 1 3))
    (fun (ops, n_stealers) ->
       let pushed, taken = concurrent_run ~n_stealers ops in
       multiset_eq pushed taken)

let test_resize_under_steal_stress () =
  (* a tiny initial buffer forces many grows while thieves hammer the top
     end: the resize publication must never lose or duplicate elements *)
  let n = 20_000 in
  let ops = List.init n (fun i -> i mod 11 <> 10) in
  (* ~9% pops *)
  let pushed, taken = concurrent_run ~min_capacity:2 ~n_stealers:3 ops in
  checkb "stress multiset equal" true (multiset_eq pushed taken);
  checki "stress pushed count" (List.length pushed) (List.length taken)

let test_concurrent_owner_drain_only () =
  (* all elements must surface even when stealers win most races *)
  let ops = List.init 5_000 (fun _ -> true) in
  let pushed, taken = concurrent_run ~n_stealers:2 ops in
  checkb "push-only multiset equal" true (multiset_eq pushed taken)

(* ------------------------------------------------------------------ *)
(* Wraparound and tiny-buffer regressions                              *)
(* ------------------------------------------------------------------ *)

(* The logical indices only ever increase, so a long-lived deque pushes
   them past max_int.  All internal comparisons must use wraparound
   subtraction; these start the indices just below the boundary via
   [create_at] so every operation crosses it. *)

let test_wrap_sequential () =
  let q = Clev.create_at ~min_capacity:2 ~index:(max_int - 2) () in
  for i = 0 to 5 do
    Clev.push q i
  done;
  (* bottom has wrapped negative while top is near max_int *)
  checki "length across boundary" 6 (Clev.length q);
  checki "steal oldest" 0 (Option.get (Clev.steal q));
  checki "pop newest" 5 (Option.get (Clev.pop q));
  for i = 4 downto 1 do
    checki "pop order" i (Option.get (Clev.pop q))
  done;
  checkb "empty after" true (Clev.pop q = None);
  (* single-element push/pop churn exactly on the boundary exercises the
     d=0 race path and the empty-reset path with wrapped indices *)
  for i = 0 to 9 do
    Clev.push q i;
    checki "immediate pop" i (Option.get (Clev.pop q))
  done;
  checkb "still empty" true (Clev.steal q = None)

let test_wrap_steal_fifo () =
  (* min_capacity 1 rounds up to the smallest legal buffer (2): every
     second push grows, and all of it happens across the overflow *)
  let q = Clev.create_at ~min_capacity:1 ~index:(max_int - 1) () in
  checki "tiny initial capacity" 2 (Clev.capacity q);
  for i = 0 to 7 do
    Clev.push q i
  done;
  checkb "grew across boundary" true (Clev.capacity q >= 8);
  for i = 0 to 7 do
    checki "FIFO across boundary" i (Option.get (Clev.steal q))
  done;
  checkb "empty after" true (Clev.steal q = None)

let test_wrap_concurrent () =
  (* the index stream crosses max_int mid-run while thieves hammer it *)
  let ops = List.init 8_000 (fun i -> i mod 5 <> 4) in
  let pushed, taken =
    concurrent_run ~min_capacity:2 ~start_index:(max_int - 1_000) ~n_stealers:3 ops
  in
  checkb "wraparound multiset equal" true (multiset_eq pushed taken)

let test_grow_tiny_under_steal () =
  (* capacity starts at the minimum, so grows happen constantly while
     thieves race the republication *)
  let ops = List.init 4_000 (fun i -> i mod 3 <> 2) in
  let pushed, taken = concurrent_run ~min_capacity:1 ~n_stealers:3 ops in
  checkb "tiny-buffer grow multiset equal" true (multiset_eq pushed taken)

let () =
  Alcotest.run "clev"
    [
      ( "sequential",
        [
          Alcotest.test_case "owner LIFO" `Quick test_lifo_owner;
          Alcotest.test_case "thief FIFO" `Quick test_fifo_steal;
          Alcotest.test_case "resize" `Quick test_resize_sequential;
          Alcotest.test_case "wraparound churn" `Quick test_interleaved_push_pop;
        ] );
      ( "concurrent",
        [
          QCheck_alcotest.to_alcotest ~long:false qcheck_no_dup_no_loss;
          Alcotest.test_case "resize under steal stress" `Quick test_resize_under_steal_stress;
          Alcotest.test_case "push-only, stealers drain" `Quick test_concurrent_owner_drain_only;
        ] );
      ( "wraparound",
        [
          Alcotest.test_case "sequential laws across max_int" `Quick test_wrap_sequential;
          Alcotest.test_case "grow + FIFO steal across max_int" `Quick test_wrap_steal_fifo;
          Alcotest.test_case "concurrent churn across max_int" `Quick test_wrap_concurrent;
          Alcotest.test_case "tiny buffer grows under steal" `Quick test_grow_tiny_under_steal;
        ] );
    ]
