(* Smoke-test validator for the repro CLI's trace/metrics exports: parses
   both files with the in-tree JSON parser and checks the structure the
   docs promise.  Exits non-zero with a message on any violation. *)

module Json = Dfd_trace.Json

let fail fmt = Json_util.failf ~prog:"validate_trace" fmt

let check_trace path =
  let j =
    match Json_util.parse_file path with
    | j -> j
    | exception Json.Parse_error m -> fail "%s: JSON parse error: %s" path m
  in
  let events =
    match Json.member "traceEvents" j with
    | Json.List l -> l
    | _ -> fail "%s: no traceEvents array" path
  in
  if events = [] then fail "%s: empty traceEvents" path;
  let cats = Hashtbl.create 8 in
  let threads = Hashtbl.create 8 in
  List.iter
    (fun e ->
       (match Json.member "cat" e with
        | Json.String c -> Hashtbl.replace cats c ()
        | _ -> ());
       (* Event.Counter samples are machine-wide (proc = tid = -1 in the
          raw stream): the Chrome export must render them as processor-
          less "C" records, and every instant/span must sit on a real
          (non-negative) processor track. *)
       (match Json.member "ph" e with
        | Json.String "C" ->
          if Json.member "tid" e <> Json.Null then
            fail "%s: counter sample carries a tid track" path
        | Json.String ("i" | "X") ->
          (match Json.member "tid" e with
           | Json.Int t when t >= 0 -> ()
           | _ -> fail "%s: instant/span event without a processor track" path)
        | _ -> ());
       (match (Json.member "ph" e, Json.member "name" e) with
        | Json.String "M", Json.String "thread_name" ->
          Hashtbl.replace threads (Json.to_int_exn (Json.member "tid" e)) ()
        | _ -> ()))
    events;
  List.iter
    (fun c -> if not (Hashtbl.mem cats c) then fail "%s: no %S events" path c)
    [ "steal"; "action"; "counter" ];
  if Hashtbl.length threads < 4 then
    fail "%s: expected >= 4 per-processor thread_name tracks, got %d" path
      (Hashtbl.length threads);
  Printf.printf "%s: %d events, %d categories, %d processor tracks\n" path
    (List.length events) (Hashtbl.length cats) (Hashtbl.length threads)

let check_metrics path =
  let j =
    match Json_util.parse_file path with
    | j -> j
    | exception Json.Parse_error m -> fail "%s: JSON parse error: %s" path m
  in
  (match Json.member "sched" j with
   | Json.String _ -> ()
   | _ -> fail "%s: missing sched" path);
  let counters =
    match Json.member "counters" j with
    | Json.Assoc kvs -> kvs
    | _ -> fail "%s: missing counters object" path
  in
  List.iter
    (fun key ->
       match List.assoc_opt key counters with
       | Some (Json.Int _) -> ()
       | _ -> fail "%s: counters.%s missing or not an int" path key)
    [ "time"; "work"; "steals"; "steal_attempts"; "heap_peak"; "threads_peak" ];
  List.iter
    (fun h ->
       let hist = Json.member h (Json.member "histograms" j) in
       match hist with
       | Json.Assoc _ ->
         List.iter
           (fun q ->
              match Json.member q hist with
              | Json.Int _ | Json.Float _ | Json.Null -> ()
              | _ -> fail "%s: histograms.%s.%s malformed" path h q)
           [ "count"; "p50"; "p90"; "p99" ]
       | _ -> fail "%s: histograms.%s missing" path h)
    [ "steal_latency"; "deque_residency"; "quota_utilisation"; "premature_depth" ];
  (match Json.member "per_victim_steals" j with
   | Json.List _ -> ()
   | _ -> fail "%s: per_victim_steals missing" path);
  Printf.printf "%s: ok\n" path

let () =
  match Sys.argv with
  | [| _; trace; metrics |] ->
    check_trace trace;
    check_metrics metrics
  | _ ->
    prerr_endline "usage: validate_trace TRACE.json METRICS.json";
    exit 2
