(* Integration tests for the experiment harness: the tables are
   well-formed, and the paper's reproduction targets (orderings and trends,
   not absolute values) hold on scaled-down configurations that keep the
   suite fast. *)

module Engine = Dfdeques_core.Engine
module Config = Dfd_machine.Config
module W = Dfd_benchmarks.Workload
module E = Dfd_experiments.Exp_common

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Plumbing                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_complete () =
  let ids = Dfd_experiments.All_experiments.ids in
  List.iter
    (fun id -> checkb ("has " ^ id) true (List.mem id ids))
    [ "table1"; "fig12"; "fig13"; "fig14"; "fig15"; "fig16"; "fig17"; "thm44"; "thm45";
      "thm48"; "ablation" ];
  checkb "find works" true (Dfd_experiments.All_experiments.find "fig15" <> None);
  checkb "unknown none" true (Dfd_experiments.All_experiments.find "zzz" = None)

let test_render_wellformed () =
  let t =
    {
      E.title = "t";
      paper_ref = "r";
      header = [ "a"; "b" ];
      rows = [ [ "1"; "2" ]; [ "3"; "4" ] ];
      notes = [ "n" ];
    }
  in
  let s = E.render t in
  checkb "has title" true (String.length s > 10);
  checkb "has note" true (String.length s > String.length "note: n")

let test_serial_time_memoised () =
  let b = Dfd_benchmarks.Sparse_mvm.bench ~rows:300 W.Fine in
  let t1 = E.serial_time b in
  let t2 = E.serial_time b in
  checki "memoised equal" t1 t2;
  checkb "positive" true (t1 > 0)

(* ------------------------------------------------------------------ *)
(* Reproduction targets on scaled-down configurations                  *)
(* ------------------------------------------------------------------ *)

(* Figures 1/11/12 heart: DFD beats FIFO on speedup; FIFO holds the most
   threads.  One cheap benchmark suffices for the regression. *)
let test_speedup_and_thread_orderings () =
  let b = Dfd_benchmarks.Sparse_mvm.bench W.Fine in
  let dfd = E.run_costed ~sched:`Dfdeques b in
  let fifo = E.run_costed ~sched:`Fifo b in
  checkb "DFD faster than FIFO" true (dfd.Engine.time < fifo.Engine.time);
  checkb "FIFO holds more threads" true
    (fifo.Engine.threads_peak > dfd.Engine.threads_peak)

let test_locality_ordering () =
  let b = Dfd_benchmarks.Volume_render.bench W.Fine in
  let dfd = E.run_costed ~sched:`Dfdeques b in
  let fifo = E.run_costed ~sched:`Fifo b in
  checkb "DFD misses less than FIFO" true
    (dfd.Engine.cache_miss_rate < fifo.Engine.cache_miss_rate)

(* Figure 13 shape at reduced scale: WS memory grows faster with p than
   ADF's; DFD sits at or below WS. *)
let test_fig13_shape_small () =
  let b = Dfd_benchmarks.Dense_mm.bench ~n:128 W.Fine in
  let heap sched k p = (E.run_costed ~p ~k ~sched b).Engine.heap_peak in
  let k = Some 20_000 in
  let ws1 = heap `Ws None 1 and ws8 = heap `Ws None 8 in
  let adf1 = heap `Adf k 1 and adf8 = heap `Adf k 8 in
  let dfd8 = heap `Dfdeques k 8 in
  checkb "WS grows with p" true (ws8 > ws1);
  checkb "WS grows at least as much as ADF" true (ws8 - ws1 >= adf8 - adf1);
  checkb "DFD(20k) <= WS at p=8" true (dfd8 <= ws8)

(* Figure 15 trade-off at reduced scale: growing K lowers time and raises
   scheduling granularity. *)
let test_fig15_tradeoff_small () =
  let b = Dfd_benchmarks.Dense_mm.bench ~n:64 W.Fine in
  let run k = E.run_costed ~k:(Some k) ~sched:`Dfdeques b in
  let lo = run 500 in
  let hi = run 1_000_000 in
  checkb "time falls with K" true (hi.Engine.time <= lo.Engine.time);
  checkb "granularity rises with K" true
    (hi.Engine.local_steal_ratio > lo.Engine.local_steal_ratio)

(* Figure 16 targets, full scale (analysis mode is fast). *)
let test_fig16_targets () =
  let pts = Dfd_experiments.Fig16.sweep () in
  let first = List.hd pts and last = List.nth pts (List.length pts - 1) in
  checkb "DFD granularity rises with K" true (last.Dfd_experiments.Fig16.dfd_gran_pct > 2.0 *. first.Dfd_experiments.Fig16.dfd_gran_pct);
  checkb "WS flat (same measurement)" true
    (first.Dfd_experiments.Fig16.ws_gran_pct = last.Dfd_experiments.Fig16.ws_gran_pct);
  checkb "ADF granularity below DFD's at large K" true
    (last.Dfd_experiments.Fig16.adf_gran_pct < last.Dfd_experiments.Fig16.dfd_gran_pct);
  checkb "ADF stays below WS granularity" true
    (last.Dfd_experiments.Fig16.adf_gran_pct < last.Dfd_experiments.Fig16.ws_gran_pct)

(* Figure 17 targets (reproduced part): DFD >= ADF and DFD >= FIFO with
   blocking locks. *)
let test_fig17_targets () =
  let m = Dfd_experiments.Fig17.measure () in
  let get n = List.assoc n m in
  checkb "DFD >= ADF" true (get "DFD" >= 0.95 *. get "ADF");
  checkb "DFD >= FIFO" true (get "DFD" >= 0.95 *. get "FIFO")

(* Theorem 4.4 on a real benchmark program, stated through the shared
   oracle (lib/check) instead of a hand-rolled bound. *)
let test_thm44_oracle_on_bench () =
  let b = Dfd_benchmarks.Sparse_mvm.bench ~rows:300 W.Fine in
  let prog = b.W.prog () in
  List.iter
    (fun p ->
       match Dfd_check.Oracle.(thm44_result (thm44 ~p ~k:2048 prog)) with
       | Ok () -> ()
       | Error m -> Alcotest.failf "p=%d: %s" p m)
    [ 1; 4; 8 ]

(* Theorem 4.5: the adversarial-dag space grows linearly in p while S1 is
   constant. *)
let test_thm45_growth () =
  let m4, s4 = Dfd_experiments.Thm_space.lower_measure ~p:4 () in
  let m16, s16 = Dfd_experiments.Thm_space.lower_measure ~p:16 () in
  checki "S1 independent of p" s4 s16;
  checkb "space grows ~linearly in p" true (m16 >= 3 * m4)

(* The memory profile is deterministic and shaped as documented: WS's
   mid-execution live heap exceeds ADF's. *)
let test_profile_shape () =
  let profiles = Dfd_experiments.Profile.measure () in
  let find name = List.find (fun p -> p.Dfd_experiments.Profile.sched = name) profiles in
  let mid p =
    match List.nth_opt p.Dfd_experiments.Profile.samples 4 with
    | Some (_, heap) -> heap
    | None -> 0
  in
  let ws = find "WS" and adf = find "ADF" in
  checkb "WS mid-run heap above ADF's" true (mid ws > mid adf);
  List.iter
    (fun p -> checkb "has samples" true (List.length p.Dfd_experiments.Profile.samples >= 8))
    profiles

(* Paper reference data is embedded for all seven benchmarks. *)
let test_paper_reference_data () =
  checki "seven rows" 7 (List.length Dfd_experiments.Table1.paper_fine);
  List.iter
    (fun (name, mt, mr, sp) ->
       checkb (name ^ " shapes") true
         (Array.length mt = 3 && Array.length mr = 3 && Array.length sp = 3))
    Dfd_experiments.Table1.paper_fine

(* The ablation table renders and contains all four variants per bench. *)
let test_ablation_table () =
  let t = Dfd_experiments.Ablation.table () in
  checki "rows = 2 benches x 4 variants" 8 (List.length t.E.rows);
  List.iter (fun r -> checki "cols" 6 (List.length r)) t.E.rows

let () =
  Alcotest.run "experiments"
    [
      ( "plumbing",
        [
          Alcotest.test_case "registry" `Quick test_registry_complete;
          Alcotest.test_case "render" `Quick test_render_wellformed;
          Alcotest.test_case "serial_time memoised" `Quick test_serial_time_memoised;
        ] );
      ( "targets",
        [
          Alcotest.test_case "speedup & threads" `Quick test_speedup_and_thread_orderings;
          Alcotest.test_case "locality" `Quick test_locality_ordering;
          Alcotest.test_case "fig13 shape" `Slow test_fig13_shape_small;
          Alcotest.test_case "fig15 tradeoff" `Quick test_fig15_tradeoff_small;
          Alcotest.test_case "fig16 targets" `Slow test_fig16_targets;
          Alcotest.test_case "fig17 targets" `Slow test_fig17_targets;
          Alcotest.test_case "thm44 oracle on benchmark" `Quick test_thm44_oracle_on_bench;
          Alcotest.test_case "thm45 growth" `Quick test_thm45_growth;
          Alcotest.test_case "profile shape" `Slow test_profile_shape;
          Alcotest.test_case "paper data" `Quick test_paper_reference_data;
          Alcotest.test_case "ablation table" `Slow test_ablation_table;
        ] );
    ]
