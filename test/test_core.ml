(* Tests for the schedulers and the engine: execution correctness across all
   four policies, the Lemma 3.1 invariant, the dummy-thread transformation,
   mutexes, and the paper's theorems (4.4 space bound, 4.8 time bound,
   greedy lower bounds) as properties over random programs. *)

module Action = Dfd_dag.Action
module Prog = Dfd_dag.Prog
module Analysis = Dfd_dag.Analysis
module Dag_gen = Dfd_dag.Dag_gen
module Prng = Dfd_structures.Prng
module Config = Dfd_machine.Config
module Engine = Dfdeques_core.Engine
module Dummy = Dfdeques_core.Dummy
module Oracle = Dfd_check.Oracle
open Prog

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let scheds : (Engine.sched * string) list =
  [ (`Dfdeques, "DFD"); (`Ws, "WS"); (`Adf, "ADF"); (`Fifo, "FIFO") ]

let rec dnc depth leaf =
  if depth = 0 then leaf else par (dnc (depth - 1) leaf) (dnc (depth - 1) leaf)

(* ------------------------------------------------------------------ *)
(* Dummy transformation                                                *)
(* ------------------------------------------------------------------ *)

let test_dummy_threads_needed () =
  checki "exact" 10 (Dummy.threads_needed ~alloc:10_000 ~k:1_000);
  checki "round up" 11 (Dummy.threads_needed ~alloc:10_001 ~k:1_000);
  checki "one" 1 (Dummy.threads_needed ~alloc:5 ~k:1_000)

let test_dummy_transform_shape () =
  let t = Dummy.transform ~alloc:8_000 ~k:1_000 ~cont:Prog.Nil in
  let s = Analysis.analyze t in
  (* 8 dummy threads + internal tree threads; exactly 8 dummy actions. *)
  let dummies = ref 0 in
  Analysis.iter_serial (fun a -> if a = Action.Dummy then incr dummies) t;
  checki "8 dummies" 8 !dummies;
  checkb "alloc survives" true (s.Analysis.total_alloc = 8_000);
  (* depth of the fork tree is logarithmic *)
  checkb "log depth" true (s.Analysis.depth <= 4 * 13 + Action.depth_units (Action.Alloc 8000))

let test_dummy_transform_rejects_small () =
  Alcotest.check_raises "fits threshold"
    (Invalid_argument "Dummy.transform: allocation fits the threshold") (fun () ->
        ignore (Dummy.transform ~alloc:10 ~k:1_000 ~cont:Prog.Nil))

let test_is_dummy_prog () =
  checkb "bare dummy" true (Dummy.is_dummy_prog (Prog.Act (Action.Dummy, Prog.Nil)));
  checkb "not work" false (Dummy.is_dummy_prog (Prog.Act (Action.Work 1, Prog.Nil)))

(* ------------------------------------------------------------------ *)
(* Engine basics: every scheduler completes and agrees on semantics    *)
(* ------------------------------------------------------------------ *)

let run_all ?(p = 4) ?(k = Some 500) prog =
  List.map
    (fun (sched, name) ->
       let cfg = Config.analysis ~p ~mem_threshold:k () in
       (name, Engine.run ~sched ~check_invariants:true cfg prog))
    scheds

let test_all_complete_simple () =
  let prog = finish (dnc 5 (alloc 20 >> work 3 >> free 20)) in
  let s = Analysis.analyze prog in
  List.iter
    (fun (name, r) ->
       checki (name ^ " executes exactly W") s.Analysis.work r.Engine.work;
       checki (name ^ " no leak") 0 r.Engine.final_heap;
       checki (name ^ " threads created") s.Analysis.threads r.Engine.threads_created;
       checkb (name ^ " time >= critical path") true (r.Engine.time >= s.Analysis.depth))
    (run_all prog)

let test_p1_dfdeques_inf_is_serial () =
  (* DFDeques(inf) on one processor executes the 1DF schedule exactly:
     space = S1, live threads = serial live threads. *)
  let prog = finish (dnc 6 (alloc 32 >> work 2 >> free 32)) in
  let s = Analysis.analyze prog in
  let cfg = Config.analysis ~p:1 () in
  let r = Engine.run ~sched:`Dfdeques cfg prog in
  checki "heap peak = S1" s.Analysis.serial_space r.Engine.heap_peak;
  checki "live threads = serial" s.Analysis.serial_live_threads r.Engine.threads_peak;
  checki "work" s.Analysis.work r.Engine.work

let test_p1_ws_is_serial () =
  let prog = finish (dnc 6 (alloc 32 >> work 2 >> free 32)) in
  let s = Analysis.analyze prog in
  let cfg = Config.analysis ~p:1 () in
  let r = Engine.run ~sched:`Ws cfg prog in
  checki "heap peak = S1" s.Analysis.serial_space r.Engine.heap_peak

let test_deterministic_given_seed () =
  let prog = finish (dnc 6 (alloc 16 >> work 3 >> free 16)) in
  let cfg = Config.analysis ~p:4 ~mem_threshold:(Some 200) ~seed:123 () in
  let r1 = Engine.run ~sched:`Dfdeques cfg prog in
  let r2 = Engine.run ~sched:`Dfdeques cfg prog in
  checki "same time" r1.Engine.time r2.Engine.time;
  checki "same steals" r1.Engine.steals r2.Engine.steals;
  checki "same heap" r1.Engine.heap_peak r2.Engine.heap_peak

let test_seed_changes_schedule () =
  let prog = finish (dnc 8 (work 4)) in
  let r1 =
    Engine.run ~sched:`Dfdeques (Config.analysis ~p:4 ~seed:1 ()) prog
  in
  let r2 =
    Engine.run ~sched:`Dfdeques (Config.analysis ~p:4 ~seed:2 ()) prog
  in
  checkb "different seeds -> different steal counts (almost surely)" true
    (r1.Engine.steals <> r2.Engine.steals || r1.Engine.time <> r2.Engine.time)

let test_parallel_speedup () =
  (* A wide dag must run much faster on 8 processors than on 1. *)
  let prog = finish (dnc 8 (work 16)) in
  let t1 = (Engine.run ~sched:`Dfdeques (Config.analysis ~p:1 ()) prog).Engine.time in
  let t8 = (Engine.run ~sched:`Dfdeques (Config.analysis ~p:8 ()) prog).Engine.time in
  checkb "speedup > 4" true (float_of_int t1 /. float_of_int t8 > 4.0)

let test_work_conservation_all_schedulers () =
  let rng = Prng.create 17 in
  for _ = 1 to 20 do
    let prog = Dag_gen.gen_prog rng Dag_gen.default in
    let s = Analysis.analyze prog in
    List.iter
      (fun (name, r) ->
         checkb (name ^ " work >= W") true (r.Engine.work >= s.Analysis.work);
         checki (name ^ " final heap") s.Analysis.final_heap r.Engine.final_heap)
      (run_all ~p:3 ~k:(Some 100) prog)
  done

let test_big_alloc_spawns_dummies () =
  let prog = finish (par (alloc 10_000 >> work 1 >> free 10_000) (work 5)) in
  let cfg = Config.analysis ~p:4 ~mem_threshold:(Some 1_000) () in
  let r = Engine.run ~sched:`Dfdeques ~check_invariants:true cfg prog in
  checki "10 dummies" 10 r.Engine.dummy_threads;
  checki "alloc happened" 10_000 r.Engine.heap_peak;
  let r_adf = Engine.run ~sched:`Adf cfg prog in
  checki "ADF also spawns dummies" 10 r_adf.Engine.dummy_threads;
  (* infinite threshold: no dummies *)
  let rinf = Engine.run ~sched:`Dfdeques (Config.analysis ~p:4 ()) prog in
  checki "no dummies at K=inf" 0 rinf.Engine.dummy_threads

let test_quota_preemptions_happen () =
  (* the quota counts NET allocation between steals, so the leaves must
     hold their allocations live (freed at the very end) to trip it *)
  let prog =
    finish
      (alloc 0
       >> dnc 6 (alloc 400 >> work 2)
       >> free (64 * 400))
  in
  let cfg = Config.analysis ~p:2 ~mem_threshold:(Some 500) () in
  let r = Engine.run ~sched:`Dfdeques ~check_invariants:true cfg prog in
  checkb "quota exhaustions occur" true (r.Engine.quota_exhaustions > 0);
  let rinf = Engine.run ~sched:`Dfdeques (Config.analysis ~p:2 ()) prog in
  checki "none at K=inf" 0 rinf.Engine.quota_exhaustions

let test_ws_ignores_threshold () =
  let prog = finish (dnc 6 (alloc 400 >> work 2) >> free (64 * 400)) in
  let cfg = Config.analysis ~p:2 ~mem_threshold:(Some 500) () in
  let r = Engine.run ~sched:`Ws cfg prog in
  checki "WS never preempts on quota" 0 r.Engine.quota_exhaustions;
  checki "WS never forks dummies" 0 r.Engine.dummy_threads

let test_malformed_program_raises () =
  let bad = Prog.Join Prog.Nil in
  Alcotest.check_raises "naked join"
    (Engine.Malformed_run "join without an unjoined child") (fun () ->
        ignore (Engine.run ~sched:`Dfdeques (Config.analysis ~p:1 ()) bad))

let test_fifo_breadth_first_explosion () =
  (* FIFO must hold many more threads live than DFD on a fork tree. *)
  let prog = finish (dnc 7 (work 8)) in
  let results = run_all ~p:4 ~k:(Some 1_000) prog in
  let get n = (List.assoc n results).Engine.threads_peak in
  checkb "FIFO explodes vs DFD" true (get "FIFO" > 3 * get "DFD");
  checkb "FIFO explodes vs ADF" true (get "FIFO" > 3 * get "ADF")

let test_granularity_ordering () =
  (* WS (= coarse steals) must have larger scheduling granularity than ADF
     (every thread dispatched from the global queue). *)
  let prog = finish (dnc 9 (work 4)) in
  let results = run_all ~p:8 ~k:(Some 10_000) prog in
  let g n = (List.assoc n results).Engine.sched_granularity in
  checkb "WS > ADF granularity" true (g "WS" > g "ADF");
  checkb "DFD > ADF granularity" true (g "DFD" > g "ADF")

(* ------------------------------------------------------------------ *)
(* Locks                                                               *)
(* ------------------------------------------------------------------ *)

let lock_prog n =
  finish
    (par_iter ~lo:0 ~hi:n (fun i -> work (1 + (i mod 3)) >> critical 0 (work 2) >> work 1))

let test_locks_all_schedulers () =
  List.iter
    (fun (sched, name) ->
       let cfg = Config.analysis ~p:4 ~mem_threshold:(Some 10_000) () in
       let r = Engine.run ~sched cfg (lock_prog 16) in
       checkb (name ^ " completes with locks") true (r.Engine.time > 0))
    scheds

let test_spin_locks_complete () =
  let cfg = Config.analysis ~p:4 () in
  let r = Engine.run ~sched:`Ws ~spin_locks:true cfg (lock_prog 16) in
  checkb "spin completes" true (r.Engine.time > 0)

let test_lock_mutual_exclusion () =
  (* Two threads increment a "shared counter" modelled as allocations under
     a lock; if mutual exclusion were broken the engine would raise on the
     unlock of a non-held mutex. *)
  let prog =
    finish (par (critical 1 (work 5)) (critical 1 (work 5)) >> critical 1 (work 1))
  in
  List.iter
    (fun (sched, name) ->
       let r = Engine.run ~sched (Config.analysis ~p:2 ()) prog in
       checkb (name ^ " lock discipline held") true (r.Engine.time > 0))
    scheds

(* Condition variables: a consumer waits under the mutex; a producer that
   works first signals later — the consumer must complete on every
   scheduler, whichever side reaches the condvar first (sticky signals). *)
let cv_prog ~producer_delay ~consumer_delay =
  finish
    (par
       (work consumer_delay >> lock 0 >> wait ~cv:1 ~mutex:0 >> work 2 >> unlock 0)
       (work producer_delay >> critical 0 (work 1) >> signal 1))

let test_condvar_wait_then_signal () =
  List.iter
    (fun (sched, name) ->
       let r =
         Engine.run ~sched (Config.analysis ~p:2 ()) (cv_prog ~producer_delay:50 ~consumer_delay:1)
       in
       checkb (name ^ " completes") true (r.Engine.time > 50))
    scheds

let test_condvar_signal_then_wait () =
  (* the signal fires long before the wait: sticky semantics must prevent
     the lost wakeup *)
  List.iter
    (fun (sched, name) ->
       let r =
         Engine.run ~sched (Config.analysis ~p:2 ()) (cv_prog ~producer_delay:1 ~consumer_delay:50)
       in
       checkb (name ^ " no lost wakeup") true (r.Engine.time > 50))
    scheds

let test_condvar_broadcast () =
  (* three waiters, one broadcast wakes them all *)
  let waiter = lock 0 >> wait ~cv:2 ~mutex:0 >> unlock 0 >> work 1 in
  let prog =
    finish
      (par_list [ waiter; waiter; waiter; work 80 >> critical 0 (work 1) >> broadcast 2 ])
  in
  List.iter
    (fun (sched, name) ->
       let r = Engine.run ~sched (Config.analysis ~p:4 ()) prog in
       checkb (name ^ " all woken") true (r.Engine.time > 80))
    scheds

let test_condvar_wait_without_mutex_raises () =
  let prog = finish (wait ~cv:0 ~mutex:0) in
  checkb "raises" true
    (try
       ignore (Engine.run ~sched:`Dfdeques (Config.analysis ~p:1 ()) prog);
       false
     with Engine.Malformed_run _ -> true)

let test_condvar_orphan_wait_deadlocks () =
  (* a wait that nobody ever signals is detected as a deadlock *)
  let prog =
    finish (par (lock 0 >> wait ~cv:9 ~mutex:0 >> unlock 0) (work 3))
  in
  checkb "deadlock detected" true
    (try
       ignore (Engine.run ~sched:`Dfdeques (Config.analysis ~p:2 ()) prog);
       false
     with Engine.Deadlock _ -> true)

let test_deadlock_detected () =
  (* Classic ABBA deadlock. *)
  let prog =
    finish
      (par
         (lock 0 >> work 5 >> lock 1 >> work 1 >> unlock 1 >> unlock 0)
         (lock 1 >> work 5 >> lock 0 >> work 1 >> unlock 0 >> unlock 1))
  in
  checkb "deadlock raises" true
    (try
       ignore (Engine.run ~sched:`Dfdeques (Config.analysis ~p:2 ()) prog);
       false
     with Engine.Deadlock _ -> true)

let test_unlock_unheld_raises () =
  let prog = finish (unlock 3) in
  checkb "raises" true
    (try
       ignore (Engine.run ~sched:`Dfdeques (Config.analysis ~p:1 ()) prog);
       false
     with Engine.Malformed_run _ -> true)

(* ------------------------------------------------------------------ *)
(* Edge cases and failure injection                                    *)
(* ------------------------------------------------------------------ *)

let test_empty_program () =
  List.iter
    (fun (sched, name) ->
       let r = Engine.run ~sched (Config.analysis ~p:2 ()) Prog.Nil in
       checki (name ^ " zero work") 0 r.Engine.work;
       checki (name ^ " one thread") 1 r.Engine.threads_created)
    scheds

let test_stuck_raises () =
  let prog = finish (work 1_000) in
  checkb "max_steps raises Stuck" true
    (try
       ignore (Engine.run ~sched:`Dfdeques ~max_steps:10 (Config.analysis ~p:1 ()) prog);
       false
     with Engine.Stuck _ -> true)

let test_leak_reported () =
  let prog = finish (alloc 123 >> work 1) in
  let r = Engine.run ~sched:`Ws (Config.analysis ~p:2 ()) prog in
  checki "leak visible" 123 r.Engine.final_heap;
  checki "peak" 123 r.Engine.heap_peak

let test_long_serial_chain () =
  (* a very deep sequential program must not blow the engine's stack and
     must take exactly W timesteps on one processor (after the initial
     steal of the root) *)
  let n = 50_000 in
  let prog = finish (repeat n (work 1)) in
  let r = Engine.run ~sched:`Dfdeques (Config.analysis ~p:1 ()) prog in
  checki "work" n r.Engine.work;
  checkb "T ~ W" true (r.Engine.time <= n + 4)

let test_self_deadlock_detected () =
  (* recursive acquisition of a non-recursive mutex deadlocks the thread *)
  let prog = finish (lock 0 >> lock 0 >> work 1 >> unlock 0 >> unlock 0) in
  checkb "self deadlock detected" true
    (try
       ignore (Engine.run ~sched:`Dfdeques (Config.analysis ~p:2 ()) prog);
       false
     with Engine.Deadlock _ -> true)

let test_extreme_threshold_k1 () =
  (* K=1: every allocation is "large" and goes through dummy threads *)
  let prog = finish (dnc 3 (alloc 16 >> work 2 >> free 16)) in
  let cfg = Config.analysis ~p:4 ~mem_threshold:(Some 1) () in
  let r = Engine.run ~sched:`Dfdeques ~check_invariants:true cfg prog in
  checkb "many dummies" true (r.Engine.dummy_threads >= 8 * 16);
  checki "no leak" 0 r.Engine.final_heap

let test_many_processors_smoke () =
  let prog = finish (dnc 10 (work 2)) in
  let r = Engine.run ~sched:`Dfdeques (Config.analysis ~p:64 ()) prog in
  checkb "wide machine wins" true (r.Engine.time * 16 < r.Engine.work);
  let r1 = Engine.run ~sched:`Adf (Config.analysis ~p:64 ()) prog in
  checkb "ADF too" true (r1.Engine.time > 0)

let test_spin_locks_with_observer () =
  let prog = lock_prog 8 in
  let count = ref 0 in
  let r =
    Engine.run ~sched:`Ws ~spin_locks:true
      ~observer:(fun ~now:_ ~proc:_ _ a -> count := !count + Action.work_units a)
      (Config.analysis ~p:4 ())
      prog
  in
  checki "observer sees the executed work" r.Engine.work !count

let test_load_balance_wide_dag () =
  (* a wide regular dag must balance nearly perfectly under the
     deque-based schedulers (the paper's automatic load-balancing claim) *)
  let prog = finish (dnc 11 (work 8)) in
  List.iter
    (fun sched ->
       let r = Engine.run ~sched (Config.analysis ~p:8 ()) prog in
       checkb
         (Engine.sched_name sched ^ " balanced")
         true (r.Engine.load_imbalance < 1.3))
    [ `Dfdeques; `Ws ]

let test_more_procs_than_work () =
  (* p far exceeding the dag's parallelism: correct, just mostly idle *)
  let prog = finish (work 5) in
  let r = Engine.run ~sched:`Dfdeques (Config.analysis ~p:32 ()) prog in
  checki "work" 5 r.Engine.work

(* ------------------------------------------------------------------ *)
(* Theorems as properties                                              *)
(* ------------------------------------------------------------------ *)

(* Theorem 4.4: expected space of DFDeques(K) is
   S1 + O(min(K,S1) * p * D).  Checked through the shared oracle
   (Dfd_check.Oracle) with its generous default constant. *)
let space_bound_prop =
  QCheck.Test.make ~name:"Theorem 4.4: DFDeques space bound" ~count:60
    QCheck.(pair small_int (int_range 1 6))
    (fun (seed, p) ->
       let rng = Prng.create (seed + 1) in
       let prog = Dag_gen.gen_prog rng Dag_gen.allocation_heavy in
       match Oracle.thm44_result (Oracle.thm44 ~seed ~p ~k:256 prog) with
       | Ok () -> true
       | Error msg -> QCheck.Test.fail_reportf "%s (seed=%d)" msg seed)

(* Greedy lower bounds hold for any scheduler: T >= W/p and T >= D. *)
let time_lower_bound_prop =
  QCheck.Test.make ~name:"time lower bounds (all schedulers)" ~count:40
    QCheck.(pair small_int (int_range 1 6))
    (fun (seed, p) ->
       let rng = Prng.create (seed + 100) in
       let prog = Dag_gen.gen_prog rng Dag_gen.default in
       let s = Analysis.analyze prog in
       List.for_all
         (fun (sched, _) ->
            let cfg = Config.analysis ~p ~mem_threshold:(Some 512) ~seed () in
            let r = Engine.run ~sched cfg prog in
            r.Engine.time >= s.Analysis.depth
            && r.Engine.time >= (s.Analysis.timed_work + p - 1) / p)
         scheds)

(* Theorem 4.8: expected time of DFDeques(K) is O(W/p + Sa/(pK) + D). *)
let time_upper_bound_prop =
  QCheck.Test.make ~name:"Theorem 4.8: DFDeques time bound" ~count:60
    QCheck.(pair small_int (int_range 1 6))
    (fun (seed, p) ->
       let rng = Prng.create (seed + 200) in
       let prog = Dag_gen.gen_prog rng Dag_gen.default in
       let s = Analysis.analyze prog in
       let k = 512 in
       let cfg = Config.analysis ~p ~mem_threshold:(Some k) ~seed () in
       let r = Engine.run ~sched:`Dfdeques cfg prog in
       let bound =
         20
         * ((s.Analysis.timed_work / p) + (s.Analysis.total_alloc / (p * k)) + s.Analysis.depth)
         + 20
       in
       if r.Engine.time > bound then
         QCheck.Test.fail_reportf "time %d > bound %d (W'=%d Sa=%d D=%d p=%d)" r.Engine.time
           bound s.Analysis.timed_work s.Analysis.total_alloc s.Analysis.depth p
       else true)

(* Lemma 4.3 consequence: active threads of DFDeques stay far below FIFO's
   breadth-first explosion and within the analytical envelope. *)
let thread_bound_prop =
  QCheck.Test.make ~name:"DFDeques active threads within envelope" ~count:40
    QCheck.(small_int)
    (fun seed ->
       let rng = Prng.create (seed + 300) in
       let prog = Dag_gen.gen_prog rng Dag_gen.fork_heavy in
       let s = Analysis.analyze prog in
       let p = 4 in
       let cfg = Config.analysis ~p ~mem_threshold:(Some 256) ~seed () in
       let r = Engine.run ~sched:`Dfdeques cfg prog in
       (* live threads <= serial live + O(p * D) with a generous constant *)
       r.Engine.threads_peak
       <= s.Analysis.serial_live_threads + (8 * p * s.Analysis.depth))

(* DFDeques(inf) behaves like WS: no quota events, <= p deques ever, and WS
   itself obeys the S1*p space envelope (Corollary 4.6 upper side for
   stack-like programs). *)
let dfd_inf_is_ws_prop =
  QCheck.Test.make ~name:"DFDeques(inf) = WS structural equivalence" ~count:60
    QCheck.(pair small_int (int_range 1 6))
    (fun (seed, p) ->
       let rng = Prng.create (seed + 400) in
       let prog = Dag_gen.gen_prog rng Dag_gen.allocation_heavy in
       let cfg = Config.analysis ~p ~seed () in
       let r = Engine.run ~sched:`Dfdeques ~check_invariants:true cfg prog in
       r.Engine.quota_exhaustions = 0 && r.Engine.dummy_threads = 0
       && r.Engine.deque_peak <= p)

let ws_space_envelope_prop =
  QCheck.Test.make ~name:"WS space <= c * p * S1 (stack-like programs)" ~count:40
    QCheck.(pair small_int (int_range 1 6))
    (fun (seed, p) ->
       let rng = Prng.create (seed + 500) in
       (* leak-free programs approximate the stack-like allocation model of
          Blumofe-Leiserson under which p*S1 holds *)
       let prog =
         Dag_gen.gen_prog rng { Dag_gen.allocation_heavy with leak_prob = 0.0 }
       in
       let s = Analysis.analyze prog in
       let cfg = Config.analysis ~p ~seed () in
       let r = Engine.run ~sched:`Ws cfg prog in
       r.Engine.heap_peak <= max 1 (4 * p * s.Analysis.serial_space))

(* Lemma 3.1 invariant checked continuously on random programs, through
   the shared oracle. *)
let lemma31_prop =
  QCheck.Test.make ~name:"Lemma 3.1 deque ordering invariant" ~count:60
    QCheck.(pair small_int (int_range 1 8))
    (fun (seed, p) ->
       let rng = Prng.create (seed + 600) in
       let prog = Dag_gen.gen_prog rng Dag_gen.fork_heavy in
       match Oracle.lemma31 ~seed ~p ~k:128 prog with
       | Ok () -> true
       | Error msg -> QCheck.Test.fail_reportf "%s (seed=%d p=%d)" msg seed p)

(* Work conservation under every scheduler on random programs. *)
let work_conservation_prop =
  QCheck.Test.make ~name:"work conservation (all schedulers)" ~count:40
    QCheck.(small_int)
    (fun seed ->
       let rng = Prng.create (seed + 700) in
       let prog = Dag_gen.gen_prog rng Dag_gen.default in
       let s = Analysis.analyze prog in
       List.for_all
         (fun (sched, _) ->
            let cfg = Config.analysis ~p:3 ~mem_threshold:(Some 512) ~seed () in
            let r = Engine.run ~sched cfg prog in
            r.Engine.work >= s.Analysis.work
            && r.Engine.final_heap = s.Analysis.final_heap
            && r.Engine.heap_peak >= s.Analysis.final_heap)
         scheds)

(* Lemma 4.2: the expected number of heavy premature nodes in any prefix is
   O(p*D); we check the whole-execution count against a generous multiple. *)
let lemma42_prop =
  QCheck.Test.make ~name:"Lemma 4.2: heavy premature nodes O(p*D)" ~count:60
    QCheck.(pair small_int (int_range 1 8))
    (fun (seed, p) ->
       let rng = Prng.create (seed + 800) in
       let prog = Dag_gen.gen_prog rng Dag_gen.fork_heavy in
       let s = Analysis.analyze prog in
       let cfg = Config.analysis ~p ~mem_threshold:(Some 256) ~seed () in
       let r = Engine.run ~sched:`Dfdeques cfg prog in
       if r.Engine.heavy_premature > (30 * p * s.Analysis.depth) + 50 then
         QCheck.Test.fail_reportf "heavy premature %d > 30*p*D=%d (p=%d D=%d)"
           r.Engine.heavy_premature (30 * p * s.Analysis.depth) p s.Analysis.depth
       else true)

(* Ablations: stealing from the top must reduce scheduling granularity
   (more steals for the same work) — the bottom-steal rule is the
   granularity mechanism of Section 3.3. *)
let test_ablation_steal_position () =
  let prog = finish (dnc 10 (work 6)) in
  let run sched =
    Engine.run ~sched (Config.analysis ~p:8 ~seed:5 ()) prog
  in
  let paper = run `Dfdeques in
  let top =
    run
      (`Dfdeques_variant
         { Dfdeques_core.Dfdeques.steal_from_top = true; victim_anywhere = false })
  in
  checkb "top-steal lowers granularity" true
    (top.Engine.sched_granularity < paper.Engine.sched_granularity);
  checki "same work either way" paper.Engine.work top.Engine.work

let test_ablation_victim_scope_runs () =
  (* the anywhere-victim variant must still satisfy Lemma 3.1 and finish *)
  let prog = finish (dnc 8 (alloc 64 >> work 4 >> free 64)) in
  let r =
    Engine.run
      ~sched:
        (`Dfdeques_variant
           { Dfdeques_core.Dfdeques.steal_from_top = false; victim_anywhere = true })
      ~check_invariants:true
      (Config.analysis ~p:8 ~mem_threshold:(Some 256) ())
      prog
  in
  checkb "completes" true (r.Engine.time > 0)

(* Observer contract: every unit of work is reported exactly once, at most
   one action per (processor, timestep), timesteps never exceed T. *)
let test_observer_contract () =
  let prog = finish (dnc 6 (alloc 32 >> work 3 >> free 32)) in
  let s = Analysis.analyze prog in
  let seen = Hashtbl.create 64 in
  let units = ref 0 in
  let cfg = Config.analysis ~p:4 ~mem_threshold:(Some 500) () in
  let r =
    Engine.run ~sched:`Dfdeques
      ~observer:(fun ~now ~proc _th a ->
          units := !units + Action.work_units a;
          if Hashtbl.mem seen (now, proc) then
            Alcotest.failf "two actions on proc %d at t=%d" proc now;
          Hashtbl.add seen (now, proc) ())
      cfg prog
  in
  checki "observer saw all work" r.Engine.work !units;
  checkb "work >= W" true (!units >= s.Analysis.work);
  Hashtbl.iter (fun (now, _) () -> if now > r.Engine.time then Alcotest.fail "t > T") seen

(* p=1 serial order: the observer must see actions in exact 1DF order for
   DFDeques(inf) on one processor. *)
let test_observer_serial_order () =
  let prog = finish (dnc 4 (alloc 8 >> work 2 >> free 8)) in
  let from_engine = ref [] in
  let cfg = Config.analysis ~p:1 () in
  ignore
    (Engine.run ~sched:`Dfdeques
       ~observer:(fun ~now:_ ~proc:_ _th a -> from_engine := a :: !from_engine)
       cfg prog);
  let from_serial = ref [] in
  Analysis.iter_serial (fun a -> from_serial := a :: !from_serial) prog;
  checkb "exact 1DF order" true (!from_engine = !from_serial)

(* Differential semantics: every scheduler must execute exactly the same
   multiset of actions as the serial 1DF execution (order may differ). *)
let canonical_multiset collect =
  let acc = ref ([], 0) in
  collect (fun a ->
      let others, work = !acc in
      match a with
      | Action.Work n -> acc := (others, work + n)
      | a -> acc := (Action.to_string a :: others, work + Action.work_units a));
  let others, work = !acc in
  (List.sort compare others, work)

let action_multiset_prop =
  QCheck.Test.make ~name:"schedulers execute the 1DF action multiset" ~count:40
    QCheck.(pair small_int (int_range 1 4))
    (fun (seed, p) ->
       let rng = Prng.create (seed + 900) in
       let prog = Dag_gen.gen_prog rng Dag_gen.default in
       let reference = canonical_multiset (fun f -> Analysis.iter_serial f prog) in
       List.for_all
         (fun (sched, _) ->
            (* K=inf so no dummy threads perturb the multiset *)
            let cfg = Config.analysis ~p ~seed () in
            let got =
              canonical_multiset (fun f ->
                  ignore
                    (Engine.run ~sched ~observer:(fun ~now:_ ~proc:_ _ a -> f a) cfg prog))
            in
            got = reference)
         scheds)

(* Lock-heavy random programs complete under every scheduler, blocking and
   spinning, and conserve work. *)
let locks_random_prop =
  QCheck.Test.make ~name:"random lock-heavy programs complete everywhere" ~count:30
    QCheck.(pair small_int (int_range 1 4))
    (fun (seed, p) ->
       let rng = Prng.create (seed + 1000) in
       let prog = Dag_gen.gen_prog rng Dag_gen.lock_heavy in
       let s = Analysis.analyze prog in
       let cfg = Config.analysis ~p ~mem_threshold:(Some 512) ~seed () in
       List.for_all
         (fun (sched, _) ->
            let r = Engine.run ~sched cfg prog in
            r.Engine.work >= s.Analysis.work)
         scheds
       && (Engine.run ~sched:`Ws ~spin_locks:true cfg prog).Engine.work >= s.Analysis.work)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "core"
    [
      ( "dummy",
        [
          Alcotest.test_case "threads needed" `Quick test_dummy_threads_needed;
          Alcotest.test_case "transform shape" `Quick test_dummy_transform_shape;
          Alcotest.test_case "rejects small" `Quick test_dummy_transform_rejects_small;
          Alcotest.test_case "is_dummy_prog" `Quick test_is_dummy_prog;
        ] );
      ( "engine",
        [
          Alcotest.test_case "all schedulers complete" `Quick test_all_complete_simple;
          Alcotest.test_case "p=1 DFD(inf) is serial" `Quick test_p1_dfdeques_inf_is_serial;
          Alcotest.test_case "p=1 WS is serial" `Quick test_p1_ws_is_serial;
          Alcotest.test_case "deterministic" `Quick test_deterministic_given_seed;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_schedule;
          Alcotest.test_case "parallel speedup" `Quick test_parallel_speedup;
          Alcotest.test_case "work conservation" `Quick test_work_conservation_all_schedulers;
          Alcotest.test_case "big alloc dummies" `Quick test_big_alloc_spawns_dummies;
          Alcotest.test_case "quota preemption" `Quick test_quota_preemptions_happen;
          Alcotest.test_case "WS ignores threshold" `Quick test_ws_ignores_threshold;
          Alcotest.test_case "malformed raises" `Quick test_malformed_program_raises;
          Alcotest.test_case "FIFO thread explosion" `Quick test_fifo_breadth_first_explosion;
          Alcotest.test_case "granularity ordering" `Quick test_granularity_ordering;
          Alcotest.test_case "ablation: steal position" `Quick test_ablation_steal_position;
          Alcotest.test_case "ablation: victim scope" `Quick test_ablation_victim_scope_runs;
          Alcotest.test_case "observer contract" `Quick test_observer_contract;
          Alcotest.test_case "observer 1DF order" `Quick test_observer_serial_order;
        ] );
      ( "edges",
        [
          Alcotest.test_case "empty program" `Quick test_empty_program;
          Alcotest.test_case "stuck raises" `Quick test_stuck_raises;
          Alcotest.test_case "leak reported" `Quick test_leak_reported;
          Alcotest.test_case "long serial chain" `Quick test_long_serial_chain;
          Alcotest.test_case "self deadlock" `Quick test_self_deadlock_detected;
          Alcotest.test_case "K=1 extreme" `Quick test_extreme_threshold_k1;
          Alcotest.test_case "64 processors" `Quick test_many_processors_smoke;
          Alcotest.test_case "spin + observer" `Quick test_spin_locks_with_observer;
          Alcotest.test_case "more procs than work" `Quick test_more_procs_than_work;
          Alcotest.test_case "load balance" `Quick test_load_balance_wide_dag;
        ] );
      ( "locks",
        [
          Alcotest.test_case "all schedulers" `Quick test_locks_all_schedulers;
          Alcotest.test_case "spin locks" `Quick test_spin_locks_complete;
          Alcotest.test_case "mutual exclusion" `Quick test_lock_mutual_exclusion;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detected;
          Alcotest.test_case "condvar wait/signal" `Quick test_condvar_wait_then_signal;
          Alcotest.test_case "condvar sticky signal" `Quick test_condvar_signal_then_wait;
          Alcotest.test_case "condvar broadcast" `Quick test_condvar_broadcast;
          Alcotest.test_case "condvar needs mutex" `Quick test_condvar_wait_without_mutex_raises;
          Alcotest.test_case "condvar orphan deadlock" `Quick test_condvar_orphan_wait_deadlocks;
          Alcotest.test_case "unlock unheld" `Quick test_unlock_unheld_raises;
        ] );
      ("theorems", qsuite
         [
           space_bound_prop;
           time_lower_bound_prop;
           time_upper_bound_prop;
           thread_bound_prop;
           dfd_inf_is_ws_prop;
           ws_space_envelope_prop;
           lemma31_prop;
           lemma42_prop;
           action_multiset_prop;
           locks_random_prop;
           work_conservation_prop;
         ]);
    ]
