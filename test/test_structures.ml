(* Tests for the substrate data structures: deque, dll, order maintenance,
   pairing heap, PRNG, stats. *)

module Deque = Dfd_structures.Deque
module Dll = Dfd_structures.Dll
module Lfdeque = Dfd_structures.Lfdeque
module Multiq = Dfd_structures.Multiq
module Om = Dfd_structures.Order_maint
module Pheap = Dfd_structures.Pheap
module Prng = Dfd_structures.Prng
module Stats = Dfd_structures.Stats

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Deque                                                               *)
(* ------------------------------------------------------------------ *)

let test_deque_empty () =
  let d : int Deque.t = Deque.create () in
  checkb "empty" true (Deque.is_empty d);
  checki "len" 0 (Deque.length d);
  checkb "pop_top none" true (Deque.pop_top d = None);
  checkb "pop_bottom none" true (Deque.pop_bottom d = None);
  checkb "peeks none" true (Deque.peek_top d = None && Deque.peek_bottom d = None)

let test_deque_lifo_top () =
  let d = Deque.create () in
  List.iter (Deque.push_top d) [ 1; 2; 3; 4 ];
  check Alcotest.(list int) "top-first" [ 4; 3; 2; 1 ] (Deque.to_list_top_first d);
  checkb "pop order" true
    (Deque.pop_top d = Some 4 && Deque.pop_top d = Some 3 && Deque.pop_top d = Some 2
     && Deque.pop_top d = Some 1 && Deque.pop_top d = None)

let test_deque_steal_bottom () =
  let d = Deque.create () in
  List.iter (Deque.push_top d) [ 1; 2; 3; 4 ];
  checkb "bottom is oldest" true (Deque.pop_bottom d = Some 1);
  checkb "then 2" true (Deque.pop_bottom d = Some 2);
  checkb "top still 4" true (Deque.pop_top d = Some 4);
  checki "one left" 1 (Deque.length d)

let test_deque_mixed_ends () =
  let d = Deque.create () in
  Deque.push_top d 10;
  Deque.push_bottom d 5;
  Deque.push_top d 20;
  Deque.push_bottom d 1;
  check Alcotest.(list int) "order" [ 20; 10; 5; 1 ] (Deque.to_list_top_first d);
  checkb "peek_top" true (Deque.peek_top d = Some 20);
  checkb "peek_bottom" true (Deque.peek_bottom d = Some 1)

let test_deque_growth () =
  let d = Deque.create () in
  for i = 1 to 1000 do
    Deque.push_top d i
  done;
  checki "len" 1000 (Deque.length d);
  for i = 1 to 500 do
    checkb "steal in fifo order" true (Deque.pop_bottom d = Some i)
  done;
  for i = 1000 downto 501 do
    checkb "pop in lifo order" true (Deque.pop_top d = Some i)
  done;
  checkb "drained" true (Deque.is_empty d)

let test_deque_clear () =
  let d = Deque.create () in
  List.iter (Deque.push_top d) [ 1; 2; 3 ];
  Deque.clear d;
  checkb "cleared" true (Deque.is_empty d);
  Deque.push_top d 9;
  checkb "usable after clear" true (Deque.pop_bottom d = Some 9)

(* Model-based property: any sequence of operations behaves like a list. *)
let deque_model_prop =
  QCheck.Test.make ~name:"deque matches list model" ~count:500
    QCheck.(list (pair (int_range 0 3) small_int))
    (fun ops ->
       let d = Deque.create () in
       let model = ref [] in
       (* model: list with head = top *)
       List.iter
         (fun (op, x) ->
            match op with
            | 0 ->
              Deque.push_top d x;
              model := x :: !model
            | 1 ->
              Deque.push_bottom d x;
              model := !model @ [ x ]
            | 2 ->
              let got = Deque.pop_top d in
              let want =
                match !model with
                | [] -> None
                | h :: t ->
                  model := t;
                  Some h
              in
              if got <> want then QCheck.Test.fail_report "pop_top mismatch"
            | _ ->
              let got = Deque.pop_bottom d in
              let want =
                match List.rev !model with
                | [] -> None
                | h :: t ->
                  model := List.rev t;
                  Some h
              in
              if got <> want then QCheck.Test.fail_report "pop_bottom mismatch")
         ops;
       Deque.to_list_top_first d = !model)

(* ------------------------------------------------------------------ *)
(* Dll                                                                 *)
(* ------------------------------------------------------------------ *)

let test_dll_basic () =
  let l = Dll.create () in
  checkb "empty" true (Dll.is_empty l);
  let a = Dll.push_back l "a" in
  let c = Dll.push_back l "c" in
  let _b = Dll.insert_after l a "b" in
  let _z = Dll.insert_before l a "z" in
  check Alcotest.(list string) "order" [ "z"; "a"; "b"; "c" ] (Dll.to_list l);
  checki "len" 4 (Dll.length l);
  Dll.remove l a;
  check Alcotest.(list string) "after remove" [ "z"; "b"; "c" ] (Dll.to_list l);
  checkb "a unlinked" false (Dll.is_member a);
  checkb "c still linked" true (Dll.is_member c)

let test_dll_remove_ends () =
  let l = Dll.create () in
  let a = Dll.push_back l 1 in
  let b = Dll.push_back l 2 in
  let c = Dll.push_back l 3 in
  Dll.remove l a;
  check Alcotest.(list int) "removed front" [ 2; 3 ] (Dll.to_list l);
  Dll.remove l c;
  check Alcotest.(list int) "removed back" [ 2 ] (Dll.to_list l);
  Dll.remove l b;
  checkb "empty" true (Dll.is_empty l);
  checkb "front none" true (Dll.front l = None);
  checkb "back none" true (Dll.back l = None)

let test_dll_nth () =
  let l = Dll.create () in
  let nodes = List.map (Dll.push_back l) [ 10; 20; 30; 40 ] in
  checkb "nth 0" true
    (match Dll.nth_node l 0 with Some n -> Dll.value n = 10 | None -> false);
  checkb "nth 3" true
    (match Dll.nth_node l 3 with Some n -> Dll.value n = 40 | None -> false);
  checkb "nth 4 none" true (Dll.nth_node l 4 = None);
  checkb "nth -1 none" true (Dll.nth_node l (-1) = None);
  List.iteri (fun i n -> checki "position" i (Dll.position l n)) nodes

let test_dll_double_remove_raises () =
  let l = Dll.create () in
  let a = Dll.push_back l 1 in
  Dll.remove l a;
  Alcotest.check_raises "double remove" (Invalid_argument "Dll.remove: node not in a list")
    (fun () -> Dll.remove l a)

let test_dll_push_front () =
  let l = Dll.create () in
  ignore (Dll.push_front l 2);
  ignore (Dll.push_front l 1);
  ignore (Dll.push_back l 3);
  check Alcotest.(list int) "order" [ 1; 2; 3 ] (Dll.to_list l)

let dll_model_prop =
  QCheck.Test.make ~name:"dll insert_after matches list model" ~count:300
    QCheck.(list (pair (int_range 0 10) small_int))
    (fun ops ->
       let l = Dll.create () in
       let nodes = ref [] in
       List.iter
         (fun (pos, x) ->
            match !nodes with
            | [] ->
              let n = Dll.push_back l x in
              nodes := [ n ]
            | ns ->
              let anchor = List.nth ns (pos mod List.length ns) in
              let n = Dll.insert_after l anchor x in
              nodes := n :: ns)
         ops;
       (* every node reachable, length consistent, positions consistent *)
       Dll.length l = List.length !nodes
       && List.for_all (fun n -> Dll.is_member n) !nodes
       && List.length (Dll.to_list l) = Dll.length l)

(* ------------------------------------------------------------------ *)
(* Order maintenance                                                   *)
(* ------------------------------------------------------------------ *)

let test_om_basic () =
  let t, base = Om.create () in
  let after = Om.insert_after t base in
  let before = Om.insert_before t base in
  checkb "before < base" true (Om.compare before base < 0);
  checkb "base < after" true (Om.compare base after < 0);
  checkb "before < after" true (Om.compare before after < 0);
  checki "size" 3 (Om.size t)

let test_om_chain_before () =
  (* Repeated insert_before is exactly the fork pattern: the child always
     precedes the parent.  Forces relabelling. *)
  let t, base = Om.create () in
  let labels = ref [ base ] in
  for _ = 1 to 2000 do
    match !labels with
    | last :: _ -> labels := Om.insert_before t last :: !labels
    | [] -> assert false
  done;
  (* !labels is most recently inserted first = smallest first *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> Om.compare a b < 0 && sorted rest
    | _ -> true
  in
  checkb "chain totally ordered" true (sorted !labels);
  checki "size" 2001 (Om.size t)

let test_om_delete () =
  let t, base = Om.create () in
  let a = Om.insert_after t base in
  let b = Om.insert_after t a in
  Om.delete t a;
  checkb "remaining ordered" true (Om.compare base b < 0);
  checki "size" 2 (Om.size t);
  Alcotest.check_raises "compare deleted raises"
    (Invalid_argument "Order_maint: dead label") (fun () -> ignore (Om.compare a b))

let om_random_prop =
  QCheck.Test.make ~name:"order maintenance matches reference list" ~count:200
    QCheck.(list (pair bool (int_range 0 50)))
    (fun ops ->
       let t, base = Om.create () in
       (* reference: a list of labels in order *)
       let reference = ref [ base ] in
       List.iter
         (fun (after, pos) ->
            let n = List.length !reference in
            let i = pos mod n in
            let anchor = List.nth !reference i in
            let fresh = if after then Om.insert_after t anchor else Om.insert_before t anchor in
            let rec insert_at j = function
              | rest when j = 0 -> fresh :: rest
              | x :: rest -> x :: insert_at (j - 1) rest
              | [] -> [ fresh ]
            in
            reference := insert_at (if after then i + 1 else i) !reference)
         ops;
       let rec ordered = function
         | a :: (b :: _ as rest) -> Om.compare a b < 0 && ordered rest
         | _ -> true
       in
       ordered !reference)

(* ------------------------------------------------------------------ *)
(* Pairing heap                                                        *)
(* ------------------------------------------------------------------ *)

let test_pheap_basic () =
  let h = Pheap.create ~leq:(fun a b -> a <= b) in
  checkb "empty" true (Pheap.is_empty h);
  List.iter (Pheap.insert h) [ 5; 1; 4; 1; 9; 2 ];
  checki "size" 6 (Pheap.size h);
  checkb "peek" true (Pheap.peek_min h = Some 1);
  let drained = List.init 6 (fun _ -> Option.get (Pheap.pop_min h)) in
  check Alcotest.(list int) "heapsort" [ 1; 1; 2; 4; 5; 9 ] drained;
  checkb "empty again" true (Pheap.pop_min h = None)

let pheap_sort_prop =
  QCheck.Test.make ~name:"pheap sorts like List.sort" ~count:300
    QCheck.(list small_int)
    (fun xs ->
       let h = Pheap.create ~leq:(fun a b -> a <= b) in
       List.iter (Pheap.insert h) xs;
       let out = List.init (List.length xs) (fun _ -> Option.get (Pheap.pop_min h)) in
       out = List.sort compare xs)

let pheap_interleave_prop =
  QCheck.Test.make ~name:"pheap pop always returns current min" ~count:300
    QCheck.(list (option small_int))
    (fun ops ->
       let h = Pheap.create ~leq:(fun a b -> a <= b) in
       let model = ref [] in
       List.for_all
         (fun op ->
            match op with
            | Some x ->
              Pheap.insert h x;
              model := x :: !model;
              true
            | None -> (
                match (Pheap.pop_min h, !model) with
                | None, [] -> true
                | Some got, l when l <> [] ->
                  let mn = List.fold_left min max_int l in
                  let rec remove_one = function
                    | [] -> []
                    | x :: t -> if x = mn then t else x :: remove_one t
                  in
                  model := remove_one l;
                  got = mn
                | _ -> false))
         ops)

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    checkb "same stream" true (Prng.bits64 a = Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 7 and b = Prng.create 8 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  checkb "different seeds differ" true !differs

let test_prng_bounds () =
  let r = Prng.create 3 in
  for _ = 1 to 1000 do
    let x = Prng.int r 10 in
    checkb "in range" true (x >= 0 && x < 10);
    let y = Prng.int_in r 5 9 in
    checkb "in closed range" true (y >= 5 && y <= 9);
    let f = Prng.float r 2.0 in
    checkb "float range" true (f >= 0.0 && f < 2.0)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int r 0))

let test_prng_uniformish () =
  let r = Prng.create 99 in
  let counts = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let i = Prng.int r 4 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
       checkb "roughly uniform" true (abs (c - (n / 4)) < n / 20))
    counts

let test_prng_split () =
  let r = Prng.create 5 in
  let s = Prng.split r in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.bits64 r <> Prng.bits64 s then differs := true
  done;
  checkb "split independent" true !differs

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_watermark () =
  let w = Stats.Watermark.create () in
  Stats.Watermark.add w 10;
  Stats.Watermark.add w (-4);
  Stats.Watermark.add w 7;
  checki "current" 13 (Stats.Watermark.current w);
  checki "peak" 13 (Stats.Watermark.peak w);
  Stats.Watermark.add w (-13);
  checki "peak survives" 13 (Stats.Watermark.peak w);
  checki "zero" 0 (Stats.Watermark.current w)

let test_acc () =
  let a = Stats.Acc.create () in
  checkb "mean empty" true (Stats.Acc.mean a = 0.0);
  List.iter (Stats.Acc.add a) [ 1.0; 2.0; 3.0 ];
  checki "count" 3 (Stats.Acc.count a);
  checkb "mean" true (abs_float (Stats.Acc.mean a -. 2.0) < 1e-9);
  checkb "max" true (Stats.Acc.max_value a = 3.0);
  checkb "total" true (Stats.Acc.total a = 6.0)

let test_acc_empty () =
  let a = Stats.Acc.create () in
  checkb "is_empty" true (Stats.Acc.is_empty a);
  checkb "mean_opt" true (Stats.Acc.mean_opt a = None);
  checkb "min_opt" true (Stats.Acc.min_opt a = None);
  checkb "max_opt" true (Stats.Acc.max_opt a = None);
  checkb "variance_opt" true (Stats.Acc.variance_opt a = None);
  (* documented sentinels of the plain accessors *)
  checkb "mean sentinel" true (Stats.Acc.mean a = 0.0);
  checkb "max sentinel" true (Stats.Acc.max_value a = neg_infinity);
  checkb "min sentinel" true (Stats.Acc.min_value a = infinity)

let test_acc_min_variance () =
  let a = Stats.Acc.create () in
  List.iter (Stats.Acc.add a) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  checkb "min" true (Stats.Acc.min_value a = 2.0);
  checkb "variance" true (abs_float (Stats.Acc.variance a -. 4.0) < 1e-9);
  checkb "mean_opt" true (Stats.Acc.mean_opt a = Some 5.0)

let test_histogram_basic () =
  let h = Stats.Histogram.create () in
  checkb "empty" true (Stats.Histogram.is_empty h);
  checkb "quantile empty" true (Stats.Histogram.quantile h 0.5 = None);
  List.iter (fun x -> Stats.Histogram.add h (float_of_int x)) [ 1; 2; 3; 100; 1000 ];
  checki "count" 5 (Stats.Histogram.count h);
  checkb "min" true (Stats.Histogram.min_opt h = Some 1.0);
  checkb "max" true (Stats.Histogram.max_opt h = Some 1000.0);
  (* a quantile answer lives within a factor of 2 of the true value *)
  (match Stats.Histogram.quantile h 0.5 with
   | Some q -> checkb "p50 in bucket" true (q >= 2.0 && q < 8.0)
   | None -> Alcotest.fail "p50 none");
  match Stats.Histogram.quantile h 1.0 with
  | Some q -> checkb "p100 = max" true (q <= 1000.0 && q >= 512.0)
  | None -> Alcotest.fail "p100 none"

(* Quantiles must be monotone in q, bounded by observed min/max. *)
let hist_quantile_monotone_prop =
  QCheck.Test.make ~name:"histogram quantiles monotone and bounded" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_inclusive 1e6)) (list (float_bound_inclusive 1.0)))
    (fun (xs, qs) ->
       let h = Stats.Histogram.create () in
       List.iter (Stats.Histogram.add h) xs;
       let qs = List.sort compare (0.0 :: 1.0 :: qs) in
       let vals = List.map (fun q -> Option.get (Stats.Histogram.quantile h q)) qs in
       let mn = Option.get (Stats.Histogram.min_opt h)
       and mx = Option.get (Stats.Histogram.max_opt h) in
       let rec mono = function
         | a :: (b :: _ as rest) -> a <= b && mono rest
         | _ -> true
       in
       mono vals && List.for_all (fun v -> v >= mn && v <= mx) vals)

(* merge is associative and commutative (exactly: bucket counts are ints). *)
let hist_merge_assoc_prop =
  let gen_hist = QCheck.(list_of_size Gen.(0 -- 30) (float_bound_inclusive 1e9)) in
  QCheck.Test.make ~name:"histogram merge associative and commutative" ~count:300
    QCheck.(triple gen_hist gen_hist gen_hist)
    (fun (a, b, c) ->
       let mk xs =
         let h = Stats.Histogram.create () in
         List.iter (Stats.Histogram.add h) xs;
         h
       in
       let ha = mk a and hb = mk b and hc = mk c in
       let module H = Stats.Histogram in
       H.equal (H.merge (H.merge ha hb) hc) (H.merge ha (H.merge hb hc))
       && H.equal (H.merge ha hb) (H.merge hb ha)
       && H.count (H.merge ha hb) = H.count ha + H.count hb)

(* merging is observationally the same as adding everything to one. *)
let hist_merge_flat_prop =
  QCheck.Test.make ~name:"histogram merge = adding all observations" ~count:300
    QCheck.(pair (list (float_bound_inclusive 1e6)) (list (float_bound_inclusive 1e6)))
    (fun (a, b) ->
       let mk xs =
         let h = Stats.Histogram.create () in
         List.iter (Stats.Histogram.add h) xs;
         h
       in
       Stats.Histogram.equal (Stats.Histogram.merge (mk a) (mk b)) (mk (a @ b)))

let test_table () =
  let s = Stats.Table.render ~header:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ] in
  checkb "contains header" true (String.length s > 0);
  checkb "has separator" true (String.contains s '-')

let test_fmt_bytes () =
  check Alcotest.string "bytes" "512B" (Stats.fmt_bytes 512);
  check Alcotest.string "kb" "50.0kB" (Stats.fmt_bytes (50 * 1024));
  check Alcotest.string "mb" "2.0MB" (Stats.fmt_bytes (2 * 1024 * 1024))

(* ------------------------------------------------------------------ *)
(* Multiq (relaxed R-list; serial tests — concurrency is lib/check's)  *)
(* ------------------------------------------------------------------ *)

let test_multiq_front_order () =
  let q = Multiq.create ~shards:4 () in
  let a = Multiq.insert_front q "a" in
  let b = Multiq.insert_front q "b" in
  let c = Multiq.insert_front q "c" in
  checki "size" 3 (Multiq.size q);
  checki "shards" 4 (Multiq.shard_count q);
  (* later front insertions are strictly more leftmost *)
  check Alcotest.(list string) "order" [ "c"; "b"; "a" ] (Multiq.to_list q);
  checkb "front tags descend" true (Multiq.tag c < Multiq.tag b && Multiq.tag b < Multiq.tag a);
  checki "rank of front" 0 (Multiq.rank q c);
  checki "rank of back" 2 (Multiq.rank q a)

let test_multiq_insert_after () =
  let q = Multiq.create ~shards:2 () in
  let a = Multiq.insert_front q 0 in
  let b = Multiq.insert_after q a 1 in
  let c = Multiq.insert_after q a 2 in
  (* the DFDeques thief invariant: each later insert-after lands
     immediately right of the anchor, left of its elder siblings *)
  check Alcotest.(list int) "anchor, youngest child first" [ 0; 2; 1 ] (Multiq.to_list q);
  checkb "tags nest" true (Multiq.tag a < Multiq.tag c && Multiq.tag c < Multiq.tag b);
  let d = Multiq.insert_after q b 3 in
  check Alcotest.(list int) "after middle" [ 0; 2; 1; 3 ] (Multiq.to_list q);
  checki "rank" 3 (Multiq.rank q d)

let test_multiq_remove_once () =
  let q = Multiq.create ~shards:2 () in
  let a = Multiq.insert_front q "a" in
  let b = Multiq.insert_front q "b" in
  checkb "first remove wins" true (Multiq.remove q a);
  checkb "second remove loses" false (Multiq.remove q a);
  checkb "dead" false (Multiq.is_live a);
  checki "size" 1 (Multiq.size q);
  check Alcotest.(list string) "only b" [ "b" ] (Multiq.to_list q);
  (* sampling any pair of shards can only ever surface the live member *)
  for i = 0 to 1 do
    for j = 0 to 1 do
      match Multiq.sample q i j with
      | None -> ()
      | Some e -> checkb "sample live" true (Multiq.is_live e && Multiq.value e = "b")
    done
  done;
  checkb "b removed too" true (Multiq.remove q b);
  checki "empty" 0 (Multiq.size q);
  checkb "sample empty" true (Multiq.sample q 0 1 = None);
  (* insert-after a dead anchor is allowed: takes the anchor's position *)
  let c = Multiq.insert_after q a "c" in
  checkb "re-populated" true (Multiq.to_list q = [ "c" ] && Multiq.is_live c)

(* Exhaust one anchor's right gap (front_stride = 2^30, so 30 halvings)
   and keep going: insertions past exhaustion tie on tags and fall back
   to the deterministic seq tie-break, with each later insertion more
   leftmost among the tied — relaxed but still a total order. *)
let test_multiq_gap_exhaustion_tiebreak () =
  let q = Multiq.create ~shards:3 () in
  let a = Multiq.insert_front q (-1) in
  let children = Array.init 70 (fun i -> Multiq.insert_after q a i) in
  checki "all inserted" 71 (Multiq.size q);
  let tied = Array.to_list children |> List.filter (fun e -> Multiq.tag e = Multiq.tag a) in
  checkb "gap exhausted within 70 inserts" true (List.length tied > 0);
  (* compare_entries is a strict total order over all 71 entries *)
  let all = Multiq.members q in
  checki "members sees all" 71 (List.length all);
  let rec strictly_sorted = function
    | x :: (y :: _ as rest) -> Multiq.compare_entries x y < 0 && strictly_sorted rest
    | _ -> true
  in
  checkb "strict total order despite ties" true (strictly_sorted all);
  (* among tied entries (in insertion order), each later insertion is
     more leftmost than its predecessor *)
  let rec pairs = function
    | earlier :: (later :: _ as rest) ->
      checkb "later tied insert more leftmost" true
        (Multiq.compare_entries later earlier < 0);
      pairs rest
    | _ -> ()
  in
  pairs tied

(* As long as no gap is exhausted, the relaxed labels reproduce the exact
   serial Order_maint order: replay the same insert trace into both and
   compare the resulting total orders. *)
let test_multiq_matches_order_maint () =
  let rng = Prng.create 99 in
  let q = Multiq.create ~shards:4 () in
  let om, base = Om.create () in
  let e0 = Multiq.insert_front q 0 in
  (* (multiq entry, om label) pairs, same insertion ids *)
  let pairs = ref [ (e0, base) ] in
  for v = 1 to 25 do
    if Prng.int rng 3 = 0 then begin
      (* new front member = before the current om minimum *)
      let e = Multiq.insert_front q v in
      let _, om_min =
        List.fold_left
          (fun ((_, ml) as acc) ((_, l) as p) -> if Om.compare l ml < 0 then p else acc)
          (List.hd !pairs) (List.tl !pairs)
      in
      pairs := (e, Om.insert_before om om_min) :: !pairs
    end
    else begin
      let anchor_e, anchor_l = List.nth !pairs (Prng.int rng (List.length !pairs)) in
      let e = Multiq.insert_after q anchor_e v in
      pairs := (e, Om.insert_after om anchor_l) :: !pairs
    end
  done;
  List.iter
    (fun (e1, l1) ->
       List.iter
         (fun (e2, l2) ->
            let sgn x = compare x 0 in
            checki "same order as Order_maint"
              (sgn (Om.compare l1 l2))
              (sgn (Multiq.compare_entries e1 e2)))
         !pairs)
    !pairs

(* Random serial membership trace: after every operation, a two-choice
   sample must return a current live member that is the minimum of its two
   sampled shards — so every strictly-more-leftmost member lives in an
   unsampled shard, which is what bounds the rank error by the (shard
   count - 2) other shards rather than by |R|. *)
let multiq_sample_prop =
  QCheck.Test.make ~name:"multiq samples are current leftmost-of-two members" ~count:200
    QCheck.(pair small_int (list (int_bound 2)))
    (fun (seed, ops) ->
       let rng = Prng.create (succ seed) in
       let q = Multiq.create ~shards:3 () in
       let live = ref [] in
       let dead = ref [] in
       let next = ref 0 in
       let ok = ref true in
       let assert_ok b = if not b then ok := false in
       let do_op op =
         (match (op, !live) with
          | 0, _ ->
            incr next;
            live := Multiq.insert_front q !next :: !live
          | 1, e :: _ when Prng.int rng 2 = 0 ->
            incr next;
            live := Multiq.insert_after q e !next :: !live
          | 1, _ ->
            (match !dead with
             | de :: _ ->
               incr next;
               live := Multiq.insert_after q de !next :: !live
             | [] ->
               incr next;
               live := Multiq.insert_front q !next :: !live)
          | _, e :: rest ->
            assert_ok (Multiq.remove q e);
            assert_ok (not (Multiq.remove q e));
            dead := e :: !dead;
            live := rest
          | _, [] -> ());
         let i = Prng.int rng 3 and j = Prng.int rng 3 in
         match Multiq.sample q i j with
         | None -> assert_ok (List.length !live = 0 || (Multiq.head q i = None && Multiq.head q j = None))
         | Some v ->
           assert_ok (Multiq.is_live v);
           assert_ok (List.exists (fun e -> e == v) !live);
           (* v is the minimum of the two sampled shards... *)
           List.iter
             (fun k ->
                List.iter
                  (fun m -> assert_ok (Multiq.compare_entries v m <= 0))
                  (Multiq.members_of_shard q k))
             [ i; j ];
           (* ...so anything more leftmost sits in an unsampled shard,
              bounding the rank error by the other shards' members *)
           let more_leftmost =
             List.filter (fun m -> Multiq.compare_entries m v < 0) (Multiq.members q)
           in
           assert_ok
             (List.for_all
                (fun m -> Multiq.shard_of m <> i mod 3 && Multiq.shard_of m <> j mod 3)
                more_leftmost);
           assert_ok (Multiq.rank q v = List.length more_leftmost)
       in
       List.iter do_op ops;
       assert_ok (Multiq.size q = List.length !live);
       !ok)

(* ------------------------------------------------------------------ *)
(* Lfdeque (sequential model properties)                               *)
(* ------------------------------------------------------------------ *)

(* Exactly-once delivery: over any sequential mix of push / pop / steal
   plus a final drain, the delivered multiset equals the pushed multiset.
   Values are distinct by construction, so a sorted-list comparison
   catches both duplication and loss in one shot. *)
let lfdeque_multiset_prop =
  QCheck.Test.make ~name:"lfdeque preserves the pushed multiset" ~count:500
    QCheck.(list (int_range 0 2))
    (fun ops ->
       let q : int Lfdeque.t = Lfdeque.create ~min_capacity:2 ~owner:0 () in
       let next = ref 0 in
       let pushed = ref [] in
       let taken = ref [] in
       List.iter
         (fun op ->
            match op with
            | 0 ->
              incr next;
              pushed := !next :: !pushed;
              Lfdeque.push q !next
            | 1 -> ( match Lfdeque.pop q with Some v -> taken := v :: !taken | None -> ())
            | _ -> ( match Lfdeque.steal q with Some v -> taken := v :: !taken | None -> ()))
         ops;
       let rec drain () =
         match Lfdeque.steal q with
         | Some v ->
           taken := v :: !taken;
           drain ()
         | None -> ()
       in
       drain ();
       Lfdeque.is_empty q && List.sort compare !taken = List.sort compare !pushed)

(* Order laws against a list model kept oldest-first: [steal] must return
   the oldest live element (FIFO at the top — the paper's locality
   argument needs thieves to take the shallowest work) and [pop] the
   youngest (LIFO at the bottom), at every prefix of a random operation
   sequence, with the length agreeing throughout. *)
let lfdeque_order_prop =
  QCheck.Test.make ~name:"lfdeque steals FIFO at top, pops LIFO at bottom" ~count:500
    QCheck.(list (int_range 0 2))
    (fun ops ->
       let q : int Lfdeque.t = Lfdeque.create ~min_capacity:2 ~owner:0 () in
       let model = ref [] in
       let next = ref 0 in
       let ok = ref true in
       let assert_ok b = if not b then ok := false in
       let rec split_last = function
         | [] -> (None, [])
         | [ x ] -> (Some x, [])
         | x :: rest ->
           let last, front = split_last rest in
           (last, x :: front)
       in
       List.iter
         (fun op ->
            (match op with
             | 0 ->
               incr next;
               Lfdeque.push q !next;
               model := !model @ [ !next ]
             | 1 ->
               let expect, rest = split_last !model in
               assert_ok (Lfdeque.pop q = expect);
               model := rest
             | _ -> (
               match !model with
               | [] -> assert_ok (Lfdeque.steal q = None)
               | oldest :: rest ->
                 assert_ok (Lfdeque.steal q = Some oldest);
                 model := rest));
            assert_ok (Lfdeque.length q = List.length !model))
         ops;
       !ok)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "structures"
    [
      ( "deque",
        [
          Alcotest.test_case "empty" `Quick test_deque_empty;
          Alcotest.test_case "lifo top" `Quick test_deque_lifo_top;
          Alcotest.test_case "steal bottom" `Quick test_deque_steal_bottom;
          Alcotest.test_case "mixed ends" `Quick test_deque_mixed_ends;
          Alcotest.test_case "growth" `Quick test_deque_growth;
          Alcotest.test_case "clear" `Quick test_deque_clear;
        ]
        @ qsuite [ deque_model_prop ] );
      ( "dll",
        [
          Alcotest.test_case "basic" `Quick test_dll_basic;
          Alcotest.test_case "remove ends" `Quick test_dll_remove_ends;
          Alcotest.test_case "nth" `Quick test_dll_nth;
          Alcotest.test_case "double remove" `Quick test_dll_double_remove_raises;
          Alcotest.test_case "push front" `Quick test_dll_push_front;
        ]
        @ qsuite [ dll_model_prop ] );
      ( "order_maint",
        [
          Alcotest.test_case "basic" `Quick test_om_basic;
          Alcotest.test_case "fork chain" `Quick test_om_chain_before;
          Alcotest.test_case "delete" `Quick test_om_delete;
        ]
        @ qsuite [ om_random_prop ] );
      ( "multiq",
        [
          Alcotest.test_case "front order" `Quick test_multiq_front_order;
          Alcotest.test_case "insert after" `Quick test_multiq_insert_after;
          Alcotest.test_case "remove once" `Quick test_multiq_remove_once;
          Alcotest.test_case "gap exhaustion tie-break" `Quick
            test_multiq_gap_exhaustion_tiebreak;
          Alcotest.test_case "matches order_maint" `Quick test_multiq_matches_order_maint;
        ]
        @ qsuite [ multiq_sample_prop ] );
      ("lfdeque", qsuite [ lfdeque_multiset_prop; lfdeque_order_prop ]);
      ( "pheap",
        [ Alcotest.test_case "basic" `Quick test_pheap_basic ]
        @ qsuite [ pheap_sort_prop; pheap_interleave_prop ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "uniform-ish" `Quick test_prng_uniformish;
          Alcotest.test_case "split" `Quick test_prng_split;
        ] );
      ( "stats",
        [
          Alcotest.test_case "watermark" `Quick test_watermark;
          Alcotest.test_case "acc" `Quick test_acc;
          Alcotest.test_case "acc empty" `Quick test_acc_empty;
          Alcotest.test_case "acc min/variance" `Quick test_acc_min_variance;
          Alcotest.test_case "histogram basic" `Quick test_histogram_basic;
          Alcotest.test_case "table" `Quick test_table;
          Alcotest.test_case "fmt_bytes" `Quick test_fmt_bytes;
        ]
        @ qsuite [ hist_quantile_monotone_prop; hist_merge_assoc_prop; hist_merge_flat_prop ] );
    ]
