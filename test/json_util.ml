(* Shared helpers for the JSON-consuming test validators
   (validate_trace / validate_chaos / validate_bench) — one copy of the
   file slurping, the exit-with-message failure, and the numeric
   coercion the in-tree JSON type doesn't provide.  Unit-tested directly
   by test_json_util. *)

module Json = Dfd_trace.Json

(* [failf ~prog fmt] prints "prog: message" on stderr and exits 1.
   Validators bind it eta-expanded ([let fail fmt = failf ~prog:".." fmt])
   so each use site keeps full format polymorphism. *)
let failf ~prog fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline (prog ^ ": " ^ m);
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n)

(* Reports emit counters as Int but derived quantities as Float; any
   numeric field must accept both. *)
let to_number_exn = function
  | Json.Float f -> f
  | Json.Int n -> float_of_int n
  | _ -> raise (Json.Parse_error "expected number")

let parse_file path = Json.of_string (read_file path)
