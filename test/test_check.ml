(* Tests for the systematic concurrency checker (lib/check).

   The headline property: a deliberately injected ordering bug — the
   non-atomic top check/store in Buggy_clev.steal — is found by the
   explorer within its default budget, shrunk to a short decision trace,
   and that trace reproduces through the replay machinery.  The correct
   scenarios must pass, reports must be deterministic functions of the
   seed, and the theorem oracles must hold on random programs across
   every scheduler. *)

module Explore = Dfd_check.Explore
module Scenarios = Dfd_check.Scenarios
module Oracle = Dfd_check.Oracle
module Schedpoint = Dfd_structures.Schedpoint
module Prng = Dfd_structures.Prng
module Dag_gen = Dfd_dag.Dag_gen
module Config = Dfd_machine.Config

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Explorer: injected bug detection, shrinking, replay, determinism    *)
(* ------------------------------------------------------------------ *)

(* Any seed works eventually; this one fails within a few iterations so
   the test stays fast even with shrinking replays on top. *)
let buggy_seed = 3

let test_buggy_caught () =
  let r = Explore.run ~seed:buggy_seed Scenarios.buggy in
  match r.Explore.r_failure with
  | None -> Alcotest.fail "explorer missed the injected steal-commit race"
  | Some f ->
    checkb "found within default budget" true (r.Explore.r_iterations <= r.Explore.r_budget);
    checkb "shrunk" true f.Explore.f_shrunk;
    checkb "minimal trace nonempty" true (f.Explore.f_choices <> []);
    checkb "minimal trace short" true (List.length f.Explore.f_choices <= 16);
    (* f_points names the yield points of the whole confirming replay
       (minimal choices plus deterministic fallback tail), so it is at
       least as long as the choice list *)
    checkb "point trace covers the choices" true
      (List.length f.Explore.f_points >= List.length f.Explore.f_choices)

let test_buggy_deterministic () =
  let r1 = Explore.run ~seed:buggy_seed Scenarios.buggy in
  let r2 = Explore.run ~seed:buggy_seed Scenarios.buggy in
  checkb "same seed gives an identical report (failure trace included)" true (r1 = r2)

let test_replay_roundtrip () =
  let r = Explore.run ~seed:buggy_seed Scenarios.buggy in
  let f = Option.get r.Explore.r_failure in
  (match Explore.replay Scenarios.buggy f with
   | Some _reason -> ()
   | None -> Alcotest.fail "minimal trace did not reproduce the failure");
  (* the on-disk replay format must carry everything replay needs *)
  let path = Filename.temp_file "replay" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Explore.write_replay path f;
      let f' = Explore.read_replay path in
      checkb "replay file roundtrips" true (f = f');
      checkb "replay from file reproduces" true
        (Explore.replay Scenarios.buggy f' <> None));
  (* with no recorded decisions the chooser falls back to the serial
     schedule (lowest enabled thread), which never triggers the race *)
  let serial = { f with Explore.f_choices = []; f_points = [] } in
  checkb "serial fallback schedule passes" true
    (Explore.replay Scenarios.buggy serial = None)

let test_replay_rejects_wrong_scenario () =
  let r = Explore.run ~seed:buggy_seed Scenarios.buggy in
  let f = Option.get r.Explore.r_failure in
  checkb "scenario-name mismatch rejected" true
    (match Explore.replay Scenarios.clev_ops f with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* Same headline property for the multiq planted bug (torn membership on
   remove): found, shrunk, and reproducible through a replay file.  Seed
   chosen so the failure lands within a few iterations. *)
let multiq_buggy_seed = 2

let test_multiq_buggy_caught () =
  let r = Explore.run ~seed:multiq_buggy_seed Scenarios.multiq_buggy in
  match r.Explore.r_failure with
  | None -> Alcotest.fail "explorer missed the torn multiq remove"
  | Some f ->
    checkb "found within default budget" true (r.Explore.r_iterations <= r.Explore.r_budget);
    checkb "shrunk" true f.Explore.f_shrunk;
    checkb "minimal trace nonempty" true (f.Explore.f_choices <> []);
    checkb "minimal trace short" true (List.length f.Explore.f_choices <= 16);
    checkb "torn membership is the reason" true
      (String.length f.Explore.f_reason > 0
       && String.sub f.Explore.f_reason 0 (min 10 (String.length f.Explore.f_reason))
          = "membership");
    let path = Filename.temp_file "replay_multiq" ".json" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Explore.write_replay path f;
        let f' = Explore.read_replay path in
        checkb "replay file roundtrips" true (f = f');
        checkb "replay from file reproduces" true
          (Explore.replay Scenarios.multiq_buggy f' <> None));
    (* the serial fallback schedule never opens the remove window *)
    let serial = { f with Explore.f_choices = []; f_points = [] } in
    checkb "serial fallback schedule passes" true
      (Explore.replay Scenarios.multiq_buggy serial = None)

(* Same headline property for the lfdeque planted bug (check-then-store
   steal commit): found, shrunk, and reproducible through a replay file.
   Seed chosen so the failure lands within a few iterations. *)
let lfdeque_buggy_seed = 5

let test_lfdeque_buggy_caught () =
  let r = Explore.run ~seed:lfdeque_buggy_seed Scenarios.lfdeque_buggy in
  match r.Explore.r_failure with
  | None -> Alcotest.fail "explorer missed the lfdeque steal-commit race"
  | Some f ->
    checkb "found within default budget" true (r.Explore.r_iterations <= r.Explore.r_budget);
    checkb "shrunk" true f.Explore.f_shrunk;
    checkb "minimal trace nonempty" true (f.Explore.f_choices <> []);
    checkb "minimal trace short" true (List.length f.Explore.f_choices <= 16);
    checkb "double delivery is the reason" true
      (String.length f.Explore.f_reason > 0
       && String.sub f.Explore.f_reason 0 (min 8 (String.length f.Explore.f_reason))
          = "delivery");
    let path = Filename.temp_file "replay_lfdeque" ".json" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Explore.write_replay path f;
        let f' = Explore.read_replay path in
        checkb "replay file roundtrips" true (f = f');
        checkb "replay from file reproduces" true
          (Explore.replay Scenarios.lfdeque_buggy f' <> None));
    (* the serial fallback schedule never opens the commit window *)
    let serial = { f with Explore.f_choices = []; f_points = [] } in
    checkb "serial fallback schedule passes" true
      (Explore.replay Scenarios.lfdeque_buggy serial = None)

let test_correct_scenarios_pass () =
  List.iter
    (fun sc ->
      let r = Explore.run ~budget:30 ~seed:7 sc in
      (match r.Explore.r_failure with
       | Some f ->
         Alcotest.failf "%s failed at iteration %d: %s" sc.Explore.name
           f.Explore.f_iteration f.Explore.f_reason
       | None -> ());
      checki (sc.Explore.name ^ ": full budget used") 30 r.Explore.r_iterations)
    Scenarios.all;
  checkb "yield-point handler uninstalled after runs" false (Schedpoint.active ())

(* ------------------------------------------------------------------ *)
(* Schedpoint coverage: the yield-point registry must not silently rot  *)
(* ------------------------------------------------------------------ *)

module Clev = Dfd_structures.Clev
module Lfdeque = Dfd_structures.Lfdeque
module Multiq = Dfd_structures.Multiq
module Pool = Dfd_runtime.Pool
module Buggy_clev = Dfd_check.Buggy_clev
module Buggy_lfdeque = Dfd_check.Buggy_lfdeque
module Buggy_multiq = Dfd_check.Buggy_multiq

(* Number of registered point ids, discovered by walking the name table
   until it falls back to the "p%d" rendering of an unknown id.  Walking
   instead of hard-coding means a new id added without a name entry (or
   vice versa) trips the roundtrip check below rather than hiding. *)
let registered_points =
  let rec go i = if Schedpoint.of_name (Schedpoint.name i) = Some i then go (i + 1) else i in
  go 0

let test_point_ids_distinct () =
  checkb "all known ids registered" true (registered_points >= 32);
  let names = List.init registered_points Schedpoint.name in
  checki "names pairwise distinct" registered_points
    (List.length (List.sort_uniq compare names));
  List.iteri
    (fun i n -> checkb (n ^ " roundtrips through of_name") true (Schedpoint.of_name n = Some i))
    names

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Every yield point must appear, by name, in DESIGN.md's yield-point
   map — a rename or an undocumented addition fails here. *)
let test_points_documented () =
  let design = In_channel.with_open_text "../DESIGN.md" In_channel.input_all in
  for id = 0 to registered_points - 1 do
    checkb
      (Printf.sprintf "point %d (%s) documented in DESIGN.md" id (Schedpoint.name id))
      true
      (contains_substring design (Schedpoint.name id))
  done

(* Every id is actually emitted by the instrumented code: install a
   recording handler (not an explorer session — [Explore.with_session]
   owns the handler slot, so this drives the structures directly) and
   walk each structure through the operations that carry its points.

   [start] is the one exemption: it is a pseudo-point emitted by the
   explorer itself to park controlled threads before their first step,
   not by any instrumented structure, and explorer sessions cannot nest
   under a recording handler. *)
let test_points_hit () =
  let seen = Array.init (registered_points + 1) (fun _ -> Atomic.make false) in
  let record id = if id >= 0 && id < Array.length seen then Atomic.set seen.(id) true in
  Schedpoint.install record;
  Fun.protect ~finally:Schedpoint.uninstall (fun () ->
      (* Chase–Lev: push/grow/steal/pop, then the last-element race *)
      let q = Clev.create ~min_capacity:2 () in
      List.iter (Clev.push q) [ 1; 2; 3 ];
      ignore (Clev.steal q);
      ignore (Clev.pop q);
      ignore (Clev.pop q);
      (* Lfdeque: same walk plus the ownership lifecycle *)
      let lq = Lfdeque.create ~min_capacity:2 ~owner:0 () in
      List.iter (Lfdeque.push lq) [ 1; 2; 3 ];
      ignore (Lfdeque.steal lq);
      ignore (Lfdeque.pop lq);
      ignore (Lfdeque.pop lq);
      Lfdeque.abandon lq;
      ignore (Lfdeque.is_dead lq);
      (* the buggy variants own the commit-window points *)
      let bq = Buggy_clev.create () in
      Buggy_clev.push bq 1;
      ignore (Buggy_clev.steal bq);
      let blq = Buggy_lfdeque.create () in
      Buggy_lfdeque.push blq 1;
      ignore (Buggy_lfdeque.steal blq);
      let bm = Buggy_multiq.create () in
      let be = Buggy_multiq.insert bm 0 in
      ignore (Buggy_multiq.remove bm be);
      (* multiq membership and sampling *)
      let m = Multiq.create ~shards:2 () in
      let e = Multiq.insert_front m 0 in
      let e' = Multiq.insert_after m e 1 in
      ignore (Multiq.sample m 0 1);
      ignore (Multiq.remove m e);
      ignore (Multiq.remove m e');
      (* pool points, including a deterministic await: the forked task
         [fa] is stolen by a helper domain and holds its promise open
         until the parent's await loop has emitted [pool_await], so the
         slow path is taken every run, not by luck.  Spin-waits are
         bounded: if the handshake wedges, the task returns and the
         coverage assertion fails instead of the test hanging. *)
      let pool = Pool.For_testing.create_detached ~workers:2 Pool.Work_stealing in
      let stolen = Atomic.make false in
      let finished = Atomic.make false in
      let bounded_spin cond =
        let spins = ref 0 in
        while (not (cond ())) && !spins < 200_000_000 do
          incr spins;
          Domain.cpu_relax ()
        done
      in
      let helper =
        Domain.spawn (fun () ->
            Pool.For_testing.as_worker pool 1 (fun () ->
                while not (Atomic.get finished) do
                  ignore (Pool.For_testing.help pool 1);
                  Domain.cpu_relax ()
                done))
      in
      Pool.For_testing.as_worker pool 0 (fun () ->
          let a, b =
            Pool.fork_join
              (fun () ->
                Atomic.set stolen true;
                bounded_spin (fun () -> Atomic.get seen.(Schedpoint.pool_await));
                1)
              (fun () ->
                bounded_spin (fun () -> Atomic.get stolen);
                2)
          in
          checki "handshake fork_join result" 3 (a + b));
      Atomic.set finished true;
      Domain.join helper;
      (* crash-domain points: worker 1's one-shot injected crash on its
         first take ([pool_crash_flag]), the quarantine that recovers the
         held task ([pool_quarantine], [pool_orphan_push]) and worker 0's
         steal-back of the orphan ([pool_orphan_pop]).  Worker 0 forks a
         task, parks in its second branch until the helper has crashed
         holding the first, then its await loop scans, quarantines and
         reruns the orphan.  Spins are bounded: a wedged handshake makes
         the coverage assertion fail rather than the test hang. *)
      let fault =
        Dfd_fault.Fault.create
          ~rates:{ Dfd_fault.Fault.zero_rates with Dfd_fault.Fault.worker_crash = Some 1 }
          ~seed:1 ()
      in
      let cpool = Pool.For_testing.create_detached ~fault ~workers:2 Pool.Work_stealing in
      let crashed = Atomic.make false in
      let chelper =
        Domain.spawn (fun () ->
            Pool.For_testing.as_worker cpool 1 (fun () ->
                let spins = ref 0 in
                let rec go () =
                  match Pool.For_testing.help_top cpool 1 with
                  | `Stopped -> Atomic.set crashed true
                  | `Ran | `Idle ->
                    incr spins;
                    if !spins < 200_000_000 then begin
                      Domain.cpu_relax ();
                      go ()
                    end
                in
                go ()))
      in
      Pool.For_testing.as_worker cpool 0 (fun () ->
          let a, b =
            Pool.fork_join
              (fun () -> 10)
              (fun () ->
                bounded_spin (fun () -> Atomic.get crashed);
                20)
          in
          checki "crash handshake fork_join result" 30 (a + b));
      Domain.join chelper;
      checki "crash handshake quarantined exactly one worker" 1 (Pool.quarantines cpool));
  for id = 0 to registered_points - 1 do
    if id <> Schedpoint.start then
      checkb
        (Printf.sprintf "point %d (%s) hit" id (Schedpoint.name id))
        true
        (Atomic.get seen.(id))
  done;
  checkb "start is the only exemption" true (Schedpoint.start = 0)

(* ------------------------------------------------------------------ *)
(* Theorem oracles                                                     *)
(* ------------------------------------------------------------------ *)

let test_lemma31_oracle () =
  for seed = 0 to 4 do
    let rng = Prng.create (seed + 900) in
    let prog = Dag_gen.gen_prog rng Dag_gen.fork_heavy in
    match Oracle.lemma31 ~seed ~p:4 ~k:128 prog with
    | Ok () -> ()
    | Error m -> Alcotest.failf "lemma31 (seed %d): %s" seed m
  done

let test_thm44_oracle () =
  let rng = Prng.create 41 in
  let prog = Dag_gen.gen_prog rng Dag_gen.allocation_heavy in
  let rep = Oracle.thm44 ~seed:41 ~p:4 ~k:256 prog in
  checkb "bound holds" true rep.Oracle.ok;
  checkb "bound dominates serial space" true (rep.Oracle.bound >= rep.Oracle.s1);
  (match Oracle.thm44_result rep with
   | Ok () -> ()
   | Error m -> Alcotest.failf "thm44_result on ok report: %s" m);
  let broken = { rep with Oracle.ok = false } in
  checkb "violations render as Error" true (Result.is_error (Oracle.thm44_result broken))

(* Satellite: every policy's final memory accounting must match an
   independent recomputation from the executed-action stream, for finite
   and infinite thresholds alike. *)
let space_accounting_prop =
  QCheck.Test.make
    ~name:"accounting: engine heap counters match recomputation from the trace" ~count:24
    QCheck.(triple small_int (int_range 1 6) bool)
    (fun (seed, p, finite) ->
      let rng = Prng.create (seed + 300) in
      let prog = Dag_gen.gen_prog rng Dag_gen.allocation_heavy in
      let mem_threshold = if finite then Some 128 else None in
      let cfg = Config.analysis ~p ~mem_threshold ~seed () in
      List.for_all
        (fun sched ->
          match Oracle.space_accounting ~sched cfg prog with
          | Ok () -> true
          | Error m -> QCheck.Test.fail_reportf "%s (seed=%d p=%d)" m seed p)
        [ `Ws; `Dfdeques; `Adf; `Fifo ])

(* The cross-implementation oracle: serial 1DF, all four simulated
   policies and the real pool agree on every observable total.  Pure
   nested-parallel programs only (lock_prob = 0). *)
let pure_params = { Dag_gen.default with Dag_gen.lock_prob = 0.0 }

let differential_prop =
  QCheck.Test.make ~name:"differential: serial = simulators = native pool" ~count:12
    QCheck.small_int
    (fun seed ->
      let rng = Prng.create (seed + 70) in
      let prog = Dag_gen.gen_prog rng pure_params in
      match Oracle.differential ~seed ~pool_domains:2 prog with
      | Ok () -> true
      | Error m -> QCheck.Test.fail_reportf "%s (seed=%d)" m seed)

let () =
  Alcotest.run "check"
    [
      ( "explorer",
        [
          Alcotest.test_case "injected bug caught and shrunk" `Quick test_buggy_caught;
          Alcotest.test_case "same seed, same report" `Quick test_buggy_deterministic;
          Alcotest.test_case "replay file roundtrip reproduces" `Quick
            test_replay_roundtrip;
          Alcotest.test_case "replay rejects wrong scenario" `Quick
            test_replay_rejects_wrong_scenario;
          Alcotest.test_case "multiq torn remove caught and shrunk" `Quick
            test_multiq_buggy_caught;
          Alcotest.test_case "lfdeque steal-commit race caught and shrunk" `Quick
            test_lfdeque_buggy_caught;
          Alcotest.test_case "correct scenarios pass" `Quick test_correct_scenarios_pass;
        ] );
      ( "schedpoint coverage",
        [
          Alcotest.test_case "ids distinct and named" `Quick test_point_ids_distinct;
          Alcotest.test_case "every point documented in DESIGN.md" `Quick
            test_points_documented;
          Alcotest.test_case "every point hit by instrumented code" `Quick test_points_hit;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "Lemma 3.1 on random dags" `Quick test_lemma31_oracle;
          Alcotest.test_case "Theorem 4.4 report" `Quick test_thm44_oracle;
          QCheck_alcotest.to_alcotest ~long:false space_accounting_prop;
          QCheck_alcotest.to_alcotest ~long:false differential_prop;
        ] );
    ]
