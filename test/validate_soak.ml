(* Smoke-test validator for the `repro soak` JSON report: structural
   checks plus the acceptance criteria — the exactly-once ledger audits
   clean, counters are consistent with the ledger, no duplicate
   acknowledgements, and the run's own oracle found no violations.

   Handles both report families: the single-tenant fault plans (none /
   exns / wedges / spikes / mixed) and the multi-tenant open-loop
   campaigns (tenants-normal / tenants-bully), which additionally carry
   per-tenant sections, the backpressure-ladder trajectory, and the
   Theorem-4.4 headroom audit.

   Usage: validate_soak report.json *)

module Json = Dfd_trace.Json

let fail fmt = Json_util.failf ~prog:"validate_soak" fmt

let fault_kinds = [ "ok"; "spike"; "exn"; "flaky"; "slow"; "wedge" ]

let tenant_kinds = [ "ok"; "dup"; "bully"; "spike" ]

let reject_reasons = [ "queue_full"; "breaker_open"; "memory_pressure"; "overloaded" ]

let ladder_levels = [ "accept"; "coalesce"; "shed"; "break" ]

let () =
  let path = match Sys.argv with [| _; p |] -> p | _ -> fail "usage: validate_soak FILE" in
  let j =
    try Json_util.parse_file path with Json.Parse_error m -> fail "bad JSON: %s" m
  in
  let int_at k = try Json.to_int_exn (Json.member k j) with _ -> fail "missing int %S" k in
  ignore (int_at "seed");
  let duration = int_at "duration_steps" in
  if int_at "final_step" < duration then fail "final_step before duration_steps";
  let tenant_mode =
    match Json.member "plan" j with
    | Json.String ("none" | "exns" | "wedges" | "spikes" | "mixed") -> false
    | Json.String ("tenants-normal" | "tenants-bully") -> true
    | Json.String p -> fail "unknown plan %S" p
    | _ -> fail "missing plan"
  in
  let kinds = if tenant_mode then tenant_kinds else fault_kinds in
  let config = Json.member "config" j in
  (match Json.member "policy" config with
   | Json.String ("dfd" | "ws") -> ()
   | _ -> fail "config missing policy");
  (match Json.member "tenants" config with
   | Json.List (_ :: _ as ts) ->
     List.iter
       (fun t ->
          (try ignore (Json.to_string_exn (Json.member "name" t))
           with _ -> fail "config tenant without name");
          if Json.to_int_exn (Json.member "weight" t) < 1 then fail "non-positive tenant weight";
          if Json.to_int_exn (Json.member "queue_bound" t) < 1 then
            fail "non-positive tenant queue_bound")
       ts
   | _ -> fail "config without tenants");
  if tenant_mode then (
    match Json.member "ladder" config with
    | Json.Assoc _ as l ->
      List.iter
        (fun k ->
           try ignore (Json.to_int_exn (Json.member k l))
           with _ -> fail "config ladder missing %S" k)
        [ "coalesce_at"; "shed_at"; "break_at"; "calm_steps" ]
    | _ -> fail "tenant-mode config without ladder");
  (* submissions: every entry well-formed, accepted ones carry a job id *)
  let subs = try Json.to_list_exn (Json.member "submissions" j) with _ -> fail "no submissions" in
  if subs = [] then fail "empty submissions";
  let accepted = ref 0 and shed = ref 0 and coalesced_subs = ref 0 in
  List.iter
    (fun s ->
       let step = try Json.to_int_exn (Json.member "step" s) with _ -> fail "submission without step" in
       if step < 1 || step > duration then fail "submission step %d out of range" step;
       (match Json.member "kind" s with
        | Json.String k when List.mem k kinds -> ()
        | Json.String k -> fail "unknown job kind %S" k
        | _ -> fail "submission without kind");
       if tenant_mode then
         (try ignore (Json.to_string_exn (Json.member "tenant" s))
          with _ -> fail "tenant-mode submission without tenant");
       match Json.member "accepted" s with
       | Json.Bool true ->
         incr accepted;
         (try ignore (Json.to_int_exn (Json.member "job" s))
          with _ -> fail "accepted submission without job id");
         if tenant_mode then (
           match Json.member "coalesced" s with
           | Json.Bool true -> incr coalesced_subs
           | Json.Bool false -> ()
           | _ -> fail "tenant-mode submission without coalesced flag")
       | Json.Bool false ->
         incr shed;
         (match Json.member "reason" s with
          | Json.String r when List.mem r reject_reasons -> ()
          | Json.String r -> fail "unknown rejection reason %S" r
          | _ -> fail "shed submission without reason")
       | _ -> fail "submission without accepted flag")
    subs;
  (* ledger: one entry per submission, terminal outcomes only *)
  let ledger = try Json.to_list_exn (Json.member "ledger" j) with _ -> fail "no ledger" in
  if List.length ledger <> List.length subs then
    fail "ledger has %d entries but %d submissions" (List.length ledger) (List.length subs);
  let completed = ref 0 and failed = ref 0 and rejected = ref 0 and cancelled = ref 0 in
  List.iter
    (fun e ->
       (try ignore (Json.to_int_exn (Json.member "job" e)) with _ -> fail "ledger entry without job");
       (try ignore (Json.to_string_exn (Json.member "tenant" e))
        with _ -> fail "ledger entry without tenant");
       (try ignore (Json.to_string_exn (Json.member "class" e))
        with _ -> fail "ledger entry without class");
       let attempts =
         try Json.to_int_exn (Json.member "attempts" e) with _ -> fail "entry without attempts"
       in
       let requeues =
         try Json.to_int_exn (Json.member "requeues" e) with _ -> fail "entry without requeues"
       in
       if attempts < 0 || requeues < 0 then fail "negative attempts/requeues";
       match Json.member "outcome" e with
       | Json.String "completed" -> incr completed
       | Json.String "failed" -> incr failed
       | Json.String "cancelled" -> incr cancelled
       | Json.String "rejected" ->
         incr rejected;
         (match Json.member "reason" e with
          | Json.String r when List.mem r reject_reasons -> ()
          | _ -> fail "rejected entry without a valid reason")
       | Json.String other -> fail "non-terminal ledger outcome %S (lost job?)" other
       | _ -> fail "ledger entry without outcome")
    ledger;
  (* counters must agree with the ledger recomputation *)
  let counters = Json.member "counters" j in
  let c k =
    try Json.to_int_exn (Json.member k counters) with _ -> fail "counters missing %S" k
  in
  (* the accepted flag covers both queued and coalesced admissions *)
  if c "accepted" + c "coalesced" <> !accepted then
    fail "accepted + coalesced counters disagree with submissions";
  if c "coalesced" <> !coalesced_subs && tenant_mode then
    fail "coalesced counter disagrees with submission flags";
  if
    c "rejected_queue_full" + c "rejected_breaker_open" + c "rejected_memory_pressure"
    + c "rejected_overloaded"
    <> !shed
  then fail "rejection counters disagree with submissions";
  if c "completions" <> !completed then fail "completions counter disagrees with ledger";
  if c "failures" <> !failed then fail "failures counter disagrees with ledger";
  if c "cancelled" <> !cancelled then fail "cancelled counter disagrees with ledger";
  if !rejected <> !shed then fail "rejected ledger entries disagree with shed submissions";
  if c "duplicate_acks" <> 0 then fail "duplicate acknowledgements reported";
  if c "wedges" <> c "respawns" then fail "wedge/respawn counters disagree";
  let check_quota_moves moves =
    List.iter
      (function
        | Json.List [ Json.Int s; Json.Int k ] ->
          if s < 1 then fail "quota move at non-positive step";
          if k <= 0 then fail "non-positive quota in trajectory"
        | _ -> fail "malformed quota move")
      moves
  in
  (* trajectories: well-formed tuples over the logical clock *)
  if not tenant_mode then (
    match Json.member "quota_trajectory" j with
    | Json.List moves -> check_quota_moves moves
    | _ -> fail "no quota_trajectory");
  (match Json.member "breaker_transitions" j with
   | Json.List trans ->
     List.iter
       (function
         | Json.List [ Json.Int s; Json.String _; Json.String st ] ->
           if s < 0 then fail "breaker transition at negative step";
           if not (List.mem st [ "closed"; "open"; "half_open" ]) then
             fail "unknown breaker state %S" st
         | _ -> fail "malformed breaker transition")
       trans
   | _ -> fail "no breaker_transitions");
  (* tenant-mode sections: per-tenant stats, ladder, headroom, merged
     latency — all schema-checked and cross-checked against the global
     counters *)
  if tenant_mode then begin
    let quantiles q =
      let count = try Json.to_int_exn (Json.member "count" q) with _ -> fail "quantiles without count" in
      if count < 0 then fail "negative latency count";
      List.iter
        (fun k ->
           match Json.member k q with
           | Json.Float v -> if v < 0.0 then fail "negative latency quantile"
           | Json.Int v -> if v < 0 then fail "negative latency quantile"
           | Json.Null when count = 0 -> ()
           | _ -> fail "latency section missing %S" k)
        [ "p50"; "p90"; "p99" ];
      count
    in
    let tenants =
      try Json.to_list_exn (Json.member "tenants" j) with _ -> fail "no tenants section"
    in
    if tenants = [] then fail "empty tenants section";
    let sum_acc = ref 0 and sum_coal = ref 0 and sum_rej = ref 0 and sum_lat = ref 0 in
    List.iter
      (fun t ->
         let ti k =
           try Json.to_int_exn (Json.member k t) with _ -> fail "tenant stats missing %S" k
         in
         (try ignore (Json.to_string_exn (Json.member "name" t))
          with _ -> fail "tenant stats without name");
         if ti "weight" < 1 then fail "non-positive tenant weight in stats";
         let bound = ti "queue_bound" in
         if ti "peak_depth" > bound then fail "tenant peak_depth exceeds its bound";
         sum_acc := !sum_acc + ti "accepted";
         sum_coal := !sum_coal + ti "coalesced";
         ignore (ti "completions");
         ignore (ti "failures");
         ignore (ti "cancelled");
         let rej = Json.member "rejected" t in
         List.iter
           (fun k ->
              let v =
                try Json.to_int_exn (Json.member k rej)
                with _ -> fail "tenant rejected section missing %S" k
              in
              sum_rej := !sum_rej + v)
           reject_reasons;
         (match Json.member "first_shed_step" t with
          | Json.Null -> ()
          | Json.Int s -> if s < 1 then fail "first_shed_step before step 1"
          | _ -> fail "malformed first_shed_step");
         sum_lat := !sum_lat + quantiles (Json.member "latency_steps" t);
         (match Json.member "quota" t with
          | Json.Null | Json.Int _ -> ()
          | _ -> fail "malformed tenant quota");
         match Json.member "quota_trajectory" t with
         | Json.List moves -> check_quota_moves moves
         | _ -> fail "tenant stats without quota_trajectory")
      tenants;
    if !sum_acc <> c "accepted" then fail "per-tenant accepted do not sum to the global counter";
    if !sum_coal <> c "coalesced" then
      fail "per-tenant coalesced do not sum to the global counter";
    if !sum_rej <> !shed then fail "per-tenant rejections do not sum to the shed submissions";
    let merged = quantiles (Json.member "latency_all_steps" j) in
    if merged <> !sum_lat then
      fail "merged latency count %d but per-tenant histograms hold %d" merged !sum_lat;
    let ladder = Json.member "ladder" j in
    (match Json.member "final" ladder with
     | Json.String l when List.mem l ladder_levels -> ()
     | _ -> fail "ladder section without a valid final level");
    (match Json.member "transitions" ladder with
     | Json.List trans ->
       List.iter
         (function
           | Json.List [ Json.Int s; Json.String l ] ->
             if s < 1 then fail "ladder transition before step 1";
             if not (List.mem l ladder_levels) then fail "unknown ladder level %S" l
           | _ -> fail "malformed ladder transition")
         trans
     | _ -> fail "ladder section without transitions");
    let headroom = Json.member "headroom" j in
    let peak =
      try Json.to_int_exn (Json.member "peak_bytes" headroom)
      with _ -> fail "headroom without peak_bytes"
    in
    let budget =
      try Json.to_int_exn (Json.member "budget_bytes" headroom)
      with _ -> fail "headroom without budget_bytes"
    in
    if peak > budget then fail "headroom peak %d exceeds the Theorem-4.4 budget %d" peak budget;
    match Json.member "within_budget" headroom with
    | Json.Bool true -> ()
    | _ -> fail "headroom within_budget is not true"
  end;
  (* the acceptance gate: the run's own oracle *)
  let checks = Json.member "checks" j in
  (match Json.member "ledger_verified" checks with
   | Json.Bool true -> ()
   | _ -> fail "ledger_verified is not true");
  (match Json.member "violations" checks with
   | Json.List [] -> ()
   | Json.List vs -> fail "%d oracle violations reported" (List.length vs)
   | _ -> fail "missing violations list");
  (match Json.member "all_passed" checks with
   | Json.Bool true -> ()
   | _ -> fail "all_passed is not true");
  Printf.printf "validate_soak: %s ok (%d submissions, %d accepted, %d completed)\n" path
    (List.length subs) !accepted !completed
