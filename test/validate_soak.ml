(* Smoke-test validator for the `repro soak` JSON report: structural
   checks plus the acceptance criteria — the exactly-once ledger audits
   clean, counters are consistent with the ledger, no duplicate
   acknowledgements, and the run's own oracle found no violations.
   Usage: validate_soak report.json *)

module Json = Dfd_trace.Json

let fail fmt = Json_util.failf ~prog:"validate_soak" fmt

let kinds = [ "ok"; "spike"; "exn"; "flaky"; "slow"; "wedge" ]

let reject_reasons = [ "queue_full"; "breaker_open"; "memory_pressure" ]

let () =
  let path = match Sys.argv with [| _; p |] -> p | _ -> fail "usage: validate_soak FILE" in
  let j =
    try Json_util.parse_file path with Json.Parse_error m -> fail "bad JSON: %s" m
  in
  let int_at k = try Json.to_int_exn (Json.member k j) with _ -> fail "missing int %S" k in
  ignore (int_at "seed");
  let duration = int_at "duration_steps" in
  if int_at "final_step" < duration then fail "final_step before duration_steps";
  (match Json.member "plan" j with
   | Json.String p when List.mem p [ "none"; "exns"; "wedges"; "spikes"; "mixed" ] -> ()
   | Json.String p -> fail "unknown plan %S" p
   | _ -> fail "missing plan");
  let config = Json.member "config" j in
  (match Json.member "policy" config with
   | Json.String ("dfd" | "ws") -> ()
   | _ -> fail "config missing policy");
  (* submissions: every entry well-formed, accepted ones carry a job id *)
  let subs = try Json.to_list_exn (Json.member "submissions" j) with _ -> fail "no submissions" in
  if subs = [] then fail "empty submissions";
  let accepted = ref 0 and shed = ref 0 in
  List.iter
    (fun s ->
       let step = try Json.to_int_exn (Json.member "step" s) with _ -> fail "submission without step" in
       if step < 1 || step > duration then fail "submission step %d out of range" step;
       (match Json.member "kind" s with
        | Json.String k when List.mem k kinds -> ()
        | Json.String k -> fail "unknown job kind %S" k
        | _ -> fail "submission without kind");
       match Json.member "accepted" s with
       | Json.Bool true ->
         incr accepted;
         (try ignore (Json.to_int_exn (Json.member "job" s))
          with _ -> fail "accepted submission without job id")
       | Json.Bool false ->
         incr shed;
         (match Json.member "reason" s with
          | Json.String r when List.mem r reject_reasons -> ()
          | Json.String r -> fail "unknown rejection reason %S" r
          | _ -> fail "shed submission without reason")
       | _ -> fail "submission without accepted flag")
    subs;
  (* ledger: one entry per submission, terminal outcomes only *)
  let ledger = try Json.to_list_exn (Json.member "ledger" j) with _ -> fail "no ledger" in
  if List.length ledger <> List.length subs then
    fail "ledger has %d entries but %d submissions" (List.length ledger) (List.length subs);
  let completed = ref 0 and failed = ref 0 and rejected = ref 0 in
  List.iter
    (fun e ->
       (try ignore (Json.to_int_exn (Json.member "job" e)) with _ -> fail "ledger entry without job");
       (try ignore (Json.to_string_exn (Json.member "class" e))
        with _ -> fail "ledger entry without class");
       let attempts =
         try Json.to_int_exn (Json.member "attempts" e) with _ -> fail "entry without attempts"
       in
       let requeues =
         try Json.to_int_exn (Json.member "requeues" e) with _ -> fail "entry without requeues"
       in
       if attempts < 0 || requeues < 0 then fail "negative attempts/requeues";
       match Json.member "outcome" e with
       | Json.String "completed" -> incr completed
       | Json.String "failed" -> incr failed
       | Json.String "rejected" ->
         incr rejected;
         (match Json.member "reason" e with
          | Json.String r when List.mem r reject_reasons -> ()
          | _ -> fail "rejected entry without a valid reason")
       | Json.String other -> fail "non-terminal ledger outcome %S (lost job?)" other
       | _ -> fail "ledger entry without outcome")
    ledger;
  (* counters must agree with the ledger recomputation *)
  let counters = Json.member "counters" j in
  let c k =
    try Json.to_int_exn (Json.member k counters) with _ -> fail "counters missing %S" k
  in
  if c "accepted" <> !accepted then fail "accepted counter disagrees with submissions";
  if c "rejected_queue_full" + c "rejected_breaker_open" + c "rejected_memory_pressure" <> !shed
  then fail "rejection counters disagree with submissions";
  if c "completions" <> !completed then fail "completions counter disagrees with ledger";
  if c "failures" <> !failed then fail "failures counter disagrees with ledger";
  if !rejected <> !shed then fail "rejected ledger entries disagree with shed submissions";
  if c "duplicate_acks" <> 0 then fail "duplicate acknowledgements reported";
  if c "wedges" <> c "respawns" then fail "wedge/respawn counters disagree";
  (* trajectories: well-formed tuples over the logical clock *)
  (match Json.member "quota_trajectory" j with
   | Json.List moves ->
     List.iter
       (function
         | Json.List [ Json.Int s; Json.Int k ] ->
           if s < 1 then fail "quota move at non-positive step";
           if k <= 0 then fail "non-positive quota in trajectory"
         | _ -> fail "malformed quota move")
       moves
   | _ -> fail "no quota_trajectory");
  (match Json.member "breaker_transitions" j with
   | Json.List trans ->
     List.iter
       (function
         | Json.List [ Json.Int s; Json.String _; Json.String st ] ->
           if s < 0 then fail "breaker transition at negative step";
           if not (List.mem st [ "closed"; "open"; "half_open" ]) then
             fail "unknown breaker state %S" st
         | _ -> fail "malformed breaker transition")
       trans
   | _ -> fail "no breaker_transitions");
  (* the acceptance gate: the run's own oracle *)
  let checks = Json.member "checks" j in
  (match Json.member "ledger_verified" checks with
   | Json.Bool true -> ()
   | _ -> fail "ledger_verified is not true");
  (match Json.member "violations" checks with
   | Json.List [] -> ()
   | Json.List vs -> fail "%d oracle violations reported" (List.length vs)
   | _ -> fail "missing violations list");
  (match Json.member "all_passed" checks with
   | Json.Bool true -> ()
   | _ -> fail "all_passed is not true");
  Printf.printf "validate_soak: %s ok (%d submissions, %d accepted, %d completed)\n" path
    (List.length subs) !accepted !completed
