(* Benchmark harness: one Bechamel test per paper table/figure measuring the
   cost of regenerating it (a representative slice at reduced scale so the
   measurement loop can iterate), followed by the full regeneration of
   every table and figure — the output a reader compares against the paper.

     dune exec bench/main.exe              # timings + all tables
     dune exec bench/main.exe -- quick     # timings only *)

open Bechamel
open Toolkit

module Engine = Dfdeques_core.Engine
module Config = Dfd_machine.Config
module W = Dfd_benchmarks.Workload

let run_costed ?(p = 8) ?(k = Some 50_000) sched (b : W.t) () =
  ignore (Engine.run ~sched (Config.costed ~p ~mem_threshold:k ()) (b.W.prog ()))

let run_analysis ?(p = 8) ?(k = Some 50_000) sched (b : W.t) () =
  ignore (Engine.run ~sched (Config.analysis ~p ~mem_threshold:k ()) (b.W.prog ()))

(* Reduced-scale stand-ins so one bechamel iteration stays ~tens of ms. *)
let small_mm = Dfd_benchmarks.Dense_mm.bench ~n:64 W.Fine
let small_synth = Dfd_benchmarks.Synthetic.bench ~levels:12 ~mem0:16_384 ~gran0:256 W.Fine
let sparse = Dfd_benchmarks.Sparse_mvm.bench W.Fine
let treebuild = Dfd_benchmarks.Barnes_hut.treebuild ~bodies:1024 W.Fine
let adversary () =
  ignore
    (Engine.run ~sched:`Dfdeques
       (Config.analysis ~p:8 ~mem_threshold:(Some 1024) ())
       (Dfd_benchmarks.Lower_bound.prog ~p:8 ~d:64 ~a_bytes:1024 ()))

(* Tracing overhead: the same run with the tracer disabled (the default —
   one predictable branch per potential event) vs recording into the ring
   buffer.  Compare the two lines in the output; "disabled" should be
   indistinguishable from the plain "table1" line above it. *)
let run_traced ~tracer (b : W.t) () =
  ignore
    (Engine.run ~sched:`Dfdeques ~tracer
       (Config.costed ~p:8 ~mem_threshold:(Some 50_000) ())
       (b.W.prog ()))

let tests =
  [
    Test.make ~name:"table1: costed run, SparseMVM/DFD/p8"
      (Staged.stage (run_costed `Dfdeques sparse));
    Test.make ~name:"trace off: SparseMVM/DFD/p8, tracer disabled"
      (Staged.stage (run_traced ~tracer:Dfd_trace.Tracer.disabled sparse));
    Test.make ~name:"trace on: SparseMVM/DFD/p8, ring-buffer tracer"
      (Staged.stage (fun () -> run_traced ~tracer:(Dfd_trace.Tracer.create ()) sparse ()));
    Test.make ~name:"fig12: costed run, SparseMVM/FIFO/p8"
      (Staged.stage (run_costed `Fifo sparse));
    Test.make ~name:"fig13: memory point, DenseMM-64/WS/p8"
      (Staged.stage (run_costed ~k:None `Ws small_mm));
    Test.make ~name:"fig14: watermark, DenseMM-64/ADF/p8"
      (Staged.stage (run_costed `Adf small_mm));
    Test.make ~name:"fig15: tradeoff point, DenseMM-64/DFD/K=1k"
      (Staged.stage (run_costed ~k:(Some 1_000) `Dfdeques small_mm));
    Test.make ~name:"fig16: section-6 sim, synthetic/DFD/p64"
      (Staged.stage (run_analysis ~p:64 ~k:(Some 4_096) `Dfdeques small_synth));
    Test.make ~name:"fig17: lock sim, BH-treebuild/DFD/p8"
      (Staged.stage (run_costed `Dfdeques treebuild));
    Test.make ~name:"thm44: analysis run, DenseMM-64/DFD/p8"
      (Staged.stage (run_analysis `Dfdeques small_mm));
    Test.make ~name:"thm45: adversarial dag, p8" (Staged.stage adversary);
    Test.make ~name:"thm48: analysis run, SparseMVM/DFD/p8"
      (Staged.stage (run_analysis `Dfdeques sparse));
  ]

let benchmark () =
  let instances = Instance.[ monotonic_clock; minor_allocated; major_allocated ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.8) ~kde:(Some 1000) () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let raw = List.map (fun test -> Benchmark.all cfg instances test) tests in
  let results = List.map (fun m -> Analyze.all ols Instance.monotonic_clock m) raw in
  (tests, results)

let pp_results results =
  List.iter
    (fun result ->
       Hashtbl.iter
         (fun name ols ->
            match Bechamel.Analyze.OLS.estimates ols with
            | Some [ est ] -> Printf.printf "%-50s %12.0f ns/run\n" name est
            | _ -> Printf.printf "%-50s (no estimate)\n" name)
         result)
    results

let () =
  let quick = Array.length Sys.argv > 1 && Sys.argv.(1) = "quick" in
  print_endline "=== bechamel timings (one test per paper table/figure) ===";
  let _tests, results = benchmark () in
  pp_results results;
  print_newline ();
  if not quick then begin
    print_endline "=== full regeneration of every table and figure ===";
    print_newline ();
    print_string (Dfd_experiments.All_experiments.run_all ())
  end
