(* Throughput/scalability benchmark for the native Domains pool.

     dune exec bench/pool_scale.exe                    # full sweep
     dune exec bench/pool_scale.exe -- --smoke         # seconds-long CI config
     dune exec bench/pool_scale.exe -- -o out.json     # report path

   Workloads: fork-join fib (pure scheduling overhead — every node is a
   fork) and psort (divide-and-conquer with real data movement).  Each
   (policy, workload) pair sweeps worker counts; the report records wall
   time, task throughput and the pool counters per point, plus the
   speedup of every p relative to p=1, as machine-readable JSON
   ([BENCH_pool.json] by default) so the perf trajectory is tracked
   across PRs.

   The process exit code reflects only crashes/incorrect results — never
   timing — so CI can run the smoke configuration on noisy shared
   hardware.  Speedup numbers are meaningful only on a machine that
   actually has the cores (this is what the `cores` field is for). *)

module Pool = Dfd_runtime.Pool
module Psort = Dfd_runtime.Psort
module Prng = Dfd_structures.Prng
module Json = Dfd_trace.Json
module Registry = Dfd_obs.Registry
module Stats = Dfd_structures.Stats

let rec fib n =
  if n < 2 then n
  else begin
    let a, b = Pool.fork_join (fun () -> fib (n - 1)) (fun () -> fib (n - 2)) in
    a + b
  end

(* Sequential reference for the correctness check. *)
let rec sfib n = if n < 2 then n else sfib (n - 1) + sfib (n - 2)

type point = {
  workload : string;
  policy_name : string;
  p : int;
  time_s : float;
  reps : int;
  tasks_run : int;
  steals : int;
  steal_failures : int;
  local_pops : int;
  r_inserts : int;
  r_removes : int;
  sync_ops : int;
  rank_hist : Stats.Histogram.t;
}

(* Best-of-[reps] wall time for [f] on a fresh pool; counters are from the
   last rep (created fresh per point so reps don't accumulate). *)
let measure ~policy ~p ~reps f check =
  let pool = Pool.create ~domains:(p - 1) policy in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
       let best = ref infinity in
       for _ = 1 to reps do
         let t0 = Unix.gettimeofday () in
         let v = Pool.run pool f in
         let dt = Unix.gettimeofday () -. t0 in
         if not (check v) then failwith "pool_scale: wrong result";
         if dt < !best then best := dt
       done;
       (!best, Pool.counters pool, Pool.rank_error pool))

let point ~workload ~policy_name ~policy ~p ~reps f check =
  let time_s, c, rank_hist = measure ~policy ~p ~reps f check in
  Printf.printf "%-6s %-4s p=%d  %.4fs  tasks=%d steals=%d\n%!" workload policy_name p time_s
    c.Pool.tasks_run c.Pool.steals;
  {
    workload;
    policy_name;
    p;
    time_s;
    reps;
    tasks_run = c.Pool.tasks_run;
    steals = c.Pool.steals;
    steal_failures = c.Pool.steal_failures;
    local_pops = c.Pool.local_pops;
    r_inserts = c.Pool.r_inserts;
    r_removes = c.Pool.r_removes;
    sync_ops = c.Pool.sync_ops;
    rank_hist;
  }

let point_json pt =
  Json.Assoc
    [
      ("workload", Json.String pt.workload);
      ("policy", Json.String pt.policy_name);
      ("p", Json.Int pt.p);
      ("time_s", Json.Float pt.time_s);
      ("reps", Json.Int pt.reps);
      ("tasks_run", Json.Int pt.tasks_run);
      ("steals", Json.Int pt.steals);
      ("steal_failures", Json.Int pt.steal_failures);
      ("local_pops", Json.Int pt.local_pops);
      ( "throughput_tasks_per_s",
        Json.Float (if pt.time_s > 0.0 then float_of_int pt.tasks_run /. pt.time_s else 0.0) );
    ]

(* Observability-overhead pair: the identical WS fib workload with the
   metrics registry enabled vs disabled.  The hot path's cost when
   disabled is one load + branch per instrumented site; the ratio is
   recorded (never gated — CI hardware is noisy) so regressions in the
   instrumentation show up in the perf trajectory. *)
let obs_overhead ~fib_n ~reps ~p ~expect =
  let timed registry =
    let pool = Pool.create ~domains:(p - 1) ?registry Pool.Work_stealing in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
         let best = ref infinity in
         for _ = 1 to reps do
           let t0 = Unix.gettimeofday () in
           let v = Pool.run pool (fun () -> fib fib_n) in
           let dt = Unix.gettimeofday () -. t0 in
           if v <> expect then failwith "pool_scale: wrong result (obs pair)";
           if dt < !best then best := dt
         done;
         !best)
  in
  let disabled_s = timed None in
  let enabled_s = timed (Some (Registry.create ())) in
  Printf.printf "obs    ws   p=%d  disabled=%.4fs enabled=%.4fs ratio=%.3f\n%!" p disabled_s
    enabled_s
    (if disabled_s > 0.0 then enabled_s /. disabled_s else 0.0);
  Json.Assoc
    [
      ("workload", Json.String "fib");
      ("policy", Json.String "ws");
      ("p", Json.Int p);
      ("reps", Json.Int reps);
      ("disabled_time_s", Json.Float disabled_s);
      ("enabled_time_s", Json.Float enabled_s);
      ( "overhead_ratio",
        Json.Float (if disabled_s > 0.0 then enabled_s /. disabled_s else 0.0) );
    ]

(* Rank-error histogram of the relaxed R-list, one row per dfd point.
   Quantiles come from the log2-bucketed Stats.Histogram merged across
   workers; zero rows (no steals) carry count=0 and omit nothing — the
   schema checker wants the row either way. *)
let rank_error_rows points =
  List.filter_map
    (fun pt ->
       if pt.policy_name <> "dfd" then None
       else
         let h = pt.rank_hist in
         let q x = match Stats.Histogram.quantile h x with Some v -> v | None -> 0.0 in
         Some
           (Json.Assoc
              [
                ("workload", Json.String pt.workload);
                ("policy", Json.String pt.policy_name);
                ("p", Json.Int pt.p);
                ("count", Json.Int (Stats.Histogram.count h));
                ("p50", Json.Float (q 0.5));
                ("p90", Json.Float (q 0.9));
                ("p99", Json.Float (q 0.99));
                ( "max",
                  Json.Float (match Stats.Histogram.max_opt h with Some v -> v | None -> 0.0)
                );
              ]))
    points

(* Membership traffic on the R-list: inserts/removes per dfd point.  The
   relaxed structure does one CAS publish per insert and one per remove;
   the old design additionally rebuilt a leftmost-p snapshot under a
   global lock on every one of these. *)
let r_membership_rows points =
  List.filter_map
    (fun pt ->
       if pt.policy_name <> "dfd" then None
       else
         Some
           (Json.Assoc
              [
                ("workload", Json.String pt.workload);
                ("policy", Json.String pt.policy_name);
                ("p", Json.Int pt.p);
                ("inserts", Json.Int pt.r_inserts);
                ("removes", Json.Int pt.r_removes);
              ]))
    points

(* Synchronization operations (the Rito & Paulino metric the CAS-only
   deque is optimizing): atomic RMWs + publishing stores executed by the
   task-transfer paths, including failed CAS attempts, one row per point.
   WS rows are structurally zero (its deque is mutex-based and
   uninstrumented) but are emitted anyway so the per-p shape is uniform;
   never timing-gated. *)
let sync_ops_rows points =
  List.map
    (fun pt ->
       Json.Assoc
         [
           ("workload", Json.String pt.workload);
           ("policy", Json.String pt.policy_name);
           ("p", Json.Int pt.p);
           ("sync_ops", Json.Int pt.sync_ops);
           ( "sync_ops_per_task",
             Json.Float
               (if pt.tasks_run > 0 then float_of_int pt.sync_ops /. float_of_int pt.tasks_run
                else 0.0) );
         ])
    points

(* speedup(p) = time(p=1) / time(p), per (workload, policy) group *)
let speedups points =
  List.filter_map
    (fun pt ->
       if pt.p = 1 then None
       else
         List.find_opt
           (fun b -> b.p = 1 && b.workload = pt.workload && b.policy_name = pt.policy_name)
           points
         |> Option.map (fun base ->
             Json.Assoc
               [
                 ("workload", Json.String pt.workload);
                 ("policy", Json.String pt.policy_name);
                 ("p", Json.Int pt.p);
                 ( "speedup_vs_p1",
                   Json.Float (if pt.time_s > 0.0 then base.time_s /. pt.time_s else 0.0) );
               ]))
    points

let () =
  let smoke = ref false in
  let out = ref "BENCH_pool.json" in
  Arg.parse
    [
      ("--smoke", Arg.Set smoke, " seconds-long configuration (CI: fails on crash, not timing)");
      ("-o", Arg.Set_string out, "FILE report path (default BENCH_pool.json)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "pool_scale [--smoke] [-o FILE]";
  let fib_n, sort_n, reps, ps =
    if !smoke then (18, 20_000, 1, [ 1; 2 ]) else (26, 400_000, 3, [ 1; 2; 4; 8 ])
  in
  let fib_expect = sfib fib_n in
  let policies = [ ("ws", Pool.Work_stealing); ("dfd", Pool.Dfdeques { quota = 32_768 }) ] in
  let points =
    List.concat_map
      (fun (policy_name, policy) ->
         List.concat_map
           (fun p ->
              let fib_pt =
                point ~workload:"fib" ~policy_name ~policy ~p ~reps
                  (fun () -> fib fib_n)
                  (fun v -> v = fib_expect)
              in
              let sort_pt =
                point ~workload:"psort" ~policy_name ~policy ~p ~reps
                  (fun () ->
                     let rng = Prng.create 42 in
                     let arr = Array.init sort_n (fun _ -> Prng.int rng 1_000_000) in
                     Psort.sort ~cutoff:512 ~cmp:compare arr;
                     arr)
                  (Psort.sorted ~cmp:compare)
              in
              [ fib_pt; sort_pt ])
           ps)
      policies
  in
  let obs =
    obs_overhead ~fib_n ~reps ~p:(List.fold_left max 1 ps) ~expect:fib_expect
  in
  let report =
    Json.Assoc
      [
        ("bench", Json.String "pool_scale");
        ("smoke", Json.Bool !smoke);
        ("cores", Json.Int (Domain.recommended_domain_count ()));
        ("fib_n", Json.Int fib_n);
        ("sort_n", Json.Int sort_n);
        ("results", Json.List (List.map point_json points));
        ("speedups", Json.List (speedups points));
        ("rank_error", Json.List (rank_error_rows points));
        ("r_membership_ops", Json.List (r_membership_rows points));
        ("sync_ops", Json.List (sync_ops_rows points));
        ("obs_overhead", obs);
      ]
  in
  let oc = open_out !out in
  Json.to_channel oc report;
  output_char oc '\n';
  close_out oc;
  Printf.printf "report: %s\n" !out
