(* The real-multicore face of the library: the same fork-join program run
   on OCaml 5 domains under both deque disciplines, with the DFDeques
   memory quota fed by allocation hints.

     dune exec examples/native_pool.exe

   (On a single-core machine the pools still run real concurrent domains;
   speedups need real cores.) *)

module Pool = Dfd_runtime.Pool

(* A blocked matrix multiply over real float arrays: the native analogue of
   the simulator's DenseMM benchmark. *)
let matmul pool n =
  let a = Array.make (n * n) 1.0
  and b = Array.make (n * n) 2.0
  and c = Array.make (n * n) 0.0 in
  let block = 32 in
  let blocks = n / block in
  Pool.run pool (fun () ->
      Pool.parallel_for ~lo:0 ~hi:(blocks * blocks) (fun t ->
          let bi = t / blocks * block and bj = t mod blocks * block in
          (* tell the DFDeques quota about this task's working set *)
          Pool.alloc_hint (block * block * 8);
          for i = bi to bi + block - 1 do
            for j = bj to bj + block - 1 do
              let acc = ref 0.0 in
              for k = 0 to n - 1 do
                acc := !acc +. (a.((i * n) + k) *. b.((k * n) + j))
              done;
              c.((i * n) + j) <- !acc
            done
          done));
  c

let rec fib n =
  if n < 2 then n
  else begin
    let a, b = Pool.fork_join (fun () -> fib (n - 1)) (fun () -> fib (n - 2)) in
    a + b
  end

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  List.iter
    (fun (policy, name) ->
       let pool = Pool.create policy in
       let fb, t_fib = time (fun () -> Pool.run pool (fun () -> fib 25)) in
       let c, t_mm = time (fun () -> matmul pool 256) in
       Printf.printf "%-24s fib 25 = %d (%.3fs)   matmul 256 c[0]=%.0f (%.3fs)\n" name fb t_fib
         c.(0) t_mm;
       let k = Pool.counters pool in
       Printf.printf
         "    steals %d  steal_failures %d  local_pops %d  quota_giveups %d  tasks_run %d\n"
         k.Pool.steals k.Pool.steal_failures k.Pool.local_pops k.Pool.quota_giveups
         k.Pool.tasks_run;
       Pool.shutdown pool)
    [
      (Pool.Work_stealing, "work stealing");
      (Pool.Dfdeques { quota = 64 * 1024 }, "DFDeques(K=64kB)");
    ]
