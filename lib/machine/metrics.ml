module W = Dfd_structures.Stats.Watermark
module H = Dfd_structures.Stats.Histogram

type t = {
  mutable actions : int;
  mutable steal_attempts : int;
  mutable steals : int;
  mutable local : int;
  mutable queued : int;
  mutable quota : int;
  mutable dummies : int;
  mutable heavy_premature : int;
  deques : W.t;
  per_proc_actions : int array;
  per_victim_steals : int array;
  steal_latency : H.t;
  deque_residency : H.t;
  quota_utilisation : H.t;
  premature_depth : H.t;
}

let create ~p =
  {
    actions = 0;
    steal_attempts = 0;
    steals = 0;
    local = 0;
    queued = 0;
    quota = 0;
    dummies = 0;
    heavy_premature = 0;
    deques = W.create ();
    per_proc_actions = Array.make p 0;
    per_victim_steals = Array.make p 0;
    steal_latency = H.create ();
    deque_residency = H.create ();
    quota_utilisation = H.create ();
    premature_depth = H.create ();
  }

let action_executed t ~proc ~units =
  t.actions <- t.actions + units;
  t.per_proc_actions.(proc) <- t.per_proc_actions.(proc) + units

let steal_attempt t = t.steal_attempts <- t.steal_attempts + 1

let steal_success t = t.steals <- t.steals + 1

let local_dispatch t = t.local <- t.local + 1

let queue_dispatch t = t.queued <- t.queued + 1

let quota_exhausted t = t.quota <- t.quota + 1

let dummy_executed t = t.dummies <- t.dummies + 1

let heavy_premature t ~depth =
  t.heavy_premature <- t.heavy_premature + 1;
  H.add t.premature_depth (float_of_int depth)

let heavy_prematures t = t.heavy_premature

let premature_depth t = t.premature_depth

let deques_changed t n = W.add t.deques (n - W.current t.deques)

let steal_from t ~victim =
  let n = Array.length t.per_victim_steals in
  if n > 0 then begin
    let v = if victim < 0 then 0 else if victim >= n then n - 1 else victim in
    t.per_victim_steals.(v) <- t.per_victim_steals.(v) + 1
  end

let record_steal_latency t d = H.add t.steal_latency (float_of_int d)

let record_deque_residency t d = H.add t.deque_residency (float_of_int d)

let record_quota_utilisation t pct = H.add t.quota_utilisation pct

let per_victim_steals t = Array.copy t.per_victim_steals

let steal_latency t = t.steal_latency

let deque_residency t = t.deque_residency

let quota_utilisation t = t.quota_utilisation

let actions t = t.actions

let steals t = t.steals

let steal_attempts t = t.steal_attempts

let local_dispatches t = t.local

let queue_dispatches t = t.queued

let quota_exhaustions t = t.quota

let dummies t = t.dummies

let deque_peak t = W.peak t.deques

let deque_current t = W.current t.deques

let per_proc_actions t = Array.copy t.per_proc_actions

(* max-over-mean of per-processor executed actions: 1.0 = perfect balance. *)
let load_imbalance t =
  let n = Array.length t.per_proc_actions in
  let total = Array.fold_left ( + ) 0 t.per_proc_actions in
  if total = 0 then 1.0
  else begin
    let mx = Array.fold_left max 0 t.per_proc_actions in
    float_of_int mx /. (float_of_int total /. float_of_int n)
  end

let sched_granularity t =
  float_of_int t.actions /. float_of_int (max 1 (t.steals + t.queued))

let local_steal_ratio t = float_of_int t.local /. float_of_int (max 1 t.steals)
