(** Scheduling metrics gathered during a simulated run.

    Definitions follow the paper:
    - {b scheduling granularity} (Section 6): average number of actions a
      processor executes between two steals (or, for global-queue
      schedulers, between two dispatches from the shared queue);
    - the {b local/steal ratio} (Section 5.3): number of times a thread is
      scheduled from the processor's own deque divided by the number of
      steals — the paper's implementation-level approximation of
      granularity. *)

type t

val create : p:int -> t

val action_executed : t -> proc:int -> units:int -> unit

val steal_attempt : t -> unit

val steal_success : t -> unit

val local_dispatch : t -> unit
(** A thread obtained without a steal (own deque pop, or continuing into a
    woken parent). *)

val queue_dispatch : t -> unit
(** A thread obtained from a global shared queue (FIFO / ADF). *)

val quota_exhausted : t -> unit
(** A processor hit its memory threshold and gave up its deque/thread. *)

val dummy_executed : t -> unit

val heavy_premature : t -> depth:int -> unit
(** A steal took a thread that was {e not} the highest-priority ready
    thread: its first node is a heavy premature node in the sense of
    Section 4.2 (executed out of 1DF order).  Lemma 4.2 bounds the expected
    number of these by O(p * D).  [depth] is the stolen thread's fork depth
    (recorded into {!premature_depth}). *)

val heavy_prematures : t -> int

val premature_depth : t -> Dfd_structures.Stats.Histogram.t
(** Fork depths of the stolen threads counted by {!heavy_premature} — the
    depth distribution behind the [p * D] term. *)

val deques_changed : t -> int -> unit
(** Track the current number of deques in R (watermark kept). *)

val steal_from : t -> victim:int -> unit
(** A successful steal hit this victim: the victim processor (WS) or the
    targeted slot among the leftmost deques of R (DFDeques).  Out-of-range
    victims clamp into [0, p) — the per-victim distribution Suksompong et
    al. study for localized work stealing. *)

val record_steal_latency : t -> int -> unit
(** Time units a thief spent without work before this successful steal (or
    global-queue dispatch). *)

val record_deque_residency : t -> int -> unit
(** Lifetime in time units of a deque just removed from R. *)

val record_quota_utilisation : t -> float -> unit
(** Percentage of the memory quota K consumed between two quota resets
    (steals), sampled at each reset; 100 means the quota was exhausted. *)

val actions : t -> int

val steals : t -> int

val steal_attempts : t -> int

val local_dispatches : t -> int

val queue_dispatches : t -> int

val quota_exhaustions : t -> int

val dummies : t -> int

val deque_peak : t -> int

val deque_current : t -> int

val per_proc_actions : t -> int array
(** Actions executed by each processor (copy). *)

val per_victim_steals : t -> int array
(** Successful steals per victim (copy; see {!steal_from}). *)

val steal_latency : t -> Dfd_structures.Stats.Histogram.t

val deque_residency : t -> Dfd_structures.Stats.Histogram.t

val quota_utilisation : t -> Dfd_structures.Stats.Histogram.t

val load_imbalance : t -> float
(** Max-over-mean of per-processor executed actions; 1.0 is perfect
    balance (the automatic load-balancing claim of the paper's
    introduction, point 2 of Section 1). *)

val sched_granularity : t -> float
(** actions / max(1, steals + queue dispatches). *)

val local_steal_ratio : t -> float
(** local dispatches / max(1, steals). *)
