(** A deliberately broken Chase–Lev deque ({b checker demonstration
    only}).

    [steal] replaces the correct deque's single compare-and-set on [top]
    with a non-atomic check-then-store, opening a window (marked by the
    {!Dfd_structures.Schedpoint.clev_steal_commit} yield point) in which
    two thieves can both take the same element and advance [top] twice —
    double delivery plus element loss.  The [clev_buggy] scenario drives
    this deque through the explorer, and the test suite asserts the bug
    is found within the default budget; the identical scenario shape over
    the real {!Dfd_structures.Clev} passes. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fixed capacity (default 64, rounded to a power of two); no resizing. *)

val push : 'a t -> 'a -> unit
(** Owner only. *)

val pop : 'a t -> 'a option
(** Owner only (this end is implemented correctly). *)

val steal : 'a t -> 'a option
(** Any thread — {b racy by design}, see above. *)

val length : 'a t -> int
