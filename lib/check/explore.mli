(** Deterministic schedule exploration for the lock-free structures and
    the native pool.

    The explorer runs a {!scenario}'s threads under a serialising
    controller: every controlled thread blocks at each
    {!Dfd_structures.Schedpoint} yield point, and the driver picks exactly
    one blocked thread at a time to run to its next point.  The
    interleaving is then fully determined by the driver's choice
    sequence, which makes every explored schedule {e replayable} — a
    failing schedule is identified by [(seed, iteration)] alone, and is
    shrunk to a minimal decision trace that can be saved to, and re-run
    from, a replay file.

    Schedules are chosen by a PCT-style controller (random distinct
    thread priorities with [depth - 1] random priority-change points;
    Burckhardt et al., "A randomized scheduler with probabilistic
    guarantees of finding bugs", ASPLOS 2010), all randomness drawn from
    a seeded splitmix64 stream ({!Dfd_structures.Prng}).

    Requirements on instrumented code (audited in DESIGN.md §11): every
    unbounded busy-wait contains a yield point, and no yield point sits
    inside a mutex-held critical section.  Controlled threads are domains,
    so pool scenarios can impersonate workers through
    {!Dfd_runtime.Pool.For_testing}. *)

type scenario = {
  name : string;
  descr : string;
  n_threads : int;  (** controlled threads the explorer serialises. *)
  approx_steps : int;
      (** rough decisions per iteration; scales the PCT change-point
          sampling horizon. *)
  prepare : Dfd_structures.Prng.t -> (int -> unit) * (unit -> (unit, string) result);
      (** [prepare rng] builds one iteration: the body run by each
          controlled thread, and an oracle the driver evaluates
          single-threaded after every body finished.  Must draw all its
          randomness from [rng] so iterations replay exactly. *)
}

type failure = {
  f_scenario : string;
  f_seed : int;
  f_iteration : int;  (** which iteration of the run failed. *)
  f_reason : string;
  f_choices : int list;  (** minimal reproducing thread-choice sequence. *)
  f_points : string list;
      (** yield-point names along the minimal trace (readability only;
          replay needs just the choices). *)
  f_shrunk : bool;
  f_replays : int;  (** replays spent confirming and shrinking. *)
}

type report = {
  r_scenario : string;
  r_seed : int;
  r_budget : int;
  r_iterations : int;  (** iterations executed (≤ budget; stops at first failure). *)
  r_depth : int;  (** PCT depth d: d-1 priority-change points. *)
  r_decisions : int;
  r_max_trace : int;
  r_failure : failure option;
}

val run :
  ?budget:int ->
  ?depth:int ->
  ?max_steps:int ->
  ?shrink_failures:bool ->
  seed:int ->
  scenario ->
  report
(** Explore [budget] (default 100) schedules of the scenario.  Each
    iteration draws its own generator from the [k]-th split of the seeded
    base stream, so a report is a pure function of
    [(scenario, seed, budget, depth, max_steps)] — byte-identical across
    runs.  [max_steps] (default 5000) bounds decisions per iteration (an
    iteration exceeding it counts as a failure).  On the first failing
    iteration the trace is shrunk (unless [shrink_failures] is [false])
    and exploration stops. *)

val replay : ?max_steps:int -> scenario -> failure -> string option
(** Re-run one recorded failure.  [Some reason] if it still fails,
    [None] if it passes.  Decisions beyond the recorded choices (or
    recorded choices naming a thread that is not enabled) fall back to
    the lowest-numbered enabled thread, deterministically. *)

val write_replay : string -> failure -> unit
(** Save a failure as a JSON replay file. *)

val read_replay : string -> failure
(** Parse a replay file (raises {!Dfd_trace.Json.Parse_error} or
    [Failure] on malformed input). *)

val failure_to_json : failure -> Dfd_trace.Json.t

val failure_of_json : Dfd_trace.Json.t -> failure

val pp_report : Format.formatter -> report -> unit

exception Aborted
(** Raised inside controlled threads when an iteration is torn down;
    scenario bodies should let it propagate. *)
