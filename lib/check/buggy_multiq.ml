(* A deliberately broken relaxed R-list, used to demonstrate that the
   explorer finds membership races in Multiq-shaped code within its
   default budget.

   Shaped like Dfd_structures.Multiq (shards of immutable sorted entry
   arrays, CAS insert publication, one-winner liveness flip) except that
   [remove]'s physical unpublish replaces the compare-and-set republish
   loop with a non-atomic read-filter-store: between reading the shard
   array and storing the filtered copy (the window marked by
   [Schedpoint.multiq_remove_commit] — the correct structure has a CAS
   there and hence no such window) a concurrent insert's CAS can land,
   and the remover's store then tears it out of the shard.  The lost
   entry is still live by its own flag but unreachable through the
   shard arrays — a member no thief can ever sample and no walk can
   see.  The [multiq_buggy] scenario drives this through the explorer;
   the identical scenario shape over the real Multiq passes. *)

module Schedpoint = Dfd_structures.Schedpoint

type 'a entry = { e_tag : int; e_value : 'a; e_live : bool Atomic.t }

type 'a t = { shard : 'a entry array Atomic.t; next_tag : int Atomic.t }

(* One shard: every membership operation collides, maximising the torn
   window without changing the bug. *)
let create () = { shard = Atomic.make [||]; next_tag = Atomic.make 0 }

let value e = e.e_value

let is_live e = Atomic.get e.e_live

(* Correct CAS publication, same as the real structure. *)
let insert q v =
  let e = { e_tag = Atomic.fetch_and_add q.next_tag 1; e_value = v; e_live = Atomic.make true } in
  let rec publish () =
    let arr = Atomic.get q.shard in
    Schedpoint.point Schedpoint.multiq_insert;
    let n = Array.length arr in
    let out = Array.make (n + 1) e in
    Array.blit arr 0 out 0 n;
    if not (Atomic.compare_and_set q.shard arr out) then publish ()
  in
  publish ();
  e

(* THE BUG: read-filter-store instead of a compare-and-set retry loop.
   The liveness flip is still one-winner, so the tear is purely in the
   physical membership. *)
let remove q e =
  if Atomic.compare_and_set e.e_live true false then begin
    let arr = Atomic.get q.shard in
    Schedpoint.point Schedpoint.multiq_remove_commit;
    Atomic.set q.shard (Array.of_list (List.filter (fun x -> x != e) (Array.to_list arr)));
    true
  end
  else false

let members q =
  List.filter is_live (Array.to_list (Atomic.get q.shard))
  |> List.sort (fun a b -> compare a.e_tag b.e_tag)

let to_list q = List.map value (members q)
