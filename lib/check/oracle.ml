(* The paper's theorems packaged as reusable test oracles, plus a
   differential oracle spanning the serial analysis, all four simulated
   policies, and the native pool.

   These are deliberately thin: each oracle states one checkable claim
   and returns a [result] (or a report record) instead of asserting, so
   every suite — unit, property, chaos, and the schedule explorer — can
   share the same checks and render its own diagnostics. *)

module Action = Dfd_dag.Action
module Prog = Dfd_dag.Prog
module Analysis = Dfd_dag.Analysis
module Config = Dfd_machine.Config
module Engine = Dfdeques_core.Engine
module Pool = Dfd_runtime.Pool

(* ------------------------------------------------------------------ *)
(* Lemma 3.1: R-order == 1DF priority order                            *)
(* ------------------------------------------------------------------ *)

(* The policy's own structural check (flattened R-list compared against
   the serial 1DF priority order) runs after every timestep; a violation
   raises [Failure].  Only meaningful for pure nested-parallel programs
   (no mutexes/condvars), as the engine documents. *)
let lemma31 ?(p = 4) ?(k = 128) ?(seed = 0) prog =
  let cfg = Config.analysis ~p ~mem_threshold:(Some k) ~seed () in
  match Engine.run ~sched:`Dfdeques ~check_invariants:true cfg prog with
  | (_ : Engine.result) -> Ok ()
  | exception Failure msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Theorem 4.4: space bound with measured constants                    *)
(* ------------------------------------------------------------------ *)

type thm44_report = {
  p : int;
  k : int;
  c : int;  (* the constant hiding in the O(.) *)
  s1 : int;
  depth : int;
  heap_peak : int;
  bound : int;  (* S1 + c * min(K, S1) * p * D *)
  ok : bool;
}

let thm44 ?(c = 8) ?(seed = 0) ~p ~k prog =
  let s = Analysis.analyze prog in
  let cfg = Config.analysis ~p ~mem_threshold:(Some k) ~seed () in
  let r = Engine.run ~sched:`Dfdeques cfg prog in
  let s1 = s.Analysis.serial_space in
  let depth = s.Analysis.depth in
  let bound = s1 + (c * min k s1 * p * depth) in
  { p; k; c; s1; depth; heap_peak = r.Engine.heap_peak; bound; ok = r.Engine.heap_peak <= bound }

let thm44_result r =
  if r.ok then Ok ()
  else
    Error
      (Printf.sprintf
         "Theorem 4.4 violated: peak %d > bound %d (S1=%d + %d*min(K=%d,S1)*p=%d*D=%d)"
         r.heap_peak r.bound r.s1 r.c r.k r.p r.depth)

(* ------------------------------------------------------------------ *)
(* Space accounting: engine counters vs the executed action stream     *)
(* ------------------------------------------------------------------ *)

(* Recompute the heap trajectory independently from the engine's
   [observer] stream (every executed action, including dummy threads and
   split big allocations) and compare peak / final / gross totals with
   the engine's own accounting. *)
let space_accounting ?(sched = `Dfdeques) cfg prog =
  let cur = ref 0 in
  let peak = ref 0 in
  let total = ref 0 in
  let observer ~now:_ ~proc:_ _thread a =
    cur := !cur + Action.alloc_bytes a - Action.free_bytes a;
    total := !total + Action.alloc_bytes a;
    if !cur > !peak then peak := !cur
  in
  let r = Engine.run ~sched ~observer cfg prog in
  let fail what engine recomputed =
    Error
      (Printf.sprintf "%s accounting mismatch under %s: engine=%d, action stream=%d"
         what (Engine.sched_name sched) engine recomputed)
  in
  if r.Engine.heap_peak <> !peak then fail "heap-peak" r.Engine.heap_peak !peak
  else if r.Engine.final_heap <> !cur then fail "final-heap" r.Engine.final_heap !cur
  else if r.Engine.total_alloc <> !total then fail "total-alloc" r.Engine.total_alloc !total
  else Ok ()

(* ------------------------------------------------------------------ *)
(* Differential oracle: serial 1DF vs simulators vs the native pool    *)
(* ------------------------------------------------------------------ *)

(* Side-effect totals of a program execution, accumulated atomically so
   the native pool's parallel run can share the accumulation code. *)
type totals = {
  t_work : int Atomic.t;
  t_alloc : int Atomic.t;
  t_free : int Atomic.t;
  t_touch : int Atomic.t;
}

let mk_totals () =
  { t_work = Atomic.make 0; t_alloc = Atomic.make 0; t_free = Atomic.make 0; t_touch = Atomic.make 0 }

let add a n = ignore (Atomic.fetch_and_add a n)

let account ?(alloc_hint = false) tot (a : Action.t) =
  match a with
  | Action.Work n -> add tot.t_work n
  | Action.Touch addrs -> add tot.t_touch (Array.length addrs)
  | Action.Alloc n ->
    add tot.t_alloc n;
    if alloc_hint then Pool.alloc_hint n
  | Action.Free n -> add tot.t_free n
  | Action.Dummy -> ()
  | Action.Lock _ | Action.Unlock _ | Action.Wait _ | Action.Signal _ | Action.Broadcast _ ->
    failwith "Oracle.differential: synchronisation action in nested-parallel program"

let totals_tuple t =
  (Atomic.get t.t_work, Atomic.get t.t_alloc, Atomic.get t.t_free, Atomic.get t.t_touch)

(* Interpret a Prog.t on the native pool with real fork-join.  [exec_upto]
   runs one thread's stream until its first *unmatched* Join, which by
   LIFO nesting belongs to the nearest enclosing fork; [Fork] therefore
   runs the child in parallel with exactly the parent segment up to that
   join, mirroring [Prog.par]. *)
let rec exec_upto tot t =
  match t with
  | Prog.Nil -> None
  | Prog.Act (a, rest) ->
    account ~alloc_hint:true tot a;
    exec_upto tot rest
  | Prog.Join rest -> Some rest
  | Prog.Fork (child, rest) -> (
    (* the cost model charges the fork itself as one unit action in the
       forking thread (Analysis.walk does the same in the reference) *)
    add tot.t_work 1;
    let (), cont =
      Pool.fork_join
        (fun () -> exec_thread tot (child ()))
        (fun () -> exec_upto tot rest)
    in
    match cont with
    | Some after -> exec_upto tot after
    | None -> failwith "Oracle.differential: thread terminated with unjoined child")

and exec_thread tot t =
  match exec_upto tot t with
  | None -> ()
  | Some _ -> failwith "Oracle.differential: join without matching fork"

let pool_totals ~domains ~policy prog =
  let tot = mk_totals () in
  let pool = Pool.create ~domains policy in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () -> Pool.run pool (fun () -> exec_thread tot prog));
  (tot, Pool.For_testing.live_tasks pool)

let serial_totals prog =
  let tot = mk_totals () in
  Analysis.iter_serial (account ~alloc_hint:false tot) prog;
  tot

let sim_scheds : Engine.sched list = [ `Ws; `Dfdeques; `Adf; `Fifo ]

let differential ?(p = 3) ?(seed = 0) ?(k = 512) ?(quota = 4096) ?(pool_domains = 2) prog =
  let s = Analysis.analyze prog in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let ( let* ) = Result.bind in
  (* 1. every simulated policy under infinite K executes exactly the
     program's dag: same work, same gross allocation, same final heap *)
  let sim_check sched =
    let cfg = Config.analysis ~p ~mem_threshold:None ~seed () in
    let r = Engine.run ~sched cfg prog in
    if r.Engine.work <> s.Analysis.work then
      err "%s: work %d <> serial %d" (Engine.sched_name sched) r.Engine.work s.Analysis.work
    else if r.Engine.total_alloc <> s.Analysis.total_alloc then
      err "%s: total_alloc %d <> serial %d" (Engine.sched_name sched) r.Engine.total_alloc
        s.Analysis.total_alloc
    else if r.Engine.final_heap <> s.Analysis.final_heap then
      err "%s: final_heap %d <> serial %d" (Engine.sched_name sched) r.Engine.final_heap
        s.Analysis.final_heap
    else Ok ()
  in
  let rec sims = function
    | [] -> Ok ()
    | sc :: rest ->
      let* () = sim_check sc in
      sims rest
  in
  let* () = sims sim_scheds in
  (* 2. finite-K DFDeques: memory accounting consistent with its own
     executed action stream (dummies and split allocations included) *)
  let* () =
    space_accounting ~sched:`Dfdeques (Config.analysis ~p ~mem_threshold:(Some k) ~seed ()) prog
  in
  (* 3. the native pool computes the same side-effect totals as the
     serial 1DF reference, under both deque disciplines, without leaking
     tasks *)
  let reference = totals_tuple (serial_totals prog) in
  let pool_check policy name =
    let tot, leaked = pool_totals ~domains:pool_domains ~policy prog in
    if leaked <> 0 then err "pool %s: %d task(s) leaked" name leaked
    else if totals_tuple tot <> reference then
      let w, a, f, t = totals_tuple tot in
      let w', a', f', t' = reference in
      err "pool %s: totals (work=%d alloc=%d free=%d touch=%d) <> serial (work=%d alloc=%d free=%d touch=%d)"
        name w a f t w' a' f' t'
    else Ok ()
  in
  let* () = pool_check Pool.Work_stealing "ws" in
  pool_check (Pool.Dfdeques { quota }) "dfdeques"
