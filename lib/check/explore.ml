(* Systematic schedule exploration over the Schedpoint yield points.

   The explorer serialises a small set of controlled threads: each one
   blocks at every yield point it reaches, and a driver (the calling
   thread) repeatedly picks exactly one blocked thread and lets it run to
   its next point.  With at most one thread running at any instant, the
   interleaving of the instrumented code is entirely determined by the
   driver's choice sequence — so a run is replayable from that sequence
   alone, and a randomised controller (PCT-style priorities) explores the
   interleaving space deterministically from a seed.

   Controlled threads are OCaml domains (not systhreads): the native pool
   identifies workers through Domain.DLS, so each controlled thread must
   be its own domain to impersonate a pool worker.  The domains are
   spawned once per session and reused across iterations via a generation
   counter.

   Soundness of the serialisation (no driver deadlock) rests on two
   properties of the instrumented code, both audited in DESIGN.md §11:
   every unbounded busy-wait loop contains a yield point, and no yield
   point sits inside a mutex-held critical section (so a running thread
   never blocks on a lock owned by a descheduled one). *)

module Prng = Dfd_structures.Prng
module Schedpoint = Dfd_structures.Schedpoint
module Json = Dfd_trace.Json

exception Aborted
(* Raised inside a controlled thread when the driver tears an iteration
   down (step budget exceeded, or another thread already failed). *)

type scenario = {
  name : string;
  descr : string;
  n_threads : int;
  approx_steps : int;
      (* rough decision-count scale, guides PCT change-depth sampling *)
  prepare : Prng.t -> (int -> unit) * (unit -> (unit, string) result);
      (* [prepare rng] builds one iteration: a body for each controlled
         thread (run concurrently under the explorer) and an oracle the
         driver runs single-threaded after all bodies finished. *)
}

(* ------------------------------------------------------------------ *)
(* The serialising controller                                          *)
(* ------------------------------------------------------------------ *)

type tstate =
  | Running  (* executing between points (or not yet at its first) *)
  | Waiting of int  (* blocked at the point with this id *)
  | Finished

type ctl = {
  m : Mutex.t;
  cond : Condition.t;
  n : int;
  states : tstate array;
  errors : string option array;  (* per-thread uncaught exception *)
  mutable grant : int;  (* thread allowed to proceed; -1 = none *)
  mutable abort : bool;
  mutable body : int -> unit;  (* current iteration's thread body *)
  mutable gen : int;  (* iteration generation, bumps to start one *)
  mutable quit : bool;
}

(* Which controlled thread (if any) the current domain is. *)
let slot : (ctl * int) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(* A controlled thread arriving at a yield point: publish the point and
   block until granted the next run segment (or aborted). *)
let enter ctl i id =
  Mutex.lock ctl.m;
  ctl.states.(i) <- Waiting id;
  Condition.broadcast ctl.cond;
  while ctl.grant <> i && not ctl.abort do
    Condition.wait ctl.cond ctl.m
  done;
  if ctl.abort then begin
    Mutex.unlock ctl.m;
    raise Aborted
  end;
  ctl.grant <- -1;
  ctl.states.(i) <- Running;
  Mutex.unlock ctl.m

let handler id =
  match !(Domain.DLS.get slot) with
  | Some (ctl, i) -> enter ctl i id
  | None -> ()  (* uncontrolled thread (the driver): pass through *)

let worker_main ctl i =
  Domain.DLS.get slot := Some (ctl, i);
  let my_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock ctl.m;
    while ctl.gen = !my_gen && not ctl.quit do
      Condition.wait ctl.cond ctl.m
    done;
    if ctl.quit then begin
      Mutex.unlock ctl.m;
      running := false
    end
    else begin
      my_gen := ctl.gen;
      let body = ctl.body in
      Mutex.unlock ctl.m;
      let error =
        try
          enter ctl i Schedpoint.start;
          body i;
          None
        with
        | Aborted -> None
        | e -> Some (Printexc.to_string e)
      in
      Mutex.lock ctl.m;
      ctl.errors.(i) <- error;
      ctl.states.(i) <- Finished;
      Condition.broadcast ctl.cond;
      Mutex.unlock ctl.m
    end
  done

let make_ctl n =
  {
    m = Mutex.create ();
    cond = Condition.create ();
    n;
    states = Array.make n Finished;
    errors = Array.make n None;
    grant = -1;
    abort = false;
    body = (fun _ -> ());
    gen = 0;
    quit = false;
  }

(* Session: handler installed, [n] worker domains up, torn down on exit.
   Exploration sessions never nest (the handler is process-global). *)
let with_session n f =
  if Schedpoint.active () then failwith "Explore: nested exploration sessions";
  let ctl = make_ctl n in
  Schedpoint.install handler;
  let doms = List.init n (fun i -> Domain.spawn (fun () -> worker_main ctl i)) in
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock ctl.m;
      ctl.quit <- true;
      Condition.broadcast ctl.cond;
      Mutex.unlock ctl.m;
      List.iter Domain.join doms;
      Schedpoint.uninstall ())
    (fun () -> f ctl)

(* Drain an aborted iteration: every controlled thread unwinds via
   [Aborted] at its next yield point (all busy-waits contain one). *)
let abort_iteration ctl =
  Mutex.lock ctl.m;
  ctl.abort <- true;
  ctl.grant <- -1;
  Condition.broadcast ctl.cond;
  while Array.exists (fun s -> s <> Finished) ctl.states do
    Condition.wait ctl.cond ctl.m
  done;
  ctl.abort <- false;
  Mutex.unlock ctl.m

type outcome = Pass | Fail of string

(* Run one iteration under [choose]: returns the outcome and the executed
   decision trace as (thread, point-id) pairs in order. *)
let run_iteration ctl ~max_steps ~choose ~(prepared : (int -> unit) * (unit -> (unit, string) result)) =
  let body, oracle = prepared in
  Mutex.lock ctl.m;
  ctl.body <- body;
  Array.fill ctl.states 0 ctl.n Running;
  Array.fill ctl.errors 0 ctl.n None;
  ctl.abort <- false;
  ctl.grant <- -1;
  ctl.gen <- ctl.gen + 1;
  Condition.broadcast ctl.cond;
  Mutex.unlock ctl.m;
  let trace = ref [] in
  let steps = ref 0 in
  let all_ready () =
    ctl.grant = -1
    && Array.for_all (fun s -> match s with Running -> false | _ -> true) ctl.states
  in
  let rec loop () =
    Mutex.lock ctl.m;
    while not (all_ready ()) do
      Condition.wait ctl.cond ctl.m
    done;
    let enabled = ref [] in
    for i = ctl.n - 1 downto 0 do
      match ctl.states.(i) with Waiting _ -> enabled := i :: !enabled | _ -> ()
    done;
    match !enabled with
    | [] ->
      (* all threads finished *)
      let err = ref None in
      Array.iteri
        (fun i e ->
          match (e, !err) with
          | Some msg, None -> err := Some (Printf.sprintf "thread %d raised: %s" i msg)
          | _ -> ())
        ctl.errors;
      Mutex.unlock ctl.m;
      (match !err with
       | Some reason -> Fail reason
       | None -> ( match oracle () with Ok () -> Pass | Error reason -> Fail reason))
    | enabled ->
      if !steps >= max_steps then begin
        Mutex.unlock ctl.m;
        abort_iteration ctl;
        Fail (Printf.sprintf "step budget exceeded (%d decisions)" max_steps)
      end
      else begin
        let point i = match ctl.states.(i) with Waiting id -> id | _ -> -1 in
        let c = choose ~step:!steps ~enabled ~point in
        trace := (c, point c) :: !trace;
        incr steps;
        ctl.grant <- c;
        Condition.broadcast ctl.cond;
        Mutex.unlock ctl.m;
        loop ()
      end
  in
  let outcome = loop () in
  (outcome, List.rev !trace)

(* ------------------------------------------------------------------ *)
(* Choosers                                                            *)
(* ------------------------------------------------------------------ *)

(* PCT-style randomised priorities (Burckhardt et al., ASPLOS 2010):
   distinct random priorities per thread, the highest-priority enabled
   thread always runs, and at [depth - 1] random decision indices the
   running thread's priority drops below everything seen so far.  A
   starvation guard additionally deprioritises any thread granted many
   consecutive decisions while others are enabled — spin-wait loops
   (e.g. the pool's join-await) otherwise monopolise the schedule. *)
let pct_chooser rng ~n ~depth ~approx_steps =
  let prio = Array.init n (fun i -> n - i) in
  (* Fisher-Yates under the iteration's own stream *)
  for i = n - 1 downto 1 do
    let j = Prng.int rng (i + 1) in
    let t = prio.(i) in
    prio.(i) <- prio.(j);
    prio.(j) <- t
  done;
  let horizon = max 1 approx_steps in
  let changes = Array.init (max 0 (depth - 1)) (fun _ -> 1 + Prng.int rng horizon) in
  let next_low = ref 0 in
  let deprioritise i =
    decr next_low;
    prio.(i) <- !next_low
  in
  let last = ref (-1) in
  let run_len = ref 0 in
  fun ~step ~enabled ~point:_ ->
    let best () =
      List.fold_left
        (fun acc i -> match acc with
           | Some b when prio.(b) >= prio.(i) -> acc
           | _ -> Some i)
        None enabled
      |> Option.get
    in
    let c = best () in
    (* priority-change point: demote whoever would run now *)
    let c =
      if Array.exists (fun d -> d = step) changes then begin
        deprioritise c;
        best ()
      end
      else c
    in
    let c =
      if c = !last then begin
        incr run_len;
        if !run_len > 50 && List.length enabled > 1 then begin
          deprioritise c;
          run_len := 0;
          best ()
        end
        else c
      end
      else begin
        run_len := 0;
        c
      end
    in
    last := c;
    c

(* Replay a recorded choice sequence; past its end (or if a recorded
   thread is not enabled — possible after shrinking edits) fall back to
   the lowest-numbered enabled thread, which keeps replay deterministic. *)
let replay_chooser choices =
  let arr = Array.of_list choices in
  fun ~step ~enabled ~point:_ ->
    let fallback () = List.fold_left min (List.hd enabled) enabled in
    if step < Array.length arr && List.mem arr.(step) enabled then arr.(step)
    else fallback ()

(* ------------------------------------------------------------------ *)
(* Seeds and derived streams                                           *)
(* ------------------------------------------------------------------ *)

(* Iteration [k] of seed [s] always draws from the k-th split of the base
   generator, so any single iteration replays without running the k-1
   before it. *)
let rng_for_iteration ~seed k =
  let base = Prng.create seed in
  let r = ref (Prng.split base) in
  for _ = 1 to k do
    r := Prng.split base
  done;
  !r

(* ------------------------------------------------------------------ *)
(* Reports, failures, replay files                                     *)
(* ------------------------------------------------------------------ *)

type failure = {
  f_scenario : string;
  f_seed : int;
  f_iteration : int;
  f_reason : string;
  f_choices : int list;  (* minimal reproducing decision sequence *)
  f_points : string list;  (* point names along the reproducing trace *)
  f_shrunk : bool;
  f_replays : int;  (* replays spent confirming + shrinking *)
}

type report = {
  r_scenario : string;
  r_seed : int;
  r_budget : int;
  r_iterations : int;  (* iterations actually executed *)
  r_depth : int;
  r_decisions : int;  (* total scheduling decisions across iterations *)
  r_max_trace : int;  (* longest single-iteration trace *)
  r_failure : failure option;
}

let failure_to_json f =
  Json.Assoc
    [
      ("scenario", Json.String f.f_scenario);
      ("seed", Json.Int f.f_seed);
      ("iteration", Json.Int f.f_iteration);
      ("reason", Json.String f.f_reason);
      ("shrunk", Json.Bool f.f_shrunk);
      ("replays", Json.Int f.f_replays);
      ("choices", Json.List (List.map (fun c -> Json.Int c) f.f_choices));
      ("points", Json.List (List.map (fun p -> Json.String p) f.f_points));
    ]

let failure_of_json j =
  {
    f_scenario = Json.to_string_exn (Json.member "scenario" j);
    f_seed = Json.to_int_exn (Json.member "seed" j);
    f_iteration = Json.to_int_exn (Json.member "iteration" j);
    f_reason = Json.to_string_exn (Json.member "reason" j);
    f_choices = List.map Json.to_int_exn (Json.to_list_exn (Json.member "choices" j));
    f_points = List.map Json.to_string_exn (Json.to_list_exn (Json.member "points" j));
    f_shrunk = (match Json.member "shrunk" j with Json.Bool b -> b | _ -> false);
    f_replays = (match Json.member "replays" j with Json.Int n -> n | _ -> 0);
  }

let write_replay path f =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.to_channel oc (failure_to_json f);
      output_char oc '\n')

let read_replay path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      failure_of_json (Json.of_string s))

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

(* Minimise a failing choice sequence by replay: first binary-search the
   shortest failing prefix (decisions past the prefix fall back to the
   deterministic lowest-enabled rule), then try deleting single decisions
   back-to-front.  Every candidate is validated by an actual replay, so
   the result is a true reproduction regardless of monotonicity. *)
let shrink ctl ~prepare_iteration ~max_steps ~budget choices =
  let replays = ref 0 in
  let attempt cs =
    incr replays;
    let outcome, trace =
      run_iteration ctl ~max_steps ~choose:(replay_chooser cs)
        ~prepared:(prepare_iteration ())
    in
    match outcome with Fail _ -> Some trace | Pass -> None
  in
  let best = ref choices in
  (* shortest failing prefix, by binary search *)
  let take k l = List.filteri (fun i _ -> i < k) l in
  let lo = ref 0 and hi = ref (List.length !best) in
  while !lo < !hi && !replays < budget do
    let mid = (!lo + !hi) / 2 in
    match attempt (take mid !best) with
    | Some _ ->
      hi := mid;
      best := take mid !best
    | None -> lo := mid + 1
  done;
  (* single-decision deletion pass *)
  let i = ref (List.length !best - 1) in
  while !i >= 0 && !replays < budget do
    let cand = List.filteri (fun j _ -> j <> !i) !best in
    (match attempt cand with Some _ -> best := cand | None -> ());
    decr i
  done;
  (!best, !replays)

(* ------------------------------------------------------------------ *)
(* Top-level runs                                                      *)
(* ------------------------------------------------------------------ *)

let default_budget = 100

let default_depth = 3

let default_max_steps = 5000

let shrink_replay_budget = 200

(* Fresh body+oracle for iteration [k]: scenario preparation must draw
   from the same stream every time the iteration is (re)played. *)
let prepare_for scenario ~seed k () =
  let r = rng_for_iteration ~seed k in
  scenario.prepare (Prng.split r)

let sched_rng_for ~seed k =
  let r = rng_for_iteration ~seed k in
  ignore (Prng.split r);
  (* prepare's split *)
  Prng.split r

let run ?(budget = default_budget) ?(depth = default_depth)
    ?(max_steps = default_max_steps) ?(shrink_failures = true) ~seed scenario =
  with_session scenario.n_threads (fun ctl ->
      let decisions = ref 0 in
      let max_trace = ref 0 in
      let failure = ref None in
      let iter = ref 0 in
      while !failure = None && !iter < budget do
        let k = !iter in
        let choose =
          pct_chooser (sched_rng_for ~seed k) ~n:scenario.n_threads
            ~depth ~approx_steps:scenario.approx_steps
        in
        let outcome, trace =
          run_iteration ctl ~max_steps ~choose
            ~prepared:(prepare_for scenario ~seed k ())
        in
        decisions := !decisions + List.length trace;
        max_trace := max !max_trace (List.length trace);
        (match outcome with
        | Pass -> ()
        | Fail reason ->
          let choices = List.map fst trace in
          let choices, points, reason, replays, shrunk =
            if shrink_failures then begin
              let minimal, replays =
                shrink ctl
                  ~prepare_iteration:(prepare_for scenario ~seed k)
                  ~max_steps ~budget:shrink_replay_budget choices
              in
              (* final confirming replay records the canonical trace *)
              let outcome, trace =
                run_iteration ctl ~max_steps
                  ~choose:(replay_chooser minimal)
                  ~prepared:(prepare_for scenario ~seed k ())
              in
              let reason =
                match outcome with Fail r -> r | Pass -> reason
              in
              ( minimal,
                List.map (fun (_, p) -> Schedpoint.name p) trace,
                reason,
                replays + 1,
                true )
            end
            else
              (choices, List.map (fun (_, p) -> Schedpoint.name p) trace, reason, 0, false)
          in
          failure :=
            Some
              {
                f_scenario = scenario.name;
                f_seed = seed;
                f_iteration = k;
                f_reason = reason;
                f_choices = choices;
                f_points = points;
                f_shrunk = shrunk;
                f_replays = replays;
              });
        incr iter
      done;
      {
        r_scenario = scenario.name;
        r_seed = seed;
        r_budget = budget;
        r_iterations = !iter;
        r_depth = depth;
        r_decisions = !decisions;
        r_max_trace = !max_trace;
        r_failure = !failure;
      })

let replay ?(max_steps = default_max_steps) scenario f =
  if scenario.name <> f.f_scenario then
    invalid_arg
      (Printf.sprintf "Explore.replay: failure is for scenario %s, not %s"
         f.f_scenario scenario.name);
  with_session scenario.n_threads (fun ctl ->
      let outcome, _trace =
        run_iteration ctl ~max_steps
          ~choose:(replay_chooser f.f_choices)
          ~prepared:(prepare_for scenario ~seed:f.f_seed f.f_iteration ())
      in
      match outcome with Fail reason -> Some reason | Pass -> None)

let pp_report ppf r =
  Format.fprintf ppf
    "scenario=%s seed=%d iterations=%d/%d depth=%d decisions=%d max-trace=%d result=%s"
    r.r_scenario r.r_seed r.r_iterations r.r_budget r.r_depth r.r_decisions
    r.r_max_trace
    (match r.r_failure with None -> "pass" | Some _ -> "FAIL");
  match r.r_failure with
  | None -> ()
  | Some f ->
    Format.fprintf ppf
      "@\n  iteration=%d reason=%s@\n  minimal trace (%d decisions%s, %d replays): %s"
      f.f_iteration f.f_reason (List.length f.f_choices)
      (if f.f_shrunk then ", shrunk" else "")
      f.f_replays
      (String.concat " "
         (List.map string_of_int f.f_choices))
