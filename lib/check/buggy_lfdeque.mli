(** A deliberately broken lock-free DFDeques deque ({b checker
    demonstration only}).

    Shaped like {!Dfd_structures.Lfdeque} — including the sticky
    ownership certificate and death-certificate reap test — but [steal]
    replaces the correct deque's single compare-and-set on [top] with a
    non-atomic check-then-store, opening a window (marked by the
    {!Dfd_structures.Schedpoint.lfdeque_steal_commit} yield point) in
    which two thieves can both take the same element and advance [top]
    twice — double delivery plus element loss.  The [lfdeque_buggy]
    scenario drives this deque through the explorer, and the test suite
    asserts the bug is found, shrunk and replayed within the default
    budget; the identical scenario shape over the real
    {!Dfd_structures.Lfdeque} passes. *)

type 'a t

val create : ?capacity:int -> ?owner:int -> unit -> 'a t
(** Fixed capacity (default 64, rounded to a power of two); no resizing. *)

val push : 'a t -> 'a -> unit
(** Owner only. *)

val pop : 'a t -> 'a option
(** Owner only (this end is implemented correctly). *)

val steal : 'a t -> 'a option
(** Any thread — {b racy by design}, see above. *)

val owner : 'a t -> int option

val abandon : 'a t -> unit
(** Sticky owner give-up (implemented correctly). *)

val is_dead : 'a t -> bool
(** Unowned and empty (implemented correctly). *)

val length : 'a t -> int
