(** A deliberately broken relaxed R-list ({b checker demonstration
    only}).

    Shaped like {!Dfd_structures.Multiq}, except [remove]'s physical
    unpublish is a non-atomic read-filter-store instead of a CAS retry
    loop.  In the window between its read and its store (marked by the
    {!Dfd_structures.Schedpoint.multiq_remove_commit} yield point — the
    correct structure has a compare-and-set there and hence no such
    window) a concurrent insert can publish and then be torn out of the
    shard: the entry stays live by its own flag but becomes unreachable
    through the membership arrays.  The [multiq_buggy] scenario drives
    this through the explorer, and the test suite asserts the torn
    membership is found and shrunk within the default budget; the
    identical scenario shape over the real Multiq passes. *)

type 'a t

type 'a entry

val create : unit -> 'a t
(** Single shard (every operation collides; the bug needs no spread). *)

val insert : 'a t -> 'a -> 'a entry
(** Correct CAS publication, as in the real structure. *)

val remove : 'a t -> 'a entry -> bool
(** One-winner liveness flip, then the {b racy-by-design} torn
    unpublish described above. *)

val value : 'a entry -> 'a

val is_live : 'a entry -> bool

val members : 'a t -> 'a entry list
(** Live entries still reachable through the shard array, in insertion
    order — a torn insert is live but missing here. *)

val to_list : 'a t -> 'a list
