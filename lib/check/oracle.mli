(** The paper's theorems as reusable test oracles, plus a differential
    oracle spanning the serial 1DF analysis, all four simulated policies
    and the native pool.

    Each oracle states one checkable claim and returns a [result] (or a
    report record) rather than asserting, so unit, property, chaos and
    explorer suites share the same checks. *)

val lemma31 : ?p:int -> ?k:int -> ?seed:int -> Dfd_dag.Prog.t -> (unit, string) result
(** Lemma 3.1: during a DFDeques simulation the deques in R, flattened
    left to right, hold threads in exactly serial 1DF priority order.
    Runs the engine with [check_invariants] (the policy's own structural
    check after every timestep) and converts a violation to [Error].
    The program must be pure nested-parallel (no mutex/condvar actions). *)

type thm44_report = {
  p : int;
  k : int;
  c : int;  (** the constant standing in for the bound's O(.). *)
  s1 : int;  (** serial space S1 of the program. *)
  depth : int;  (** depth D under the paper's cost model. *)
  heap_peak : int;  (** measured DFDeques(K) peak on [p] processors. *)
  bound : int;  (** S1 + c * min(K, S1) * p * D. *)
  ok : bool;
}

val thm44 : ?c:int -> ?seed:int -> p:int -> k:int -> Dfd_dag.Prog.t -> thm44_report
(** Theorem 4.4: the space of DFDeques(K) on [p] processors is
    S1 + O(min(K,S1)·p·D).  Measures the peak and compares against the
    bound instantiated with constant [c] (default 8, the repo's long-used
    empirical headroom). *)

val thm44_result : thm44_report -> (unit, string) result
(** [Ok ()] iff the report's bound held; [Error] renders the numbers. *)

val space_accounting :
  ?sched:Dfdeques_core.Engine.sched ->
  Dfd_machine.Config.t ->
  Dfd_dag.Prog.t ->
  (unit, string) result
(** Run a simulation while independently recomputing the heap trajectory
    from the engine's executed-action [observer] stream (dummy threads
    and split big allocations included), and compare peak, final and
    gross-total bytes against the engine's own counters. *)

val differential :
  ?p:int ->
  ?seed:int ->
  ?k:int ->
  ?quota:int ->
  ?pool_domains:int ->
  Dfd_dag.Prog.t ->
  (unit, string) result
(** The cross-implementation oracle.  For a pure nested-parallel program:

    - every simulated policy (WS, DFDeques, ADF, FIFO) under infinite K
      executes exactly the program's dag — work, gross allocation and
      final heap all equal the serial 1DF analysis;
    - finite-K DFDeques passes {!space_accounting};
    - the native pool, under both deque disciplines, computes the same
      side-effect totals (work units, alloc/free bytes, touched
      addresses) as the serial reference, and leaks no tasks.

    Programs containing mutex/condvar actions are rejected with
    [Failure] (generate with [lock_prob = 0.0]). *)
