(* A deliberately broken lock-free DFDeques deque, used to demonstrate
   that the explorer finds real ordering bugs in the lfdeque discipline
   within its default budget.

   Identical in shape to Dfd_structures.Lfdeque — including the sticky
   [owner] certificate and [is_dead], so the abandonment scenarios can
   run over it unchanged — except that [steal] replaces the single
   compare-and-set on [top] with a non-atomic check-then-store: two
   thieves can both observe [top = t], both pass the check, and both take
   element [t] (double delivery), after which the second store pushes
   [top] past an element nobody took (loss).  The window between the
   check and the store carries its own yield point
   ([Schedpoint.lfdeque_steal_commit]) — in the correct deque that window
   does not exist, because the CAS is one atomic step.

   Fixed capacity (no grow): the seeded scenarios never exceed it, and
   resizing is irrelevant to the bug being planted. *)

module Schedpoint = Dfd_structures.Schedpoint

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  mask : int;
  cells : 'a option Atomic.t array;
  owner : int option Atomic.t;
}

let create ?(capacity = 64) ?owner () =
  let cap = max 2 capacity in
  let rec pow2 c = if c >= cap then c else pow2 (c * 2) in
  let cap = pow2 1 in
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    mask = cap - 1;
    cells = Array.init cap (fun _ -> Atomic.make None);
    owner = Atomic.make owner;
  }

let cell q i = q.cells.(i land q.mask)

let owner q = Atomic.get q.owner

let abandon q =
  Schedpoint.point Schedpoint.lfdeque_abandon;
  Atomic.set q.owner None

let is_dead q =
  let unowned = Atomic.get q.owner = None in
  Schedpoint.point Schedpoint.lfdeque_reap;
  unowned && Atomic.get q.bottom - Atomic.get q.top <= 0

let push q x =
  let b = Atomic.get q.bottom in
  Schedpoint.point Schedpoint.lfdeque_push_cell;
  Atomic.set (cell q b) (Some x);
  Schedpoint.point Schedpoint.lfdeque_push_publish;
  Atomic.set q.bottom (b + 1)

let take c =
  let x = Atomic.get c in
  Atomic.set c None;
  x

let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  Schedpoint.point Schedpoint.lfdeque_pop_reserve;
  let t = Atomic.get q.top in
  let d = b - t in
  if d < 0 then begin
    Atomic.set q.bottom t;
    None
  end
  else if d = 0 then begin
    Schedpoint.point Schedpoint.lfdeque_pop_race;
    let won = Atomic.compare_and_set q.top t (t + 1) in
    Atomic.set q.bottom (t + 1);
    if won then take (cell q b) else None
  end
  else take (cell q b)

(* THE BUG: check-then-store instead of compare-and-set. *)
let steal q =
  let t = Atomic.get q.top in
  Schedpoint.point Schedpoint.lfdeque_steal_read;
  let b = Atomic.get q.bottom in
  if b - t <= 0 then None
  else begin
    let x = Atomic.get (cell q t) in
    Schedpoint.point Schedpoint.lfdeque_steal_cell;
    if Atomic.get q.top = t then begin
      Schedpoint.point Schedpoint.lfdeque_steal_commit;
      Atomic.set q.top (t + 1);
      x
    end
    else None
  end

let length q = max 0 (Atomic.get q.bottom - Atomic.get q.top)
