(** The scenario catalogue for {!Explore}.

    Chase–Lev scenarios share one oracle: every pushed value is delivered
    exactly once (owner pop, thief steal, or final drain) — the multiset
    identity that double delivery or loss breaks.  Pool scenarios run a
    real fork-join computation on a detached pool
    ({!Dfd_runtime.Pool.For_testing}) whose workers are played by
    controlled threads, checking the computed result, the task-count
    accounting and the absence of leaked tasks. *)

val clev_ops : Explore.scenario
(** Seeded owner push/pop mix against two concurrent thieves. *)

val clev_grow : Explore.scenario
(** Tiny initial buffer; pushes force grows under a concurrent thief. *)

val clev_wrap : Explore.scenario
(** Deque started at [max_int - 3]: churn across the overflow boundary. *)

val lfdeque_ops : Explore.scenario
(** CAS-only DFDeques deque ({!Dfd_structures.Lfdeque}): seeded owner
    push/pop mix against two concurrent thieves, exactly-once delivery. *)

val lfdeque_abandon : Explore.scenario
(** Owner abandonment (sticky give-up) and reap racing two thieves:
    exactly-once delivery, one-winner reap, and a reap only ever unlinks
    a deque whose death certificate held. *)

val lfdeque_reap : Explore.scenario
(** The reap-decision window: a pre-abandoned deque, a reaper looping
    [is_dead]-then-remove against a draining thief. *)

val multiq_ops : Explore.scenario
(** Relaxed R-list ({!Dfd_structures.Multiq}): concurrent CAS inserts
    against two racing removers; oracle checks one-winner removal and
    untorn membership. *)

val multiq_two_choice : Explore.scenario
(** Two-choice sampling under membership churn: every sampled victim
    must be a live member and the leftmost of both sampled shards. *)

val pool_ws : Explore.scenario
(** Fork-join fib on the work-stealing pool, two helping workers. *)

val pool_dfd : Explore.scenario
(** Same computation under DFDeques(K) with a quota small enough that
    every leaf allocation forces a give-up through the R-list. *)

val pool_crash_ws : Explore.scenario
(** Fork-join fib with a one-shot [worker_crash] armed on the
    work-stealing pool: the victim dies holding one unstarted task,
    survivors quarantine it and steal its leftovers back; the oracle
    audits the lineage ledger (no task lost, none run twice) and the
    degraded worker count. *)

val pool_crash_dfd : Explore.scenario
(** Same crash injection under DFDeques(K), triggered after the victim
    has usually run a task — quarantine must also abandon and reap the
    dead owner's R-list deque via the death-certificate protocol. *)

val clev_buggy : Explore.scenario
(** Drives {!Buggy_clev}; the explorer is expected to {e fail} this one.
    Excluded from {!all}. *)

val multiq_buggy : Explore.scenario
(** Drives {!Buggy_multiq} (torn membership on remove); the explorer is
    expected to {e fail} this one.  Excluded from {!all}. *)

val lfdeque_buggy : Explore.scenario
(** Drives {!Buggy_lfdeque} (check-then-store steal commit); the explorer
    is expected to {e fail} this one.  Excluded from {!all}. *)

val buggy : Explore.scenario
(** Alias for {!clev_buggy}. *)

val all : Explore.scenario list
(** Every correct scenario, the default set for [repro check]. *)

val find : string -> Explore.scenario option
(** Look up any scenario (including the buggy one) by name. *)
