(* The scenario catalogue for the schedule explorer.

   Each scenario is a small, seeded concurrent workload over the
   instrumented structures, paired with a post-hoc oracle the driver
   evaluates single-threaded.  The Chase-Lev scenarios all share one
   oracle shape: every pushed value is delivered exactly once (to the
   owner, a thief, or the final drain) — the multiset identity that any
   double delivery or lost element breaks.  The pool scenarios run a real
   fork-join computation on a detached pool whose worker roles are played
   by controlled threads, and check the result, the task accounting and
   the absence of leaked tasks. *)

module Prng = Dfd_structures.Prng
module Clev = Dfd_structures.Clev
module Lfdeque = Dfd_structures.Lfdeque
module Multiq = Dfd_structures.Multiq
module Fault = Dfd_fault.Fault
module Pool = Dfd_runtime.Pool

(* Every pushed value delivered exactly once.  [got] is the concatenation
   of everything popped, stolen and drained. *)
let multiset_result ~pushed ~got =
  let sort = List.sort compare in
  if sort got = sort pushed then Ok ()
  else begin
    let seen = Hashtbl.create 16 in
    let dup =
      List.find_opt
        (fun x ->
          let d = Hashtbl.mem seen x in
          Hashtbl.replace seen x ();
          d)
        got
    in
    let lost = List.filter (fun x -> not (List.mem x got)) pushed in
    let show l = String.concat "," (List.map string_of_int l) in
    Error
      (Printf.sprintf "delivery multiset mismatch: pushed=[%s] got=[%s]%s%s"
         (show (sort pushed)) (show (sort got))
         (match dup with
          | Some d -> Printf.sprintf " duplicate=%d" d
          | None -> "")
         (if lost <> [] then Printf.sprintf " lost=[%s]" (show lost) else ""))
  end

let drain pop =
  let rec go acc = match pop () with Some v -> go (v :: acc) | None -> acc in
  go []

(* ------------------------------------------------------------------ *)
(* Chase-Lev scenarios                                                 *)
(* ------------------------------------------------------------------ *)

(* Owner runs a seeded push/pop mix; two thieves each attempt a few
   steals; oracle drains the rest and checks exactly-once delivery. *)
let clev_ops =
  {
    Explore.name = "clev_ops";
    descr = "Chase-Lev: seeded owner push/pop mix vs two concurrent thieves";
    n_threads = 3;
    approx_steps = 60;
    prepare =
      (fun rng ->
        let q = Clev.create ~min_capacity:8 () in
        let n_ops = 6 + Prng.int rng 4 in
        let plan = List.init n_ops (fun _ -> Prng.int rng 3 < 2) in
        let pushed =
          let n = List.length (List.filter Fun.id plan) in
          List.init n Fun.id
        in
        let owner_got = ref [] in
        let thief_got = [| ref []; ref [] |] in
        let body i =
          if i = 0 then begin
            let next = ref 0 in
            List.iter
              (fun is_push ->
                if is_push then begin
                  Clev.push q !next;
                  incr next
                end
                else
                  match Clev.pop q with
                  | Some v -> owner_got := v :: !owner_got
                  | None -> ())
              plan
          end
          else
            for _ = 1 to 3 do
              match Clev.steal q with
              | Some v -> thief_got.(i - 1) := v :: !(thief_got.(i - 1))
              | None -> ()
            done
        in
        let oracle () =
          let rest = drain (fun () -> Clev.pop q) in
          multiset_result ~pushed
            ~got:(!owner_got @ !(thief_got.(0)) @ !(thief_got.(1)) @ rest)
        in
        (body, oracle));
  }

(* Tiny initial buffer: the owner's pushes force grows while a thief is
   mid-steal, exercising the buffer republication race. *)
let clev_grow =
  {
    Explore.name = "clev_grow";
    descr = "Chase-Lev: forced buffer grows under a concurrent thief";
    n_threads = 2;
    approx_steps = 50;
    prepare =
      (fun rng ->
        let q = Clev.create ~min_capacity:2 () in
        let n_push = 5 + Prng.int rng 3 in
        let pushed = List.init n_push Fun.id in
        let owner_got = ref [] in
        let thief_got = ref [] in
        let body i =
          if i = 0 then begin
            List.iter (Clev.push q) pushed;
            for _ = 1 to 2 do
              match Clev.pop q with
              | Some v -> owner_got := v :: !owner_got
              | None -> ()
            done
          end
          else
            for _ = 1 to 4 do
              match Clev.steal q with
              | Some v -> thief_got := v :: !thief_got
              | None -> ()
            done
        in
        let oracle () =
          let rest = drain (fun () -> Clev.pop q) in
          multiset_result ~pushed ~got:(!owner_got @ !thief_got @ rest)
        in
        (body, oracle));
  }

(* Start the logical indices just below [max_int]: the owner/thief churn
   crosses the signed-overflow boundary, validating the wraparound
   subtraction discipline under concurrency. *)
let clev_wrap =
  {
    Explore.name = "clev_wrap";
    descr = "Chase-Lev: index churn across the max_int overflow boundary";
    n_threads = 2;
    approx_steps = 50;
    prepare =
      (fun rng ->
        let q = Clev.create_at ~min_capacity:2 ~index:(max_int - 3) () in
        let n_push = 5 + Prng.int rng 2 in
        let pushed = List.init n_push Fun.id in
        let owner_got = ref [] in
        let thief_got = ref [] in
        let body i =
          if i = 0 then
            List.iter
              (fun v ->
                Clev.push q v;
                if v mod 3 = 2 then
                  match Clev.pop q with
                  | Some v -> owner_got := v :: !owner_got
                  | None -> ())
              pushed
          else
            for _ = 1 to 3 do
              match Clev.steal q with
              | Some v -> thief_got := v :: !thief_got
              | None -> ()
            done
        in
        let oracle () =
          let rest = drain (fun () -> Clev.pop q) in
          multiset_result ~pushed ~got:(!owner_got @ !thief_got @ rest)
        in
        (body, oracle));
  }

(* The planted bug: two thieves over Buggy_clev's check-then-store
   [steal].  The explorer must find the double delivery. *)
let clev_buggy =
  {
    Explore.name = "clev_buggy";
    descr = "deliberately broken steal (check-then-store): explorer must find it";
    n_threads = 2;
    approx_steps = 25;
    prepare =
      (fun _rng ->
        let q = Buggy_clev.create ~capacity:8 () in
        let pushed = [ 0; 1; 2 ] in
        List.iter (Buggy_clev.push q) pushed;
        let thief_got = [| ref []; ref [] |] in
        let body i =
          for _ = 1 to 2 do
            match Buggy_clev.steal q with
            | Some v -> thief_got.(i) := v :: !(thief_got.(i))
            | None -> ()
          done
        in
        let oracle () =
          let rest = drain (fun () -> Buggy_clev.pop q) in
          multiset_result ~pushed ~got:(!(thief_got.(0)) @ !(thief_got.(1)) @ rest)
        in
        (body, oracle));
  }

(* ------------------------------------------------------------------ *)
(* Lfdeque scenarios (the CAS-only DFDeques deque)                     *)
(* ------------------------------------------------------------------ *)

(* Owner/thief linearizability: a seeded owner push/pop mix against two
   concurrent thieves, same oracle shape as [clev_ops] — exactly-once
   delivery across owner pops, thief steals and the final drain. *)
let lfdeque_ops =
  {
    Explore.name = "lfdeque_ops";
    descr = "lfdeque: seeded owner push/pop mix vs two concurrent thieves";
    n_threads = 3;
    approx_steps = 60;
    prepare =
      (fun rng ->
        let q = Lfdeque.create ~min_capacity:2 ~owner:0 () in
        let n_ops = 6 + Prng.int rng 4 in
        let plan = List.init n_ops (fun _ -> Prng.int rng 3 < 2) in
        let pushed =
          let n = List.length (List.filter Fun.id plan) in
          List.init n Fun.id
        in
        let owner_got = ref [] in
        let thief_got = [| ref []; ref [] |] in
        let body i =
          if i = 0 then begin
            let next = ref 0 in
            List.iter
              (fun is_push ->
                if is_push then begin
                  Lfdeque.push q !next;
                  incr next
                end
                else
                  match Lfdeque.pop q with
                  | Some v -> owner_got := v :: !owner_got
                  | None -> ())
              plan
          end
          else
            for _ = 1 to 3 do
              match Lfdeque.steal q with
              | Some v -> thief_got.(i - 1) := v :: !(thief_got.(i - 1))
              | None -> ()
            done
        in
        let oracle () =
          let rest = drain (fun () -> Lfdeque.pop q) in
          multiset_result ~pushed
            ~got:(!owner_got @ !(thief_got.(0)) @ !(thief_got.(1)) @ rest)
        in
        (body, oracle));
  }

(* The abandonment/reap discipline against a concurrent thief: the deque
   lives in a Multiq (as in the pool's R), the owner pushes then
   abandons mid-stream and tries to reap, a thief steals and tries to
   reap, a second thief only steals.  Oracle: exactly-once delivery, the
   entry was removed by at most one winner, and removal implies the
   death certificate held (unowned + empty) — a reap must never strand
   a task inside an unlinked deque. *)
let lfdeque_abandon =
  {
    Explore.name = "lfdeque_abandon";
    descr = "lfdeque: owner abandonment and reap racing concurrent thieves";
    n_threads = 3;
    approx_steps = 70;
    prepare =
      (fun rng ->
        let r = Multiq.create ~shards:2 () in
        let q = Lfdeque.create ~min_capacity:2 ~owner:0 () in
        let e = Multiq.insert_front r q in
        let n_push = 2 + Prng.int rng 3 in
        let pushed = List.init n_push Fun.id in
        let owner_got = ref [] in
        let thief_got = [| ref []; ref [] |] in
        let removed_by = [| ref false; ref false; ref false |] in
        let try_reap i =
          if Lfdeque.is_dead q && Multiq.remove r e then removed_by.(i) := true
        in
        let body i =
          if i = 0 then begin
            List.iter (Lfdeque.push q) pushed;
            (match Lfdeque.pop q with
             | Some v -> owner_got := v :: !owner_got
             | None -> ());
            (* quota exhausted: sticky give-up, then the owner's own
               reap attempt — exactly the pool's [dfd_abandon] *)
            Lfdeque.abandon q;
            try_reap 0
          end
          else begin
            for _ = 1 to 3 do
              match Lfdeque.steal q with
              | Some v -> thief_got.(i - 1) := v :: !(thief_got.(i - 1))
              | None -> ()
            done;
            if i = 1 then try_reap 1
          end
        in
        let oracle () =
          let was_empty = Lfdeque.is_empty q in
          let was_live = Multiq.is_live e in
          let winners =
            Array.fold_left (fun n r -> if !r then n + 1 else n) 0 removed_by
          in
          let rest = drain (fun () -> Lfdeque.steal q) in
          match
            multiset_result ~pushed
              ~got:(!owner_got @ !(thief_got.(0)) @ !(thief_got.(1)) @ rest)
          with
          | Error _ as err -> err
          | Ok () ->
            if winners > 1 then Error "deque reaped by two winners"
            else if (not was_live) && winners = 0 then
              Error "entry dead with no reap winner"
            else if (not was_live) && not was_empty then
              Error "deque reaped while still holding tasks"
            else if was_live && Lfdeque.owner q <> None then
              Error "owner certificate not sticky: still owned after abandon"
            else Ok ()
        in
        (body, oracle));
  }

(* The reap-decision window itself: a pre-abandoned nonempty deque, one
   reaper looping the [is_dead]-then-remove sequence against a thief
   draining it.  The yield point inside [is_dead] (between the owner
   read and the emptiness read) is exactly where a wrong read order
   would let the reaper unlink a deque that still holds a task. *)
let lfdeque_reap =
  {
    Explore.name = "lfdeque_reap";
    descr = "lfdeque: death-certificate reap racing a draining thief";
    n_threads = 2;
    approx_steps = 50;
    prepare =
      (fun rng ->
        let r = Multiq.create ~shards:2 () in
        let q = Lfdeque.create ~min_capacity:2 ~owner:0 () in
        let e = Multiq.insert_front r q in
        let n_push = 1 + Prng.int rng 3 in
        let pushed = List.init n_push Fun.id in
        List.iter (Lfdeque.push q) pushed;
        Lfdeque.abandon q;
        let thief_got = ref [] in
        let reaped = ref false in
        let body i =
          if i = 0 then
            for _ = 1 to 3 do
              if (not !reaped) && Lfdeque.is_dead q && Multiq.remove r e then
                reaped := true
            done
          else
            for _ = 1 to n_push do
              match Lfdeque.steal q with
              | Some v -> thief_got := v :: !thief_got
              | None -> ()
            done
        in
        let oracle () =
          let was_empty = Lfdeque.is_empty q in
          let rest = drain (fun () -> Lfdeque.steal q) in
          match multiset_result ~pushed ~got:(!thief_got @ rest) with
          | Error _ as err -> err
          | Ok () ->
            if !reaped && not was_empty then
              Error "deque reaped while still holding tasks"
            else if !reaped && Multiq.is_live e then
              Error "reap won but entry still live"
            else if (not !reaped) && not (Multiq.is_live e) then
              Error "entry dead but no reap was recorded"
            else Ok ()
        in
        (body, oracle));
  }

(* The planted bug: two thieves over Buggy_lfdeque's check-then-store
   [steal].  The explorer must find the double delivery. *)
let lfdeque_buggy =
  {
    Explore.name = "lfdeque_buggy";
    descr =
      "deliberately broken lfdeque steal (check-then-store): explorer must find it";
    n_threads = 2;
    approx_steps = 25;
    prepare =
      (fun _rng ->
        let q = Buggy_lfdeque.create ~capacity:8 ~owner:0 () in
        let pushed = [ 0; 1; 2 ] in
        List.iter (Buggy_lfdeque.push q) pushed;
        let thief_got = [| ref []; ref [] |] in
        let body i =
          for _ = 1 to 2 do
            match Buggy_lfdeque.steal q with
            | Some v -> thief_got.(i) := v :: !(thief_got.(i))
            | None -> ()
          done
        in
        let oracle () =
          let rest = drain (fun () -> Buggy_lfdeque.pop q) in
          multiset_result ~pushed ~got:(!(thief_got.(0)) @ !(thief_got.(1)) @ rest)
        in
        (body, oracle));
  }

(* ------------------------------------------------------------------ *)
(* Multiq scenarios (the relaxed R-list behind the DFDeques pool)      *)
(* ------------------------------------------------------------------ *)

(* Exactly-once membership under concurrent insert/remove: thread 0
   inserts (front and after random anchors), threads 1-2 race to remove
   a shared prefix.  Oracle: each removal had exactly one winner, and
   the live set visible through the shards is exactly
   {inserted} \ {removed}. *)
let multiq_ops =
  {
    Explore.name = "multiq_ops";
    descr = "multiq: CAS membership — concurrent inserts vs racing removers";
    n_threads = 3;
    approx_steps = 60;
    prepare =
      (fun rng ->
        let q = Multiq.create ~shards:2 () in
        let pre = Array.init 3 (fun v -> Multiq.insert_front q v) in
        let n_ins = 2 + Prng.int rng 2 in
        let anchors = Array.init n_ins (fun _ -> Prng.int rng 4) in
        let inserted = ref [] in
        let wins = [| ref []; ref [] |] in
        let body i =
          if i = 0 then
            for k = 0 to n_ins - 1 do
              let v = 100 + k in
              let e =
                if anchors.(k) = 3 then Multiq.insert_front q v
                else Multiq.insert_after q pre.(anchors.(k)) v
              in
              inserted := e :: !inserted
            done
          else
            Array.iter
              (fun e -> if Multiq.remove q e then wins.(i - 1) := e :: !(wins.(i - 1)))
              pre
        in
        let oracle () =
          let won_by_both =
            List.exists (fun e -> List.memq e !(wins.(1))) !(wins.(0))
          in
          let n_wins = List.length !(wins.(0)) + List.length !(wins.(1)) in
          let live = List.map Multiq.value (Multiq.members q) |> List.sort compare in
          let expect = List.init n_ins (fun k -> 100 + k) in
          if won_by_both then Error "a removal had two winners"
          else if n_wins <> 3 then
            Error (Printf.sprintf "3 removals, %d winners" n_wins)
          else if Array.exists Multiq.is_live pre then Error "removed entry still live"
          else if List.exists (fun e -> not (Multiq.is_live e)) !inserted then
            Error "inserted entry not live"
          else if live <> expect then
            Error
              (Printf.sprintf "membership torn: live=[%s] expected=[%s]"
                 (String.concat "," (List.map string_of_int live))
                 (String.concat "," (List.map string_of_int expect)))
          else if Multiq.size q <> n_ins then
            Error (Printf.sprintf "size=%d, expected %d" (Multiq.size q) n_ins)
          else Ok ()
        in
        (body, oracle));
  }

(* Two-choice sampling under membership churn: thread 0 churns (inserts
   then removes its own entries), thread 1 samples and verifies inline —
   sound under the explorer because no yield point lies between
   [sample]'s head reads and the verification scan — that each victim is
   live, and is the leftmost member of both sampled shards (the property
   that confines rank error to the unsampled shards). *)
let multiq_two_choice =
  {
    Explore.name = "multiq_two_choice";
    descr = "multiq: two-choice samples are leftmost-of-both-shards members";
    n_threads = 2;
    approx_steps = 60;
    prepare =
      (fun rng ->
        let q = Multiq.create ~shards:2 () in
        let anchor = Multiq.insert_front q (-1) in
        let n_ops = 3 + Prng.int rng 2 in
        let plan = Array.init n_ops (fun _ -> Prng.int rng 2) in
        let draws = Array.init 4 (fun _ -> (Prng.int rng 2, Prng.int rng 2)) in
        let bad = ref None in
        let body i =
          if i = 0 then begin
            let mine = ref [] in
            Array.iter
              (fun op ->
                if op = 0 || !mine = [] then
                  mine := Multiq.insert_after q anchor (List.length !mine) :: !mine
                else begin
                  ignore (Multiq.remove q (List.hd !mine));
                  mine := List.tl !mine
                end)
              plan
          end
          else
            Array.iter
              (fun (i, j) ->
                match Multiq.sample q i j with
                | None ->
                  if Multiq.head q i <> None || Multiq.head q j <> None then
                    bad := Some "sample None with a non-empty sampled shard"
                | Some v ->
                  if not (Multiq.is_live v) then bad := Some "sampled a dead entry"
                  else
                    List.iter
                      (fun k ->
                        List.iter
                          (fun m ->
                            if Multiq.compare_entries v m > 0 then
                              bad := Some "sample not leftmost of its two shards")
                          (Multiq.members_of_shard q k))
                      [ i; j ])
              draws
        in
        let oracle () = match !bad with None -> Ok () | Some r -> Error r in
        (body, oracle));
  }

(* The planted bug: Buggy_multiq's read-filter-store remove racing a
   CAS insert.  The explorer must find the torn (lost) insert. *)
let multiq_buggy =
  {
    Explore.name = "multiq_buggy";
    descr = "deliberately torn multiq remove (read-filter-store): explorer must find it";
    n_threads = 2;
    approx_steps = 30;
    prepare =
      (fun _rng ->
        let q = Buggy_multiq.create () in
        let pre = Array.init 2 (fun v -> Buggy_multiq.insert q v) in
        let inserted = ref [] in
        let body i =
          if i = 0 then
            for v = 100 to 102 do
              inserted := Buggy_multiq.insert q v :: !inserted
            done
          else Array.iter (fun e -> ignore (Buggy_multiq.remove q e)) pre
        in
        let oracle () =
          let live = Buggy_multiq.to_list q |> List.sort compare in
          let expect = [ 100; 101; 102 ] in
          if live <> expect then
            Error
              (Printf.sprintf "membership torn: live=[%s] expected=[%s]"
                 (String.concat "," (List.map string_of_int live))
                 (String.concat "," (List.map string_of_int expect)))
          else Ok ()
        in
        (body, oracle));
  }

(* ------------------------------------------------------------------ *)
(* Pool scenarios                                                      *)
(* ------------------------------------------------------------------ *)

(* Number of forks a fork-join fib n performs: F(n) = 1 + F(n-1) + F(n-2),
   F(<2) = 0.  Every fork pushes exactly one task, and every pushed task
   runs exactly once, so the pool's [tasks_run] counter must equal it. *)
let rec forks_of_fib n = if n < 2 then 0 else 1 + forks_of_fib (n - 1) + forks_of_fib (n - 2)

let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)

(* A real fork-join computation on a detached pool: controlled thread 0
   plays worker 0 and computes fib; threads 1-2 play workers 1-2 and help
   (steal and run tasks) until the computation announces completion. *)
let pool_scenario ~name ~descr ~policy ~leaf =
  {
    Explore.name;
    descr;
    n_threads = 3;
    approx_steps = 400;
    prepare =
      (fun _rng ->
        let depth = 4 in
        let pool = Pool.For_testing.create_detached ~workers:3 policy in
        let result = ref (-1) in
        let finished = Atomic.make false in
        let body i =
          if i = 0 then
            Pool.For_testing.as_worker pool 0 (fun () ->
              let rec go n =
                if n < 2 then begin
                  leaf ();
                  n
                end
                else begin
                  let a, b =
                    Pool.fork_join (fun () -> go (n - 1)) (fun () -> go (n - 2))
                  in
                  a + b
                end
              in
              result := go depth;
              Atomic.set finished true)
          else
            Pool.For_testing.as_worker pool i (fun () ->
              while not (Atomic.get finished) do
                ignore (Pool.For_testing.help pool i)
              done)
        in
        let oracle () =
          if !result <> fib depth then
            Error (Printf.sprintf "fib %d = %d, expected %d" depth !result (fib depth))
          else if Pool.For_testing.live_tasks pool <> 0 then
            Error
              (Printf.sprintf "%d task(s) leaked in the pool"
                 (Pool.For_testing.live_tasks pool))
          else begin
            let c = Pool.counters pool in
            let expect = forks_of_fib depth in
            if c.tasks_run <> expect then
              Error
                (Printf.sprintf "tasks_run=%d, expected %d (forks of fib %d)"
                   c.tasks_run expect depth)
            else Ok ()
          end
        in
        (body, oracle));
  }

let pool_ws =
  pool_scenario ~name:"pool_ws"
    ~descr:"native pool, work stealing: fork-join fib with two helping workers"
    ~policy:Pool.Work_stealing
    ~leaf:(fun () -> ())

(* Small quota plus a per-leaf allocation hint forces quota give-ups, so
   task transfer flows through the sharded R-list paths too. *)
let pool_dfd =
  pool_scenario ~name:"pool_dfd"
    ~descr:"native pool, DFDeques(K): small quota forces R-list give-ups"
    ~policy:(Pool.Dfdeques { quota = 32 })
    ~leaf:(fun () -> Pool.alloc_hint 64)

(* The quarantine protocol under the explorer: the same fork-join fib,
   but with a one-shot [worker_crash] armed.  Helpers 1-2 take through
   the crash-eligible top-of-loop path ([help_top]); the take that trips
   the trigger kills its worker while it holds exactly one unstarted
   task.  Survivors quarantine the certificate (worker 0's await loop
   also scans), the held task flows back exactly once through the orphan
   stack, and the computation completes at p-1.  The crash is
   schedule-dependent — it fires only on interleavings where a helper
   wins enough takes — so the oracle is layered: result, leak and
   task-count accounting plus the lineage audit hold unconditionally;
   when the crash did fire, exactly one quarantine, one requeue and a
   degraded worker count must follow. *)
let pool_crash_scenario ~name ~descr ~policy ~trigger =
  {
    Explore.name;
    descr;
    n_threads = 3;
    approx_steps = 450;
    prepare =
      (fun rng ->
        let depth = 4 in
        let fault =
          Fault.create
            ~rates:{ Fault.zero_rates with Fault.worker_crash = Some trigger }
            ~seed:(Prng.int rng 1_000_000)
            ()
        in
        let pool = Pool.For_testing.create_detached ~fault ~workers:3 policy in
        let result = ref (-1) in
        let finished = Atomic.make false in
        let body i =
          if i = 0 then
            Pool.For_testing.as_worker pool 0 (fun () ->
              let rec go n =
                if n < 2 then n
                else begin
                  let a, b =
                    Pool.fork_join (fun () -> go (n - 1)) (fun () -> go (n - 2))
                  in
                  a + b
                end
              in
              result := go depth;
              Atomic.set finished true)
          else
            Pool.For_testing.as_worker pool i (fun () ->
              let rec loop () =
                if not (Atomic.get finished) then
                  match Pool.For_testing.help_top pool i with
                  | `Stopped -> () (* crashed: this worker's domain is dead *)
                  | `Ran -> loop ()
                  | `Idle ->
                    ignore (Pool.For_testing.scan pool ~proc:i);
                    loop ()
              in
              loop ())
        in
        let oracle () =
          let crashed = List.assoc "worker_crash" (Fault.counts fault) in
          if !result <> fib depth then
            Error (Printf.sprintf "fib %d = %d, expected %d" depth !result (fib depth))
          else if Pool.For_testing.live_tasks pool <> 0 then
            Error
              (Printf.sprintf "%d task(s) leaked in the pool"
                 (Pool.For_testing.live_tasks pool))
          else begin
            let c = Pool.counters pool in
            let expect = forks_of_fib depth in
            if c.tasks_run <> expect then
              Error
                (Printf.sprintf "tasks_run=%d, expected %d (forks of fib %d)"
                   c.tasks_run expect depth)
            else
              match Pool.verify_lineage pool with
              | Error m -> Error (Printf.sprintf "lineage audit: %s" m)
              | Ok () ->
                if crashed = 0 then
                  if Pool.quarantines pool <> 0 then
                    Error "quarantine recorded without a crash"
                  else Ok ()
                else if crashed <> 1 then
                  Error (Printf.sprintf "one-shot crash fired %d times" crashed)
                else if Pool.quarantines pool <> 1 then
                  Error
                    (Printf.sprintf "crash fired but %d quarantine(s) recorded"
                       (Pool.quarantines pool))
                else if Pool.degraded_p pool <> 2 then
                  Error (Printf.sprintf "degraded_p=%d, expected 2" (Pool.degraded_p pool))
                else if
                  List.length (List.filter (fun e -> e.Pool.requeued) (Pool.lineage pool))
                  <> 1
                then Error "held task not requeued exactly once"
                else Ok ()
          end
        in
        (body, oracle));
  }

(* Trigger 1: the victim dies on its very first take — the leanest
   quarantine, no deque to abandon.  Under work stealing the dead
   worker's Chase-Lev deque stays in place as a steal target. *)
let pool_crash_ws =
  pool_crash_scenario ~name:"pool_crash_ws"
    ~descr:"native pool, work stealing: injected worker crash, quarantine and steal-back"
    ~policy:Pool.Work_stealing ~trigger:1

(* Trigger 2: the victim has usually run a task first, so under
   DFDeques it owns an R-list deque that quarantine must abandon via the
   death-certificate protocol and reap. *)
let pool_crash_dfd =
  pool_crash_scenario ~name:"pool_crash_dfd"
    ~descr:"native pool, DFDeques(K): crash after first task, quarantine abandons the deque"
    ~policy:(Pool.Dfdeques { quota = 32 })
    ~trigger:2

(* ------------------------------------------------------------------ *)

let all =
  [
    clev_ops;
    clev_grow;
    clev_wrap;
    lfdeque_ops;
    lfdeque_abandon;
    lfdeque_reap;
    multiq_ops;
    multiq_two_choice;
    pool_ws;
    pool_dfd;
    pool_crash_ws;
    pool_crash_dfd;
  ]

let buggy = clev_buggy

let find name =
  List.find_opt
    (fun s -> s.Explore.name = name)
    (clev_buggy :: multiq_buggy :: lfdeque_buggy :: all)
