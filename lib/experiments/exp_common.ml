module Engine = Dfdeques_core.Engine
module Config = Dfd_machine.Config
module Workload = Dfd_benchmarks.Workload

type table = {
  title : string;
  paper_ref : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let render t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "== %s ==\n(reproduces %s)\n\n" t.title t.paper_ref);
  Buffer.add_string buf (Dfd_structures.Stats.Table.render ~header:t.header ~rows:t.rows);
  if t.notes <> [] then begin
    Buffer.add_char buf '\n';
    List.iter (fun n -> Buffer.add_string buf ("note: " ^ n ^ "\n")) t.notes
  end;
  Buffer.contents buf

let k50 = Some 50_000

let metrics_dir : string option ref = ref None

(* When [metrics_dir] is set (repro exp --metrics-dir), every engine run an
   experiment performs also drops its full machine-readable metrics there,
   one JSON file per run. *)
let dump_metrics ~sched ~p ~k ~seed (b : Workload.t) (r : Engine.result) =
  match !metrics_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let grain = Format.asprintf "%a" Workload.pp_grain b.Workload.grain in
    let file =
      Printf.sprintf "%s/%s_%s_%s_p%d_k%s_seed%d.json" dir b.Workload.name grain
        (Engine.sched_name sched) p
        (match k with None -> "inf" | Some k -> string_of_int k)
        seed
    in
    let oc = open_out file in
    Dfd_trace.Json.to_channel oc (Engine.result_to_json r);
    output_char oc '\n';
    close_out oc

let run_costed ?(p = 8) ?(k = k50) ?(seed = 42) ?(spin_locks = false) ~sched
    (b : Workload.t) =
  let cfg = Config.costed ~p ~mem_threshold:k ~seed () in
  let r = Engine.run ~sched ~spin_locks cfg (b.Workload.prog ()) in
  dump_metrics ~sched ~p ~k ~seed b r;
  r

let run_analysis ?(p = 8) ?(k = k50) ?(seed = 42) ~sched (b : Workload.t) =
  let cfg = Config.analysis ~p ~mem_threshold:k ~seed () in
  let r = Engine.run ~sched cfg (b.Workload.prog ()) in
  dump_metrics ~sched ~p ~k ~seed b r;
  r

let serial_cache : (string, int) Hashtbl.t = Hashtbl.create 16

let serial_time ?(seed = 42) (b : Workload.t) =
  let key = Format.asprintf "%s/%a/%d" b.Workload.name Workload.pp_grain b.Workload.grain seed in
  match Hashtbl.find_opt serial_cache key with
  | Some t -> t
  | None ->
    let r = run_costed ~p:1 ~seed ~sched:`Dfdeques b in
    Hashtbl.add serial_cache key r.Engine.time;
    r.Engine.time

let speedup ?(p = 8) ?(k = k50) ~sched ?(spin_locks = false) (b : Workload.t) =
  let t1 = serial_time b in
  let rp = run_costed ~p ~k ~sched ~spin_locks b in
  float_of_int t1 /. float_of_int rp.Engine.time

let fmt2 x = Printf.sprintf "%.2f" x
