(** Shared plumbing for the figure/table reproductions.

    Conventions used throughout the experiments:
    - {b speedup} on p processors = [T_ref(1) / T_sched(p)] under the {e
      costed} model, where the single-processor reference is DFDeques on one
      processor (which executes the serial 1DF schedule, i.e. "the
      single-processor multithreaded execution" of Section 5.2);
    - {b memory} is the heap high watermark in bytes unless stated;
    - the memory threshold defaults to the paper's K = 50,000 bytes;
    - every run is deterministic given the seed (default 42). *)

type table = {
  title : string;
  paper_ref : string;  (** which table/figure of the paper this regenerates. *)
  header : string list;
  rows : string list list;
  notes : string list;
}

val render : table -> string

val k50 : int option
(** The paper's default memory threshold: Some 50_000. *)

val metrics_dir : string option ref
(** When set (by [repro exp --metrics-dir DIR]), {!run_costed} and
    {!run_analysis} also write each run's {!Dfdeques_core.Engine.result_to_json}
    export to [DIR/<bench>_<grain>_<sched>_p<p>_k<K>_seed<seed>.json].
    The directory is created if missing. *)

val run_costed :
  ?p:int ->
  ?k:int option ->
  ?seed:int ->
  ?spin_locks:bool ->
  sched:Dfdeques_core.Engine.sched ->
  Dfd_benchmarks.Workload.t ->
  Dfdeques_core.Engine.result
(** Run a benchmark under the Section 5 performance model (cache + costs). *)

val run_analysis :
  ?p:int ->
  ?k:int option ->
  ?seed:int ->
  sched:Dfdeques_core.Engine.sched ->
  Dfd_benchmarks.Workload.t ->
  Dfdeques_core.Engine.result
(** Run under the pure Section 4.1 cost model (the Section 6 simulator). *)

val serial_time : ?seed:int -> Dfd_benchmarks.Workload.t -> int
(** Costed single-processor reference time (DFDeques, p=1, K=50k);
    memoised per benchmark name + grain. *)

val speedup : ?p:int -> ?k:int option -> sched:Dfdeques_core.Engine.sched ->
  ?spin_locks:bool -> Dfd_benchmarks.Workload.t -> float

val fmt2 : float -> string
(** Two-decimal float for table cells. *)
