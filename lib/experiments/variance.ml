module Engine = Dfdeques_core.Engine
module Analysis = Dfd_dag.Analysis
module W = Dfd_benchmarks.Workload

type summary = {
  runs : int;
  space_mean : float;
  space_max : int;
  space_bound : int;
  time_mean : float;
  time_max : int;
  time_bound : int;
}

let measure ?(runs = 25) ?(p = 16) ?(k = 4096) () =
  let runs = max 1 runs in
  (* >= 1 run, so the accumulators below are provably non-empty *)
  let b = Dfd_benchmarks.Synthetic.bench W.Fine in
  let s = Analysis.analyze (b.W.prog ()) in
  let space = Dfd_structures.Stats.Acc.create () in
  let time = Dfd_structures.Stats.Acc.create () in
  for seed = 1 to runs do
    let r = Exp_common.run_analysis ~p ~k:(Some k) ~seed ~sched:`Dfdeques b in
    Dfd_structures.Stats.Acc.add space (float_of_int r.Engine.heap_peak);
    Dfd_structures.Stats.Acc.add time (float_of_int r.Engine.time)
  done;
  {
    runs;
    space_mean = Option.get (Dfd_structures.Stats.Acc.mean_opt space);
    space_max = int_of_float (Option.get (Dfd_structures.Stats.Acc.max_opt space));
    space_bound = s.Analysis.serial_space + (min k s.Analysis.serial_space * p * s.Analysis.depth);
    time_mean = Option.get (Dfd_structures.Stats.Acc.mean_opt time);
    time_max = int_of_float (Option.get (Dfd_structures.Stats.Acc.max_opt time));
    time_bound = (s.Analysis.timed_work / p) + (s.Analysis.total_alloc / (p * k)) + s.Analysis.depth;
  }

let table () =
  let m = measure () in
  let frac a b = Printf.sprintf "%.4f" (a /. float_of_int b) in
  {
    Exp_common.title =
      Printf.sprintf "Expected-case concentration over %d seeds (synthetic, p=16, K=4096)" m.runs;
    paper_ref = "Theorems 4.4 & 4.8 (expected-case bounds), Lemmas 4.2/4.7 concentration";
    header = [ "metric"; "mean"; "max"; "bound(c=1)"; "mean/bound"; "max/bound" ];
    rows =
      [
        [
          "space (bytes)";
          Printf.sprintf "%.0f" m.space_mean;
          string_of_int m.space_max;
          string_of_int m.space_bound;
          frac m.space_mean m.space_bound;
          frac (float_of_int m.space_max) m.space_bound;
        ];
        [
          "time (steps)";
          Printf.sprintf "%.0f" m.time_mean;
          string_of_int m.time_max;
          string_of_int m.time_bound;
          frac m.time_mean m.time_bound;
          frac (float_of_int m.time_max) m.time_bound;
        ];
      ];
    notes =
      [
        "the max across seeds staying close to the mean (and far under the space";
        "bound, near 1x the time bound) is the concentration the paper's";
        "Chernoff arguments predict.";
      ];
  }
