type t = {
  limit : int;
  snapshot : unit -> string;
  mutable last : int;
  mutable fired : bool;
}

exception No_progress of { idle : int; limit : int; snapshot : string }

let create ?(limit = 1000) ~snapshot () = { limit; snapshot; last = 0; fired = false }

let touch t ~now = t.last <- now

let check t ~now =
  let idle = now - t.last in
  if idle > t.limit then begin
    t.fired <- true;
    raise (No_progress { idle; limit = t.limit; snapshot = t.snapshot () })
  end

let fired t = t.fired

let last_progress t = t.last
