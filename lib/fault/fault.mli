(** Deterministic, seeded fault injection for the scheduler and the native
    pool.

    A fault injector is a {e plan}: given a seed and a table of per-fault
    probabilities, it answers yes/no (or how-much) at each of the runtime's
    fault decision points, drawing every answer from one explicit
    splitmix64 stream.  Replaying the same seed against the same
    (deterministic) consumer therefore replays the exact same fault
    schedule — the property the chaos campaigns (`repro chaos`) and the
    failing-seed workflow depend on.

    Decision points (who asks, and what a positive answer does):

    - {!stall_steps} — the simulation engine, once per processor per
      timestep: the processor freezes for that many timesteps (a
      descheduled/slow core).
    - {!steal_fails} — every scheduler policy and the native pool, at each
      steal attempt: the attempt is forced to fail (lost arbitration,
      contended deque).
    - {!maybe_task_exn} — the native pool, at each forked task: the task
      raises {!Injected_failure} instead of running user code.
    - {!alloc_spike} — the engine, at each [Alloc] action under a finite
      memory threshold: that many extra bytes are charged against the
      processor's quota (an allocation burst past K).
    - {!lock_delay} — the engine, at each successful [Lock] acquisition:
      the critical section is stretched by that many timesteps (a slow
      lock holder).

    The injector is thread-safe (one mutex around the stream) so the
    native pool's worker domains may share it; under concurrency the
    {e interleaving} of draws is scheduling-dependent, so only the
    single-threaded simulator gets bitwise-identical fault schedules.
    Aggregate per-kind counts are kept exactly in both settings.

    {!none} is a shared disabled injector: every decision point returns
    "no fault" without consuming randomness, so threading it through the
    hot paths costs one branch. *)

type rates = {
  stall_prob : float;  (** per processor per timestep. *)
  stall_steps : int;  (** length of an injected stall (>= 1 when it fires). *)
  steal_fail_prob : float;  (** per steal attempt / queue dispatch. *)
  task_exn_prob : float;  (** per forked task (native pool only). *)
  alloc_spike_prob : float;  (** per [Alloc] action under finite K. *)
  alloc_spike_bytes : int;  (** extra quota bytes charged by a spike. *)
  lock_delay_prob : float;  (** per successful lock acquisition. *)
  lock_delay_steps : int;  (** extra timesteps the lock is held. *)
  worker_crash : int option;
      (** [Some n]: the first worker (>= 1) to take a task once the global
          take counter reaches [n] crashes — its domain dies holding the
          task, exercising the pool's quarantine path.  Fires exactly
          once; deterministic on the logical take clock (see
          {!worker_take}).  [None] (the default) never crashes. *)
  worker_wedge : int option;
      (** Like [worker_crash], but the victim wedges: it spins forever
          inside the scheduler without running the task or touching any
          pool structure, until quarantined by a supervisor.  Fires
          exactly once. *)
}

val zero_rates : rates
(** All probabilities 0 — a created-but-inert plan. *)

val default_rates : rates
(** The chaos-campaign default: frequent steal failures, occasional
    stalls, allocation spikes and lock delays, no task exceptions. *)

type t

val none : t
(** The shared disabled injector ({!enabled} = [false]); never injects. *)

val create : ?rates:rates -> seed:int -> unit -> t
(** A fresh enabled injector.  [rates] defaults to {!default_rates}. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** Turn injection off (or back on) without discarding the counters —
    lets a chaos campaign reuse a pool for a clean control run. *)

exception Injected_failure of string
(** The exception raised into user tasks by {!maybe_task_exn}.  The
    payload identifies the injection ("injected task exception #3"). *)

val stall_steps : t -> int
(** [0] = no fault; otherwise the number of timesteps to stall. *)

val steal_fails : t -> bool

val inject_task_exn : t -> bool
(** The bare decision; prefer {!maybe_task_exn} at the raise site. *)

val maybe_task_exn : t -> unit
(** Raise {!Injected_failure} if the plan injects here, else return. *)

val alloc_spike : t -> int
(** [0] = no fault; otherwise extra bytes to charge against the quota. *)

val lock_delay : t -> int
(** [0] = no fault; otherwise extra timesteps to hold the lock. *)

val worker_take : t -> worker:int -> [ `None | `Crash | `Wedge ]
(** The native pool calls this at every top-of-loop task-take by a worker
    domain (after obtaining a task, before running it).  Bumps the global
    take counter and answers whether this take triggers the plan's
    one-shot {!rates.worker_crash} / {!rates.worker_wedge} fault.
    Workers [<= 0] (the caller) never fire — crash domains only cover the
    spawned worker domains.  With both triggers [None] (the default) this
    is one branch, no lock. *)

val kind_names : string array
(** Stable names of the injectable fault kinds, {!counts} order:
    [stall; steal_fail; task_exn; alloc_spike; lock_delay; worker_crash;
    worker_wedge]. *)

val injected_total : t -> int
(** Faults injected so far, all kinds. *)

val counts : t -> (string * int) list
(** Per-kind injection counts, {!kind_names} order. *)
