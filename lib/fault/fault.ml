module Prng = Dfd_structures.Prng

type rates = {
  stall_prob : float;
  stall_steps : int;
  steal_fail_prob : float;
  task_exn_prob : float;
  alloc_spike_prob : float;
  alloc_spike_bytes : int;
  lock_delay_prob : float;
  lock_delay_steps : int;
  worker_crash : int option;
  worker_wedge : int option;
}

let zero_rates =
  {
    stall_prob = 0.0;
    stall_steps = 0;
    steal_fail_prob = 0.0;
    task_exn_prob = 0.0;
    alloc_spike_prob = 0.0;
    alloc_spike_bytes = 0;
    lock_delay_prob = 0.0;
    lock_delay_steps = 0;
    worker_crash = None;
    worker_wedge = None;
  }

let default_rates =
  {
    stall_prob = 0.02;
    stall_steps = 5;
    steal_fail_prob = 0.2;
    task_exn_prob = 0.0;
    alloc_spike_prob = 0.05;
    alloc_spike_bytes = 4096;
    lock_delay_prob = 0.25;
    lock_delay_steps = 8;
    worker_crash = None;
    worker_wedge = None;
  }

let kind_names =
  [| "stall"; "steal_fail"; "task_exn"; "alloc_spike"; "lock_delay"; "worker_crash"; "worker_wedge" |]

let i_stall = 0
let i_steal_fail = 1
let i_task_exn = 2
let i_alloc_spike = 3
let i_lock_delay = 4
let i_worker_crash = 5
let i_worker_wedge = 6

type t = {
  rng : Prng.t;
  rates : rates;
  counters : int array;
  mutable on : bool;
  mutable takes : int;
      (** task-takes observed so far, all workers — the logical clock the
          crash/wedge triggers count on. *)
  lock : Mutex.t;  (** serialises stream draws from the pool's domains. *)
}

exception Injected_failure of string

let make ~on ~rates seed =
  {
    rng = Prng.create seed;
    rates;
    counters = Array.make (Array.length kind_names) 0;
    on;
    takes = 0;
    lock = Mutex.create ();
  }

let none = make ~on:false ~rates:zero_rates 0

let create ?(rates = default_rates) ~seed () = make ~on:true ~rates seed

let enabled t = t.on

let set_enabled t b = t.on <- b

(* One Bernoulli draw; the counter bump happens under the same lock so the
   per-kind totals are exact even under domain concurrency. *)
let decide t i prob =
  if (not t.on) || prob <= 0.0 then false
  else begin
    Mutex.lock t.lock;
    let hit = Prng.float t.rng 1.0 < prob in
    if hit then t.counters.(i) <- t.counters.(i) + 1;
    Mutex.unlock t.lock;
    hit
  end

let stall_steps t =
  if decide t i_stall t.rates.stall_prob then max 1 t.rates.stall_steps else 0

let steal_fails t = decide t i_steal_fail t.rates.steal_fail_prob

let inject_task_exn t = decide t i_task_exn t.rates.task_exn_prob

let maybe_task_exn t =
  if inject_task_exn t then
    raise (Injected_failure (Printf.sprintf "injected task exception #%d" t.counters.(i_task_exn)))

let alloc_spike t =
  if decide t i_alloc_spike t.rates.alloc_spike_prob then max 1 t.rates.alloc_spike_bytes else 0

let lock_delay t =
  if decide t i_lock_delay t.rates.lock_delay_prob then max 1 t.rates.lock_delay_steps else 0

(* Crash-domain triggers.  Unlike the Bernoulli draws above these count on
   a logical clock — the global sequence of task-takes — so a plan like
   [worker_crash = Some 1] fires deterministically regardless of how the
   domains interleave: the first worker (>= 1; the caller never crashes)
   to take a task once the take counter reaches the trigger dies, exactly
   once.  The counter bump and the one-shot check share the injector's
   lock, so concurrent takers see a total order and exactly one fires. *)
let worker_take t ~worker =
  if (not t.on) || (t.rates.worker_crash = None && t.rates.worker_wedge = None) then `None
  else begin
    Mutex.lock t.lock;
    t.takes <- t.takes + 1;
    let fire i = function
      | Some n when t.takes >= n && t.counters.(i) = 0 ->
        t.counters.(i) <- 1;
        true
      | _ -> false
    in
    let r =
      if worker <= 0 then `None
      else if fire i_worker_crash t.rates.worker_crash then `Crash
      else if fire i_worker_wedge t.rates.worker_wedge then `Wedge
      else `None
    in
    Mutex.unlock t.lock;
    r
  end

let injected_total t = Array.fold_left ( + ) 0 t.counters

let counts t = Array.to_list (Array.mapi (fun i name -> (name, t.counters.(i))) kind_names)
