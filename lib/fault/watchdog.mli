(** No-progress watchdog: deadlock/livelock detection with a diagnostic
    snapshot.

    The owner calls {!touch} whenever real progress happens (an action
    executed, a task completed) and {!check} periodically; if more than
    [limit] time units pass without a touch, {!check} captures the owner's
    diagnostic snapshot — live counters, per-deque state, the recent trace
    ring, whatever the [snapshot] closure renders — and raises
    {!No_progress} carrying it.  The snapshot closure runs only on
    failure, so it may be arbitrarily expensive.

    Time is whatever monotonic unit the owner uses: simulator timesteps
    for the engine, milliseconds for wall-clock users.  The watchdog is
    passive (no thread of its own) and not synchronised; drive it from one
    thread, or from under the owner's lock. *)

type t

exception No_progress of { idle : int; limit : int; snapshot : string }
(** No {!touch} for [idle] > [limit] time units; [snapshot] is the
    diagnostic dump captured when the watchdog fired. *)

val create : ?limit:int -> snapshot:(unit -> string) -> unit -> t
(** [limit] defaults to 1000 (the engine's historical no-progress bound). *)

val touch : t -> now:int -> unit
(** Record progress at time [now]. *)

val check : t -> now:int -> unit
(** Raise {!No_progress} if the limit is exceeded at time [now]. *)

val fired : t -> bool
(** Whether {!check} ever raised. *)

val last_progress : t -> int
(** The time of the most recent {!touch} (0 before the first). *)
