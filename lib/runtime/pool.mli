(** A real multicore fork-join pool for OCaml 5 Domains implementing the
    paper's two deque disciplines.

    This is the "production library" face of the reproduction: the same
    scheduling algorithms that the simulator analyses, driving real OCaml
    closures on real domains.

    - {!Work_stealing} — one {e lock-free Chase–Lev deque} per worker,
      LIFO locally, thieves pop the bottom of a uniformly random victim
      (Blumofe–Leiserson / Cilk).  The owner's push/pop takes no lock and
      no CAS except on the last element; steals are arbitrated by one CAS.
    - {!Dfdeques} — the paper's algorithm: a globally ordered list R of
      deques; thieves pop the bottom of a deque near the leftmost-[p]
      window; a cooperative memory quota (fed by {!alloc_hint}) makes a
      worker abandon its deque and steal once it has allocated more than
      K bytes since its last steal, exactly the DFDeques(K) discipline at
      task granularity.  Unlike the paper's fully serialised Pthreads
      implementation (Section 5), there is {e no global lock at all}: R
      is a relaxed MultiQueue ({!Dfd_structures.Multiq}) of [2p] shards —
      membership insert/remove/thief-insert-after-victim are lock-free
      CAS on order-labelled entries, victim selection is two-choice
      sampling over shard heads, and task transfer is CAS-only through
      {!Dfd_structures.Lfdeque} (owner push/pop, thief steal, sticky
      abandonment and the lock-free death-certificate reap) — no
      DFDeques path takes a mutex at all.  The price is a bounded
      {e rank error} (a victim may sit a few positions right of the
      exact window), which the pool measures per steal and exposes via
      {!rank_error}, the [dfd_pool_steal_rank_error] registry histogram
      and [Steal_rank] trace events; the synchronization cost of the
      CAS discipline is itself measured ({!sync_ops},
      [dfd_pool_sync_ops]).  DESIGN.md §15 documents the MultiQueue and
      §16 the lock-free deque (CAS commit points, ABA and
      memory-ordering audit); §10 the lock hierarchy, now [trace_lock]
      only.

    Fork-join is work-first: {!fork_join} pushes the left branch and runs
    the right inline; on return it pops the left branch back if nobody
    stole it (the fast path runs both branches with zero synchronisation),
    otherwise it helps execute other tasks until the thief finishes.
    Exceptions propagate to the joining parent.

    Idle workers spin briefly with jittered exponential backoff, then park
    on a condition variable; each push wakes at most one parked worker, so
    wake-ups do not thundering-herd.  Scheduling counters are kept in
    per-worker records and aggregated only when read.
    [bench/pool_scale.exe] tracks the throughput/scalability trajectory of
    this layer (it emits [BENCH_pool.json]). *)

type t

type policy =
  | Work_stealing
  | Dfdeques of { quota : int }
      (** memory threshold K in bytes for the cooperative quota. *)

exception Not_in_pool
(** A pool operation ({!fork_join}, {!parallel_for}, ...) was called from
    outside {!run}. *)

exception Nested_run
(** {!run} was called from inside a pool task (re-entrant runs are not
    allowed). *)

exception Timeout
(** The {!run} [timeout] expired.  Raised by [run] itself after the
    in-flight computation has been cancelled and the deques drained; the
    pool is reusable afterwards. *)

exception Cancelled
(** Internal cooperative-cancellation signal: raised inside pool tasks
    once the {!run} deadline has passed so the computation unwinds.  User
    code only observes it if it catches-and-inspects exceptions crossing a
    {!fork_join}; [run] translates it to {!Timeout} at the boundary. *)

val create :
  ?domains:int ->
  ?tracer:Dfd_trace.Tracer.t ->
  ?fault:Dfd_fault.Fault.t ->
  ?registry:Dfd_obs.Registry.t ->
  ?flight:Dfd_obs.Flight.t ->
  ?respawn_budget:int ->
  policy ->
  t
(** [create ~domains policy] starts a pool with [domains] extra worker
    domains (default: [Domain.recommended_domain_count () - 1]).  The
    caller participates as a worker while inside {!run}.

    [tracer] (default {!Dfd_trace.Tracer.disabled}) receives structured
    scheduler events — steal attempts/successes, quota exhaustions, deque
    lifecycle, one [Action_batch] per task.  Unlike the simulator, event
    timestamps are wall-clock microseconds since pool creation, so traces
    export directly to Chrome/Perfetto at real-time scale.  Emits are
    serialised by a dedicated trace lock (taken only when the tracer is
    enabled — with tracing off the hot paths never read the clock), so
    any tracer is safe to share.

    [fault] (default {!Dfd_fault.Fault.none}): a seeded fault-injection
    plan for chaos testing.  The pool consults it at every steal attempt
    (forced failures, counted and traced as [Fault_injected]) and at every
    fork (injected task exceptions, which propagate to the joining parent
    exactly like user exceptions).

    [registry] (default {!Dfd_obs.Registry.disabled}): live-telemetry
    plane.  When enabled, the pool's hot-path events (steals and
    failures, local pops, quota giveups, tasks, task exceptions, parks,
    deque churn, [alloc_hint] bytes) additionally land in the registry's
    sharded [dfd_pool_*] counters, and gauges over live state
    (live tasks, parked workers, current K) are published as probes —
    queryable while the pool runs.  With the default disabled registry
    each instrument update is a single load-and-branch (measured by the
    obs-overhead pair in [bench/pool_scale.exe]).  Registration upserts,
    so pool incarnations respawned by a supervisor keep accumulating into
    the same series.

    [flight] (default {!Dfd_obs.Flight.disabled}): always-on crash
    forensics.  Rare events (steal successes, quota giveups, deque
    lifecycle, injected faults, task exceptions) are recorded into
    per-worker bounded rings that a supervisor dumps on [Timeout],
    watchdog kill or give-up — without enabling full tracing.

    [respawn_budget] (default 0): how many quarantined worker slots
    {!respawn_worker} may refill with fresh domains over the pool's
    lifetime.  0 means quarantined slots stay dead (the pool runs
    degraded at p-1, p-2, ...) and wholesale pool respawn remains the
    supervisor's backstop. *)

val run : ?timeout:float -> ?quota:int -> t -> (unit -> 'a) -> 'a
(** Execute a task (and all the parallel work it forks) to completion on
    the pool; the calling thread works too.  Re-entrant calls from inside
    pool tasks raise {!Nested_run}.

    [quota]: apply this memory threshold K (bytes) for the run — exactly
    {!set_quota} performed atomically with the run's start, so a
    multi-tenant driver can give each dispatched job its own tenant's K
    budget.  The value persists after the run (the next caller sets its
    own).  Raises [Invalid_argument] on a {!Work_stealing} pool or a
    non-positive quota, like {!set_quota}.

    [timeout] (seconds, wall clock): cancel the computation and raise
    {!Timeout} once the deadline passes.  Cancellation is cooperative —
    it takes effect at the next {!fork_join} or join-wait of any task, so
    a task that loops forever without touching the pool cannot be
    interrupted.  On timeout the leftover queued tasks are drained (each
    unwinds immediately via the cancellation signal) before {!Timeout} is
    raised, leaving the pool idle and reusable. *)

val fork_join : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** Run the two thunks in parallel, returning both results.  Must be
    called from inside {!run}.  The left thunk is the forked child (it is
    what thieves steal), the right runs in the current task — matching the
    paper's fork semantics. *)

val parallel_for : lo:int -> hi:int -> (int -> unit) -> unit
(** Binary fork-join tree over [lo, hi) — the standard nested-parallel
    loop encoding.  Must be called from inside {!run}. *)

val parallel_map : ('a -> 'b) -> 'a array -> 'b array
(** Parallel array map built on {!parallel_for}. *)

val parallel_reduce : zero:'a -> op:('a -> 'a -> 'a) -> lo:int -> hi:int -> (int -> 'a) -> 'a
(** Binary fork-join tree reduction of [f lo ... f (hi-1)] with an
    associative [op].  Must be called from inside {!run}. *)

val parallel_prefix_sum : zero:'a -> op:('a -> 'a -> 'a) -> 'a array -> 'a array
(** Exclusive prefix "sums" under an associative [op] (Blelloch two-phase
    scan over chunks).  [out.(i) = fold op zero arr.(0..i-1)].  Must be
    called from inside {!run}. *)

val alloc_hint : int -> unit
(** Report [n] bytes of allocation to the scheduler.  Under {!Dfdeques}
    this feeds the memory quota; under {!Work_stealing} only the
    [alloc_bytes] counter is touched (the pressure signal is still
    useful).  Called from outside {!run} it raises {!Not_in_pool}, like
    every other pool operation — a hint with no pool to charge is a
    bug, not a no-op. *)

val quota : t -> int option
(** The current memory threshold K of a {!Dfdeques} pool; [None] under
    {!Work_stealing}. *)

val set_quota : t -> int -> unit
(** Adjust the memory threshold K at runtime (one atomic store, no
    locks).  Each worker picks the new value up at its next steal, when
    its quota refills — the adjustment lever the adaptive controller in
    {!Dfd_service} uses to trade throughput for the Theorem 4.4 space
    bound [S1 + O(K·p·D)] under memory pressure.  Raises
    [Invalid_argument] on a {!Work_stealing} pool or a non-positive
    quota. *)

type counters = {
  steals : int;  (** successful steals *)
  steal_failures : int;  (** steal attempts that found nothing (real or injected) *)
  local_pops : int;  (** tasks taken from the worker's own deque *)
  quota_giveups : int;  (** deques abandoned on memory-quota exhaustion *)
  tasks_run : int;  (** tasks executed (all paths, including inline) *)
  task_exns : int;  (** tasks that raised (user, injected, or cancellation) *)
  alloc_bytes : int;  (** total bytes reported via {!alloc_hint} (both policies) *)
  parks : int;  (** times an idle worker parked on the condition variable *)
  r_inserts : int;
      (** R-membership inserts (own-deque creations + thief adoptions;
          DFDeques only) *)
  r_removes : int;  (** deques reaped from R (DFDeques only) *)
  sync_ops : int;
      (** synchronization operations (atomic RMWs and publishing stores,
          CAS retries included) on DFDeques scheduling paths; 0 under
          {!Work_stealing} *)
}

val counters : t -> counters
(** Typed snapshot of the pool's scheduling counters, aggregated across
    the per-worker records.  Each worker updates only its own record
    without synchronisation (this includes the DFD membership counters —
    no lock is taken to read any of them), so a snapshot taken while
    tasks are running may be slightly stale; it is exact once the pool
    is idle. *)

val sync_ops : t -> int
(** Total synchronization operations (atomic RMWs and publishing stores,
    CAS retries included) executed on DFDeques scheduling paths — push,
    pop, steal, abandonment, reap, and R membership — summed across the
    per-worker single-writer cells.  The Rito & Paulino sync-overhead
    metric: what the lock removal is measured by, not assumed from.
    Always 0 under {!Work_stealing}.  Exposed to the registry as the
    lazily-summed [dfd_pool_sync_ops] probe (the pool deliberately does
    not mirror it into a write-side counter — that would add an atomic
    RMW per operation just to count atomic RMWs) and per p in the
    [sync_ops] section of [BENCH_pool.json].  Same staleness contract as
    {!val-counters}. *)

val rank_error : t -> Dfd_structures.Stats.Histogram.t
(** Distribution of the rank error of every successful DFDeques steal:
    how many positions outside the exact leftmost-[min(p,|R|)] window
    the sampled victim sat (0 = the steal was indistinguishable from
    the exact discipline).  Merged from per-worker single-writer
    histograms at read, like {!val-counters}; always empty under
    {!Work_stealing}. *)

val heartbeat : t -> int
(** Monotonic progress counter: total tasks started across all workers.
    A cheap read (per-worker sum, no locks, no clock), intended as the
    progress clock for a no-progress watchdog
    ({!Dfd_fault.Watchdog.touch} on change, {!Dfd_fault.Watchdog.check}
    periodically) — the pool never stamps wall-clock time on the hot path
    for liveness purposes. *)

(** {2 Per-worker crash domains}

    The pool survives the death of an individual worker domain without
    losing or duplicating work.  A seeded {!Dfd_fault.Fault.t} crash
    fires inside a worker's top-of-loop take: the worker publishes a
    one-way death certificate and unwinds.  Any peer (or the caller, or
    an external supervisor via {!quarantine}) then {e quarantines} the
    slot: one CAS winner fences the slot's generation, recovers the
    taken-but-unstarted task exactly once (atomic exchange against the
    owner), requeues it through a lock-free orphan stack that all
    workers drain ahead of their deques, abandons the dead owner's
    DFDeques deque through the sticky death-certificate protocol so
    survivors steal its queued tasks back, and appends an audit record
    to the {!lineage} ledger.  The pool then runs degraded at
    [p - 1] — the Theorem 4.4 space bound [S1 + c·min(K,S1)·p·D]
    shrinks gracefully with it (see [Dfd_obs.Headroom.set_p]) — until
    {!respawn_worker} refills the slot under the [respawn_budget].
    {!verify_lineage} audits the whole episode after the fact: no task
    lost, none run twice.  DESIGN.md §17 gives the protocol and its
    memory-ordering audit. *)

type lineage_entry = {
  worker : int;
  cause : string;  (** ["crash"], ["wedge"] or ["respawn"]. *)
  requeued : bool;  (** a held task was recovered through the orphan stack. *)
  abandoned : bool;  (** a DFDeques deque was abandoned on the owner's behalf. *)
}

type worker_state = {
  w_activity : int;
      (** take-attempt clock: rises while the worker lives, even idle-stealing;
          flat = wedged or dead.  The watchdog's per-worker liveness signal. *)
  w_heartbeat : int;  (** tasks started by this worker. *)
  w_holding : bool;  (** a taken-but-unstarted task sits in the slot. *)
  w_stopped : bool;  (** the worker raised its own crash certificate. *)
  w_quarantined : bool;
}

val heartbeats : t -> int array
(** Per-worker split of {!heartbeat}: a supervisor diffing two reads can
    tell {e which} worker went flat, not just that someone did. *)

val worker_states : t -> worker_state array
(** Point-in-time crash-domain view of every worker slot (lock-free
    reads; same staleness contract as {!val-counters}). *)

val quarantine : ?cause:string -> t -> int -> bool
(** [quarantine pool w]: external supervisor verdict against worker [w]
    (cause defaults to ["wedge"]).  Returns [true] if this call won the
    quarantine (false: already quarantined).  Sound only against workers
    that are certifiably fenced — crashed (certificate raised) or wedged
    inside the scheduler with a flat {!worker_states} activity clock;
    quarantining a healthy worker is unsound and may duplicate or lose
    its in-flight push.  Raises [Invalid_argument] for the caller slot 0
    or an out-of-range worker. *)

val respawn_worker : t -> int -> bool
(** Spawn a fresh domain into a quarantined slot, spending one unit of
    the [respawn_budget].  Returns [false] (and does nothing) if the
    slot is not quarantined, the budget is exhausted, or the pool is
    shutting down.  Serialised internally; safe to call from any
    thread.  Raises [Invalid_argument] for slot 0 or out-of-range. *)

val degraded_p : t -> int
(** Live processor count: [n_workers] minus currently quarantined slots —
    the [p] the Theorem 4.4 budget should be instantiated with. *)

val lineage : t -> lineage_entry list
(** The crash-domain audit ledger, oldest first. *)

val quarantines : t -> int
(** Quarantine episodes recorded in {!lineage} (respawns excluded). *)

val verify_lineage : t -> (unit, string) result
(** Exactly-once recovery audit, meaningful once the pool is quiescent:
    no unquarantined crash certificates, the orphan stack drained, its
    push/pop counts balanced and equal to the ledger's requeue count,
    and each slot's quarantine/respawn history consistent with its live
    flag.  [Error] pinpoints the first violated invariant. *)

val metrics_samples : t -> Dfd_obs.Registry.sample list
(** {!counters} as registry snapshot samples (unlabelled names, marked
    unstable since native counters race) — the single flattening that
    {!stats} and the service's counter passthrough both derive from. *)

val stats : t -> (string * int) list
(** {!counters} flattened to association-list form for quick printing
    ([Dfd_obs.Registry.Snapshot.to_alist] over {!metrics_samples}). *)

val flight : t -> Dfd_obs.Flight.t
(** The flight recorder passed at {!create}
    ({!Dfd_obs.Flight.disabled} if none) — supervisors dump it on
    wedge/timeout post-mortems. *)

val snapshot : t -> string
(** Human-readable diagnostic dump: policy, counters, live-task and
    cancellation state, per-deque occupancy (and per-worker quota under
    {!Dfdeques}), and the total injected-fault count.  All reads are
    lock-free (per-worker counter aggregates; a relaxed walk of the R
    shards) — exact once the pool is idle, slightly stale while it runs;
    intended for hang post-mortems and watchdog reports, not hot
    paths. *)

val shutdown : t -> unit
(** Stop the worker domains.  The pool must be idle. *)

val kill : t -> unit
(** Forceful teardown for a supervisor that has declared the pool wedged
    (e.g. a task looping forever without touching the pool, beyond the
    reach of cooperative cancellation): signal shutdown and return
    {e without} joining the worker domains, so the caller can respawn a
    fresh pool immediately.  Idle and parked workers exit promptly; a
    genuinely stuck worker is abandoned until its task returns.  Call
    {!shutdown} later to reap the domains once they have exited. *)

(** Hooks for the systematic concurrency checker
    ({!module:Dfd_check.Explore}) — {b not} part of the scheduling API.
    The checker needs a pool whose every participating thread is under
    its control, so it creates one with worker slots but no spawned
    domains and drives the worker roles from threads it serialises
    through the {!Dfd_structures.Schedpoint} yield points. *)
module For_testing : sig
  val create_detached : ?fault:Dfd_fault.Fault.t -> ?respawn_budget:int -> workers:int -> policy -> t
  (** A pool with [workers] worker slots and {e no} worker domains.
      Work only progresses when some thread runs {!as_worker}/{!help}. *)

  val as_worker : t -> int -> (unit -> 'a) -> 'a
  (** [as_worker pool w f] runs [f] with the calling thread registered as
      worker [w] (so {!fork_join} etc. work), restoring the previous
      registration afterwards.  At most one live thread per worker slot. *)

  val help : t -> int -> bool
  (** One attempt by worker [w] to obtain and run a single task; [false]
      if none was found. *)

  val help_top : t -> int -> [ `Ran | `Idle | `Stopped ]
  (** Like {!help} but as a worker domain's top-of-loop step: armed
      crash/wedge faults may fire, and the crash path's internal unwind
      is surfaced as [`Stopped] instead of escaping. *)

  val scan : t -> proc:int -> int
  (** Quarantine every raised-but-unquarantined crash certificate, as
      peers do when they observe one pending; returns how many this call
      won. *)

  val live_tasks : t -> int
  (** Tasks pushed but not yet taken (0 once a computation is quiescent —
      the checker's leak oracle). *)
end
