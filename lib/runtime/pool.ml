module Deque = Dfd_structures.Deque
module Dll = Dfd_structures.Dll
module Prng = Dfd_structures.Prng
module Tracer = Dfd_trace.Tracer
module Event = Dfd_trace.Event
module Fault = Dfd_fault.Fault

exception Not_in_pool

exception Nested_run

exception Timeout

exception Cancelled

type task = unit -> unit

type policy = Work_stealing | Dfdeques of { quota : int }

(* A deque of the global list R (DFDeques) or of the fixed per-worker
   array (WS).  [did]/[born_us] feed the deque-lifecycle trace events. *)
type dq = { tasks : task Deque.t; mutable owner : int option; did : int; born_us : int }

type counters = {
  steals : int;
  steal_failures : int;
  local_pops : int;
  quota_giveups : int;
  tasks_run : int;
  task_exns : int;
}

type mutable_counters = {
  mutable c_steals : int;
  mutable c_steal_failures : int;
  mutable c_local_pops : int;
  mutable c_quota_giveups : int;
  mutable c_tasks_run : int;
  mutable c_task_exns : int;
}

type t = {
  policy : policy;
  n_workers : int;  (** worker domains + the caller *)
  lock : Mutex.t;
  work_available : Condition.t;
  (* WS: fixed deques, index = worker id.  DFD: the list R; [ws_deques] is
     unused. *)
  ws_deques : dq array;
  r : dq Dll.t;
  dfd_deque : dq Dll.node option array;  (** DFD: each worker's deque node. *)
  quota_left : int array;
  counters : mutable_counters;
  mutable live_tasks : int;  (** tasks pushed but not yet completed *)
  mutable shutting_down : bool;
  mutable domains : unit Domain.t list;
  rngs : Prng.t array;
  tracer : Tracer.t;
      (** event sink shared by all workers; only written under [lock]. *)
  fault : Fault.t;  (** fault-injection plan; {!Fault.none} by default. *)
  t0 : float;  (** pool creation wall clock; event stamps are µs since. *)
  mutable next_did : int;
  last_active_us : int array;  (** per worker, stamp of its last task. *)
  mutable deadline : float option;
      (** absolute wall-clock deadline of the current [run ~timeout]. *)
  mutable cancelled : bool;
      (** the deadline passed: fork_join/await bail out cooperatively. *)
}

(* Wall-clock event timestamp: microseconds since pool creation. *)
let now_us pool = int_of_float ((Unix.gettimeofday () -. pool.t0) *. 1e6)

(* Which worker the current domain/thread is, while inside [run]. *)
let worker_key : (int * t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let self () = !(Domain.DLS.get worker_key)

let self_exn () =
  match self () with
  | Some ctx -> ctx
  | None -> raise Not_in_pool

(* Cooperative cancellation: checked at every fork and await iteration.
   The first check past the deadline flips [cancelled]; every scheduler
   interaction after that raises, so the computation unwinds without
   creating new work.  Benign race: [cancelled] is a monotonic bool. *)
let check_cancel pool =
  if pool.cancelled then raise Cancelled;
  match pool.deadline with
  | Some d when Unix.gettimeofday () > d ->
    pool.cancelled <- true;
    raise Cancelled
  | _ -> ()

(* Bounded exponential backoff between failed steal attempts: capped so a
   worker never sleeps through real work for long, growing so contended
   steals do not hammer the pool lock. *)
let backoff_wait n =
  let spins = 1 lsl min n 8 in
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done

(* ------------------------------------------------------------------ *)
(* Deque plumbing (all under [pool.lock])                              *)
(* ------------------------------------------------------------------ *)

(* DFD only: allocate a deque of R, tracing its birth. *)
let new_dq pool ~proc ~owner =
  let born_us = if Tracer.enabled pool.tracer then now_us pool else 0 in
  let d = { tasks = Deque.create (); owner; did = pool.next_did; born_us } in
  pool.next_did <- pool.next_did + 1;
  if Tracer.enabled pool.tracer then
    Tracer.emit pool.tracer ~ts:born_us ~proc ~tid:(-1) (Event.Deque_created { did = d.did });
  d

(* DFD only: a deque leaves R. *)
let trace_dq_removed pool ~proc d =
  if Tracer.enabled pool.tracer then begin
    let ts = now_us pool in
    Tracer.emit pool.tracer ~ts ~proc ~tid:(-1)
      (Event.Deque_deleted { did = d.did; residency = ts - d.born_us })
  end

(* Give worker [w] a deque if it has none (DFD). *)
let dfd_own_deque pool w =
  match pool.dfd_deque.(w) with
  | Some node -> Dll.value node
  | None ->
    let d = new_dq pool ~proc:w ~owner:(Some w) in
    let node = Dll.push_front pool.r d in
    pool.dfd_deque.(w) <- Some node;
    d

let push_local pool w task =
  Mutex.lock pool.lock;
  pool.live_tasks <- pool.live_tasks + 1;
  (match pool.policy with
   | Work_stealing -> Deque.push_top pool.ws_deques.(w).tasks task
   | Dfdeques _ -> Deque.push_top (dfd_own_deque pool w).tasks task);
  Condition.signal pool.work_available;
  Mutex.unlock pool.lock

(* Called with the lock held, just after worker [w] obtained a task: one
   Action_batch event per task, wall-clock stamped. *)
let note_task_start pool w =
  pool.counters.c_tasks_run <- pool.counters.c_tasks_run + 1;
  if Tracer.enabled pool.tracer then begin
    let ts = now_us pool in
    pool.last_active_us.(w) <- ts;
    Tracer.emit pool.tracer ~ts ~proc:w ~tid:(-1) (Event.Action_batch { units = 1 })
  end

(* Pop our most recent push if it is still on top (the fork_join fast
   path).  Physical equality identifies the task. *)
let try_pop_exact pool w task =
  Mutex.lock pool.lock;
  let dq =
    match pool.policy with
    | Work_stealing -> Some pool.ws_deques.(w)
    | Dfdeques _ -> Option.map Dll.value pool.dfd_deque.(w)
  in
  let got =
    match dq with
    | Some d -> (
        match Deque.peek_top d.tasks with
        | Some t when t == task -> (
            match Deque.pop_top d.tasks with
            | Some _ ->
              pool.live_tasks <- pool.live_tasks - 1;
              note_task_start pool w;
              true
            | None -> false)
        | _ -> false)
    | None -> false
  in
  Mutex.unlock pool.lock;
  got

(* DFDeques give-up: leave the (nonempty) deque in R unowned. *)
let dfd_abandon pool w =
  match pool.dfd_deque.(w) with
  | None -> ()
  | Some node ->
    let d = Dll.value node in
    d.owner <- None;
    if Deque.is_empty d.tasks then begin
      Dll.remove pool.r node;
      trace_dq_removed pool ~proc:w d
    end;
    pool.dfd_deque.(w) <- None

(* A successful steal on worker [w]: count + trace it.  [latency] is µs
   since the worker last held a task. *)
let trace_steal_success pool w ~victim =
  pool.counters.c_steals <- pool.counters.c_steals + 1;
  if Tracer.enabled pool.tracer then begin
    let ts = now_us pool in
    Tracer.emit pool.tracer ~ts ~proc:w ~tid:(-1)
      (Event.Steal_success { victim; latency = ts - pool.last_active_us.(w) })
  end

let trace_steal_attempt pool w ~victim =
  if Tracer.enabled pool.tracer then
    Tracer.emit pool.tracer ~ts:(now_us pool) ~proc:w ~tid:(-1)
      (Event.Steal_attempt { victim })

(* Injected steal failure (chaos testing): charge a failed attempt without
   touching any deque.  Called with the lock held (tracer safety). *)
let injected_steal_failure pool w =
  let fail = Fault.steal_fails pool.fault in
  if fail then begin
    pool.counters.c_steal_failures <- pool.counters.c_steal_failures + 1;
    if Tracer.enabled pool.tracer then
      Tracer.emit pool.tracer ~ts:(now_us pool) ~proc:w ~tid:(-1)
        (Event.Fault_injected { fault = "steal_fail" })
  end;
  fail

(* One attempt to obtain a task; must hold the lock. *)
let try_get pool w =
  match pool.policy with
  | Work_stealing -> (
      match Deque.pop_top pool.ws_deques.(w).tasks with
      | Some t ->
        pool.counters.c_local_pops <- pool.counters.c_local_pops + 1;
        Some t
      | None when injected_steal_failure pool w -> None
      | None ->
        let victim = Prng.int pool.rngs.(w) pool.n_workers in
        trace_steal_attempt pool w ~victim;
        if victim = w then None
        else (
          match Deque.pop_bottom pool.ws_deques.(victim).tasks with
          | Some t ->
            trace_steal_success pool w ~victim;
            Some t
          | None ->
            pool.counters.c_steal_failures <- pool.counters.c_steal_failures + 1;
            None))
  | Dfdeques { quota } -> (
      let steal () =
        if injected_steal_failure pool w then None
        else
        let k = Prng.int pool.rngs.(w) pool.n_workers in
        trace_steal_attempt pool w ~victim:k;
        match Dll.nth_node pool.r k with
        | None ->
          pool.counters.c_steal_failures <- pool.counters.c_steal_failures + 1;
          None
        | Some node -> (
            let victim = Dll.value node in
            match Deque.pop_bottom victim.tasks with
            | None ->
              pool.counters.c_steal_failures <- pool.counters.c_steal_failures + 1;
              None
            | Some t ->
              trace_steal_success pool w ~victim:k;
              let nd = new_dq pool ~proc:w ~owner:(Some w) in
              let new_node = Dll.insert_after pool.r node nd in
              if Deque.is_empty victim.tasks && victim.owner = None then begin
                Dll.remove pool.r node;
                trace_dq_removed pool ~proc:w victim
              end;
              pool.dfd_deque.(w) <- Some new_node;
              pool.quota_left.(w) <- quota;
              Some t)
      in
      match pool.dfd_deque.(w) with
      | Some node when pool.quota_left.(w) <= 0 ->
        (* memory quota exhausted: abandon the deque and steal *)
        pool.counters.c_quota_giveups <- pool.counters.c_quota_giveups + 1;
        if Tracer.enabled pool.tracer then
          Tracer.emit pool.tracer ~ts:(now_us pool) ~proc:w ~tid:(-1)
            (Event.Quota_exhausted { used = quota - pool.quota_left.(w); quota });
        ignore node;
        dfd_abandon pool w;
        steal ()
      | Some node -> (
          let d = Dll.value node in
          match Deque.pop_top d.tasks with
          | Some t ->
            pool.counters.c_local_pops <- pool.counters.c_local_pops + 1;
            Some t
          | None ->
            (* empty own deque: delete it, then steal *)
            d.owner <- None;
            Dll.remove pool.r node;
            trace_dq_removed pool ~proc:w d;
            pool.dfd_deque.(w) <- None;
            steal ())
      | None -> steal ())

let run_task t = t ()

(* Grab one task and run it; returns false if none was found.  A task that
   escapes an exception must never tear down the worker that happened to
   run it: promise-backed tasks capture exceptions themselves ([fulfill]),
   so this is the belt-and-braces path for malformed raw tasks — count it
   and carry on. *)
let help_once pool w =
  Mutex.lock pool.lock;
  let got = try_get pool w in
  (match got with
   | Some _ ->
     pool.live_tasks <- pool.live_tasks - 1;
     note_task_start pool w
   | None -> ());
  Mutex.unlock pool.lock;
  match got with
  | Some t ->
    (try run_task t
     with _ ->
       Mutex.lock pool.lock;
       pool.counters.c_task_exns <- pool.counters.c_task_exns + 1;
       Mutex.unlock pool.lock);
    true
  | None -> false

(* ------------------------------------------------------------------ *)
(* Futures                                                             *)
(* ------------------------------------------------------------------ *)

type 'a outcome = Pending | Done of 'a | Failed of exn

type 'a promise = { mutable state : 'a outcome Atomic.t }

let promise () = { state = Atomic.make Pending }

let fulfill pool pr f =
  let v =
    match f () with
    | x -> Done x
    | exception e ->
      Mutex.lock pool.lock;
      pool.counters.c_task_exns <- pool.counters.c_task_exns + 1;
      Mutex.unlock pool.lock;
      Failed e
  in
  Atomic.set pr.state v

let await pool w pr =
  let rec go misses =
    match Atomic.get pr.state with
    | Done v -> v
    | Failed e -> raise e
    | Pending ->
      check_cancel pool;
      (* help: run other tasks while the thief finishes ours; back off
         when steals keep failing so contended pools don't spin hot *)
      if help_once pool w then go 0
      else begin
        backoff_wait misses;
        go (misses + 1)
      end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Worker domains                                                      *)
(* ------------------------------------------------------------------ *)

let worker_loop pool w =
  Domain.DLS.get worker_key := Some (w, pool);
  let misses = ref 0 in
  let rec loop () =
    if pool.shutting_down then ()
    else begin
      if help_once pool w then misses := 0
      else begin
        (* nothing runnable: sleep if the pool is idle, otherwise back off
           and retry — live tasks exist but our steal attempt lost *)
        Mutex.lock pool.lock;
        let idle = (not pool.shutting_down) && pool.live_tasks = 0 in
        if idle then Condition.wait pool.work_available pool.lock;
        Mutex.unlock pool.lock;
        if idle then misses := 0
        else begin
          incr misses;
          backoff_wait !misses
        end
      end;
      loop ()
    end
  in
  loop ()

let create ?domains ?(tracer = Tracer.disabled) ?(fault = Fault.none) policy =
  let extra =
    match domains with
    | Some d -> max 0 d
    | None -> max 0 (Domain.recommended_domain_count () - 1)
  in
  let n_workers = extra + 1 in
  let pool =
    {
      policy;
      n_workers;
      lock = Mutex.create ();
      work_available = Condition.create ();
      ws_deques =
        Array.init n_workers (fun i ->
            { tasks = Deque.create (); owner = Some i; did = i; born_us = 0 });
      r = Dll.create ();
      dfd_deque = Array.make n_workers None;
      quota_left =
        Array.make n_workers
          (match policy with Dfdeques { quota } -> quota | Work_stealing -> max_int);
      counters =
        {
          c_steals = 0;
          c_steal_failures = 0;
          c_local_pops = 0;
          c_quota_giveups = 0;
          c_tasks_run = 0;
          c_task_exns = 0;
        };
      live_tasks = 0;
      shutting_down = false;
      domains = [];
      rngs = Array.init n_workers (fun i -> Prng.create (1000 + i));
      tracer;
      fault;
      t0 = Unix.gettimeofday ();
      next_did = n_workers;
      last_active_us = Array.make n_workers 0;
      deadline = None;
      cancelled = false;
    }
  in
  pool.domains <- List.init extra (fun i -> Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

(* After cancellation the deques may still hold queued tasks whose parents
   have unwound: run them all (they raise [Cancelled] immediately or are
   cheap leftovers) so the pool is clean for the next [run]. *)
let drain pool =
  let misses = ref 0 in
  while pool.live_tasks > 0 do
    if help_once pool 0 then misses := 0
    else begin
      incr misses;
      backoff_wait !misses
    end
  done

let run ?timeout pool f =
  (match self () with Some _ -> raise Nested_run | None -> ());
  let ctx = Domain.DLS.get worker_key in
  ctx := Some (0, pool);
  pool.cancelled <- false;
  pool.deadline <- Option.map (fun s -> Unix.gettimeofday () +. s) timeout;
  Fun.protect
    ~finally:(fun () ->
      ctx := None;
      pool.deadline <- None)
    (fun () ->
       match f () with
       | v -> v
       | exception Cancelled when pool.cancelled ->
         drain pool;
         raise Timeout
       | exception e when pool.cancelled ->
         (* a user exception raced the cancellation; still leave the pool
            clean, but report the user's exception *)
         drain pool;
         raise e)

let fork_join fa fb =
  let w, pool = self_exn () in
  check_cancel pool;
  let fa =
    if Fault.enabled pool.fault then (fun () ->
        Fault.maybe_task_exn pool.fault;
        fa ())
    else fa
  in
  let pr = promise () in
  let task () = fulfill pool pr fa in
  push_local pool w task;
  let b = try Ok (fb ()) with e -> Error e in
  let a =
    if try_pop_exact pool w task then begin
      (* fast path: nobody stole it; run inline *)
      run_task task;
      match Atomic.get pr.state with
      | Done v -> v
      | Failed e -> raise e
      | Pending -> assert false
    end
    else await pool w pr
  in
  match b with Ok b -> (a, b) | Error e -> raise e

let rec parallel_for ~lo ~hi body =
  if hi - lo <= 0 then ()
  else if hi - lo = 1 then body lo
  else begin
    let mid = lo + ((hi - lo) / 2) in
    let (), () =
      fork_join (fun () -> parallel_for ~lo ~hi:mid body) (fun () -> parallel_for ~lo:mid ~hi body)
    in
    ()
  end

let parallel_map f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f arr.(0)) in
    parallel_for ~lo:0 ~hi:n (fun i -> out.(i) <- f arr.(i));
    out
  end

let alloc_hint n =
  match self () with
  | Some (w, pool) -> (
      match pool.policy with
      | Dfdeques _ ->
        Mutex.lock pool.lock;
        pool.quota_left.(w) <- pool.quota_left.(w) - n;
        Mutex.unlock pool.lock
      | Work_stealing -> ())
  | None -> ()

let counters pool =
  let c = pool.counters in
  {
    steals = c.c_steals;
    steal_failures = c.c_steal_failures;
    local_pops = c.c_local_pops;
    quota_giveups = c.c_quota_giveups;
    tasks_run = c.c_tasks_run;
    task_exns = c.c_task_exns;
  }

let stats pool =
  let c = counters pool in
  [
    ("steals", c.steals);
    ("steal_failures", c.steal_failures);
    ("local_pops", c.local_pops);
    ("quota_giveups", c.quota_giveups);
    ("tasks_run", c.tasks_run);
    ("task_exns", c.task_exns);
  ]

(* Human-readable diagnostic dump for hang post-mortems: every counter,
   the live-task and cancellation state, and each deque's occupancy.
   Takes the lock, so it is consistent — call it from a watchdog, not a
   hot path. *)
let snapshot pool =
  Mutex.lock pool.lock;
  let b = Buffer.create 256 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "pool snapshot (%s, %d workers)\n"
    (match pool.policy with
     | Work_stealing -> "WS"
     | Dfdeques { quota } -> Printf.sprintf "DFDeques(K=%d)" quota)
    pool.n_workers;
  pf "  live_tasks=%d shutting_down=%b cancelled=%b deadline=%s\n" pool.live_tasks
    pool.shutting_down pool.cancelled
    (match pool.deadline with
     | None -> "none"
     | Some d -> Printf.sprintf "%+.3fs" (d -. Unix.gettimeofday ()));
  List.iter (fun (k, v) -> pf "  %s=%d\n" k v)
    [
      ("steals", pool.counters.c_steals);
      ("steal_failures", pool.counters.c_steal_failures);
      ("local_pops", pool.counters.c_local_pops);
      ("quota_giveups", pool.counters.c_quota_giveups);
      ("tasks_run", pool.counters.c_tasks_run);
      ("task_exns", pool.counters.c_task_exns);
    ];
  pf "  faults_injected=%d\n" (Fault.injected_total pool.fault);
  (match pool.policy with
   | Work_stealing ->
     Array.iteri
       (fun i d -> pf "  deque[worker %d]: %d tasks\n" i (Deque.length d.tasks))
       pool.ws_deques
   | Dfdeques _ ->
     pf "  R has %d deques\n" (Dll.length pool.r);
     Dll.iter
       (fun d ->
          pf "  deque #%d owner=%s: %d tasks\n" d.did
            (match d.owner with None -> "-" | Some w -> string_of_int w)
            (Deque.length d.tasks))
       pool.r;
     Array.iteri (fun i q -> pf "  quota_left[worker %d]=%d\n" i q) pool.quota_left);
  Mutex.unlock pool.lock;
  Buffer.contents b

let shutdown pool =
  Mutex.lock pool.lock;
  pool.shutting_down <- true;
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.domains;
  pool.domains <- []

let parallel_reduce ~zero ~op ~lo ~hi f =
  let rec go lo hi =
    if hi - lo <= 0 then zero
    else if hi - lo = 1 then f lo
    else begin
      let mid = lo + ((hi - lo) / 2) in
      let a, b = fork_join (fun () -> go lo mid) (fun () -> go mid hi) in
      op a b
    end
  in
  go lo hi

(* Blelloch two-phase scan over [grain]-sized chunks: reduce each chunk in
   parallel, serially prefix the chunk sums (few chunks), then expand each
   chunk in parallel. *)
let parallel_prefix_sum ~zero ~op arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let grain = 1024 in
    let nchunks = (n + grain - 1) / grain in
    let sums = Array.make nchunks zero in
    parallel_for ~lo:0 ~hi:nchunks (fun c ->
        let lo = c * grain and hi = min n ((c + 1) * grain) in
        let acc = ref zero in
        for i = lo to hi - 1 do
          acc := op !acc arr.(i)
        done;
        sums.(c) <- !acc);
    let offsets = Array.make nchunks zero in
    for c = 1 to nchunks - 1 do
      offsets.(c) <- op offsets.(c - 1) sums.(c - 1)
    done;
    let out = Array.make n zero in
    parallel_for ~lo:0 ~hi:nchunks (fun c ->
        let lo = c * grain and hi = min n ((c + 1) * grain) in
        let acc = ref offsets.(c) in
        for i = lo to hi - 1 do
          out.(i) <- !acc;
          acc := op !acc arr.(i)
        done);
    out
  end
