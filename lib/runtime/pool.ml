module Lfdeque = Dfd_structures.Lfdeque
module Clev = Dfd_structures.Clev
module Multiq = Dfd_structures.Multiq
module Stats = Dfd_structures.Stats
module Prng = Dfd_structures.Prng
module Schedpoint = Dfd_structures.Schedpoint
module Tracer = Dfd_trace.Tracer
module Event = Dfd_trace.Event
module Fault = Dfd_fault.Fault
module Registry = Dfd_obs.Registry
module Flight = Dfd_obs.Flight

exception Not_in_pool

exception Nested_run

exception Timeout

exception Cancelled

(* Internal control-flow signal: a worker domain hit its injected crash
   (or was quarantined out from under a wedge) and must unwind its
   worker loop without running anything else.  Never escapes the pool. *)
exception Worker_stop

type task = unit -> unit

type policy = Work_stealing | Dfdeques of { quota : int }

(* A deque of the global list R (DFDeques only; the WS policy uses raw
   Chase–Lev deques).  Task transfer is CAS-only through [Lfdeque] —
   owner push/pop at the bottom, thief steals at the top, the sticky
   owner certificate and the [is_dead] reap test all live inside the
   structure, so there is no per-deque lock at all.  R membership lives
   in the lock-free [Multiq] (the deque's position is the [Multiq.entry]
   handle held in [dfd_deque] or by a sampling thief).  [did]/[born_us]
   feed the deque-lifecycle trace events. *)
type dq = { tasks : task Lfdeque.t; did : int; born_us : int }

type counters = {
  steals : int;
  steal_failures : int;
  local_pops : int;
  quota_giveups : int;
  tasks_run : int;
  task_exns : int;
  alloc_bytes : int;
  parks : int;
  r_inserts : int;
  r_removes : int;
  sync_ops : int;
}

(* One audit record per crash-domain transition, newest first in the
   pool's lineage ledger.  [cause] is "crash" (the worker's own death
   certificate), "wedge" (a supervisor's verdict) or "respawn" (a fresh
   domain spawned into the slot).  [requeued]: the worker held a
   taken-but-not-started task that was recovered exactly once through the
   orphan stack.  [abandoned]: a DFDeques deque was abandoned on the dead
   owner's behalf. *)
type lineage_entry = { worker : int; cause : string; requeued : bool; abandoned : bool }

type worker_state = {
  w_activity : int;  (** scheduler interactions (take attempts); rises while alive *)
  w_heartbeat : int;  (** tasks started by this worker *)
  w_holding : bool;  (** a taken-but-not-started task sits in the slot *)
  w_stopped : bool;  (** the worker raised its own crash certificate *)
  w_quarantined : bool;
}

(* One record per worker, written only by that worker (thief-side events —
   steals, failures — are charged to the thief).  Each record is its own
   heap block, so workers do not false-share counter cache lines; reads
   aggregate across workers and may be slightly stale, exactly the
   contract {!val-counters} documents. *)
type wcounters = {
  mutable c_steals : int;
  mutable c_steal_failures : int;
  mutable c_local_pops : int;
  mutable c_quota_giveups : int;
  mutable c_tasks_run : int;
  mutable c_task_exns : int;
  mutable c_alloc_bytes : int;
  mutable c_parks : int;
  mutable c_r_inserts : int;  (** R-membership inserts charged to this worker. *)
  mutable c_r_removes : int;  (** R-membership removals this worker won. *)
  mutable c_ticks : int;
      (** take attempts (every [try_get] entry) — the per-worker activity
          clock wedge detection compares against: an awaiting or stealing
          worker keeps ticking even when no task runs, while a wedged one
          goes flat.  Internal (not part of {!type-counters}). *)
  c_sync : int ref;
      (** synchronization ops (atomic RMWs and publishing stores, CAS
          retries included) this worker executed on DFDeques scheduling
          paths — the Lfdeque/Multiq [?ops] cells all point here.  A ref
          rather than a mutable field so the structures can bump it
          directly; still single-writer (thief-side ops are charged to
          the thief).  Aggregated by {!val-sync_ops} — deliberately not
          mirrored into a registry counter on the hot path, which would
          add an atomic RMW per operation just to count atomic RMWs; the
          registry exposes it as a lazy probe instead. *)
  c_rank_err : Stats.Histogram.t;
      (** rank error of this worker's successful steals; merged across
          workers by {!val-rank_error}.  Single-writer like the ints. *)
}

(* Live-telemetry instruments (lib/obs).  With the default disabled
   registry each of these is the shared no-op instrument: updating one is
   a single immutable load and branch, which the obs-overhead pair in
   bench/pool_scale.exe keeps honest.  With a real registry the pool's
   hot-path events additionally land in sharded atomic cells that stay
   queryable while the pool runs (and survive across the per-worker
   records of respawned pool incarnations, since registration upserts). *)
type obs = {
  o_steals : Registry.Counter.t;
  o_steal_failures : Registry.Counter.t;
  o_local_pops : Registry.Counter.t;
  o_quota_giveups : Registry.Counter.t;
  o_tasks_run : Registry.Counter.t;
  o_task_exns : Registry.Counter.t;
  o_alloc_bytes : Registry.Counter.t;
  o_parks : Registry.Counter.t;
  o_deques_created : Registry.Counter.t;
  o_deques_deleted : Registry.Counter.t;
  o_quarantines : Registry.Counter.t;
  o_requeues : Registry.Counter.t;
  o_respawns : Registry.Counter.t;
  o_rank_error : Registry.Histogram.t;
}

type t = {
  policy : policy;
  n_workers : int;  (** worker domains + the caller *)
  (* --- Work_stealing: one lock-free deque per worker --------------- *)
  ws_deques : task Clev.t array;
  (* --- Dfdeques: the relaxed ordered list R -------------------------
     Lock hierarchy: [trace_lock] only (plus the idle-parking pair,
     which no task-holding path touches).  R membership (insert, remove,
     the thief's insert-after-victim) is lock-free CAS in the [Multiq];
     victim selection is two-choice sampling over its shards; task
     transfer is CAS-only through [Lfdeque] — no DFDeques path takes a
     mutex while holding or transferring a task. *)
  r : dq Multiq.t;
  dfd_deque : dq Multiq.entry option array;
      (** each worker's owned deque, as its R-membership handle;
          owner-written.  The deque itself is [Multiq.value]. *)
  quota_left : int array;  (** owner-written only. *)
  dfd_quota : int Atomic.t;
      (** the current memory threshold K.  Seeded from the policy and
          adjustable at runtime ({!set_quota}) so a supervisor can trade
          throughput for the Theorem 4.4 space bound under memory
          pressure; workers pick the new value up at their next steal
          (quota refill), so adjustment costs one atomic store and no
          locks. *)
  (* --- shared scheduling state -------------------------------------- *)
  live_tasks : int Atomic.t;  (** tasks pushed but not yet taken. *)
  per_worker : wcounters array;
  idle_lock : Mutex.t;
  idle_cond : Condition.t;
  n_parked : int Atomic.t;
      (** atomic (not merely under [idle_lock]): the parker's
          [incr n_parked]/[read live_tasks] and the pusher's
          [incr live_tasks]/[read n_parked] form a Dekker pair, so both
          sides must be sequentially consistent for wake-ups to be
          lossless. *)
  shutting_down : bool Atomic.t;
  mutable domains : unit Domain.t list;
  rngs : Prng.t array;  (** per worker; only touched by its own worker. *)
  tracer : Tracer.t;
  trace_lock : Mutex.t;
      (** serialises tracer emits now that hot paths take no global lock;
          only ever taken when the tracer is enabled. *)
  fault : Fault.t;  (** fault-injection plan; {!Fault.none} by default. *)
  obs : obs;  (** registry instruments; no-ops under {!Registry.disabled}. *)
  flight : Flight.t;
      (** always-on crash-forensics ring ({!Flight.disabled} by default);
          only rare events are recorded, so the hot path stays clean. *)
  t0 : float;  (** pool creation wall clock; event stamps are µs since. *)
  next_did : int Atomic.t;
  last_active_us : int array;
      (** per worker, tracer-only stamp of its last task (steal latency). *)
  deadline : float option Atomic.t;
      (** absolute wall-clock deadline of the current [run ~timeout]. *)
  cancelled : bool Atomic.t;
      (** the deadline passed: fork_join/await bail out cooperatively. *)
  (* --- per-worker crash domains --------------------------------------
     All cross-domain crash state is atomic: the dying worker publishes
     its held task ([cur_task]) and its certificate ([stopped]) with SC
     stores, so a quarantiner that reads the certificate also sees every
     plain write the victim made before it (its [dfd_deque] handle in
     particular).  Quarantine itself is a one-winner CAS on
     [quarantined]; the held task moves through [cur_task] by atomic
     exchange, so it is either run by its owner or requeued by the
     quarantiner — never both. *)
  cur_task : task option Atomic.t array;
      (** per worker: the task it has taken but not yet started.  Filled
          at every take, emptied by exchange either by the worker itself
          (to run it) or by a quarantiner (to requeue it). *)
  stopped : bool Atomic.t array;  (** crash certificates, one-way. *)
  wedged : bool Atomic.t array;  (** diagnostic: victim entered the wedge spin. *)
  quarantined : bool Atomic.t array;
      (** one-winner quarantine flags; cleared only by {!respawn_worker}. *)
  wgen : int Atomic.t array;
      (** per-slot generation: bumped by quarantine (fences a wedged
          spinner out of its loop) and by respawn (new incarnation). *)
  crashed_pending : int Atomic.t;
      (** raised certificates not yet quarantined; peers scan when > 0. *)
  orphans : task list Atomic.t;
      (** Treiber stack of recovered held tasks, drained by [try_get]
          ahead of both policies' deques. *)
  n_orphan_pushes : int Atomic.t;
  n_orphan_pops : int Atomic.t;
  n_quarantined : int Atomic.t;  (** currently dead slots: [degraded_p] = n_workers - this. *)
  lineage : lineage_entry list Atomic.t;  (** newest first; lock-free prepend. *)
  respawn_budget : int Atomic.t;
  respawn_lock : Mutex.t;
      (** serialises {!respawn_worker} (cold path): the budget claim, the
          slot reset and the domain spawn must not interleave with a
          competing respawn of the same slot. *)
}

(* Wall-clock event timestamp: microseconds since pool creation.  Only
   called inside [Tracer.enabled] guards — the hot path never reads the
   clock when tracing is off. *)
let now_us pool = int_of_float ((Unix.gettimeofday () -. pool.t0) *. 1e6)

(* Which worker the current domain/thread is, while inside [run]. *)
let worker_key : (int * t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let self () = !(Domain.DLS.get worker_key)

let self_exn () =
  match self () with
  | Some ctx -> ctx
  | None -> raise Not_in_pool

(* Cooperative cancellation: checked at every fork and await iteration.
   The first check past the deadline flips [cancelled]; every scheduler
   interaction after that raises, so the computation unwinds without
   creating new work. *)
let check_cancel pool =
  if Atomic.get pool.cancelled then raise Cancelled;
  match Atomic.get pool.deadline with
  | Some d when Unix.gettimeofday () > d ->
    Atomic.set pool.cancelled true;
    raise Cancelled
  | _ -> ()

(* Bounded exponential backoff with full jitter between failed steal
   attempts: the spin count is drawn uniformly from [1, 2^n], so
   contending thieves decorrelate instead of retrying in lockstep (the
   old fixed 2^n schedule made every loser of a steal race wake at the
   same instant and collide again). *)
let backoff_wait rng n =
  let cap = 1 lsl min n 8 in
  let spins = 1 + Prng.int rng cap in
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done

(* After this many consecutive empty-handed rounds with no queued work at
   all, a worker parks on [idle_cond] instead of spinning. *)
let park_threshold = 8

(* ------------------------------------------------------------------ *)
(* Tracing plumbing (all behind [Tracer.enabled]; emits serialised by   *)
(* [trace_lock], the innermost lock in the hierarchy)                   *)
(* ------------------------------------------------------------------ *)

let emit_locked pool ~proc kind =
  Mutex.lock pool.trace_lock;
  Tracer.emit pool.tracer ~ts:(now_us pool) ~proc ~tid:(-1) kind;
  Mutex.unlock pool.trace_lock

(* Flight-recorder lane write: per-worker single-writer ring, so no lock;
   the clock is only read when the recorder is live, mirroring the tracer
   discipline.  Only rare events go through here (steal successes, quota
   giveups, deque lifecycle, faults, task exceptions, parks). *)
let flight_emit pool ~proc kind =
  if Flight.enabled pool.flight then
    Flight.recordk pool.flight ~lane:proc ~ts:(now_us pool) ~proc ~tid:(-1) kind

let trace_steal_attempt pool w ~victim =
  if Tracer.enabled pool.tracer then emit_locked pool ~proc:w (Event.Steal_attempt { victim })

let trace_dq_removed pool ~proc d =
  if Tracer.enabled pool.tracer then begin
    Mutex.lock pool.trace_lock;
    let ts = now_us pool in
    Tracer.emit pool.tracer ~ts ~proc ~tid:(-1)
      (Event.Deque_deleted { did = d.did; residency = ts - d.born_us });
    Mutex.unlock pool.trace_lock
  end

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

(* Worker [w] obtained a task (any path).  [c_tasks_run] doubles as the
   cheap monotonic heartbeat: watchdogs poll its sum instead of the pool
   stamping wall-clock times on the hot path. *)
let note_task_start pool w =
  let c = pool.per_worker.(w) in
  c.c_tasks_run <- c.c_tasks_run + 1;
  Registry.Counter.incr pool.obs.o_tasks_run;
  if Tracer.enabled pool.tracer then begin
    Mutex.lock pool.trace_lock;
    let ts = now_us pool in
    pool.last_active_us.(w) <- ts;
    Tracer.emit pool.tracer ~ts ~proc:w ~tid:(-1) (Event.Action_batch { units = 1 });
    Mutex.unlock pool.trace_lock
  end

let note_steal_success pool w ~victim =
  let c = pool.per_worker.(w) in
  c.c_steals <- c.c_steals + 1;
  Registry.Counter.incr pool.obs.o_steals;
  flight_emit pool ~proc:w (Event.Steal_success { victim; latency = 0 });
  if Tracer.enabled pool.tracer then begin
    Mutex.lock pool.trace_lock;
    let ts = now_us pool in
    Tracer.emit pool.tracer ~ts ~proc:w ~tid:(-1)
      (Event.Steal_success { victim; latency = ts - pool.last_active_us.(w) });
    Mutex.unlock pool.trace_lock
  end

let note_steal_failure pool w =
  let c = pool.per_worker.(w) in
  c.c_steal_failures <- c.c_steal_failures + 1;
  Registry.Counter.incr pool.obs.o_steal_failures

(* Injected steal failure (chaos testing): charge a failed attempt without
   touching any deque. *)
let injected_steal_failure pool w =
  let fail = Fault.steal_fails pool.fault in
  if fail then begin
    note_steal_failure pool w;
    flight_emit pool ~proc:w (Event.Fault_injected { fault = "steal_fail" });
    if Tracer.enabled pool.tracer then
      emit_locked pool ~proc:w (Event.Fault_injected { fault = "steal_fail" })
  end;
  fail

(* ------------------------------------------------------------------ *)
(* Idle parking                                                        *)
(* ------------------------------------------------------------------ *)

(* Wake at most one parked worker.  The pusher has already published the
   task and incremented [live_tasks] (both SC), so either the parker's
   re-check sees the work, or this read sees the parker — a wake-up can
   never be lost between the two.  Signalling one worker instead of
   broadcasting avoids the thundering herd the old single [Condition]
   produced: p-1 sleepers stampeding the lock for one task. *)
let signal_work pool =
  if Atomic.get pool.n_parked > 0 then begin
    Mutex.lock pool.idle_lock;
    Condition.signal pool.idle_cond;
    Mutex.unlock pool.idle_lock
  end

let park pool w =
  let c = pool.per_worker.(w) in
  c.c_parks <- c.c_parks + 1;
  Registry.Counter.incr pool.obs.o_parks;
  Mutex.lock pool.idle_lock;
  Atomic.incr pool.n_parked;
  (* a pending crash certificate also ends the nap: the crasher
     broadcasts, and the woken worker must scan-and-quarantine (the
     requeued task is not yet in [live_tasks]) *)
  while
    Atomic.get pool.live_tasks = 0
    && (not (Atomic.get pool.shutting_down))
    && Atomic.get pool.crashed_pending = 0
  do
    Condition.wait pool.idle_cond pool.idle_lock
  done;
  Atomic.decr pool.n_parked;
  Mutex.unlock pool.idle_lock

(* ------------------------------------------------------------------ *)
(* DFDeques: lock-free R membership (Multiq CAS paths) and CAS-only     *)
(* task transfer (Lfdeque)                                              *)
(* ------------------------------------------------------------------ *)

(* The worker's sync-op cell, handed to every Lfdeque/Multiq mutating
   call on its behalf. *)
let sync_cell pool w = pool.per_worker.(w).c_sync

let new_dq pool ~proc ~owner =
  let born_us = if Tracer.enabled pool.tracer then now_us pool else 0 in
  let d =
    {
      tasks = Lfdeque.create ?owner ();
      did = Atomic.fetch_and_add pool.next_did 1;
      born_us;
    }
  in
  Registry.Counter.incr pool.obs.o_deques_created;
  flight_emit pool ~proc (Event.Deque_created { did = d.did });
  if Tracer.enabled pool.tracer then
    emit_locked pool ~proc (Event.Deque_created { did = d.did });
  d

let note_r_insert pool w =
  let c = pool.per_worker.(w) in
  c.c_r_inserts <- c.c_r_inserts + 1

(* Reap [e]'s deque from R if it carries the death certificate.
   Entirely lock-free: [Lfdeque.is_dead] reads owner-then-emptiness, and
   because abandonment is sticky (a deque is never re-owned, so no push
   can follow the [None]) the certificate is stable once observed.
   Abandon and steal paths race to reap the same entry; [Multiq.remove]'s
   one-winner CAS charges the removal exactly once. *)
let reap_if_dead pool ~proc e =
  let d = Multiq.value e in
  if Multiq.is_live e && Lfdeque.is_dead d.tasks
     && Multiq.remove ~ops:(sync_cell pool proc) pool.r e
  then begin
    let c = pool.per_worker.(proc) in
    c.c_r_removes <- c.c_r_removes + 1;
    Registry.Counter.incr pool.obs.o_deques_deleted;
    flight_emit pool ~proc (Event.Deque_deleted { did = d.did; residency = 0 });
    trace_dq_removed pool ~proc d
  end

(* The worker's own deque, creating and inserting it at the front of R if
   it has none (a worker that just gave its deque away or is pushing its
   first task). *)
let dfd_own_deque pool w =
  match pool.dfd_deque.(w) with
  | Some e -> Multiq.value e
  | None ->
    let d = new_dq pool ~proc:w ~owner:(Some w) in
    pool.dfd_deque.(w) <- Some (Multiq.insert_front ~ops:(sync_cell pool w) pool.r d);
    note_r_insert pool w;
    d

(* Abandon the worker's deque (quota exhausted, or found empty): publish
   the sticky owner give-up and drop the deque from R if there is nothing
   left to steal from it.  The paper's discipline — a nonempty abandoned
   deque stays in R for thieves.  Forgetting the handle *before* the
   sticky store becomes visible is what makes [Lfdeque.is_dead] sound:
   once any reader sees [owner = None], this worker can no longer reach
   the deque to push. *)
let dfd_abandon pool w =
  match pool.dfd_deque.(w) with
  | None -> ()
  | Some e ->
    pool.dfd_deque.(w) <- None;
    Lfdeque.abandon ~ops:(sync_cell pool w) (Multiq.value e).tasks;
    reap_if_dead pool ~proc:w e

(* Rank error of a successful steal: how far the sampled victim sat
   outside the exact leftmost-min(p,|R|) window the paper steals from.
   The O(|R|) rank scan runs on every successful steal — a bargain
   against the old design, which rebuilt an O(p) snapshot under a global
   lock on every membership change; and it is what turns the relaxation
   into a measured quantity instead of a hope. *)
let note_rank_error pool w e =
  let rank = Multiq.rank pool.r e in
  let window = min pool.n_workers (max 1 (Multiq.size pool.r)) in
  let err = max 0 (rank - (window - 1)) in
  let c = pool.per_worker.(w) in
  Stats.Histogram.add c.c_rank_err (float_of_int err);
  Registry.Histogram.observe pool.obs.o_rank_error err;
  if Tracer.enabled pool.tracer then
    emit_locked pool ~proc:w
      (Event.Steal_rank { victim = (Multiq.value e).did; rank; err })

(* A successful DFD steal: the thief takes ownership of a fresh deque
   inserted immediately to the right of the victim (paper invariant: a
   thief's new deque sits just after the deque it stole from — the
   victim entry's right gap is split by CAS, and a victim that died
   concurrently still anchors the position it held), and the victim is
   reaped if the steal emptied an unowned deque. *)
let dfd_adopt_after pool w victim_e =
  let d = new_dq pool ~proc:w ~owner:(Some w) in
  let e = Multiq.insert_after ~ops:(sync_cell pool w) pool.r victim_e d in
  note_r_insert pool w;
  reap_if_dead pool ~proc:w victim_e;
  pool.dfd_deque.(w) <- Some e

let dfd_steal pool w =
  if injected_steal_failure pool w then None
  else begin
    (* two-choice victim draw: sample two shards, steal from the
       more-leftmost of their heads.  Both empty is a failed attempt, as
       the old k >= |snapshot| draw was, preserving the paper's bias
       toward short R. *)
    let rng = pool.rngs.(w) in
    let n_sh = Multiq.shard_count pool.r in
    let i = Prng.int rng n_sh in
    let j = Prng.int rng n_sh in
    trace_steal_attempt pool w ~victim:i;
    match Multiq.sample pool.r i j with
    | None ->
      note_steal_failure pool w;
      None
    | Some victim_e ->
      let victim = Multiq.value victim_e in
      (* CAS-only steal of the victim's oldest task.  [None] covers both
         a genuinely drained deque and a lost top-CAS race — either way
         the attempt failed and the caller retries with backoff, exactly
         like a WS thief losing a Chase–Lev race. *)
      (match Lfdeque.steal ~ops:(sync_cell pool w) victim.tasks with
       | None ->
         (* drained (or raced) between sample and steal; reap if dead *)
         reap_if_dead pool ~proc:w victim_e;
         note_steal_failure pool w;
         None
       | Some task ->
         note_steal_success pool w ~victim:victim.did;
         note_rank_error pool w victim_e;
         dfd_adopt_after pool w victim_e;
         (* refill from the current K: a runtime quota adjustment takes
            effect here, at the worker's next steal *)
         pool.quota_left.(w) <- Atomic.get pool.dfd_quota;
         Some task)
  end

(* ------------------------------------------------------------------ *)
(* Per-worker crash domains                                            *)
(* ------------------------------------------------------------------ *)

(* Lock-free Treiber stack of recovered held tasks.  ABA-safe because the
   cells are immutable fresh cons blocks compared physically; the only
   shared tail is [], and the pop for [] never reaches the CAS. *)
let rec orphan_push pool task =
  let old = Atomic.get pool.orphans in
  Schedpoint.point Schedpoint.pool_orphan_push;
  if Atomic.compare_and_set pool.orphans old (task :: old) then
    Atomic.incr pool.n_orphan_pushes
  else orphan_push pool task

let rec orphan_pop pool =
  match Atomic.get pool.orphans with
  | [] -> None
  | (task :: rest) as old ->
    Schedpoint.point Schedpoint.pool_orphan_pop;
    if Atomic.compare_and_set pool.orphans old rest then begin
      Atomic.incr pool.n_orphan_pops;
      Some task
    end
    else orphan_pop pool

let rec lineage_add pool entry =
  let old = Atomic.get pool.lineage in
  if not (Atomic.compare_and_set pool.lineage old (entry :: old)) then lineage_add pool entry

(* The injected crash: publish the one-way death certificate and die.
   The held task is already in [cur_task] (SC store), so the certificate
   read by any peer also publishes the task and every plain write this
   worker made before it.  The broadcast wakes parked peers — the
   certificate must be noticed even on an otherwise idle pool, and the
   requeued task is not yet counted in [live_tasks]. *)
let worker_crash pool w =
  flight_emit pool ~proc:w (Event.Fault_injected { fault = "worker_crash" });
  if Tracer.enabled pool.tracer then
    emit_locked pool ~proc:w (Event.Fault_injected { fault = "worker_crash" });
  Schedpoint.point Schedpoint.pool_crash_flag;
  Atomic.set pool.stopped.(w) true;
  Atomic.incr pool.crashed_pending;
  Mutex.lock pool.idle_lock;
  Condition.broadcast pool.idle_cond;
  Mutex.unlock pool.idle_lock;
  raise Worker_stop

(* The injected wedge: spin inside the scheduler, never touching any pool
   structure again, until a quarantiner bumps the slot generation (or the
   pool shuts down).  The generation fence is what makes a supervisor's
   quarantine of this worker sound: after the bump the spinner's only
   remaining action is to unwind. *)
let wedge_spin pool w =
  flight_emit pool ~proc:w (Event.Fault_injected { fault = "worker_wedge" });
  if Tracer.enabled pool.tracer then
    emit_locked pool ~proc:w (Event.Fault_injected { fault = "worker_wedge" });
  let g0 = Atomic.get pool.wgen.(w) in
  Atomic.set pool.wedged.(w) true;
  while Atomic.get pool.wgen.(w) = g0 && not (Atomic.get pool.shutting_down) do
    Domain.cpu_relax ()
  done;
  raise Worker_stop

(* Quarantine worker [w]: the surgical alternative to killing the whole
   pool.  One winner (CAS on [quarantined]); the winner fences the slot
   (generation bump), recovers the held task exactly once (atomic
   exchange of [cur_task] — the owner's own pre-run exchange and this one
   cannot both win), requeues it through the orphan stack, abandons the
   dead owner's DFDeques deque via the sticky death-certificate protocol
   (sound because the owner is certifiably fenced: crashed domains have
   unwound, wedged ones spin without touching the pool, so no push can
   race the abandonment — the one relaxation of the owner-only [abandon]
   contract, audited in DESIGN.md §17), and appends the lineage-ledger
   entry that {!verify_lineage} later audits.  Reap/abandon sync ops are
   charged to the dead worker's own record — it is fenced, so the
   single-writer discipline holds.  [proc] identifies the quarantining
   peer for trace attribution (-1 for an external supervisor). *)
let quarantine_as pool ~proc ~cause w =
  if w <= 0 || w >= pool.n_workers then invalid_arg "Pool.quarantine: bad worker";
  if Atomic.compare_and_set pool.quarantined.(w) false true then begin
    Schedpoint.point Schedpoint.pool_quarantine;
    Atomic.incr pool.n_quarantined;
    Atomic.incr pool.wgen.(w);
    if Atomic.get pool.stopped.(w) then Atomic.decr pool.crashed_pending;
    let held = Atomic.exchange pool.cur_task.(w) None in
    (match held with
     | Some task ->
       Atomic.incr pool.live_tasks;
       orphan_push pool task;
       Registry.Counter.incr pool.obs.o_requeues;
       flight_emit pool ~proc (Event.Task_requeued { worker = w });
       if Tracer.enabled pool.tracer then
         emit_locked pool ~proc (Event.Task_requeued { worker = w });
       signal_work pool
     | None -> ());
    let abandoned =
      match pool.policy with
      | Work_stealing ->
        (* the dead worker's Chase–Lev deque stays a valid steal target in
           place: survivors steal its leftovers back naturally *)
        false
      | Dfdeques _ -> (
          match pool.dfd_deque.(w) with
          | None -> false
          | Some e ->
            pool.dfd_deque.(w) <- None;
            Lfdeque.abandon ~ops:(sync_cell pool w) (Multiq.value e).tasks;
            reap_if_dead pool ~proc:w e;
            true)
    in
    lineage_add pool { worker = w; cause; requeued = Option.is_some held; abandoned };
    Registry.Counter.incr pool.obs.o_quarantines;
    flight_emit pool ~proc (Event.Worker_quarantined { worker = w; cause });
    if Tracer.enabled pool.tracer then
      emit_locked pool ~proc (Event.Worker_quarantined { worker = w; cause });
    true
  end
  else false

(* Peers call this whenever [crashed_pending] is observed positive: find
   every raised-but-unquarantined certificate and quarantine it.  Cheap
   when idle (one atomic load at the call sites guards it). *)
let scan_crashed pool ~proc =
  let n = ref 0 in
  for w = 1 to pool.n_workers - 1 do
    if Atomic.get pool.stopped.(w) && not (Atomic.get pool.quarantined.(w)) then
      if quarantine_as pool ~proc ~cause:"crash" w then incr n
  done;
  !n

(* ------------------------------------------------------------------ *)
(* Obtaining work                                                      *)
(* ------------------------------------------------------------------ *)

let push_local pool w task =
  Schedpoint.point Schedpoint.pool_push;
  (* [live_tasks] rises before the task is visible, so a worker that sees
     zero can safely park: any task not yet pushed will signal it. *)
  Atomic.incr pool.live_tasks;
  (match pool.policy with
   | Work_stealing -> Clev.push pool.ws_deques.(w) task
   | Dfdeques _ ->
     let d = dfd_own_deque pool w in
     Lfdeque.push ~ops:(sync_cell pool w) d.tasks task);
  signal_work pool

(* One attempt to obtain a task; lock-free on every path — WS and DFD
   both go through CAS-only deques.  Does not touch [live_tasks];
   callers do. *)
let try_get pool w =
  Schedpoint.point Schedpoint.pool_get;
  (* activity tick: single-writer; the clock wedge detection reads *)
  let c0 = pool.per_worker.(w) in
  c0.c_ticks <- c0.c_ticks + 1;
  (* recovered orphans first (both policies): a task requeued from a
     quarantined worker must not wait behind the deques.  One atomic load
     when the stack is empty. *)
  match orphan_pop pool with
  | Some _ as t -> t
  | None -> (
  match pool.policy with
  | Work_stealing -> (
      match Clev.pop pool.ws_deques.(w) with
      | Some t ->
        let c = pool.per_worker.(w) in
        c.c_local_pops <- c.c_local_pops + 1;
        Registry.Counter.incr pool.obs.o_local_pops;
        Some t
      | None ->
        if injected_steal_failure pool w then None
        else begin
          let victim = Prng.int pool.rngs.(w) pool.n_workers in
          trace_steal_attempt pool w ~victim;
          if victim = w then begin
            note_steal_failure pool w;
            None
          end
          else
            match Clev.steal pool.ws_deques.(victim) with
            | Some t ->
              note_steal_success pool w ~victim;
              Some t
            | None ->
              note_steal_failure pool w;
              None
        end)
  | Dfdeques _ -> (
      match pool.dfd_deque.(w) with
      | Some _ when pool.quota_left.(w) <= 0 ->
        (* memory quota exhausted: abandon the deque and steal *)
        let c = pool.per_worker.(w) in
        c.c_quota_giveups <- c.c_quota_giveups + 1;
        Registry.Counter.incr pool.obs.o_quota_giveups;
        (if Flight.enabled pool.flight then
           let quota = Atomic.get pool.dfd_quota in
           flight_emit pool ~proc:w
             (Event.Quota_exhausted { used = quota - pool.quota_left.(w); quota }));
        if Tracer.enabled pool.tracer then begin
          let quota = Atomic.get pool.dfd_quota in
          emit_locked pool ~proc:w
            (Event.Quota_exhausted { used = quota - pool.quota_left.(w); quota })
        end;
        dfd_abandon pool w;
        dfd_steal pool w
      | Some e -> (
          let d = Multiq.value e in
          match Lfdeque.pop ~ops:(sync_cell pool w) d.tasks with
          | Some t ->
            let c = pool.per_worker.(w) in
            c.c_local_pops <- c.c_local_pops + 1;
            Some t
          | None ->
            (* empty own deque: retire it, then steal *)
            dfd_abandon pool w;
            dfd_steal pool w)
      | None -> dfd_steal pool w))

let run_task t = t ()

(* Grab one task and run it; returns false if none was found.  A task that
   escapes an exception must never tear down the worker that happened to
   run it: promise-backed tasks capture exceptions themselves ([fulfill]),
   so this is the belt-and-braces path for malformed raw tasks — count it
   and carry on. *)
let help_once ?(top = false) pool w =
  match try_get pool w with
  | Some t ->
    Atomic.decr pool.live_tasks;
    (* publish the held task before anything can kill us: a quarantiner
       that reads our certificate is guaranteed to see it *)
    Atomic.set pool.cur_task.(w) (Some t);
    (* seeded crash/wedge injection — top-of-loop takes by worker domains
       only, so a dying worker holds exactly one unstarted task and
       nothing else in flight (the caller and nested helping takes are
       never crash-eligible: killing a worker mid-computation would
       strand a half-run task that cannot be requeued exactly-once) *)
    if top && w > 0 then (
      match Fault.worker_take pool.fault ~worker:w with
      | `None -> ()
      | `Crash -> worker_crash pool w
      | `Wedge -> wedge_spin pool w);
    (match Atomic.exchange pool.cur_task.(w) None with
     | Some t' ->
       note_task_start pool w;
       (try run_task t'
        with _ ->
          let c = pool.per_worker.(w) in
          c.c_task_exns <- c.c_task_exns + 1;
          Registry.Counter.incr pool.obs.o_task_exns;
          flight_emit pool ~proc:w (Event.Fault_injected { fault = "task_exn" }))
     | None ->
       (* a quarantiner won the exchange: the task is requeued and this
          worker has been declared dead — unwind without running it *)
       raise Worker_stop);
    true
  | None -> false

(* Pop our most recent push if it is still on top (the fork_join fast
   path).  Physical equality identifies the task.  Both policies use the
   same lock-free discipline: owner pop, and a pop that surfaces some
   other task (possible only if ours was stolen) is pushed straight
   back — the push-back is safe because only the owner pops its own
   deque, so nothing was reordered underneath it. *)
let try_pop_exact pool w task =
  Schedpoint.point Schedpoint.pool_pop_exact;
  let got =
    match pool.policy with
    | Work_stealing -> (
        match Clev.pop pool.ws_deques.(w) with
        | Some t when t == task -> true
        | Some other ->
          Clev.push pool.ws_deques.(w) other;
          false
        | None -> false)
    | Dfdeques _ -> (
        match pool.dfd_deque.(w) with
        | None -> false
        | Some e -> (
            let d = Multiq.value e in
            let ops = sync_cell pool w in
            match Lfdeque.pop ~ops d.tasks with
            | Some t when t == task -> true
            | Some other ->
              Lfdeque.push ~ops d.tasks other;
              false
            | None -> false))
  in
  if got then begin
    Atomic.decr pool.live_tasks;
    note_task_start pool w
  end;
  got

(* ------------------------------------------------------------------ *)
(* Futures                                                             *)
(* ------------------------------------------------------------------ *)

type 'a outcome = Pending | Done of 'a | Failed of exn

type 'a promise = { mutable state : 'a outcome Atomic.t }

let promise () = { state = Atomic.make Pending }

let fulfill pool pr f =
  let v =
    match f () with
    | x -> Done x
    | exception e ->
      let w = match self () with Some (w, _) -> w | None -> 0 in
      let c = pool.per_worker.(w) in
      c.c_task_exns <- c.c_task_exns + 1;
      Registry.Counter.incr pool.obs.o_task_exns;
      flight_emit pool ~proc:w (Event.Fault_injected { fault = "task_exn" });
      Failed e
  in
  Schedpoint.point Schedpoint.pool_fulfill;
  Atomic.set pr.state v

let await pool w pr =
  let rec go misses =
    match Atomic.get pr.state with
    | Done v -> v
    | Failed e -> raise e
    | Pending ->
      Schedpoint.point Schedpoint.pool_await;
      check_cancel pool;
      (* help: run other tasks while the thief finishes ours; back off
         with jitter when steals keep failing so contended pools don't
         spin hot *)
      if help_once pool w then go 0
      else begin
        (* empty-handed: quarantine any crashed peer before backing off —
           the promise we await may be fenced inside its dead holder *)
        if Atomic.get pool.crashed_pending > 0 then ignore (scan_crashed pool ~proc:w);
        backoff_wait pool.rngs.(w) misses;
        go (misses + 1)
      end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Worker domains                                                      *)
(* ------------------------------------------------------------------ *)

let worker_loop pool w =
  Domain.DLS.get worker_key := Some (w, pool);
  let misses = ref 0 in
  let rec loop () =
    if Atomic.get pool.shutting_down then ()
    else begin
      if help_once ~top:true pool w then misses := 0
      else begin
        incr misses;
        if Atomic.get pool.crashed_pending > 0 then ignore (scan_crashed pool ~proc:w);
        if Atomic.get pool.live_tasks = 0 then begin
          (* nothing queued anywhere: bounded spin, then park until a
             push signals — no thundering herd, one signal wakes one *)
          if !misses >= park_threshold then begin
            park pool w;
            misses := 0
          end
          else backoff_wait pool.rngs.(w) !misses
        end
        else
          (* work exists but our attempt lost: back off and retry *)
          backoff_wait pool.rngs.(w) !misses
      end;
      loop ()
    end
  in
  (* Worker_stop: this domain crashed (injected) or was quarantined out
     from under a wedge — unwind quietly; the quarantine protocol has
     already recovered (or will recover) everything it held *)
  try loop () with Worker_stop -> ()

(* Register the pool's write-side instruments (hot-path counters) and
   read-side probes (gauges over state the pool already maintains).
   Registration upserts, so a respawned incarnation keeps appending to
   the same series; the probes are re-pointed at the fresh pool. *)
let make_obs registry =
  let c name help = Registry.counter registry ~help name in
  {
    o_steals = c "dfd_pool_steals_total" "Successful steals (all disciplines).";
    o_steal_failures = c "dfd_pool_steal_failures_total" "Steal attempts that found nothing (real or injected).";
    o_local_pops = c "dfd_pool_local_pops_total" "Tasks taken from the worker's own deque.";
    o_quota_giveups = c "dfd_pool_quota_giveups_total" "Deques abandoned on memory-quota exhaustion.";
    o_tasks_run = c "dfd_pool_tasks_total" "Tasks executed (all paths, including inline).";
    o_task_exns = c "dfd_pool_task_exns_total" "Tasks that raised (user, injected, or cancellation).";
    o_alloc_bytes = c "dfd_pool_alloc_bytes_total" "Bytes reported via Pool.alloc_hint.";
    o_parks = c "dfd_pool_parks_total" "Times an idle worker parked on the condition variable.";
    o_deques_created = c "dfd_pool_deques_created_total" "Deques created (DFDeques R-list churn).";
    o_deques_deleted = c "dfd_pool_deques_deleted_total" "Deques reaped from R (DFDeques R-list churn).";
    o_quarantines = c "dfd_pool_quarantines_total" "Workers quarantined (crash or wedge verdicts).";
    o_requeues = c "dfd_pool_crash_requeues_total" "Held tasks recovered exactly-once from quarantined workers.";
    o_respawns = c "dfd_pool_worker_respawns_total" "Fresh domains spawned into quarantined worker slots.";
    o_rank_error =
      Registry.histogram registry
        ~help:"Rank error per successful DFDeques steal (positions outside the exact leftmost-p window)."
        "dfd_pool_steal_rank_error";
  }

let register_probes registry pool =
  let g name help f = Registry.probe registry ~kind:`Gauge ~help name f in
  g "dfd_pool_live_tasks" "Tasks pushed but not yet taken." (fun () -> Atomic.get pool.live_tasks);
  g "dfd_pool_parked_workers" "Workers currently parked on the idle condition." (fun () ->
      Atomic.get pool.n_parked);
  g "dfd_pool_workers" "Worker slots (domains + caller)." (fun () -> pool.n_workers);
  g "dfd_pool_quota_bytes" "Current DFDeques memory threshold K (max_int under WS)." (fun () ->
      Atomic.get pool.dfd_quota);
  g "dfd_pool_r_deques" "Live deques in the relaxed R-list (DFDeques)." (fun () ->
      Multiq.size pool.r);
  g "dfd_pool_quarantined_workers" "Worker slots currently quarantined (crash domains fired)."
    (fun () -> Atomic.get pool.n_quarantined);
  g "dfd_pool_degraded_p" "Live processor count: workers minus quarantined slots." (fun () ->
      pool.n_workers - Atomic.get pool.n_quarantined);
  (* a probe, not a write-side counter: mirroring every sync op into a
     registry cell would add an atomic RMW per operation just to count
     atomic RMWs.  The per-worker cells are summed lazily at scrape. *)
  Registry.probe registry ~kind:`Counter
    ~help:"Synchronization ops (atomic RMWs, CAS retries included) on DFDeques scheduling paths."
    "dfd_pool_sync_ops"
    (fun () -> Array.fold_left (fun acc c -> acc + !(c.c_sync)) 0 pool.per_worker)

let make ?(registry = Registry.disabled) ?(flight = Flight.disabled) ?(respawn_budget = 0)
    ~n_workers ~tracer ~fault policy =
    {
      policy;
      n_workers;
      ws_deques = Array.init n_workers (fun _ -> Clev.create ());
      (* 2 shards per worker: enough spread that concurrent membership
         CAS retries stay rare, small enough that two-choice sampling
         still sees a meaningful fraction of R *)
      r = Multiq.create ~shards:(2 * n_workers) ();
      dfd_deque = Array.make n_workers None;
      quota_left =
        Array.make n_workers
          (match policy with Dfdeques { quota } -> quota | Work_stealing -> max_int);
      dfd_quota =
        Atomic.make
          (match policy with Dfdeques { quota } -> quota | Work_stealing -> max_int);
      live_tasks = Atomic.make 0;
      per_worker =
        Array.init n_workers (fun _ ->
            {
              c_steals = 0;
              c_steal_failures = 0;
              c_local_pops = 0;
              c_quota_giveups = 0;
              c_tasks_run = 0;
              c_task_exns = 0;
              c_alloc_bytes = 0;
              c_parks = 0;
              c_r_inserts = 0;
              c_r_removes = 0;
              c_ticks = 0;
              c_sync = ref 0;
              c_rank_err = Stats.Histogram.create ();
            });
      idle_lock = Mutex.create ();
      idle_cond = Condition.create ();
      n_parked = Atomic.make 0;
      shutting_down = Atomic.make false;
      domains = [];
      rngs = Array.init n_workers (fun i -> Prng.create (1000 + i));
      tracer;
      trace_lock = Mutex.create ();
      fault;
      obs = make_obs registry;
      flight;
      t0 = Unix.gettimeofday ();
      next_did = Atomic.make n_workers;
      last_active_us = Array.make n_workers 0;
      deadline = Atomic.make None;
      cancelled = Atomic.make false;
      cur_task = Array.init n_workers (fun _ -> Atomic.make None);
      stopped = Array.init n_workers (fun _ -> Atomic.make false);
      wedged = Array.init n_workers (fun _ -> Atomic.make false);
      quarantined = Array.init n_workers (fun _ -> Atomic.make false);
      wgen = Array.init n_workers (fun _ -> Atomic.make 0);
      crashed_pending = Atomic.make 0;
      orphans = Atomic.make [];
      n_orphan_pushes = Atomic.make 0;
      n_orphan_pops = Atomic.make 0;
      n_quarantined = Atomic.make 0;
      lineage = Atomic.make [];
      respawn_budget = Atomic.make (max 0 respawn_budget);
      respawn_lock = Mutex.create ();
    }

let make ?registry ?flight ?respawn_budget ~n_workers ~tracer ~fault policy =
  let pool = make ?registry ?flight ?respawn_budget ~n_workers ~tracer ~fault policy in
  (match registry with Some r -> register_probes r pool | None -> ());
  pool

let create ?domains ?(tracer = Tracer.disabled) ?(fault = Fault.none) ?registry ?flight
    ?respawn_budget policy =
  let extra =
    match domains with
    | Some d -> max 0 d
    | None -> max 0 (Domain.recommended_domain_count () - 1)
  in
  let pool = make ?registry ?flight ?respawn_budget ~n_workers:(extra + 1) ~tracer ~fault policy in
  pool.domains <- List.init extra (fun i -> Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

(* After cancellation the deques may still hold queued tasks whose parents
   have unwound: run them all (they raise [Cancelled] immediately or are
   cheap leftovers) so the pool is clean for the next [run]. *)
let drain pool =
  let misses = ref 0 in
  (* a pending crash certificate hides a held task that [live_tasks] no
     longer counts: quarantine first so nothing is stranded *)
  while Atomic.get pool.live_tasks > 0 || Atomic.get pool.crashed_pending > 0 do
    if Atomic.get pool.crashed_pending > 0 then ignore (scan_crashed pool ~proc:0);
    if help_once pool 0 then misses := 0
    else begin
      incr misses;
      backoff_wait pool.rngs.(0) !misses
    end
  done

let run ?timeout ?quota pool f =
  (match self () with Some _ -> raise Nested_run | None -> ());
  (match quota with
   | None -> ()
   | Some k ->
     if k <= 0 then invalid_arg "Pool.run: quota must be positive";
     (match pool.policy with
      | Work_stealing -> invalid_arg "Pool.run: Work_stealing pool has no quota"
      | Dfdeques _ -> Atomic.set pool.dfd_quota k));
  let ctx = Domain.DLS.get worker_key in
  ctx := Some (0, pool);
  Atomic.set pool.cancelled false;
  Atomic.set pool.deadline (Option.map (fun s -> Unix.gettimeofday () +. s) timeout);
  Fun.protect
    ~finally:(fun () ->
      ctx := None;
      Atomic.set pool.deadline None)
    (fun () ->
       match f () with
       | v -> v
       | exception Cancelled when Atomic.get pool.cancelled ->
         drain pool;
         raise Timeout
       | exception e when Atomic.get pool.cancelled ->
         (* a user exception raced the cancellation; still leave the pool
            clean, but report the user's exception *)
         drain pool;
         raise e)

let fork_join fa fb =
  let w, pool = self_exn () in
  check_cancel pool;
  let fa =
    if Fault.enabled pool.fault then (fun () ->
        Fault.maybe_task_exn pool.fault;
        fa ())
    else fa
  in
  let pr = promise () in
  let task () = fulfill pool pr fa in
  push_local pool w task;
  let b = try Ok (fb ()) with e -> Error e in
  let a =
    if try_pop_exact pool w task then begin
      (* fast path: nobody stole it; run inline *)
      run_task task;
      match Atomic.get pr.state with
      | Done v -> v
      | Failed e -> raise e
      | Pending -> assert false
    end
    else await pool w pr
  in
  match b with Ok b -> (a, b) | Error e -> raise e

let rec parallel_for ~lo ~hi body =
  if hi - lo <= 0 then ()
  else if hi - lo = 1 then body lo
  else begin
    let mid = lo + ((hi - lo) / 2) in
    let (), () =
      fork_join (fun () -> parallel_for ~lo ~hi:mid body) (fun () -> parallel_for ~lo:mid ~hi body)
    in
    ()
  end

let parallel_map f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f arr.(0)) in
    parallel_for ~lo:0 ~hi:n (fun i -> out.(i) <- f arr.(i));
    out
  end

let alloc_hint n =
  match self () with
  | Some (w, pool) -> (
      let c = pool.per_worker.(w) in
      c.c_alloc_bytes <- c.c_alloc_bytes + n;
      Registry.Counter.add pool.obs.o_alloc_bytes (max 0 n);
      match pool.policy with
      | Dfdeques _ ->
        (* owner-only slot: no lock needed *)
        pool.quota_left.(w) <- pool.quota_left.(w) - n
      | Work_stealing -> ())
  | None ->
    (* aligned with every other pool operation: a hint from outside [run]
       would silently touch no quota, which hides bugs — reject it *)
    raise Not_in_pool

let quota pool =
  match pool.policy with
  | Work_stealing -> None
  | Dfdeques _ -> Some (Atomic.get pool.dfd_quota)

let set_quota pool k =
  if k <= 0 then invalid_arg "Pool.set_quota: quota must be positive";
  match pool.policy with
  | Work_stealing -> invalid_arg "Pool.set_quota: Work_stealing pool has no quota"
  | Dfdeques _ -> Atomic.set pool.dfd_quota k

let counters pool =
  Array.fold_left
    (fun acc c ->
       {
         steals = acc.steals + c.c_steals;
         steal_failures = acc.steal_failures + c.c_steal_failures;
         local_pops = acc.local_pops + c.c_local_pops;
         quota_giveups = acc.quota_giveups + c.c_quota_giveups;
         tasks_run = acc.tasks_run + c.c_tasks_run;
         task_exns = acc.task_exns + c.c_task_exns;
         alloc_bytes = acc.alloc_bytes + c.c_alloc_bytes;
         parks = acc.parks + c.c_parks;
         r_inserts = acc.r_inserts + c.c_r_inserts;
         r_removes = acc.r_removes + c.c_r_removes;
         sync_ops = acc.sync_ops + !(c.c_sync);
       })
    {
      steals = 0;
      steal_failures = 0;
      local_pops = 0;
      quota_giveups = 0;
      tasks_run = 0;
      task_exns = 0;
      alloc_bytes = 0;
      parks = 0;
      r_inserts = 0;
      r_removes = 0;
      sync_ops = 0;
    }
    pool.per_worker

(* Total synchronization operations (atomic RMWs + publishing stores,
   CAS retries included) executed on DFDeques scheduling paths, summed
   across workers — the Rito & Paulino sync-overhead metric, measured
   rather than assumed.  Zero under WS (the Clev paths predate the
   accounting and stay unmeasured).  Same staleness contract as
   {!val-counters}. *)
let sync_ops pool = Array.fold_left (fun acc c -> acc + !(c.c_sync)) 0 pool.per_worker

(* Per-worker single-writer histograms merged at read, like the ints. *)
let rank_error pool =
  Array.fold_left
    (fun acc c -> Stats.Histogram.merge acc c.c_rank_err)
    (Stats.Histogram.create ()) pool.per_worker

let heartbeat pool =
  Array.fold_left (fun acc c -> acc + c.c_tasks_run) 0 pool.per_worker

(* --- crash-domain surface ------------------------------------------- *)

(* Per-worker progress vector (the aggregate {!val-heartbeat}, split): a
   supervisor diffing two reads can tell which worker went flat. *)
let heartbeats pool = Array.map (fun c -> c.c_tasks_run) pool.per_worker

(* Point-in-time crash-domain view of every slot.  [w_activity] is the
   take-attempt clock: an awaiting or stealing worker keeps ticking even
   when no task completes, so "activity flat AND holding" is the wedge
   signature the service's watchdog keys on. *)
let worker_states pool =
  Array.init pool.n_workers (fun w ->
      {
        w_activity = pool.per_worker.(w).c_ticks;
        w_heartbeat = pool.per_worker.(w).c_tasks_run;
        w_holding = Option.is_some (Atomic.get pool.cur_task.(w));
        w_stopped = Atomic.get pool.stopped.(w);
        w_quarantined = Atomic.get pool.quarantined.(w);
      })

(* External supervisor verdict (the service's watchdog): quarantine [w]
   without waiting for a crash certificate.  Sound only against workers
   that are certifiably fenced or wedged-in-scheduler; quarantining a
   healthy worker mid-push is the caller's bug, which is why the service
   requires the activity clock flat before issuing the verdict. *)
let quarantine ?(cause = "wedge") pool w = quarantine_as pool ~proc:(-1) ~cause w

let degraded_p pool = pool.n_workers - Atomic.get pool.n_quarantined

(* Oldest first (the atomic prepend order reversed). *)
let lineage pool = List.rev (Atomic.get pool.lineage)

let quarantines pool =
  List.fold_left (fun acc e -> if e.cause = "respawn" then acc else acc + 1) 0
    (Atomic.get pool.lineage)

(* Exactly-once recovery audit over the lineage ledger — the pool-level
   mirror of the service's [verify_ledger].  Meaningful once the pool is
   quiescent (after [run]/[drain] returns): every crash certificate must
   have been quarantined, every recovered task must have drained through
   the orphan stack, the ledger's requeue claims must match the stack's
   push count, and each slot's quarantine/respawn history must reconcile
   with its live flag. *)
let verify_lineage pool =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let pending = Atomic.get pool.crashed_pending in
  if pending <> 0 then fail "crashed_pending=%d: unquarantined crash certificates" pending
  else
    match Atomic.get pool.orphans with
    | _ :: _ as orphans -> fail "orphan stack holds %d unrecovered tasks" (List.length orphans)
    | [] ->
      let pushes = Atomic.get pool.n_orphan_pushes and pops = Atomic.get pool.n_orphan_pops in
      let entries = Atomic.get pool.lineage in
      let requeued = List.fold_left (fun a e -> if e.requeued then a + 1 else a) 0 entries in
      if pushes <> pops then
        fail "orphan pushes=%d <> pops=%d: a recovered task was lost or duplicated" pushes pops
      else if requeued <> pushes then
        fail "ledger records %d requeues but the orphan stack saw %d pushes" requeued pushes
      else begin
        let bad = ref None in
        for w = 1 to pool.n_workers - 1 do
          let qs =
            List.fold_left
              (fun a e -> if e.worker = w && e.cause <> "respawn" then a + 1 else a)
              0 entries
          and rs =
            List.fold_left
              (fun a e -> if e.worker = w && e.cause = "respawn" then a + 1 else a)
              0 entries
          in
          let live = if Atomic.get pool.quarantined.(w) then 1 else 0 in
          if qs - rs <> live && !bad = None then
            bad :=
              Some
                (Printf.sprintf "worker %d: %d quarantines - %d respawns inconsistent with live flag %d"
                   w qs rs live)
        done;
        (match !bad with Some s -> Error s | None -> Ok ())
      end

(* The registry snapshot type is the one flattening of the counters
   record; [stats] (the legacy alist) and the service's counter
   passthrough both derive from it instead of hand-rolling their own. *)
let metrics_samples pool =
  let c = counters pool in
  let s name value = { Registry.name; help = ""; stable = false; value = Registry.Counter_v value } in
  [
    s "steals" c.steals;
    s "steal_failures" c.steal_failures;
    s "local_pops" c.local_pops;
    s "quota_giveups" c.quota_giveups;
    s "tasks_run" c.tasks_run;
    s "task_exns" c.task_exns;
    s "alloc_bytes" c.alloc_bytes;
    s "parks" c.parks;
    s "r_inserts" c.r_inserts;
    s "r_removes" c.r_removes;
    s "sync_ops" c.sync_ops;
  ]

let stats pool = Registry.Snapshot.to_alist (metrics_samples pool)

let flight pool = pool.flight

(* Human-readable diagnostic dump for hang post-mortems: every counter,
   the live-task and cancellation state, and each deque's occupancy.
   Counter reads are per-worker aggregates and the R walk is a lock-free
   Multiq snapshot — both exact once idle, slightly stale while running.
   Call it from a watchdog, not a hot path. *)
let snapshot pool =
  let b = Buffer.create 256 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "pool snapshot (%s, %d workers)\n"
    (match pool.policy with
     | Work_stealing -> "WS"
     | Dfdeques { quota } -> Printf.sprintf "DFDeques(K=%d)" quota)
    pool.n_workers;
  pf "  live_tasks=%d parked=%d shutting_down=%b cancelled=%b deadline=%s\n"
    (Atomic.get pool.live_tasks) (Atomic.get pool.n_parked)
    (Atomic.get pool.shutting_down) (Atomic.get pool.cancelled)
    (match Atomic.get pool.deadline with
     | None -> "none"
     | Some d -> Printf.sprintf "%+.3fs" (d -. Unix.gettimeofday ()));
  List.iter (fun (k, v) -> pf "  %s=%d\n" k v) (stats pool);
  pf "  heartbeat=%d faults_injected=%d\n" (heartbeat pool) (Fault.injected_total pool.fault);
  pf "  degraded_p=%d quarantined=%d crashed_pending=%d orphans=%d (pushes=%d pops=%d) respawn_budget=%d\n"
    (degraded_p pool) (Atomic.get pool.n_quarantined) (Atomic.get pool.crashed_pending)
    (List.length (Atomic.get pool.orphans))
    (Atomic.get pool.n_orphan_pushes) (Atomic.get pool.n_orphan_pops)
    (Atomic.get pool.respawn_budget);
  Array.iteri
    (fun i c ->
       pf "  worker %d: tasks_run=%d steals=%d ticks=%d%s%s%s%s\n" i c.c_tasks_run c.c_steals
         c.c_ticks
         (if Option.is_some (Atomic.get pool.cur_task.(i)) then " HOLDING" else "")
         (if Atomic.get pool.stopped.(i) then " STOPPED" else "")
         (if Atomic.get pool.wedged.(i) then " WEDGED" else "")
         (if Atomic.get pool.quarantined.(i) then " QUARANTINED" else ""))
    pool.per_worker;
  List.iter
    (fun e ->
       pf "  lineage: worker %d %s%s%s\n" e.worker e.cause
         (if e.requeued then " (task requeued)" else "")
         (if e.abandoned then " (deque abandoned)" else ""))
    (lineage pool);
  (match pool.policy with
   | Work_stealing ->
     Array.iteri
       (fun i d -> pf "  deque[worker %d]: %d tasks\n" i (Clev.length d))
       pool.ws_deques
   | Dfdeques _ ->
     (* lock-free Multiq walk: approximate while membership churns,
        exact once the pool is idle — same contract as the counters *)
     let ms = Multiq.members pool.r in
     pf "  R has %d deques across %d shards\n" (List.length ms)
       (Multiq.shard_count pool.r);
     List.iter
       (fun e ->
          let d = Multiq.value e in
          pf "  deque #%d owner=%s shard=%d: %d tasks\n" d.did
            (match Lfdeque.owner d.tasks with None -> "-" | Some w -> string_of_int w)
            (Multiq.shard_of e) (Lfdeque.length d.tasks))
       ms;
     pf "  K=%d\n" (Atomic.get pool.dfd_quota);
     Array.iteri (fun i q -> pf "  quota_left[worker %d]=%d\n" i q) pool.quota_left);
  Buffer.contents b

let shutdown pool =
  Atomic.set pool.shutting_down true;
  Mutex.lock pool.idle_lock;
  Condition.broadcast pool.idle_cond;
  Mutex.unlock pool.idle_lock;
  List.iter Domain.join pool.domains;
  pool.domains <- []

(* Forceful teardown for a supervisor that has declared the pool wedged:
   signal shutdown and walk away without joining, so the supervisor can
   respawn immediately.  Idle and parked workers exit promptly; a worker
   genuinely stuck inside a user task is abandoned (its domain leaks until
   the task returns, at which point the shutdown flag stops it).  Calling
   [shutdown] later reaps the domains once they have exited. *)
let kill pool =
  Atomic.set pool.shutting_down true;
  Mutex.lock pool.idle_lock;
  Condition.broadcast pool.idle_cond;
  Mutex.unlock pool.idle_lock

(* Spawn a fresh domain into a quarantined slot, under the respawn budget.
   Cold path: [respawn_lock] serialises the budget claim, the slot reset
   and the spawn, so two supervisors cannot double-fill one slot or spend
   one budget unit twice.  Resetting the slot's owner-only state is sound
   because quarantine certifiably fenced the previous incarnation (its
   generation was bumped; crashed domains have unwound, wedged ones only
   spin) — and quarantine already drained [cur_task], so no task can be
   hiding in the slot we reset.  The dead domain stays on [domains] and
   is reaped by the next [shutdown] join, exactly like a live one. *)
let respawn_worker pool w =
  if w <= 0 || w >= pool.n_workers then invalid_arg "Pool.respawn_worker: bad worker";
  Mutex.lock pool.respawn_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock pool.respawn_lock)
    (fun () ->
       if
         Atomic.get pool.quarantined.(w)
         && (not (Atomic.get pool.shutting_down))
         && Atomic.get pool.respawn_budget > 0
       then begin
         Atomic.decr pool.respawn_budget;
         assert (Option.is_none (Atomic.get pool.cur_task.(w)));
         Atomic.set pool.stopped.(w) false;
         Atomic.set pool.wedged.(w) false;
         pool.quota_left.(w) <- Atomic.get pool.dfd_quota;
         pool.dfd_deque.(w) <- None;
         Atomic.incr pool.wgen.(w);
         (* flags last: the slot is fully rebuilt before it reads as live *)
         Atomic.set pool.quarantined.(w) false;
         Atomic.decr pool.n_quarantined;
         lineage_add pool { worker = w; cause = "respawn"; requeued = false; abandoned = false };
         Registry.Counter.incr pool.obs.o_respawns;
         flight_emit pool ~proc:w (Event.Worker_respawned { worker = w });
         if Tracer.enabled pool.tracer then
           emit_locked pool ~proc:w (Event.Worker_respawned { worker = w });
         pool.domains <- Domain.spawn (fun () -> worker_loop pool w) :: pool.domains;
         true
       end
       else false)

(* Entry points for the systematic concurrency checker (lib/check): a
   pool with worker slots but no spawned domains, so every thread touching
   it is one the checker controls, plus explicit worker impersonation and
   single help steps.  Not part of the public scheduling API. *)
module For_testing = struct
  let create_detached ?(fault = Fault.none) ?respawn_budget ~workers policy =
    make ?respawn_budget ~n_workers:(max 1 workers) ~tracer:Tracer.disabled ~fault policy

  let as_worker pool w f =
    if w < 0 || w >= pool.n_workers then invalid_arg "Pool.For_testing.as_worker";
    let ctx = Domain.DLS.get worker_key in
    let saved = !ctx in
    ctx := Some (w, pool);
    Fun.protect ~finally:(fun () -> ctx := saved) f

  let help pool w = help_once pool w

  (* One top-of-loop step as a worker domain would take it: crash/wedge
     faults are armed and the crash path's [Worker_stop] is surfaced as a
     verdict instead of escaping into the checker. *)
  let help_top pool w =
    match help_once ~top:true pool w with
    | true -> `Ran
    | false -> `Idle
    | exception Worker_stop -> `Stopped

  let scan pool ~proc = scan_crashed pool ~proc

  let live_tasks pool = Atomic.get pool.live_tasks
end

let parallel_reduce ~zero ~op ~lo ~hi f =
  let rec go lo hi =
    if hi - lo <= 0 then zero
    else if hi - lo = 1 then f lo
    else begin
      let mid = lo + ((hi - lo) / 2) in
      let a, b = fork_join (fun () -> go lo mid) (fun () -> go mid hi) in
      op a b
    end
  in
  go lo hi

(* Blelloch two-phase scan over [grain]-sized chunks: reduce each chunk in
   parallel, serially prefix the chunk sums (few chunks), then expand each
   chunk in parallel. *)
let parallel_prefix_sum ~zero ~op arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let grain = 1024 in
    let nchunks = (n + grain - 1) / grain in
    let sums = Array.make nchunks zero in
    parallel_for ~lo:0 ~hi:nchunks (fun c ->
        let lo = c * grain and hi = min n ((c + 1) * grain) in
        let acc = ref zero in
        for i = lo to hi - 1 do
          acc := op !acc arr.(i)
        done;
        sums.(c) <- !acc);
    let offsets = Array.make nchunks zero in
    for c = 1 to nchunks - 1 do
      offsets.(c) <- op offsets.(c - 1) sums.(c - 1)
    done;
    let out = Array.make n zero in
    parallel_for ~lo:0 ~hi:nchunks (fun c ->
        let lo = c * grain and hi = min n ((c + 1) * grain) in
        let acc = ref offsets.(c) in
        for i = lo to hi - 1 do
          out.(i) <- !acc;
          acc := op !acc arr.(i)
        done);
    out
  end
