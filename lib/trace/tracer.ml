type t = {
  enabled : bool;
  capacity : int;
  buf : Event.t array;
  mutable len : int;  (** events retained. *)
  mutable head : int;  (** index of the oldest event when [len = capacity]. *)
  mutable dropped : int;
  kind_counts : int array;
}

let dummy_event = { Event.ts = 0; proc = -1; tid = -1; kind = Event.Dummy_exec }

let disabled =
  {
    enabled = false;
    capacity = 0;
    buf = [||];
    len = 0;
    head = 0;
    dropped = 0;
    kind_counts = Array.make Event.n_kinds 0;
  }

let create ?(capacity = 1 lsl 20) () =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity must be positive";
  {
    enabled = true;
    capacity;
    buf = Array.make capacity dummy_event;
    len = 0;
    head = 0;
    dropped = 0;
    kind_counts = Array.make Event.n_kinds 0;
  }

let enabled t = t.enabled

let emit t ~ts ~proc ~tid kind =
  if t.enabled then begin
    let e = { Event.ts; proc; tid; kind } in
    t.kind_counts.(Event.kind_index kind) <- t.kind_counts.(Event.kind_index kind) + 1;
    if t.len < t.capacity then begin
      t.buf.((t.head + t.len) mod t.capacity) <- e;
      t.len <- t.len + 1
    end
    else begin
      t.buf.(t.head) <- e;
      t.head <- (t.head + 1) mod t.capacity;
      t.dropped <- t.dropped + 1
    end
  end

let length t = t.len

let dropped t = t.dropped

let total t = t.len + t.dropped

let iter f t =
  for i = 0 to t.len - 1 do
    f t.buf.((t.head + i) mod t.capacity)
  done

let events t =
  let acc = ref [] in
  iter (fun e -> acc := e :: !acc) t;
  List.rev !acc

let count t kind = t.kind_counts.(Event.kind_index kind)

let counts t =
  Array.to_list (Array.mapi (fun i name -> (name, t.kind_counts.(i))) Event.kind_names)

let clear t =
  t.len <- 0;
  t.head <- 0;
  t.dropped <- 0;
  Array.fill t.kind_counts 0 Event.n_kinds 0
