type kind =
  | Fork of { child : int }
  | Join of { child : int }
  | Steal_attempt of { victim : int }
  | Steal_success of { victim : int; latency : int }
  | Quota_exhausted of { used : int; quota : int }
  | Dummy_exec
  | Deque_created of { did : int }
  | Deque_deleted of { did : int; residency : int }
  | Cache_miss_stall of { misses : int; stall : int }
  | Lock_wait of { mutex : int }
  | Action_batch of { units : int }
  | Counter of { deques : int; heap : int; threads : int }
  | Fault_injected of { fault : string }
  | Quota_adjusted of { from_quota : int; to_quota : int; pressure : int }
  | Ladder_shift of { from_level : int; to_level : int; occupancy : int; pressure : int }
  | Steal_rank of { victim : int; rank : int; err : int }
  | Worker_quarantined of { worker : int; cause : string }
  | Task_requeued of { worker : int }
  | Worker_respawned of { worker : int }

type t = { ts : int; proc : int; tid : int; kind : kind }

let kind_index = function
  | Fork _ -> 0
  | Join _ -> 1
  | Steal_attempt _ -> 2
  | Steal_success _ -> 3
  | Quota_exhausted _ -> 4
  | Dummy_exec -> 5
  | Deque_created _ -> 6
  | Deque_deleted _ -> 7
  | Cache_miss_stall _ -> 8
  | Lock_wait _ -> 9
  | Action_batch _ -> 10
  | Counter _ -> 11
  | Fault_injected _ -> 12
  | Quota_adjusted _ -> 13
  | Ladder_shift _ -> 14
  | Steal_rank _ -> 15
  | Worker_quarantined _ -> 16
  | Task_requeued _ -> 17
  | Worker_respawned _ -> 18

let kind_names =
  [|
    "fork";
    "join";
    "steal_attempt";
    "steal_success";
    "quota_exhausted";
    "dummy_exec";
    "deque_created";
    "deque_deleted";
    "cache_miss_stall";
    "lock_wait";
    "action_batch";
    "counter";
    "fault_injected";
    "quota_adjusted";
    "ladder_shift";
    "steal_rank";
    "worker_quarantined";
    "task_requeued";
    "worker_respawned";
  |]

let n_kinds = Array.length kind_names

let kind_name k = kind_names.(kind_index k)

let equal a b = a.ts = b.ts && a.proc = b.proc && a.tid = b.tid && a.kind = b.kind

let to_json e =
  let payload =
    match e.kind with
    | Fork { child } -> [ ("child", Json.Int child) ]
    | Join { child } -> [ ("child", Json.Int child) ]
    | Steal_attempt { victim } -> [ ("victim", Json.Int victim) ]
    | Steal_success { victim; latency } ->
      [ ("victim", Json.Int victim); ("latency", Json.Int latency) ]
    | Quota_exhausted { used; quota } ->
      [ ("used", Json.Int used); ("quota", Json.Int quota) ]
    | Dummy_exec -> []
    | Deque_created { did } -> [ ("did", Json.Int did) ]
    | Deque_deleted { did; residency } ->
      [ ("did", Json.Int did); ("residency", Json.Int residency) ]
    | Cache_miss_stall { misses; stall } ->
      [ ("misses", Json.Int misses); ("stall", Json.Int stall) ]
    | Lock_wait { mutex } -> [ ("mutex", Json.Int mutex) ]
    | Action_batch { units } -> [ ("units", Json.Int units) ]
    | Counter { deques; heap; threads } ->
      [ ("deques", Json.Int deques); ("heap", Json.Int heap); ("threads", Json.Int threads) ]
    | Fault_injected { fault } -> [ ("fault", Json.String fault) ]
    | Quota_adjusted { from_quota; to_quota; pressure } ->
      [
        ("from_quota", Json.Int from_quota);
        ("to_quota", Json.Int to_quota);
        ("pressure", Json.Int pressure);
      ]
    | Ladder_shift { from_level; to_level; occupancy; pressure } ->
      [
        ("from_level", Json.Int from_level);
        ("to_level", Json.Int to_level);
        ("occupancy", Json.Int occupancy);
        ("pressure", Json.Int pressure);
      ]
    | Steal_rank { victim; rank; err } ->
      [ ("victim", Json.Int victim); ("rank", Json.Int rank); ("err", Json.Int err) ]
    | Worker_quarantined { worker; cause } ->
      [ ("worker", Json.Int worker); ("cause", Json.String cause) ]
    | Task_requeued { worker } -> [ ("worker", Json.Int worker) ]
    | Worker_respawned { worker } -> [ ("worker", Json.Int worker) ]
  in
  Json.Assoc
    ([
       ("ts", Json.Int e.ts);
       ("proc", Json.Int e.proc);
       ("tid", Json.Int e.tid);
       ("ev", Json.String (kind_name e.kind));
     ]
     @ payload)

let of_json j =
  let int k = Json.to_int_exn (Json.member k j) in
  let kind =
    match Json.to_string_exn (Json.member "ev" j) with
    | "fork" -> Fork { child = int "child" }
    | "join" -> Join { child = int "child" }
    | "steal_attempt" -> Steal_attempt { victim = int "victim" }
    | "steal_success" -> Steal_success { victim = int "victim"; latency = int "latency" }
    | "quota_exhausted" -> Quota_exhausted { used = int "used"; quota = int "quota" }
    | "dummy_exec" -> Dummy_exec
    | "deque_created" -> Deque_created { did = int "did" }
    | "deque_deleted" -> Deque_deleted { did = int "did"; residency = int "residency" }
    | "cache_miss_stall" -> Cache_miss_stall { misses = int "misses"; stall = int "stall" }
    | "lock_wait" -> Lock_wait { mutex = int "mutex" }
    | "action_batch" -> Action_batch { units = int "units" }
    | "counter" ->
      Counter { deques = int "deques"; heap = int "heap"; threads = int "threads" }
    | "fault_injected" ->
      Fault_injected { fault = Json.to_string_exn (Json.member "fault" j) }
    | "quota_adjusted" ->
      Quota_adjusted
        { from_quota = int "from_quota"; to_quota = int "to_quota"; pressure = int "pressure" }
    | "ladder_shift" ->
      Ladder_shift
        {
          from_level = int "from_level";
          to_level = int "to_level";
          occupancy = int "occupancy";
          pressure = int "pressure";
        }
    | "steal_rank" -> Steal_rank { victim = int "victim"; rank = int "rank"; err = int "err" }
    | "worker_quarantined" ->
      Worker_quarantined
        { worker = int "worker"; cause = Json.to_string_exn (Json.member "cause" j) }
    | "task_requeued" -> Task_requeued { worker = int "worker" }
    | "worker_respawned" -> Worker_respawned { worker = int "worker" }
    | s -> raise (Json.Parse_error ("unknown event kind " ^ s))
  in
  { ts = int "ts"; proc = int "proc"; tid = int "tid"; kind }

let pp ppf e =
  Format.fprintf ppf "[t=%d p=%d tid=%d] %s" e.ts e.proc e.tid (Json.to_string (to_json e))
