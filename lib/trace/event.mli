(** Typed scheduler trace events.

    One event records one scheduler-level occurrence at a point in time on
    one processor, executing one thread.  Under the simulator the timestamp
    is the synchronous timestep; under the native pool it is wall-clock
    microseconds since pool creation.  [proc] is the simulated processor
    or worker-domain index, [-1] when the event is machine-wide rather
    than tied to one processor; [tid] is the executing thread id, [-1]
    when no thread is associated.  The two conventions are independent:
    a {!kind.Quota_adjusted} decision has [proc = -1] but may carry a
    [tid], while a {!kind.Counter} sample is machine-wide on both axes
    and always carries [proc = -1] {e and} [tid = -1] (asserted by
    [test/validate_trace.ml] on the exported trace and by [test_trace]
    on the raw stream).

    The vocabulary covers everything the paper's Sections 4–6 reason
    about: steals and their outcomes, memory-quota exhaustions, dummy
    threads from the big-allocation transformation, deque lifecycle in the
    global list R, cache-miss stalls, lock waiting, and the executed unit
    actions themselves. *)

type kind =
  | Fork of { child : int }  (** [tid] forked thread [child]. *)
  | Join of { child : int }
      (** [tid] suspended at a join waiting for [child] (joins that find
          the child already dead are free transitions and are not
          recorded). *)
  | Steal_attempt of { victim : int }
      (** A steal attempt targeting victim processor (WS) or deque slot in
          R (DFDeques); [-1] when the target could not be resolved (empty
          R). *)
  | Steal_success of { victim : int; latency : int }
      (** The attempt succeeded; [latency] is the time the thief spent
          without work before this steal (see {!Dfd_machine.Metrics}). *)
  | Quota_exhausted of { used : int; quota : int }
      (** The processor's memory quota ran out: it had allocated [used] of
          its [quota] bytes net and must give up its deque (Figure 5). *)
  | Dummy_exec  (** A dummy thread of the Section 3.3 transformation ran. *)
  | Deque_created of { did : int }  (** Deque [did] entered R. *)
  | Deque_deleted of { did : int; residency : int }
      (** Deque [did] left R after [residency] time units. *)
  | Cache_miss_stall of { misses : int; stall : int }
      (** A [Touch] action missed [misses] times, stalling [stall] extra
          timesteps. *)
  | Lock_wait of { mutex : int }
      (** [tid] blocked (or spun one step) on a contended mutex. *)
  | Action_batch of { units : int }
      (** [tid] executed an action of [units] work units on [proc]. *)
  | Counter of { deques : int; heap : int; threads : int }
      (** Periodic sample of live deques in R, live heap bytes and live
          threads — the counter tracks of the Chrome export.  Emitted
          machine-wide with both [proc = -1] and [tid = -1]. *)
  | Fault_injected of { fault : string }
      (** The fault-injection layer ({!Dfd_fault.Fault}) fired here;
          [fault] is the injected kind ("stall", "steal_fail", ...). *)
  | Quota_adjusted of { from_quota : int; to_quota : int; pressure : int }
      (** The adaptive quota controller ({!Dfd_service.Quota_ctl}) moved
          the DFDeques memory threshold K from [from_quota] to [to_quota]
          in response to observed allocation [pressure] (bytes per control
          interval) — the graceful-degradation lever on the Theorem 4.4
          space bound. *)
  | Ladder_shift of { from_level : int; to_level : int; occupancy : int; pressure : int }
      (** The service's overload backpressure ladder
          ({!Dfd_service.Ladder}) moved between rungs (0 accept,
          1 coalesce, 2 shed, 3 break) on the combined queue-[occupancy]
          / allocation-[pressure] signal (both percentages). *)
  | Steal_rank of { victim : int; rank : int; err : int }
      (** A successful DFDeques steal under the relaxed R-list: the
          victim deque [victim] (its [did]) sat at 0-based position
          [rank] in the relaxed global order; [err] is how far outside
          the exact leftmost-[p] window that is ([max 0 (rank - (p-1))],
          0 when the relaxation cost nothing on this steal). *)
  | Worker_quarantined of { worker : int; cause : string }
      (** The pool declared worker [worker] dead and fenced it out of the
          scheduling structures — [cause] is ["crash"] (the worker's own
          death certificate) or ["wedge"] (a supervisor's verdict).
          [proc] is the worker that won the quarantine race. *)
  | Task_requeued of { worker : int }
      (** The task the quarantined worker [worker] held (taken but never
          started) was recovered and requeued exactly once. *)
  | Worker_respawned of { worker : int }
      (** A fresh domain was spawned into quarantined worker slot
          [worker] under the pool's respawn budget. *)

type t = { ts : int; proc : int; tid : int; kind : kind }

val kind_name : kind -> string
(** Stable lowercase category name ("fork", "steal_attempt", ...). *)

val n_kinds : int

val kind_index : kind -> int
(** Dense index in [0, n_kinds): per-category counting. *)

val kind_names : string array
(** Category name per {!kind_index}. *)

val equal : t -> t -> bool

val to_json : t -> Json.t
(** Schema: [{"ts":..,"proc":..,"tid":..,"ev":"<kind_name>", ...payload}]
    with payload fields flattened into the same object. *)

val of_json : Json.t -> t
(** Inverse of {!to_json}; raises {!Json.Parse_error} on schema
    mismatch. *)

val pp : Format.formatter -> t -> unit
