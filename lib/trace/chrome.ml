let category (k : Event.kind) =
  match k with
  | Event.Fork _ | Event.Join _ -> "task"
  | Event.Steal_attempt _ | Event.Steal_success _ | Event.Steal_rank _ -> "steal"
  | Event.Quota_exhausted _ | Event.Quota_adjusted _ -> "quota"
  | Event.Ladder_shift _ -> "ladder"
  | Event.Dummy_exec -> "dummy"
  | Event.Deque_created _ | Event.Deque_deleted _ -> "deque"
  | Event.Cache_miss_stall _ -> "cache"
  | Event.Lock_wait _ -> "lock"
  | Event.Action_batch _ -> "action"
  | Event.Counter _ -> "counter"
  | Event.Fault_injected _ -> "fault"
  | Event.Worker_quarantined _ | Event.Task_requeued _ | Event.Worker_respawned _ -> "crash"

let pid = Json.Int 0

let metadata ~p =
  let process =
    Json.Assoc
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", pid);
        ("args", Json.Assoc [ ("name", Json.String "dfdeques") ]);
      ]
  in
  let track i =
    Json.Assoc
      [
        ("name", Json.String "thread_name");
        ("ph", Json.String "M");
        ("pid", pid);
        ("tid", Json.Int i);
        ("args", Json.Assoc [ ("name", Json.String (Printf.sprintf "P%d" i)) ]);
      ]
  in
  process :: List.init p track

let counter_event ~ts name key v =
  Json.Assoc
    [
      ("name", Json.String name);
      ("cat", Json.String "counter");
      ("ph", Json.String "C");
      ("ts", Json.Int ts);
      ("pid", pid);
      ("args", Json.Assoc [ (key, Json.Int v) ]);
    ]

let instant (e : Event.t) args =
  Json.Assoc
    [
      ("name", Json.String (Event.kind_name e.kind));
      ("cat", Json.String (category e.kind));
      ("ph", Json.String "i");
      ("s", Json.String "t");
      ("ts", Json.Int e.ts);
      ("pid", pid);
      ("tid", Json.Int (max e.proc 0));
      ("args", Json.Assoc (("thread", Json.Int e.tid) :: args));
    ]

let render (e : Event.t) : Json.t list =
  match e.kind with
  | Event.Counter { deques; heap; threads } ->
    [
      counter_event ~ts:e.ts "live deques" "deques" deques;
      counter_event ~ts:e.ts "live heap" "bytes" heap;
      counter_event ~ts:e.ts "live threads" "threads" threads;
    ]
  | Event.Action_batch { units } ->
    [
      Json.Assoc
        [
          ("name", Json.String "run");
          ("cat", Json.String "action");
          ("ph", Json.String "X");
          ("ts", Json.Int e.ts);
          ("dur", Json.Int units);
          ("pid", pid);
          ("tid", Json.Int (max e.proc 0));
          ("args", Json.Assoc [ ("thread", Json.Int e.tid); ("units", Json.Int units) ]);
        ];
    ]
  | Event.Fork { child } -> [ instant e [ ("child", Json.Int child) ] ]
  | Event.Join { child } -> [ instant e [ ("child", Json.Int child) ] ]
  | Event.Steal_attempt { victim } -> [ instant e [ ("victim", Json.Int victim) ] ]
  | Event.Steal_success { victim; latency } ->
    [ instant e [ ("victim", Json.Int victim); ("latency", Json.Int latency) ] ]
  | Event.Quota_exhausted { used; quota } ->
    [ instant e [ ("used", Json.Int used); ("quota", Json.Int quota) ] ]
  | Event.Dummy_exec -> [ instant e [] ]
  | Event.Deque_created { did } -> [ instant e [ ("did", Json.Int did) ] ]
  | Event.Deque_deleted { did; residency } ->
    [ instant e [ ("did", Json.Int did); ("residency", Json.Int residency) ] ]
  | Event.Cache_miss_stall { misses; stall } ->
    [ instant e [ ("misses", Json.Int misses); ("stall", Json.Int stall) ] ]
  | Event.Lock_wait { mutex } -> [ instant e [ ("mutex", Json.Int mutex) ] ]
  | Event.Fault_injected { fault } -> [ instant e [ ("fault", Json.String fault) ] ]
  | Event.Quota_adjusted { from_quota; to_quota; pressure } ->
    (* both an instant (the decision) and a counter track (the K level) *)
    [
      instant e
        [
          ("from_quota", Json.Int from_quota);
          ("to_quota", Json.Int to_quota);
          ("pressure", Json.Int pressure);
        ];
      counter_event ~ts:e.ts "quota K" "bytes" to_quota;
    ]
  | Event.Ladder_shift { from_level; to_level; occupancy; pressure } ->
    (* the decision as an instant plus the rung as a counter track *)
    [
      instant e
        [
          ("from_level", Json.Int from_level);
          ("to_level", Json.Int to_level);
          ("occupancy", Json.Int occupancy);
          ("pressure", Json.Int pressure);
        ];
      counter_event ~ts:e.ts "ladder level" "level" to_level;
    ]
  | Event.Steal_rank { victim; rank; err } ->
    [
      instant e
        [ ("victim", Json.Int victim); ("rank", Json.Int rank); ("err", Json.Int err) ];
    ]
  | Event.Worker_quarantined { worker; cause } ->
    [ instant e [ ("worker", Json.Int worker); ("cause", Json.String cause) ] ]
  | Event.Task_requeued { worker } -> [ instant e [ ("worker", Json.Int worker) ] ]
  | Event.Worker_respawned { worker } -> [ instant e [ ("worker", Json.Int worker) ] ]

let to_json ~p events =
  let body = List.concat_map render events in
  Json.Assoc
    [
      ("traceEvents", Json.List (metadata ~p @ body));
      ("displayTimeUnit", Json.String "ms");
    ]

let write_file ~path ~p events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
       Json.to_channel oc (to_json ~p events);
       output_char oc '\n')
