type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 || Char.code c > 0x7e ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    (* JSON has no NaN/inf *)
    if Float.is_nan f || Float.abs f = Float.infinity then Buffer.add_string buf "null"
    else Buffer.add_string buf (float_to_string f)
  | String s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
         if i > 0 then Buffer.add_char buf ',';
         write buf x)
      xs;
    Buffer.add_char buf ']'
  | Assoc kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char buf ',';
         escape_to buf k;
         Buffer.add_char buf ':';
         write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  write buf j;
  Buffer.contents buf

let to_channel oc j = output_string oc (to_string j)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string_raw c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
       | Some '"' -> Buffer.add_char buf '"'; advance c
       | Some '\\' -> Buffer.add_char buf '\\'; advance c
       | Some '/' -> Buffer.add_char buf '/'; advance c
       | Some 'n' -> Buffer.add_char buf '\n'; advance c
       | Some 't' -> Buffer.add_char buf '\t'; advance c
       | Some 'r' -> Buffer.add_char buf '\r'; advance c
       | Some 'b' -> Buffer.add_char buf '\b'; advance c
       | Some 'f' -> Buffer.add_char buf '\012'; advance c
       | Some 'u' ->
         advance c;
         if c.pos + 4 > String.length c.s then fail c "truncated \\u escape";
         let hex = String.sub c.s c.pos 4 in
         let code =
           try int_of_string ("0x" ^ hex) with _ -> fail c "bad \\u escape"
         in
         c.pos <- c.pos + 4;
         (* ASCII escapes decode exactly; anything else keeps its escaped
            byte value truncated — the writer only escapes single bytes. *)
         Buffer.add_char buf (Char.chr (code land 0xff))
       | _ -> fail c "bad escape");
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  let tok = String.sub c.s start (c.pos - start) in
  if tok = "" then fail c "expected number";
  if String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') tok then
    match float_of_string_opt tok with
    | Some f -> Float f
    | None -> fail c "bad float"
  else
    match int_of_string_opt tok with
    | Some n -> Int n
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string_raw c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> fail c "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Assoc []
    end
    else begin
      let pair () =
        skip_ws c;
        let k = parse_string_raw c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        (k, v)
      in
      let rec items acc =
        let kv = pair () in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (kv :: acc)
        | Some '}' ->
          advance c;
          List.rev (kv :: acc)
        | _ -> fail c "expected ',' or '}'"
      in
      Assoc (items [])
    end
  | Some _ -> parse_number c

let of_string s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Assoc kvs -> ( match List.assoc_opt key kvs with Some v -> v | None -> Null)
  | _ -> Null

let to_int_exn = function
  | Int n -> n
  | _ -> raise (Parse_error "expected int")

let to_list_exn = function
  | List xs -> xs
  | _ -> raise (Parse_error "expected list")

let to_string_exn = function
  | String s -> s
  | _ -> raise (Parse_error "expected string")
