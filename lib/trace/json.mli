(** A minimal JSON value type with a writer and a strict parser.

    The repository deliberately has no third-party JSON dependency; this
    module covers exactly what the tracing subsystem needs: serialising
    trace events and metric summaries, and parsing them back for the
    round-trip tests and the smoke-test validator.  Output is plain ASCII
    (non-ASCII bytes in strings are escaped). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_channel : out_channel -> t -> unit

exception Parse_error of string

val of_string : string -> t
(** Strict parser for the subset this module emits (standard JSON without
    extensions).  Raises {!Parse_error} on malformed input or trailing
    garbage.  Numbers containing '.', 'e' or 'E' parse as [Float],
    otherwise as [Int]. *)

val member : string -> t -> t
(** [member key (Assoc ...)] — the value bound to [key], or [Null] when
    absent or when the value is not an object. *)

val to_int_exn : t -> int
(** [Int n] -> [n]; raises {!Parse_error} otherwise. *)

val to_list_exn : t -> t list

val to_string_exn : t -> string
