(** Low-overhead structured event tracer.

    A tracer is a fixed-capacity ring buffer of {!Event.t}: emission is an
    array store plus two integer bumps; when the buffer is full the oldest
    events are overwritten (and counted in {!dropped}).  Per-category
    counts are kept exactly even for dropped events, so summary statistics
    survive overflow.

    {b The disabled path is free.}  {!disabled} is a shared zero-capacity
    tracer with [enabled = false]; instrumentation sites must guard with
    {!enabled} so that no event (and none of its arguments) is even
    allocated when tracing is off:

    {[ if Tracer.enabled tr then Tracer.emit tr ~ts ~proc ~tid (Fork { child }) ]}

    The tracer is not synchronised: the simulator is single-threaded, and
    the native pool emits only under its own scheduler lock. *)

type t

val disabled : t
(** The shared no-op tracer ([enabled = false], capacity 0). *)

val create : ?capacity:int -> unit -> t
(** An enabled tracer.  [capacity] defaults to [1 lsl 20] events. *)

val enabled : t -> bool

val emit : t -> ts:int -> proc:int -> tid:int -> Event.kind -> unit
(** No-op on a disabled tracer (but prefer guarding with {!enabled} so the
    kind is not allocated). *)

val length : t -> int
(** Events currently held (<= capacity). *)

val dropped : t -> int
(** Events overwritten because the ring was full. *)

val total : t -> int
(** Total events ever emitted ([length + dropped]). *)

val events : t -> Event.t list
(** Retained events, oldest first. *)

val iter : (Event.t -> unit) -> t -> unit
(** Iterate retained events oldest first without materialising a list. *)

val count : t -> Event.kind -> int
(** Events ever emitted in the same category as the given kind (payload
    ignored; includes dropped events). *)

val counts : t -> (string * int) list
(** All per-category counts, [kind_names] order. *)

val clear : t -> unit
(** Drop all retained events and reset every counter. *)
