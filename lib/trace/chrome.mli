(** Chrome trace-event (Perfetto / about://tracing) export.

    Converts a recorded event stream into the Trace Event Format JSON
    object understood by [chrome://tracing] and {{:https://ui.perfetto.dev}
    Perfetto}: one timeline track per processor (pid 0, tid = processor
    index, named "P<i>"), [ph:"X"] duration slices for executed actions
    (duration = work units), [ph:"i"] instants for the remaining scheduler
    events, and [ph:"C"] counter tracks ("live deques", "live heap",
    "live threads") fed by the periodic {!Event.Counter} samples.

    Timestamps are exported 1:1 — one simulated timestep (or one
    microsecond of native-pool wall clock) renders as one microsecond.

    Instant events carry a coarse [cat] grouping usable in the trace
    viewer's filter box: "task" (fork/join), "steal", "quota", "dummy",
    "deque", "cache", "lock", "action", "counter". *)

val category : Event.kind -> string
(** The coarse [cat] grouping above. *)

val to_json : p:int -> Event.t list -> Json.t
(** [p] is the processor count (names the per-processor tracks; events
    from higher proc ids, e.g. [-1] counter samples, are still
    exported). *)

val write_file : path:string -> p:int -> Event.t list -> unit
(** Serialise {!to_json} to [path]. *)
