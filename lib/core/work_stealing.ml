module Deque = Dfd_structures.Deque
module Prng = Dfd_structures.Prng
module Metrics = Dfd_machine.Metrics
module Tracer = Dfd_trace.Tracer
module Event = Dfd_trace.Event

module P = struct
  type t = {
    ctx : Sched_intf.ctx;
    deques : Thread_state.t Deque.t array;  (** one fixed deque per processor. *)
    hit_at : int array;  (** per-victim steal arbitration, as in DFDeques. *)
  }

  let name = "WS"

  let global_queue = false

  let has_quota = false

  let create ctx =
    let p = ctx.Sched_intf.cfg.Dfd_machine.Config.p in
    { ctx; deques = Array.init p (fun _ -> Deque.create ()); hit_at = Array.make p (-1) }

  let register_root t root = Deque.push_top t.deques.(0) root

  let steal t ~proc : Sched_intf.acquired =
    let ctx = t.ctx in
    Metrics.steal_attempt ctx.Sched_intf.metrics;
    if Dfd_fault.Fault.steal_fails ctx.Sched_intf.fault then begin
      (* injected steal failure: the attempt is charged but finds nothing *)
      if Tracer.enabled ctx.Sched_intf.tracer then
        Tracer.emit ctx.Sched_intf.tracer ~ts:ctx.Sched_intf.now ~proc ~tid:(-1)
          (Event.Fault_injected { fault = "steal_fail" });
      No_work
    end
    else
    let p = ctx.Sched_intf.cfg.Dfd_machine.Config.p in
    let victim = Prng.int ctx.Sched_intf.rng p in
    if Tracer.enabled ctx.Sched_intf.tracer then
      Tracer.emit ctx.Sched_intf.tracer ~ts:ctx.Sched_intf.now ~proc ~tid:(-1)
        (Event.Steal_attempt { victim });
    if victim = proc then No_work
    else if t.hit_at.(victim) = ctx.Sched_intf.now then No_work
    else (
      match Deque.pop_bottom t.deques.(victim) with
      | None -> No_work
      | Some th ->
        t.hit_at.(victim) <- ctx.Sched_intf.now;
        Metrics.steal_success ctx.Sched_intf.metrics;
        Metrics.steal_from ctx.Sched_intf.metrics ~victim;
        let latency = ctx.Sched_intf.now - ctx.Sched_intf.last_active.(proc) in
        Metrics.record_steal_latency ctx.Sched_intf.metrics latency;
        if Tracer.enabled ctx.Sched_intf.tracer then
          Tracer.emit ctx.Sched_intf.tracer ~ts:ctx.Sched_intf.now ~proc
            ~tid:th.Thread_state.tid
            (Event.Steal_success { victim; latency });
        Got_steal th)

  let acquire t ~proc : Sched_intf.acquired =
    match Deque.pop_top t.deques.(proc) with
    | Some th ->
      Metrics.local_dispatch t.ctx.Sched_intf.metrics;
      Got_local th
    | None -> steal t ~proc

  let on_fork t ~proc ~parent ~child =
    Deque.push_top t.deques.(proc) parent;
    child

  let on_suspend _t ~proc:_ _th = ()

  let on_terminate _t ~proc:_ ~dead:_ ~woken = woken

  let on_quota_exhausted _t ~proc:_ _th =
    failwith "WS has no memory quota (infinite threshold)"

  let after_dummy _t ~proc:_ ~woken:_ =
    failwith "WS never executes dummy threads"

  let on_wake_lock t ~proc th = Deque.push_top t.deques.(proc) th

  (* Per-deque 1DF priority ordering holds for nested-parallel programs in
     WS as well (each deque is a chain of ancestors' continuations). *)
  let check_invariants t =
    Array.iter
      (fun dq ->
         let prev = ref None in
         Deque.iter_top_first
           (fun th ->
              (match !prev with
               | Some before ->
                 if not (Thread_state.higher_priority before th) then
                   failwith "WS deque not in priority order"
               | None -> ());
              prev := Some th)
           dq)
      t.deques

  let stat t =
    [ ("ready", Array.fold_left (fun acc d -> acc + Deque.length d) 0 t.deques) ]
end

let policy ctx = Sched_intf.Packed ((module P), P.create ctx)
