module Dll = Dfd_structures.Dll
module Deque = Dfd_structures.Deque
module Prng = Dfd_structures.Prng
module Metrics = Dfd_machine.Metrics
module Tracer = Dfd_trace.Tracer
module Event = Dfd_trace.Event

type variant = { steal_from_top : bool; victim_anywhere : bool }

let paper_variant = { steal_from_top = false; victim_anywhere = false }

module P = struct
  type deque = {
    dq : Thread_state.t Deque.t;
    mutable owner : int option;
    mutable hit_at : int;  (** timestep of the last successful steal from this
                               deque — at most one steal per deque per timestep
                               succeeds (Section 4.1 cost model). *)
    did : int;
    born : int;  (** timestep the deque entered R (residency tracking). *)
  }

  type t = {
    ctx : Sched_intf.ctx;
    r : deque Dll.t;  (** the global deque list R, highest priority leftmost. *)
    proc : deque Dll.node option array;  (** deque owned by each processor. *)
    mutable next_did : int;
    variant : variant;  (** ablation knobs; {!paper_variant} = Figure 5. *)
  }

  let name = "DFDeques"

  let global_queue = false

  let has_quota = true

  let create_with variant ctx =
    {
      ctx;
      r = Dll.create ();
      proc = Array.make ctx.Sched_intf.cfg.Dfd_machine.Config.p None;
      next_did = 0;
      variant;
    }

  let create ctx = create_with paper_variant ctx

  let new_deque t ~proc ~owner =
    let now = t.ctx.Sched_intf.now in
    let d = { dq = Deque.create (); owner; hit_at = -1; did = t.next_did; born = now } in
    t.next_did <- t.next_did + 1;
    if Tracer.enabled t.ctx.Sched_intf.tracer then
      Tracer.emit t.ctx.Sched_intf.tracer ~ts:now ~proc ~tid:(-1)
        (Event.Deque_created { did = d.did });
    d

  (* Every removal of a deque from R goes through here: record its
     residency (how long it sat in the globally ordered list). *)
  let remove_deque t ~proc node =
    let d = Dll.value node in
    let residency = t.ctx.Sched_intf.now - d.born in
    Metrics.record_deque_residency t.ctx.Sched_intf.metrics residency;
    if Tracer.enabled t.ctx.Sched_intf.tracer then
      Tracer.emit t.ctx.Sched_intf.tracer ~ts:t.ctx.Sched_intf.now ~proc ~tid:(-1)
        (Event.Deque_deleted { did = d.did; residency });
    Dll.remove t.r node

  let note_deques t = Metrics.deques_changed t.ctx.Sched_intf.metrics (Dll.length t.r)

  let register_root t root =
    (* The computation starts with the root thread in a single ownerless
       deque; the first successful steal picks it up. *)
    let d = new_deque t ~proc:(-1) ~owner:None in
    Deque.push_top d.dq root;
    ignore (Dll.push_front t.r d);
    note_deques t

  (* One steal attempt (one iteration of the steal() loop in Figure 5). *)
  let steal t ~proc : Sched_intf.acquired =
    let ctx = t.ctx in
    Metrics.steal_attempt ctx.Sched_intf.metrics;
    if Dfd_fault.Fault.steal_fails ctx.Sched_intf.fault then begin
      (* injected steal failure: the attempt is charged but finds nothing *)
      if Tracer.enabled ctx.Sched_intf.tracer then
        Tracer.emit ctx.Sched_intf.tracer ~ts:ctx.Sched_intf.now ~proc ~tid:(-1)
          (Event.Fault_injected { fault = "steal_fail" });
      No_work
    end
    else
    (* ablation: the paper targets the leftmost p deques (keeping steals
       near the depth-first frontier); victim_anywhere targets uniformly
       over all of R *)
    let bound =
      if t.variant.victim_anywhere then max 1 (Dll.length t.r)
      else ctx.Sched_intf.cfg.Dfd_machine.Config.p
    in
    let k = Prng.int ctx.Sched_intf.rng bound in
    if Tracer.enabled ctx.Sched_intf.tracer then
      Tracer.emit ctx.Sched_intf.tracer ~ts:ctx.Sched_intf.now ~proc ~tid:(-1)
        (Event.Steal_attempt { victim = k });
    match Dll.nth_node t.r k with
    | None -> No_work
    | Some node ->
      let d = Dll.value node in
      if d.hit_at = ctx.Sched_intf.now then No_work (* lost the per-timestep arbitration *)
      else (
        (* ablation: the paper steals the bottom (coarsest) thread;
           steal_from_top takes the finest instead *)
        match
          (if t.variant.steal_from_top then Deque.pop_top else Deque.pop_bottom) d.dq
        with
        | None -> No_work
        | Some th ->
          d.hit_at <- ctx.Sched_intf.now;
          Metrics.steal_success ctx.Sched_intf.metrics;
          (* the victim distribution is over deque slots of R (leftmost =
             0), the frontier-locality quantity of Section 3 *)
          Metrics.steal_from ctx.Sched_intf.metrics ~victim:k;
          let latency = ctx.Sched_intf.now - ctx.Sched_intf.last_active.(proc) in
          Metrics.record_steal_latency ctx.Sched_intf.metrics latency;
          if Tracer.enabled ctx.Sched_intf.tracer then
            Tracer.emit ctx.Sched_intf.tracer ~ts:ctx.Sched_intf.now ~proc ~tid:th.Thread_state.tid
              (Event.Steal_success { victim = k; latency });
          (* Section 4.2 instrumentation: the stolen thread's first node is
             heavy; it is premature unless no ready thread precedes it in
             the 1DF order, i.e. unless it came alone from the leftmost
             deque (Lemma 3.1 makes the leftmost top the global maximum). *)
          let was_leftmost =
            match Dll.front t.r with Some f -> Dll.value f == d | None -> false
          in
          if not (was_leftmost && Deque.is_empty d.dq) then
            Metrics.heavy_premature ctx.Sched_intf.metrics ~depth:th.Thread_state.depth;
          let nd = new_deque t ~proc ~owner:(Some proc) in
          let new_node = Dll.insert_after t.r node nd in
          (* Stealing the last thread of an ownerless deque deletes it. *)
          if Deque.is_empty d.dq && d.owner = None then remove_deque t ~proc node;
          t.proc.(proc) <- Some new_node;
          note_deques t;
          Got_steal th)

  let acquire t ~proc : Sched_intf.acquired =
    match t.proc.(proc) with
    | Some node -> (
        let d = Dll.value node in
        match Deque.pop_top d.dq with
        | Some th ->
          Metrics.local_dispatch t.ctx.Sched_intf.metrics;
          Got_local th
        | None ->
          (* Idle owner of an empty deque: delete it and steal. *)
          d.owner <- None;
          remove_deque t ~proc node;
          t.proc.(proc) <- None;
          note_deques t;
          steal t ~proc)
    | None -> steal t ~proc

  let own_deque t proc =
    match t.proc.(proc) with
    | Some node -> Dll.value node
    | None ->
      (* A processor executing a thread always owns a deque (it obtained the
         thread from one).  Defensive: adopt a fresh leftmost deque. *)
      let d = new_deque t ~proc ~owner:(Some proc) in
      let node = Dll.push_front t.r d in
      t.proc.(proc) <- Some node;
      note_deques t;
      d

  let on_fork t ~proc ~parent ~child =
    let d = own_deque t proc in
    Deque.push_top d.dq parent;
    ignore child;
    child

  let on_suspend _t ~proc:_ _th = ()

  let on_terminate _t ~proc:_ ~dead:_ ~woken =
    (* Figure 5, case (terminate): continue with the reawakened parent (its
       deque is provably empty at this point for nested-parallel programs). *)
    woken

  let give_up_deque t ~proc =
    match t.proc.(proc) with
    | None -> ()
    | Some node ->
      let d = Dll.value node in
      d.owner <- None;
      if Deque.is_empty d.dq then remove_deque t ~proc node;
      t.proc.(proc) <- None;
      note_deques t

  let on_quota_exhausted t ~proc th =
    (* Figure 5, case (memory quota exhausted): push the current thread and
       give up the deque, leaving it in R for thieves. *)
    let d = own_deque t proc in
    Deque.push_top d.dq th;
    give_up_deque t ~proc

  let after_dummy t ~proc ~woken =
    (match woken with
     | Some th -> Deque.push_top (own_deque t proc).dq th
     | None -> ());
    give_up_deque t ~proc

  let on_wake_lock t ~proc th =
    (* Pthreads extension (Section 5): a thread reawakened by a mutex
       release is placed on the waking processor's deque. *)
    Deque.push_top (own_deque t proc).dq th

  (* Lemma 3.1: flattening R left-to-right, each deque top-to-bottom, the
     thread priorities must be strictly decreasing (1DF order increasing). *)
  let check_invariants t =
    let prev = ref None in
    Dll.iter
      (fun d ->
         Deque.iter_top_first
           (fun th ->
              (match !prev with
               | Some before ->
                 if not (Thread_state.higher_priority before th) then
                   failwith
                     (Format.asprintf "Lemma 3.1 violated: %a not before %a" Thread_state.pp
                        before Thread_state.pp th)
               | None -> ());
              prev := Some th)
           d.dq)
      t.r

  let stat t =
    let owned = Array.fold_left (fun acc o -> acc + if o = None then 0 else 1) 0 t.proc in
    [ ("deques", Dll.length t.r); ("owned_deques", owned); ("deques_created", t.next_did) ]
end

let policy ctx = Sched_intf.Packed ((module P), P.create ctx)

let policy_with variant ctx = Sched_intf.Packed ((module P), P.create_with variant ctx)
