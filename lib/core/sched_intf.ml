(** Scheduler policy interface shared by DFDeques, work stealing, ADF and
    FIFO.

    The synchronous engine ({!Engine}) owns the timestep loop, the cost
    model, memory/cache accounting and all thread state transitions; a
    policy only decides {e where ready threads live} and {e which thread a
    processor gets next}.  This split keeps each scheduler close to its
    paper pseudocode (Figure 5 for DFDeques) and makes them directly
    comparable: they run under an identical execution and cost model. *)

(** Outcome of a processor asking for work. *)
type acquired =
  | Got_local of Thread_state.t
      (** obtained from the processor's own deque — a free scheduler
          transition; the thread's first action runs in the same timestep. *)
  | Got_steal of Thread_state.t
      (** obtained by a steal (or a dispatch from a global queue): consumes
          the timestep as the steal attempt, the stolen thread's first
          action still executes within it (Section 4.1 cost model); the
          engine resets the processor's memory quota. *)
  | No_work  (** failed steal attempt / empty queue: an idle timestep. *)

(** Everything a policy may consult; owned by the engine. *)
type ctx = {
  cfg : Dfd_machine.Config.t;
  metrics : Dfd_machine.Metrics.t;
  rng : Dfd_structures.Prng.t;
  tracer : Dfd_trace.Tracer.t;
      (** structured event sink; {!Dfd_trace.Tracer.disabled} unless the
          caller asked for a trace.  Policies must guard emissions with
          [Tracer.enabled] so the disabled path stays free. *)
  fault : Dfd_fault.Fault.t;
      (** fault-injection plan; {!Dfd_fault.Fault.none} unless the caller
          runs a chaos campaign.  Policies consult it at each steal
          attempt / queue dispatch ({!Dfd_fault.Fault.steal_fails}) and
          must treat a positive answer as a failed attempt. *)
  last_active : int array;
      (** per processor, the last timestep it held work (maintained by the
          engine); [now - last_active.(proc)] at a successful steal or
          dispatch is the acquisition latency a policy should feed to
          {!Dfd_machine.Metrics.record_steal_latency}. *)
  mutable now : int;  (** current timestep (for steal-conflict arbitration). *)
}

module type POLICY = sig
  type t

  val name : string

  val global_queue : bool
  (** Dispatches/enqueues serialise through the simulated global scheduler
      lock (FIFO, ADF) — the "scheduling contention" of Section 2.2. *)

  val has_quota : bool
  (** The engine enforces the memory threshold K (quota preemption and the
      big-allocation dummy transformation) for this policy. *)

  val create : ctx -> t

  val register_root : t -> Thread_state.t -> unit
  (** Install the root thread before the first timestep. *)

  val acquire : t -> proc:int -> acquired
  (** The processor has no current thread; find it one. *)

  val on_fork : t -> proc:int -> parent:Thread_state.t -> child:Thread_state.t -> Thread_state.t
  (** [parent] just forked [child]; park one of the two, return the thread
      the processor continues executing. *)

  val on_suspend : t -> proc:int -> Thread_state.t -> unit
  (** The current thread suspended (join or blocking lock); it is parked on
      its waitee, not in any ready container.  The policy may react (e.g.
      nothing for deque schedulers). *)

  val on_terminate :
    t -> proc:int -> dead:Thread_state.t -> woken:Thread_state.t option -> Thread_state.t option
  (** The current thread terminated, possibly waking its suspended parent.
      Return the thread the processor continues with (commonly the woken
      parent), or [None] to make it look for other work. *)

  val on_quota_exhausted : t -> proc:int -> Thread_state.t -> unit
  (** The processor's memory quota ran out before an allocation: the
      current (preempted) thread must be parked ready; for DFDeques the
      processor also abandons its deque (Figure 5, "give up stack"). *)

  val after_dummy : t -> proc:int -> woken:Thread_state.t option -> unit
  (** A dummy thread of the big-allocation transformation just terminated
      on this processor: park the woken parent (if any) and make the
      processor give up its deque and steal (Section 3.3). *)

  val on_wake_lock : t -> proc:int -> Thread_state.t -> unit
  (** A mutex release on [proc] woke this thread; park it ready.  [proc]
      keeps its current thread. *)

  val check_invariants : t -> unit
  (** Raise [Failure] if a structural invariant is violated (used by tests;
      e.g. Lemma 3.1 for DFDeques). *)

  val stat : t -> (string * int) list
  (** Observability: implementation-specific counters. *)
end

type packed = Packed : (module POLICY with type t = 't) * 't -> packed
