(** Runtime thread objects.

    A thread is {e active} from creation to termination; an active thread is
    {e ready} when it is neither suspended (waiting at a join or on a mutex)
    nor currently executing (Section 3.1).  The engine owns all state
    transitions; schedulers only move ready threads between containers.

    Every thread carries a priority label in a shared order-maintenance
    structure: at a fork the child is inserted immediately {e before} the
    parent, so labels realise exactly the serial depth-first (1DF) priority
    order that DFDeques and ADF are defined against.  DFDeques never reads
    the labels to schedule (its deque list maintains the order implicitly —
    Lemma 3.1); they exist so that the invariant can be {e checked}, and so
    that ADF can dispatch the leftmost ready thread. *)

type state =
  | Ready
  | Running
  | Blocked_join  (** suspended waiting for the most recent unjoined child. *)
  | Blocked_lock of int  (** suspended on the mutex with this id. *)
  | Blocked_cond of int  (** suspended on the condition variable with this id. *)
  | Done

type t = {
  tid : int;
  depth : int;  (** fork depth: 0 for the root, parent's + 1 for a child. *)
  mutable prog : Dfd_dag.Prog.t;  (** remaining instruction stream. *)
  parent : t option;
  mutable unjoined : t list;  (** forked, not yet joined children; LIFO. *)
  mutable state : state;
  mutable join_waiter : t option;
      (** the parent, iff it is currently suspended waiting for {e this}
          child to terminate. *)
  mutable prio : Dfd_structures.Order_maint.label;
  is_dummy : bool;  (** inserted by the large-allocation transformation. *)
  mutable big_alloc_pending : bool;
      (** the thread's next [Alloc] was already delayed behind its dummy
          threads (Section 3.3) and must now proceed regardless of quota. *)
  mutable ready_at : int;
      (** timestep at which the thread was last parked ready by a fork or a
          mutex wake; a thread parked at timestep t cannot execute an action
          before t+1 (its enabling node ran at t), preserving the dag
          precedence of the Section 4.1 cost model. *)
}

type pool
(** Thread factory: id supply + the shared priority order. *)

val create_pool : unit -> pool

val make_root : pool -> Dfd_dag.Prog.t -> t

val fork : pool -> parent:t -> Dfd_dag.Prog.t -> t
(** Create a child of [parent] running the given program, with priority
    immediately before the parent's; registers it in [parent.unjoined]. *)

val fork_dummy : pool -> parent:t -> t
(** A dummy thread (single no-op action) for the Section 3.3 big-allocation
    transformation. *)

val kill : pool -> t -> unit
(** Mark terminated and release the priority label. *)

val threads_created : pool -> int

val higher_priority : t -> t -> bool
(** [higher_priority a b] — does [a] come strictly earlier in 1DF order? *)

val is_ready : t -> bool

val dead : t -> bool

val pp : Format.formatter -> t -> unit
