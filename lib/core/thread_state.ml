module Om = Dfd_structures.Order_maint

type state = Ready | Running | Blocked_join | Blocked_lock of int | Blocked_cond of int | Done

type t = {
  tid : int;
  depth : int;
  mutable prog : Dfd_dag.Prog.t;
  parent : t option;
  mutable unjoined : t list;
  mutable state : state;
  mutable join_waiter : t option;
  mutable prio : Om.label;
  is_dummy : bool;
  mutable big_alloc_pending : bool;
  mutable ready_at : int;
}

type pool = { mutable next_id : int; order : Om.t; base : Om.label }

let create_pool () =
  let order, base = Om.create () in
  { next_id = 0; order; base }

let fresh_id pool =
  let id = pool.next_id in
  pool.next_id <- id + 1;
  id

let make_root pool prog =
  {
    tid = fresh_id pool;
    depth = 0;
    prog;
    parent = None;
    unjoined = [];
    state = Ready;
    join_waiter = None;
    prio = Om.insert_after pool.order pool.base;
    is_dummy = false;
    big_alloc_pending = false;
    ready_at = -1;
  }

let mk_child pool ~parent prog ~is_dummy =
  let child =
    {
      tid = fresh_id pool;
      depth = parent.depth + 1;
      prog;
      parent = Some parent;
      unjoined = [];
      state = Ready;
      join_waiter = None;
      (* The child precedes its parent in the serial depth-first order. *)
      prio = Om.insert_before pool.order parent.prio;
      is_dummy;
      big_alloc_pending = false;
      ready_at = -1;
    }
  in
  parent.unjoined <- child :: parent.unjoined;
  child

let fork pool ~parent prog = mk_child pool ~parent prog ~is_dummy:false

let fork_dummy pool ~parent =
  mk_child pool ~parent (Dfd_dag.Prog.Act (Dfd_dag.Action.Dummy, Dfd_dag.Prog.Nil)) ~is_dummy:true

let kill pool t =
  t.state <- Done;
  Om.delete pool.order t.prio

let threads_created pool = pool.next_id

let higher_priority a b = Om.compare a.prio b.prio < 0

let is_ready t = t.state = Ready

let dead t = t.state = Done

let pp ppf t =
  let st =
    match t.state with
    | Ready -> "ready"
    | Running -> "running"
    | Blocked_join -> "blocked-join"
    | Blocked_lock m -> Printf.sprintf "blocked-lock(%d)" m
    | Blocked_cond cv -> Printf.sprintf "blocked-cond(%d)" cv
    | Done -> "done"
  in
  Format.fprintf ppf "t%d[%s%s]" t.tid st (if t.is_dummy then ",dummy" else "")
