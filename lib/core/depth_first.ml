module Pheap = Dfd_structures.Pheap
module Metrics = Dfd_machine.Metrics

module P = struct
  type t = { ctx : Sched_intf.ctx; ready : Thread_state.t Pheap.t }

  let name = "ADF"

  let global_queue = true

  let has_quota = true

  let create ctx =
    {
      ctx;
      ready =
        Pheap.create ~leq:(fun a b ->
            Thread_state.higher_priority a b || a == b);
    }

  let register_root t root = Pheap.insert t.ready root

  let acquire t ~proc : Sched_intf.acquired =
    if Dfd_fault.Fault.steal_fails t.ctx.Sched_intf.fault then begin
      (* injected dispatch failure: the global-queue access finds nothing
         (lost arbitration under contention) *)
      if Dfd_trace.Tracer.enabled t.ctx.Sched_intf.tracer then
        Dfd_trace.Tracer.emit t.ctx.Sched_intf.tracer ~ts:t.ctx.Sched_intf.now ~proc ~tid:(-1)
          (Dfd_trace.Event.Fault_injected { fault = "steal_fail" });
      No_work
    end
    else
    match Pheap.pop_min t.ready with
    | Some th ->
      let ctx = t.ctx in
      Metrics.queue_dispatch ctx.Sched_intf.metrics;
      let latency = ctx.Sched_intf.now - ctx.Sched_intf.last_active.(proc) in
      Metrics.record_steal_latency ctx.Sched_intf.metrics latency;
      if Dfd_trace.Tracer.enabled ctx.Sched_intf.tracer then
        Dfd_trace.Tracer.emit ctx.Sched_intf.tracer ~ts:ctx.Sched_intf.now ~proc
          ~tid:th.Thread_state.tid
          (Dfd_trace.Event.Steal_success { victim = -1; latency });
      Got_steal th
    | None -> No_work

  let on_fork t ~proc:_ ~parent ~child =
    (* Depth-first: run the child; the parent re-enters the global queue
       where any processor may pick it up (Figure 3(b)'s scattering). *)
    Pheap.insert t.ready parent;
    child

  let on_suspend _t ~proc:_ _th = ()

  let on_terminate _t ~proc:_ ~dead:_ ~woken = woken

  let on_quota_exhausted t ~proc:_ th = Pheap.insert t.ready th

  let after_dummy t ~proc:_ ~woken =
    match woken with Some th -> Pheap.insert t.ready th | None -> ()

  let on_wake_lock t ~proc:_ th = Pheap.insert t.ready th

  let check_invariants t =
    List.iter
      (fun th ->
         if not (Thread_state.is_ready th) then failwith "ADF ready-heap holds non-ready thread")
      (Pheap.to_list_unordered t.ready)

  let stat t = [ ("ready", Pheap.size t.ready) ]
end

let policy ctx = Sched_intf.Packed ((module P), P.create ctx)
