module Prog = Dfd_dag.Prog
module Action = Dfd_dag.Action
module Config = Dfd_machine.Config
module Memory = Dfd_machine.Memory
module Cache = Dfd_machine.Cache
module Metrics = Dfd_machine.Metrics
module Prng = Dfd_structures.Prng
module Tracer = Dfd_trace.Tracer
module Event = Dfd_trace.Event
module Fault = Dfd_fault.Fault
module Watchdog = Dfd_fault.Watchdog
module Registry = Dfd_obs.Registry
module Flight = Dfd_obs.Flight
module Headroom = Dfd_obs.Headroom
module T = Thread_state

exception Deadlock of string

exception Stuck of string

type result = {
  sched : string;
  time : int;
  work : int;
  heap_peak : int;
  combined_peak : int;
  threads_peak : int;
  threads_created : int;
  total_alloc : int;
  final_heap : int;
  steals : int;
  steal_attempts : int;
  local_dispatches : int;
  queue_dispatches : int;
  quota_exhaustions : int;
  dummy_threads : int;
  heavy_premature : int;
  deque_peak : int;
  sched_granularity : float;
  local_steal_ratio : float;
  load_imbalance : float;
  cache_accesses : int;
  cache_misses : int;
  cache_miss_rate : float;
  metrics : Metrics.t;
}

type sched =
  [ `Dfdeques | `Ws | `Adf | `Fifo | `Dfdeques_variant of Dfdeques.variant ]

let make_policy (s : sched) ctx =
  match s with
  | `Dfdeques -> Dfdeques.policy ctx
  | `Dfdeques_variant v -> Dfdeques.policy_with v ctx
  | `Ws -> Work_stealing.policy ctx
  | `Adf -> Depth_first.policy ctx
  | `Fifo -> Fifo_sched.policy ctx

let sched_name = function
  | `Dfdeques -> "DFD"
  | `Dfdeques_variant _ -> "DFD-variant"
  | `Ws -> "WS"
  | `Adf -> "ADF"
  | `Fifo -> "FIFO"

type mutex = {
  mutable holder : T.t option;
  waiters : T.t Queue.t;
  mutable bus_penalized_at : int;
      (* last timestep a spinner's coherence traffic already slowed the
         holder (test-and-set ping-pong is charged once per timestep) *)
}

exception Malformed_run of string

let run ?(spin_locks = false) ?(check_invariants = false) ?(max_steps = 10_000_000_000)
    ?(tracer = Tracer.disabled) ?(fault = Fault.none) ?(no_progress_limit = 1000) ?observer
    ?sampler ?(registry = Registry.disabled) ?(flight = Flight.disabled) ?headroom
    ~(sched : sched) (cfg : Config.t) (prog : Prog.t) : result =
  let p = cfg.p in
  let metrics = Metrics.create ~p in
  let rng = Prng.create cfg.seed in
  let ctx =
    { Sched_intf.cfg; metrics; rng; tracer; fault; last_active = Array.make p 0; now = 0 }
  in
  let last_active = ctx.Sched_intf.last_active in
  let (Sched_intf.Packed ((module P), pol)) = make_policy sched ctx in
  let pool = T.create_pool () in
  let memory = Memory.create ~stack_bytes:cfg.stack_bytes in
  let cache = Option.map (fun geo -> Cache.create geo ~p) cfg.cache in
  let mutexes : (int, mutex) Hashtbl.t = Hashtbl.create 16 in
  let mutex m =
    match Hashtbl.find_opt mutexes m with
    | Some mu -> mu
    | None ->
      let mu = { holder = None; waiters = Queue.create (); bus_penalized_at = -1 } in
      Hashtbl.add mutexes m mu;
      mu
  in
  (* Condition variables: sticky (counted) signals + a waiter queue; a
     woken waiter re-acquires its mutex through the ordinary Lock path. *)
  let conds : (int, int ref * T.t Queue.t) Hashtbl.t = Hashtbl.create 16 in
  let cond cv =
    match Hashtbl.find_opt conds cv with
    | Some c -> c
    | None ->
      let c = (ref 0, Queue.create ()) in
      Hashtbl.add conds cv c;
      c
  in
  let curr : T.t option array = Array.make p None in
  (* First timestep at which the processor may act again. *)
  let avail = Array.make p 0 in
  let quota = Array.make p 0 in
  let finite_k = not (Config.is_infinite_threshold cfg) && P.has_quota in
  let k_bytes = if finite_k then Config.mem_threshold_exn cfg else max_int in
  Array.fill quota 0 p k_bytes;
  (* Reset the quota at a steal, first recording how much of K the
     processor consumed since the previous reset (skipped when nothing was
     used — idle steal retries would otherwise flood the histogram). *)
  let reset_quota proc =
    if finite_k then begin
      let used = k_bytes - quota.(proc) in
      if used > 0 then
        Metrics.record_quota_utilisation metrics (100.0 *. float_of_int used /. float_of_int k_bytes);
      quota.(proc) <- k_bytes
    end
  in
  (* Simulated global scheduler lock (costed mode only). *)
  let lock_free_at = ref 0 in
  let serialize proc =
    if cfg.queue_cost > 0 then begin
      let start = max ctx.now !lock_free_at in
      lock_free_at := start + cfg.queue_cost;
      avail.(proc) <- max avail.(proc) !lock_free_at
    end
  in
  (* No-progress watchdog: its snapshot closure renders the live scheduler
     state (policy counters, memory, per-processor activity, the recent
     trace ring) and runs only if the watchdog fires. *)
  let snapshot () =
    let b = Buffer.create 512 in
    Printf.bprintf b "=== engine diagnostic snapshot (t=%d) ===\n" ctx.Sched_intf.now;
    Printf.bprintf b "policy %s:" P.name;
    List.iter (fun (k, v) -> Printf.bprintf b " %s=%d" k v) (P.stat pol);
    Buffer.add_char b '\n';
    Printf.bprintf b "memory: heap=%d live_threads=%d\n" (Memory.heap_current memory)
      (Memory.live_threads memory);
    Printf.bprintf b "faults injected: %d\n" (Fault.injected_total fault);
    for proc = 0 to p - 1 do
      Printf.bprintf b "P%d: %s avail=%d\n" proc
        (match curr.(proc) with
         | Some th -> Format.asprintf "running %a" T.pp th
         | None -> "idle")
        avail.(proc)
    done;
    if Tracer.enabled tracer then begin
      let evs = Tracer.events tracer in
      let n = List.length evs in
      let recent = if n > 15 then List.filteri (fun i _ -> i >= n - 15) evs else evs in
      Printf.bprintf b "last %d trace events:\n" (List.length recent);
      List.iter (fun e -> Printf.bprintf b "  %s\n" (Format.asprintf "%a" Event.pp e)) recent
    end;
    Buffer.contents b
  in
  let wd = Watchdog.create ~limit:no_progress_limit ~snapshot () in
  let progress () = Watchdog.touch wd ~now:ctx.Sched_intf.now in
  let root = T.make_root pool prog in
  Memory.thread_created memory;
  P.register_root pol root;
  (* Live exposition: probes close over this run's metrics/memory state,
     so the registry answers mid-run queries and holds the final values
     once the run returns (upsert registration rebinds the series on the
     next run sharing the registry). *)
  if Registry.enabled registry then begin
    let cp name help f = Registry.probe registry ~kind:`Counter ~help name f in
    let gp name help f = Registry.probe registry ~kind:`Gauge ~help name f in
    gp "dfd_engine_time" "Simulated timestep clock." (fun () -> ctx.Sched_intf.now);
    gp "dfd_engine_heap_bytes" "Live simulated heap bytes." (fun () -> Memory.heap_current memory);
    gp "dfd_engine_live_threads" "Live (created, not yet exited) threads." (fun () ->
        Memory.live_threads memory);
    gp "dfd_engine_deques" "Deques currently in the global list R." (fun () ->
        Metrics.deque_current metrics);
    cp "dfd_engine_actions_total" "Unit actions executed." (fun () -> Metrics.actions metrics);
    cp "dfd_engine_steals_total" "Successful steals." (fun () -> Metrics.steals metrics);
    cp "dfd_engine_steal_attempts_total" "Steal attempts." (fun () ->
        Metrics.steal_attempts metrics);
    cp "dfd_engine_local_dispatches_total" "Threads obtained without a steal." (fun () ->
        Metrics.local_dispatches metrics);
    cp "dfd_engine_queue_dispatches_total" "Global-queue dispatches (FIFO/ADF)." (fun () ->
        Metrics.queue_dispatches metrics);
    cp "dfd_engine_quota_exhaustions_total" "Memory-threshold give-ups (Figure 5)." (fun () ->
        Metrics.quota_exhaustions metrics);
    cp "dfd_engine_dummy_threads_total" "Dummy threads of the Section 3.3 transformation."
      (fun () -> Metrics.dummies metrics);
    cp "dfd_engine_heavy_premature_total" "Heavy premature nodes (Lemma 4.2)." (fun () ->
        Metrics.heavy_prematures metrics);
    Registry.probe_histogram registry
      ~help:"Fork depth at which heavy premature nodes were stolen." "dfd_engine_premature_depth"
      (fun () -> Registry.hist_of_stats (Metrics.premature_depth metrics))
  end;
  let malformed msg = raise (Malformed_run msg) in

  (* Charge the current processor [extra] stall timesteps beyond this one. *)
  let stall proc extra = avail.(proc) <- max avail.(proc) (ctx.now + 1 + extra) in

  (* Shared by Unlock and Wait: release a held mutex, waking the first lock
     waiter (which must re-acquire when scheduled — no handoff). *)
  let release_mutex proc th m =
    let mu = mutex m in
    (match mu.holder with
     | Some h when h == th -> ()
     | _ -> malformed "unlock/wait on a mutex not held by the current thread");
    mu.holder <- None;
    match Queue.take_opt mu.waiters with
    | None -> ()
    | Some w ->
      w.T.state <- T.Ready;
      w.T.ready_at <- ctx.now;
      P.on_wake_lock pol ~proc w
  in
  let wake_cond_waiter proc w =
    w.T.state <- T.Ready;
    w.T.ready_at <- ctx.now;
    P.on_wake_lock pol ~proc w
  in

  (* Execute exactly one unit-starting action of [th] on [proc]; consumes
     the timestep. *)
  let execute_action proc th (a : Action.t) cont =
    th.T.prog <- cont;
    Metrics.action_executed metrics ~proc ~units:(Action.work_units a);
    last_active.(proc) <- ctx.Sched_intf.now;
    if Tracer.enabled tracer then
      Tracer.emit tracer ~ts:ctx.Sched_intf.now ~proc ~tid:th.T.tid
        (Event.Action_batch { units = Action.work_units a });
    (match observer with Some f -> f ~now:ctx.Sched_intf.now ~proc th a | None -> ());
    progress ();
    let extra = Action.depth_units a - 1 in
    let extra =
      match a with
      | Action.Touch addrs -> (
          match cache with
          | Some c ->
            let misses = Cache.access_many c ~proc addrs in
            let stall = misses * cfg.miss_penalty in
            if misses > 0 && Tracer.enabled tracer then
              Tracer.emit tracer ~ts:ctx.Sched_intf.now ~proc ~tid:th.T.tid
                (Event.Cache_miss_stall { misses; stall });
            extra + stall
          | None -> extra)
      | Action.Alloc n ->
        Memory.alloc memory n;
        th.T.big_alloc_pending <- false;
        if finite_k then begin
          quota.(proc) <- quota.(proc) - n;
          (* injected allocation spike: a burst past K charged against the
             quota, forcing extra deque give-ups downstream *)
          let spike = Fault.alloc_spike fault in
          if spike > 0 then begin
            if Tracer.enabled tracer then
              Tracer.emit tracer ~ts:ctx.Sched_intf.now ~proc ~tid:th.T.tid
                (Event.Fault_injected { fault = "alloc_spike" });
            quota.(proc) <- quota.(proc) - spike
          end
        end;
        extra
      | Action.Free n ->
        Memory.free memory n;
        (* The quota is the NET allocation between steals (Section 3.3):
           deallocations earn the quota back, capped at K. *)
        if finite_k then quota.(proc) <- min k_bytes (quota.(proc) + n);
        extra
      | Action.Dummy ->
        Metrics.dummy_executed metrics;
        if Tracer.enabled tracer then
          Tracer.emit tracer ~ts:ctx.Sched_intf.now ~proc ~tid:th.T.tid Event.Dummy_exec;
        extra
      | Action.Unlock m ->
        (* Pthreads semantics: the woken waiter becomes ready and must
           re-acquire the mutex when scheduled (it may lose the race to a
           running thread — no handoff, no parked holders). *)
        release_mutex proc th m;
        extra
      | Action.Signal cv ->
        let pending, waiters = cond cv in
        (match Queue.take_opt waiters with
         | Some w -> wake_cond_waiter proc w
         | None -> incr pending);
        extra
      | Action.Broadcast cv ->
        let _, waiters = cond cv in
        Queue.iter (fun w -> wake_cond_waiter proc w) waiters;
        Queue.clear waiters;
        extra
      | Action.Lock _ ->
        (* injected lock-hold delay: the winner keeps the mutex for extra
           timesteps, stretching the critical section for everyone queued *)
        let d = Fault.lock_delay fault in
        if d > 0 && Tracer.enabled tracer then
          Tracer.emit tracer ~ts:ctx.Sched_intf.now ~proc ~tid:th.T.tid
            (Event.Fault_injected { fault = "lock_delay" });
        extra + d
      | Action.Work _ | Action.Wait _ -> extra
    in
    stall proc extra
  in

  (* Per-processor turn: free scheduler transitions, then at most one unit
     action (or one steal attempt).  [stole] records whether this timestep
     was already consumed by a steal/dispatch. *)
  let turn proc =
    let stole = ref false in
    let finished = ref false in
    while not !finished do
      match curr.(proc) with
      | None ->
        if !stole then finished := true
        else (
          match P.acquire pol ~proc with
          | Sched_intf.No_work ->
            reset_quota proc;
            if P.global_queue then serialize proc;
            if cfg.steal_cost > 1 && not P.global_queue then stall proc (cfg.steal_cost - 1);
            stole := true
          | Sched_intf.Got_local th ->
            last_active.(proc) <- ctx.now;
            th.T.state <- T.Running;
            curr.(proc) <- Some th;
            (* A thread parked this very timestep (by a fork on another
               processor, or a mutex wake) may not run before the next
               timestep: its enabling node just executed. *)
            if th.T.ready_at = ctx.now then finished := true
          | Sched_intf.Got_steal th ->
            reset_quota proc;
            last_active.(proc) <- ctx.now;
            if P.global_queue then serialize proc;
            if cfg.steal_cost > 1 && not P.global_queue then stall proc (cfg.steal_cost - 1);
            th.T.state <- T.Running;
            curr.(proc) <- Some th;
            if th.T.ready_at = ctx.now then finished := true;
            stole := true)
      | Some th -> (
          match th.T.prog with
          | Prog.Nil ->
            (* Termination is a free transition: the thread's last action ran
               in an earlier timestep. *)
            if th.T.unjoined <> [] then malformed "thread terminated with unjoined children";
            T.kill pool th;
            Memory.thread_exited memory;
            curr.(proc) <- None;
            let woken =
              match th.T.join_waiter with
              | Some parent ->
                th.T.join_waiter <- None;
                parent.T.state <- T.Ready;
                Some parent
              | None -> None
            in
            if th.T.is_dummy then P.after_dummy pol ~proc ~woken
            else (
              match P.on_terminate pol ~proc ~dead:th ~woken with
              | Some next ->
                next.T.state <- T.Running;
                curr.(proc) <- Some next
              | None -> ())
          | Prog.Join k -> (
              match th.T.unjoined with
              | [] -> malformed "join without an unjoined child"
              | c :: rest ->
                if T.dead c then begin
                  th.T.unjoined <- rest;
                  th.T.prog <- k
                end
                else begin
                  (* Suspend: free transition. *)
                  if Tracer.enabled tracer then
                    Tracer.emit tracer ~ts:ctx.now ~proc ~tid:th.T.tid
                      (Event.Join { child = c.T.tid });
                  th.T.state <- T.Blocked_join;
                  c.T.join_waiter <- Some th;
                  P.on_suspend pol ~proc th;
                  curr.(proc) <- None
                end)
          | Prog.Act (Action.Alloc n, _) when finite_k && n > k_bytes && not th.T.big_alloc_pending
            ->
            (* Section 3.3: delay the big allocation behind a dummy-thread
               fork tree (runtime dag transformation; free).  The flag makes
               the allocation proceed once its dummies have run. *)
            th.T.big_alloc_pending <- true;
            (match th.T.prog with
             | Prog.Act (_, k) -> th.T.prog <- Dummy.transform ~alloc:n ~k:k_bytes ~cont:k
             | _ -> assert false)
          | Prog.Act (Action.Alloc n, _)
            when finite_k && quota.(proc) < n && n <= k_bytes && not th.T.big_alloc_pending ->
            (* Memory quota exhausted: preempt (free transition). *)
            Metrics.quota_exhausted metrics;
            if Tracer.enabled tracer then
              Tracer.emit tracer ~ts:ctx.now ~proc ~tid:th.T.tid
                (Event.Quota_exhausted { used = k_bytes - quota.(proc); quota = k_bytes });
            if Flight.enabled flight then
              Flight.recordk flight ~lane:proc ~ts:ctx.now ~proc ~tid:th.T.tid
                (Event.Quota_exhausted { used = k_bytes - quota.(proc); quota = k_bytes });
            th.T.state <- T.Ready;
            P.on_quota_exhausted pol ~proc th;
            curr.(proc) <- None
          | Prog.Act (Action.Wait (cv, m), k) ->
            (* release the mutex, then either consume a sticky signal (the
               wait node executes and the thread proceeds to re-acquire) or
               park on the condition variable (free transition). *)
            release_mutex proc th m;
            let pending, waiters = cond cv in
            let reacquire = Prog.Act (Action.Lock m, k) in
            if !pending > 0 then begin
              decr pending;
              execute_action proc th (Action.Wait (cv, m)) reacquire;
              finished := true
            end
            else begin
              th.T.prog <- reacquire;
              th.T.state <- T.Blocked_cond cv;
              Queue.push th waiters;
              P.on_suspend pol ~proc th;
              curr.(proc) <- None
            end
          | Prog.Act (Action.Lock m, k) -> (
              let mu = mutex m in
              match mu.holder with
              | None ->
                mu.holder <- Some th;
                execute_action proc th (Action.Lock m) k;
                finished := true
              | Some holder when spin_locks ->
                (* Busy-wait: burn this timestep, retry next.  The spinner's
                   test-and-set traffic also slows the lock holder (cache-line
                   ping-pong), charged at most once per mutex per timestep. *)
                if Tracer.enabled tracer then
                  Tracer.emit tracer ~ts:ctx.now ~proc ~tid:th.T.tid
                    (Event.Lock_wait { mutex = m });
                stall proc 0;
                (* at most one 2-step penalty per 3 timesteps: the holder is
                   slowed ~2-3x under contention, never starved *)
                if mu.bus_penalized_at < ctx.now - 2 then begin
                  mu.bus_penalized_at <- ctx.now;
                  Array.iteri
                    (fun q t ->
                       match t with
                       | Some th' when th' == holder -> avail.(q) <- max avail.(q) (ctx.now + 2)
                       | _ -> ())
                    curr
                end;
                finished := true
              | Some _ ->
                if Tracer.enabled tracer then
                  Tracer.emit tracer ~ts:ctx.now ~proc ~tid:th.T.tid
                    (Event.Lock_wait { mutex = m });
                th.T.state <- T.Blocked_lock m;
                Queue.push th mu.waiters;
                P.on_suspend pol ~proc th;
                curr.(proc) <- None)
          | Prog.Act (a, k) ->
            execute_action proc th a k;
            finished := true
          | Prog.Fork (child_thunk, k) ->
            (* The fork is a unit action in the parent thread. *)
            th.T.prog <- k;
            let child_prog = child_thunk () in
            let child =
              if Dummy.is_dummy_prog child_prog then T.fork_dummy pool ~parent:th
              else T.fork pool ~parent:th child_prog
            in
            Memory.thread_created memory;
            Metrics.action_executed metrics ~proc ~units:1;
            last_active.(proc) <- ctx.now;
            if Tracer.enabled tracer then begin
              Tracer.emit tracer ~ts:ctx.now ~proc ~tid:th.T.tid
                (Event.Fork { child = child.T.tid });
              Tracer.emit tracer ~ts:ctx.now ~proc ~tid:th.T.tid
                (Event.Action_batch { units = 1 })
            end;
            (* the fork is one unit action of the parent; observers see it
               as Work 1, matching Analysis.iter_serial *)
            (match observer with
             | Some f -> f ~now:ctx.Sched_intf.now ~proc th (Action.Work 1)
             | None -> ());
            progress ();
            let pressure =
              if Memory.live_threads memory > cfg.stack_pressure_threshold then
                cfg.stack_pressure_cost
              else 0
            in
            stall proc (cfg.thread_cost + pressure);
            th.T.state <- T.Ready;
            let next = P.on_fork pol ~proc ~parent:th ~child in
            (* Whichever of the two was parked became ready only now. *)
            (if next == child then th.T.ready_at <- ctx.now
             else child.T.ready_at <- ctx.now);
            next.T.state <- T.Running;
            curr.(proc) <- Some next;
            finished := true)
    done
  in

  while not (T.dead root) do
    ctx.now <- ctx.now + 1;
    if ctx.now > max_steps then raise (Stuck (Printf.sprintf "exceeded %d timesteps" max_steps));
    for proc = 0 to p - 1 do
      if avail.(proc) > ctx.now then progress () (* stalled = executing *)
      else (
        (* injected processor stall: the core freezes for a few timesteps
           (descheduled / slowed), counted as occupied like any stall *)
        match Fault.stall_steps fault with
        | 0 -> turn proc
        | s ->
          if Tracer.enabled tracer then
            Tracer.emit tracer ~ts:ctx.now ~proc ~tid:(-1)
              (Event.Fault_injected { fault = "stall" });
          if Flight.enabled flight then
            Flight.recordk flight ~lane:proc ~ts:ctx.now ~proc ~tid:(-1)
              (Event.Fault_injected { fault = "stall" });
          progress ();
          stall proc (s - 1))
    done;
    if check_invariants then P.check_invariants pol;
    if Tracer.enabled tracer then
      Tracer.emit tracer ~ts:ctx.now ~proc:(-1) ~tid:(-1)
        (Event.Counter
           {
             deques = Metrics.deque_current metrics;
             heap = Memory.heap_current memory;
             threads = Memory.live_threads memory;
           });
    (* The flight ring keeps a machine-wide counter track in its last lane:
       on a wedge the dump shows the final few hundred timesteps of heap /
       thread / deque history next to the per-proc fault and quota events. *)
    if Flight.enabled flight then
      Flight.recordk flight ~lane:p ~ts:ctx.now ~proc:(-1) ~tid:(-1)
        (Event.Counter
           {
             deques = Metrics.deque_current metrics;
             heap = Memory.heap_current memory;
             threads = Memory.live_threads memory;
           });
    (match headroom with
     | Some hr ->
       Headroom.observe hr ~live_bytes:(Memory.heap_current memory);
       Headroom.set_premature hr (Metrics.heavy_prematures metrics)
     | None -> ());
    (match sampler with
     | Some (every, f) ->
       if ctx.now mod every = 0 then
         f ~now:ctx.now ~heap:(Memory.heap_current memory)
           ~threads:(Memory.live_threads memory)
           ~deques:(Metrics.deque_current metrics)
     | None -> ());
    (try Watchdog.check wd ~now:ctx.now with
     | Watchdog.No_progress { idle; snapshot; _ } ->
       raise
         (Deadlock
            (Printf.sprintf "no progress for %d timesteps at t=%d (%d live threads)\n%s" idle
               ctx.now
               (Memory.live_threads memory)
               snapshot)))
  done;
  {
    sched = P.name;
    time = ctx.now;
    work = Metrics.actions metrics;
    heap_peak = Memory.heap_peak memory;
    combined_peak = Memory.combined_peak memory;
    threads_peak = Memory.live_threads_peak memory;
    threads_created = T.threads_created pool;
    total_alloc = Memory.total_allocated memory;
    final_heap = Memory.heap_current memory;
    steals = Metrics.steals metrics;
    steal_attempts = Metrics.steal_attempts metrics;
    local_dispatches = Metrics.local_dispatches metrics;
    queue_dispatches = Metrics.queue_dispatches metrics;
    quota_exhaustions = Metrics.quota_exhaustions metrics;
    dummy_threads = Metrics.dummies metrics;
    heavy_premature = Metrics.heavy_prematures metrics;
    deque_peak = Metrics.deque_peak metrics;
    sched_granularity = Metrics.sched_granularity metrics;
    local_steal_ratio = Metrics.local_steal_ratio metrics;
    load_imbalance = Metrics.load_imbalance metrics;
    cache_accesses = (match cache with Some c -> Cache.accesses c | None -> 0);
    cache_misses = (match cache with Some c -> Cache.misses c | None -> 0);
    cache_miss_rate = (match cache with Some c -> Cache.miss_rate c | None -> 0.0);
    metrics;
  }

module Json = Dfd_trace.Json

let histogram_to_json h =
  let module H = Dfd_structures.Stats.Histogram in
  let opt = function Some v -> Json.Float v | None -> Json.Null in
  Json.Assoc
    [
      ("count", Json.Int (H.count h));
      ("mean", opt (H.mean_opt h));
      ("min", opt (H.min_opt h));
      ("max", opt (H.max_opt h));
      ("p50", opt (H.quantile h 0.5));
      ("p90", opt (H.quantile h 0.9));
      ("p99", opt (H.quantile h 0.99));
      ( "buckets",
        Json.List
          (List.map
             (fun (le, count) ->
                Json.Assoc [ ("le", Json.Float le); ("count", Json.Int count) ])
             (H.buckets h)) );
    ]

let result_to_json r =
  let ints l = Json.List (List.map (fun n -> Json.Int n) (Array.to_list l)) in
  Json.Assoc
    [
      ("sched", Json.String r.sched);
      ( "counters",
        Json.Assoc
          [
            ("time", Json.Int r.time);
            ("work", Json.Int r.work);
            ("heap_peak", Json.Int r.heap_peak);
            ("combined_peak", Json.Int r.combined_peak);
            ("threads_peak", Json.Int r.threads_peak);
            ("threads_created", Json.Int r.threads_created);
            ("total_alloc", Json.Int r.total_alloc);
            ("final_heap", Json.Int r.final_heap);
            ("steals", Json.Int r.steals);
            ("steal_attempts", Json.Int r.steal_attempts);
            ("local_dispatches", Json.Int r.local_dispatches);
            ("queue_dispatches", Json.Int r.queue_dispatches);
            ("quota_exhaustions", Json.Int r.quota_exhaustions);
            ("dummy_threads", Json.Int r.dummy_threads);
            ("heavy_premature", Json.Int r.heavy_premature);
            ("deque_peak", Json.Int r.deque_peak);
            ("cache_accesses", Json.Int r.cache_accesses);
            ("cache_misses", Json.Int r.cache_misses);
          ] );
      ( "derived",
        Json.Assoc
          [
            ("sched_granularity", Json.Float r.sched_granularity);
            ("local_steal_ratio", Json.Float r.local_steal_ratio);
            ("load_imbalance", Json.Float r.load_imbalance);
            ("cache_miss_rate", Json.Float r.cache_miss_rate);
          ] );
      ( "histograms",
        Json.Assoc
          [
            ("steal_latency", histogram_to_json (Metrics.steal_latency r.metrics));
            ("deque_residency", histogram_to_json (Metrics.deque_residency r.metrics));
            ("quota_utilisation", histogram_to_json (Metrics.quota_utilisation r.metrics));
            ("premature_depth", histogram_to_json (Metrics.premature_depth r.metrics));
          ] );
      ("per_proc_actions", ints (Metrics.per_proc_actions r.metrics));
      ("per_victim_steals", ints (Metrics.per_victim_steals r.metrics));
    ]

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>[%s] T=%d W=%d@,heap peak=%d combined peak=%d threads peak=%d (created %d)@,\
     steals=%d/%d local=%d queue=%d quota=%d dummies=%d deques<=%d@,\
     granularity=%.2f local/steal=%.2f imbalance=%.2f cache: %d/%d (%.2f%% miss)@]"
    r.sched r.time r.work r.heap_peak r.combined_peak r.threads_peak r.threads_created r.steals
    r.steal_attempts r.local_dispatches r.queue_dispatches r.quota_exhaustions r.dummy_threads
    r.deque_peak r.sched_granularity r.local_steal_ratio r.load_imbalance r.cache_accesses
    r.cache_misses r.cache_miss_rate
