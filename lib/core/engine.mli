(** The synchronous multiprocessor simulation engine.

    Implements the cost model of Section 4.1: timesteps are synchronised
    across the [p] processors; each unit action takes one timestep; a steal
    attempt occupies its timestep, and a successful thief executes the
    stolen thread's first action within that same timestep; at most one
    steal per victim deque succeeds per timestep; scheduler transitions
    (local pops, suspensions, terminations, quota give-ups) are free.

    On top of that, the {e costed} configuration adds the performance
    effects of Section 5: simulated cache-miss stalls, serialisation of
    global scheduler structures through a lock, and thread-creation
    overhead (see {!Dfd_machine.Config}).

    The engine owns all thread state transitions (fork/join bookkeeping,
    mutexes, the memory quota and the Section 3.3 big-allocation
    transformation); the plugged {!Sched_intf.POLICY} only decides thread
    placement.  Running the same program under two policies therefore
    compares pure scheduling decisions under an identical machine. *)

exception Deadlock of string
(** No processor can make progress but live threads remain (e.g. a mutex
    cycle, or every thread suspended). *)

exception Stuck of string
(** [max_steps] exceeded. *)

exception Malformed_run of string
(** The program violated the model at runtime: unmatched join, termination
    with unjoined children, unlock of a mutex not held, ... *)

type result = {
  sched : string;
  time : int;  (** T_p: total timesteps until the root thread terminated. *)
  work : int;  (** unit actions executed (>= the program's W; dummy threads
                   and their fork trees add nodes). *)
  heap_peak : int;  (** high watermark of live heap bytes. *)
  combined_peak : int;  (** heap + thread-stack high watermark. *)
  threads_peak : int;  (** max simultaneously live threads ("max threads"). *)
  threads_created : int;
  total_alloc : int;  (** gross allocation Sa. *)
  final_heap : int;
  steals : int;
  steal_attempts : int;
  local_dispatches : int;
  queue_dispatches : int;
  quota_exhaustions : int;
  dummy_threads : int;
  heavy_premature : int;
      (** steals whose victim thread was not the globally highest-priority
          ready thread — heavy premature nodes in the sense of Section 4.2
          (DFDeques only; Lemma 4.2 bounds their expectation by O(p*D)). *)
  deque_peak : int;  (** max deques simultaneously in R (DFDeques only). *)
  sched_granularity : float;  (** actions per steal/dispatch (Section 6). *)
  local_steal_ratio : float;  (** own-deque dispatches per steal (Section 5.3). *)
  load_imbalance : float;
      (** max-over-mean per-processor executed actions; 1.0 = perfectly
          balanced (Section 1's automatic-load-balancing claim). *)
  cache_accesses : int;
  cache_misses : int;
  cache_miss_rate : float;  (** percent; 0 when the cache model is off. *)
  metrics : Dfd_machine.Metrics.t;
      (** the run's full metrics object, for consumers that need more than
          the flat counters above: the steal-latency / deque-residency /
          quota-utilisation histograms and the per-victim steal
          distribution. *)
}

type sched =
  [ `Dfdeques  (** the paper's DFDeques(K), Figure 5. *)
  | `Ws  (** Blumofe-Leiserson work stealing ("Cilk"). *)
  | `Adf  (** asynchronous depth-first (Narlikar-Blelloch). *)
  | `Fifo  (** the Pthreads library's original global FIFO queue. *)
  | `Dfdeques_variant of Dfdeques.variant
    (** DFDeques with ablation knobs (steal position, victim scope). *) ]

val make_policy : sched -> Sched_intf.ctx -> Sched_intf.packed

val sched_name : sched -> string

val run :
  ?spin_locks:bool ->
  ?check_invariants:bool ->
  ?max_steps:int ->
  ?tracer:Dfd_trace.Tracer.t ->
  ?fault:Dfd_fault.Fault.t ->
  ?no_progress_limit:int ->
  ?observer:(now:int -> proc:int -> Thread_state.t -> Dfd_dag.Action.t -> unit) ->
  ?sampler:int * (now:int -> heap:int -> threads:int -> deques:int -> unit) ->
  ?registry:Dfd_obs.Registry.t ->
  ?flight:Dfd_obs.Flight.t ->
  ?headroom:Dfd_obs.Headroom.t ->
  sched:sched ->
  Dfd_machine.Config.t ->
  Dfd_dag.Prog.t ->
  result
(** Execute the program to completion.

    [spin_locks] (default [false]): contended [Lock] actions busy-wait
    instead of suspending (the Cilk-style locks of Figure 17).
    [check_invariants] (default [false]): run the policy's structural
    invariant check (e.g. Lemma 3.1) after every timestep — O(ready
    threads) per step, tests only.  Only valid for pure nested-parallel
    programs: mutex/condvar wakeups intentionally approximate the priority
    order (Section 5) and trip the check.
    [max_steps] (default [10_000_000_000]).
    [tracer] (default {!Dfd_trace.Tracer.disabled}): structured event sink
    receiving the full {!Dfd_trace.Event} vocabulary — forks, join waits,
    steal attempts/successes, quota exhaustions, dummy executions, deque
    lifecycle, cache-miss stalls, lock waits, executed actions, and one
    counter sample (live deques / heap / threads) per timestep.  The
    disabled default costs one branch per potential event.
    [fault] (default {!Dfd_fault.Fault.none}): a seeded fault-injection
    plan.  The engine consults it once per processor per timestep for
    stalls, at each [Alloc] under finite K for allocation spikes, and at
    each lock acquisition for lock-hold delays; the plugged policy
    consults it at each steal attempt / queue dispatch for forced
    failures.  The whole simulation stays deterministic: the same seed
    and configuration replay the identical fault schedule.  Injections
    are traced as [Fault_injected] events when a tracer is active.
    [no_progress_limit] (default 1000): timesteps without an executed
    action before the no-progress watchdog declares deadlock/livelock;
    the raised {!Deadlock} carries a diagnostic snapshot (policy
    counters, memory state, per-processor activity, the recent trace
    ring).
    [observer] is called on every executed action (timestep, processor,
    thread, action) — schedule tracing for tests and visualisation; fork
    actions are reported as [Work 1].
    [sampler] = [(every, f)]: call [f] every [every] timesteps with the
    live heap bytes, live thread count and peak deque count — the
    memory-profile-over-time instrumentation behind `repro profile`.
    [registry] (default {!Dfd_obs.Registry.disabled}): registers
    [dfd_engine_*] probes closing over this run's live counters — the
    registry answers mid-run snapshots and retains the final values after
    the run returns.
    [flight] (default {!Dfd_obs.Flight.disabled}): crash-forensics ring;
    the engine records quota exhaustions and injected stalls on each
    processor's lane and a machine-wide counter sample per timestep on
    lane [p] (size the recorder with [~lanes:(p + 1)]).
    [headroom] : a {!Dfd_obs.Headroom} gauge family fed every timestep
    with the live heap bytes and the heavy-premature count; create it
    from [Analysis.analyze] results so its budget equals the
    [Oracle.thm44] bound. *)

val pp_result : Format.formatter -> result -> unit

val histogram_to_json : Dfd_structures.Stats.Histogram.t -> Dfd_trace.Json.t
(** Summary object: count, mean, min, max, p50/p90/p99 and the non-empty
    log2 buckets. *)

val result_to_json : result -> Dfd_trace.Json.t
(** Machine-readable export of every counter and derived metric of the
    run, plus the steal-latency / deque-residency / quota-utilisation
    histogram summaries and the per-processor / per-victim distributions
    (the payload behind [repro run --metrics-json]). *)
