module Metrics = Dfd_machine.Metrics

module P = struct
  type t = { ctx : Sched_intf.ctx; q : Thread_state.t Queue.t }

  let name = "FIFO"

  let global_queue = true

  let has_quota = false

  let create ctx = { ctx; q = Queue.create () }

  let register_root t root = Queue.push root t.q

  let acquire t ~proc : Sched_intf.acquired =
    if Dfd_fault.Fault.steal_fails t.ctx.Sched_intf.fault then begin
      (* injected dispatch failure: the global-queue access finds nothing
         (lost arbitration under contention) *)
      if Dfd_trace.Tracer.enabled t.ctx.Sched_intf.tracer then
        Dfd_trace.Tracer.emit t.ctx.Sched_intf.tracer ~ts:t.ctx.Sched_intf.now ~proc ~tid:(-1)
          (Dfd_trace.Event.Fault_injected { fault = "steal_fail" });
      No_work
    end
    else
    match Queue.take_opt t.q with
    | Some th ->
      let ctx = t.ctx in
      Metrics.queue_dispatch ctx.Sched_intf.metrics;
      let latency = ctx.Sched_intf.now - ctx.Sched_intf.last_active.(proc) in
      Metrics.record_steal_latency ctx.Sched_intf.metrics latency;
      if Dfd_trace.Tracer.enabled ctx.Sched_intf.tracer then
        Dfd_trace.Tracer.emit ctx.Sched_intf.tracer ~ts:ctx.Sched_intf.now ~proc
          ~tid:th.Thread_state.tid
          (Dfd_trace.Event.Steal_success { victim = -1; latency });
      Got_steal th
    | None -> No_work

  let on_fork t ~proc:_ ~parent ~child =
    (* pthread_create semantics: the new thread enters the run queue, the
       creator continues. *)
    Queue.push child t.q;
    parent

  let on_suspend _t ~proc:_ _th = ()

  let on_terminate t ~proc:_ ~dead:_ ~woken =
    (match woken with Some th -> Queue.push th t.q | None -> ());
    None

  let on_quota_exhausted _t ~proc:_ _th = failwith "FIFO has no memory quota"

  let after_dummy _t ~proc:_ ~woken:_ = failwith "FIFO never executes dummy threads"

  let on_wake_lock t ~proc:_ th = Queue.push th t.q

  let check_invariants t =
    Queue.iter
      (fun th ->
         if not (Thread_state.is_ready th) then failwith "FIFO queue holds non-ready thread")
      t.q

  let stat t = [ ("ready", Queue.length t.q) ]
end

let policy ctx = Sched_intf.Packed ((module P), P.create ctx)
