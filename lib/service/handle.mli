(** Submission handles for the non-blocking front door.

    [Service.submit] returns immediately with a handle; the job's
    lifecycle (queued → running → terminal outcome) is observable
    through it.  The type is polymorphic in the outcome so this module
    stays free of a dependency cycle with {!Service}, which instantiates
    ['a] with its [outcome] type.

    Handles are driven from the service's single driver thread:
    {!resolve} runs the registered callbacks synchronously on that
    thread (inside the service's ledger acknowledgement), so callbacks
    must be quick and must not re-enter the service. *)

type 'a status =
  | Queued  (** admitted: waiting in its tenant's lane or between retries. *)
  | Running  (** an attempt is executing on the pool right now. *)
  | Done of 'a  (** terminal; never changes again. *)

type 'a t

val make : id:int -> tenant:string -> 'a t
(** A fresh [Queued] handle. *)

val id : 'a t -> int
(** The ledger job id. *)

val tenant : 'a t -> string

val status : 'a t -> 'a status

val is_done : 'a t -> bool

val set_running : 'a t -> unit
(** Driver only; no-op once {!is_done}. *)

val set_queued : 'a t -> unit
(** Driver only (an attempt failed and a retry was scheduled); no-op
    once {!is_done}. *)

val resolve : 'a t -> 'a -> unit
(** Transition to [Done] and fire the callbacks in registration order.
    A second resolve is ignored (terminal outcomes are single-writer by
    the service's ledger; the handle enforces it independently). *)

val on_done : 'a t -> ('a -> unit) -> unit
(** Register a completion callback; fires immediately (synchronously)
    if the handle is already terminal. *)
