module Prng = Dfd_structures.Prng

type policy = { max_attempts : int; base_delay : int; max_delay : int }

let default = { max_attempts = 4; base_delay = 1; max_delay = 16 }

let validate p =
  if p.max_attempts < 1 then invalid_arg "Retry: max_attempts must be >= 1";
  if p.base_delay < 1 then invalid_arg "Retry: base_delay must be >= 1";
  if p.max_delay < p.base_delay then invalid_arg "Retry: max_delay must be >= base_delay"

type t = { pol : policy; rng : Prng.t; mutable attempts : int }

(* One stream per (seed, job): mix the job id into the seed with an odd
   multiplier so neighbouring jobs do not share schedule prefixes. *)
let create pol ~seed ~job =
  validate pol;
  { pol; rng = Prng.create (seed lxor ((job + 1) * 0x9e3779b1)); attempts = 0 }

let policy t = t.pol

let attempts t = t.attempts

let next_delay t =
  t.attempts <- min (t.attempts + 1) t.pol.max_attempts;
  if t.attempts >= t.pol.max_attempts then None
  else begin
    (* full jitter over a capped exponential ramp: uniform in
       [1, min max_delay (base·2^(n-1))] for the n-th retry *)
    let shift = min (t.attempts - 1) 20 in
    let ceiling = min t.pol.max_delay (t.pol.base_delay lsl shift) in
    Some (1 + Prng.int t.rng ceiling)
  end

(* Terminal-error classification: exception classes for which a retry is
   guaranteed to fail the same way, so attempting one only burns the
   budget.  The built-ins are the deterministic programming-bug classes;
   layers above (the service's [Supervisor_giveup]) register their own
   typed terminal errors here, since this module cannot name exceptions
   defined later in the dependency order. *)
let terminal_predicates : (exn -> bool) list ref = ref []

let register_terminal p = terminal_predicates := p :: !terminal_predicates

let is_terminal e =
  (match e with
   | Invalid_argument _ | Assert_failure _ | Match_failure _ | Undefined_recursive_module _ ->
     true
   | _ -> false)
  || List.exists (fun p -> p e) !terminal_predicates

let schedule pol ~seed ~job =
  let t = create pol ~seed ~job in
  let rec go acc =
    match next_delay t with None -> List.rev acc | Some d -> go (d :: acc)
  in
  go []
