(* Deficit round-robin over per-tenant bounded FIFOs.  Job cost is one
   credit, so a tenant's turn dispatches at most [weight] jobs before
   the pointer advances; an empty lane forfeits its leftover credit
   (work conservation).  All state is driven from one thread. *)

type 'a lane = {
  name : string;
  weight : int;
  bound : int;
  mutable front : 'a list;  (* next to dispatch, in order *)
  mutable back : 'a list;  (* newest first *)
  mutable depth : int;
  mutable peak : int;
}

type 'a t = {
  mutable lanes : 'a lane array;
  mutable cur : int;  (* index of the lane whose turn it is *)
  mutable credit : int;  (* remaining credits of the current turn *)
  mutable total : int;
}

let create () = { lanes = [||]; cur = 0; credit = 0; total = 0 }

let find t name =
  let n = Array.length t.lanes in
  let rec go i =
    if i >= n then invalid_arg (Printf.sprintf "Fair_queue: unknown tenant %S" name)
    else if t.lanes.(i).name = name then t.lanes.(i)
    else go (i + 1)
  in
  go 0

let add_tenant t ~name ~weight ~bound =
  if weight < 1 then invalid_arg "Fair_queue.add_tenant: weight must be >= 1";
  if bound < 1 then invalid_arg "Fair_queue.add_tenant: bound must be >= 1";
  if Array.exists (fun l -> l.name = name) t.lanes then
    invalid_arg (Printf.sprintf "Fair_queue.add_tenant: duplicate tenant %S" name);
  let lane = { name; weight; bound; front = []; back = []; depth = 0; peak = 0 } in
  t.lanes <- Array.append t.lanes [| lane |];
  (* the first registered lane opens the first turn *)
  if Array.length t.lanes = 1 then t.credit <- lane.weight

let tenants t = Array.to_list (Array.map (fun l -> l.name) t.lanes)

let weight t name = (find t name).weight

let bound t name = (find t name).bound

let min_weight t =
  if Array.length t.lanes = 0 then invalid_arg "Fair_queue.min_weight: no tenants";
  Array.fold_left (fun m l -> min m l.weight) max_int t.lanes

let enqueue t lane x =
  lane.back <- x :: lane.back;
  lane.depth <- lane.depth + 1;
  if lane.depth > lane.peak then lane.peak <- lane.depth;
  t.total <- t.total + 1

let push t ~tenant x =
  let lane = find t tenant in
  if lane.depth >= lane.bound then Error `Queue_full
  else begin
    enqueue t lane x;
    Ok ()
  end

let push_force t ~tenant x = enqueue t (find t tenant) x

let push_front t ~tenant x =
  let lane = find t tenant in
  lane.front <- x :: lane.front;
  lane.depth <- lane.depth + 1;
  if lane.depth > lane.peak then lane.peak <- lane.depth;
  t.total <- t.total + 1

let dequeue t lane =
  (match lane.front with
   | [] ->
     lane.front <- List.rev lane.back;
     lane.back <- []
   | _ -> ());
  match lane.front with
  | [] -> assert false
  | x :: rest ->
    lane.front <- rest;
    lane.depth <- lane.depth - 1;
    t.total <- t.total - 1;
    x

let pop t =
  if t.total = 0 then None
  else begin
    let n = Array.length t.lanes in
    (* at most n lane advances reach a non-empty lane with fresh credit *)
    let rec go scanned =
      if scanned > n then None
      else begin
        let lane = t.lanes.(t.cur) in
        if t.credit > 0 && lane.depth > 0 then begin
          t.credit <- t.credit - 1;
          Some (lane.name, dequeue t lane)
        end
        else begin
          t.cur <- (t.cur + 1) mod n;
          t.credit <- t.lanes.(t.cur).weight;
          go (scanned + 1)
        end
      end
    in
    go 0
  end

let remove t ~tenant pred =
  let lane = find t tenant in
  let rec split acc = function
    | [] -> None
    | x :: rest when pred x ->
      Some (x, List.rev_append acc rest)
    | x :: rest -> split (x :: acc) rest
  in
  match split [] lane.front with
  | Some (x, rest) ->
    lane.front <- rest;
    lane.depth <- lane.depth - 1;
    t.total <- t.total - 1;
    Some x
  | None -> (
    (* the back list is newest-first; search it in FIFO order *)
    match split [] (List.rev lane.back) with
    | Some (x, rest) ->
      lane.back <- List.rev rest;
      lane.depth <- lane.depth - 1;
      t.total <- t.total - 1;
      Some x
    | None -> None)

let depth t name = (find t name).depth

let peak_depth t name = (find t name).peak

let total t = t.total

let total_bound t = Array.fold_left (fun acc l -> acc + l.bound) 0 t.lanes
