module Pool = Dfd_runtime.Pool
module Tracer = Dfd_trace.Tracer
module Event = Dfd_trace.Event
module Registry = Dfd_obs.Registry
module Openmetrics = Dfd_obs.Openmetrics
module Flight = Dfd_obs.Flight
module Headroom = Dfd_obs.Headroom

type reject_reason = Queue_full | Breaker_open of string | Memory_pressure

let reject_reason_name = function
  | Queue_full -> "queue_full"
  | Breaker_open _ -> "breaker_open"
  | Memory_pressure -> "memory_pressure"

type outcome = Completed | Failed of string | Rejected of reject_reason

type config = {
  seed : int;
  queue_capacity : int;
  retry : Retry.policy;
  breaker : Breaker.config;
  quota_ctl : Quota_ctl.config option;
  default_deadline : float option;
  wedge_grace : float;
  domains : int;
  max_respawns : int;
  on_pool_retired : (in_flight:int option -> unit) option;
}

let default_config =
  {
    seed = 0;
    queue_capacity = 64;
    retry = Retry.default;
    breaker = Breaker.default_config;
    quota_ctl = None;
    default_deadline = None;
    wedge_grace = 5.0;
    domains = 2;
    max_respawns = 8;
    on_pool_retired = None;
  }

exception Supervisor_giveup of string

(* ------------------------------------------------------------------ *)
(* Jobs and the executor protocol                                      *)
(* ------------------------------------------------------------------ *)

type job = {
  id : int;
  class_ : string;
  deadline : float option;
  work : unit -> unit;
  retry : Retry.t;
}

type exec_result =
  | R_done
  | R_timeout
  | R_cancelled_leak  (** [Pool.Cancelled] escaped [run] — a pool bug; surfaced, never swallowed. *)
  | R_exn of string

(* The driver/executor mailbox.  Single-writer per transition:
   the driver writes [Assigned] (only over [Idle]) and [Idle] (only over
   [Finished]); the executor writes [Finished] (only over [Assigned]).
   A retired epoch's cell is simply never read again, so a late result
   from a wedged incarnation is structurally incapable of acknowledging
   anything — the "zero duplicated acks" half of the supervision
   contract. *)
type cell =
  | Idle
  | Assigned of job
  | Finished of { job_id : int; result : exec_result }

type epoch = {
  pool : Pool.t;
  flight : Flight.t;  (** this incarnation's crash-forensics ring. *)
  cell : cell Atomic.t;
  retired : bool Atomic.t;
  mutable exec : unit Domain.t option;
}

(* Poll helper: bounded spin, then micro-sleep — the service trades a few
   hundred microseconds of dispatch latency for not burning a core. *)
let relax spins = if spins < 200 then Domain.cpu_relax () else Unix.sleepf 0.0002

let executor_loop ep =
  let rec loop spins =
    match Atomic.get ep.cell with
    | Assigned job ->
      let result =
        match Pool.run ?timeout:job.deadline ep.pool job.work with
        | () -> R_done
        | exception Pool.Timeout -> R_timeout
        | exception Pool.Cancelled -> R_cancelled_leak
        | exception e -> R_exn (Printexc.to_string e)
      in
      Atomic.set ep.cell (Finished { job_id = job.id; result });
      loop 0
    | Idle | Finished _ ->
      if Atomic.get ep.retired then ()
      else begin
        relax spins;
        loop (spins + 1)
      end
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Ledger                                                              *)
(* ------------------------------------------------------------------ *)

type entry = {
  job : int;
  class_ : string;
  attempts : int;
  requeues : int;
  outcome : outcome option;
}

type ledger_slot = {
  l_id : int;
  l_class : string;
  mutable l_attempts : int;
  mutable l_requeues : int;
  mutable l_outcome : outcome option;
  mutable l_acks : int;
}

type counters = {
  accepted : int;
  rejected_queue_full : int;
  rejected_breaker_open : int;
  rejected_memory_pressure : int;
  completions : int;
  failures : int;
  retries : int;
  timeouts : int;
  wedges : int;
  respawns : int;
  duplicate_acks : int;
}

type t = {
  cfg : config;
  policy : Pool.policy;
  tracer : Tracer.t;
  registry : Registry.t;  (** live telemetry; shared with every pool incarnation. *)
  headroom : Headroom.t;
      (** Theorem-4.4 gauges over the service's pool; also owns the
          pressure baseline {!Quota_ctl.observe_headroom} consumes. *)
  flight_dir : string option;  (** where wedge/timeout/give-up dumps land. *)
  mutable epoch : epoch;
  mutable retired_epochs : epoch list;
  mutable clock : int;
  mutable queue : job list;  (** FIFO; wedge requeues go to the front. *)
  mutable pending : (int * job) list;  (** retries waiting for their due step. *)
  breakers : (string, Breaker.t) Hashtbl.t;
  qctl : Quota_ctl.t option;
  slots : (int, ledger_slot) Hashtbl.t;
  mutable next_id : int;
  (* counters *)
  mutable c_accepted : int;
  mutable c_rej_queue : int;
  mutable c_rej_breaker : int;
  mutable c_rej_memory : int;
  mutable c_completions : int;
  mutable c_failures : int;
  mutable c_retries : int;
  mutable c_timeouts : int;
  mutable c_wedges : int;
  mutable c_respawns : int;
  mutable c_dup_acks : int;
}

(* ------------------------------------------------------------------ *)
(* Pool incarnations                                                   *)
(* ------------------------------------------------------------------ *)

let effective_policy ~policy ~qctl =
  match (policy, qctl) with
  | Pool.Dfdeques _, Some qc -> Pool.Dfdeques { quota = Quota_ctl.quota qc }
  | p, _ -> p

let spawn_raw_epoch ~domains ~policy ~qctl ~registry =
  let domains = max 0 domains in
  (* each incarnation gets a fresh flight ring (forensics belong to one
     pool's lifetime) but shares the registry, whose upsert registration
     keeps the dfd_pool_* series continuous across respawns *)
  let flight = Flight.create ~lanes:(domains + 1) () in
  let pool = Pool.create ~domains ~registry ~flight (effective_policy ~policy ~qctl) in
  let ep = { pool; flight; cell = Atomic.make Idle; retired = Atomic.make false; exec = None } in
  ep.exec <- Some (Domain.spawn (fun () -> executor_loop ep));
  ep

let spawn_epoch t =
  let ep = spawn_raw_epoch ~domains:t.cfg.domains ~policy:t.policy ~qctl:t.qctl ~registry:t.registry in
  (* the fresh pool's alloc counter restarts at 0 *)
  Headroom.reset_pressure t.headroom;
  ep

(* The service's own supervision counters exposed as stable probes: they
   are pure functions of (seed, submission order), so they may appear in
   byte-deterministic reports — unlike the dfd_pool_* instruments the
   shared registry also carries, which race with running domains and are
   therefore registered unstable. *)
let register_service_probes t =
  let r = t.registry in
  let c name help f = Registry.probe r ~stable:true ~kind:`Counter ~help name f in
  let g name help f = Registry.probe r ~stable:true ~kind:`Gauge ~help name f in
  c "dfd_service_accepted_total" "Submissions admitted to the queue." (fun () -> t.c_accepted);
  c "dfd_service_rejected_total{reason=\"queue_full\"}" "Submissions shed, by reason." (fun () ->
      t.c_rej_queue);
  c "dfd_service_rejected_total{reason=\"breaker_open\"}" "" (fun () -> t.c_rej_breaker);
  c "dfd_service_rejected_total{reason=\"memory_pressure\"}" "" (fun () -> t.c_rej_memory);
  c "dfd_service_completions_total" "Jobs acknowledged Completed." (fun () -> t.c_completions);
  c "dfd_service_failures_total" "Jobs acknowledged Failed (retry budget exhausted)." (fun () ->
      t.c_failures);
  c "dfd_service_retries_total" "Re-attempts scheduled with backoff." (fun () -> t.c_retries);
  c "dfd_service_timeouts_total" "Attempts that hit their deadline." (fun () -> t.c_timeouts);
  c "dfd_service_wedges_total" "Pool incarnations declared wedged." (fun () -> t.c_wedges);
  c "dfd_service_respawns_total" "Fresh pool incarnations after a wedge." (fun () -> t.c_respawns);
  c "dfd_service_duplicate_acks_total" "Terminal acks refused (0 in a correct run)." (fun () ->
      t.c_dup_acks);
  c "dfd_service_breaker_transitions_total" "Circuit-breaker state changes across classes."
    (fun () ->
      Hashtbl.fold (fun _ b acc -> acc + List.length (Breaker.transitions b)) t.breakers 0);
  g "dfd_service_queue_depth" "Jobs queued, not yet dispatched." (fun () -> List.length t.queue);
  g "dfd_service_pending_retries" "Retries waiting for their due step." (fun () ->
      List.length t.pending);
  g "dfd_service_clock" "The driver's logical clock (steps)." (fun () -> t.clock);
  g "dfd_service_quota_bytes" "Current memory threshold K (0 under Work_stealing)." (fun () ->
      match t.qctl with
      | Some qc -> Quota_ctl.quota qc
      | None -> ( match Pool.quota t.epoch.pool with Some k -> k | None -> 0))

let create ?(tracer = Tracer.disabled) ?registry ?flight_dir ?headroom_s1 ?headroom_depth
    ?(config = default_config) policy =
  if config.queue_capacity < 1 then invalid_arg "Service: queue_capacity must be >= 1";
  if config.wedge_grace <= 0.0 then invalid_arg "Service: wedge_grace must be positive";
  if config.max_respawns < 0 then invalid_arg "Service: max_respawns must be >= 0";
  Retry.validate config.retry;
  let registry = match registry with Some r -> r | None -> Registry.create () in
  let qctl =
    match (policy, config.quota_ctl) with
    | Pool.Dfdeques _, Some qcfg -> Some (Quota_ctl.create qcfg)
    | _ -> None
  in
  let k0 =
    match (qctl, policy) with
    | Some qc, _ -> Quota_ctl.quota qc
    | None, Pool.Dfdeques { quota } -> quota
    | None, Pool.Work_stealing -> 0
  in
  let headroom =
    Headroom.create ~registry ~policy:"service" ?s1:headroom_s1 ?depth:headroom_depth
      ~p:(max 0 config.domains + 1) ~k:k0 ()
  in
  let t =
    {
      cfg = config;
      policy;
      tracer;
      registry;
      headroom;
      flight_dir;
      epoch = spawn_raw_epoch ~domains:config.domains ~policy ~qctl ~registry;
      retired_epochs = [];
      clock = 0;
      queue = [];
      pending = [];
      breakers = Hashtbl.create 8;
      qctl;
      slots = Hashtbl.create 64;
      next_id = 0;
      c_accepted = 0;
      c_rej_queue = 0;
      c_rej_breaker = 0;
      c_rej_memory = 0;
      c_completions = 0;
      c_failures = 0;
      c_retries = 0;
      c_timeouts = 0;
      c_wedges = 0;
      c_respawns = 0;
      c_dup_acks = 0;
    }
  in
  register_service_probes t;
  t

(* Crash forensics: serialise the current incarnation's flight ring to
   [flight_dir].  Best-effort by design — a dump failure must never mask
   the wedge/timeout it is trying to explain. *)
let flight_dump t ~reason =
  match t.flight_dir with
  | None -> ()
  | Some dir ->
    let path = Filename.concat dir (Printf.sprintf "flight_%s_step%05d.json" reason t.clock) in
    (try Flight.write_file ~path ~reason t.epoch.flight with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Ledger bookkeeping                                                  *)
(* ------------------------------------------------------------------ *)

let new_slot t ~class_ =
  let id = t.next_id in
  t.next_id <- id + 1;
  let s = { l_id = id; l_class = class_; l_attempts = 0; l_requeues = 0; l_outcome = None; l_acks = 0 } in
  Hashtbl.replace t.slots id s;
  s

(* The single choke point for terminal acknowledgements: the first ack
   wins, any further one is counted as a duplicate and refused. *)
let ack t (s : ledger_slot) out =
  s.l_acks <- s.l_acks + 1;
  match s.l_outcome with
  | Some _ -> t.c_dup_acks <- t.c_dup_acks + 1
  | None ->
    s.l_outcome <- Some out;
    (match out with
     | Completed -> t.c_completions <- t.c_completions + 1
     | Failed _ -> t.c_failures <- t.c_failures + 1
     | Rejected _ -> ())

let breaker_for t class_ =
  match Hashtbl.find_opt t.breakers class_ with
  | Some b -> b
  | None ->
    let b = Breaker.create t.cfg.breaker in
    Hashtbl.replace t.breakers class_ b;
    b

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

let submit t ?(class_ = "default") ?deadline work =
  let reject r =
    let s = new_slot t ~class_ in
    ack t s (Rejected r);
    (match r with
     | Queue_full -> t.c_rej_queue <- t.c_rej_queue + 1
     | Breaker_open _ -> t.c_rej_breaker <- t.c_rej_breaker + 1
     | Memory_pressure -> t.c_rej_memory <- t.c_rej_memory + 1);
    Error r
  in
  match t.qctl with
  | Some qc when Quota_ctl.shedding qc -> reject Memory_pressure
  | _ ->
    (* capacity before the breaker: [Breaker.admit] consumes a half-open
       probe slot, which must not be burned on a job the queue would
       refuse anyway *)
    if List.length t.queue >= t.cfg.queue_capacity then reject Queue_full
    else if not (Breaker.admit (breaker_for t class_) ~now:t.clock) then
      reject (Breaker_open class_)
    else begin
      let s = new_slot t ~class_ in
      let deadline = match deadline with Some _ as d -> d | None -> t.cfg.default_deadline in
      let job =
        {
          id = s.l_id;
          class_;
          deadline;
          work;
          retry = Retry.create t.cfg.retry ~seed:t.cfg.seed ~job:s.l_id;
        }
      in
      t.queue <- t.queue @ [ job ];
      t.c_accepted <- t.c_accepted + 1;
      Ok s.l_id
    end

(* ------------------------------------------------------------------ *)
(* Supervision: dispatch, wedge detection, respawn                     *)
(* ------------------------------------------------------------------ *)

(* Block until the executor posts this job's result, watching the pool's
   heartbeat; [None] = the pool made no progress for [wedge_grace]
   seconds with the attempt still in flight — declared wedged. *)
let await_result t (job : job) =
  let ep = t.epoch in
  let last_hb = ref (Pool.heartbeat ep.pool) in
  let last_progress = ref (Unix.gettimeofday ()) in
  let rec go spins =
    match Atomic.get ep.cell with
    | Finished { job_id; result } when job_id = job.id ->
      Atomic.set ep.cell Idle;
      Some result
    | Finished _ ->
      (* a result for a job this epoch never ran: impossible by the
         single-writer protocol *)
      assert false
    | Idle | Assigned _ ->
      let hb = Pool.heartbeat ep.pool in
      if hb <> !last_hb then begin
        last_hb := hb;
        last_progress := Unix.gettimeofday ()
      end;
      if Unix.gettimeofday () -. !last_progress > t.cfg.wedge_grace then None
      else begin
        relax spins;
        go (spins + 1)
      end
  in
  go 0

let respawn t ~in_flight =
  t.c_wedges <- t.c_wedges + 1;
  if t.c_respawns >= t.cfg.max_respawns then begin
    flight_dump t ~reason:"giveup";
    raise
      (Supervisor_giveup
         (Printf.sprintf "pool wedged %d times (max_respawns %d); last snapshot:\n%s"
            t.c_wedges t.cfg.max_respawns (Pool.snapshot t.epoch.pool)))
  end;
  flight_dump t ~reason:"wedge";
  t.c_respawns <- t.c_respawns + 1;
  let old = t.epoch in
  Atomic.set old.retired true;
  Pool.kill old.pool;
  t.retired_epochs <- old :: t.retired_epochs;
  (match t.cfg.on_pool_retired with
   | Some f -> f ~in_flight
   | None -> ());
  t.epoch <- spawn_epoch t

(* Schedule a retry (with backoff) or acknowledge the final failure. *)
let fail_path t (job : job) msg =
  Breaker.record_failure (breaker_for t job.class_) ~now:t.clock;
  match Retry.next_delay job.retry with
  | Some d ->
    t.c_retries <- t.c_retries + 1;
    t.pending <- (t.clock + d, job) :: t.pending
  | None ->
    let s = Hashtbl.find t.slots job.id in
    s.l_attempts <- Retry.attempts job.retry;
    ack t s (Failed msg)

let run_one t (job : job) =
  let s = Hashtbl.find t.slots job.id in
  (match Atomic.get t.epoch.cell with
   | Idle -> ()
   | _ -> assert false);
  Atomic.set t.epoch.cell (Assigned job);
  match await_result t job with
  | Some R_done ->
    s.l_attempts <- Retry.attempts job.retry + 1;
    Breaker.record_success (breaker_for t job.class_) ~now:t.clock;
    ack t s Completed
  | Some R_timeout ->
    flight_dump t ~reason:"timeout";
    t.c_timeouts <- t.c_timeouts + 1;
    s.l_attempts <- Retry.attempts job.retry + 1;
    fail_path t job "deadline exceeded"
  | Some R_cancelled_leak ->
    s.l_attempts <- Retry.attempts job.retry + 1;
    fail_path t job "internal: Pool.Cancelled leaked to the run caller"
  | Some (R_exn msg) ->
    s.l_attempts <- Retry.attempts job.retry + 1;
    fail_path t job msg
  | None ->
    (* wedged: respawn the pool, requeue the in-flight job exactly once
       at the front.  The requeue consumes a retry attempt (a job that
       wedges every incarnation must not respawn pools forever). *)
    respawn t ~in_flight:(Some job.id);
    s.l_requeues <- s.l_requeues + 1;
    Breaker.record_failure (breaker_for t job.class_) ~now:t.clock;
    (match Retry.next_delay job.retry with
     | Some _ ->
       t.c_retries <- t.c_retries + 1;
       t.queue <- job :: t.queue
     | None ->
       s.l_attempts <- Retry.attempts job.retry;
       ack t s (Failed "pool wedged; retry budget exhausted"))

(* ------------------------------------------------------------------ *)
(* The driver clock                                                    *)
(* ------------------------------------------------------------------ *)

let quota_tick t =
  match t.qctl with
  | None -> ()
  | Some qc ->
    (* the headroom profiler owns the pressure baseline: one source of
       truth for the controller, the alloc-rate gauge, and the trace *)
    let ab = (Pool.counters t.epoch.pool).Pool.alloc_bytes in
    let pressure = Headroom.take_pressure t.headroom ~cumulative_alloc:ab in
    (match Quota_ctl.observe qc ~now:t.clock ~pressure with
     | Quota_ctl.Steady -> ()
     | Quota_ctl.Shrink { from_quota; to_quota } | Quota_ctl.Grow { from_quota; to_quota } ->
       Pool.set_quota t.epoch.pool to_quota;
       Headroom.set_quota t.headroom to_quota;
       if Tracer.enabled t.tracer then
         Tracer.emit t.tracer ~ts:t.clock ~proc:(-1) ~tid:(-1)
           (Event.Quota_adjusted { from_quota; to_quota; pressure }))

let step t =
  t.clock <- t.clock + 1;
  (* promote due retries, ordered by (due step, job id) so the dispatch
     order is a pure function of the schedule *)
  let due, rest = List.partition (fun (d, _) -> d <= t.clock) t.pending in
  t.pending <- rest;
  let due = List.sort (fun (d1, j1) (d2, j2) -> compare (d1, j1.id) (d2, j2.id)) due in
  t.queue <- t.queue @ List.map snd due;
  quota_tick t;
  match t.queue with
  | [] -> ()
  | job :: rest ->
    t.queue <- rest;
    run_one t job

let idle t = t.queue = [] && t.pending = []

let drive ?(max_steps = 10_000) t =
  let n = ref 0 in
  while (not (idle t)) && !n < max_steps do
    step t;
    incr n
  done

let now t = t.clock

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let counters t =
  {
    accepted = t.c_accepted;
    rejected_queue_full = t.c_rej_queue;
    rejected_breaker_open = t.c_rej_breaker;
    rejected_memory_pressure = t.c_rej_memory;
    completions = t.c_completions;
    failures = t.c_failures;
    retries = t.c_retries;
    timeouts = t.c_timeouts;
    wedges = t.c_wedges;
    respawns = t.c_respawns;
    duplicate_acks = t.c_dup_acks;
  }

let ledger t =
  let out = ref [] in
  for id = t.next_id - 1 downto 0 do
    let s = Hashtbl.find t.slots id in
    out :=
      {
        job = s.l_id;
        class_ = s.l_class;
        attempts = s.l_attempts;
        requeues = s.l_requeues;
        outcome = s.l_outcome;
      }
      :: !out
  done;
  !out

let verify_ledger t =
  let problem = ref None in
  let fail fmt = Printf.ksprintf (fun m -> if !problem = None then problem := Some m) fmt in
  if t.c_dup_acks > 0 then fail "%d duplicate acknowledgements" t.c_dup_acks;
  let completions = ref 0 and failures = ref 0 and rejections = ref 0 in
  for id = 0 to t.next_id - 1 do
    let s = Hashtbl.find t.slots id in
    (match s.l_outcome with
     | None -> fail "job %d has no terminal outcome (lost)" id
     | Some Completed -> incr completions
     | Some (Failed _) -> incr failures
     | Some (Rejected _) -> incr rejections);
    if s.l_acks <> 1 then fail "job %d acknowledged %d times" id s.l_acks
  done;
  if !completions <> t.c_completions then
    fail "completion counter %d but %d completed entries" t.c_completions !completions;
  if !failures <> t.c_failures then
    fail "failure counter %d but %d failed entries" t.c_failures !failures;
  let rej = t.c_rej_queue + t.c_rej_breaker + t.c_rej_memory in
  if !rejections <> rej then fail "rejection counters %d but %d rejected entries" rej !rejections;
  if t.c_accepted + rej <> t.next_id then
    fail "accepted %d + rejected %d <> %d submissions" t.c_accepted rej t.next_id;
  match !problem with None -> Ok () | Some m -> Error m

let quota t =
  match t.qctl with
  | Some qc -> Some (Quota_ctl.quota qc)
  | None -> Pool.quota t.epoch.pool

let quota_trajectory t =
  match t.qctl with Some qc -> Quota_ctl.trajectory qc | None -> []

let breaker_transitions t =
  let classes = Hashtbl.fold (fun c _ acc -> c :: acc) t.breakers [] in
  let classes = List.sort compare classes in
  List.concat_map
    (fun c ->
       List.map
         (fun (step, st) -> (step, c, Breaker.state_name st))
         (Breaker.transitions (Hashtbl.find t.breakers c)))
    classes

let pool_counters t = Pool.counters t.epoch.pool

(* ------------------------------------------------------------------ *)
(* Telemetry exposition                                                 *)
(* ------------------------------------------------------------------ *)

let registry t = t.registry

let headroom t = t.headroom

let counter_samples t =
  let mk name v = { Registry.name; help = ""; stable = true; value = Registry.Counter_v v } in
  [
    mk "accepted" t.c_accepted;
    mk "rejected_queue_full" t.c_rej_queue;
    mk "rejected_breaker_open" t.c_rej_breaker;
    mk "rejected_memory_pressure" t.c_rej_memory;
    mk "completions" t.c_completions;
    mk "failures" t.c_failures;
    mk "retries" t.c_retries;
    mk "timeouts" t.c_timeouts;
    mk "wedges" t.c_wedges;
    mk "respawns" t.c_respawns;
    mk "duplicate_acks" t.c_dup_acks;
  ]

let metrics_snapshot ?stable_only t = Registry.snapshot ?stable_only t.registry

let metrics_text t = Openmetrics.render (Registry.snapshot t.registry)

let shutdown ?(reap = false) t =
  let stop ep ~join =
    Atomic.set ep.retired true;
    if join then begin
      (match ep.exec with
       | Some d ->
         Domain.join d;
         ep.exec <- None
       | None -> ());
      Pool.shutdown ep.pool
    end
    else Pool.kill ep.pool
  in
  stop t.epoch ~join:true;
  List.iter (fun ep -> stop ep ~join:reap) t.retired_epochs;
  if reap then t.retired_epochs <- []
